// Package repro_test is the benchmark harness: one testing.B benchmark per
// table and figure of the paper, plus ablations of the design choices
// DESIGN.md calls out. Run with:
//
//	go test -bench=. -benchmem
//
// Benchmarks use scaled-down grids (per-OST ratios preserved) so the full
// sweep completes in minutes; cmd/repro -mode full regenerates the paper-
// scale artifacts. Each benchmark reports the figure's headline quantity as
// a custom metric alongside the usual ns/op.
package repro_test

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"repro/adios"
	"repro/cluster"
	"repro/internal/experiments"
	"repro/internal/ior"
	"repro/internal/pfs"
	"repro/internal/scenario"
	"repro/internal/workloads"
	"repro/metrics"
)

// --- Section II -----------------------------------------------------------

// BenchmarkFig1AggregateBandwidth regenerates Figure 1(a/b): one IOR
// weak-scaling grid per iteration (16 OSTs, ratios 1..32, 1 MB–1 GB),
// reporting the peak aggregate bandwidth observed.
func BenchmarkFig1AggregateBandwidth(b *testing.B) {
	var peak float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig1(experiments.Fig1Options{
			OSTs:    16,
			Ratios:  []int{1, 2, 4, 8, 16, 32},
			SizesMB: []float64{1, 8, 128, 1024},
			Samples: 1,
			NoNoise: true,
			Seed:    int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		for _, s := range res.Aggregate.Series {
			for _, p := range s.Points {
				if p.Value > peak {
					peak = p.Value
				}
			}
		}
	}
	b.ReportMetric(peak, "peak-GB/s")
}

// BenchmarkTableIExternalInterference regenerates Table I's Jaguar row at
// 1/8 scale: each iteration is one hourly IOR sample; the CoV across the
// iterations is reported (the paper's "Covariance" column).
// The fresh/reuse sub-benchmarks produce bit-identical samples — reuse rents
// each iteration's world from a pool and resets it instead of rebuilding, so
// the ns/op ratio is the world-reuse speedup on this shape.
func BenchmarkTableIExternalInterference(b *testing.B) {
	sample := func(b *testing.B, c *cluster.Cluster) float64 {
		b.Helper()
		res, err := ior.Execute(c.FileSystem(), ior.Config{
			Writers:        64,
			BytesPerWriter: 64 * pfs.MB,
		})
		if err != nil {
			b.Fatal(err)
		}
		return res.AggregateBW / pfs.MB
	}
	report := func(b *testing.B, acc []float64) {
		if len(acc) > 1 {
			b.ReportMetric(metrics.Summarize(acc).CoV()*100, "CoV-%")
		}
	}
	b.Run("fresh", func(b *testing.B) {
		b.ReportAllocs()
		var acc []float64
		for i := 0; i < b.N; i++ {
			c := cluster.Jaguar(cluster.Config{Seed: int64(i) * 101, NumOSTs: 64, ProductionNoise: true})
			acc = append(acc, sample(b, c))
			c.Shutdown()
		}
		report(b, acc)
	})
	b.Run("reuse", func(b *testing.B) {
		b.ReportAllocs()
		pool := cluster.NewPool()
		defer pool.Close()
		var acc []float64
		for i := 0; i < b.N; i++ {
			c, err := pool.Rent("jaguar", cluster.Config{Seed: int64(i) * 101, NumOSTs: 64, ProductionNoise: true})
			if err != nil {
				b.Fatal(err)
			}
			acc = append(acc, sample(b, c))
			pool.Return(c)
		}
		report(b, acc)
	})
}

// BenchmarkFig2Histograms builds the Figure 2 histogram from freshly drawn
// bandwidth samples each iteration.
func BenchmarkFig2Histograms(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.TableI(experiments.TableIOptions{
			JaguarSamples: 8, FranklinSamples: 2, XTPSamples: 2,
			ScaleOSTs: 16, Seed: int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		figs := experiments.Fig2(res, 12)
		if len(figs) != 4 {
			b.Fatal("wrong panel count")
		}
		_ = figs[0].Render()
	}
}

// BenchmarkFig3Imbalance regenerates Figure 3: two IOR profiles three
// virtual minutes apart, reporting the average imbalance factor.
func BenchmarkFig3Imbalance(b *testing.B) {
	var sum float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig3(experiments.Fig3Options{
			OSTs: 48, AverageOver: 4, Seed: int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		sum += res.AvgImbalance
	}
	b.ReportMetric(sum/float64(b.N), "avg-imbalance")
}

// --- Section IV ------------------------------------------------------------

// benchEval runs one MPI + one adaptive sample of a workload per iteration
// and reports the mean adaptive-over-MPI speedup (the paper's headline).
func benchEval(b *testing.B, gen workloads.Generator, procs int, cond experiments.Condition) {
	b.Helper()
	// One pool for the whole benchmark: every campaign reuses the same 84-OST
	// Jaguar world instead of rebuilding it (REPRO_NO_REUSE=1 restores the
	// build-fresh baseline).
	pool := cluster.NewPool()
	defer pool.Close()
	var mpiSum, adaSum float64
	for i := 0; i < b.N; i++ {
		for _, method := range []adios.Method{adios.MethodMPI, adios.MethodAdaptive} {
			osts := firstN(64)
			if method == adios.MethodMPI {
				osts = firstN(20) // the 160-of-512 limit at 1/8 scale
			}
			r, err := experiments.RunCampaign(experiments.CampaignOptions{
				Writers:    procs,
				Method:     method,
				MethodOSTs: osts,
				Condition:  cond,
				Seed:       int64(i) * 31,
				PerRank:    gen.PerRank,
				NumOSTs:    84,
				Pool:       pool,
			})
			if err != nil {
				b.Fatal(err)
			}
			if method == adios.MethodMPI {
				mpiSum += r.AggregateBW
			} else {
				adaSum += r.AggregateBW
			}
		}
	}
	if mpiSum > 0 {
		b.ReportMetric(adaSum/mpiSum, "speedup-x")
	}
}

// BenchmarkFig5Pixie3DSmall regenerates Figure 5(a) at 1/8 scale.
func BenchmarkFig5Pixie3DSmall(b *testing.B) {
	benchEval(b, workloads.Pixie3DGen(workloads.Pixie3DSmall), 512, experiments.Base)
}

// BenchmarkFig5Pixie3DLarge regenerates Figure 5(b) at 1/8 scale.
func BenchmarkFig5Pixie3DLarge(b *testing.B) {
	benchEval(b, workloads.Pixie3DGen(workloads.Pixie3DLarge), 512, experiments.Base)
}

// BenchmarkFig5Pixie3DXL regenerates Figure 5(c) at 1/8 scale — the case
// where the paper reports adaptive IO ~4.8x faster.
func BenchmarkFig5Pixie3DXL(b *testing.B) {
	benchEval(b, workloads.Pixie3DGen(workloads.Pixie3DXL), 512, experiments.Base)
}

// BenchmarkFig5Pixie3DLargeInterference is Figure 5(b)'s interference case.
func BenchmarkFig5Pixie3DLargeInterference(b *testing.B) {
	benchEval(b, workloads.Pixie3DGen(workloads.Pixie3DLarge), 512, experiments.Interference)
}

// BenchmarkFig6XGC1 regenerates Figure 6 (38 MB/process) at 1/8 scale.
func BenchmarkFig6XGC1(b *testing.B) {
	benchEval(b, workloads.XGC1Gen(), 512, experiments.Base)
}

// BenchmarkFig6XGC1Interference is Figure 6's interference case.
func BenchmarkFig6XGC1Interference(b *testing.B) {
	benchEval(b, workloads.XGC1Gen(), 512, experiments.Interference)
}

// BenchmarkFig7StdDev regenerates Figure 7: per-case write-time standard
// deviations across samples, reporting the MPI-to-adaptive stddev ratio
// (the paper's claim: adaptive IO reduces variability once targets' caches
// are taxed).
func BenchmarkFig7StdDev(b *testing.B) {
	var ratioSum float64
	var ratios int
	for i := 0; i < b.N; i++ {
		er, err := experiments.EvaluateWorkload(
			workloads.Pixie3DGen(workloads.Pixie3DLarge), "fig7-bench",
			experiments.EvalOptions{
				ProcCounts:   []int{512},
				Samples:      4,
				MPIOSTs:      20,
				AdaptiveOSTs: 64,
				NumOSTs:      84,
				Conditions:   []experiments.Condition{experiments.Base},
				Seed:         int64(i) * 17,
			})
		if err != nil {
			b.Fatal(err)
		}
		figs := experiments.Fig7([]*experiments.EvalResult{er})
		var mpiStd, adaStd float64
		for _, s := range figs[0].Series {
			if len(s.Points) == 0 {
				continue
			}
			switch s.Name {
			case "MPI-base":
				mpiStd = s.Points[0].Value
			case "ADAPTIVE-base":
				adaStd = s.Points[0].Value
			}
		}
		if adaStd > 0 {
			ratioSum += mpiStd / adaStd
			ratios++
		}
	}
	if ratios > 0 {
		b.ReportMetric(ratioSum/float64(ratios), "stddev-ratio")
	}
}

// BenchmarkJobMixStep measures the multi-application step cost: each
// iteration executes one replica of the default three-job mix (phased
// checkpoint writer + ML trainer re-reading shards + metadata storm)
// co-scheduled on a 16-OST Jaguar under the adaptive transport, reporting
// the aggregate bandwidth delivered over the mix's makespan.
func BenchmarkJobMixStep(b *testing.B) {
	spec := scenario.Scenario{
		Name:      "jobmix-bench",
		NumOSTs:   16,
		Samples:   1,
		Transport: scenario.Transport{Method: "ADAPTIVE", OSTs: 16},
		Jobs:      experiments.DefaultJobMix(),
	}
	var agg float64
	for i := 0; i < b.N; i++ {
		res, err := scenario.Run(spec, scenario.RunOptions{Seed: int64(i), Parallel: 1})
		if err != nil {
			b.Fatal(err)
		}
		agg = res.Points[0].Samples[0].AggregateBW
	}
	b.ReportMetric(agg/pfs.GB, "agg-GB/s")
}

// --- Ablations --------------------------------------------------------------

// adaptiveSample runs one adaptive Pixie3D-large step with extra options
// and returns the elapsed time.
func adaptiveSample(b *testing.B, seed int64, opts adios.Options) float64 {
	b.Helper()
	c := cluster.Jaguar(cluster.Config{Seed: seed, NumOSTs: 84, ProductionNoise: true})
	defer c.Shutdown()
	c.StartArtificialInterference(nil, 0, 0)
	w := c.NewWorld(512)
	if opts.Method == "" {
		opts.Method = adios.MethodAdaptive
	}
	if opts.OSTs == nil {
		opts.OSTs = firstN(64)
	}
	io, err := adios.NewIO(c, w, opts)
	if err != nil {
		b.Fatal(err)
	}
	var res *adios.StepResult
	j := w.Launch(func(r *cluster.Rank) {
		f := io.Open(r, "ablate")
		f.WriteData(workloads.Pixie3D(r.Rank(), workloads.Pixie3DLarge))
		rr, err := f.Close()
		if err != nil {
			b.Error(err)
			return
		}
		res = rr
	})
	c.RunUntilDone(j)
	return res.Elapsed
}

// BenchmarkAblationNoAdaptation isolates the adaptive redirection itself:
// identical grouping, serialisation and indexing, with the coordinator's
// work-shifting switched off. Values above 1 are the speedup adaptation
// delivers under interference.
func BenchmarkAblationNoAdaptation(b *testing.B) {
	var withSum, withoutSum float64
	for i := 0; i < b.N; i++ {
		withSum += adaptiveSample(b, int64(i)*7, adios.Options{})
		withoutSum += adaptiveSample(b, int64(i)*7, adios.Options{DisableAdaptation: true})
	}
	if withSum > 0 {
		b.ReportMetric(withoutSum/withSum, "disabled-over-adaptive-time")
	}
}

// BenchmarkAblationHistoryAware compares scan-order target dispatch against
// the history-aware (fastest-first) extension.
func BenchmarkAblationHistoryAware(b *testing.B) {
	var scanSum, histSum float64
	for i := 0; i < b.N; i++ {
		scanSum += adaptiveSample(b, int64(i)*13, adios.Options{})
		histSum += adaptiveSample(b, int64(i)*13, adios.Options{HistoryAware: true})
	}
	if histSum > 0 {
		b.ReportMetric(scanSum/histSum, "scan-over-history-time")
	}
}

// BenchmarkAblationStaggerOpens measures the metadata-server queue peak
// with and without staggered creates (the stagger technique of the authors'
// earlier work, carried as an option).
func BenchmarkAblationStaggerOpens(b *testing.B) {
	peak := func(stagger time.Duration, seed int64) int {
		c := cluster.Jaguar(cluster.Config{Seed: seed, NumOSTs: 84})
		defer c.Shutdown()
		w := c.NewWorld(128)
		io, err := adios.NewIO(c, w, adios.Options{
			Method:       adios.MethodAdaptive,
			OSTs:         firstN(64),
			StaggerOpens: stagger,
		})
		if err != nil {
			b.Fatal(err)
		}
		var q int
		j := w.Launch(func(r *cluster.Rank) {
			f := io.Open(r, "stagger")
			f.Write("v", 1<<20, nil, 0, 1)
			res, err := f.Close()
			if err != nil {
				b.Error(err)
				return
			}
			q = res.MDSOpenQueuePeak
		})
		c.RunUntilDone(j)
		return q
	}
	var burst, staggered int
	for i := 0; i < b.N; i++ {
		burst += peak(0, int64(i))
		staggered += peak(2*time.Millisecond, int64(i))
	}
	b.ReportMetric(float64(burst)/float64(b.N), "burst-mds-queue")
	b.ReportMetric(float64(staggered)/float64(b.N), "staggered-mds-queue")
}

// BenchmarkAblationSplitFiles sweeps the Section II-3 alternative — k
// shared files instead of one — against the adaptive method under
// interference, reporting each variant's write time. The expected ordering
// (and the paper's argument): 1 file > split files > adaptive.
func BenchmarkAblationSplitFiles(b *testing.B) {
	sample := func(seed int64, method adios.Method, splits int) float64 {
		c := cluster.Jaguar(cluster.Config{Seed: seed, NumOSTs: 84, ProductionNoise: true})
		defer c.Shutdown()
		c.StartArtificialInterference(nil, 0, 0)
		w := c.NewWorld(256)
		// At 1/8 scale the per-file stripe limit is 20 targets: one shared
		// file reaches 20, four reach 80 (the paper's "splitting into 5
		// parts to take full advantage of the entire file system").
		opts := adios.Options{Method: method, MPISplitFiles: splits}
		switch {
		case method == adios.MethodAdaptive:
			opts.OSTs = firstN(64)
		case splits <= 1:
			opts.OSTs = firstN(20)
		default:
			opts.OSTs = firstN(20 * splits)
		}
		io, err := adios.NewIO(c, w, opts)
		if err != nil {
			b.Fatal(err)
		}
		var res *adios.StepResult
		j := w.Launch(func(r *cluster.Rank) {
			f := io.Open(r, "splits")
			f.Write("v", 32<<20, nil, 0, 1)
			rr, err := f.Close()
			if err != nil {
				b.Error(err)
				return
			}
			res = rr
		})
		c.RunUntilDone(j)
		return res.Elapsed
	}
	var one, four, adaptive float64
	for i := 0; i < b.N; i++ {
		seed := int64(i) * 41
		one += sample(seed, adios.MethodMPI, 1)
		four += sample(seed, adios.MethodMPI, 4)
		adaptive += sample(seed, adios.MethodAdaptive, 0)
	}
	n := float64(b.N)
	b.ReportMetric(one/n, "one-file-s")
	b.ReportMetric(four/n, "four-files-s")
	b.ReportMetric(adaptive/n, "adaptive-s")
}

// BenchmarkAblationWritersPerTarget sweeps the paper's unevaluated
// generalisation (1–3 simultaneous writers per storage location).
func BenchmarkAblationWritersPerTarget(b *testing.B) {
	for _, k := range []int{1, 2, 3} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			var sum float64
			for i := 0; i < b.N; i++ {
				sum += adaptiveSample(b, int64(i)*19, adios.Options{WritersPerTarget: k})
			}
			b.ReportMetric(sum/float64(b.N), "write-time-s")
		})
	}
}

// BenchmarkStagingVsDirect compares the staging transport's application-
// blocking time against the adaptive method's under interference (the
// paper's Section II-3 analysis: staging helps but is bounded by buffer
// space and does not remove interference). Reports the blocking-time ratio.
func BenchmarkStagingVsDirect(b *testing.B) {
	sample := func(seed int64, method adios.Method) float64 {
		c := cluster.Jaguar(cluster.Config{Seed: seed, NumOSTs: 84, ProductionNoise: true})
		defer c.Shutdown()
		c.StartArtificialInterference(nil, 0, 0)
		w := c.NewWorld(256)
		opts := adios.Options{Method: method, OSTs: firstN(64)}
		if method == adios.MethodStaging {
			// A quarter of the output fits in the staging area, so the
			// bench exercises the bounded-asynchronicity regime the paper
			// argues about, not the fully-buffered best case.
			opts.StagingNodes = 16
			opts.StagingBufferBytes = 128 * pfs.MB
			// "Our ongoing work is integrating adaptive IO even into the
			// data staging software" — drain with the adaptive-flavoured
			// least-loaded policy.
			opts.StagingLeastLoaded = true
		}
		io, err := adios.NewIO(c, w, opts)
		if err != nil {
			b.Fatal(err)
		}
		var res *adios.StepResult
		j := w.Launch(func(r *cluster.Rank) {
			f := io.Open(r, "svd")
			f.Write("v", 32<<20, nil, 0, 1)
			rr, err := f.Close()
			if err != nil {
				b.Error(err)
				return
			}
			res = rr
		})
		c.RunUntilDone(j)
		return res.Elapsed
	}
	var stagingSum, adaptiveSum float64
	for i := 0; i < b.N; i++ {
		stagingSum += sample(int64(i)*23, adios.MethodStaging)
		adaptiveSum += sample(int64(i)*23, adios.MethodAdaptive)
	}
	if stagingSum > 0 {
		b.ReportMetric(adaptiveSum/stagingSum, "adaptive-over-staging-blocking")
	}
}

// BenchmarkRestartRead measures the restart-read path over an adaptive
// step's subfiles vs the MPI shared file (the paper's Section IV-C claim
// that the extra files do not hurt the consumer).
func BenchmarkRestartRead(b *testing.B) {
	sample := func(seed int64, method adios.Method) float64 {
		c := cluster.Jaguar(cluster.Config{Seed: seed, NumOSTs: 32})
		defer c.Shutdown()
		w := c.NewWorld(64)
		opts := adios.Options{Method: method}
		if method == adios.MethodMPI {
			opts.OSTs = firstN(10)
		}
		io, err := adios.NewIO(c, w, opts)
		if err != nil {
			b.Fatal(err)
		}
		var res *adios.StepResult
		j := w.Launch(func(r *cluster.Rank) {
			f := io.Open(r, "rr")
			f.Write("v", 8<<20, nil, 0, 1)
			rr, err := f.Close()
			if err != nil {
				b.Error(err)
				return
			}
			res = rr
		})
		c.RunUntilDone(j)

		rd, err := adios.NewReader(c, res.Index())
		if err != nil {
			b.Fatal(err)
		}
		w2 := c.NewWorld(64)
		var readTime float64
		j2 := w2.Launch(func(r *cluster.Rank) {
			start := r.Proc().Now().Seconds()
			if _, err := rd.RestartRead(r); err != nil {
				b.Error(err)
				return
			}
			if d := r.Proc().Now().Seconds() - start; d > readTime {
				readTime = d
			}
		})
		c.RunUntilDone(j2)
		return readTime
	}
	var mpiSum, adaSum float64
	for i := 0; i < b.N; i++ {
		mpiSum += sample(int64(i)*29, adios.MethodMPI)
		adaSum += sample(int64(i)*29, adios.MethodAdaptive)
	}
	if adaSum > 0 {
		b.ReportMetric(mpiSum/adaSum, "mpi-over-adaptive-read-time")
	}
}

// BenchmarkMetadataStaggerStudy regenerates the metadata open-storm
// extension study, reporting the burst-to-staggered queue-peak ratio.
func BenchmarkMetadataStaggerStudy(b *testing.B) {
	var ratioSum, staggerSum float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.MetadataStudy(experiments.MetadataOptions{
			Writers:  128,
			Samples:  2,
			Staggers: []time.Duration{0, 10 * time.Millisecond},
			Seed:     int64(i) * 37,
		})
		if err != nil {
			b.Fatal(err)
		}
		var burst, stag float64
		for _, q := range res.QueuePeaks[0] {
			burst += float64(q)
		}
		for _, q := range res.QueuePeaks[10*time.Millisecond] {
			stag += float64(q)
		}
		ratioSum += burst
		staggerSum += stag
	}
	b.ReportMetric(ratioSum/float64(b.N), "burst-queue-peak")
	b.ReportMetric(staggerSum/float64(b.N), "staggered-queue-peak")
}

// BenchmarkCampaignRunner measures the replica worker pool against the
// sequential baseline on a Table I-shaped campaign (64 Jaguar hourly samples
// plus the smaller series, 1/8 scale). The two sub-benchmarks produce
// bit-identical results — only the wall clock differs — so ns/op(seq) over
// ns/op(parallel) is the campaign speedup on this machine.
func BenchmarkCampaignRunner(b *testing.B) {
	campaign := func(b *testing.B, parallel int) {
		b.Helper()
		for i := 0; i < b.N; i++ {
			_, err := experiments.TableI(experiments.TableIOptions{
				JaguarSamples:   64,
				FranklinSamples: 16,
				XTPSamples:      8,
				ScaleOSTs:       8,
				Seed:            int64(i),
				Parallel:        parallel,
			})
			if err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("sequential", func(b *testing.B) { campaign(b, 1) })
	b.Run(fmt.Sprintf("parallel-%d", runtime.GOMAXPROCS(0)), func(b *testing.B) { campaign(b, 0) })
}

// BenchmarkEvalGridRunner is the same comparison on a Section IV-shaped
// grid: 2 methods × 2 conditions × 2 proc counts × 4 samples.
func BenchmarkEvalGridRunner(b *testing.B) {
	grid := func(b *testing.B, parallel int) {
		b.Helper()
		for i := 0; i < b.N; i++ {
			_, err := experiments.EvaluateWorkload(
				workloads.Pixie3DGen(workloads.Pixie3DLarge), "runner-bench",
				experiments.EvalOptions{
					ProcCounts:   []int{128, 256},
					Samples:      4,
					MPIOSTs:      20,
					AdaptiveOSTs: 64,
					NumOSTs:      84,
					Seed:         int64(i) * 13,
					Parallel:     parallel,
				})
			if err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("sequential", func(b *testing.B) { grid(b, 1) })
	b.Run(fmt.Sprintf("parallel-%d", runtime.GOMAXPROCS(0)), func(b *testing.B) { grid(b, 0) })
}

// BenchmarkAdaptiveStepOverhead measures the raw cost of simulating one
// adaptive output step (the simulator's own performance).
func BenchmarkAdaptiveStepOverhead(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := cluster.Jaguar(cluster.Config{Seed: int64(i), NumOSTs: 16})
		w := c.NewWorld(64)
		io, err := adios.NewIO(c, w, adios.Options{Method: adios.MethodAdaptive})
		if err != nil {
			b.Fatal(err)
		}
		j := w.Launch(func(r *cluster.Rank) {
			f := io.Open(r, "ovh")
			f.Write("v", 1<<20, nil, 0, 1)
			if _, err := f.Close(); err != nil {
				b.Error(err)
			}
		})
		c.RunUntilDone(j)
		c.Shutdown()
	}
}

func firstN(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}
