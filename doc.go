// Package repro is a from-scratch Go reproduction of Lofstead et al.,
// "Managing Variability in the IO Performance of Petascale Storage
// Systems" (SC 2010): the adaptive IO method of the ADIOS middleware,
// together with every substrate it runs on, simulated deterministically —
// a parallel file system with contention-sensitive storage targets, an
// MPI-like rank substrate, production background noise, the IOR benchmark,
// and the Pixie3D/XGC1 workloads.
//
// Public entry points:
//
//   - repro/cluster — construct simulated machines (Jaguar, Franklin, XTP,
//     Intrepid presets or custom), interference, tracing, rank worlds.
//   - repro/adios — the middleware facade: output steps through the MPI-IO
//     baseline, POSIX, data staging, or the paper's adaptive method; BP
//     index access and the restart-read path.
//   - repro/metrics — result tables, figures, and histograms.
//
// Campaigns (many independent replicas of a simulation) run concurrently on
// internal/runner's worker pool with results bit-identical to sequential
// execution; all experiment drivers and CLIs expose this via Parallel
// options and -parallel flags.
//
// Every experiment is described by a declarative spec (internal/scenario):
// machine, workload, transport, interference model, grid axes, and sample
// count, validated before execution and runnable from any CLI via
// -scenario name|file.json with -set axis=value overrides. The paper's
// drivers are registered specs; examples/custom.json shows a combination
// no paper experiment covers.
//
// The benchmark harness in bench_test.go regenerates every table and
// figure of the paper (see DESIGN.md for the per-experiment index and
// EXPERIMENTS.md for paper-vs-measured values); cmd/repro runs the whole
// reproduction in one command.
package repro
