package profiling

import "time"

// This file is the module's single sanctioned wall-clock gateway. The
// nodeterm analyzer forbids ambient time.Now/time.Since everywhere else, so
// any measurement or report-header timestamp must flow through these helpers
// — which keeps the waivers (and the audit surface for "could the wall clock
// leak into results?") in one place. Nothing here may feed back into a
// simulation: wall time is for operator-facing reporting only.

// Stopwatch measures elapsed wall-clock time for speedup reporting.
type Stopwatch struct {
	start time.Time
}

// StartStopwatch begins timing.
func StartStopwatch() Stopwatch {
	return Stopwatch{start: time.Now()} //repro:allow nodeterm the sanctioned wall-clock gateway for measurement
}

// Elapsed returns the wall-clock time since the stopwatch started.
func (s Stopwatch) Elapsed() time.Duration {
	return time.Since(s.start) //repro:allow nodeterm the sanctioned wall-clock gateway for measurement
}

// Timestamp returns the current wall-clock time in RFC 3339 form, for report
// headers and log lines.
func Timestamp() string {
	return time.Now().Format(time.RFC3339) //repro:allow nodeterm report-header metadata, never simulation input
}
