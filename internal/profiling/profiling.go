// Package profiling wires the standard pprof profiles into the command-line
// drivers, so figure-scale campaigns can be profiled exactly as they run in
// production (`repro -mode quick -cpuprofile cpu.out`) rather than only
// through go test benchmarks.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling and/or arranges a heap profile, according to
// which paths are non-empty, and returns a stop function to defer. The heap
// profile is written at stop time (after a final GC), capturing the
// steady-state live set rather than a startup snapshot.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("profiling: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("profiling: start CPU profile: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("profiling: close CPU profile: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("profiling: %w", err)
			}
			defer f.Close()
			runtime.GC() // report the live set, not transient garbage
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("profiling: write heap profile: %w", err)
			}
		}
		return nil
	}, nil
}
