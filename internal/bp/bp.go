// Package bp implements a BP-style self-describing binary index format of
// the kind ADIOS writes (the paper's Section III: writers ship per-variable
// index records to their sub-coordinator; each sub-coordinator sorts, merges
// and writes a local index for its file; the coordinator merges local
// indices into a global index describing the whole output set).
//
// Index records carry data characteristics (per-variable min/max, following
// the authors' earlier "metadata rich IO" work) which let a reader locate
// data of interest — by name, by writer rank, or by value range — with a
// single index lookup followed by one direct read.
//
// The encoding is a compact little-endian binary layout with a magic number
// and version, written with encoding/binary. It produces real bytes: the
// examples persist indices to disk and read them back.
package bp

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"slices"
	"sort"
)

// Format constants.
const (
	MagicLocal  uint32 = 0xAD105001 // "ADIOS" local index
	MagicGlobal uint32 = 0xAD105002 // global index
	Version     uint16 = 1

	// maxStringLen guards decoding against corrupt length prefixes.
	maxStringLen = 1 << 16
	// maxEntries guards decoding against corrupt counts.
	maxEntries = 1 << 24
)

// VarEntry is one variable record in a local index: where one writer's
// block of one variable lives, plus its data characteristics.
type VarEntry struct {
	// Name of the variable ("pressure", "B_x", ...).
	Name string
	// WriterRank is the producing process's rank in the output group.
	WriterRank int32
	// Offset and Length locate the block within its data file.
	Offset int64
	Length int64
	// Dims are the block's local dimensions (elements per axis).
	Dims []uint64
	// Min and Max are the block's value range (data characteristics).
	Min float64
	Max float64
}

// LocalIndex describes one data file: which variable blocks it holds.
type LocalIndex struct {
	// File is the data file's name.
	File string
	// Entries are the variable records, sorted by (Name, WriterRank) once
	// Sort has been called (sub-coordinators sort before writing).
	Entries []VarEntry
}

// compareEntries is the canonical entry order: (Name, WriterRank, Offset).
// The key triple is unique within any one index — a writer never emits two
// blocks of the same variable at the same offset — so every correct sort
// produces the same sequence and the algorithm is free to change.
func compareEntries(a, b *VarEntry) int {
	if a.Name != b.Name {
		if a.Name < b.Name {
			return -1
		}
		return 1
	}
	if a.WriterRank != b.WriterRank {
		return int(a.WriterRank) - int(b.WriterRank)
	}
	switch {
	case a.Offset < b.Offset:
		return -1
	case a.Offset > b.Offset:
		return 1
	}
	return 0
}

// Sort orders entries by (Name, WriterRank, Offset), the canonical order a
// sub-coordinator establishes before writing the index. The entries are
// 64-byte records, so sorting moves indices and permutes once at the end
// instead of swapping records throughout (figure-scale profiles: direct
// sort.Sort and slices.SortFunc both lose to this on copy traffic).
func (li *LocalIndex) Sort() {
	es := li.Entries
	if len(es) < 2 {
		return
	}
	idx := make([]int32, len(es))
	if !li.bucketOrder(idx) {
		for i := range idx {
			idx[i] = int32(i)
		}
		slices.SortFunc(idx, func(a, b int32) int {
			return compareEntries(&es[a], &es[b])
		})
	}
	// Apply the permutation in place, one cycle at a time: es[i] must end
	// up holding the record that started at es[idx[i]].
	for i := range idx {
		if idx[i] == int32(i) {
			continue
		}
		tmp := es[i]
		j := i
		for {
			k := int(idx[j])
			idx[j] = int32(j)
			if k == i {
				es[j] = tmp
				break
			}
			es[j] = es[k]
			j = k
		}
	}
}

// bucketOrder attempts the merge-aware fast path of Sort: a leader merging
// its cohort appends entries writer by writer in ascending rank order (and a
// sorted index being re-sorted is a further special case), so within each
// variable name the input is already ordered by (WriterRank, Offset). One
// scan over a small name table verifies that; when it holds, the canonical
// order is a stable concatenation of the per-name runs in name order — no
// comparison sort at all. On success idx is filled with the permutation
// (idx[j] = source position of the entry destined for slot j) and the result
// is true; inputs with more distinct names than the table, or out-of-order
// runs, report false with idx untouched.
func (li *LocalIndex) bucketOrder(idx []int32) bool {
	es := li.Entries
	type nameRun struct {
		name     string
		count    int32
		lastRank int32
		lastOff  int64
		start    int32
	}
	var buf [16]nameRun
	runs := buf[:0]
	for i := range es {
		e := &es[i]
		j := 0
		for ; j < len(runs); j++ {
			if runs[j].name == e.Name {
				break
			}
		}
		if j == len(runs) {
			if len(runs) == cap(runs) {
				return false
			}
			runs = append(runs, nameRun{name: e.Name, count: 1, lastRank: e.WriterRank, lastOff: e.Offset})
			continue
		}
		rn := &runs[j]
		if e.WriterRank < rn.lastRank || (e.WriterRank == rn.lastRank && e.Offset < rn.lastOff) {
			return false
		}
		rn.lastRank, rn.lastOff = e.WriterRank, e.Offset
		rn.count++
	}
	// Insertion-sort the few runs by name, then assign each its slice of the
	// output by prefix sum.
	for i := 1; i < len(runs); i++ {
		for j := i; j > 0 && runs[j].name < runs[j-1].name; j-- {
			runs[j], runs[j-1] = runs[j-1], runs[j]
		}
	}
	pos := int32(0)
	for j := range runs {
		runs[j].start = pos
		pos += runs[j].count
	}
	for i := range es {
		nm := es[i].Name
		for j := range runs {
			if runs[j].name == nm {
				idx[runs[j].start] = int32(i)
				runs[j].start++
				break
			}
		}
	}
	return true
}

// TotalBytes sums the data bytes the index covers.
func (li *LocalIndex) TotalBytes() int64 {
	var t int64
	for _, e := range li.Entries {
		t += e.Length
	}
	return t
}

// GlobalIndex merges the local indices of one output operation.
type GlobalIndex struct {
	// Step is the application output step this index describes.
	Step int64
	// Locals are the per-file indices, sorted by file name.
	Locals []LocalIndex
}

// Sort orders locals by file name and each local's entries canonically.
func (g *GlobalIndex) Sort() {
	sort.Slice(g.Locals, func(i, j int) bool { return g.Locals[i].File < g.Locals[j].File })
	for i := range g.Locals {
		g.Locals[i].Sort()
	}
}

// Location names one variable block: the file it is in plus its record.
type Location struct {
	File  string
	Entry VarEntry
}

// Lookup finds the block of a variable written by a specific rank. With
// rank < 0 it returns the first block of that variable.
func (g *GlobalIndex) Lookup(name string, rank int32) (Location, bool) {
	for _, li := range g.Locals {
		for _, e := range li.Entries {
			if e.Name == name && (rank < 0 || e.WriterRank == rank) {
				return Location{File: li.File, Entry: e}, true
			}
		}
	}
	return Location{}, false
}

// FindByValue returns all blocks of a variable whose [Min, Max]
// characteristics intersect [lo, hi] — the characteristics-based search the
// paper describes as the interim replacement for the global indexing phase.
func (g *GlobalIndex) FindByValue(name string, lo, hi float64) []Location {
	var out []Location
	for _, li := range g.Locals {
		for _, e := range li.Entries {
			if e.Name == name && e.Max >= lo && e.Min <= hi {
				out = append(out, Location{File: li.File, Entry: e})
			}
		}
	}
	return out
}

// Vars lists the distinct variable names in the index, sorted.
func (g *GlobalIndex) Vars() []string {
	set := map[string]struct{}{}
	for _, li := range g.Locals {
		for _, e := range li.Entries {
			set[e.Name] = struct{}{}
		}
	}
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// NumEntries counts variable records across all locals.
func (g *GlobalIndex) NumEntries() int {
	n := 0
	for _, li := range g.Locals {
		n += len(li.Entries)
	}
	return n
}

// --- encoding ---
//
// Encoding appends directly to a byte slice sized up front from the
// indices' EncodedSize arithmetic. The byte layout is identical to what the
// original encoding/binary.Write implementation produced (fixed-width
// little-endian); only the reflection and intermediate buffers are gone —
// index encoding sat inside every collective close and dominated its
// profile. Decoding keeps the reader-based form: it runs once per read-back
// and its error handling benefits from io.Reader framing.

func appendString(b []byte, s string) ([]byte, error) {
	if len(s) > maxStringLen {
		return nil, fmt.Errorf("bp: string too long (%d)", len(s))
	}
	b = binary.LittleEndian.AppendUint32(b, uint32(len(s)))
	return append(b, s...), nil
}

func readString(r io.Reader) (string, error) {
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return "", err
	}
	if n > maxStringLen {
		return "", fmt.Errorf("bp: corrupt string length %d", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

func appendEntry(b []byte, e *VarEntry) ([]byte, error) {
	b, err := appendString(b, e.Name)
	if err != nil {
		return nil, err
	}
	b = binary.LittleEndian.AppendUint32(b, uint32(e.WriterRank))
	b = binary.LittleEndian.AppendUint64(b, uint64(e.Offset))
	b = binary.LittleEndian.AppendUint64(b, uint64(e.Length))
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(e.Min))
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(e.Max))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(e.Dims)))
	for _, d := range e.Dims {
		b = binary.LittleEndian.AppendUint64(b, d)
	}
	return b, nil
}

func readEntry(r io.Reader) (VarEntry, error) {
	var e VarEntry
	var err error
	if e.Name, err = readString(r); err != nil {
		return e, err
	}
	var nDims uint32
	for _, v := range []any{&e.WriterRank, &e.Offset, &e.Length, &e.Min, &e.Max, &nDims} {
		if err := binary.Read(r, binary.LittleEndian, v); err != nil {
			return e, err
		}
	}
	if nDims > 16 {
		return e, fmt.Errorf("bp: corrupt dimension count %d", nDims)
	}
	if nDims > 0 {
		e.Dims = make([]uint64, nDims)
		if err := binary.Read(r, binary.LittleEndian, e.Dims); err != nil {
			return e, err
		}
	}
	return e, nil
}

// encodedSize is the exact byte length appendTo will produce.
func (li *LocalIndex) encodedSize() int {
	n := 4 + 2 + 4 + len(li.File) + 4
	for i := range li.Entries {
		n += li.Entries[i].EncodedSize()
	}
	return n
}

// appendTo serialises the local index onto b.
func (li *LocalIndex) appendTo(b []byte) ([]byte, error) {
	b = binary.LittleEndian.AppendUint32(b, MagicLocal)
	b = binary.LittleEndian.AppendUint16(b, Version)
	b, err := appendString(b, li.File)
	if err != nil {
		return nil, err
	}
	b = binary.LittleEndian.AppendUint32(b, uint32(len(li.Entries)))
	for i := range li.Entries {
		if b, err = appendEntry(b, &li.Entries[i]); err != nil {
			return nil, err
		}
	}
	return b, nil
}

// Encode serialises the local index.
func (li *LocalIndex) Encode() ([]byte, error) {
	return li.appendTo(make([]byte, 0, li.encodedSize()))
}

// EncodedLen returns the exact length Encode would produce, applying the
// same validation, without materialising the bytes. The simulation
// transports charge index writes to the file system by size only — the
// encoded form is needed just by readers and persistence.
func (li *LocalIndex) EncodedLen() (int, error) {
	if len(li.File) > maxStringLen {
		return 0, fmt.Errorf("bp: string too long (%d)", len(li.File))
	}
	for i := range li.Entries {
		if len(li.Entries[i].Name) > maxStringLen {
			return 0, fmt.Errorf("bp: string too long (%d)", len(li.Entries[i].Name))
		}
	}
	return li.encodedSize(), nil
}

// DecodeLocal parses a local index from data.
func DecodeLocal(data []byte) (*LocalIndex, error) {
	r := bytes.NewReader(data)
	var magic uint32
	var ver uint16
	if err := binary.Read(r, binary.LittleEndian, &magic); err != nil {
		return nil, err
	}
	if magic != MagicLocal {
		return nil, fmt.Errorf("bp: bad local-index magic %#x", magic)
	}
	if err := binary.Read(r, binary.LittleEndian, &ver); err != nil {
		return nil, err
	}
	if ver != Version {
		return nil, fmt.Errorf("bp: unsupported version %d", ver)
	}
	li := &LocalIndex{}
	var err error
	if li.File, err = readString(r); err != nil {
		return nil, err
	}
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	if n > maxEntries {
		return nil, fmt.Errorf("bp: corrupt entry count %d", n)
	}
	li.Entries = make([]VarEntry, n)
	for i := range li.Entries {
		if li.Entries[i], err = readEntry(r); err != nil {
			return nil, err
		}
	}
	return li, nil
}

// Encode serialises the global index (sorting it canonically first).
// EncodedLen returns the exact length Encode would produce, applying the
// same validation, without materialising the bytes. Like Encode it sorts
// the locals first (the length itself is order-independent, but callers
// interleave it with Encode and both must observe the canonical order).
func (g *GlobalIndex) EncodedLen() (int, error) {
	g.Sort()
	size := 4 + 2 + 8 + 4
	for i := range g.Locals {
		n, err := g.Locals[i].EncodedLen()
		if err != nil {
			return 0, err
		}
		size += 8 + n
	}
	return size, nil
}

func (g *GlobalIndex) Encode() ([]byte, error) {
	g.Sort()
	size := 4 + 2 + 8 + 4
	for i := range g.Locals {
		size += 8 + g.Locals[i].encodedSize()
	}
	b := make([]byte, 0, size)
	b = binary.LittleEndian.AppendUint32(b, MagicGlobal)
	b = binary.LittleEndian.AppendUint16(b, Version)
	b = binary.LittleEndian.AppendUint64(b, uint64(g.Step))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(g.Locals)))
	for i := range g.Locals {
		li := &g.Locals[i]
		b = binary.LittleEndian.AppendUint64(b, uint64(li.encodedSize()))
		var err error
		if b, err = li.appendTo(b); err != nil {
			return nil, err
		}
	}
	return b, nil
}

// DecodeGlobal parses a global index from data.
func DecodeGlobal(data []byte) (*GlobalIndex, error) {
	r := bytes.NewReader(data)
	var magic uint32
	var ver uint16
	if err := binary.Read(r, binary.LittleEndian, &magic); err != nil {
		return nil, err
	}
	if magic != MagicGlobal {
		return nil, fmt.Errorf("bp: bad global-index magic %#x", magic)
	}
	if err := binary.Read(r, binary.LittleEndian, &ver); err != nil {
		return nil, err
	}
	if ver != Version {
		return nil, fmt.Errorf("bp: unsupported version %d", ver)
	}
	g := &GlobalIndex{}
	if err := binary.Read(r, binary.LittleEndian, &g.Step); err != nil {
		return nil, err
	}
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	if n > maxEntries {
		return nil, fmt.Errorf("bp: corrupt locals count %d", n)
	}
	g.Locals = make([]LocalIndex, 0, n)
	for i := uint32(0); i < n; i++ {
		var sz uint64
		if err := binary.Read(r, binary.LittleEndian, &sz); err != nil {
			return nil, err
		}
		if sz > uint64(r.Len()) {
			return nil, fmt.Errorf("bp: corrupt local size %d", sz)
		}
		buf := make([]byte, sz)
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, err
		}
		li, err := DecodeLocal(buf)
		if err != nil {
			return nil, err
		}
		g.Locals = append(g.Locals, *li)
	}
	return g, nil
}

// EncodedSize estimates the byte cost of an entry when transferred as index
// metadata (used by the middleware to charge index traffic to the model).
func (e *VarEntry) EncodedSize() int {
	return 4 + len(e.Name) + 4 + 8 + 8 + 8 + 8 + 4 + 8*len(e.Dims)
}
