// Package bp implements a BP-style self-describing binary index format of
// the kind ADIOS writes (the paper's Section III: writers ship per-variable
// index records to their sub-coordinator; each sub-coordinator sorts, merges
// and writes a local index for its file; the coordinator merges local
// indices into a global index describing the whole output set).
//
// Index records carry data characteristics (per-variable min/max, following
// the authors' earlier "metadata rich IO" work) which let a reader locate
// data of interest — by name, by writer rank, or by value range — with a
// single index lookup followed by one direct read.
//
// The encoding is a compact little-endian binary layout with a magic number
// and version, written with encoding/binary. It produces real bytes: the
// examples persist indices to disk and read them back.
package bp

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sort"
)

// Format constants.
const (
	MagicLocal  uint32 = 0xAD105001 // "ADIOS" local index
	MagicGlobal uint32 = 0xAD105002 // global index
	Version     uint16 = 1

	// maxStringLen guards decoding against corrupt length prefixes.
	maxStringLen = 1 << 16
	// maxEntries guards decoding against corrupt counts.
	maxEntries = 1 << 24
)

// VarEntry is one variable record in a local index: where one writer's
// block of one variable lives, plus its data characteristics.
type VarEntry struct {
	// Name of the variable ("pressure", "B_x", ...).
	Name string
	// WriterRank is the producing process's rank in the output group.
	WriterRank int32
	// Offset and Length locate the block within its data file.
	Offset int64
	Length int64
	// Dims are the block's local dimensions (elements per axis).
	Dims []uint64
	// Min and Max are the block's value range (data characteristics).
	Min float64
	Max float64
}

// LocalIndex describes one data file: which variable blocks it holds.
type LocalIndex struct {
	// File is the data file's name.
	File string
	// Entries are the variable records, sorted by (Name, WriterRank) once
	// Sort has been called (sub-coordinators sort before writing).
	Entries []VarEntry
}

// byNameRankOffset implements the canonical entry order on the concrete
// slice type. sort.Sort and sort.Slice run the same algorithm, but the
// interface form skips the reflection-based swapper, which showed up in
// figure-scale profiles (entries are 64-byte records).
type byNameRankOffset []VarEntry

func (s byNameRankOffset) Len() int      { return len(s) }
func (s byNameRankOffset) Swap(i, j int) { s[i], s[j] = s[j], s[i] }
func (s byNameRankOffset) Less(i, j int) bool {
	a, b := &s[i], &s[j]
	if a.Name != b.Name {
		return a.Name < b.Name
	}
	if a.WriterRank != b.WriterRank {
		return a.WriterRank < b.WriterRank
	}
	return a.Offset < b.Offset
}

// Sort orders entries by (Name, WriterRank, Offset), the canonical order a
// sub-coordinator establishes before writing the index.
func (li *LocalIndex) Sort() {
	sort.Sort(byNameRankOffset(li.Entries))
}

// TotalBytes sums the data bytes the index covers.
func (li *LocalIndex) TotalBytes() int64 {
	var t int64
	for _, e := range li.Entries {
		t += e.Length
	}
	return t
}

// GlobalIndex merges the local indices of one output operation.
type GlobalIndex struct {
	// Step is the application output step this index describes.
	Step int64
	// Locals are the per-file indices, sorted by file name.
	Locals []LocalIndex
}

// Sort orders locals by file name and each local's entries canonically.
func (g *GlobalIndex) Sort() {
	sort.Slice(g.Locals, func(i, j int) bool { return g.Locals[i].File < g.Locals[j].File })
	for i := range g.Locals {
		g.Locals[i].Sort()
	}
}

// Location names one variable block: the file it is in plus its record.
type Location struct {
	File  string
	Entry VarEntry
}

// Lookup finds the block of a variable written by a specific rank. With
// rank < 0 it returns the first block of that variable.
func (g *GlobalIndex) Lookup(name string, rank int32) (Location, bool) {
	for _, li := range g.Locals {
		for _, e := range li.Entries {
			if e.Name == name && (rank < 0 || e.WriterRank == rank) {
				return Location{File: li.File, Entry: e}, true
			}
		}
	}
	return Location{}, false
}

// FindByValue returns all blocks of a variable whose [Min, Max]
// characteristics intersect [lo, hi] — the characteristics-based search the
// paper describes as the interim replacement for the global indexing phase.
func (g *GlobalIndex) FindByValue(name string, lo, hi float64) []Location {
	var out []Location
	for _, li := range g.Locals {
		for _, e := range li.Entries {
			if e.Name == name && e.Max >= lo && e.Min <= hi {
				out = append(out, Location{File: li.File, Entry: e})
			}
		}
	}
	return out
}

// Vars lists the distinct variable names in the index, sorted.
func (g *GlobalIndex) Vars() []string {
	set := map[string]struct{}{}
	for _, li := range g.Locals {
		for _, e := range li.Entries {
			set[e.Name] = struct{}{}
		}
	}
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// NumEntries counts variable records across all locals.
func (g *GlobalIndex) NumEntries() int {
	n := 0
	for _, li := range g.Locals {
		n += len(li.Entries)
	}
	return n
}

// --- encoding ---
//
// Encoding appends directly to a byte slice sized up front from the
// indices' EncodedSize arithmetic. The byte layout is identical to what the
// original encoding/binary.Write implementation produced (fixed-width
// little-endian); only the reflection and intermediate buffers are gone —
// index encoding sat inside every collective close and dominated its
// profile. Decoding keeps the reader-based form: it runs once per read-back
// and its error handling benefits from io.Reader framing.

func appendString(b []byte, s string) ([]byte, error) {
	if len(s) > maxStringLen {
		return nil, fmt.Errorf("bp: string too long (%d)", len(s))
	}
	b = binary.LittleEndian.AppendUint32(b, uint32(len(s)))
	return append(b, s...), nil
}

func readString(r io.Reader) (string, error) {
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return "", err
	}
	if n > maxStringLen {
		return "", fmt.Errorf("bp: corrupt string length %d", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

func appendEntry(b []byte, e *VarEntry) ([]byte, error) {
	b, err := appendString(b, e.Name)
	if err != nil {
		return nil, err
	}
	b = binary.LittleEndian.AppendUint32(b, uint32(e.WriterRank))
	b = binary.LittleEndian.AppendUint64(b, uint64(e.Offset))
	b = binary.LittleEndian.AppendUint64(b, uint64(e.Length))
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(e.Min))
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(e.Max))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(e.Dims)))
	for _, d := range e.Dims {
		b = binary.LittleEndian.AppendUint64(b, d)
	}
	return b, nil
}

func readEntry(r io.Reader) (VarEntry, error) {
	var e VarEntry
	var err error
	if e.Name, err = readString(r); err != nil {
		return e, err
	}
	var nDims uint32
	for _, v := range []any{&e.WriterRank, &e.Offset, &e.Length, &e.Min, &e.Max, &nDims} {
		if err := binary.Read(r, binary.LittleEndian, v); err != nil {
			return e, err
		}
	}
	if nDims > 16 {
		return e, fmt.Errorf("bp: corrupt dimension count %d", nDims)
	}
	if nDims > 0 {
		e.Dims = make([]uint64, nDims)
		if err := binary.Read(r, binary.LittleEndian, e.Dims); err != nil {
			return e, err
		}
	}
	return e, nil
}

// encodedSize is the exact byte length appendTo will produce.
func (li *LocalIndex) encodedSize() int {
	n := 4 + 2 + 4 + len(li.File) + 4
	for i := range li.Entries {
		n += li.Entries[i].EncodedSize()
	}
	return n
}

// appendTo serialises the local index onto b.
func (li *LocalIndex) appendTo(b []byte) ([]byte, error) {
	b = binary.LittleEndian.AppendUint32(b, MagicLocal)
	b = binary.LittleEndian.AppendUint16(b, Version)
	b, err := appendString(b, li.File)
	if err != nil {
		return nil, err
	}
	b = binary.LittleEndian.AppendUint32(b, uint32(len(li.Entries)))
	for i := range li.Entries {
		if b, err = appendEntry(b, &li.Entries[i]); err != nil {
			return nil, err
		}
	}
	return b, nil
}

// Encode serialises the local index.
func (li *LocalIndex) Encode() ([]byte, error) {
	return li.appendTo(make([]byte, 0, li.encodedSize()))
}

// DecodeLocal parses a local index from data.
func DecodeLocal(data []byte) (*LocalIndex, error) {
	r := bytes.NewReader(data)
	var magic uint32
	var ver uint16
	if err := binary.Read(r, binary.LittleEndian, &magic); err != nil {
		return nil, err
	}
	if magic != MagicLocal {
		return nil, fmt.Errorf("bp: bad local-index magic %#x", magic)
	}
	if err := binary.Read(r, binary.LittleEndian, &ver); err != nil {
		return nil, err
	}
	if ver != Version {
		return nil, fmt.Errorf("bp: unsupported version %d", ver)
	}
	li := &LocalIndex{}
	var err error
	if li.File, err = readString(r); err != nil {
		return nil, err
	}
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	if n > maxEntries {
		return nil, fmt.Errorf("bp: corrupt entry count %d", n)
	}
	li.Entries = make([]VarEntry, n)
	for i := range li.Entries {
		if li.Entries[i], err = readEntry(r); err != nil {
			return nil, err
		}
	}
	return li, nil
}

// Encode serialises the global index (sorting it canonically first).
func (g *GlobalIndex) Encode() ([]byte, error) {
	g.Sort()
	size := 4 + 2 + 8 + 4
	for i := range g.Locals {
		size += 8 + g.Locals[i].encodedSize()
	}
	b := make([]byte, 0, size)
	b = binary.LittleEndian.AppendUint32(b, MagicGlobal)
	b = binary.LittleEndian.AppendUint16(b, Version)
	b = binary.LittleEndian.AppendUint64(b, uint64(g.Step))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(g.Locals)))
	for i := range g.Locals {
		li := &g.Locals[i]
		b = binary.LittleEndian.AppendUint64(b, uint64(li.encodedSize()))
		var err error
		if b, err = li.appendTo(b); err != nil {
			return nil, err
		}
	}
	return b, nil
}

// DecodeGlobal parses a global index from data.
func DecodeGlobal(data []byte) (*GlobalIndex, error) {
	r := bytes.NewReader(data)
	var magic uint32
	var ver uint16
	if err := binary.Read(r, binary.LittleEndian, &magic); err != nil {
		return nil, err
	}
	if magic != MagicGlobal {
		return nil, fmt.Errorf("bp: bad global-index magic %#x", magic)
	}
	if err := binary.Read(r, binary.LittleEndian, &ver); err != nil {
		return nil, err
	}
	if ver != Version {
		return nil, fmt.Errorf("bp: unsupported version %d", ver)
	}
	g := &GlobalIndex{}
	if err := binary.Read(r, binary.LittleEndian, &g.Step); err != nil {
		return nil, err
	}
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	if n > maxEntries {
		return nil, fmt.Errorf("bp: corrupt locals count %d", n)
	}
	g.Locals = make([]LocalIndex, 0, n)
	for i := uint32(0); i < n; i++ {
		var sz uint64
		if err := binary.Read(r, binary.LittleEndian, &sz); err != nil {
			return nil, err
		}
		if sz > uint64(r.Len()) {
			return nil, fmt.Errorf("bp: corrupt local size %d", sz)
		}
		buf := make([]byte, sz)
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, err
		}
		li, err := DecodeLocal(buf)
		if err != nil {
			return nil, err
		}
		g.Locals = append(g.Locals, *li)
	}
	return g, nil
}

// EncodedSize estimates the byte cost of an entry when transferred as index
// metadata (used by the middleware to charge index traffic to the model).
func (e *VarEntry) EncodedSize() int {
	return 4 + len(e.Name) + 4 + 8 + 8 + 8 + 8 + 4 + 8*len(e.Dims)
}
