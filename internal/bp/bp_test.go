package bp

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"
)

func sampleLocal() LocalIndex {
	return LocalIndex{
		File: "pixie3d.0003.bp",
		Entries: []VarEntry{
			{Name: "rho", WriterRank: 2, Offset: 0, Length: 1024, Dims: []uint64{8, 8, 16}, Min: -1.5, Max: 2.25},
			{Name: "B_x", WriterRank: 0, Offset: 1024, Length: 2048, Dims: []uint64{16, 16, 8}, Min: 0, Max: 9.75},
			{Name: "rho", WriterRank: 0, Offset: 3072, Length: 1024, Min: -3, Max: -0.5},
		},
	}
}

func TestLocalRoundTrip(t *testing.T) {
	li := sampleLocal()
	enc, err := li.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeLocal(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*got, li) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", *got, li)
	}
}

func TestLocalSortCanonicalOrder(t *testing.T) {
	li := sampleLocal()
	li.Sort()
	names := make([]string, len(li.Entries))
	for i, e := range li.Entries {
		names[i] = e.Name
	}
	if !reflect.DeepEqual(names, []string{"B_x", "rho", "rho"}) {
		t.Fatalf("sorted names = %v", names)
	}
	if li.Entries[1].WriterRank != 0 || li.Entries[2].WriterRank != 2 {
		t.Fatal("rho entries not ordered by rank")
	}
}

func TestTotalBytes(t *testing.T) {
	li := sampleLocal()
	if got := li.TotalBytes(); got != 4096 {
		t.Fatalf("total bytes = %d", got)
	}
}

func TestGlobalRoundTripAndSort(t *testing.T) {
	g := GlobalIndex{
		Step: 7,
		Locals: []LocalIndex{
			{File: "out.2.bp", Entries: []VarEntry{{Name: "v", WriterRank: 3, Length: 10}}},
			sampleLocal(),
		},
	}
	enc, err := g.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeGlobal(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got.Step != 7 || len(got.Locals) != 2 {
		t.Fatalf("global header wrong: %+v", got)
	}
	// Encode sorts by file name.
	if got.Locals[0].File != "out.2.bp" || got.Locals[1].File != "pixie3d.0003.bp" {
		t.Fatalf("locals order: %s, %s", got.Locals[0].File, got.Locals[1].File)
	}
	if got.NumEntries() != 4 {
		t.Fatalf("entries = %d", got.NumEntries())
	}
}

func TestLookup(t *testing.T) {
	g := GlobalIndex{Locals: []LocalIndex{sampleLocal()}}
	loc, ok := g.Lookup("rho", 2)
	if !ok || loc.File != "pixie3d.0003.bp" || loc.Entry.Offset != 0 {
		t.Fatalf("lookup = %+v, %v", loc, ok)
	}
	if _, ok := g.Lookup("rho", 99); ok {
		t.Fatal("lookup of absent rank should fail")
	}
	if _, ok := g.Lookup("ghost", -1); ok {
		t.Fatal("lookup of absent variable should fail")
	}
	loc, ok = g.Lookup("rho", -1)
	if !ok {
		t.Fatal("wildcard rank lookup failed")
	}
}

func TestFindByValueCharacteristics(t *testing.T) {
	g := GlobalIndex{Locals: []LocalIndex{sampleLocal()}}
	// rho blocks: [-1.5, 2.25] (rank 2) and [-3, -0.5] (rank 0).
	hits := g.FindByValue("rho", 0, 10)
	if len(hits) != 1 || hits[0].Entry.WriterRank != 2 {
		t.Fatalf("value search [0,10] = %+v", hits)
	}
	hits = g.FindByValue("rho", -2, -1)
	if len(hits) != 2 {
		t.Fatalf("value search [-2,-1] hits = %d, want 2 (both ranges intersect)", len(hits))
	}
	if hits := g.FindByValue("rho", 100, 200); hits != nil {
		t.Fatalf("out-of-range search = %+v", hits)
	}
}

func TestVars(t *testing.T) {
	g := GlobalIndex{Locals: []LocalIndex{sampleLocal()}}
	if got := g.Vars(); !reflect.DeepEqual(got, []string{"B_x", "rho"}) {
		t.Fatalf("vars = %v", got)
	}
}

func TestDecodeRejectsCorruptMagic(t *testing.T) {
	li := sampleLocal()
	enc, _ := li.Encode()
	enc[0] ^= 0xFF
	if _, err := DecodeLocal(enc); err == nil {
		t.Fatal("corrupt magic accepted")
	}
	g := GlobalIndex{Locals: []LocalIndex{li}}
	genc, _ := g.Encode()
	genc[0] ^= 0xFF
	if _, err := DecodeGlobal(genc); err == nil {
		t.Fatal("corrupt global magic accepted")
	}
}

func TestDecodeRejectsTruncation(t *testing.T) {
	li := sampleLocal()
	enc, _ := li.Encode()
	for _, cut := range []int{1, 5, 7, len(enc) / 2, len(enc) - 1} {
		if _, err := DecodeLocal(enc[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestDecodeRejectsWrongVersion(t *testing.T) {
	li := sampleLocal()
	enc, _ := li.Encode()
	enc[4] = 0xFF // version low byte
	if _, err := DecodeLocal(enc); err == nil {
		t.Fatal("wrong version accepted")
	}
}

func TestDecodeLocalAsGlobalFails(t *testing.T) {
	li := sampleLocal()
	enc, _ := li.Encode()
	if _, err := DecodeGlobal(enc); err == nil {
		t.Fatal("local bytes decoded as global")
	}
}

func TestEncodedSizePositive(t *testing.T) {
	e := sampleLocal().Entries[0]
	if e.EncodedSize() < 40 {
		t.Fatalf("encoded size = %d suspiciously small", e.EncodedSize())
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(file string, names []string, ranks []int32, vals []float64) bool {
		if len(file) > 1000 {
			file = file[:1000]
		}
		li := LocalIndex{File: file}
		for i, n := range names {
			if len(n) > 200 {
				n = n[:200]
			}
			e := VarEntry{Name: n}
			if i < len(ranks) {
				e.WriterRank = ranks[i]
			}
			if i < len(vals) && !math.IsNaN(vals[i]) {
				e.Min = vals[i]
				e.Max = vals[i] + 1
			}
			e.Offset = int64(i * 100)
			e.Length = int64(i * 10)
			e.Dims = []uint64{uint64(i), uint64(i * 2)}
			li.Entries = append(li.Entries, e)
		}
		enc, err := li.Encode()
		if err != nil {
			return false
		}
		got, err := DecodeLocal(enc)
		if err != nil {
			return false
		}
		if got.File != li.File || len(got.Entries) != len(li.Entries) {
			return false
		}
		for i := range li.Entries {
			a, b := li.Entries[i], got.Entries[i]
			if a.Name != b.Name || a.WriterRank != b.WriterRank ||
				a.Offset != b.Offset || a.Length != b.Length ||
				a.Min != b.Min || a.Max != b.Max ||
				!reflect.DeepEqual(a.Dims, b.Dims) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// referenceSort is the straightforward stable sort Sort must be equivalent
// to, regardless of which internal path (bucket-order fast path or the
// comparison fallback) handles the input.
func referenceSort(es []VarEntry) []VarEntry {
	out := make([]VarEntry, len(es))
	copy(out, es)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && compareEntries(&out[j], &out[j-1]) < 0; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func TestSortMatchesReference(t *testing.T) {
	entry := func(name string, rank int32, off int64) VarEntry {
		return VarEntry{Name: name, WriterRank: rank, Offset: off, Length: 8}
	}
	manyNames := make([]VarEntry, 0, 40) // >16 names defeats the fast path's inline table
	for i := 0; i < 20; i++ {
		manyNames = append(manyNames,
			entry(string(rune('a'+19-i)), 1, int64(i)),
			entry(string(rune('a'+19-i)), 0, int64(i)))
	}
	cases := []struct {
		name string
		es   []VarEntry
	}{
		{"empty", nil},
		{"single", []VarEntry{entry("x", 0, 0)}},
		{"sorted", []VarEntry{entry("a", 0, 0), entry("a", 1, 0), entry("b", 0, 0)}},
		{"reverse", []VarEntry{entry("b", 0, 0), entry("a", 1, 0), entry("a", 0, 0)}},
		// The leader-merge shape: per-name runs already (rank, offset)
		// ordered, names interleaved out of order.
		{"merge", []VarEntry{
			entry("rho", 0, 0), entry("rho", 1, 64), entry("B_x", 0, 0),
			entry("B_x", 2, 32), entry("psi", 1, 0), entry("rho", 3, 0),
		}},
		// Within-name disorder forces the comparison fallback.
		{"rankDisorder", []VarEntry{entry("a", 2, 0), entry("a", 1, 0), entry("a", 3, 0)}},
		{"offsetDisorder", []VarEntry{entry("a", 1, 64), entry("a", 1, 0)}},
		{"manyNames", manyNames},
	}
	for _, tc := range cases {
		name, es := tc.name, tc.es
		want := referenceSort(es)
		li := LocalIndex{Entries: append([]VarEntry(nil), es...)}
		li.Sort()
		if len(li.Entries) == 0 && len(want) == 0 {
			continue
		}
		if !reflect.DeepEqual(li.Entries, want) {
			t.Errorf("%s: Sort mismatch\n got %+v\nwant %+v", name, li.Entries, want)
		}
	}
}

func TestSortMatchesReferenceQuick(t *testing.T) {
	names := []string{"a", "b", "c", "rho"}
	f := func(picks []uint8) bool {
		es := make([]VarEntry, len(picks))
		for i, p := range picks {
			es[i] = VarEntry{
				Name:       names[int(p)%len(names)],
				WriterRank: int32(p>>2) % 5,
				Offset:     int64(p>>4) % 3,
				Length:     4,
			}
		}
		want := referenceSort(es)
		li := LocalIndex{Entries: es}
		li.Sort()
		if len(es) == 0 {
			return true
		}
		return reflect.DeepEqual(li.Entries, want)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
