package experiments

import (
	"fmt"
	"time"

	"repro/internal/scenario"
	"repro/internal/stats"
	"repro/metrics"
)

// MetadataOptions configures the metadata-variability study — the paper's
// future-work item "other sources of variability, including that of
// metadata operations like file opens", using the stagger technique carried
// from the authors' earlier Cray User's Group work.
type MetadataOptions struct {
	// Writers is the number of ranks opening files simultaneously.
	Writers int
	// Samples per configuration.
	Samples int
	// Staggers are the create-spacing values to sweep (0 = burst).
	Staggers []time.Duration
	Seed     int64
	// Parallel bounds the replica worker pool (1 = sequential, <=0 = all
	// cores); the open-storm samples are independent environments.
	Parallel int
}

func (o *MetadataOptions) defaults() {
	if o.Writers <= 0 {
		o.Writers = 512
	}
	if o.Samples <= 0 {
		o.Samples = 10
	}
	if len(o.Staggers) == 0 {
		o.Staggers = []time.Duration{0, time.Millisecond, 5 * time.Millisecond, 20 * time.Millisecond}
	}
}

// MetadataResult is the study's outcome: per stagger value, the open-storm
// completion time (mean and CoV) and the MDS queue peak.
type MetadataResult struct {
	Table metrics.Table
	// StormTimes[stagger] holds the per-sample storm completion times.
	StormTimes map[time.Duration][]float64
	// QueuePeaks[stagger] holds the per-sample MDS queue peaks.
	QueuePeaks map[time.Duration][]int
}

// MetadataScenario expresses the study declaratively: the openstorm
// workload on a 64-target Jaguar slice swept over a "stagger" axis whose
// point labels are the Duration strings the hand-written driver used.
func MetadataScenario(opt MetadataOptions) scenario.Scenario {
	opt.defaults()
	staggers := make([]scenario.Value, len(opt.Staggers))
	for i, d := range opt.Staggers {
		v := scenario.NumValue(float64(d))
		v.Label = d.String()
		staggers[i] = v
	}
	return scenario.Scenario{
		Name:        "metadata",
		Description: "Metadata open-storm study (future-work extension)",
		Machine:     "jaguar",
		NumOSTs:     64,
		NoNoise:     true,
		Samples:     opt.Samples,
		Workload:    scenario.Workload{Kind: scenario.KindOpenStorm, Writers: opt.Writers},
		Axes:        []scenario.Axis{{Name: "stagger", Values: staggers}},
	}
}

// MetadataStudy measures a simultaneous file-create storm from N ranks
// against the metadata server, with and without staggering.
func MetadataStudy(opt MetadataOptions) (*MetadataResult, error) {
	opt.defaults()
	run, err := scenario.Run(MetadataScenario(opt), scenario.RunOptions{Seed: opt.Seed, Parallel: opt.Parallel})
	if err != nil {
		return nil, err
	}
	return metadataDemux(run)
}

// metadataDemux reduces the scenario run to the study's table, one stagger
// value per grid point in axis order.
func metadataDemux(run *scenario.Result) (*MetadataResult, error) {
	res := &MetadataResult{
		Table: metrics.Table{
			Title: "Metadata open-storm study (future-work extension)",
			Header: []string{"Stagger", "Mean storm time (s)", "CoV",
				"Mean MDS queue peak"},
		},
		StormTimes: map[time.Duration][]float64{},
		QueuePeaks: map[time.Duration][]int{},
	}
	for _, pt := range run.Points {
		stagger := time.Duration(int64(pt.Params.Float("stagger", 0)))
		var peakSum float64
		for _, r := range pt.Samples {
			res.StormTimes[stagger] = append(res.StormTimes[stagger], r.Elapsed)
			res.QueuePeaks[stagger] = append(res.QueuePeaks[stagger], r.QueuePeak)
			peakSum += float64(r.QueuePeak)
		}
		sum := stats.Summarize(res.StormTimes[stagger])
		res.Table.AddRow(
			stagger.String(),
			fmt.Sprintf("%.3f", sum.Mean),
			fmt.Sprintf("%.0f%%", sum.CoVPercent()),
			fmt.Sprintf("%.0f", peakSum/float64(len(pt.Samples))),
		)
	}
	return res, nil
}
