package experiments

import (
	"fmt"
	"time"

	"repro/cluster"
	"repro/internal/pfs"
	"repro/internal/runner"
	"repro/internal/simkernel"
	"repro/internal/stats"
	"repro/metrics"
)

// MetadataOptions configures the metadata-variability study — the paper's
// future-work item "other sources of variability, including that of
// metadata operations like file opens", using the stagger technique carried
// from the authors' earlier Cray User's Group work.
type MetadataOptions struct {
	// Writers is the number of ranks opening files simultaneously.
	Writers int
	// Samples per configuration.
	Samples int
	// Staggers are the create-spacing values to sweep (0 = burst).
	Staggers []time.Duration
	Seed     int64
	// Parallel bounds the replica worker pool (1 = sequential, <=0 = all
	// cores); the open-storm samples are independent environments.
	Parallel int
}

func (o *MetadataOptions) defaults() {
	if o.Writers <= 0 {
		o.Writers = 512
	}
	if o.Samples <= 0 {
		o.Samples = 10
	}
	if len(o.Staggers) == 0 {
		o.Staggers = []time.Duration{0, time.Millisecond, 5 * time.Millisecond, 20 * time.Millisecond}
	}
}

// MetadataResult is the study's outcome: per stagger value, the open-storm
// completion time (mean and CoV) and the MDS queue peak.
type MetadataResult struct {
	Table metrics.Table
	// StormTimes[stagger] holds the per-sample storm completion times.
	StormTimes map[time.Duration][]float64
	// QueuePeaks[stagger] holds the per-sample MDS queue peaks.
	QueuePeaks map[time.Duration][]int
}

// MetadataStudy measures a simultaneous file-create storm from N ranks
// against the metadata server, with and without staggering, under
// production noise (service-time variation).
func MetadataStudy(opt MetadataOptions) (*MetadataResult, error) {
	opt.defaults()
	res := &MetadataResult{
		Table: metrics.Table{
			Title: "Metadata open-storm study (future-work extension)",
			Header: []string{"Stagger", "Mean storm time (s)", "CoV",
				"Mean MDS queue peak"},
		},
		StormTimes: map[time.Duration][]float64{},
		QueuePeaks: map[time.Duration][]int{},
	}
	// One replica per (stagger, sample); the whole sweep shares a pool.
	type storm struct {
		time float64
		peak int
	}
	var points []string
	byPoint := map[string]time.Duration{}
	for _, stagger := range opt.Staggers {
		p := stagger.String()
		points = append(points, p)
		byPoint[p] = stagger
	}
	keys := runner.Keys("metadata", points, opt.Samples)
	results, err := runner.Run(runner.Options{Parallel: opt.Parallel}, keys,
		func(k runner.ReplicaKey) (storm, error) {
			t, peak, err := openStorm(opt.Writers, byPoint[k.Point], k.Seed(opt.Seed))
			return storm{time: t, peak: peak}, err
		})
	if err != nil {
		return nil, err
	}

	idx := 0
	for _, stagger := range opt.Staggers {
		for s := 0; s < opt.Samples; s++ {
			r := results[idx]
			idx++
			res.StormTimes[stagger] = append(res.StormTimes[stagger], r.time)
			res.QueuePeaks[stagger] = append(res.QueuePeaks[stagger], r.peak)
		}
		sum := stats.Summarize(res.StormTimes[stagger])
		var peakSum float64
		for _, q := range res.QueuePeaks[stagger] {
			peakSum += float64(q)
		}
		res.Table.AddRow(
			stagger.String(),
			fmt.Sprintf("%.3f", sum.Mean),
			fmt.Sprintf("%.0f%%", sum.CoVPercent()),
			fmt.Sprintf("%.0f", peakSum/float64(len(res.QueuePeaks[stagger]))),
		)
	}
	return res, nil
}

// openStorm has `writers` ranks create one file each (stagger-spaced) and
// returns the storm completion time and MDS queue peak.
func openStorm(writers int, stagger time.Duration, seed int64) (float64, int, error) {
	c, err := cluster.Preset("jaguar", cluster.Config{Seed: seed, NumOSTs: 64})
	if err != nil {
		return 0, 0, err
	}
	defer c.Shutdown()
	fs := c.FileSystem()
	k := c.Kernel()
	wg := simkernel.NewWaitGroup(k)
	wg.Add(writers)
	var last simkernel.Time
	for i := 0; i < writers; i++ {
		i := i
		k.Spawn("opener", func(p *simkernel.Proc) {
			defer wg.Done()
			if stagger > 0 {
				p.Sleep(time.Duration(i) * stagger)
			}
			f, err := fs.Create(p, fmt.Sprintf("storm.%06d", i), pfs.Layout{OSTs: []int{i % 64}})
			if err != nil {
				panic(err)
			}
			f.Close(p)
			if p.Now() > last {
				last = p.Now()
			}
		})
	}
	k.Run()
	return last.Seconds(), fs.MDS.Stats.MaxQueue, nil
}
