package experiments

import (
	"fmt"

	"repro/internal/pfs"
	"repro/internal/scenario"
	"repro/internal/stats"
	"repro/metrics"
)

// Fig1Options configures the internal-interference IOR grid (Figure 1).
// The zero value reproduces the paper: 512 OSTs of Jaguar, writer:OST
// ratios 1..32, per-writer sizes 1 MB–1 GB with weak scaling, 40 samples
// per point, each writer on its own file pinned to one target via POSIX-IO.
type Fig1Options struct {
	// OSTs is the storage-target count (paper: 512). Writer counts are
	// Ratios×OSTs, so reducing it scales the whole grid down while
	// preserving the per-target ratios that drive the effect.
	OSTs int
	// Ratios are the writers-per-OST points (paper: 1..32 by powers of 2).
	Ratios []int
	// SizesMB are the per-writer data sizes (paper: 1 MB to 1024 MB).
	SizesMB []float64
	// Samples per grid point (paper: 40).
	Samples int
	// Seed differentiates the sample streams.
	Seed int64
	// NoNoise disables production background noise (the paper measured on
	// busy production Jaguar; noise supplies the error bars).
	NoNoise bool
	// Parallel bounds the replica worker pool (1 = sequential, <=0 = all
	// cores). Results are bit-identical at every setting: each replica's
	// world derives from its grid coordinates, not its scheduling order.
	Parallel int
}

func (o *Fig1Options) defaults() {
	if o.OSTs <= 0 {
		o.OSTs = 512
	}
	if len(o.Ratios) == 0 {
		o.Ratios = []int{1, 2, 4, 8, 16, 32}
	}
	if len(o.SizesMB) == 0 {
		o.SizesMB = []float64{1, 8, 128, 1024}
	}
	if o.Samples <= 0 {
		o.Samples = 40
	}
}

// Fig1Result carries both panels of Figure 1 plus the raw samples.
type Fig1Result struct {
	// Aggregate is Figure 1(a): aggregate write bandwidth (GB/s) vs writer
	// count, one series per data size, min/max bars over samples.
	Aggregate metrics.Figure
	// PerWriter is Figure 1(b): average per-writer bandwidth (MB/s).
	PerWriter metrics.Figure
	// Samples[size][ratio] holds the raw aggregate-bandwidth samples.
	Samples map[string]map[int][]float64
}

// Fig1Scenario expresses the grid declaratively: the pinned file-per-
// process IOR workload on a scaled Jaguar, swept over per-writer size and
// writers-per-OST ratio. Seed label "fig1" and the "size=%gMB/ratio=%d"
// point labels reproduce the pre-scenario replica streams exactly.
func Fig1Scenario(opt Fig1Options) scenario.Scenario {
	opt.defaults()
	sizes := make([]scenario.Value, len(opt.SizesMB))
	for i, s := range opt.SizesMB {
		sizes[i] = scenario.NumValue(s)
	}
	ratios := make([]scenario.Value, len(opt.Ratios))
	for i, r := range opt.Ratios {
		ratios[i] = scenario.NumValue(float64(r))
	}
	return scenario.Scenario{
		Name:        "fig1",
		Description: "Figure 1: internal-interference IOR grid on Jaguar (weak scaling)",
		Machine:     "jaguar",
		NumOSTs:     opt.OSTs,
		NoNoise:     opt.NoNoise,
		Samples:     opt.Samples,
		Workload:    scenario.Workload{Kind: scenario.KindIOR, PinTargets: true},
		Axes: []scenario.Axis{
			{Name: "size", LabelFmt: "size=%gMB", Values: sizes},
			{Name: "ratio", LabelFmt: "ratio=%d", Values: ratios},
		},
	}
}

// Fig1 runs the internal-interference grid.
func Fig1(opt Fig1Options) (*Fig1Result, error) {
	opt.defaults()
	run, err := scenario.Run(Fig1Scenario(opt), scenario.RunOptions{Seed: opt.Seed, Parallel: opt.Parallel})
	if err != nil {
		return nil, err
	}
	return fig1Demux(run)
}

// fig1Demux rebuilds the two figure panels from a scenario run, grouping
// grid points by their size parameter in encounter order.
func fig1Demux(run *scenario.Result) (*Fig1Result, error) {
	res := &Fig1Result{
		Aggregate: metrics.Figure{
			Title: "Figure 1(a): Scaling of Aggregate Write Bandwidth on Jaguar/Lustre",
			YUnit: "GB/s",
		},
		PerWriter: metrics.Figure{
			Title: "Figure 1(b): Scaling of Per-Writer Write Bandwidth on Jaguar/Lustre",
			YUnit: "MB/s",
		},
		Samples: map[string]map[int][]float64{},
	}
	type sizeSeries struct {
		agg, pw metrics.Series
	}
	var order []string
	bySize := map[string]*sizeSeries{}
	for _, pt := range run.Points {
		sizeMB := pt.Params.Float("size", 0)
		ratio := pt.Params.Int("ratio", 0)
		writers := pt.Params.Int("osts", run.Scenario.NumOSTs) * ratio
		sizeName := fmt.Sprintf("%gMB", sizeMB)
		ss := bySize[sizeName]
		if ss == nil {
			ss = &sizeSeries{agg: metrics.Series{Name: sizeName}, pw: metrics.Series{Name: sizeName}}
			bySize[sizeName] = ss
			order = append(order, sizeName)
			res.Samples[sizeName] = map[int][]float64{}
		}
		var aggSamples, pwSamples []float64
		for _, r := range pt.Samples {
			aggSamples = append(aggSamples, r.AggregateBW/pfs.GB)
			pwSamples = append(pwSamples, r.MeanPerWriterBW()/pfs.MB)
		}
		label := fmt.Sprintf("%d", writers)
		ss.agg.Add(label, aggSamples)
		ss.pw.Add(label, pwSamples)
		res.Samples[sizeName][ratio] = aggSamples
	}
	for _, sizeName := range order {
		res.Aggregate.AddSeries(bySize[sizeName].agg)
		res.PerWriter.AddSeries(bySize[sizeName].pw)
	}
	return res, nil
}

// Fig1ShapeChecks verifies the qualitative claims of the paper's Section II
// against a Fig1Result, returning human-readable violations (empty = all
// shapes hold). The checks mirror the text: per-writer bandwidth decreases
// monotonically with writer count; aggregate bandwidth for ≥128 MB sizes
// peaks by 4 writers/OST and declines 16–28% from 16:1 to 32:1 (a tolerance
// band of 10–40% absorbs simulator noise); cache-absorbed 1 MB writes do
// not collapse.
func Fig1ShapeChecks(r *Fig1Result, opt Fig1Options) []string {
	opt.defaults()
	var bad []string
	for si, s := range r.PerWriter.Series {
		// Per-writer bandwidth must never rise with contention, and must
		// show a clear decline over the full sweep. (At the lowest ratios a
		// clean simulator holds per-writer rates exactly flat — the client
		// cap binds before any sharing does — where the paper's production
		// measurements already drift down; tolerate equality there.)
		for i := 1; i < len(s.Points); i++ {
			if s.Points[i].Value > s.Points[i-1].Value*1.001 {
				bad = append(bad, fmt.Sprintf("per-writer BW increased for %s at %s",
					r.PerWriter.Series[si].Name, s.Points[i].Label))
			}
		}
		if n := len(s.Points); n >= 2 && s.Points[n-1].Value > s.Points[0].Value*0.9 {
			bad = append(bad, fmt.Sprintf("per-writer BW shows no overall decline for %s",
				r.PerWriter.Series[si].Name))
		}
	}
	for _, s := range r.Aggregate.Series {
		if s.Name != "128MB" && s.Name != "1024MB" {
			continue
		}
		idx := map[string]float64{}
		for i, ratio := range opt.Ratios {
			if i < len(s.Points) {
				idx[fmt.Sprintf("r%d", ratio)] = s.Points[i].Value
			}
		}
		if v16, ok16 := idx["r16"]; ok16 {
			if v32, ok32 := idx["r32"]; ok32 {
				drop := (v16 - v32) / v16
				if drop < 0.10 || drop > 0.40 {
					bad = append(bad, fmt.Sprintf("%s 16:1→32:1 decline %.0f%% outside 10–40%%", s.Name, 100*drop))
				}
			}
		}
		if v1, ok1 := idx["r1"]; ok1 {
			if v4, ok4 := idx["r4"]; ok4 && v4 <= v1 {
				bad = append(bad, fmt.Sprintf("%s aggregate does not rise 1:1→4:1", s.Name))
			}
		}
	}
	for _, s := range r.Aggregate.Series {
		if s.Name != "1MB" || len(s.Points) < 2 {
			continue
		}
		first, last := s.Points[0].Value, s.Points[len(s.Points)-1].Value
		if last < first {
			bad = append(bad, "1MB aggregate collapsed despite cache absorption")
		}
	}
	return bad
}

// meanOf is a tiny helper for drivers needing sample means.
func meanOf(xs []float64) float64 { return stats.Summarize(xs).Mean }
