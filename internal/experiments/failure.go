package experiments

import (
	"fmt"
	"strings"

	"repro/internal/pfs"
	"repro/internal/scenario"
	"repro/internal/stats"
	"repro/metrics"
)

// FailureSweepOptions configures the failure-masking study: a Pixie3D
// checkpoint campaign run with and without a scripted OST crash/rebuild
// episode, under the adaptive method and its work-shifting ablation. The
// question is the paper's variability argument pushed to its limit — when a
// storage target does not merely slow down but dies, how much of the outage
// can adaptive writer placement absorb?
type FailureSweepOptions struct {
	// Procs is the application's process count (default 64).
	Procs int
	// Samples per grid point (default 3).
	Samples int
	// NumOSTs scales the simulated machine (default 16).
	NumOSTs int
	// TransportOSTs restricts the transport (default NumOSTs).
	TransportOSTs int
	// CrashAt / DeadFor / RebuildFor / RebuildTax script the single OST 0
	// episode (defaults 0.01s / 0.5s / 2s / 0.5).
	CrashAt, DeadFor, RebuildFor, RebuildTax float64
	// DeadTimeout is how long a request against the dead target hangs
	// before failing with ErrTargetDown (default 0.2s).
	DeadTimeout float64
	// Seed differentiates samples; Parallel bounds the worker pool.
	Seed     int64
	Parallel int
}

func (o *FailureSweepOptions) defaults() {
	if o.Procs <= 0 {
		o.Procs = 64
	}
	if o.Samples <= 0 {
		o.Samples = 3
	}
	if o.NumOSTs <= 0 {
		o.NumOSTs = 16
	}
	if o.TransportOSTs <= 0 || o.TransportOSTs > o.NumOSTs {
		o.TransportOSTs = o.NumOSTs
	}
	if o.CrashAt <= 0 {
		o.CrashAt = 0.01
	}
	if o.DeadFor <= 0 {
		o.DeadFor = 0.5
	}
	if o.RebuildFor <= 0 {
		o.RebuildFor = 2
	}
	if o.RebuildTax <= 0 {
		o.RebuildTax = 0.5
	}
	if o.DeadTimeout <= 0 {
		o.DeadTimeout = 0.2
	}
}

// FailureSweepScenario expresses the study declaratively: the adaptive
// checkpoint campaign over an adapt × failures grid. The failure script is
// declared once in the spec's interference block; the boolean "failures"
// axis arms it per grid point, so the failure-free points exercise the
// exact zero-value path every other scenario runs.
func FailureSweepScenario(opt FailureSweepOptions) scenario.Scenario {
	opt.defaults()
	return scenario.Scenario{
		Name:        "failure-sweep",
		Description: "Failure masking: scripted OST crash/rebuild under adaptive IO vs its work-shifting ablation",
		Machine:     "jaguar",
		NumOSTs:     opt.NumOSTs,
		NoNoise:     true,
		Samples:     opt.Samples,
		Workload: scenario.Workload{
			Kind:      scenario.KindApp,
			Generator: "pixie3d-small",
			Procs:     opt.Procs,
		},
		Transport: scenario.Transport{Method: "ADAPTIVE", OSTs: opt.TransportOSTs},
		Interference: scenario.Interference{
			Failures: scenario.FailuresSpec{
				DeadTimeoutSeconds: opt.DeadTimeout,
				Episodes: []scenario.FailureEpisodeSpec{{
					OST:            0,
					AtSeconds:      opt.CrashAt,
					DeadSeconds:    opt.DeadFor,
					RebuildSeconds: opt.RebuildFor,
					RebuildTax:     opt.RebuildTax,
				}},
			},
		},
		Axes: []scenario.Axis{
			{Name: "adapt", Values: []scenario.Value{
				scenario.BoolValue(true), scenario.BoolValue(false),
			}},
			{Name: "failures", Values: []scenario.Value{
				scenario.BoolValue(false), scenario.BoolValue(true),
			}},
		},
	}
}

// FailureCase is one (adapt, failures) grid point.
type FailureCase struct {
	Adapt    bool
	Failures bool
	// Elapsed / AggBW are the per-sample campaign times (s) and aggregate
	// bandwidths (GB/s).
	Elapsed []float64
	AggBW   []float64
	// WriteFailures are the per-sample counts of client writes abandoned
	// with ErrTargetDown.
	WriteFailures []int
	// AdaptiveWrites are the per-sample redirected-write counts.
	AdaptiveWrites []int
}

// FailureSweepResult is the full grid plus the masking summary.
type FailureSweepResult struct {
	Cases []FailureCase
	// Amplification[adapt] = mean elapsed with failures over mean elapsed
	// without, per method variant: 1.0 means the outage was fully masked.
	Amplification map[bool]float64
	Figure        metrics.Figure
}

// FailureSweep runs the failure-masking study.
func FailureSweep(opt FailureSweepOptions) (*FailureSweepResult, error) {
	opt.defaults()
	run, err := scenario.Run(FailureSweepScenario(opt), scenario.RunOptions{Seed: opt.Seed, Parallel: opt.Parallel})
	if err != nil {
		return nil, fmt.Errorf("failure-sweep: %w", err)
	}
	return failureSweepDemux(run)
}

// failureSweepDemux rebuilds the grid from a scenario run by point label.
func failureSweepDemux(run *scenario.Result) (*FailureSweepResult, error) {
	res := &FailureSweepResult{
		Amplification: map[bool]float64{},
		Figure:        metrics.Figure{Title: "Failure masking: campaign time with vs without a scripted OST outage", YUnit: "seconds"},
	}
	variant := func(adapt bool) string {
		if adapt {
			return "adaptive"
		}
		return "ablation"
	}
	for _, adapt := range []bool{true, false} {
		series := metrics.Series{Name: variant(adapt)}
		clean := 0.0
		for _, failures := range []bool{false, true} {
			label := fmt.Sprintf("adapt=%t/failures=%t", adapt, failures)
			pt := run.Point(label)
			if pt == nil {
				return nil, fmt.Errorf("failure-sweep: grid point %q missing from run", label)
			}
			c := FailureCase{Adapt: adapt, Failures: failures}
			for _, s := range pt.Samples {
				c.Elapsed = append(c.Elapsed, s.Elapsed)
				c.AggBW = append(c.AggBW, s.AggregateBW/pfs.GB)
				c.WriteFailures = append(c.WriteFailures, s.WriteFailures)
				c.AdaptiveWrites = append(c.AdaptiveWrites, s.AdaptiveWrites)
			}
			mean := stats.Summarize(c.Elapsed).Mean
			if !failures {
				clean = mean
			} else if clean > 0 {
				res.Amplification[adapt] = mean / clean
			}
			series.Add(fmt.Sprintf("failures=%t", failures), c.Elapsed)
			res.Cases = append(res.Cases, c)
		}
		res.Figure.AddSeries(series)
	}
	return res, nil
}

// FailureSweepTable renders the grid: one row per (variant, failures) with
// elapsed time, bandwidth, and the failure-path counters.
func FailureSweepTable(r *FailureSweepResult) metrics.Table {
	t := metrics.Table{
		Title:  "Failure masking (scripted OST crash/rebuild, adaptive vs ablation)",
		Header: []string{"Variant", "Failures", "Elapsed (s)", "Agg BW (GB/s)", "Failed writes", "Redirected"},
	}
	for _, c := range r.Cases {
		variant := "ablation"
		if c.Adapt {
			variant = "adaptive"
		}
		t.AddRow(variant, fmt.Sprintf("%t", c.Failures),
			fmt.Sprintf("%.2f", stats.Summarize(c.Elapsed).Mean),
			fmt.Sprintf("%.2f", stats.Summarize(c.AggBW).Mean),
			fmt.Sprintf("%.1f", meanOfInts(c.WriteFailures)),
			fmt.Sprintf("%.1f", meanOfInts(c.AdaptiveWrites)))
	}
	return t
}

// FailureSweepLine condenses the study into one line: each variant's outage
// amplification factor (mean elapsed with failures / without).
func FailureSweepLine(r *FailureSweepResult) string {
	var parts []string
	for _, adapt := range []bool{true, false} {
		variant := "ablation"
		if adapt {
			variant = "adaptive"
		}
		parts = append(parts, fmt.Sprintf("%s %.2fx", variant, r.Amplification[adapt]))
	}
	return "failure-sweep outage amplification: " + strings.Join(parts, ", ")
}

// meanOfInts averages an int sample set.
func meanOfInts(xs []int) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += float64(x)
	}
	return sum / float64(len(xs))
}
