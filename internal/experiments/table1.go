package experiments

import (
	"fmt"

	"repro/cluster"
	"repro/internal/ior"
	"repro/internal/pfs"
	"repro/internal/rngx"
	"repro/internal/runner"
	"repro/internal/stats"
	"repro/metrics"
)

// TableIOptions configures the external-interference variability study
// (Table I, Figure 2, Figure 3). The zero value reproduces the paper:
// hourly IOR tests with 512 writers / one per storage target on Jaguar
// (469 samples), the NERSC 80-writer series on Franklin, and two controlled
// XTP configurations (one IOR job vs two simultaneous IOR jobs).
type TableIOptions struct {
	// JaguarSamples (paper: 469), FranklinSamples (paper: ~2 years of
	// hourly tests; we default to 469 as well), XTPSamples per mode.
	JaguarSamples   int
	FranklinSamples int
	XTPSamples      int
	// BytesPerWriter is the per-writer IOR size (the paper does not state
	// it for the hourly tests; 64 MB gives multi-second transfers that see
	// through cache absorption).
	BytesPerWriter float64
	// Seed differentiates the hourly sample environments.
	Seed int64
	// ScaleOSTs optionally scales each machine's target (and writer) count
	// by this divisor for fast runs (0 or 1 = paper scale).
	ScaleOSTs int
	// Parallel bounds the replica worker pool (1 = sequential, <=0 = all
	// cores). The hourly samples are independent environments, so results
	// are bit-identical at every setting.
	Parallel int
}

func (o *TableIOptions) defaults() {
	if o.JaguarSamples <= 0 {
		o.JaguarSamples = 469
	}
	if o.FranklinSamples <= 0 {
		o.FranklinSamples = 469
	}
	if o.XTPSamples <= 0 {
		o.XTPSamples = 100
	}
	if o.BytesPerWriter <= 0 {
		o.BytesPerWriter = 64 * pfs.MB
	}
	if o.ScaleOSTs <= 0 {
		o.ScaleOSTs = 1
	}
}

// MachineSeries is one row of Table I plus its raw samples.
type MachineSeries struct {
	Machine string
	// BWSamples are per-test aggregate bandwidths in MB/s.
	BWSamples []float64
	// Imbalances are per-test imbalance factors (slowest/fastest writer).
	Imbalances []float64
	Summary    stats.Summary
}

// TableIResult carries the table and the per-machine sample sets that
// Figures 2 and 3 reuse.
type TableIResult struct {
	Table  metrics.Table
	Series []MachineSeries
}

// TableI runs the external-interference variability study.
func TableI(opt TableIOptions) (*TableIResult, error) {
	opt.defaults()
	res := &TableIResult{
		Table: metrics.Table{
			Title: "Table I: IO Performance Variability Due to External Interference",
			Header: []string{"Machine", "Number of Samples", "Avg. IO Bandwidth (MB/sec)",
				"Std. Deviation", "Covariance"},
		},
	}

	type job struct {
		name    string
		samples int
		run     func(seed int64) (float64, []float64, error) // MB/s, writer times
	}
	jobs := []job{
		{
			name:    "Jaguar",
			samples: opt.JaguarSamples,
			run: func(seed int64) (float64, []float64, error) {
				osts := 512 / opt.ScaleOSTs
				return hourlyIOR("jaguar", osts, osts, opt.BytesPerWriter, seed, true)
			},
		},
		{
			name:    "Franklin",
			samples: opt.FranklinSamples,
			run: func(seed int64) (float64, []float64, error) {
				writers := 80 / opt.ScaleOSTs
				if writers < 2 {
					writers = 2
				}
				return hourlyIOR("franklin", 0, writers, opt.BytesPerWriter, seed, true)
			},
		},
		{
			name:    "XTP(with Int.)",
			samples: opt.XTPSamples,
			run: func(seed int64) (float64, []float64, error) {
				writers, blades := xtpScale(opt.ScaleOSTs)
				return xtpIOR(writers, blades, opt.BytesPerWriter, seed, true)
			},
		},
		{
			name:    "XTP(without Int.)",
			samples: opt.XTPSamples,
			run: func(seed int64) (float64, []float64, error) {
				writers, blades := xtpScale(opt.ScaleOSTs)
				return xtpIOR(writers, blades, opt.BytesPerWriter, seed, false)
			},
		},
	}

	// The machines' hourly tests are all independent replicas; run every
	// (machine, sample) pair on one worker pool and demux positionally.
	type hourly struct {
		bw    float64
		times []float64
	}
	var keys []runner.ReplicaKey
	byName := map[string]job{}
	for _, j := range jobs {
		byName[j.name] = j
		keys = append(keys, runner.SampleKeys("table1", j.name, j.samples)...)
	}
	results, err := runner.Run(runner.Options{Parallel: opt.Parallel}, keys,
		func(k runner.ReplicaKey) (hourly, error) {
			bw, times, err := byName[k.Point].run(k.Seed(opt.Seed))
			return hourly{bw: bw, times: times}, err
		})
	if err != nil {
		return nil, err
	}

	idx := 0
	for _, j := range jobs {
		ms := MachineSeries{Machine: j.name}
		for s := 0; s < j.samples; s++ {
			r := results[idx]
			idx++
			ms.BWSamples = append(ms.BWSamples, r.bw)
			ms.Imbalances = append(ms.Imbalances, stats.ImbalanceFactor(r.times))
		}
		ms.Summary = stats.Summarize(ms.BWSamples)
		res.Series = append(res.Series, ms)
		res.Table.AddRow(
			j.name,
			fmt.Sprintf("%d", ms.Summary.N),
			fmt.Sprintf("%.3e", ms.Summary.Mean),
			fmt.Sprintf("%.3e", ms.Summary.StdDev),
			fmt.Sprintf("%.0f%%", ms.Summary.CoVPercent()),
		)
	}
	return res, nil
}

// hourlyIOR runs one hourly-test sample: a fresh production environment
// (noise state differs per seed, as the machine's load differs per hour)
// and a single IOR with one writer per target.
func hourlyIOR(machine string, numOSTs, writers int, bytes float64, seed int64, noise bool) (float64, []float64, error) {
	c, err := cluster.Preset(machine, cluster.Config{
		Seed:            seed,
		NumOSTs:         numOSTs,
		ProductionNoise: noise,
	})
	if err != nil {
		return 0, nil, err
	}
	defer c.Shutdown()
	r, err := ior.Execute(c.FileSystem(), ior.Config{
		Writers:        writers,
		BytesPerWriter: bytes,
		Mode:           ior.FilePerProcess,
	})
	if err != nil {
		return 0, nil, err
	}
	return r.AggregateBW / pfs.MB, r.WriterTimes, nil
}

// xtpScale shrinks both the writer count and blade count by the scale
// divisor, preserving the writers-per-blade ratio that drives contention.
func xtpScale(scale int) (writers, blades int) {
	writers = 512 / scale
	blades = 40 / scale
	if blades < 2 {
		blades = 2
	}
	if writers < 2*blades {
		writers = 2 * blades
	}
	return writers, blades
}

// xtpIOR runs one XTP sample: one IOR alone, or two simultaneous IOR
// programs (the paper's controlled interference), measuring the first.
func xtpIOR(writers, blades int, bytes float64, seed int64, withInterference bool) (float64, []float64, error) {
	c, err := cluster.Preset("xtp", cluster.Config{Seed: seed, NumOSTs: blades})
	if err != nil {
		return 0, nil, err
	}
	defer c.Shutdown()
	fs := c.FileSystem()
	runA, err := ior.Launch(fs, ior.Config{
		Writers:        writers,
		BytesPerWriter: bytes,
		Mode:           ior.FilePerProcess,
		Tag:            "A",
	})
	if err != nil {
		return 0, nil, err
	}
	var runB *ior.Run
	var launchErr error
	if withInterference {
		// The second job starts at a seed-varied offset within the first
		// job's run, as two batch jobs on a real machine overlap at an
		// arbitrary phase — the source of the up-to-43% variability the
		// paper measures on XTP.
		rng := rngx.NewNamed(seed, "xtp-phase")
		estimate := float64(writers) * bytes / (float64(len(fs.OSTs)) * fs.Cfg.DiskBW * 0.8)
		delay := rng.Uniform(0, estimate)
		c.Kernel().AfterSeconds(delay, func() {
			runB, launchErr = ior.Launch(fs, ior.Config{
				Writers:        writers,
				BytesPerWriter: bytes,
				Mode:           ior.FilePerProcess,
				Tag:            "B",
			})
		})
	}
	c.Run()
	if launchErr != nil {
		return 0, nil, launchErr
	}
	if !runA.Done() || (runB != nil && !runB.Done()) {
		return 0, nil, fmt.Errorf("xtp IOR did not complete")
	}
	r := runA.Result()
	return r.AggregateBW / pfs.MB, r.WriterTimes, nil
}

// Fig2 renders the Table I sample sets as the paper's bandwidth histograms.
func Fig2(t *TableIResult, bins int) []metrics.HistogramFigure {
	if bins <= 0 {
		bins = 12
	}
	out := make([]metrics.HistogramFigure, 0, len(t.Series))
	panel := 'a'
	for _, ms := range t.Series {
		out = append(out, metrics.HistogramFigure{
			Title: fmt.Sprintf("Figure 2(%c): %s", panel, ms.Machine),
			XUnit: "IO bandwidth (MB/s)",
			Bins:  bins,
			Data:  append([]float64(nil), ms.BWSamples...),
		})
		panel++
	}
	return out
}

// Fig3Options configures the imbalanced-writers illustration.
type Fig3Options struct {
	// OSTs and writers (one per target); paper: 512, 128 MB per process.
	OSTs           int
	BytesPerWriter float64
	// GapSeconds is the virtual time between Test 1 and Test 2 (paper: the
	// second test ran "only 3 minutes later").
	GapSeconds float64
	// AverageOver is how many additional tests feed the overall average
	// imbalance factor the paper reports.
	AverageOver int
	Seed        int64
	// Parallel bounds the worker pool for the AverageOver replicas (the two
	// headline tests share one environment and stay sequential).
	Parallel int
}

func (o *Fig3Options) defaults() {
	if o.OSTs <= 0 {
		o.OSTs = 512
	}
	if o.BytesPerWriter <= 0 {
		o.BytesPerWriter = 128 * pfs.MB
	}
	if o.GapSeconds <= 0 {
		o.GapSeconds = 180
	}
	if o.AverageOver <= 0 {
		o.AverageOver = 40
	}
}

// Fig3Result carries the two per-writer time profiles and the imbalance
// statistics.
type Fig3Result struct {
	Test1Times []float64
	Test2Times []float64
	Imbalance1 float64
	Imbalance2 float64
	// AvgImbalance is the overall average imbalance factor across
	// AverageOver independent tests (the paper reports ~2 overall, with
	// individual tests up to 3.44).
	AvgImbalance float64
	MaxImbalance float64
}

// Fig3 runs two IOR tests GapSeconds apart on one busy Jaguar environment,
// demonstrating the transient nature of external interference, plus a
// sample series for the average imbalance factor.
func Fig3(opt Fig3Options) (*Fig3Result, error) {
	opt.defaults()
	c, err := cluster.Preset("jaguar", cluster.Config{
		Seed:            opt.Seed,
		NumOSTs:         opt.OSTs,
		ProductionNoise: true,
	})
	if err != nil {
		return nil, err
	}
	defer c.Shutdown()
	fs := c.FileSystem()
	cfg := ior.Config{
		Writers:        opt.OSTs,
		OSTs:           firstN(opt.OSTs),
		BytesPerWriter: opt.BytesPerWriter,
		Mode:           ior.FilePerProcess,
		Tag:            "t1",
	}
	r1, err := ior.Execute(fs, cfg)
	if err != nil {
		return nil, err
	}
	// Advance the clock: the machine's load drifts for GapSeconds.
	c.RunFor(secondsToDuration(opt.GapSeconds))
	cfg.Tag = "t2"
	r2, err := ior.Execute(fs, cfg)
	if err != nil {
		return nil, err
	}
	res := &Fig3Result{
		Test1Times: r1.WriterTimes,
		Test2Times: r2.WriterTimes,
		Imbalance1: r1.ImbalanceFactor,
		Imbalance2: r2.ImbalanceFactor,
	}

	factors, err := runner.Run(runner.Options{Parallel: opt.Parallel},
		runner.SampleKeys("fig3", "imbalance", opt.AverageOver),
		func(k runner.ReplicaKey) (float64, error) {
			_, times, err := hourlyIOR("jaguar", opt.OSTs, opt.OSTs, opt.BytesPerWriter,
				k.Seed(opt.Seed), true)
			if err != nil {
				return 0, err
			}
			return stats.ImbalanceFactor(times), nil
		})
	if err != nil {
		return nil, err
	}
	var acc stats.Accumulator
	maxI := 0.0
	for _, f := range factors {
		acc.Add(f)
		if f > maxI {
			maxI = f
		}
	}
	res.AvgImbalance = acc.Summary().Mean
	res.MaxImbalance = maxI
	return res, nil
}
