package experiments

import (
	"fmt"

	"repro/cluster"
	"repro/internal/ior"
	"repro/internal/pfs"
	"repro/internal/scenario"
	"repro/internal/stats"
	"repro/metrics"
)

// TableIOptions configures the external-interference variability study
// (Table I, Figure 2, Figure 3). The zero value reproduces the paper:
// hourly IOR tests with 512 writers / one per storage target on Jaguar
// (469 samples), the NERSC 80-writer series on Franklin, and two controlled
// XTP configurations (one IOR job vs two simultaneous IOR jobs).
type TableIOptions struct {
	// JaguarSamples (paper: 469), FranklinSamples (paper: ~2 years of
	// hourly tests; we default to 469 as well), XTPSamples per mode.
	JaguarSamples   int
	FranklinSamples int
	XTPSamples      int
	// BytesPerWriter is the per-writer IOR size (the paper does not state
	// it for the hourly tests; 64 MB gives multi-second transfers that see
	// through cache absorption).
	BytesPerWriter float64
	// Seed differentiates the hourly sample environments.
	Seed int64
	// ScaleOSTs optionally scales each machine's target (and writer) count
	// by this divisor for fast runs (0 or 1 = paper scale).
	ScaleOSTs int
	// Parallel bounds the replica worker pool (1 = sequential, <=0 = all
	// cores). The hourly samples are independent environments, so results
	// are bit-identical at every setting.
	Parallel int
}

func (o *TableIOptions) defaults() {
	if o.JaguarSamples <= 0 {
		o.JaguarSamples = 469
	}
	if o.FranklinSamples <= 0 {
		o.FranklinSamples = 469
	}
	if o.XTPSamples <= 0 {
		o.XTPSamples = 100
	}
	if o.BytesPerWriter <= 0 {
		o.BytesPerWriter = 64 * pfs.MB
	}
	if o.ScaleOSTs <= 0 {
		o.ScaleOSTs = 1
	}
}

// MachineSeries is one row of Table I plus its raw samples.
type MachineSeries struct {
	Machine string
	// BWSamples are per-test aggregate bandwidths in MB/s.
	BWSamples []float64
	// Imbalances are per-test imbalance factors (slowest/fastest writer).
	Imbalances []float64
	Summary    stats.Summary
}

// TableIResult carries the table and the per-machine sample sets that
// Figures 2 and 3 reuse.
type TableIResult struct {
	Table  metrics.Table
	Series []MachineSeries
}

// TableIScenario expresses the study declaratively: one "machine" axis
// whose values carry With bundles switching machine preset, target/writer
// counts, noise and workload kind together — Table I's rows are literally
// four configurations of one spec. Seed label "table1" and the row-name
// point labels reproduce the pre-scenario replica streams exactly.
func TableIScenario(opt TableIOptions) scenario.Scenario {
	opt.defaults()
	osts := 512 / opt.ScaleOSTs
	franklinWriters := 80 / opt.ScaleOSTs
	if franklinWriters < 2 {
		franklinWriters = 2
	}
	xtpWriters, xtpBlades := xtpScale(opt.ScaleOSTs)
	num := func(n int) scenario.Value { return scenario.NumValue(float64(n)) }
	machine := func(preset, label string, samples int, with map[string]scenario.Value) scenario.Value {
		v := scenario.StrValue(preset)
		v.Label = label
		v.Samples = samples
		v.With = with
		return v
	}
	xtpWith := func(withInterference bool) map[string]scenario.Value {
		return map[string]scenario.Value{
			"kind":              scenario.StrValue(scenario.KindPairedIOR),
			"osts":              num(xtpBlades),
			"writers":           num(xtpWriters),
			"noise":             scenario.BoolValue(false),
			"with_interference": scenario.BoolValue(withInterference),
		}
	}
	return scenario.Scenario{
		Name:        "table1",
		Description: "Table I: external-interference variability on Jaguar, Franklin and XTP",
		Samples:     opt.JaguarSamples,
		Workload:    scenario.Workload{Kind: scenario.KindIOR, Bytes: opt.BytesPerWriter},
		Axes: []scenario.Axis{{
			Name: "machine",
			Values: []scenario.Value{
				machine("jaguar", "Jaguar", opt.JaguarSamples, map[string]scenario.Value{
					"osts": num(osts), "writers": num(osts),
				}),
				machine("franklin", "Franklin", opt.FranklinSamples, map[string]scenario.Value{
					"writers": num(franklinWriters),
				}),
				machine("xtp", "XTP(with Int.)", opt.XTPSamples, xtpWith(true)),
				machine("xtp", "XTP(without Int.)", opt.XTPSamples, xtpWith(false)),
			},
		}},
	}
}

// TableI runs the external-interference variability study.
func TableI(opt TableIOptions) (*TableIResult, error) {
	opt.defaults()
	run, err := scenario.Run(TableIScenario(opt), scenario.RunOptions{Seed: opt.Seed, Parallel: opt.Parallel})
	if err != nil {
		return nil, err
	}
	return tableIDemux(run)
}

// tableIDemux reduces the scenario run to the paper's table, one machine
// row per grid point in axis order.
func tableIDemux(run *scenario.Result) (*TableIResult, error) {
	res := &TableIResult{
		Table: metrics.Table{
			Title: "Table I: IO Performance Variability Due to External Interference",
			Header: []string{"Machine", "Number of Samples", "Avg. IO Bandwidth (MB/sec)",
				"Std. Deviation", "Covariance"},
		},
	}
	for _, pt := range run.Points {
		ms := MachineSeries{Machine: pt.Label}
		for _, r := range pt.Samples {
			ms.BWSamples = append(ms.BWSamples, r.AggregateBW/pfs.MB)
			ms.Imbalances = append(ms.Imbalances, stats.ImbalanceFactor(r.WriterTimes))
		}
		ms.Summary = stats.Summarize(ms.BWSamples)
		res.Series = append(res.Series, ms)
		res.Table.AddRow(
			pt.Label,
			fmt.Sprintf("%d", ms.Summary.N),
			fmt.Sprintf("%.3e", ms.Summary.Mean),
			fmt.Sprintf("%.3e", ms.Summary.StdDev),
			fmt.Sprintf("%.0f%%", ms.Summary.CoVPercent()),
		)
	}
	return res, nil
}

// xtpScale shrinks both the writer count and blade count by the scale
// divisor, preserving the writers-per-blade ratio that drives contention.
func xtpScale(scale int) (writers, blades int) {
	writers = 512 / scale
	blades = 40 / scale
	if blades < 2 {
		blades = 2
	}
	if writers < 2*blades {
		writers = 2 * blades
	}
	return writers, blades
}

// Fig2 renders the Table I sample sets as the paper's bandwidth histograms.
func Fig2(t *TableIResult, bins int) []metrics.HistogramFigure {
	if bins <= 0 {
		bins = 12
	}
	out := make([]metrics.HistogramFigure, 0, len(t.Series))
	panel := 'a'
	for _, ms := range t.Series {
		out = append(out, metrics.HistogramFigure{
			Title: fmt.Sprintf("Figure 2(%c): %s", panel, ms.Machine),
			XUnit: "IO bandwidth (MB/s)",
			Bins:  bins,
			Data:  append([]float64(nil), ms.BWSamples...),
		})
		panel++
	}
	return out
}

// Fig3Options configures the imbalanced-writers illustration.
type Fig3Options struct {
	// OSTs and writers (one per target); paper: 512, 128 MB per process.
	OSTs           int
	BytesPerWriter float64
	// GapSeconds is the virtual time between Test 1 and Test 2 (paper: the
	// second test ran "only 3 minutes later").
	GapSeconds float64
	// AverageOver is how many additional tests feed the overall average
	// imbalance factor the paper reports.
	AverageOver int
	Seed        int64
	// Parallel bounds the worker pool for the AverageOver replicas (the two
	// headline tests share one environment and stay sequential).
	Parallel int
}

func (o *Fig3Options) defaults() {
	if o.OSTs <= 0 {
		o.OSTs = 512
	}
	if o.BytesPerWriter <= 0 {
		o.BytesPerWriter = 128 * pfs.MB
	}
	if o.GapSeconds <= 0 {
		o.GapSeconds = 180
	}
	if o.AverageOver <= 0 {
		o.AverageOver = 40
	}
}

// Fig3Result carries the two per-writer time profiles and the imbalance
// statistics.
type Fig3Result struct {
	Test1Times []float64
	Test2Times []float64
	Imbalance1 float64
	Imbalance2 float64
	// AvgImbalance is the overall average imbalance factor across
	// AverageOver independent tests (the paper reports ~2 overall, with
	// individual tests up to 3.44).
	AvgImbalance float64
	MaxImbalance float64
}

// Fig3 runs two IOR tests GapSeconds apart on one busy Jaguar environment,
// demonstrating the transient nature of external interference, plus a
// sample series for the average imbalance factor.
func Fig3(opt Fig3Options) (*Fig3Result, error) {
	opt.defaults()
	c, err := cluster.Preset("jaguar", cluster.Config{
		Seed:            opt.Seed,
		NumOSTs:         opt.OSTs,
		ProductionNoise: true,
	})
	if err != nil {
		return nil, err
	}
	defer c.Shutdown()
	fs := c.FileSystem()
	cfg := ior.Config{
		Writers:        opt.OSTs,
		OSTs:           firstN(opt.OSTs),
		BytesPerWriter: opt.BytesPerWriter,
		Mode:           ior.FilePerProcess,
		Tag:            "t1",
	}
	r1, err := ior.Execute(fs, cfg)
	if err != nil {
		return nil, err
	}
	// Advance the clock: the machine's load drifts for GapSeconds.
	c.RunFor(secondsToDuration(opt.GapSeconds))
	cfg.Tag = "t2"
	r2, err := ior.Execute(fs, cfg)
	if err != nil {
		return nil, err
	}
	res := &Fig3Result{
		Test1Times: r1.WriterTimes,
		Test2Times: r2.WriterTimes,
		Imbalance1: r1.ImbalanceFactor,
		Imbalance2: r2.ImbalanceFactor,
	}

	// The average-imbalance series is an unlabeled inline scenario: the
	// hourly-test shape at this option set, seed label "fig3", single grid
	// point "imbalance" — the same replica stream the bespoke loop drew.
	avg, err := scenario.Run(scenario.Scenario{
		Name:       "fig3",
		PointLabel: "imbalance",
		Machine:    "jaguar",
		NumOSTs:    opt.OSTs,
		Samples:    opt.AverageOver,
		Workload: scenario.Workload{
			Kind:    scenario.KindIOR,
			Writers: opt.OSTs,
			Bytes:   opt.BytesPerWriter,
		},
	}, scenario.RunOptions{Seed: opt.Seed, Parallel: opt.Parallel})
	if err != nil {
		return nil, err
	}
	var acc stats.Accumulator
	maxI := 0.0
	for _, smp := range avg.Points[0].Samples {
		f := stats.ImbalanceFactor(smp.WriterTimes)
		acc.Add(f)
		if f > maxI {
			maxI = f
		}
	}
	res.AvgImbalance = acc.Summary().Mean
	res.MaxImbalance = maxI
	return res, nil
}
