package experiments

import (
	"reflect"
	"strings"
	"testing"

	"repro/adios"
	"repro/internal/scenario"
)

// tinyJobMix is the frontier study at smoke scale: the default template
// list with shrunken jobs, two concurrency levels, one sample.
func tinyJobMix() JobMixOptions {
	return JobMixOptions{
		Jobs: []scenario.JobSpec{
			{Name: "ckpt", Kind: scenario.JobKindApp, Generator: "pixie3d-small",
				Procs: 4, Phases: 2, PeriodSeconds: 2},
			{Name: "train", Kind: scenario.JobKindMLRead, Procs: 4, SizeMB: 2,
				Phases: 2, PeriodSeconds: 1, StartSeconds: 1},
			{Name: "meta", Kind: scenario.JobKindMDTest, Procs: 2, FilesPerRank: 4,
				Phases: 2, PeriodSeconds: 1},
		},
		MaxJobs: 3, Samples: 2, NumOSTs: 8, MPIOSTs: 4, AdaptiveOSTs: 8,
		Seed: 11,
	}
}

// TestJobMixFrontier runs the saturation-frontier driver end to end and
// checks the demux: a case per (method, njobs) in sweep order, per-job
// stats in launch order, and efficiencies anchored at 1.0 for each
// method's least-contended point.
func TestJobMixFrontier(t *testing.T) {
	r, err := JobMix(tinyJobMix())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Cases) != 6 { // 2 methods x njobs 1..3
		t.Fatalf("cases = %d, want 6", len(r.Cases))
	}
	for i, c := range r.Cases {
		wantMethod := adios.MethodMPI
		if i >= 3 {
			wantMethod = adios.MethodAdaptive
		}
		if c.Method != wantMethod || c.NJobs != i%3+1 {
			t.Fatalf("case %d is (%s, %d); want (%s, %d)", i, c.Method, c.NJobs, wantMethod, i%3+1)
		}
		if len(c.Jobs) != c.NJobs {
			t.Errorf("case %d has %d job stats, want %d", i, len(c.Jobs), c.NJobs)
		}
		if len(c.AggBW) != 2 {
			t.Errorf("case %d has %d samples, want 2", i, len(c.AggBW))
		}
		if c.NJobs == 1 && c.Efficiency != 1 {
			t.Errorf("case %d: 1-job efficiency = %g, want 1 (its own reference)", i, c.Efficiency)
		}
		if c.Efficiency <= 0 {
			t.Errorf("case %d: efficiency = %g, want > 0", i, c.Efficiency)
		}
		for _, j := range c.Jobs {
			if j.Efficiency <= 0 {
				t.Errorf("case %d job %s: per-job efficiency = %g, want > 0", i, j.Name, j.Efficiency)
			}
		}
	}
	if len(r.Figure.Series) != 2 {
		t.Errorf("figure has %d series, want one per method", len(r.Figure.Series))
	}
	tbl := JobMixTable(r)
	if len(tbl.Rows) != 6 {
		t.Errorf("table has %d rows, want 6", len(tbl.Rows))
	}
	line := JobMixLine(r)
	if !strings.Contains(line, "MPI") || !strings.Contains(line, "ADAPTIVE") || !strings.Contains(line, "3 jobs") {
		t.Errorf("summary line %q missing method/depth", line)
	}
}

// TestJobMixFrontierParallelIdentical pins the frontier campaign's
// determinism at the driver level: 1 worker and 8 workers produce the
// same cases bit for bit.
func TestJobMixFrontierParallelIdentical(t *testing.T) {
	opt := tinyJobMix()
	opt.Parallel = 1
	seq, err := JobMix(opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Parallel = 8
	par, err := JobMix(opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq.Cases, par.Cases) {
		t.Fatalf("frontier diverged across worker counts:\n seq %+v\n par %+v", seq.Cases, par.Cases)
	}
}

// TestJobMixRegistered checks the CLI surface: the frontier is a
// registered scenario whose quick preset compiles and validates.
func TestJobMixRegistered(t *testing.T) {
	def, ok := scenario.Lookup("jobmix-frontier")
	if !ok {
		t.Fatal("jobmix-frontier not registered")
	}
	spec, err := def.Spec("quick")
	if err != nil {
		t.Fatal(err)
	}
	if err := spec.Validate(); err != nil {
		t.Fatalf("quick preset invalid: %v", err)
	}
	if len(spec.Jobs) < 3 {
		t.Fatalf("quick preset declares %d job templates, want >= 3 heterogeneous jobs", len(spec.Jobs))
	}
	if _, err := def.Spec("warp"); err == nil {
		t.Fatal("unknown mode must error")
	}
}

// TestJobMixFairness pins the fairness demux: slowdowns are pooled per
// (job, sample) against each template's least-contended reference, the
// quantiles are ordered, and a single uncontended job whose reference is
// its own mean sits at a slowdown of ~1.
func TestJobMixFairness(t *testing.T) {
	r, err := JobMix(tinyJobMix())
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range r.Cases {
		f := c.Fairness
		if !(f.P50 > 0 && f.P95 > 0 && f.Max > 0) {
			t.Fatalf("case %d: fairness not populated: %+v", i, f)
		}
		if f.P50 > f.P95 || f.P95 > f.Max {
			t.Errorf("case %d: quantiles out of order: %+v", i, f)
		}
		if c.NJobs == 1 {
			// The single job's reference is its own cross-sample mean, so
			// per-sample slowdowns straddle 1: the pool's median must be
			// near 1 and its extremes within sample noise of it.
			if f.P50 < 0.5 || f.P50 > 2 {
				t.Errorf("case %d: 1-job median slowdown = %g, want ~1", i, f.P50)
			}
			if f.Max < 1-1e-9 {
				t.Errorf("case %d: 1-job max slowdown = %g, want >= 1 (mean reference)", i, f.Max)
			}
		}
	}
	tbl := JobMixTable(r)
	if len(tbl.Header) != 7 {
		t.Fatalf("table header = %v, want 7 columns including slowdown", tbl.Header)
	}
	if !strings.Contains(tbl.Header[5], "Slowdown") {
		t.Errorf("header %v missing slowdown column", tbl.Header)
	}
}
