package experiments

import (
	"fmt"
	"strings"

	"repro/internal/scenario"
	"repro/internal/workloads"
	"repro/metrics"
)

// init publishes every driver through the scenario registry, so the CLIs'
// -scenario flag reaches the same specs (and the same artifact renderers)
// the drivers use. Renderers rebuild the canonical tables and figures from
// the generic Result, keeping -scenario output identical to the drivers'.
func init() {
	scenario.Register(scenario.Definition{
		Name:        "fig1",
		Description: "Figure 1: internal-interference IOR grid (aggregate + per-writer bandwidth)",
		Spec: func(mode string) (scenario.Scenario, error) {
			opt, err := Fig1Preset(mode)
			if err != nil {
				return scenario.Scenario{}, err
			}
			return Fig1Scenario(opt), nil
		},
		Render: renderFig1,
	})
	scenario.Register(scenario.Definition{
		Name:        "table1",
		Description: "Table I + Figure 2: external-interference variability on three machines",
		Spec: func(mode string) (scenario.Scenario, error) {
			opt, err := TableIPreset(mode)
			if err != nil {
				return scenario.Scenario{}, err
			}
			return TableIScenario(opt), nil
		},
		Render: renderTableI,
	})
	evalDef := func(name, title string, gen workloads.Generator) {
		scenario.Register(scenario.Definition{
			Name:        name,
			Description: title,
			Spec: func(mode string) (scenario.Scenario, error) {
				opt, err := EvalPreset(mode)
				if err != nil {
					return scenario.Scenario{}, err
				}
				return EvalScenario(gen, opt), nil
			},
			Render: func(res *scenario.Result, opt scenario.RunOptions) ([]scenario.Artifact, []string, error) {
				return renderEval(res, name, title)
			},
		})
	}
	evalDef("fig5-small", "Figure 5(a): Pixie3D Small Data (2 MB/process)",
		workloads.Pixie3DGen(workloads.Pixie3DSmall))
	evalDef("fig5-large", "Figure 5(b): Pixie3D Large Data (128 MB/process)",
		workloads.Pixie3DGen(workloads.Pixie3DLarge))
	evalDef("fig5-xl", "Figure 5(c): Pixie3D Extra Large Data (1024 MB/process)",
		workloads.Pixie3DGen(workloads.Pixie3DXL))
	evalDef("fig6", "Figure 6: XGC1 IO Performance (38 MB/process)", workloads.XGC1Gen())
	scenario.Register(scenario.Definition{
		Name:        "jobmix-frontier",
		Description: "Saturation frontier: heterogeneous job mix, static vs adaptive, 1→N concurrent jobs",
		Spec: func(mode string) (scenario.Scenario, error) {
			opt, err := JobMixPreset(mode)
			if err != nil {
				return scenario.Scenario{}, err
			}
			return JobMixScenario(opt), nil
		},
		Render: renderJobMix,
	})
	scenario.Register(scenario.Definition{
		Name:        "failure-sweep",
		Description: "Failure masking: scripted OST crash/rebuild under adaptive IO vs its work-shifting ablation",
		Spec: func(mode string) (scenario.Scenario, error) {
			opt, err := FailureSweepPreset(mode)
			if err != nil {
				return scenario.Scenario{}, err
			}
			return FailureSweepScenario(opt), nil
		},
		Render: renderFailureSweep,
	})
	scenario.Register(scenario.Definition{
		Name:        "metadata",
		Description: "Metadata open-storm study (future-work extension)",
		Spec: func(mode string) (scenario.Scenario, error) {
			opt, err := MetadataPreset(mode)
			if err != nil {
				return scenario.Scenario{}, err
			}
			return MetadataScenario(opt), nil
		},
		Render: func(res *scenario.Result, opt scenario.RunOptions) ([]scenario.Artifact, []string, error) {
			md, err := metadataDemux(res)
			if err != nil {
				return nil, nil, err
			}
			return []scenario.Artifact{{Name: "metadata.txt", Text: md.Table.Render()}}, nil, nil
		},
	})
}

// fig1OptionsFromSpec recovers the driver options a Fig1 spec was built
// from, so auxiliary runs (the shape-check grid) and the shape checks
// themselves see the scenario's actual dimensions.
func fig1OptionsFromSpec(s scenario.Scenario) Fig1Options {
	opt := Fig1Options{OSTs: s.NumOSTs, Samples: s.Samples, NoNoise: s.NoNoise}
	for _, ax := range s.Axes {
		switch ax.Name {
		case "ratio":
			for _, v := range ax.Values {
				opt.Ratios = append(opt.Ratios, int(v.Float()))
			}
		case "size":
			for _, v := range ax.Values {
				opt.SizesMB = append(opt.SizesMB, v.Float())
			}
		}
	}
	return opt
}

func renderFig1(res *scenario.Result, ropt scenario.RunOptions) ([]scenario.Artifact, []string, error) {
	r, err := fig1Demux(res)
	if err != nil {
		return nil, nil, err
	}
	text := r.Aggregate.Render() + "\n" + r.PerWriter.Render()
	// The grid above is measured under production noise, as the paper's
	// was. The qualitative shape claims concern *internal* interference, so
	// they are validated against a noise-free run of the same spec.
	clean := res.Scenario
	clean.NoNoise = true
	clean.Samples = 2
	crun, err := scenario.Run(clean, scenario.RunOptions{Seed: ropt.Seed, Parallel: ropt.Parallel})
	if err != nil {
		return nil, nil, err
	}
	cres, err := fig1Demux(crun)
	if err != nil {
		return nil, nil, err
	}
	opt := fig1OptionsFromSpec(clean)
	var summary []string
	if bad := Fig1ShapeChecks(cres, opt); len(bad) > 0 {
		text += "\nshape-check (noise-free grid) violations:\n  " + strings.Join(bad, "\n  ") + "\n"
		summary = append(summary, fmt.Sprintf("Fig 1: %d shape violations (see fig1.txt)", len(bad)))
	} else {
		text += "\nshape-check: all Figure 1 qualitative claims hold on the noise-free grid\n"
		summary = append(summary, fmt.Sprintf("Fig 1: internal-interference shapes hold (%d grid points)",
			len(opt.Ratios)*len(opt.SizesMB)))
	}
	return []scenario.Artifact{{Name: "fig1.txt", Text: text}}, summary, nil
}

func renderTableI(res *scenario.Result, _ scenario.RunOptions) ([]scenario.Artifact, []string, error) {
	t1, err := tableIDemux(res)
	if err != nil {
		return nil, nil, err
	}
	var b strings.Builder
	b.WriteString(t1.Table.Render())
	b.WriteString("\nImbalance factors (slowest/fastest writer):\n")
	var summary []string
	for _, s := range t1.Series {
		sum := metrics.Summarize(s.Imbalances)
		fmt.Fprintf(&b, "  %-20s avg %.2f  max %.2f\n", s.Machine, sum.Mean, sum.Max)
		summary = append(summary, fmt.Sprintf("Table I %-18s CoV %.0f%%", s.Machine, s.Summary.CoVPercent()))
	}
	var h strings.Builder
	for _, hist := range Fig2(t1, 12) {
		h.WriteString(hist.Render())
		h.WriteByte('\n')
	}
	return []scenario.Artifact{
		{Name: "table1.txt", Text: b.String()},
		{Name: "fig2.txt", Text: h.String()},
	}, summary, nil
}

func renderJobMix(res *scenario.Result, _ scenario.RunOptions) ([]scenario.Artifact, []string, error) {
	r, err := jobMixDemux(res)
	if err != nil {
		return nil, nil, err
	}
	tbl := JobMixTable(r)
	text := r.Figure.Render() + "\n" + tbl.Render()
	return []scenario.Artifact{{Name: "jobmix.txt", Text: text}},
		[]string{JobMixLine(r)}, nil
}

func renderFailureSweep(res *scenario.Result, _ scenario.RunOptions) ([]scenario.Artifact, []string, error) {
	r, err := failureSweepDemux(res)
	if err != nil {
		return nil, nil, err
	}
	tbl := FailureSweepTable(r)
	text := r.Figure.Render() + "\n" + tbl.Render()
	return []scenario.Artifact{{Name: "failure-sweep.txt", Text: text}},
		[]string{FailureSweepLine(r)}, nil
}

func renderEval(res *scenario.Result, name, title string) ([]scenario.Artifact, []string, error) {
	er, err := evalDemux(res, title)
	if err != nil {
		return nil, nil, err
	}
	var b strings.Builder
	b.WriteString(er.Figure.Render())
	b.WriteByte('\n')
	tbl := SpeedupSummary(er)
	b.WriteString(tbl.Render())
	b.WriteByte('\n')
	return []scenario.Artifact{{Name: name + ".txt", Text: b.String()}},
		[]string{SpeedupLine(er)}, nil
}
