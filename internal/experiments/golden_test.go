package experiments

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash"
	"math"
	"sort"
	"testing"

	"repro/internal/workloads"
)

// Golden-checksum regression tests: each driver below runs a fixed-seed
// scaled-down campaign and hashes every raw sample (exact float64 bits) plus
// the rendered artifact. The pinned digests were captured before the
// allocation-free kernel/pfs rework; any optimization that perturbs event
// ordering or floating-point evaluation order fails these tests loudly
// instead of silently shifting the paper's tables and figures.
//
// If a change is *supposed* to alter simulation results, rerun with
//	go test ./internal/experiments -run TestGolden -v
// and update the constants from the failure output.

const (
	goldenFig1Digest   = "61971c8263cabb7a6ca26c06b96fc8db383743a1577b8c48a58071573e46aea6"
	goldenTableIDigest = "ea644d461215ae0a8e944b3edaefd2bbb1b6cdf10d988ba60ede438d75cba782"
	goldenFig5Digest   = "ef845f8698e987f375cb7d79d362634781a3b97ea767ee672406429d4d5287e3"
)

func hashFloats(h hash.Hash, xs []float64) {
	var b [8]byte
	for _, x := range xs {
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(x))
		h.Write(b[:])
	}
}

func hashInts(h hash.Hash, xs []int) {
	var b [8]byte
	for _, x := range xs {
		binary.LittleEndian.PutUint64(b[:], uint64(x))
		h.Write(b[:])
	}
}

func hashString(h hash.Hash, s string) {
	hashInts(h, []int{len(s)})
	h.Write([]byte(s))
}

func TestGoldenFig1Checksum(t *testing.T) {
	opt := Fig1Options{
		OSTs:    8,
		Ratios:  []int{1, 4, 16},
		SizesMB: []float64{8, 128},
		Samples: 3,
		Seed:    2010,
	}
	res, err := Fig1(opt)
	if err != nil {
		t.Fatal(err)
	}
	h := sha256.New()
	for _, sizeMB := range opt.SizesMB {
		sizeName := sizeNameOf(sizeMB)
		for _, ratio := range opt.Ratios {
			hashString(h, sizeName)
			hashInts(h, []int{ratio})
			hashFloats(h, res.Samples[sizeName][ratio])
		}
	}
	hashString(h, res.Aggregate.Render())
	hashString(h, res.PerWriter.Render())
	if got := hex.EncodeToString(h.Sum(nil)); got != goldenFig1Digest {
		t.Fatalf("Fig1 golden checksum changed:\n got %s\nwant %s\n"+
			"simulation outputs are no longer bit-identical to the pinned baseline", got, goldenFig1Digest)
	}
}

// sizeNameOf mirrors Fig1's series naming so sample lookup stays in sync.
func sizeNameOf(sizeMB float64) string {
	return fmt.Sprintf("%gMB", sizeMB)
}

func TestGoldenTableIChecksum(t *testing.T) {
	res, err := TableI(TableIOptions{
		JaguarSamples:   8,
		FranklinSamples: 6,
		XTPSamples:      4,
		ScaleOSTs:       16,
		Seed:            2010,
	})
	if err != nil {
		t.Fatal(err)
	}
	h := sha256.New()
	for _, s := range res.Series {
		hashString(h, s.Machine)
		hashFloats(h, s.BWSamples)
		hashFloats(h, s.Imbalances)
	}
	hashString(h, res.Table.Render())
	if got := hex.EncodeToString(h.Sum(nil)); got != goldenTableIDigest {
		t.Fatalf("Table I golden checksum changed:\n got %s\nwant %s\n"+
			"simulation outputs are no longer bit-identical to the pinned baseline", got, goldenTableIDigest)
	}
}

func TestGoldenFig5Checksum(t *testing.T) {
	res, err := EvaluateWorkload(
		workloads.Pixie3DGen(workloads.Pixie3DSmall), "golden",
		EvalOptions{
			ProcCounts:   []int{32, 64},
			Samples:      2,
			MPIOSTs:      4,
			AdaptiveOSTs: 16,
			NumOSTs:      16,
			Seed:         2010,
		})
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]CaseKey, 0, len(res.BWSamples))
	for k := range res.BWSamples {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.Method != b.Method {
			return a.Method < b.Method
		}
		if a.Condition != b.Condition {
			return a.Condition < b.Condition
		}
		return a.Procs < b.Procs
	})
	h := sha256.New()
	for _, k := range keys {
		hashString(h, string(k.Method))
		hashString(h, string(k.Condition))
		hashInts(h, []int{k.Procs})
		hashFloats(h, res.BWSamples[k])
		hashFloats(h, res.ElapsedSamples[k])
		hashInts(h, res.AdaptiveCounts[k])
	}
	hashString(h, res.Figure.Render())
	if got := hex.EncodeToString(h.Sum(nil)); got != goldenFig5Digest {
		t.Fatalf("Fig5 golden checksum changed:\n got %s\nwant %s\n"+
			"simulation outputs are no longer bit-identical to the pinned baseline", got, goldenFig5Digest)
	}
}
