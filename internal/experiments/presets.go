package experiments

import (
	"fmt"
	"time"
)

// The CLI preset modes: "quick" runs scaled-down grids whose per-target
// ratios (and therefore shapes) match the paper's, in minutes; "full" is
// the paper's configuration (512 OSTs, writer counts to 16384, 40/469
// samples), in hours. Presets carry no Seed — the CLI's -seed flag applies
// at run time — so the same preset is reusable across seeds.

const (
	ModeQuick = "quick"
	ModeFull  = "full"
)

func checkMode(mode string) error {
	switch mode {
	case ModeQuick, ModeFull:
		return nil
	}
	return fmt.Errorf("unknown mode %q (want quick | full)", mode)
}

// Fig1Preset returns the Figure 1 grid for a preset mode.
func Fig1Preset(mode string) (Fig1Options, error) {
	if err := checkMode(mode); err != nil {
		return Fig1Options{}, err
	}
	if mode == ModeQuick {
		return Fig1Options{
			OSTs: 16, Ratios: []int{1, 2, 4, 8, 16, 32},
			SizesMB: []float64{1, 8, 128, 1024}, Samples: 12,
		}, nil
	}
	return Fig1Options{}, nil // zero values = paper scale
}

// TableIPreset returns the Table I / Figure 2 study for a preset mode.
func TableIPreset(mode string) (TableIOptions, error) {
	if err := checkMode(mode); err != nil {
		return TableIOptions{}, err
	}
	if mode == ModeQuick {
		return TableIOptions{
			JaguarSamples: 60, FranklinSamples: 60, XTPSamples: 40,
			ScaleOSTs: 8,
		}, nil
	}
	return TableIOptions{}, nil
}

// Fig3Preset returns the imbalanced-writers illustration for a preset mode.
func Fig3Preset(mode string) (Fig3Options, error) {
	if err := checkMode(mode); err != nil {
		return Fig3Options{}, err
	}
	if mode == ModeQuick {
		return Fig3Options{OSTs: 64, AverageOver: 20}, nil
	}
	return Fig3Options{}, nil
}

// EvalPreset returns the Section IV evaluation grid for a preset mode.
func EvalPreset(mode string) (EvalOptions, error) {
	if err := checkMode(mode); err != nil {
		return EvalOptions{}, err
	}
	if mode == ModeQuick {
		return EvalOptions{
			ProcCounts:   []int{64, 128, 256, 512, 1024},
			Samples:      3,
			MPIOSTs:      20, // preserves the paper's 160:512 ratio at 1/8 scale
			AdaptiveOSTs: 64,
			NumOSTs:      84, // 672/8
		}, nil
	}
	return EvalOptions{}, nil
}

// JobMixPreset returns the saturation-frontier study for a preset mode.
func JobMixPreset(mode string) (JobMixOptions, error) {
	if err := checkMode(mode); err != nil {
		return JobMixOptions{}, err
	}
	if mode == ModeQuick {
		return JobMixOptions{
			MaxJobs: 4, Samples: 3,
			NumOSTs: 84, MPIOSTs: 20, AdaptiveOSTs: 64, // the eval grid's 1/8-scale Jaguar
		}, nil
	}
	return JobMixOptions{}, nil
}

// FailureSweepPreset returns the failure-masking study for a preset mode.
func FailureSweepPreset(mode string) (FailureSweepOptions, error) {
	if err := checkMode(mode); err != nil {
		return FailureSweepOptions{}, err
	}
	if mode == ModeQuick {
		return FailureSweepOptions{Procs: 64, Samples: 3, NumOSTs: 16}, nil
	}
	return FailureSweepOptions{
		Procs: 512, Samples: 5, NumOSTs: 84, // the eval grid's 1/8-scale Jaguar
	}, nil
}

// MetadataPreset returns the open-storm study for a preset mode.
func MetadataPreset(mode string) (MetadataOptions, error) {
	if err := checkMode(mode); err != nil {
		return MetadataOptions{}, err
	}
	if mode == ModeQuick {
		return MetadataOptions{
			Writers: 128, Samples: 5,
			Staggers: []time.Duration{0, time.Millisecond, 5 * time.Millisecond, 20 * time.Millisecond},
		}, nil
	}
	return MetadataOptions{}, nil
}
