package experiments

import (
	"reflect"
	"testing"

	"repro/adios"
	"repro/internal/workloads"
)

// The parallel campaign runner's determinism contract: a campaign's results
// are a pure function of (master seed, replica keys), so running the same
// grid on 1 worker and on N workers must produce bit-identical sample maps.
// These tests are the regression gate for that contract on the two heaviest
// drivers (the Section IV evaluation grid and the Table I hourly series).

func fig5DeterminismOpts(parallel int) EvalOptions {
	return EvalOptions{
		ProcCounts:   []int{32, 64},
		Samples:      3,
		MPIOSTs:      4,
		AdaptiveOSTs: 16,
		NumOSTs:      16,
		Seed:         11,
		Parallel:     parallel,
	}
}

func TestFig5ParallelBitIdentical(t *testing.T) {
	gen := workloads.Pixie3DGen(workloads.Pixie3DSmall)
	seq, err := EvaluateWorkload(gen, "determinism", fig5DeterminismOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	par, err := EvaluateWorkload(gen, "determinism", fig5DeterminismOpts(8))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq.BWSamples, par.BWSamples) {
		t.Errorf("BW samples diverged between 1 and 8 workers:\nseq: %v\npar: %v",
			seq.BWSamples, par.BWSamples)
	}
	if !reflect.DeepEqual(seq.ElapsedSamples, par.ElapsedSamples) {
		t.Error("elapsed samples diverged between 1 and 8 workers")
	}
	if !reflect.DeepEqual(seq.AdaptiveCounts, par.AdaptiveCounts) {
		t.Error("adaptive counts diverged between 1 and 8 workers")
	}
	if seq.Figure.Render() != par.Figure.Render() {
		t.Error("rendered figures diverged between 1 and 8 workers")
	}
}

func TestTableIParallelBitIdentical(t *testing.T) {
	opts := func(parallel int) TableIOptions {
		return TableIOptions{
			JaguarSamples:   10,
			FranklinSamples: 10,
			XTPSamples:      6,
			ScaleOSTs:       16,
			Seed:            13,
			Parallel:        parallel,
		}
	}
	seq, err := TableI(opts(1))
	if err != nil {
		t.Fatal(err)
	}
	par, err := TableI(opts(8))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq.Series, par.Series) {
		t.Errorf("Table I series diverged between 1 and 8 workers:\nseq: %+v\npar: %+v",
			seq.Series, par.Series)
	}
	if seq.Table.Render() != par.Table.Render() {
		t.Error("rendered tables diverged between 1 and 8 workers")
	}
}

func TestFig1ParallelBitIdentical(t *testing.T) {
	opts := func(parallel int) Fig1Options {
		return Fig1Options{
			OSTs:     4,
			Ratios:   []int{1, 4},
			SizesMB:  []float64{8, 128},
			Samples:  3,
			Seed:     17,
			Parallel: parallel,
		}
	}
	seq, err := Fig1(opts(1))
	if err != nil {
		t.Fatal(err)
	}
	par, err := Fig1(opts(8))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq.Samples, par.Samples) {
		t.Errorf("Fig1 samples diverged between 1 and 8 workers:\nseq: %v\npar: %v",
			seq.Samples, par.Samples)
	}
	if seq.Aggregate.Render() != par.Aggregate.Render() ||
		seq.PerWriter.Render() != par.PerWriter.Render() {
		t.Error("rendered figures diverged between 1 and 8 workers")
	}
}

// TestRunCampaignsOrderAndDeterminism covers the batch API: results come
// back in input order and match one-at-a-time execution exactly.
func TestRunCampaignsOrderAndDeterminism(t *testing.T) {
	gen := workloads.XGC1Gen()
	var batch []CampaignOptions
	for i := 0; i < 6; i++ {
		batch = append(batch, CampaignOptions{
			Writers: 16,
			Method:  adios.MethodAdaptive,
			Seed:    int64(100 + i),
			PerRank: gen.PerRank,
			NumOSTs: 8,
		})
	}
	par, err := RunCampaigns(batch, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range batch {
		single, err := RunCampaign(o)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(single, par[i]) {
			t.Errorf("campaign %d diverged from sequential execution", i)
		}
	}
}
