package experiments

import (
	"fmt"
	"strings"

	"repro/adios"
	"repro/internal/pfs"
	"repro/internal/scenario"
	"repro/internal/stats"
	"repro/metrics"
)

// JobMixOptions configures the saturation-frontier study: a heterogeneous
// job mix co-scheduled onto one shared file system, swept from 1 to
// MaxJobs concurrent jobs under both the static MPI-IO transport and the
// adaptive method. The zero value runs the default three-job mix
// (checkpoint writer, read-heavy trainer, metadata storm) on full Jaguar.
type JobMixOptions struct {
	// Jobs is the mix template; the njobs axis cycles it (default:
	// DefaultJobMix).
	Jobs []scenario.JobSpec
	// MaxJobs is the sweep's upper concurrency (default 6).
	MaxJobs int
	// Samples per grid point (default 5).
	Samples int
	// MPIOSTs / AdaptiveOSTs are each method's per-app target counts,
	// mirroring the Section IV evaluation (defaults 160 / 512).
	MPIOSTs      int
	AdaptiveOSTs int
	// NumOSTs scales the simulated machine (0 = full Jaguar). The method
	// target counts are clamped to it.
	NumOSTs int
	// Seed differentiates samples; Parallel bounds the worker pool.
	Seed     int64
	Parallel int
}

func (o *JobMixOptions) defaults() {
	if len(o.Jobs) == 0 {
		o.Jobs = DefaultJobMix()
	}
	if o.MaxJobs <= 0 {
		o.MaxJobs = 6
	}
	if o.Samples <= 0 {
		o.Samples = 5
	}
	if o.MPIOSTs <= 0 {
		o.MPIOSTs = 160
	}
	if o.AdaptiveOSTs <= 0 {
		o.AdaptiveOSTs = 512
	}
	if o.NumOSTs > 0 {
		if o.MPIOSTs > o.NumOSTs {
			o.MPIOSTs = o.NumOSTs
		}
		if o.AdaptiveOSTs > o.NumOSTs {
			o.AdaptiveOSTs = o.NumOSTs
		}
	}
}

// DefaultJobMix is the canonical three-signature mix: a phased Pixie3D
// checkpoint writer, an ML-training job re-reading its dataset shards every
// epoch, and an mdtest-style metadata storm. Periods are short relative to
// each phase's I/O time, so the mix is I/O-bound — the point of the
// frontier sweep is to saturate the shared file system, not the schedule.
func DefaultJobMix() []scenario.JobSpec {
	return []scenario.JobSpec{
		{Name: "ckpt", Kind: scenario.JobKindApp, Generator: "pixie3d-large",
			Procs: 32, Phases: 3, PeriodSeconds: 10},
		{Name: "train", Kind: scenario.JobKindMLRead, Procs: 16, SizeMB: 64,
			Phases: 5, PeriodSeconds: 5, StartSeconds: 2},
		{Name: "meta", Kind: scenario.JobKindMDTest, Procs: 8, FilesPerRank: 64,
			Phases: 5, PeriodSeconds: 2, StartSeconds: 1},
	}
}

// JobMixScenario expresses the saturation frontier declaratively: the job
// mix over a method × njobs grid. The method axis carries each transport's
// target count (the same 160-vs-512 asymmetry as the Section IV
// evaluation) and overrides every app job in the mix; the njobs axis
// cycles the template list up to MaxJobs concurrent jobs.
func JobMixScenario(opt JobMixOptions) scenario.Scenario {
	opt.defaults()
	methodVal := func(m adios.Method, osts int) scenario.Value {
		v := scenario.StrValue(string(m))
		v.With = map[string]scenario.Value{"transport_osts": scenario.NumValue(float64(osts))}
		return v
	}
	njobs := make([]scenario.Value, opt.MaxJobs)
	for i := range njobs {
		njobs[i] = scenario.NumValue(float64(i + 1))
	}
	return scenario.Scenario{
		Name:        "jobmix-frontier",
		Description: "Saturation frontier: heterogeneous job mix on one shared file system, 1→N concurrent jobs",
		Machine:     "jaguar",
		NumOSTs:     opt.NumOSTs,
		Samples:     opt.Samples,
		Jobs:        opt.Jobs,
		Axes: []scenario.Axis{
			{Name: "method", LabelFmt: "%s", Values: []scenario.Value{
				methodVal(adios.MethodMPI, opt.MPIOSTs),
				methodVal(adios.MethodAdaptive, opt.AdaptiveOSTs),
			}},
			{Name: "njobs", LabelFmt: "njobs=%d", Values: njobs},
		},
	}
}

// JobStat is one job's cross-sample summary at one frontier point.
type JobStat struct {
	Name   string
	Kind   string
	MeanBW float64 // GB/s over the job's own active span
	// Efficiency is MeanBW relative to the same job template's bandwidth
	// at its first (least-contended) appearance in the sweep.
	Efficiency float64
}

// FairnessStat summarizes the per-job slowdown distribution at one
// frontier point. For every co-scheduled job instance and sample, slowdown
// is the template's least-contended reference bandwidth over the bandwidth
// the job actually delivered: 1.0 means no interference, 2.0 means the job
// ran at half its uncontended rate. The quantiles pool every (job, sample)
// slowdown at the point, so P95 vs P50 separates "everyone degrades a
// little" from "one victim job starves" — the fairness question aggregate
// efficiency cannot answer.
type FairnessStat struct {
	P50 float64
	P95 float64
	Max float64
}

// MixCase is one (method, njobs) frontier point.
type MixCase struct {
	Method adios.Method
	NJobs  int
	// AggBW are the per-sample aggregate bandwidths (GB/s over makespan).
	AggBW []float64
	// Makespan are the per-sample completion times of the slowest job.
	Makespan []float64
	// Jobs summarizes each co-scheduled job, in launch order.
	Jobs []JobStat
	// Efficiency is mean(AggBW) over the ideal aggregate — the sum of
	// every co-scheduled job template's reference (first-appearance)
	// bandwidth. 1.0 means each job still delivers what it did when least
	// contended; decay along the sweep is the saturation frontier.
	Efficiency float64
	// Fairness is the per-job slowdown distribution (see FairnessStat).
	Fairness FairnessStat
}

// JobMixResult is the full frontier: cases in method-outer, njobs order,
// plus the aggregate-bandwidth figure.
type JobMixResult struct {
	Cases  []MixCase
	Figure metrics.Figure
}

// JobMix runs the saturation-frontier study.
func JobMix(opt JobMixOptions) (*JobMixResult, error) {
	opt.defaults()
	run, err := scenario.Run(JobMixScenario(opt), scenario.RunOptions{Seed: opt.Seed, Parallel: opt.Parallel})
	if err != nil {
		return nil, fmt.Errorf("jobmix: %w", err)
	}
	return jobMixDemux(run)
}

// jobMixDemux rebuilds the frontier from a scenario run, deriving the grid
// from the spec's axes by name and looking points up by label.
func jobMixDemux(run *scenario.Result) (*JobMixResult, error) {
	res := &JobMixResult{
		Figure: metrics.Figure{Title: "Saturation frontier: aggregate bandwidth vs concurrent jobs", YUnit: "GB/s"},
	}
	axes := map[string][]scenario.Value{}
	for _, ax := range run.Scenario.Axes {
		axes[ax.Name] = ax.Values
	}
	for _, method := range axes["method"] {
		series := metrics.Series{Name: method.String()}
		// refBW[template] is the template's mean bandwidth at its first
		// (least-contended) appearance in the ascending njobs sweep; the
		// sum over a mix is its ideal aggregate. The sum-of-references
		// ideal is the usual solo-bandwidth approximation — job spans
		// overlap rather than coincide, so treat it as a frontier
		// indicator, not an exact bound.
		refBW := map[string]float64{}
		for _, nv := range axes["njobs"] {
			n := int(nv.Float())
			label := fmt.Sprintf("%s/njobs=%d", method.String(), n)
			pt := run.Point(label)
			if pt == nil {
				return nil, fmt.Errorf("jobmix: grid point %q missing from run", label)
			}
			mc := MixCase{Method: adios.Method(method.String()), NJobs: n}
			jobBW := map[string][]float64{}
			var jobOrder []JobStat
			for _, s := range pt.Samples {
				mc.AggBW = append(mc.AggBW, s.AggregateBW/pfs.GB)
				mc.Makespan = append(mc.Makespan, s.Elapsed)
				for _, j := range s.Jobs {
					if _, seen := jobBW[j.Name]; !seen {
						jobOrder = append(jobOrder, JobStat{Name: j.Name, Kind: j.Kind})
					}
					jobBW[j.Name] = append(jobBW[j.Name], j.BW/pfs.GB)
				}
			}
			var ideal float64
			for i := range jobOrder {
				jobOrder[i].MeanBW = meanOf(jobBW[jobOrder[i].Name])
				tmpl := jobTemplate(jobOrder[i].Name)
				if _, ok := refBW[tmpl]; !ok {
					refBW[tmpl] = jobOrder[i].MeanBW
				}
				if ref := refBW[tmpl]; ref > 0 {
					jobOrder[i].Efficiency = jobOrder[i].MeanBW / ref
				}
				ideal += refBW[tmpl]
			}
			mc.Jobs = jobOrder
			if ideal > 0 {
				mc.Efficiency = meanOf(mc.AggBW) / ideal
			}
			var slowdowns []float64
			for i := range jobOrder {
				ref := refBW[jobTemplate(jobOrder[i].Name)]
				if ref <= 0 {
					continue
				}
				for _, bw := range jobBW[jobOrder[i].Name] {
					if bw > 0 {
						slowdowns = append(slowdowns, ref/bw)
					}
				}
			}
			if len(slowdowns) > 0 {
				mc.Fairness = FairnessStat{
					P50: stats.Percentile(slowdowns, 50),
					P95: stats.Percentile(slowdowns, 95),
					Max: stats.Percentile(slowdowns, 100),
				}
			}
			series.Add(fmt.Sprintf("%d", n), mc.AggBW)
			res.Cases = append(res.Cases, mc)
		}
		res.Figure.AddSeries(series)
	}
	return res, nil
}

// jobTemplate strips the "#k" replication suffix the njobs axis appends,
// recovering the template identity shared by e.g. "ckpt" and "ckpt#2".
func jobTemplate(name string) string {
	if i := strings.IndexByte(name, '#'); i >= 0 {
		return name[:i]
	}
	return name
}

// JobMixTable renders the frontier as a table: one row per (method, njobs)
// with aggregate bandwidth, scaling efficiency, and the per-job breakdown.
func JobMixTable(r *JobMixResult) metrics.Table {
	t := metrics.Table{
		Title:  "Saturation frontier (per-method job-count sweep)",
		Header: []string{"Method", "Jobs", "Agg BW (GB/s)", "Makespan (s)", "Efficiency", "Slowdown p50/p95/max", "Per-job GB/s (eff)"},
	}
	for _, c := range r.Cases {
		var jobs []string
		for _, j := range c.Jobs {
			jobs = append(jobs, fmt.Sprintf("%s=%.2f@%.0f%%", j.Name, j.MeanBW, j.Efficiency*100))
		}
		t.AddRow(string(c.Method), fmt.Sprintf("%d", c.NJobs),
			fmt.Sprintf("%.2f", meanOf(c.AggBW)),
			fmt.Sprintf("%.1f", stats.Summarize(c.Makespan).Mean),
			fmt.Sprintf("%.2f", c.Efficiency),
			fmt.Sprintf("%.2f/%.2f/%.2f", c.Fairness.P50, c.Fairness.P95, c.Fairness.Max),
			strings.Join(jobs, " "))
	}
	return t
}

// JobMixLine condenses the frontier into one line: each method's scaling
// efficiency at the deepest point of the sweep.
func JobMixLine(r *JobMixResult) string {
	eff := map[adios.Method]MixCase{}
	var order []adios.Method
	for _, c := range r.Cases {
		if _, seen := eff[c.Method]; !seen {
			order = append(order, c.Method)
		}
		if prev, seen := eff[c.Method]; !seen || c.NJobs > prev.NJobs {
			eff[c.Method] = c
		}
	}
	var parts []string
	for _, m := range order {
		c := eff[m]
		parts = append(parts, fmt.Sprintf("%s %.0f%% at %d jobs", m, c.Efficiency*100, c.NJobs))
	}
	return "jobmix frontier: " + strings.Join(parts, ", ")
}
