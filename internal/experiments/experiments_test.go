package experiments

import (
	"math"
	"strings"
	"testing"
	"time"

	"repro/adios"
	"repro/internal/pfs"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// Scaled-down grids: per-OST ratios (which drive every effect) are
// preserved while absolute counts shrink for test speed.

func TestFig1ShapesHold(t *testing.T) {
	opt := Fig1Options{
		OSTs:    8,
		Ratios:  []int{1, 2, 4, 16, 32},
		SizesMB: []float64{1, 128, 1024},
		Samples: 2,
		NoNoise: true, // isolate internal interference
		Seed:    1,
	}
	res, err := Fig1(opt)
	if err != nil {
		t.Fatal(err)
	}
	if bad := Fig1ShapeChecks(res, opt); len(bad) > 0 {
		t.Fatalf("Figure 1 shape violations:\n%s", strings.Join(bad, "\n"))
	}
	// Sanity on rendering.
	out := res.Aggregate.Render()
	if !strings.Contains(out, "Figure 1(a)") || !strings.Contains(out, "256") {
		t.Fatalf("render missing content:\n%s", out)
	}
}

func TestFig1SamplesRecorded(t *testing.T) {
	opt := Fig1Options{OSTs: 4, Ratios: []int{1, 4}, SizesMB: []float64{8}, Samples: 3, NoNoise: true}
	res, err := Fig1(opt)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.Samples["8MB"][4]); got != 3 {
		t.Fatalf("samples recorded = %d, want 3", got)
	}
}

func TestTableIVariabilityBands(t *testing.T) {
	opt := TableIOptions{
		JaguarSamples:   25,
		FranklinSamples: 25,
		XTPSamples:      15,
		ScaleOSTs:       8, // 64 OSTs / 64 writers on Jaguar, etc.
		Seed:            3,
	}
	res, err := TableI(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 4 {
		t.Fatalf("rows = %d", len(res.Series))
	}
	get := func(name string) MachineSeries {
		for _, s := range res.Series {
			if s.Machine == name {
				return s
			}
		}
		t.Fatalf("missing series %s", name)
		return MachineSeries{}
	}
	jag := get("Jaguar")
	fr := get("Franklin")
	with := get("XTP(with Int.)")
	without := get("XTP(without Int.)")

	// Paper: production machines show substantial variability (40–60%);
	// accept a generous 25–80% band at reduced scale.
	for _, s := range []MachineSeries{jag, fr} {
		cov := s.Summary.CoVPercent()
		if cov < 25 || cov > 80 {
			t.Errorf("%s CoV = %.0f%%, want within 25–80%% (paper: 40–60%%)", s.Machine, cov)
		}
	}
	// Paper: two simultaneous jobs on XTP cause variation up to ~43%;
	// a single job on the idle machine is far steadier.
	if with.Summary.CoVPercent() <= without.Summary.CoVPercent() {
		t.Errorf("XTP with interference (%.0f%%) should vary more than without (%.0f%%)",
			with.Summary.CoVPercent(), without.Summary.CoVPercent())
	}
	if without.Summary.CoVPercent() > 20 {
		t.Errorf("XTP without interference CoV = %.0f%%, expected small", without.Summary.CoVPercent())
	}
	// Rendered table carries all four machines.
	out := res.Table.Render()
	for _, m := range []string{"Jaguar", "Franklin", "XTP(with Int.)", "XTP(without Int.)"} {
		if !strings.Contains(out, m) {
			t.Errorf("table missing row %s:\n%s", m, out)
		}
	}
}

func TestFig2HistogramsFromTableI(t *testing.T) {
	res := &TableIResult{Series: []MachineSeries{
		{Machine: "Jaguar", BWSamples: []float64{100, 120, 180, 200, 90}},
		{Machine: "XTP", BWSamples: []float64{50, 52, 51}},
	}}
	figs := Fig2(res, 5)
	if len(figs) != 2 {
		t.Fatalf("figures = %d", len(figs))
	}
	if !strings.Contains(figs[0].Title, "Figure 2(a): Jaguar") ||
		!strings.Contains(figs[1].Title, "Figure 2(b): XTP") {
		t.Fatalf("panel titles wrong: %q / %q", figs[0].Title, figs[1].Title)
	}
	if !strings.Contains(figs[0].Render(), "n=5") {
		t.Fatal("histogram render wrong")
	}
}

func TestFig3ImbalanceCharacteristics(t *testing.T) {
	res, err := Fig3(Fig3Options{
		OSTs:           24,
		BytesPerWriter: 64 * pfs.MB,
		AverageOver:    12,
		Seed:           5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Test1Times) != 24 || len(res.Test2Times) != 24 {
		t.Fatalf("profile sizes %d/%d", len(res.Test1Times), len(res.Test2Times))
	}
	if res.Imbalance1 < 1 || res.Imbalance2 < 1 {
		t.Fatal("imbalance factors below 1")
	}
	// Paper: "a significant imbalance ... in all IO tests", average ≈ 2.
	if res.AvgImbalance < 1.2 {
		t.Errorf("average imbalance %.2f too small — interference model too tame", res.AvgImbalance)
	}
	if res.MaxImbalance < res.AvgImbalance {
		t.Error("max imbalance below average")
	}
	// Transience: the two tests 3 minutes apart should generally differ.
	if res.Imbalance1 == res.Imbalance2 {
		t.Log("warning: identical imbalance across the 3-minute gap (possible but unusual)")
	}
}

func TestEvaluateWorkloadAdaptiveWins(t *testing.T) {
	// Scaled-down Figure 5(b) shape: 128 MB/process, writers 8x targets;
	// MPI restricted to a quarter of the targets (stands in for the
	// 160-of-512 limit), adaptive free.
	opt := EvalOptions{
		ProcCounts:   []int{128},
		Samples:      2,
		MPIOSTs:      4,
		AdaptiveOSTs: 16,
		Conditions:   []Condition{Base, Interference},
		NumOSTs:      16,
		Seed:         7,
	}
	er, err := EvaluateWorkload(workloads.Pixie3DGen(workloads.Pixie3DLarge),
		"scaled 5(b)", opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, cond := range []Condition{Base, Interference} {
		mpi := meanOf(er.BWSamples[CaseKey{adios.MethodMPI, cond, 128}])
		ada := meanOf(er.BWSamples[CaseKey{adios.MethodAdaptive, cond, 128}])
		if ada <= mpi {
			t.Errorf("%s: adaptive %.2f GB/s should beat MPI %.2f GB/s", cond, ada, mpi)
		}
	}
	// Adaptive writes should actually occur under interference.
	counts := er.AdaptiveCounts[CaseKey{adios.MethodAdaptive, Interference, 128}]
	total := 0
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		t.Error("no adaptive writes under interference")
	}
	// Speedup table renders.
	tbl := SpeedupSummary(er)
	if !strings.Contains(tbl.Render(), "x") {
		t.Fatal("speedup table empty")
	}
}

func TestFig7Reduction(t *testing.T) {
	er := &EvalResult{
		Workload: "test",
		ElapsedSamples: map[CaseKey][]float64{
			{adios.MethodMPI, Base, 512}:      {10, 14, 12},
			{adios.MethodAdaptive, Base, 512}: {10, 10.5, 10.2},
		},
	}
	figs := Fig7([]*EvalResult{er})
	if len(figs) != 1 || len(figs[0].Series) != 2 {
		t.Fatalf("fig7 structure: %+v", figs)
	}
	var mpiStd, adaStd float64
	for _, s := range figs[0].Series {
		switch s.Name {
		case "MPI-base":
			mpiStd = s.Points[0].Value
		case "ADAPTIVE-base":
			adaStd = s.Points[0].Value
		}
	}
	if math.Abs(mpiStd-stats.Summarize([]float64{10, 14, 12}).StdDev) > 1e-12 {
		t.Fatalf("mpi std = %v", mpiStd)
	}
	if adaStd >= mpiStd {
		t.Fatal("reduction lost the ordering")
	}
}

func TestRunCampaignValidation(t *testing.T) {
	if _, err := RunCampaign(CampaignOptions{}); err == nil {
		t.Error("zero campaign accepted")
	}
	if _, err := RunCampaign(CampaignOptions{Writers: 2}); err == nil {
		t.Error("campaign without generator accepted")
	}
	if _, err := RunCampaign(CampaignOptions{
		Writers: 2,
		Machine: "nonesuch",
		PerRank: workloads.XGC1Gen().PerRank,
	}); err == nil {
		t.Error("bad machine accepted")
	}
}

func TestMetadataStudyStaggerHelps(t *testing.T) {
	res, err := MetadataStudy(MetadataOptions{
		Writers:  64,
		Samples:  3,
		Staggers: []time.Duration{0, 10 * time.Millisecond},
		Seed:     9,
	})
	if err != nil {
		t.Fatal(err)
	}
	burstPeaks := res.QueuePeaks[0]
	stagPeaks := res.QueuePeaks[10*time.Millisecond]
	var burst, stag float64
	for i := range burstPeaks {
		burst += float64(burstPeaks[i])
		stag += float64(stagPeaks[i])
	}
	if stag >= burst {
		t.Fatalf("staggering should cut the MDS queue peak: %v vs %v", stag, burst)
	}
	out := res.Table.Render()
	if !strings.Contains(out, "10ms") || !strings.Contains(out, "0s") {
		t.Fatalf("table missing rows:\n%s", out)
	}
}
