package experiments

import (
	"reflect"
	"testing"

	"repro/internal/workloads"
)

// The run-to-completion rank engine must be a pure implementation detail:
// setting REPRO_NO_CONT=1 swaps every ported rank body back onto the
// goroutine engine, and each driver must produce bit-identical results
// either way — sequentially and under the parallel runner. These tests pin
// that contract for every paper artifact (Fig 1, Table I, Fig 5, and the
// job-mix frontier) at 1 and 8 workers.

// bothEngines runs the driver once per engine, forcing the environment both
// ways so the test is meaningful regardless of the ambient REPRO_NO_CONT.
func bothEngines[T any](t *testing.T, run func() (T, error)) (contRes, gorRes T) {
	t.Helper()
	t.Setenv("REPRO_NO_CONT", "")
	contRes, err := run()
	if err != nil {
		t.Fatal(err)
	}
	t.Setenv("REPRO_NO_CONT", "1")
	gorRes, err = run()
	if err != nil {
		t.Fatal(err)
	}
	return contRes, gorRes
}

func TestEngineBitIdenticalFig1(t *testing.T) {
	for _, parallel := range []int{1, 8} {
		opts := Fig1Options{
			OSTs:     4,
			Ratios:   []int{1, 4},
			SizesMB:  []float64{8, 128},
			Samples:  2,
			Seed:     23,
			Parallel: parallel,
		}
		cont, gor := bothEngines(t, func() (*Fig1Result, error) { return Fig1(opts) })
		if !reflect.DeepEqual(cont.Samples, gor.Samples) {
			t.Errorf("parallel=%d: Fig1 samples diverged between engines:\ncont: %v\ngoroutine: %v",
				parallel, cont.Samples, gor.Samples)
		}
		if cont.Aggregate.Render() != gor.Aggregate.Render() ||
			cont.PerWriter.Render() != gor.PerWriter.Render() {
			t.Errorf("parallel=%d: rendered Fig1 artifacts diverged between engines", parallel)
		}
	}
}

func TestEngineBitIdenticalTableI(t *testing.T) {
	for _, parallel := range []int{1, 8} {
		opts := TableIOptions{
			JaguarSamples:   6,
			FranklinSamples: 4,
			XTPSamples:      4,
			ScaleOSTs:       16,
			Seed:            23,
			Parallel:        parallel,
		}
		cont, gor := bothEngines(t, func() (*TableIResult, error) { return TableI(opts) })
		if !reflect.DeepEqual(cont.Series, gor.Series) {
			t.Errorf("parallel=%d: Table I series diverged between engines", parallel)
		}
		if cont.Table.Render() != gor.Table.Render() {
			t.Errorf("parallel=%d: rendered table diverged between engines", parallel)
		}
	}
}

func TestEngineBitIdenticalFig5(t *testing.T) {
	gen := workloads.Pixie3DGen(workloads.Pixie3DSmall)
	for _, parallel := range []int{1, 8} {
		opts := EvalOptions{
			ProcCounts:   []int{32, 64},
			Samples:      2,
			MPIOSTs:      4,
			AdaptiveOSTs: 16,
			NumOSTs:      16,
			Seed:         23,
			Parallel:     parallel,
		}
		cont, gor := bothEngines(t, func() (*EvalResult, error) {
			return EvaluateWorkload(gen, "engine", opts)
		})
		if !reflect.DeepEqual(cont.BWSamples, gor.BWSamples) {
			t.Errorf("parallel=%d: Fig5 BW samples diverged between engines:\ncont: %v\ngoroutine: %v",
				parallel, cont.BWSamples, gor.BWSamples)
		}
		if !reflect.DeepEqual(cont.ElapsedSamples, gor.ElapsedSamples) {
			t.Errorf("parallel=%d: Fig5 elapsed samples diverged between engines", parallel)
		}
		if !reflect.DeepEqual(cont.AdaptiveCounts, gor.AdaptiveCounts) {
			t.Errorf("parallel=%d: Fig5 adaptive counts diverged between engines", parallel)
		}
		if cont.Figure.Render() != gor.Figure.Render() {
			t.Errorf("parallel=%d: rendered figure diverged between engines", parallel)
		}
	}
}

func TestEngineBitIdenticalJobMix(t *testing.T) {
	for _, parallel := range []int{1, 8} {
		opt := tinyJobMix()
		opt.Parallel = parallel
		cont, gor := bothEngines(t, func() (*JobMixResult, error) { return JobMix(opt) })
		if !reflect.DeepEqual(cont.Cases, gor.Cases) {
			t.Errorf("parallel=%d: job-mix cases diverged between engines:\ncont: %+v\ngoroutine: %+v",
				parallel, cont.Cases, gor.Cases)
		}
		ct, gt := JobMixTable(cont), JobMixTable(gor)
		if ct.Render() != gt.Render() {
			t.Errorf("parallel=%d: rendered job-mix table diverged between engines", parallel)
		}
	}
}
