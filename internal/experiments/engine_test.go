package experiments

import (
	"reflect"
	"testing"

	"repro/internal/workloads"
)

// The run-to-completion rank engine must be a pure implementation detail:
// setting REPRO_NO_CONT=1 swaps every ported rank body back onto the
// goroutine engine, and each driver must produce bit-identical results
// either way — sequentially and under the parallel runner. These tests pin
// that contract for every paper artifact (Fig 1, Table I, Fig 5, and the
// job-mix frontier) at 1 and 8 workers.

// bothEngines runs the driver once per engine, forcing the environment both
// ways so the test is meaningful regardless of the ambient REPRO_NO_CONT.
func bothEngines[T any](t *testing.T, run func() (T, error)) (contRes, gorRes T) {
	t.Helper()
	t.Setenv("REPRO_NO_CONT", "")
	contRes, err := run()
	if err != nil {
		t.Fatal(err)
	}
	t.Setenv("REPRO_NO_CONT", "1")
	gorRes, err = run()
	if err != nil {
		t.Fatal(err)
	}
	return contRes, gorRes
}

func TestEngineBitIdenticalFig1(t *testing.T) {
	for _, parallel := range []int{1, 8} {
		opts := Fig1Options{
			OSTs:     4,
			Ratios:   []int{1, 4},
			SizesMB:  []float64{8, 128},
			Samples:  2,
			Seed:     23,
			Parallel: parallel,
		}
		cont, gor := bothEngines(t, func() (*Fig1Result, error) { return Fig1(opts) })
		if !reflect.DeepEqual(cont.Samples, gor.Samples) {
			t.Errorf("parallel=%d: Fig1 samples diverged between engines:\ncont: %v\ngoroutine: %v",
				parallel, cont.Samples, gor.Samples)
		}
		if cont.Aggregate.Render() != gor.Aggregate.Render() ||
			cont.PerWriter.Render() != gor.PerWriter.Render() {
			t.Errorf("parallel=%d: rendered Fig1 artifacts diverged between engines", parallel)
		}
	}
}

func TestEngineBitIdenticalTableI(t *testing.T) {
	for _, parallel := range []int{1, 8} {
		opts := TableIOptions{
			JaguarSamples:   6,
			FranklinSamples: 4,
			XTPSamples:      4,
			ScaleOSTs:       16,
			Seed:            23,
			Parallel:        parallel,
		}
		cont, gor := bothEngines(t, func() (*TableIResult, error) { return TableI(opts) })
		if !reflect.DeepEqual(cont.Series, gor.Series) {
			t.Errorf("parallel=%d: Table I series diverged between engines", parallel)
		}
		if cont.Table.Render() != gor.Table.Render() {
			t.Errorf("parallel=%d: rendered table diverged between engines", parallel)
		}
	}
}

func TestEngineBitIdenticalFig5(t *testing.T) {
	gen := workloads.Pixie3DGen(workloads.Pixie3DSmall)
	for _, parallel := range []int{1, 8} {
		opts := EvalOptions{
			ProcCounts:   []int{32, 64},
			Samples:      2,
			MPIOSTs:      4,
			AdaptiveOSTs: 16,
			NumOSTs:      16,
			Seed:         23,
			Parallel:     parallel,
		}
		cont, gor := bothEngines(t, func() (*EvalResult, error) {
			return EvaluateWorkload(gen, "engine", opts)
		})
		if !reflect.DeepEqual(cont.BWSamples, gor.BWSamples) {
			t.Errorf("parallel=%d: Fig5 BW samples diverged between engines:\ncont: %v\ngoroutine: %v",
				parallel, cont.BWSamples, gor.BWSamples)
		}
		if !reflect.DeepEqual(cont.ElapsedSamples, gor.ElapsedSamples) {
			t.Errorf("parallel=%d: Fig5 elapsed samples diverged between engines", parallel)
		}
		if !reflect.DeepEqual(cont.AdaptiveCounts, gor.AdaptiveCounts) {
			t.Errorf("parallel=%d: Fig5 adaptive counts diverged between engines", parallel)
		}
		if cont.Figure.Render() != gor.Figure.Render() {
			t.Errorf("parallel=%d: rendered figure diverged between engines", parallel)
		}
	}
}

func TestEngineBitIdenticalJobMix(t *testing.T) {
	for _, parallel := range []int{1, 8} {
		opt := tinyJobMix()
		opt.Parallel = parallel
		cont, gor := bothEngines(t, func() (*JobMixResult, error) { return JobMix(opt) })
		if !reflect.DeepEqual(cont.Cases, gor.Cases) {
			t.Errorf("parallel=%d: job-mix cases diverged between engines:\ncont: %+v\ngoroutine: %+v",
				parallel, cont.Cases, gor.Cases)
		}
		ct, gt := JobMixTable(cont), JobMixTable(gor)
		if ct.Render() != gt.Render() {
			t.Errorf("parallel=%d: rendered job-mix table diverged between engines", parallel)
		}
	}
}

// TestEngineBitIdenticalFailureSweep extends the engine pin to the failure
// lifecycle: dead-OST retry probes, failure counts, and outage accounting run
// through the adaptive message pumps, so the sweep must not notice whether
// those pumps carry goroutine or continuation rank bodies.
func TestEngineBitIdenticalFailureSweep(t *testing.T) {
	for _, parallel := range []int{1, 8} {
		opts := FailureSweepOptions{Procs: 16, Samples: 2, NumOSTs: 8, Seed: 23, Parallel: parallel}
		cont, gor := bothEngines(t, func() (*FailureSweepResult, error) { return FailureSweep(opts) })
		if !reflect.DeepEqual(cont.Cases, gor.Cases) {
			t.Errorf("parallel=%d: failure-sweep cases diverged between engines:\ncont: %+v\ngoroutine: %+v",
				parallel, cont.Cases, gor.Cases)
		}
		ct, gt := FailureSweepTable(cont), FailureSweepTable(gor)
		if ct.Render() != gt.Render() {
			t.Errorf("parallel=%d: rendered failure-sweep table diverged between engines", parallel)
		}
	}
}

// TestEngineBitIdenticalCombinedEscapeHatches pins the full escape-hatch
// matrix: REPRO_NO_CONT (goroutine rank bodies) and REPRO_NO_REUSE (fresh
// worlds per replica) composed together must still be bit-identical to the
// default fast path — including with a failure script armed, so the health
// lifecycle holds across engines and pooling alike.
func TestEngineBitIdenticalCombinedEscapeHatches(t *testing.T) {
	fsOpt := FailureSweepOptions{Procs: 16, Samples: 2, NumOSTs: 8, Seed: 23, Parallel: 2}
	run := func(noCont, noReuse bool) (*Fig1Result, *FailureSweepResult) {
		t.Helper()
		set := func(env string, on bool) {
			if on {
				t.Setenv(env, "1")
			} else {
				t.Setenv(env, "")
			}
		}
		set("REPRO_NO_CONT", noCont)
		set("REPRO_NO_REUSE", noReuse)
		f1, err := Fig1(Fig1Options{OSTs: 4, Ratios: []int{1, 4}, SizesMB: []float64{8}, Samples: 2, Seed: 23, Parallel: 2})
		if err != nil {
			t.Fatal(err)
		}
		fs, err := FailureSweep(fsOpt)
		if err != nil {
			t.Fatal(err)
		}
		return f1, fs
	}
	wantF1, wantFS := run(false, false)
	for _, hatch := range []struct {
		name            string
		noCont, noReuse bool
	}{
		{"no-cont", true, false},
		{"no-reuse", false, true},
		{"no-cont+no-reuse", true, true},
	} {
		gotF1, gotFS := run(hatch.noCont, hatch.noReuse)
		if !reflect.DeepEqual(gotF1.Samples, wantF1.Samples) {
			t.Errorf("%s: Fig1 samples diverged from the default path", hatch.name)
		}
		if !reflect.DeepEqual(gotFS.Cases, wantFS.Cases) {
			t.Errorf("%s: failure-sweep cases diverged from the default path:\n got %+v\nwant %+v",
				hatch.name, gotFS.Cases, wantFS.Cases)
		}
	}
}
