// Package experiments reproduces, one driver per artifact, every table and
// figure of the paper's measurement and evaluation sections:
//
//	Fig1   — internal interference: IOR weak-scaling grid on Jaguar (II-1)
//	TableI — external interference variability on three machines (II-2)
//	Fig2   — bandwidth histograms of the Table I samples (II-2)
//	Fig3   — per-writer write times and imbalance factors (II-2)
//	Fig5   — Pixie3D small/large/XL, MPI-IO vs adaptive, ±interference (IV-A)
//	Fig6   — XGC1 38 MB/process, same comparison (IV-B)
//	Fig7   — standard deviation of write times for the four cases (IV-C)
//
// Every driver takes an options struct whose zero value reproduces the
// paper's configuration (writer counts, sample counts, machine presets) and
// offers scaling knobs so tests and benchmarks can run the same shapes at
// reduced cost. All results carry the raw samples so downstream analyses
// (Fig 2 and Fig 7 reuse Table I and Fig 5/6 data, as in the paper).
package experiments

import (
	"fmt"

	"repro/adios"
	"repro/cluster"
	"repro/internal/iomethod"
	"repro/internal/runner"
	"repro/internal/workloads"
)

// Condition labels the two evaluation environments of Section IV.
type Condition string

const (
	// Base is the paper's "normal system conditions with whatever other
	// simultaneous jobs happen to be running" (production noise on).
	Base Condition = "base"
	// Interference adds the artificial interference program: 24 processes
	// continuously writing 1 GB chunks, 3 per target across 8 targets.
	Interference Condition = "interference"
)

// CampaignOptions configures one application IO measurement run.
type CampaignOptions struct {
	// Machine preset name (default "jaguar").
	Machine string
	// Writers is the application's process count.
	Writers int
	// Method selects the transport.
	Method adios.Method
	// MethodOSTs restricts the transport's storage targets (nil = all for
	// adaptive, stripe-capped for MPI).
	MethodOSTs []int
	// Condition selects base or artificial-interference environment.
	Condition Condition
	// ProductionNoise toggles background noise (the paper's runs are on a
	// production machine, so default true).
	NoNoise bool
	// Seed differentiates samples.
	Seed int64
	// PerRank produces each rank's output data.
	PerRank func(rank int) iomethod.RankData
	// NumOSTs optionally scales the machine down (0 = preset size).
	NumOSTs int
}

// CampaignResult is one sample's outcome.
type CampaignResult struct {
	Elapsed     float64   // seconds for the whole collective output
	AggregateBW float64   // bytes/sec
	WriterTimes []float64 // per-rank seconds
	TotalBytes  float64
	Adaptive    int // adaptive (redirected) writes
}

// RunCampaign executes one collective output step of an application under
// the given environment and returns its measurements.
func RunCampaign(opt CampaignOptions) (CampaignResult, error) {
	if opt.Machine == "" {
		opt.Machine = "jaguar"
	}
	if opt.Writers <= 0 {
		return CampaignResult{}, fmt.Errorf("experiments: writers must be positive")
	}
	if opt.PerRank == nil {
		return CampaignResult{}, fmt.Errorf("experiments: PerRank generator required")
	}
	c, err := cluster.Preset(opt.Machine, cluster.Config{
		Seed:            opt.Seed,
		NumOSTs:         opt.NumOSTs,
		ProductionNoise: !opt.NoNoise,
	})
	if err != nil {
		return CampaignResult{}, err
	}
	defer c.Shutdown()

	if opt.Condition == Interference {
		// The paper's artificial interference: stripe count 8 (two
		// applications at the default stripe count of 4), three 1 GB
		// writers per target.
		c.StartArtificialInterference(nil, 0, 0)
	}

	w := c.NewWorld(opt.Writers)
	io, err := adios.NewIO(c, w, adios.Options{Method: opt.Method, OSTs: opt.MethodOSTs})
	if err != nil {
		return CampaignResult{}, err
	}

	var res *adios.StepResult
	var stepErr error
	stepName := fmt.Sprintf("%s.out", opt.Method)
	j := w.Launch(func(r *cluster.Rank) {
		f := io.Open(r, stepName)
		f.WriteData(opt.PerRank(r.Rank()))
		rr, err := f.Close()
		if err != nil {
			stepErr = err
			return
		}
		res = rr
	})
	c.RunUntilDone(j)
	if stepErr != nil {
		return CampaignResult{}, stepErr
	}
	if !j.Done() || res == nil {
		return CampaignResult{}, fmt.Errorf("experiments: campaign did not complete")
	}
	return CampaignResult{
		Elapsed:     res.Elapsed,
		AggregateBW: res.AggregateBW(),
		WriterTimes: append([]float64(nil), res.WriterTimes...),
		TotalBytes:  res.TotalBytes,
		Adaptive:    res.AdaptiveWrites,
	}, nil
}

// RunCampaigns executes a batch of independent campaigns on a worker pool
// (parallel: 1 = sequential, <=0 = all cores) and returns their results in
// input order, regardless of completion order. Each CampaignOptions must
// carry its own Seed — typically derived via runner.ReplicaKey.Seed — since
// every campaign is its own simulated world. On failure the earliest failed
// campaign's error (in input order) is returned with its index attached.
func RunCampaigns(opts []CampaignOptions, parallel int) ([]CampaignResult, error) {
	keys := make([]runner.ReplicaKey, len(opts))
	for i, o := range opts {
		keys[i] = runner.ReplicaKey{
			Driver: "campaign",
			Point:  fmt.Sprintf("%s/%s/writers=%d", o.Method, o.Condition, o.Writers),
			Sample: i,
		}
	}
	byIndex := func(k runner.ReplicaKey) (CampaignResult, error) {
		return RunCampaign(opts[k.Sample])
	}
	return runner.Run(runner.Options{Parallel: parallel}, keys, byIndex)
}

// firstN returns [0, 1, ..., n).
func firstN(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// scaleCounts multiplies each ratio by the OST count to produce the writer
// counts of a weak-scaling sweep.
func scaleCounts(osts int, ratios []int) []int {
	out := make([]int, len(ratios))
	for i, r := range ratios {
		out[i] = osts * r
	}
	return out
}

// Generator re-exports the workload generator type for drivers.
type Generator = workloads.Generator
