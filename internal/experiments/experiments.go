// Package experiments reproduces, one driver per artifact, every table and
// figure of the paper's measurement and evaluation sections:
//
//	Fig1   — internal interference: IOR weak-scaling grid on Jaguar (II-1)
//	TableI — external interference variability on three machines (II-2)
//	Fig2   — bandwidth histograms of the Table I samples (II-2)
//	Fig3   — per-writer write times and imbalance factors (II-2)
//	Fig5   — Pixie3D small/large/XL, MPI-IO vs adaptive, ±interference (IV-A)
//	Fig6   — XGC1 38 MB/process, same comparison (IV-B)
//	Fig7   — standard deviation of write times for the four cases (IV-C)
//
// Every driver takes an options struct whose zero value reproduces the
// paper's configuration (writer counts, sample counts, machine presets) and
// offers scaling knobs so tests and benchmarks can run the same shapes at
// reduced cost. All results carry the raw samples so downstream analyses
// (Fig 2 and Fig 7 reuse Table I and Fig 5/6 data, as in the paper).
//
// Each driver is a thin builder of a declarative spec (internal/scenario)
// plus a demux of the generic run back into its canonical tables and
// figures; register.go exposes the same drivers through the scenario
// registry for the CLIs' -scenario flag. Seed labels and grid-point labels
// are part of the reproducibility contract and must not change.
package experiments

import (
	"fmt"

	"repro/adios"
	"repro/cluster"
	"repro/internal/iomethod"
	"repro/internal/runner"
	"repro/internal/scenario"
)

// Condition labels the two evaluation environments of Section IV.
type Condition string

const (
	// Base is the paper's "normal system conditions with whatever other
	// simultaneous jobs happen to be running" (production noise on).
	Base Condition = "base"
	// Interference adds the artificial interference program: 24 processes
	// continuously writing 1 GB chunks, 3 per target across 8 targets.
	Interference Condition = "interference"
)

// CampaignOptions configures one application IO measurement run.
type CampaignOptions struct {
	// Machine preset name (default "jaguar").
	Machine string
	// Writers is the application's process count.
	Writers int
	// Method selects the transport.
	Method adios.Method
	// MethodOSTs restricts the transport's storage targets (nil = all for
	// adaptive, stripe-capped for MPI).
	MethodOSTs []int
	// Condition selects base or artificial-interference environment.
	Condition Condition
	// ProductionNoise toggles background noise (the paper's runs are on a
	// production machine, so default true).
	NoNoise bool
	// Seed differentiates samples.
	Seed int64
	// PerRank produces each rank's output data.
	PerRank func(rank int) iomethod.RankData
	// NumOSTs optionally scales the machine down (0 = preset size).
	NumOSTs int
	// Pool, if non-nil, supplies a reusable simulation world for this
	// campaign (reset between rentals); nil builds a fresh world.
	Pool *cluster.Pool
}

// CampaignResult is one sample's outcome.
type CampaignResult struct {
	Elapsed     float64   // seconds for the whole collective output
	AggregateBW float64   // bytes/sec
	WriterTimes []float64 // per-rank seconds
	TotalBytes  float64
	Adaptive    int // adaptive (redirected) writes
}

// RunCampaign executes one collective output step of an application under
// the given environment and returns its measurements. It is a thin adapter
// over scenario.ExecCampaign — the single execution path every app-kind
// replica goes through.
func RunCampaign(opt CampaignOptions) (CampaignResult, error) {
	smp, err := scenario.ExecCampaign(scenario.CampaignConfig{
		Machine:      opt.Machine,
		Writers:      opt.Writers,
		NumOSTs:      opt.NumOSTs,
		NoNoise:      opt.NoNoise,
		Seed:         opt.Seed,
		IO:           adios.Options{Method: opt.Method, OSTs: opt.MethodOSTs},
		PerRank:      opt.PerRank,
		Interference: opt.Condition == Interference,
		Pool:         opt.Pool,
	})
	if err != nil {
		return CampaignResult{}, err
	}
	return CampaignResult{
		Elapsed:     smp.Elapsed,
		AggregateBW: smp.AggregateBW,
		WriterTimes: smp.WriterTimes,
		TotalBytes:  smp.TotalBytes,
		Adaptive:    smp.AdaptiveWrites,
	}, nil
}

// RunCampaigns executes a batch of independent campaigns on a worker pool
// (parallel: 1 = sequential, <=0 = all cores) and returns their results in
// input order, regardless of completion order. Each CampaignOptions must
// carry its own Seed — typically derived via runner.ReplicaKey.Seed — since
// every campaign is its own simulated world. On failure the earliest failed
// campaign's error (in input order) is returned with its index attached.
func RunCampaigns(opts []CampaignOptions, parallel int) ([]CampaignResult, error) {
	keys := make([]runner.ReplicaKey, len(opts))
	for i, o := range opts {
		keys[i] = runner.ReplicaKey{
			Driver: "campaign",
			Point:  fmt.Sprintf("%s/%s/writers=%d", o.Method, o.Condition, o.Writers),
			Sample: i,
		}
	}
	byIndex := func(k runner.ReplicaKey) (CampaignResult, error) {
		return RunCampaign(opts[k.Sample])
	}
	return runner.Run(runner.Options{Parallel: parallel}, keys, byIndex)
}

// firstN returns [0, 1, ..., n).
func firstN(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}
