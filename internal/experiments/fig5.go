package experiments

import (
	"fmt"
	"sort"
	"time"

	"repro/adios"
	"repro/internal/pfs"
	"repro/internal/scenario"
	"repro/internal/stats"
	"repro/internal/workloads"
	"repro/metrics"
)

// secondsToDuration converts float seconds to a time.Duration.
func secondsToDuration(s float64) time.Duration {
	return time.Duration(s * float64(time.Second))
}

// EvalOptions configures the Section IV application evaluations (Figures
// 5, 6 and 7). The zero value reproduces the paper: process counts 512 to
// 16384 (doubling), MPI-IO on 160 storage targets (the single-file limit),
// adaptive IO on 512 targets, at least 5 samples per point, run both under
// normal conditions and with the artificial interference program.
type EvalOptions struct {
	// ProcCounts are the application sizes (paper: 512…16384).
	ProcCounts []int
	// Samples per point (paper: "at least five").
	Samples int
	// MPIOSTs is the baseline's target count (paper: 160, the Lustre 1.6
	// single-file maximum).
	MPIOSTs int
	// AdaptiveOSTs is the adaptive method's target count (paper: 512,
	// "chosen to simplify the discussion of ratios"; 672 was also tested
	// with no penalty).
	AdaptiveOSTs int
	// Conditions to run (default: base and interference).
	Conditions []Condition
	// Seed differentiates samples.
	Seed int64
	// NumOSTs scales the simulated machine (0 = full Jaguar). MPIOSTs and
	// AdaptiveOSTs are clamped to it.
	NumOSTs int
	// Parallel bounds the replica worker pool for the whole method ×
	// condition × procs × samples grid (1 = sequential, <=0 = all cores).
	// Campaign results are bit-identical at every setting.
	Parallel int
}

func (o *EvalOptions) defaults() {
	if len(o.ProcCounts) == 0 {
		o.ProcCounts = []int{512, 1024, 2048, 4096, 8192, 16384}
	}
	if o.Samples <= 0 {
		o.Samples = 5
	}
	if o.MPIOSTs <= 0 {
		o.MPIOSTs = 160
	}
	if o.AdaptiveOSTs <= 0 {
		o.AdaptiveOSTs = 512
	}
	if len(o.Conditions) == 0 {
		o.Conditions = []Condition{Base, Interference}
	}
	if o.NumOSTs > 0 {
		if o.MPIOSTs > o.NumOSTs {
			o.MPIOSTs = o.NumOSTs
		}
		if o.AdaptiveOSTs > o.NumOSTs {
			o.AdaptiveOSTs = o.NumOSTs
		}
	}
}

// CaseKey identifies one evaluation configuration.
type CaseKey struct {
	Method    adios.Method
	Condition Condition
	Procs     int
}

// EvalResult carries one workload's full evaluation: the bandwidth figure
// (Figure 5 panel or Figure 6) and the per-case elapsed-time samples that
// Figure 7 reduces to standard deviations.
type EvalResult struct {
	Workload string
	Figure   metrics.Figure
	// ElapsedSamples[key] are the per-sample total write times (seconds).
	ElapsedSamples map[CaseKey][]float64
	// BWSamples[key] are the per-sample aggregate bandwidths (GB/s).
	BWSamples map[CaseKey][]float64
	// AdaptiveCounts[key] are redirected-write counts (adaptive cases).
	AdaptiveCounts map[CaseKey][]int
}

// EvalScenario expresses one workload's evaluation declaratively: the app
// workload over a method × condition × procs grid, where each method value
// carries its own target count (the paper's 160-target MPI-IO limit vs the
// adaptive method's free choice). Seed label "eval/<workload>" and the
// "METHOD/cond/procs=N" point labels reproduce the pre-scenario replica
// streams exactly.
func EvalScenario(gen workloads.Generator, opt EvalOptions) scenario.Scenario {
	opt.defaults()
	methodVal := func(m adios.Method, osts int) scenario.Value {
		v := scenario.StrValue(string(m))
		v.With = map[string]scenario.Value{"transport_osts": scenario.NumValue(float64(osts))}
		return v
	}
	conds := make([]scenario.Value, len(opt.Conditions))
	for i, c := range opt.Conditions {
		conds[i] = scenario.StrValue(string(c))
	}
	procs := make([]scenario.Value, len(opt.ProcCounts))
	for i, p := range opt.ProcCounts {
		procs[i] = scenario.NumValue(float64(p))
	}
	return scenario.Scenario{
		Name:        "eval/" + gen.Name,
		Description: fmt.Sprintf("Section IV evaluation: %s under MPI-IO vs adaptive IO", gen.Name),
		Machine:     "jaguar",
		NumOSTs:     opt.NumOSTs,
		Samples:     opt.Samples,
		Workload: scenario.Workload{
			Kind:      scenario.KindApp,
			Generator: gen.Name,
			PerRank:   gen.PerRank,
		},
		Axes: []scenario.Axis{
			{Name: "method", LabelFmt: "%s", Values: []scenario.Value{
				methodVal(adios.MethodMPI, opt.MPIOSTs),
				methodVal(adios.MethodAdaptive, opt.AdaptiveOSTs),
			}},
			{Name: "condition", LabelFmt: "%s", Values: conds},
			{Name: "procs", LabelFmt: "procs=%d", Values: procs},
		},
	}
}

// EvaluateWorkload runs the paper's MPI-vs-adaptive comparison for one
// workload generator across process counts, conditions and samples.
func EvaluateWorkload(gen workloads.Generator, title string, opt EvalOptions) (*EvalResult, error) {
	opt.defaults()
	run, err := scenario.Run(EvalScenario(gen, opt), scenario.RunOptions{Seed: opt.Seed, Parallel: opt.Parallel})
	if err != nil {
		return nil, fmt.Errorf("evaluate %s: %w", gen.Name, err)
	}
	return evalDemux(run, title)
}

// evalDemux rebuilds an EvalResult from a scenario run, deriving the grid
// from the spec's axes by name. Series emit in the canonical driver order —
// condition-outer, method, procs — which differs from the spec's point
// enumeration (method-outer) and is why the demux looks points up by label
// rather than iterating positionally.
func evalDemux(run *scenario.Result, title string) (*EvalResult, error) {
	res := &EvalResult{
		Workload:       run.Scenario.Workload.Generator,
		Figure:         metrics.Figure{Title: title, YUnit: "GB/s"},
		ElapsedSamples: map[CaseKey][]float64{},
		BWSamples:      map[CaseKey][]float64{},
		AdaptiveCounts: map[CaseKey][]int{},
	}
	axes := map[string][]scenario.Value{}
	for _, ax := range run.Scenario.Axes {
		axes[ax.Name] = ax.Values
	}
	for _, cond := range axes["condition"] {
		for _, method := range axes["method"] {
			series := metrics.Series{Name: fmt.Sprintf("%s-%s", method.String(), cond.String())}
			for _, pv := range axes["procs"] {
				procs := int(pv.Float())
				label := fmt.Sprintf("%s/%s/procs=%d", method.String(), cond.String(), procs)
				pt := run.Point(label)
				if pt == nil {
					return nil, fmt.Errorf("evaluate %s: grid point %q missing from run", res.Workload, label)
				}
				key := CaseKey{Method: adios.Method(method.String()), Condition: Condition(cond.String()), Procs: procs}
				var bws []float64
				for _, r := range pt.Samples {
					bwGB := r.AggregateBW / pfs.GB
					bws = append(bws, bwGB)
					res.ElapsedSamples[key] = append(res.ElapsedSamples[key], r.Elapsed)
					res.BWSamples[key] = append(res.BWSamples[key], bwGB)
					res.AdaptiveCounts[key] = append(res.AdaptiveCounts[key], r.AdaptiveWrites)
				}
				series.Add(fmt.Sprintf("%d", procs), bws)
			}
			res.Figure.AddSeries(series)
		}
	}
	return res, nil
}

// Fig5Options configures the Pixie3D evaluation (which sizes to run).
type Fig5Options struct {
	Eval  EvalOptions
	Sizes []workloads.Pixie3DSize
}

// Fig5Result holds one EvalResult per Pixie3D size class.
type Fig5Result struct {
	Panels []*EvalResult
}

// Fig5 runs the Pixie3D IO-kernel evaluation (paper Figure 5 a/b/c).
func Fig5(opt Fig5Options) (*Fig5Result, error) {
	sizes := opt.Sizes
	if len(sizes) == 0 {
		sizes = []workloads.Pixie3DSize{
			workloads.Pixie3DSmall, workloads.Pixie3DLarge, workloads.Pixie3DXL,
		}
	}
	res := &Fig5Result{}
	panels := map[workloads.Pixie3DSize]string{
		workloads.Pixie3DSmall: "Figure 5(a): Pixie3D Small Data (2 MB/process)",
		workloads.Pixie3DLarge: "Figure 5(b): Pixie3D Large Data (128 MB/process)",
		workloads.Pixie3DXL:    "Figure 5(c): Pixie3D Extra Large Data (1024 MB/process)",
	}
	for _, size := range sizes {
		er, err := EvaluateWorkload(workloads.Pixie3DGen(size), panels[size], opt.Eval)
		if err != nil {
			return nil, err
		}
		res.Panels = append(res.Panels, er)
	}
	return res, nil
}

// Fig6 runs the XGC1 evaluation (paper Figure 6).
func Fig6(opt EvalOptions) (*EvalResult, error) {
	return EvaluateWorkload(workloads.XGC1Gen(),
		"Figure 6: XGC1 IO Performance (38 MB/process)", opt)
}

// Fig7 reduces evaluation results to the paper's Figure 7: the standard
// deviation of total write time per case, one panel per workload, one
// series per method+condition, x = process count.
func Fig7(results []*EvalResult) []metrics.Figure {
	var out []metrics.Figure
	panel := 'a'
	for _, er := range results {
		fig := metrics.Figure{
			Title: fmt.Sprintf("Figure 7(%c): Std Deviation of Write Time — %s", panel, er.Workload),
			YUnit: "seconds (stddev)",
		}
		panel++
		type sk struct {
			method adios.Method
			cond   Condition
		}
		seriesFor := map[sk]*metrics.Series{}
		var order []sk
		// Collect (method, condition) combos and proc counts in stable order.
		procsSeen := map[int]bool{}
		var procs []int
		for key := range er.ElapsedSamples { //repro:allow nodeterm dedup pass; order and procs are both sorted just below
			k := sk{key.Method, key.Condition}
			if seriesFor[k] == nil {
				seriesFor[k] = &metrics.Series{Name: fmt.Sprintf("%s-%s", k.method, k.cond)}
				order = append(order, k)
			}
			if !procsSeen[key.Procs] {
				procsSeen[key.Procs] = true
				procs = append(procs, key.Procs)
			}
		}
		sortInts(procs)
		sort.Slice(order, func(i, j int) bool {
			a := string(order[i].method) + "|" + string(order[i].cond)
			b := string(order[j].method) + "|" + string(order[j].cond)
			return a < b
		})
		for _, k := range order {
			s := seriesFor[k]
			for _, p := range procs {
				samples := er.ElapsedSamples[CaseKey{Method: k.method, Condition: k.cond, Procs: p}]
				if len(samples) == 0 {
					continue
				}
				s.AddValue(fmt.Sprintf("%d", p), stats.Summarize(samples).StdDev)
			}
			fig.AddSeries(*s)
		}
		out = append(out, fig)
	}
	return out
}

func sortInts(xs []int) { sort.Ints(xs) }

// SpeedupSummary reports, for each (condition, procs), adaptive's mean
// bandwidth improvement over MPI-IO — the numbers the paper quotes in
// prose ("ranging from 2x ... to more than 4.8x").
func SpeedupSummary(er *EvalResult) metrics.Table {
	t := metrics.Table{
		Title:  fmt.Sprintf("Adaptive vs MPI-IO speedup — %s", er.Workload),
		Header: []string{"Condition", "Procs", "MPI (GB/s)", "Adaptive (GB/s)", "Speedup"},
	}
	conds := map[Condition]bool{}
	procsSeen := map[int]bool{}
	var procs []int
	for key := range er.BWSamples { //repro:allow nodeterm dedup pass; procs is sorted below and conds is only membership-tested
		conds[key.Condition] = true
		if !procsSeen[key.Procs] {
			procsSeen[key.Procs] = true
			procs = append(procs, key.Procs)
		}
	}
	sortInts(procs)
	for _, cond := range []Condition{Base, Interference} {
		if !conds[cond] {
			continue
		}
		for _, p := range procs {
			mpi := meanOf(er.BWSamples[CaseKey{adios.MethodMPI, cond, p}])
			ada := meanOf(er.BWSamples[CaseKey{adios.MethodAdaptive, cond, p}])
			if mpi == 0 && ada == 0 {
				continue
			}
			t.AddRow(string(cond), fmt.Sprintf("%d", p),
				fmt.Sprintf("%.2f", mpi), fmt.Sprintf("%.2f", ada),
				fmt.Sprintf("%.2fx", stats.Speedup(ada, mpi)))
		}
	}
	return t
}

// SpeedupLine condenses SpeedupSummary into the one-line range the paper
// quotes in prose — worst and best adaptive-vs-MPI speedups with the
// configurations they occur at.
func SpeedupLine(er *EvalResult) string {
	tbl := SpeedupSummary(er)
	best, worst := "", ""
	var bestV, worstV float64
	for _, row := range tbl.Rows {
		var v float64
		fmt.Sscanf(row[4], "%fx", &v)
		if best == "" || v > bestV {
			best, bestV = row[1]+" procs/"+row[0], v
		}
		if worst == "" || v < worstV {
			worst, worstV = row[1]+" procs/"+row[0], v
		}
	}
	return fmt.Sprintf("%-16s adaptive vs MPI: %.2fx (%s) … %.2fx (%s)",
		er.Workload, worstV, worst, bestV, best)
}
