package iomethod

import (
	"repro/internal/mpisim"
	"repro/internal/simkernel"
)

// StepCont is one rank's collective output step in flight on the
// continuation engine: the run-to-completion counterpart of a WriteStep
// call. Step follows the simkernel.Cont protocol — it returns true when
// this rank's participation (including any coordination roles the rank
// carries) has finished, or arranges a wakeup, marks the process parked,
// and returns false. Wakeups re-enter Step to continue the same operation
// (advance style), so the driving machine must move its own program counter
// past the step before yielding.
type StepCont interface {
	// Step drives the rank's participation; see simkernel.Cont.
	Step(c *simkernel.ContProc) bool

	// Result returns what the equivalent WriteStep call would have
	// returned; valid once Step has returned true.
	Result() (*StepResult, error)
}

// ContMethod is implemented by transports whose WriteStep can run as a
// continuation. BeginStepCont arms and returns the rank's step machine; it
// performs no simulation work itself (no events, no random draws), so a
// body may call it at any point before first driving the machine.
type ContMethod interface {
	Method

	// BeginStepCont begins the continuation form of
	// WriteStep(r, stepName, data).
	BeginStepCont(r *mpisim.Rank, stepName string, data RankData) StepCont
}
