// Package iomethod defines the common contract between the ADIOS-like
// middleware facade and its transport methods (the adaptive method of the
// paper's Section III, the tuned MPI-IO baseline it is evaluated against,
// and a plain POSIX file-per-process method).
//
// A Method executes one collective output step: every rank of a world calls
// WriteStep with its own data; the method routes bytes to the file system
// and produces per-writer timings plus (for index-producing methods) a
// global index.
package iomethod

import (
	"repro/internal/bp"
	"repro/internal/mpisim"
	"repro/internal/pfs"
)

// VarSpec describes one variable block a rank contributes to an output
// step: its size and its data characteristics (carried into the index).
type VarSpec struct {
	Name  string
	Bytes int64
	Dims  []uint64
	Min   float64
	Max   float64
}

// RankData is the set of variable blocks one rank writes in a step.
type RankData struct {
	Vars []VarSpec
}

// TotalBytes sums the rank's block sizes.
func (d RankData) TotalBytes() int64 {
	var t int64
	for _, v := range d.Vars {
		t += v.Bytes
	}
	return t
}

// StepResult collects a completed output step's measurements. It is shared
// by all ranks of the step (the simulation is single-threaded under the
// kernel's handoff discipline, so plain fields suffice).
type StepResult struct {
	// WriterTimes[r] is rank r's IO time in seconds: from the step's timed
	// start (after the untimed open/create phase) until its data is written
	// and flushed — the span the application blocks on. Waiting for a
	// write slot under the adaptive method is included, as the application
	// is blocked during it.
	WriterTimes []float64

	// Elapsed is the full operation time in seconds: timed start until the
	// last writer, index writes, and closes have finished.
	Elapsed float64

	// TotalBytes is the payload written (excluding index bytes).
	TotalBytes float64

	// IndexBytes is the index metadata written (local + global).
	IndexBytes float64

	// Global is the merged global index (nil for methods without one).
	Global *bp.GlobalIndex

	// AdaptiveWrites counts writes redirected to a foreign storage target
	// (always zero for non-adaptive methods).
	AdaptiveWrites int

	// WriteFailures counts client write operations abandoned with
	// pfs.ErrTargetDown (a storage target was Dead past its timeout). The
	// adaptive method retries these elsewhere; baselines lose the data.
	WriteFailures int

	// Files is the number of data files produced.
	Files int

	// MDSOpenQueuePeak is the metadata server's queue high-water mark at
	// the end of the untimed open/create phase — the quantity the
	// stagger-open technique reduces.
	MDSOpenQueuePeak int

	// DrainElapsed, for asynchronous transports (staging), is the time
	// until the last byte and index actually reached the file system;
	// Elapsed then covers only the application-blocking span.
	DrainElapsed float64
}

// AggregateBW returns TotalBytes/Elapsed in bytes/sec.
func (r *StepResult) AggregateBW() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return r.TotalBytes / r.Elapsed
}

// Method is a collective output transport. WriteStep must be called by
// every rank of the world, each passing its own data; it returns after this
// rank's participation in the step (including any coordination roles the
// rank carries) has finished. The returned StepResult pointer is the same
// object for all ranks of the step; it is fully populated once every rank
// has returned.
type Method interface {
	// Name identifies the method ("MPI", "ADAPTIVE", "POSIX").
	Name() string

	// WriteStep performs one collective output operation named stepName.
	WriteStep(r *mpisim.Rank, stepName string, data RankData) (*StepResult, error)
}

// Factory builds a method bound to a world and file system.
type Factory func(w *mpisim.World, fs *pfs.FileSystem) (Method, error)

// BuildEntries constructs the index records for a rank's block laid out
// contiguously starting at offset, returning the entries and the total
// bytes consumed.
func BuildEntries(rank int, offset int64, data RankData) ([]bp.VarEntry, int64) {
	// The Dims copies share one backing array: two allocations per rank per
	// step instead of one per variable (entries keep their own copy so the
	// index stays valid however the caller reuses the spec).
	nDims := 0
	for _, v := range data.Vars {
		nDims += len(v.Dims)
	}
	entries, _ := AppendEntries(
		make([]bp.VarEntry, 0, len(data.Vars)),
		make([]uint64, 0, nDims),
		rank, offset, data)
	return entries, data.TotalBytes()
}

// AppendEntries appends the records BuildEntries would produce onto
// entries, using dims as the shared Dims backing store, and returns both
// extended slices. Index mergers call it directly to build one
// cohort-sized allocation instead of per-rank intermediates; a dims
// regrowth mid-append leaves earlier entries aliasing the old backing
// array, which stays valid (entries never write through Dims).
func AppendEntries(entries []bp.VarEntry, dims []uint64, rank int, offset int64, data RankData) ([]bp.VarEntry, []uint64) {
	cur := offset
	for _, v := range data.Vars {
		dims = append(dims, v.Dims...)
		entries = append(entries, bp.VarEntry{
			Name:       v.Name,
			WriterRank: int32(rank),
			Offset:     cur,
			Length:     v.Bytes,
			Dims:       dims[len(dims)-len(v.Dims):],
			Min:        v.Min,
			Max:        v.Max,
		})
		cur += v.Bytes
	}
	return entries, dims
}
