package iomethod

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestRankDataTotalBytes(t *testing.T) {
	d := RankData{Vars: []VarSpec{{Bytes: 100}, {Bytes: 250}, {Bytes: 0}}}
	if d.TotalBytes() != 350 {
		t.Fatalf("total = %d", d.TotalBytes())
	}
	if (RankData{}).TotalBytes() != 0 {
		t.Fatal("empty total")
	}
}

func TestBuildEntriesLayout(t *testing.T) {
	d := RankData{Vars: []VarSpec{
		{Name: "a", Bytes: 100, Dims: []uint64{10, 10}, Min: -1, Max: 1},
		{Name: "b", Bytes: 50, Min: 2, Max: 3},
	}}
	entries, total := BuildEntries(7, 1000, d)
	if total != 150 {
		t.Fatalf("total = %d", total)
	}
	if len(entries) != 2 {
		t.Fatalf("entries = %d", len(entries))
	}
	if entries[0].Offset != 1000 || entries[0].Length != 100 || entries[0].WriterRank != 7 {
		t.Fatalf("entry 0 = %+v", entries[0])
	}
	if entries[1].Offset != 1100 || entries[1].Length != 50 {
		t.Fatalf("entry 1 = %+v", entries[1])
	}
	if !reflect.DeepEqual(entries[0].Dims, []uint64{10, 10}) {
		t.Fatal("dims not carried")
	}
	// Dims must be copied, not aliased.
	d.Vars[0].Dims[0] = 99
	if entries[0].Dims[0] == 99 {
		t.Fatal("dims aliased to input")
	}
}

func TestBuildEntriesContiguousProperty(t *testing.T) {
	f := func(sizes []uint16, off uint32) bool {
		d := RankData{}
		for i, s := range sizes {
			d.Vars = append(d.Vars, VarSpec{Name: string(rune('a' + i%26)), Bytes: int64(s)})
		}
		entries, total := BuildEntries(0, int64(off), d)
		if total != d.TotalBytes() {
			return false
		}
		cur := int64(off)
		for _, e := range entries {
			if e.Offset != cur {
				return false
			}
			cur += e.Length
		}
		return cur == int64(off)+total
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStepResultAggregateBW(t *testing.T) {
	r := StepResult{TotalBytes: 1000, Elapsed: 4}
	if r.AggregateBW() != 250 {
		t.Fatalf("bw = %v", r.AggregateBW())
	}
	if (&StepResult{TotalBytes: 5}).AggregateBW() != 0 {
		t.Fatal("zero elapsed should yield zero bandwidth")
	}
}
