package mpisim

// Continuation-engine entry points. A rank body that is straight-line —
// the IOR writers, the adaptive method's writer role, the workload
// generators — can run as a simkernel continuation instead of a goroutine:
// the kernel resumes its Step inline on every wakeup, with no channel
// handoff. The message-passing state (per-rank queues, waiter lists,
// delivery events) is shared between both engines, so a world may mix
// LaunchCont ranks with goroutine ranks and the event schedule is
// identical either way. The adaptive method's sub-coordinator and
// coordinator pumps are continuation machines on both engines (core's
// pump.go), spawned directly via Kernel.SpawnCont alongside whichever
// engine carries the rank bodies.

import (
	"repro/internal/simkernel"
)

// RankCont is a run-to-completion rank body: the continuation counterpart
// of Launch's fn. StepRank is resumed by the kernel on every wakeup and
// follows the simkernel.Cont protocol — return true when the rank's work
// is complete, or arrange a wakeup, mark the process parked, and return
// false to yield.
type RankCont interface {
	StepRank(r *Rank, c *simkernel.ContProc) bool
}

// rankShell adapts a RankCont to simkernel.Cont: it wires the rank to its
// backing process and signals the launch wait group when the body
// completes — the exact counterpart of Launch's `defer wg.Done()`.
type rankShell struct {
	r    *Rank
	body RankCont
	wg   *simkernel.WaitGroup
}

//repro:hotpath
func (s *rankShell) Step(c *simkernel.ContProc) bool {
	s.r.p = c.Proc()
	if !s.body.StepRank(s.r, c) {
		return false
	}
	s.wg.Done()
	return true
}

// LaunchCont spawns one continuation process per rank running mk(i). It is
// the run-to-completion counterpart of Launch: same process names, same
// spawn order, same completion wait group — so a workload launched either
// way schedules the same events in the same order.
//
// The rank shells persist on the world and are rebound to the new bodies on
// every call, so a recycled world (World.Reset) launches its next replica
// without reallocating them. At most one LaunchCont batch may be in flight
// per world at a time.
func (w *World) LaunchCont(name string, mk func(i int) RankCont) *simkernel.WaitGroup {
	wg := simkernel.NewWaitGroup(w.k)
	wg.Add(w.size)
	if w.shells == nil {
		w.shells = make([]rankShell, w.size)
	}
	names := w.names(name)
	for i := 0; i < w.size; i++ {
		w.shells[i] = rankShell{r: w.ranks[i], body: mk(i), wg: wg}
		w.k.SpawnContJob(names[i], w.job, &w.shells[i])
	}
	return wg
}

// RecvOp is a continuation-side receive in flight. The zero value is
// ready; one RecvOp may be reused across sequential receives. Protocol
// (advance style):
//
//	if !r.RecvCont(&op, c, from, tag) {
//	        m.pc = next    // advance PAST the receive before yielding
//	        return false
//	}
//	msg := op.Msg()
//
// and at the top of state `next`, read op.Msg(). A matching queued message
// completes the receive inline (true) with no event scheduled — the same
// no-block fast path as the goroutine engine's Recv.
type RecvOp struct {
	w      recvWaiter
	msg    Message
	inline bool
}

// RecvCont begins a receive for a continuation body. It reports whether a
// matching message was already queued (completed inline); otherwise c is
// registered as a waiter and marked parked — the body must yield with its
// program counter advanced past the receive, because delivery fills the op
// and wakes the process directly.
//
//repro:hotpath
func (r *Rank) RecvCont(o *RecvOp, c *simkernel.ContProc, from, tag int) bool {
	if m, ok := r.TryRecv(from, tag); ok {
		o.msg = m
		o.inline = true
		return true
	}
	o.inline = false
	o.w = recvWaiter{from: from, tag: tag, proc: c.Proc(), wake: c.Waker()}
	r.waiters.Push(&o.w)
	c.Pause()
	return false
}

// Msg returns the received message. Valid after RecvCont returned true, or
// after the wakeup that follows a false return.
func (o *RecvOp) Msg() Message {
	if o.inline {
		return o.msg
	}
	if !o.w.has {
		panic("mpisim: Recv woke without a message")
	}
	return o.w.msg
}
