package mpisim

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/simkernel"
)

// The engine-equivalence pin at the mpisim level: the same two-phase ring
// workload, once on goroutine ranks and once on continuation ranks, must
// produce an identical execution log. Phase 1 exercises the inline receive
// (message already queued when the receive begins); phase 2 the blocking
// receive (token ring, every rank waits on its predecessor).

func runRingGoroutine(n int) []string {
	k := simkernel.New()
	w := NewWorld(k, n, Options{})
	var log []string
	add := func(rank int, what string) {
		log = append(log, fmt.Sprintf("%v r%d %s", k.Now(), rank, what))
	}
	wg := w.Launch("ring", func(r *Rank) {
		i := r.Rank()
		next, prev := (i+1)%n, (i+n-1)%n
		r.Send(next, 7, i)
		r.Proc().Sleep(time.Millisecond) // let the phase-1 message land
		m := r.Recv(prev, 7)             // inline: already queued
		add(i, fmt.Sprintf("phase1 %v", m.Data))
		if i == 0 {
			r.Send(next, 9, 0)
		}
		m = r.Recv(prev, 9) // blocking: token ring
		add(i, fmt.Sprintf("phase2 %v", m.Data))
		if i != 0 {
			r.Send(next, 9, m.Data.(int)+1)
		}
	})
	k.Spawn("join", func(p *simkernel.Proc) { wg.Wait(p) })
	k.Run()
	k.Shutdown()
	return log
}

type ringCont struct {
	pc         int
	next, prev int
	op         RecvOp
	add        func(rank int, what string)
}

func (m *ringCont) StepRank(r *Rank, c *simkernel.ContProc) bool {
	i := r.Rank()
	for {
		switch m.pc {
		case 0:
			r.Send(m.next, 7, i)
			m.pc = 1
			c.Sleep(time.Millisecond)
			return false
		case 1:
			m.pc = 2
			if !r.RecvCont(&m.op, c, m.prev, 7) {
				return false
			}
		case 2:
			m.add(i, fmt.Sprintf("phase1 %v", m.op.Msg().Data))
			if i == 0 {
				r.Send(m.next, 9, 0)
			}
			m.pc = 3
			if !r.RecvCont(&m.op, c, m.prev, 9) {
				return false
			}
		case 3:
			msg := m.op.Msg()
			m.add(i, fmt.Sprintf("phase2 %v", msg.Data))
			if i != 0 {
				r.Send(m.next, 9, msg.Data.(int)+1)
			}
			return true
		}
	}
}

func runRingCont(n int) []string {
	k := simkernel.New()
	w := NewWorld(k, n, Options{})
	var log []string
	add := func(rank int, what string) {
		log = append(log, fmt.Sprintf("%v r%d %s", k.Now(), rank, what))
	}
	wg := w.LaunchCont("ring", func(i int) RankCont {
		return &ringCont{next: (i + 1) % n, prev: (i + n - 1) % n, add: add}
	})
	k.Spawn("join", func(p *simkernel.Proc) { wg.Wait(p) })
	k.Run()
	k.Shutdown()
	return log
}

func TestLaunchContMatchesLaunch(t *testing.T) {
	for _, n := range []int{1, 2, 5, 16} {
		g := runRingGoroutine(n)
		c := runRingCont(n)
		if strings.Join(g, "\n") != strings.Join(c, "\n") {
			t.Fatalf("n=%d: engines diverge\n--- goroutine ---\n%s\n--- continuation ---\n%s",
				n, strings.Join(g, "\n"), strings.Join(c, "\n"))
		}
	}
}
