// Package mpisim provides an MPI-like process and message-passing substrate
// on top of the simulation kernel: a world of ranks, tagged point-to-point
// messages with source/tag matching, barriers, and small collectives.
//
// The paper's adaptive IO method (Section III) is a set of message-driven
// roles — writers, sub-coordinators, one coordinator — layered onto the
// application's existing MPI ranks; this package supplies exactly the
// communication semantics those algorithms assume: reliable, ordered
// delivery per (source, tag) pair, and blocking receives with wildcards.
package mpisim

import (
	"fmt"
	"time"

	"repro/internal/simkernel"
)

// Wildcards for Recv matching.
const (
	AnySource = -1
	AnyTag    = -1
)

// Message is a delivered point-to-point message.
type Message struct {
	From int
	Tag  int
	Data any
}

// Options configures a world.
type Options struct {
	// Latency is the one-way delivery delay for a control message
	// (default 5µs — interconnect-scale, negligible against IO times but
	// enough to keep causality realistic).
	Latency time.Duration
	// Job tags every process the world launches with a job attribution id
	// (simkernel.Proc.Job). 0 leaves processes unattributed — the
	// single-application behaviour. Co-scheduled job mixes give each
	// application world its own id so the file system can attribute
	// per-job traffic.
	Job int
}

// World is a communicator: a fixed-size set of ranks sharing a kernel.
type World struct {
	k       *simkernel.Kernel //repro:reset-skip identity: the kernel is Reset by its owner before World.Reset
	size    int               //repro:reset-skip immutable: a world never changes rank count
	latency simkernel.Time
	job     int
	ranks   []*Rank

	barrierGen     int
	barrierArrived int
	barrierWaiters []*simkernel.Proc

	// freeDel recycles delivery events: a send in steady state reuses a
	// fired event object instead of allocating a closure.
	freeDel []*delivery //repro:reset-skip freelist of inert fired events, deliberately kept across Reset

	// shells are the persistent continuation rank shells, built by the
	// first LaunchCont and rebound to fresh bodies on every later launch
	// (one launch batch per world at a time).
	shells []rankShell //repro:reset-skip rebound by the next LaunchCont; stale bodies are unreachable after kernel Reset

	// procNames caches the "name[i]" process names the launches format, so
	// a recycled world's replicas skip the per-rank Sprintf.
	procNames   []string //repro:reset-skip immutable once formatted for procNameFor
	procNameFor string   //repro:reset-skip cache key for procNames

	// Stats
	MessagesSent int
}

// delivery is a recycled message-delivery event (simkernel.EventFirer):
// sends schedule one of these instead of a closure, so steady-state
// messaging allocates nothing beyond the payload's interface box.
type delivery struct {
	w   *World
	dst *Rank
	m   Message
}

// Fire hands the message to its destination. The event object returns to
// the world's freelist before delivery runs, because delivery may itself
// send (and so pop the freelist).
//
//repro:hotpath
func (d *delivery) Fire() {
	dst, m := d.dst, d.m
	d.dst = nil
	d.m = Message{}
	d.w.freeDel = append(d.w.freeDel, d)
	dst.deliver(m)
}

// send schedules delivery of one message after the world's latency.
//
//repro:hotpath
func (w *World) send(from, to, tag int, data any) {
	if to < 0 || to >= w.size {
		panic(fmt.Sprintf("mpisim: Send to invalid rank %d (size %d)", to, w.size))
	}
	w.MessagesSent++
	var d *delivery
	if n := len(w.freeDel); n > 0 {
		d = w.freeDel[n-1]
		w.freeDel[n-1] = nil
		w.freeDel = w.freeDel[:n-1]
	} else {
		d = &delivery{w: w}
	}
	d.dst = w.ranks[to]
	d.m = Message{From: from, Tag: tag, Data: data}
	w.k.AtEvent(w.k.Now()+w.latency, d)
}

// NewWorld creates a world with the given number of ranks on kernel k.
func NewWorld(k *simkernel.Kernel, size int, opt Options) *World {
	if size <= 0 {
		panic("mpisim: world size must be positive")
	}
	lat := opt.Latency
	if lat == 0 {
		lat = 5 * time.Microsecond
	}
	w := &World{k: k, size: size, latency: simkernel.Time(lat), job: opt.Job}
	w.ranks = make([]*Rank, size)
	backing := make([]Rank, size)
	for i := range w.ranks {
		backing[i] = Rank{w: w, rank: i}
		w.ranks[i] = &backing[i]
	}
	return w
}

// Reset re-arms the world for a new replica on a kernel that has itself
// been Reset: barrier state, message statistics and every rank's mailbox
// are cleared, and the latency/job options retuned. The rank shells, the
// delivery-event freelist and the receive-waiter freelists survive — a
// Reset world runs its next replica bit-identically to a freshly built one
// while recycling all of its steady-state allocations (the world-reuse
// determinism contract, pinned by cluster's pool tests).
//
//repro:hotpath
func (w *World) Reset(opt Options) {
	lat := opt.Latency
	if lat == 0 {
		lat = 5 * time.Microsecond
	}
	w.latency = simkernel.Time(lat)
	w.job = opt.Job
	w.barrierGen = 0
	w.barrierArrived = 0
	for i := range w.barrierWaiters {
		w.barrierWaiters[i] = nil
	}
	w.barrierWaiters = w.barrierWaiters[:0]
	w.MessagesSent = 0
	for _, r := range w.ranks {
		r.p = nil
		r.queue.Reset()
		// Waiters parked at reset time belong to processes the kernel
		// Reset already unwound. Drop them without recycling: a
		// continuation-side waiter is embedded in its RecvOp (not
		// freelist-owned), and pushing it onto wfree would let a later
		// RecvAs scribble over a machine the next replica reuses.
		r.waiters.Reset()
	}
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.size }

// Kernel returns the underlying simulation kernel.
func (w *World) Kernel() *simkernel.Kernel { return w.k }

// Job returns the world's job attribution id (0 = unattributed).
func (w *World) Job() int { return w.job }

// names returns the cached per-rank process names for an application name,
// formatting them only when the name changes (a world launches the same
// application on every replica, so steady state reuses them).
func (w *World) names(name string) []string {
	if w.procNames == nil || w.procNameFor != name {
		w.procNames = make([]string, w.size)
		for i := range w.procNames {
			w.procNames[i] = fmt.Sprintf("%s[%d]", name, i)
		}
		w.procNameFor = name
	}
	return w.procNames
}

// Launch spawns one simulation process per rank running fn. It returns a
// WaitGroup that reaches zero when every rank's fn has returned; run the
// kernel to drive them.
func (w *World) Launch(name string, fn func(r *Rank)) *simkernel.WaitGroup {
	wg := simkernel.NewWaitGroup(w.k)
	wg.Add(w.size)
	names := w.names(name)
	for i := 0; i < w.size; i++ {
		r := w.ranks[i]
		w.k.SpawnJob(names[i], w.job, func(p *simkernel.Proc) {
			defer wg.Done()
			r.p = p
			fn(r)
		})
	}
	return wg
}

// recvWaiter is a rank blocked in Recv with a match pattern.
type recvWaiter struct {
	from, tag int
	msg       Message // filled in by a matching Send before wakeup
	has       bool
	proc      *simkernel.Proc
	wake      func()
}

func matches(wantFrom, wantTag int, m Message) bool {
	return (wantFrom == AnySource || wantFrom == m.From) &&
		(wantTag == AnyTag || wantTag == m.Tag)
}

// Rank is one process in a world.
type Rank struct {
	w    *World
	rank int
	p    *simkernel.Proc

	queue   simkernel.Ring[Message]
	waiters simkernel.Ring[*recvWaiter]
	wfree   []*recvWaiter // recycled RecvAs waiter records
}

// Rank returns this rank's index.
func (r *Rank) Rank() int { return r.rank }

// Size returns the world size.
func (r *Rank) Size() int { return r.w.size }

// World returns the enclosing world.
func (r *Rank) World() *World { return r.w }

// Proc returns the simulation process backing this rank (nil before
// Launch's fn begins).
func (r *Rank) Proc() *simkernel.Proc { return r.p }

// Send delivers data to rank `to` with the given tag after the world's
// latency. Send never blocks (buffered/eager semantics — the algorithm
// messages in this codebase are all small control messages and indices).
func (r *Rank) Send(to, tag int, data any) {
	r.w.send(r.rank, to, tag, data)
}

// deliver runs in kernel context: hand the message to the oldest matching
// waiter, or queue it.
//
//repro:hotpath
func (dst *Rank) deliver(m Message) {
	for i, n := 0, dst.waiters.Len(); i < n; i++ {
		w := dst.waiters.At(i)
		if !w.has && matches(w.from, w.tag, m) {
			w.msg = m
			w.has = true
			dst.waiters.RemoveAt(i)
			w.wake()
			return
		}
	}
	dst.queue.Push(m)
}

// Recv blocks until a message matching (from, tag) arrives and returns it.
// Use AnySource / AnyTag as wildcards. Messages from the same source with
// the same tag are received in send order.
func (r *Rank) Recv(from, tag int) Message {
	return r.RecvAs(r.p, from, tag)
}

// RecvAs is Recv for an explicit simulation process. A rank may carry
// auxiliary roles (the adaptive method's sub-coordinator and coordinator
// loops) running as helper processes on the same kernel; each role receives
// on the rank's mailbox with its own tag space. Concurrent receivers must
// use disjoint tag patterns, or one role will steal another's messages.
func (r *Rank) RecvAs(p *simkernel.Proc, from, tag int) Message {
	for i, n := 0, r.queue.Len(); i < n; i++ {
		if matches(from, tag, r.queue.At(i)) {
			return r.queue.RemoveAt(i)
		}
	}
	var w *recvWaiter
	if n := len(r.wfree); n > 0 {
		w = r.wfree[n-1]
		r.wfree[n-1] = nil
		r.wfree = r.wfree[:n-1]
		*w = recvWaiter{from: from, tag: tag, proc: p, wake: p.Waker()}
	} else {
		w = &recvWaiter{from: from, tag: tag, proc: p, wake: p.Waker()}
	}
	r.waiters.Push(w)
	p.Suspend()
	if !w.has {
		panic("mpisim: Recv woke without a message")
	}
	m := w.msg
	*w = recvWaiter{}
	r.wfree = append(r.wfree, w)
	return m
}

// SendFrom delivers a message that reports rank `asFrom` as its sender —
// used by helper-role processes that logically act as their host rank.
func (r *Rank) SendFrom(asFrom, to, tag int, data any) {
	r.w.send(asFrom, to, tag, data)
}

// TryRecv returns a matching queued message without blocking.
func (r *Rank) TryRecv(from, tag int) (Message, bool) {
	for i, n := 0, r.queue.Len(); i < n; i++ {
		if matches(from, tag, r.queue.At(i)) {
			return r.queue.RemoveAt(i), true
		}
	}
	return Message{}, false
}

// Pending reports the number of queued undelivered messages at this rank.
func (r *Rank) Pending() int { return r.queue.Len() }

// Barrier blocks until all ranks of the world have entered it. The release
// costs one latency plus log2(size) fan-out hops, approximating a tree
// barrier.
func (r *Rank) Barrier() {
	w := r.w
	w.barrierArrived++
	if w.barrierArrived < w.size {
		w.barrierWaiters = append(w.barrierWaiters, r.p)
		r.p.Suspend()
		return
	}
	// Last arrival releases everyone.
	w.barrierArrived = 0
	w.barrierGen++
	hops := 1
	for n := 1; n < w.size; n *= 2 {
		hops++
	}
	delay := w.latency * simkernel.Time(hops)
	waiters := w.barrierWaiters
	w.barrierWaiters = nil
	for _, p := range waiters {
		w.k.At(w.k.Now()+delay, p.Waker())
	}
	r.p.Sleep(time.Duration(delay))
}

// Internal tags used by collectives; user code should use non-negative tags
// below 1<<20.
const (
	tagGather = 1<<20 + iota
	tagBcast
	tagReduce
)

// Gather collects each rank's contribution at root, returned in rank order
// (nil at non-roots).
func (r *Rank) Gather(root int, data any) []any {
	if r.rank != root {
		r.Send(root, tagGather, data)
		return nil
	}
	out := make([]any, r.w.size)
	out[root] = data
	for i := 0; i < r.w.size-1; i++ {
		m := r.Recv(AnySource, tagGather)
		out[m.From] = m.Data
	}
	return out
}

// Bcast distributes root's value to every rank and returns it.
func (r *Rank) Bcast(root int, data any) any {
	if r.rank == root {
		for i := 0; i < r.w.size; i++ {
			if i != root {
				r.Send(i, tagBcast, data)
			}
		}
		return data
	}
	m := r.Recv(root, tagBcast)
	return m.Data
}

// ReduceFloat64 combines each rank's value at root with op (e.g. max, sum);
// non-roots return 0.
func (r *Rank) ReduceFloat64(root int, v float64, op func(a, b float64) float64) float64 {
	if r.rank != root {
		r.Send(root, tagReduce, v) //repro:allow hotpath once-per-run collective; the float64 box is not steady-state traffic
		return 0
	}
	acc := v
	for i := 0; i < r.w.size-1; i++ {
		m := r.Recv(AnySource, tagReduce)
		acc = op(acc, m.Data.(float64))
	}
	return acc
}
