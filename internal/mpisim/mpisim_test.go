package mpisim

import (
	"math"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/simkernel"
)

func run(t *testing.T, size int, fn func(r *Rank)) *World {
	t.Helper()
	k := simkernel.New()
	w := NewWorld(k, size, Options{})
	wg := w.Launch("t", fn)
	k.Run()
	if wg.Count() != 0 {
		t.Fatalf("%d ranks did not finish (deadlock?)", wg.Count())
	}
	k.Shutdown()
	return w
}

func TestPingPong(t *testing.T) {
	var got string
	run(t, 2, func(r *Rank) {
		switch r.Rank() {
		case 0:
			r.Send(1, 7, "ping")
			m := r.Recv(1, 8)
			got = m.Data.(string)
		case 1:
			m := r.Recv(0, 7)
			if m.Data.(string) != "ping" {
				t.Error("bad ping payload")
			}
			r.Send(0, 8, "pong")
		}
	})
	if got != "pong" {
		t.Fatalf("got %q", got)
	}
}

func TestPerSourceTagOrdering(t *testing.T) {
	var got []int
	run(t, 2, func(r *Rank) {
		if r.Rank() == 0 {
			for i := 0; i < 10; i++ {
				r.Send(1, 3, i)
			}
		} else {
			for i := 0; i < 10; i++ {
				got = append(got, r.Recv(0, 3).Data.(int))
			}
		}
	})
	for i, v := range got {
		if v != i {
			t.Fatalf("out of order delivery: %v", got)
		}
	}
}

func TestWildcardSourceAndTag(t *testing.T) {
	var froms []int
	run(t, 4, func(r *Rank) {
		if r.Rank() == 0 {
			for i := 0; i < 3; i++ {
				m := r.Recv(AnySource, AnyTag)
				froms = append(froms, m.From)
			}
		} else {
			r.Send(0, 100+r.Rank(), "hello")
		}
	})
	sort.Ints(froms)
	if !reflect.DeepEqual(froms, []int{1, 2, 3}) {
		t.Fatalf("froms = %v", froms)
	}
}

func TestSelectiveRecvSkipsNonMatching(t *testing.T) {
	var tag5, tag6 int
	run(t, 2, func(r *Rank) {
		if r.Rank() == 0 {
			r.Send(1, 5, 50)
			r.Send(1, 6, 60)
		} else {
			// Receive tag 6 first even though tag 5 arrived first.
			tag6 = r.Recv(0, 6).Data.(int)
			tag5 = r.Recv(0, 5).Data.(int)
		}
	})
	if tag5 != 50 || tag6 != 60 {
		t.Fatalf("tag5=%d tag6=%d", tag5, tag6)
	}
}

func TestRecvBlocksUntilSend(t *testing.T) {
	var recvAt simkernel.Time
	k := simkernel.New()
	w := NewWorld(k, 2, Options{Latency: time.Microsecond})
	w.Launch("t", func(r *Rank) {
		if r.Rank() == 0 {
			r.Proc().Sleep(time.Millisecond)
			r.Send(1, 1, nil)
		} else {
			r.Recv(0, 1)
			recvAt = r.Proc().Now()
		}
	})
	k.Run()
	k.Shutdown()
	want := simkernel.Time(time.Millisecond + time.Microsecond)
	if recvAt != want {
		t.Fatalf("recv at %v, want %v", recvAt, want)
	}
}

func TestTryRecv(t *testing.T) {
	run(t, 2, func(r *Rank) {
		if r.Rank() == 0 {
			if _, ok := r.TryRecv(AnySource, AnyTag); ok {
				t.Error("TryRecv should fail with empty queue")
			}
			r.Proc().Sleep(time.Millisecond)
			m, ok := r.TryRecv(1, 9)
			if !ok || m.Data.(int) != 42 {
				t.Errorf("TryRecv = %v,%v", m, ok)
			}
			if r.Pending() != 0 {
				t.Errorf("pending = %d", r.Pending())
			}
		} else {
			r.Send(0, 9, 42)
		}
	})
}

func TestBarrierSynchronizes(t *testing.T) {
	var exits []simkernel.Time
	run(t, 5, func(r *Rank) {
		r.Proc().Sleep(time.Duration(r.Rank()) * time.Millisecond)
		r.Barrier()
		exits = append(exits, r.Proc().Now())
	})
	if len(exits) != 5 {
		t.Fatalf("exits = %v", exits)
	}
	for _, e := range exits {
		if e < simkernel.Time(4*time.Millisecond) {
			t.Fatalf("rank exited barrier at %v before last arrival", e)
		}
	}
}

func TestBarrierReusable(t *testing.T) {
	count := 0
	run(t, 3, func(r *Rank) {
		for i := 0; i < 4; i++ {
			r.Barrier()
		}
		count++
	})
	if count != 3 {
		t.Fatalf("count = %d", count)
	}
}

func TestGather(t *testing.T) {
	var got []any
	run(t, 4, func(r *Rank) {
		res := r.Gather(2, r.Rank()*10)
		if r.Rank() == 2 {
			got = res
		} else if res != nil {
			t.Error("non-root Gather should return nil")
		}
	})
	want := []any{0, 10, 20, 30}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("gathered %v", got)
	}
}

func TestBcast(t *testing.T) {
	vals := make([]int, 4)
	run(t, 4, func(r *Rank) {
		v := r.Bcast(1, 99)
		vals[r.Rank()] = v.(int)
	})
	for i, v := range vals {
		if v != 99 {
			t.Fatalf("rank %d got %d", i, v)
		}
	}
}

func TestReduceFloat64Max(t *testing.T) {
	var got float64
	run(t, 6, func(r *Rank) {
		v := r.ReduceFloat64(0, float64(r.Rank()), math.Max)
		if r.Rank() == 0 {
			got = v
		}
	})
	if got != 5 {
		t.Fatalf("max = %v", got)
	}
}

func TestSendInvalidRankPanics(t *testing.T) {
	panicked := false
	run(t, 2, func(r *Rank) {
		if r.Rank() == 0 {
			defer func() {
				if recover() != nil {
					panicked = true
				}
			}()
			r.Send(7, 0, nil)
		}
	})
	if !panicked {
		t.Fatal("expected panic for invalid destination")
	}
}

func TestZeroWorldPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewWorld(simkernel.New(), 0, Options{})
}

func TestMessageCountStat(t *testing.T) {
	w := run(t, 3, func(r *Rank) {
		if r.Rank() != 0 {
			r.Send(0, 1, nil)
		} else {
			r.Recv(AnySource, 1)
			r.Recv(AnySource, 1)
		}
	})
	if w.MessagesSent != 2 {
		t.Fatalf("messages sent = %d", w.MessagesSent)
	}
}

// Property: any random pattern of sends is fully received with wildcard
// receives, in per-sender order, regardless of interleaving.
func TestAllMessagesDeliveredProperty(t *testing.T) {
	f := func(counts []uint8) bool {
		senders := len(counts)
		if senders == 0 || senders > 6 {
			return true
		}
		total := 0
		for i := range counts {
			counts[i] = counts[i] % 20
			total += int(counts[i])
		}
		k := simkernel.New()
		w := NewWorld(k, senders+1, Options{})
		perSender := make([][]int, senders+1)
		w.Launch("p", func(r *Rank) {
			if r.Rank() == 0 {
				for i := 0; i < total; i++ {
					m := r.Recv(AnySource, AnyTag)
					perSender[m.From] = append(perSender[m.From], m.Data.(int))
				}
				return
			}
			n := int(counts[r.Rank()-1])
			for i := 0; i < n; i++ {
				r.Send(0, 1, i)
				r.Proc().Sleep(time.Duration(r.Rank()) * time.Microsecond)
			}
		})
		k.Run()
		k.Shutdown()
		for s := 1; s <= senders; s++ {
			if len(perSender[s]) != int(counts[s-1]) {
				return false
			}
			for i, v := range perSender[s] {
				if v != i {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
