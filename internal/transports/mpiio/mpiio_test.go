package mpiio

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/iomethod"
	"repro/internal/machines"
	"repro/internal/mpisim"
	"repro/internal/pfs"
	"repro/internal/simkernel"
)

func run(t *testing.T, writers, numOSTs int, bytesPerRank int64, tweak func(*pfs.FileSystem), cfg Config) (*iomethod.StepResult, *pfs.FileSystem) {
	t.Helper()
	k := simkernel.New()
	fsCfg := machines.Jaguar(5).FS
	fsCfg.NumOSTs = numOSTs
	fs := pfs.MustNew(k, fsCfg)
	if tweak != nil {
		tweak(fs)
	}
	w := mpisim.NewWorld(k, writers, mpisim.Options{})
	m, err := New(w, fs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var res *iomethod.StepResult
	wg := w.Launch("app", func(r *mpisim.Rank) {
		data := iomethod.RankData{Vars: []iomethod.VarSpec{
			{Name: "u", Bytes: bytesPerRank, Min: 0, Max: 1},
		}}
		rr, err := m.WriteStep(r, "out", data)
		if err != nil {
			t.Error(err)
			return
		}
		res = rr
	})
	k.Run()
	if wg.Count() != 0 {
		t.Fatalf("%d ranks never finished", wg.Count())
	}
	k.Shutdown()
	return res, fs
}

func TestConservationAndSingleFile(t *testing.T) {
	const W = 16
	const size = 4 * int64(pfs.MB)
	res, fs := run(t, W, 8, size, nil, Config{})
	if math.Abs(res.TotalBytes-float64(W*size)) > 1 {
		t.Fatalf("total bytes %v", res.TotalBytes)
	}
	if res.Files != 1 {
		t.Fatalf("files = %d, want 1", res.Files)
	}
	if !fs.Exists("out.bp") {
		t.Fatal("shared file missing")
	}
	if res.Global == nil || res.Global.NumEntries() != W {
		t.Fatalf("index entries = %v", res.Global)
	}
	ing := fs.TotalBytesIngested()
	if math.Abs(ing-(res.TotalBytes+res.IndexBytes)) > 16 {
		t.Fatalf("FS ingested %v, want %v", ing, res.TotalBytes+res.IndexBytes)
	}
}

func TestStripeCapAt160(t *testing.T) {
	k := simkernel.New()
	fsCfg := machines.Jaguar(5).FS
	fsCfg.NumOSTs = 512
	fs := pfs.MustNew(k, fsCfg)
	w := mpisim.NewWorld(k, 4, mpisim.Options{})
	m, err := New(w, fs, Config{}) // asks for all 512
	if err != nil {
		t.Fatal(err)
	}
	if got := len(m.StripeTargets()); got != 160 {
		t.Fatalf("stripe targets = %d, want the Lustre 1.6 cap of 160", got)
	}
	k.Shutdown()
}

func TestEachRankMapsToOneTarget(t *testing.T) {
	const W = 12
	_, fs := run(t, W, 4, 2*int64(pfs.MB), nil, Config{})
	// With stripe size = block size, each rank's block lands on exactly one
	// OST; W=12 writers over 4 targets means 3 write streams per target
	// (plus rank 0's footer append).
	total := 0
	for i := 0; i < 4; i++ {
		total += fs.OST(i).Stats.WritesStarted
	}
	if total < W || total > W+1 {
		t.Fatalf("write ops across targets = %d, want %d(+footer)", total, W)
	}
}

func TestCollectiveCloseAlignsElapsed(t *testing.T) {
	res, _ := run(t, 8, 4, 8*int64(pfs.MB), nil, Config{})
	for i, wt := range res.WriterTimes {
		if wt <= 0 || wt > res.Elapsed {
			t.Fatalf("writer %d time %v vs elapsed %v", i, wt, res.Elapsed)
		}
	}
}

func TestSlowTargetStallsWholeCollective(t *testing.T) {
	elapsed := func(slow bool) float64 {
		res, _ := run(t, 16, 4, 32*int64(pfs.MB), func(fs *pfs.FileSystem) {
			if slow {
				fs.OST(0).SetSlowFactor(0.15)
			}
		}, Config{})
		return res.Elapsed
	}
	clean, degraded := elapsed(false), elapsed(true)
	if degraded < clean*1.5 {
		t.Fatalf("one slow target should stall the collective: %v vs %v", degraded, clean)
	}
}

func TestNoFlushOption(t *testing.T) {
	with, _ := run(t, 16, 4, 32*int64(pfs.MB), nil, Config{})
	without, _ := run(t, 16, 4, 32*int64(pfs.MB), nil, Config{NoFlush: true})
	if without.Elapsed >= with.Elapsed {
		t.Fatalf("NoFlush should shorten the timed region: %v vs %v", without.Elapsed, with.Elapsed)
	}
}

func TestOSTRangeValidation(t *testing.T) {
	k := simkernel.New()
	fs := pfs.MustNew(k, pfs.Config{NumOSTs: 4})
	w := mpisim.NewWorld(k, 2, mpisim.Options{})
	if _, err := New(w, fs, Config{OSTs: []int{7}}); err == nil {
		t.Fatal("out-of-range OST accepted")
	}
	k.Shutdown()
}

func TestDeterministic(t *testing.T) {
	a, _ := run(t, 16, 4, 8*int64(pfs.MB), nil, Config{})
	b, _ := run(t, 16, 4, 8*int64(pfs.MB), nil, Config{})
	if a.Elapsed != b.Elapsed {
		t.Fatalf("nondeterministic elapsed: %v vs %v", a.Elapsed, b.Elapsed)
	}
}

func TestSplitFilesConservationAndCoverage(t *testing.T) {
	k := simkernel.New()
	fsCfg := machines.Jaguar(5).FS
	fsCfg.NumOSTs = 16
	fs := pfs.MustNew(k, fsCfg)
	w := mpisim.NewWorld(k, 16, mpisim.Options{})
	m, err := New(w, fs, Config{SplitFiles: 4})
	if err != nil {
		t.Fatal(err)
	}
	if m.Files() != 4 {
		t.Fatalf("files = %d", m.Files())
	}
	var res *iomethod.StepResult
	wg := w.Launch("app", func(r *mpisim.Rank) {
		data := iomethod.RankData{Vars: []iomethod.VarSpec{{Name: "u", Bytes: 4 * int64(pfs.MB)}}}
		rr, err := m.WriteStep(r, "split", data)
		if err != nil {
			t.Error(err)
			return
		}
		res = rr
	})
	k.Run()
	if wg.Count() != 0 {
		t.Fatal("deadlock")
	}
	k.Shutdown()
	if res.Files != 4 {
		t.Fatalf("result files = %d", res.Files)
	}
	if math.Abs(res.TotalBytes-float64(16*4*int64(pfs.MB))) > 1 {
		t.Fatalf("bytes = %v", res.TotalBytes)
	}
	if res.Global == nil || res.Global.NumEntries() != 16 || len(res.Global.Locals) != 4 {
		t.Fatalf("index wrong: %+v", res.Global)
	}
	for i := 0; i < 4; i++ {
		if !fs.Exists(fmt.Sprintf("split.part%02d.bp", i)) {
			t.Fatalf("missing part %d", i)
		}
	}
}

func TestSplitFilesWidenTargetCoverage(t *testing.T) {
	// The Section II-3 alternative: with a per-file stripe limit of 4 on a
	// 16-target system, 4 files reach all 16 targets while 1 file reaches 4.
	k := simkernel.New()
	fsCfg := machines.Jaguar(5).FS
	fsCfg.NumOSTs = 16
	fsCfg.MaxStripeCount = 4
	fs := pfs.MustNew(k, fsCfg)
	w := mpisim.NewWorld(k, 8, mpisim.Options{})
	single, _ := New(w, fs, Config{})
	split, _ := New(w, fs, Config{SplitFiles: 4})
	if got := len(single.StripeTargets()); got != 4 {
		t.Fatalf("single-file targets = %d", got)
	}
	covered := map[int]bool{}
	for i := 0; i < 4; i++ {
		for _, o := range split.cohortOSTs(i) {
			covered[o] = true
		}
	}
	if len(covered) != 16 {
		t.Fatalf("split files cover %d targets, want 16", len(covered))
	}
	k.Shutdown()
}

func TestSplitFilesHelpButDoNotSolveInterference(t *testing.T) {
	// Paper: "This helps alleviate internal interference, but does not
	// solve it nor does it address external interference."
	elapsed := func(split int, slow bool) float64 {
		k := simkernel.New()
		fsCfg := machines.Jaguar(5).FS
		fsCfg.NumOSTs = 16
		fsCfg.MaxStripeCount = 4
		fs := pfs.MustNew(k, fsCfg)
		if slow {
			fs.OST(1).SetSlowFactor(0.15)
		}
		w := mpisim.NewWorld(k, 32, mpisim.Options{})
		m, err := New(w, fs, Config{SplitFiles: split})
		if err != nil {
			t.Fatal(err)
		}
		var res *iomethod.StepResult
		w.Launch("app", func(r *mpisim.Rank) {
			data := iomethod.RankData{Vars: []iomethod.VarSpec{{Name: "u", Bytes: 32 * int64(pfs.MB)}}}
			rr, err := m.WriteStep(r, "s", data)
			if err != nil {
				t.Error(err)
				return
			}
			res = rr
		})
		k.Run()
		k.Shutdown()
		return res.Elapsed
	}
	// Splitting helps internal interference (more targets, fewer writers each).
	if s4 := elapsed(4, false); s4 >= elapsed(1, false) {
		t.Errorf("splitting did not alleviate internal interference")
	}
	// But a slow target still stalls the cohort mapped to it.
	clean := elapsed(4, false)
	degraded := elapsed(4, true)
	if degraded < clean*1.3 {
		t.Errorf("external interference should still hurt split files: %.2f vs %.2f",
			degraded, clean)
	}
}

func TestSplitFilesValidation(t *testing.T) {
	k := simkernel.New()
	fs := pfs.MustNew(k, pfs.Config{NumOSTs: 4})
	w := mpisim.NewWorld(k, 4, mpisim.Options{})
	if _, err := New(w, fs, Config{SplitFiles: -1}); err == nil {
		t.Error("negative split accepted")
	}
	m, err := New(w, fs, Config{SplitFiles: 99})
	if err != nil {
		t.Fatal(err)
	}
	if m.Files() != 4 { // clamped to world size
		t.Errorf("splits = %d, want clamp to 4", m.Files())
	}
	k.Shutdown()
}
