package mpiio

import (
	"fmt"

	"repro/internal/bp"
	"repro/internal/iomethod"
	"repro/internal/mpisim"
	"repro/internal/pfs"
	"repro/internal/simkernel"
)

// The continuation form of WriteStep: one stepCont per rank per step,
// driving the same shared stepState through the same wait groups, creates,
// writes, and index appends — the engines schedule identical events and the
// adios-level golden figures are bit-identical either way.

// stepCont is one rank's MPI-IO collective step in flight.
type stepCont struct {
	m    *Method
	st   *stepState
	rank int
	data iomethod.RankData

	cohort, lo, hi int
	leader         bool

	pc    int
	f     *pfs.File
	total int64
	li    bp.LocalIndex
	enc   int64

	create  pfs.CreateOp
	write   pfs.WriteOp
	flush   pfs.FlushOp
	closeOp pfs.CloseOp

	res *iomethod.StepResult
	err error
}

// BeginStepCont implements iomethod.ContMethod. It only arms the machine;
// all simulation work happens in Step.
func (m *Method) BeginStepCont(r *mpisim.Rank, stepName string, data iomethod.RankData) iomethod.StepCont {
	st := m.getStep(stepName)
	rank := r.Rank()
	cohort := m.cohortOf(rank)
	lo, hi := m.cohortRanks(cohort)
	s := &st.machines[rank]
	*s = stepCont{
		m: m, st: st, rank: rank, data: data,
		cohort: cohort, lo: lo, hi: hi, leader: rank == lo,
	}
	return s
}

// createFailed builds the shared-create failure error off the hot path.
func createFailed(err error) error {
	return fmt.Errorf("mpiio: shared-file create failed: %v", err)
}

// Step drives the rank's participation in the collective step; it mirrors
// WriteStep statement for statement.
//
//repro:hotpath
func (s *stepCont) Step(c *simkernel.ContProc) bool {
	m, st := s.m, s.st
	for {
		switch s.pc {
		case 0:
			st.sizes[s.rank] = s.data.TotalBytes()
			st.arrivedWG.Done()
			if s.leader {
				s.pc = 1
			} else {
				s.pc = 3
			}
		case 1:
			if !st.arrivedWG.WaitCont(c) {
				return false
			}
			var stripe int64 = 1
			for i := s.lo; i < s.hi; i++ {
				if st.sizes[i] > stripe {
					stripe = st.sizes[i]
				}
			}
			var off int64
			for i := s.lo; i < s.hi; i++ {
				st.offsets[i] = off
				off += stripe
			}
			s.create.BeginCreate(m.fs, fileName(st.name, s.cohort, m.cfg.SplitFiles),
				pfs.Layout{OSTs: m.cohortOSTs(s.cohort), StripeSize: stripe})
			s.pc = 2
		case 2:
			if !s.create.Step(c) {
				return false
			}
			if err := s.create.Err(); err != nil && st.createErr == nil {
				st.createErr = err
			}
			st.files[s.cohort] = s.create.File()
			st.createdWG.Done()
			s.pc = 3
		case 3:
			if !st.createdWG.WaitCont(c) {
				return false
			}
			if st.createErr != nil {
				st.writersWG[s.cohort].Done()
				s.err = createFailed(st.createErr)
				return true
			}
			if !st.t0Set {
				st.t0 = c.Now()
				st.t0Set = true
				st.res.MDSOpenQueuePeak = m.fs.MDS.Stats.MaxQueue
			}
			s.f = st.files[s.cohort]
			st.dataOf[s.rank] = s.data
			s.total = s.data.TotalBytes()
			s.write.BeginWrite(s.f, st.offsets[s.rank], s.total)
			s.pc = 4
		case 4:
			if !s.write.Step(c) {
				return false
			}
			if werr := s.write.Err(); werr != nil {
				// Mirrors WriteStep: the block is lost, the cohort
				// bookkeeping still completes.
				s.err = werr
				st.res.WriteFailures++
				st.dataOf[s.rank] = iomethod.RankData{}
				s.pc = 6
			} else {
				st.res.TotalBytes += float64(s.total)
				if !m.cfg.NoFlush {
					s.flush.BeginFlush(s.f)
					s.pc = 5
				} else {
					s.pc = 6
				}
			}
		case 5:
			if !s.flush.Step(c) {
				return false
			}
			s.pc = 6
		case 6:
			st.res.WriterTimes[s.rank] = (c.Now() - st.t0).Seconds()
			st.writersWG[s.cohort].Done()
			if s.leader {
				s.pc = 7
			} else {
				s.pc = 12
			}
		case 7:
			if !st.writersWG[s.cohort].WaitCont(c) {
				return false
			}
			li := bp.LocalIndex{File: fileName(st.name, s.cohort, m.cfg.SplitFiles)}
			n, nd := 0, 0
			for i := s.lo; i < s.hi; i++ {
				n += len(st.dataOf[i].Vars)
				for _, v := range st.dataOf[i].Vars {
					nd += len(v.Dims)
				}
			}
			li.Entries = make([]bp.VarEntry, 0, n)
			dims := make([]uint64, 0, nd)
			for i := s.lo; i < s.hi; i++ {
				li.Entries, dims = iomethod.AppendEntries(li.Entries, dims, i, st.offsets[i], st.dataOf[i])
			}
			li.Sort()
			encLen, err := li.EncodedLen()
			if err != nil {
				s.err = err
				return true
			}
			s.li = li
			s.enc = int64(encLen)
			s.write.BeginAppend(s.f, s.enc)
			s.pc = 8
		case 8:
			if !s.write.Step(c) {
				return false
			}
			if aerr := s.write.Err(); aerr != nil {
				// Footer lost; still close so the cohort completes.
				if s.err == nil {
					s.err = aerr
				}
				s.pc = 10
			} else {
				st.res.IndexBytes += float64(s.enc)
				if !m.cfg.NoFlush {
					s.flush.BeginFlush(s.f)
					s.pc = 9
				} else {
					s.pc = 10
				}
			}
		case 9:
			if !s.flush.Step(c) {
				return false
			}
			s.pc = 10
		case 10:
			s.closeOp.BeginClose(s.f)
			s.pc = 11
		case 11:
			if !s.closeOp.Step(c) {
				return false
			}
			st.locals[s.cohort] = s.li
			st.indexed++
			if st.indexed == m.cfg.SplitFiles {
				g := &bp.GlobalIndex{Step: int64(st.seq), Locals: append([]bp.LocalIndex(nil), st.locals...)} //repro:allow hotpath copy idiom: appends into a fresh nil slice, once per step
				g.Sort()
				st.res.Global = g
			}
			st.closedWG[s.cohort].Done()
			s.pc = 12
		default:
			if !st.closedWG[s.cohort].WaitCont(c) {
				return false
			}
			if el := (c.Now() - st.t0).Seconds(); el > st.res.Elapsed {
				st.res.Elapsed = el
			}
			st.returned++
			if st.returned == m.w.Size() {
				delete(m.steps, st.name)
			}
			s.res = st.res
			return true
		}
	}
}

// Result implements iomethod.StepCont.
func (s *stepCont) Result() (*iomethod.StepResult, error) { return s.res, s.err }
