// Package mpiio implements the ADIOS MPI-IO transport the paper evaluates
// adaptive IO against (Section III-A): the well-tuned baseline that buffers
// all output on the compute nodes and writes a single shared file.
//
// It carries the baseline's Lustre-specific optimisations from the authors'
// earlier work: every rank's buffered output is written as one contiguous
// block, and the shared file's stripe size is set to the block size so each
// rank's block lands on exactly one storage target. What it cannot escape is
// the Lustre 1.6 limit of 160 storage targets for a single file — with
// tens of thousands of writers that forces many writers per target
// (internal interference), and a transient slowdown of any one of the 160
// targets stalls every rank mapped to it (external interference), since the
// collective completes only when the slowest writer does.
//
// The SplitFiles option implements the alternative the paper's Section II-3
// discusses: splitting the output into several shared files so the
// application can reach the whole file system. As the paper argues (and the
// tests verify), this alleviates internal interference but solves neither
// it nor external interference.
package mpiio

import (
	"fmt"

	"repro/internal/bp"
	"repro/internal/iomethod"
	"repro/internal/mpisim"
	"repro/internal/pfs"
	"repro/internal/simkernel"
)

// Config tunes the MPI-IO baseline.
type Config struct {
	// OSTs are the storage targets available; each shared file uses at most
	// the file system's MaxStripeCount of them (160 on the paper's Lustre
	// 1.6). Empty means targets 0..N-1.
	OSTs []int

	// NoFlush drops the explicit pre-close flush from the timed region
	// (the paper's methodology includes it; tests may disable it).
	NoFlush bool

	// SplitFiles splits the output into this many shared files, each on
	// its own slice of storage targets — the Section II-3 alternative
	// ("splitting output into 5 parts would enable an application to take
	// full advantage of the entire file system's resources"). Zero or one
	// means a single shared file.
	SplitFiles int
}

// Method is the MPI-IO transport bound to a world and file system.
type Method struct {
	w   *mpisim.World
	fs  *pfs.FileSystem
	cfg Config

	steps     map[string]*stepState
	stepCount int
}

type stepState struct {
	name    string
	seq     int
	res     *iomethod.StepResult
	files   []*pfs.File // per cohort
	offsets []int64     // per rank, within its cohort's file
	sizes   []int64     // per rank

	arrivedWG *simkernel.WaitGroup   // all ranks registered their sizes
	createdWG *simkernel.WaitGroup   // every cohort leader created its file
	writersWG []*simkernel.WaitGroup // per cohort: writers finished
	closedWG  []*simkernel.WaitGroup // per cohort: footer written, closed
	t0        simkernel.Time
	t0Set     bool
	returned  int
	dataOf    []iomethod.RankData // per rank; leaders rebuild index records from these
	machines  []stepCont          // per rank, one backing array for the whole step
	locals    []bp.LocalIndex
	indexed   int
	createErr error
}

// New builds the MPI-IO method.
func New(w *mpisim.World, fs *pfs.FileSystem, cfg Config) (*Method, error) {
	if len(cfg.OSTs) == 0 {
		cfg.OSTs = make([]int, len(fs.OSTs))
		for i := range cfg.OSTs {
			cfg.OSTs[i] = i
		}
	}
	for _, o := range cfg.OSTs {
		if o < 0 || o >= len(fs.OSTs) {
			return nil, fmt.Errorf("mpiio: OST %d out of range", o)
		}
	}
	if cfg.SplitFiles < 0 {
		return nil, fmt.Errorf("mpiio: negative SplitFiles")
	}
	if cfg.SplitFiles == 0 {
		cfg.SplitFiles = 1
	}
	if cfg.SplitFiles > w.Size() {
		cfg.SplitFiles = w.Size()
	}
	return &Method{w: w, fs: fs, cfg: cfg, steps: make(map[string]*stepState)}, nil
}

// Name implements iomethod.Method.
func (m *Method) Name() string { return "MPI" }

// cohortOf maps a rank to its file cohort (contiguous blocks).
func (m *Method) cohortOf(rank int) int {
	per := (m.w.Size() + m.cfg.SplitFiles - 1) / m.cfg.SplitFiles
	return rank / per
}

// cohortRanks returns the ranks of cohort i.
func (m *Method) cohortRanks(i int) (lo, hi int) {
	per := (m.w.Size() + m.cfg.SplitFiles - 1) / m.cfg.SplitFiles
	lo = i * per
	hi = lo + per
	if hi > m.w.Size() {
		hi = m.w.Size()
	}
	return lo, hi
}

// cohortOSTs returns cohort i's storage-target slice, capped at the
// single-file stripe limit.
func (m *Method) cohortOSTs(i int) []int {
	k := m.cfg.SplitFiles
	per := len(m.cfg.OSTs) / k
	if per < 1 {
		per = 1
	}
	lo := (i * per) % len(m.cfg.OSTs)
	out := make([]int, 0, per)
	for j := 0; j < per; j++ {
		out = append(out, m.cfg.OSTs[(lo+j)%len(m.cfg.OSTs)])
	}
	if max := m.fs.Cfg.MaxStripeCount; len(out) > max {
		out = out[:max]
	}
	return out
}

// StripeTargets reports the targets the first shared file will use.
func (m *Method) StripeTargets() []int { return m.cohortOSTs(0) }

// Files reports how many shared files a step will produce.
func (m *Method) Files() int { return m.cfg.SplitFiles }

func (m *Method) getStep(stepName string) *stepState {
	st, ok := m.steps[stepName]
	if !ok {
		W := m.w.Size()
		k := m.w.Kernel()
		nFiles := m.cfg.SplitFiles
		st = &stepState{
			name:      stepName,
			seq:       m.stepCount,
			files:     make([]*pfs.File, nFiles),
			offsets:   make([]int64, W),
			sizes:     make([]int64, W),
			dataOf:    make([]iomethod.RankData, W),
			machines:  make([]stepCont, W),
			locals:    make([]bp.LocalIndex, nFiles),
			arrivedWG: simkernel.NewWaitGroup(k),
			createdWG: simkernel.NewWaitGroup(k),
			res: &iomethod.StepResult{
				WriterTimes: make([]float64, W),
				Files:       nFiles,
			},
		}
		m.stepCount++
		st.arrivedWG.Add(W)
		st.createdWG.Add(nFiles)
		for i := 0; i < nFiles; i++ {
			lo, hi := m.cohortRanks(i)
			wg := simkernel.NewWaitGroup(k)
			wg.Add(hi - lo)
			st.writersWG = append(st.writersWG, wg)
			cg := simkernel.NewWaitGroup(k)
			cg.Add(1)
			st.closedWG = append(st.closedWG, cg)
		}
		m.steps[stepName] = st
	}
	return st
}

// fileName names cohort i's shared file.
func fileName(stepName string, cohort, total int) string {
	if total == 1 {
		return stepName + ".bp"
	}
	return fmt.Sprintf("%s.part%02d.bp", stepName, cohort)
}

// WriteStep implements iomethod.Method: buffer (instantaneous in the model —
// ADIOS buffers during the compute phase), compute collective offsets, and
// write one contiguous block per rank into the cohort's shared file,
// stripe-aligned so each rank's block maps to exactly one storage target.
// The close is collective per cohort, matching MPI_File_close semantics and
// the paper's "write, flush, and file close" timed region.
func (m *Method) WriteStep(r *mpisim.Rank, stepName string, data iomethod.RankData) (*iomethod.StepResult, error) {
	st := m.getStep(stepName)
	rank := r.Rank()
	p := r.Proc()
	cohort := m.cohortOf(rank)
	lo, hi := m.cohortRanks(cohort)
	leader := rank == lo

	st.sizes[rank] = data.TotalBytes()
	st.arrivedWG.Done()

	// --- Untimed setup: each cohort leader creates its shared file once
	// every rank has registered its size; offsets are stripe-aligned. ---
	if leader {
		st.arrivedWG.Wait(p)
		var stripe int64 = 1
		for i := lo; i < hi; i++ {
			if st.sizes[i] > stripe {
				stripe = st.sizes[i]
			}
		}
		var off int64
		for i := lo; i < hi; i++ {
			st.offsets[i] = off
			off += stripe
		}
		f, err := m.fs.Create(p, fileName(stepName, cohort, m.cfg.SplitFiles),
			pfs.Layout{OSTs: m.cohortOSTs(cohort), StripeSize: stripe})
		if err != nil && st.createErr == nil {
			st.createErr = err
		}
		st.files[cohort] = f
		st.createdWG.Done()
	}
	st.createdWG.Wait(p)
	if st.createErr != nil {
		st.writersWG[cohort].Done()
		return nil, fmt.Errorf("mpiio: shared-file create failed: %v", st.createErr)
	}
	if !st.t0Set {
		st.t0 = p.Now()
		st.t0Set = true
		st.res.MDSOpenQueuePeak = m.fs.MDS.Stats.MaxQueue
	}

	// --- Timed phase: write the buffered block, flush. ---
	f := st.files[cohort]
	st.dataOf[rank] = data
	total := data.TotalBytes()
	werr := f.WriteAt(p, st.offsets[rank], total)
	if werr == nil {
		if !m.cfg.NoFlush {
			f.Flush(p)
		}
		st.res.TotalBytes += float64(total)
	} else {
		// The collective has no recovery path: the rank's block is lost, but
		// the cohort bookkeeping must still complete or every sibling
		// deadlocks in the collective close.
		st.res.WriteFailures++
		st.dataOf[rank] = iomethod.RankData{}
	}
	st.res.WriterTimes[rank] = (p.Now() - st.t0).Seconds()
	st.writersWG[cohort].Done()

	// Each cohort leader appends its file's footer index and closes;
	// everyone joins their cohort's collective close.
	if leader {
		st.writersWG[cohort].Wait(p)
		li := bp.LocalIndex{File: fileName(stepName, cohort, m.cfg.SplitFiles)}
		n, nd := 0, 0
		for i := lo; i < hi; i++ {
			n += len(st.dataOf[i].Vars)
			for _, v := range st.dataOf[i].Vars {
				nd += len(v.Dims)
			}
		}
		li.Entries = make([]bp.VarEntry, 0, n)
		dims := make([]uint64, 0, nd)
		for i := lo; i < hi; i++ {
			li.Entries, dims = iomethod.AppendEntries(li.Entries, dims, i, st.offsets[i], st.dataOf[i])
		}
		li.Sort()
		encLen, err := li.EncodedLen()
		if err != nil {
			return nil, err
		}
		if _, aerr := f.Append(p, int64(encLen)); aerr != nil {
			// Footer lost; still close so the cohort's collective completes.
			if werr == nil {
				werr = aerr
			}
		} else {
			st.res.IndexBytes += float64(encLen)
			if !m.cfg.NoFlush {
				f.Flush(p)
			}
		}
		f.Close(p)
		st.locals[cohort] = li
		st.indexed++
		if st.indexed == m.cfg.SplitFiles {
			g := &bp.GlobalIndex{Step: int64(st.seq), Locals: append([]bp.LocalIndex(nil), st.locals...)}
			g.Sort()
			st.res.Global = g
		}
		st.closedWG[cohort].Done()
	}
	st.closedWG[cohort].Wait(p)

	if el := (p.Now() - st.t0).Seconds(); el > st.res.Elapsed {
		st.res.Elapsed = el
	}
	st.returned++
	if st.returned == m.w.Size() {
		delete(m.steps, stepName)
	}
	return st.res, werr
}
