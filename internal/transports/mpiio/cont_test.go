package mpiio

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/iomethod"
	"repro/internal/machines"
	"repro/internal/mpisim"
	"repro/internal/pfs"
	"repro/internal/simkernel"
)

// The engine-equivalence pin at the mpiio level: the same collective step,
// once on goroutine ranks calling WriteStep and once on continuation ranks
// driving BeginStepCont, against identically seeded worlds, must end at the
// same virtual time with the same step result and server statistics.

// stepRunner drives one BeginStepCont machine as a rank continuation.
type stepRunner struct {
	pc   int
	m    iomethod.ContMethod
	data iomethod.RankData
	sc   iomethod.StepCont
	out  func(*iomethod.StepResult, error)
}

func (s *stepRunner) StepRank(r *mpisim.Rank, c *simkernel.ContProc) bool {
	for {
		switch s.pc {
		case 0:
			s.sc = s.m.BeginStepCont(r, "out", s.data)
			s.pc = 1
		default:
			if !s.sc.Step(c) {
				return false
			}
			s.out(s.sc.Result())
			return true
		}
	}
}

type stepOutcome struct {
	res      iomethod.StepResult
	end      simkernel.Time
	ingested float64
	drained  float64
	mdsOps   int
}

func runStep(t *testing.T, writers, numOSTs int, cfg Config, cont bool) stepOutcome {
	t.Helper()
	k := simkernel.New()
	fsCfg := machines.Jaguar(5).FS
	fsCfg.NumOSTs = numOSTs
	fs := pfs.MustNew(k, fsCfg)
	w := mpisim.NewWorld(k, writers, mpisim.Options{})
	m, err := New(w, fs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var res *iomethod.StepResult
	data := func(rank int) iomethod.RankData {
		return iomethod.RankData{Vars: []iomethod.VarSpec{
			{Name: "u", Bytes: int64(pfs.MB) * int64(1+rank%3), Min: 0, Max: 1},
		}}
	}
	if cont {
		w.LaunchCont("app", func(i int) mpisim.RankCont {
			return &stepRunner{m: m, data: data(i), out: func(rr *iomethod.StepResult, err error) {
				if err != nil {
					t.Error(err)
					return
				}
				res = rr
			}}
		})
	} else {
		w.Launch("app", func(r *mpisim.Rank) {
			rr, err := m.WriteStep(r, "out", data(r.Rank()))
			if err != nil {
				t.Error(err)
				return
			}
			res = rr
		})
	}
	k.Run()
	if res == nil {
		t.Fatal("step did not complete")
	}
	out := stepOutcome{
		res:      *res,
		end:      k.Now(),
		ingested: fs.TotalBytesIngested(),
		drained:  fs.TotalBytesDrained(),
		mdsOps:   fs.MDS.Stats.OpsServed,
	}
	k.Shutdown()
	return out
}

func TestContStepMatchesWriteStep(t *testing.T) {
	cases := []Config{
		{},
		{NoFlush: true},
		{SplitFiles: 3},
		{SplitFiles: 4, NoFlush: true},
	}
	for ci, cfg := range cases {
		t.Run(fmt.Sprintf("case%d", ci), func(t *testing.T) {
			g := runStep(t, 13, 6, cfg, false)
			c := runStep(t, 13, 6, cfg, true)
			if !reflect.DeepEqual(g, c) {
				t.Fatalf("engines diverge:\ngoroutine: %+v\ncont:      %+v", g, c)
			}
		})
	}
}
