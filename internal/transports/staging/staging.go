// Package staging implements a data-staging transport, the alternative
// Section II-3 of the paper analyzes: output moves from the many compute
// ranks to a small set of staging nodes first, and the staging nodes drain
// it to the parallel file system asynchronously.
//
// The paper's two observations about staging are both reproduced by this
// model and checked in its tests:
//
//  1. "the total buffer space available in the staging area is limited,
//     thereby limiting the achievable degree of asynchronicity" — a rank's
//     WriteStep returns as soon as its data is accepted by a staging node,
//     but acceptance blocks while the node's buffer is full, so an output
//     larger than the staging area degenerates toward synchronous speed.
//  2. staging "can help with interference issues, but does not directly
//     address them" — the drain sees exactly the same interfering file
//     system.
//
// As the paper notes its ongoing work integrated adaptive ideas into the
// staging software, the drainer offers a least-loaded target policy
// (DrainLeastLoaded) next to plain round-robin.
package staging

import (
	"fmt"

	"repro/internal/bp"
	"repro/internal/iomethod"
	"repro/internal/mpisim"
	"repro/internal/pfs"
	"repro/internal/simkernel"
)

// DrainPolicy selects how staging nodes place drained blocks on storage.
type DrainPolicy int

const (
	// DrainRoundRobin writes each staging node's file on a fixed target.
	DrainRoundRobin DrainPolicy = iota
	// DrainLeastLoaded picks, per block, the target with the least queued
	// work — the adaptive-flavoured variant.
	DrainLeastLoaded
)

// Config tunes the staging transport.
type Config struct {
	// Nodes is the number of staging nodes (compute ranks map to nodes
	// round-robin).
	Nodes int
	// BufferBytes is each node's staging buffer capacity.
	BufferBytes float64
	// NodeIngestBW is a node's network acceptance rate in bytes/sec
	// (transfers from ranks are served FIFO at this rate).
	NodeIngestBW float64
	// OSTs are the storage targets the drainers may use; empty = all.
	OSTs []int
	// Policy selects the drain placement policy.
	Policy DrainPolicy
}

// Method is the staging transport bound to a world and file system.
type Method struct {
	w   *mpisim.World
	fs  *pfs.FileSystem
	cfg Config

	steps     map[string]*stepState
	stepCount int
}

// New builds the staging method.
func New(w *mpisim.World, fs *pfs.FileSystem, cfg Config) (*Method, error) {
	if cfg.Nodes <= 0 {
		cfg.Nodes = 8
	}
	if cfg.BufferBytes <= 0 {
		cfg.BufferBytes = 4 * pfs.GB
	}
	if cfg.NodeIngestBW <= 0 {
		cfg.NodeIngestBW = 1.5 * pfs.GB
	}
	if len(cfg.OSTs) == 0 {
		cfg.OSTs = make([]int, len(fs.OSTs))
		for i := range cfg.OSTs {
			cfg.OSTs[i] = i
		}
	}
	for _, o := range cfg.OSTs {
		if o < 0 || o >= len(fs.OSTs) {
			return nil, fmt.Errorf("staging: OST %d out of range", o)
		}
	}
	return &Method{w: w, fs: fs, cfg: cfg, steps: make(map[string]*stepState)}, nil
}

// Name implements iomethod.Method.
func (m *Method) Name() string { return "STAGING" }

// block is one rank's output staged on a node.
type block struct {
	rank    int
	bytes   int64
	entries []bp.VarEntry // offsets filled at drain time
	data    iomethod.RankData
}

// node is one staging node's state.
type node struct {
	id      int
	ingest  *simkernel.Resource // serialises transfers (NIC)
	sem     *byteSem            // buffer space
	queue   []*block
	hasWork *simkernel.Signal
	kick    func() // wakes the drainer
}

type stepState struct {
	seq     int
	res     *iomethod.StepResult
	nodes   []*node
	files   []*pfs.File
	names   []string
	setupWG *simkernel.WaitGroup
	t0      simkernel.Time
	t0Set   bool

	offsets  []int64              // next write offset per drain file (reserved at dispatch)
	inflight []int                // drains dispatched but not yet finished, per file
	blocksWG *simkernel.WaitGroup // all data blocks on storage
	drainWG  *simkernel.WaitGroup // blocks + index writes
	locals   []bp.LocalIndex
	returned int
}

func (m *Method) step(stepName string) *stepState {
	st, ok := m.steps[stepName]
	if !ok {
		k := m.w.Kernel()
		st = &stepState{
			seq:      m.stepCount,
			setupWG:  simkernel.NewWaitGroup(k),
			blocksWG: simkernel.NewWaitGroup(k),
			drainWG:  simkernel.NewWaitGroup(k),
			res: &iomethod.StepResult{
				WriterTimes: make([]float64, m.w.Size()),
				Files:       m.cfg.Nodes,
			},
			nodes:    make([]*node, m.cfg.Nodes),
			files:    make([]*pfs.File, m.cfg.Nodes),
			names:    make([]string, m.cfg.Nodes),
			locals:   make([]bp.LocalIndex, m.cfg.Nodes),
			offsets:  make([]int64, m.cfg.Nodes),
			inflight: make([]int, m.cfg.Nodes),
		}
		m.stepCount++
		st.setupWG.Add(m.w.Size())
		st.blocksWG.Add(m.w.Size())
		st.drainWG.Add(m.w.Size() + m.cfg.Nodes) // blocks + index writes
		for i := 0; i < m.cfg.Nodes; i++ {
			st.nodes[i] = &node{
				id:     i,
				ingest: simkernel.NewResource(k, 1),
				sem:    newByteSem(k, m.cfg.BufferBytes),
			}
			st.names[i] = fmt.Sprintf("%s.stage%03d.bp", stepName, i)
		}
		m.steps[stepName] = st
	}
	return st
}

// WriteStep implements iomethod.Method: transfer this rank's buffered data
// to its staging node (blocking while the node's buffer is full — the
// limited asynchronicity), then return. Drainers move the data to storage
// in the background; StepResult.DrainElapsed records when the last byte
// (and index) reached the file system.
func (m *Method) WriteStep(r *mpisim.Rank, stepName string, data iomethod.RankData) (*iomethod.StepResult, error) {
	st := m.step(stepName)
	rank := r.Rank()
	p := r.Proc()
	nd := st.nodes[rank%len(st.nodes)]

	// Untimed setup: rank 0 creates the per-node drain files and launches
	// the drainers.
	var setupErr error
	if rank == 0 {
		for i, nd := range st.nodes {
			target := m.cfg.OSTs[i%len(m.cfg.OSTs)]
			f, err := m.fs.Create(p, st.names[i], pfs.Layout{OSTs: []int{target}})
			if err != nil {
				setupErr = err
				break
			}
			st.files[i] = f
			m.spawnDrainer(st, nd, stepName)
		}
	}
	st.setupWG.Done()
	st.setupWG.Wait(p)
	if setupErr != nil {
		return nil, setupErr
	}
	if !st.t0Set {
		st.t0 = p.Now()
		st.t0Set = true
	}

	// Timed (application-blocking) phase: reserve buffer space, then
	// transfer over the node's NIC, FIFO.
	total := data.TotalBytes()
	if float64(total) > m.cfg.BufferBytes {
		return nil, fmt.Errorf("staging: rank %d block (%d bytes) exceeds node buffer (%.0f)",
			rank, total, m.cfg.BufferBytes)
	}
	nd.sem.Acquire(p, float64(total))
	nd.ingest.Acquire(p)
	p.SleepSeconds(float64(total) / m.cfg.NodeIngestBW)
	nd.ingest.Release()

	blk := &block{rank: rank, bytes: total, data: data}
	nd.queue = append(nd.queue, blk)
	if nd.kick != nil {
		nd.kick()
	}

	st.res.WriterTimes[rank] = (p.Now() - st.t0).Seconds()
	st.res.TotalBytes += float64(total)
	if el := (p.Now() - st.t0).Seconds(); el > st.res.Elapsed {
		st.res.Elapsed = el
	}

	st.returned++
	if st.returned == m.w.Size() {
		delete(m.steps, stepName)
	}
	return st.res, nil
}

// spawnDrainer launches node nd's background drain process.
func (m *Method) spawnDrainer(st *stepState, nd *node, stepName string) {
	k := m.w.Kernel()
	k.Spawn(fmt.Sprintf("drainer-%s-%d", stepName, nd.id), func(p *simkernel.Proc) {
		drained := 0
		myShare := 0
		for r := nd.id; r < m.w.Size(); r += len(st.nodes) {
			myShare++
		}
		for drained < myShare {
			if len(nd.queue) == 0 {
				nd.kick = p.Waker()
				p.Suspend()
				nd.kick = nil
				continue
			}
			blk := nd.queue[0]
			nd.queue = nd.queue[1:]

			fileIdx := nd.id
			if m.cfg.Policy == DrainLeastLoaded {
				fileIdx = m.leastLoadedFile(st)
			}
			f := st.files[fileIdx]
			// Reserve the offset range before the (time-consuming) write so
			// concurrent drainers targeting the same file cannot overlap.
			entries, total := iomethod.BuildEntries(blk.rank, st.offsets[fileIdx], blk.data)
			off := st.offsets[fileIdx]
			st.offsets[fileIdx] += total
			st.inflight[fileIdx]++
			werr := f.WriteAt(p, off, total)
			st.inflight[fileIdx]--
			nd.sem.Release(float64(blk.bytes))
			if werr == nil {
				st.locals[fileIdx].Entries = append(st.locals[fileIdx].Entries, entries...)
			} else {
				// The block's target died past its timeout: the data is lost
				// (it never reached storage and the rank has long returned),
				// but the drain bookkeeping completes so the step drains dry.
				st.res.WriteFailures++
			}
			drained++
			st.blocksWG.Done()
			st.drainWG.Done()
		}
		// Wait for every block (other drainers may still be appending to
		// this node's file under the least-loaded policy), then write this
		// node's local index and close its file.
		st.blocksWG.Wait(p)
		li := &st.locals[nd.id]
		li.File = st.names[nd.id]
		li.Sort()
		encLen, err := li.EncodedLen()
		if err != nil {
			panic(err)
		}
		f := st.files[nd.id]
		if _, aerr := f.Append(p, int64(encLen)); aerr != nil {
			// Index lost with its target; still close so the step completes.
			st.res.WriteFailures++
		} else {
			st.res.IndexBytes += float64(encLen)
			f.Flush(p)
		}
		f.Close(p)
		st.drainWG.Done()
		if st.drainWG.Count() == 0 {
			g := &bp.GlobalIndex{Step: int64(st.seq), Locals: append([]bp.LocalIndex(nil), st.locals...)}
			g.Sort()
			st.res.Global = g
			st.res.DrainElapsed = (p.Now() - st.t0).Seconds()
		}
	})
}

// leastLoadedFile picks the drain file whose target currently has the least
// outstanding work (dirty cache bytes plus active flows, weighted).
func (m *Method) leastLoadedFile(st *stepState) int {
	best, bestLoad := 0, -1.0
	for i, f := range st.files {
		target := f.StripeOSTs()[0]
		o := m.fs.OST(target)
		// Outstanding work — dirty bytes, active flows, and drains already
		// dispatched to this file but not yet visible as flows (the write
		// latency window would otherwise herd every drainer onto the same
		// "idle" target) — plus one nominal block so an idle slow target
		// still scores worse than an idle fast one, divided by the
		// target's current service factor.
		load := o.CacheLevel() + float64(o.ActiveFlows()+st.inflight[i]+1)*32*pfs.MB
		load /= o.SlowFactor()
		if bestLoad < 0 || load < bestLoad {
			best, bestLoad = i, load
		}
	}
	return best
}

// byteSem is a FIFO byte-counting semaphore: Acquire blocks until the
// requested bytes are free.
type byteSem struct {
	k       *simkernel.Kernel
	free    float64
	waiters []semWaiter
}

type semWaiter struct {
	need float64
	wake func()
}

func newByteSem(k *simkernel.Kernel, capacity float64) *byteSem {
	return &byteSem{k: k, free: capacity}
}

// Acquire blocks p until n bytes are available, FIFO (head-of-line: later
// smaller requests do not jump the queue, preserving fairness).
func (s *byteSem) Acquire(p *simkernel.Proc, n float64) {
	for len(s.waiters) > 0 || s.free < n {
		s.waiters = append(s.waiters, semWaiter{need: n, wake: p.Waker()})
		p.Suspend()
		// On wake, our reservation was granted by Release.
		return
	}
	s.free -= n
}

// Release returns n bytes and admits queued waiters in order while they
// fit.
func (s *byteSem) Release(n float64) {
	s.free += n
	for len(s.waiters) > 0 && s.waiters[0].need <= s.free {
		w := s.waiters[0]
		s.waiters = s.waiters[1:]
		s.free -= w.need
		w.wake()
	}
}

// Free reports the available bytes (diagnostics).
func (s *byteSem) Free() float64 { return s.free }
