package staging

import (
	"math"
	"testing"

	"repro/internal/iomethod"
	"repro/internal/machines"
	"repro/internal/mpisim"
	"repro/internal/pfs"
	"repro/internal/simkernel"
)

// run executes one staged output step and returns the result (after the
// drain completes) plus the file system for inspection.
func run(t *testing.T, writers int, bytesPerRank int64, cfg Config,
	tweak func(*pfs.FileSystem)) (*iomethod.StepResult, *pfs.FileSystem) {
	t.Helper()
	k := simkernel.New()
	fsCfg := machines.Jaguar(9).FS
	fsCfg.NumOSTs = 16
	fs := pfs.MustNew(k, fsCfg)
	if tweak != nil {
		tweak(fs)
	}
	w := mpisim.NewWorld(k, writers, mpisim.Options{})
	m, err := New(w, fs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var res *iomethod.StepResult
	wg := w.Launch("app", func(r *mpisim.Rank) {
		data := iomethod.RankData{Vars: []iomethod.VarSpec{
			{Name: "f", Bytes: bytesPerRank, Min: 0, Max: 1},
		}}
		rr, err := m.WriteStep(r, "stg", data)
		if err != nil {
			t.Error(err)
			return
		}
		res = rr
	})
	k.Run() // drains complete when the queue empties
	if wg.Count() != 0 {
		t.Fatal("ranks did not finish")
	}
	k.Shutdown()
	return res, fs
}

func TestStagingConservation(t *testing.T) {
	const W = 16
	const size = 8 * int64(pfs.MB)
	res, fs := run(t, W, size, Config{Nodes: 4}, nil)
	if math.Abs(res.TotalBytes-float64(W*size)) > 1 {
		t.Fatalf("total bytes %v", res.TotalBytes)
	}
	if res.Global == nil || res.Global.NumEntries() != W {
		t.Fatalf("index incomplete: %+v", res.Global)
	}
	if res.Files != 4 {
		t.Fatalf("files = %d", res.Files)
	}
	ing := fs.TotalBytesIngested()
	if math.Abs(ing-(res.TotalBytes+res.IndexBytes)) > 16 {
		t.Fatalf("FS ingested %v, want %v", ing, res.TotalBytes+res.IndexBytes)
	}
}

func TestAsynchronyHidesStorageTime(t *testing.T) {
	// With generous buffers, the application-blocking time is network
	// transfer only; the drain finishes much later.
	res, _ := run(t, 16, 32*int64(pfs.MB), Config{
		Nodes: 4, BufferBytes: 1 * pfs.GB, NodeIngestBW: 2 * pfs.GB,
	}, nil)
	if res.DrainElapsed <= res.Elapsed*1.5 {
		t.Fatalf("drain (%.3fs) should greatly outlast the blocking span (%.3fs)",
			res.DrainElapsed, res.Elapsed)
	}
}

func TestLimitedBufferDegeneratesTowardSynchronous(t *testing.T) {
	// The paper's point: buffer space bounds the achievable asynchronicity.
	// With a buffer that fits only one block per node, later ranks block on
	// earlier drains.
	big, _ := run(t, 16, 32*int64(pfs.MB), Config{
		Nodes: 2, BufferBytes: 1 * pfs.GB, NodeIngestBW: 2 * pfs.GB,
	}, nil)
	small, _ := run(t, 16, 32*int64(pfs.MB), Config{
		Nodes: 2, BufferBytes: 33 * pfs.MB, NodeIngestBW: 2 * pfs.GB,
	}, nil)
	if small.Elapsed <= big.Elapsed*2 {
		t.Fatalf("tight buffers should push blocking time toward drain time: %.3fs vs %.3fs",
			small.Elapsed, big.Elapsed)
	}
}

func TestStagingDoesNotEscapeInterference(t *testing.T) {
	// The drain still crosses the interfered file system: with loaded
	// targets and tight buffers, staging slows down too.
	cfg := Config{Nodes: 2, BufferBytes: 40 * pfs.MB, NodeIngestBW: 2 * pfs.GB,
		OSTs: []int{0, 1}}
	clean, _ := run(t, 16, 32*int64(pfs.MB), cfg, nil)
	loaded, _ := run(t, 16, 32*int64(pfs.MB), cfg, func(fs *pfs.FileSystem) {
		// Competing jobs on the drain targets: slow disks and occupied
		// caches, the combination a busy production system presents.
		for _, i := range []int{0, 1} {
			fs.OST(i).SetSlowFactor(0.15)
			fs.OST(i).SetExternalStreams(3)
		}
	})
	if loaded.Elapsed <= clean.Elapsed*1.3 {
		t.Fatalf("interference should reach through staging: %.3fs vs %.3fs",
			loaded.Elapsed, clean.Elapsed)
	}
}

func TestLeastLoadedDrainAvoidsSlowTarget(t *testing.T) {
	base := Config{Nodes: 4, BufferBytes: 64 * pfs.MB, NodeIngestBW: 2 * pfs.GB,
		OSTs: []int{0, 1, 2, 3}}
	slow := func(fs *pfs.FileSystem) { fs.OST(0).SetSlowFactor(0.1) }

	rr := base
	rr.Policy = DrainRoundRobin
	roundRobin, _ := run(t, 16, 32*int64(pfs.MB), rr, slow)

	ll := base
	ll.Policy = DrainLeastLoaded
	leastLoaded, _ := run(t, 16, 32*int64(pfs.MB), ll, slow)

	if leastLoaded.DrainElapsed >= roundRobin.DrainElapsed {
		t.Fatalf("least-loaded drain (%.3fs) should beat round-robin (%.3fs) with a slow target",
			leastLoaded.DrainElapsed, roundRobin.DrainElapsed)
	}
	// Conservation must hold regardless of placement.
	if leastLoaded.Global.NumEntries() != 16 {
		t.Fatal("least-loaded drain lost index entries")
	}
}

func TestOversizedBlockRejected(t *testing.T) {
	k := simkernel.New()
	fs := pfs.MustNew(k, pfs.Config{NumOSTs: 4})
	w := mpisim.NewWorld(k, 1, mpisim.Options{})
	m, err := New(w, fs, Config{Nodes: 1, BufferBytes: 1024})
	if err != nil {
		t.Fatal(err)
	}
	var stepErr error
	w.Launch("app", func(r *mpisim.Rank) {
		_, stepErr = m.WriteStep(r, "s", iomethod.RankData{
			Vars: []iomethod.VarSpec{{Name: "v", Bytes: 4096}},
		})
	})
	k.Run()
	k.Shutdown()
	if stepErr == nil {
		t.Fatal("oversized block accepted")
	}
}

func TestByteSemFIFO(t *testing.T) {
	k := simkernel.New()
	sem := newByteSem(k, 100)
	var order []int
	acquire := func(id int, n float64, hold float64) {
		k.Spawn("a", func(p *simkernel.Proc) {
			sem.Acquire(p, n)
			order = append(order, id)
			p.SleepSeconds(hold)
			sem.Release(n)
		})
	}
	acquire(1, 80, 1)
	acquire(2, 80, 1) // must wait for 1
	acquire(3, 10, 1) // fits now, but FIFO: queued behind 2
	k.Run()
	k.Shutdown()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v, want FIFO [1 2 3]", order)
	}
	if sem.Free() != 100 {
		t.Fatalf("leaked bytes: free = %v", sem.Free())
	}
}

func TestStagingDeterministic(t *testing.T) {
	a, _ := run(t, 12, 16*int64(pfs.MB), Config{Nodes: 3}, nil)
	b, _ := run(t, 12, 16*int64(pfs.MB), Config{Nodes: 3}, nil)
	if a.Elapsed != b.Elapsed || a.DrainElapsed != b.DrainElapsed {
		t.Fatalf("nondeterministic staging: %v/%v vs %v/%v",
			a.Elapsed, a.DrainElapsed, b.Elapsed, b.DrainElapsed)
	}
}
