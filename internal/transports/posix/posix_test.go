package posix

import (
	"math"
	"testing"

	"repro/internal/iomethod"
	"repro/internal/machines"
	"repro/internal/mpisim"
	"repro/internal/pfs"
	"repro/internal/simkernel"
)

func run(t *testing.T, writers, numOSTs int, bytesPerRank int64) (*iomethod.StepResult, *pfs.FileSystem) {
	t.Helper()
	k := simkernel.New()
	fsCfg := machines.Jaguar(6).FS
	fsCfg.NumOSTs = numOSTs
	fs := pfs.MustNew(k, fsCfg)
	w := mpisim.NewWorld(k, writers, mpisim.Options{})
	m, err := New(w, fs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	var res *iomethod.StepResult
	wg := w.Launch("app", func(r *mpisim.Rank) {
		data := iomethod.RankData{Vars: []iomethod.VarSpec{
			{Name: "q", Bytes: bytesPerRank, Min: -2, Max: 2},
		}}
		rr, err := m.WriteStep(r, "px", data)
		if err != nil {
			t.Error(err)
			return
		}
		res = rr
	})
	k.Run()
	if wg.Count() != 0 {
		t.Fatalf("%d ranks never finished", wg.Count())
	}
	k.Shutdown()
	return res, fs
}

func TestFilePerProcess(t *testing.T) {
	const W = 10
	res, fs := run(t, W, 4, 2*int64(pfs.MB))
	if res.Files != W {
		t.Fatalf("files = %d, want %d", res.Files, W)
	}
	for r := 0; r < W; r++ {
		if !fs.Exists("px.r" + pad(r) + ".bp") {
			t.Fatalf("missing file for rank %d", r)
		}
	}
	if math.Abs(res.TotalBytes-float64(W*2*int64(pfs.MB))) > 1 {
		t.Fatalf("total bytes %v", res.TotalBytes)
	}
	if res.Global == nil || res.Global.NumEntries() != W {
		t.Fatal("global index incomplete")
	}
	if len(res.Global.Locals) != W {
		t.Fatalf("locals = %d", len(res.Global.Locals))
	}
}

func pad(r int) string {
	s := "000000"
	d := []byte(s)
	for i := len(d) - 1; i >= 0 && r > 0; i-- {
		d[i] = byte('0' + r%10)
		r /= 10
	}
	return string(d)
}

func TestRoundRobinPlacement(t *testing.T) {
	const W = 8
	_, fs := run(t, W, 4, int64(pfs.MB))
	for i := 0; i < 4; i++ {
		// 2 data writes + 2 index appends per OST.
		if got := fs.OST(i).Stats.WritesStarted; got != 4 {
			t.Fatalf("OST %d ops = %d, want 4", i, got)
		}
	}
}

func TestValidation(t *testing.T) {
	k := simkernel.New()
	fs := pfs.MustNew(k, pfs.Config{NumOSTs: 2})
	w := mpisim.NewWorld(k, 2, mpisim.Options{})
	if _, err := New(w, fs, Config{OSTs: []int{5}}); err == nil {
		t.Fatal("bad OST accepted")
	}
	k.Shutdown()
}

func TestDeterministic(t *testing.T) {
	a, _ := run(t, 8, 4, 4*int64(pfs.MB))
	b, _ := run(t, 8, 4, 4*int64(pfs.MB))
	if a.Elapsed != b.Elapsed {
		t.Fatalf("nondeterministic: %v vs %v", a.Elapsed, b.Elapsed)
	}
}
