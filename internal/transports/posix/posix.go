// Package posix implements the simplest ADIOS transport: one file per
// process, POSIX-style, each file striped to a single storage target chosen
// round-robin. It is the organisation IOR uses in the paper's Section II
// measurements and serves as a second baseline: free of shared-file limits
// but entirely unmanaged — every rank writes immediately, so a popular
// target serves all its writers at once and slow targets stall their ranks.
package posix

import (
	"fmt"

	"repro/internal/bp"
	"repro/internal/iomethod"
	"repro/internal/mpisim"
	"repro/internal/pfs"
	"repro/internal/simkernel"
)

// Config tunes the POSIX transport.
type Config struct {
	// OSTs are the storage targets to spread files across; empty means all.
	OSTs []int
	// NoFlush drops the explicit pre-close flush from the timed region.
	NoFlush bool
}

// Method is the POSIX transport bound to a world and file system.
type Method struct {
	w   *mpisim.World
	fs  *pfs.FileSystem
	cfg Config

	steps     map[string]*stepState
	stepCount int
}

type stepState struct {
	seq      int
	res      *iomethod.StepResult
	setupWG  *simkernel.WaitGroup
	start    *simkernel.Signal
	t0       simkernel.Time
	t0Set    bool
	returned int
	locals   []bp.LocalIndex
}

// New builds the POSIX method.
func New(w *mpisim.World, fs *pfs.FileSystem, cfg Config) (*Method, error) {
	if len(cfg.OSTs) == 0 {
		cfg.OSTs = make([]int, len(fs.OSTs))
		for i := range cfg.OSTs {
			cfg.OSTs[i] = i
		}
	}
	for _, o := range cfg.OSTs {
		if o < 0 || o >= len(fs.OSTs) {
			return nil, fmt.Errorf("posix: OST %d out of range", o)
		}
	}
	return &Method{w: w, fs: fs, cfg: cfg, steps: make(map[string]*stepState)}, nil
}

// Name implements iomethod.Method.
func (m *Method) Name() string { return "POSIX" }

func (m *Method) step(stepName string) *stepState {
	st, ok := m.steps[stepName]
	if !ok {
		W := m.w.Size()
		k := m.w.Kernel()
		st = &stepState{
			seq:     m.stepCount,
			setupWG: simkernel.NewWaitGroup(k),
			start:   simkernel.NewSignal(k),
			res: &iomethod.StepResult{
				WriterTimes: make([]float64, W),
				Files:       W,
			},
			locals: make([]bp.LocalIndex, W),
		}
		m.stepCount++
		st.setupWG.Add(W)
		m.steps[stepName] = st
	}
	return st
}

// WriteStep implements iomethod.Method: create own file (untimed), barrier,
// write + local index + flush + close (timed).
func (m *Method) WriteStep(r *mpisim.Rank, stepName string, data iomethod.RankData) (*iomethod.StepResult, error) {
	st := m.step(stepName)
	rank := r.Rank()
	p := r.Proc()

	target := m.cfg.OSTs[rank%len(m.cfg.OSTs)]
	name := fmt.Sprintf("%s.r%06d.bp", stepName, rank)
	f, err := m.fs.Create(p, name, pfs.Layout{OSTs: []int{target}})
	if err != nil {
		return nil, err
	}
	st.setupWG.Done()
	st.setupWG.Wait(p)
	if !st.t0Set {
		st.t0 = p.Now()
		st.t0Set = true
	}

	entries, total := iomethod.BuildEntries(rank, 0, data)
	werr := f.WriteAt(p, 0, total)
	if werr == nil {
		li := bp.LocalIndex{File: name, Entries: entries}
		li.Sort()
		encLen, err := li.EncodedLen()
		if err != nil {
			return nil, err
		}
		if _, aerr := f.Append(p, int64(encLen)); aerr != nil {
			werr = aerr
		} else {
			st.res.IndexBytes += float64(encLen)
			st.res.TotalBytes += float64(total)
			st.locals[rank] = li
			if !m.cfg.NoFlush {
				f.Flush(p)
			}
		}
	}
	f.Close(p)

	st.res.WriterTimes[rank] = (p.Now() - st.t0).Seconds()
	if werr != nil {
		// POSIX has no recovery: the rank's output is lost. Complete the
		// collective bookkeeping so other ranks still finish the step.
		st.res.WriteFailures++
	}
	if el := (p.Now() - st.t0).Seconds(); el > st.res.Elapsed {
		st.res.Elapsed = el
	}

	st.returned++
	if st.returned == m.w.Size() {
		g := &bp.GlobalIndex{Step: int64(st.seq), Locals: st.locals}
		g.Sort()
		st.res.Global = g
		delete(m.steps, stepName)
	}
	return st.res, werr
}
