package trace

import (
	"strings"
	"testing"
	"time"

	"repro/internal/machines"
	"repro/internal/pfs"
	"repro/internal/simkernel"
)

func setup(t *testing.T) (*simkernel.Kernel, *pfs.FileSystem) {
	t.Helper()
	k := simkernel.New()
	cfg := machines.Jaguar(4).FS
	cfg.NumOSTs = 4
	return k, pfs.MustNew(k, cfg)
}

func TestTracerSamplesAtInterval(t *testing.T) {
	k, fs := setup(t)
	tr := Start(fs, 1.0)
	k.Spawn("w", func(p *simkernel.Proc) {
		fs.OST(0).Write(p, 200*pfs.MB)
	})
	k.RunUntil(simkernel.FromSeconds(10))
	tr.Stop()
	k.Shutdown()
	n := len(tr.Samples())
	if n < 9 || n > 12 {
		t.Fatalf("samples = %d, want ~10", n)
	}
	sawFlow := false
	for _, s := range tr.Samples() {
		if s.Flows[0] > 0 {
			sawFlow = true
		}
		if len(s.Flows) != 4 || len(s.Cache) != 4 || len(s.Slow) != 4 {
			t.Fatal("sample shape wrong")
		}
	}
	if !sawFlow {
		t.Fatal("active flow never sampled")
	}
}

func TestThroughputSeriesTracksDrain(t *testing.T) {
	k, fs := setup(t)
	tr := Start(fs, 0.5)
	k.Spawn("w", func(p *simkernel.Proc) {
		fs.OST(1).Write(p, 100*pfs.MB)
		fs.OST(1).Flush(p)
	})
	k.RunUntil(simkernel.FromSeconds(8))
	tr.Stop()
	k.Shutdown()
	tp := tr.Throughput()
	if len(tp) == 0 {
		t.Fatal("no throughput samples")
	}
	var total float64
	for i, v := range tp {
		dt := tr.Samples()[i+1].T - tr.Samples()[i].T
		total += v * dt
	}
	if total < 99*pfs.MB || total > 101*pfs.MB {
		t.Fatalf("integrated throughput %.1f MB, want ~100", total/pfs.MB)
	}
}

func TestRenderersProduceOutput(t *testing.T) {
	k, fs := setup(t)
	fs.OST(2).SetSlowFactor(0.3)
	fs.OST(3).SetExternalStreams(2)
	tr := Start(fs, 1.0)
	k.Spawn("w", func(p *simkernel.Proc) {
		for i := 0; i < 3; i++ {
			fs.OST(0).Write(p, 60*pfs.MB)
		}
	})
	k.RunUntil(simkernel.FromSeconds(6))
	tr.Stop()
	k.Shutdown()

	act := tr.RenderActivity(40)
	if !strings.Contains(act, "OST000") || !strings.Contains(act, "OST003") {
		t.Fatalf("activity rows missing:\n%s", act)
	}
	slow := tr.RenderSlowness(40)
	if strings.Count(slow, "\n") != 5 {
		t.Fatalf("slowness lines wrong:\n%s", slow)
	}
	// OST2 is degraded: its row must carry non-space glyphs.
	for _, line := range strings.Split(slow, "\n") {
		if strings.HasPrefix(line, "OST002") {
			body := strings.Trim(line[8:], "|")
			if strings.TrimSpace(body) == "" {
				t.Fatalf("degraded target rendered clean: %q", line)
			}
		}
	}
	tp := tr.RenderThroughput(30)
	if !strings.Contains(tp, "MB/s") {
		t.Fatalf("throughput render wrong:\n%s", tp)
	}
}

func TestEmptyTracerRenders(t *testing.T) {
	k, fs := setup(t)
	tr := &Tracer{fs: fs}
	if !strings.Contains(tr.RenderActivity(10), "no samples") {
		t.Fatal("empty activity render")
	}
	if !strings.Contains(tr.RenderThroughput(10), "no samples") {
		t.Fatal("empty throughput render")
	}
	if tr.Throughput() != nil {
		t.Fatal("empty throughput series")
	}
	k.Shutdown()
	_ = time.Second
}

func TestMaxSamplesBounds(t *testing.T) {
	k, fs := setup(t)
	tr := Start(fs, 0.001)
	tr.MaxSamples = 50
	k.RunUntil(simkernel.FromSeconds(10))
	k.Shutdown()
	if got := len(tr.Samples()); got > 50 {
		t.Fatalf("samples = %d exceeds bound", got)
	}
}

func TestHealthTimelineTracksLifecycle(t *testing.T) {
	k, fs := setup(t)
	tr := Start(fs, 0.5)
	// Script OST 1 through the full lifecycle with kernel events.
	k.At(simkernel.FromSeconds(2), func() { fs.OST(1).SetHealth(pfs.Dead, 1) })
	k.At(simkernel.FromSeconds(4), func() { fs.OST(1).SetHealth(pfs.Rebuilding, 0.5) })
	k.At(simkernel.FromSeconds(6), func() { fs.OST(1).SetHealth(pfs.Healthy, 1) })
	k.RunUntil(simkernel.FromSeconds(10))
	tr.Stop()
	k.Shutdown()

	out := tr.RenderHealth(40)
	if !strings.Contains(out, "X") || !strings.Contains(out, "r") {
		t.Fatalf("health timeline missing dead/rebuilding glyphs:\n%s", out)
	}
	secs := tr.HealthSeconds()
	if secs[pfs.Dead] < 1 || secs[pfs.Dead] > 3 {
		t.Fatalf("dead residency %.1fs, want ~2s", secs[pfs.Dead])
	}
	if secs[pfs.Rebuilding] < 1 || secs[pfs.Rebuilding] > 3 {
		t.Fatalf("rebuilding residency %.1fs, want ~2s", secs[pfs.Rebuilding])
	}
}

func TestHealthTimelineSilentWhenClean(t *testing.T) {
	k, fs := setup(t)
	tr := Start(fs, 1.0)
	k.RunUntil(simkernel.FromSeconds(5))
	tr.Stop()
	k.Shutdown()
	if out := tr.RenderHealth(40); out != "" {
		t.Fatalf("failure-free trace rendered a health timeline:\n%s", out)
	}
}
