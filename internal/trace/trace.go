// Package trace samples the storage system's state over virtual time and
// renders timelines: per-target activity heatmaps and aggregate throughput
// series. It is the observability layer one would use to *see* the paper's
// phenomena — slow areas appearing and draining away under adaptive IO —
// rather than just measure their endpoints.
package trace

import (
	"fmt"
	"strings"

	"repro/internal/pfs"
	"repro/internal/simkernel"
)

// Sample is one snapshot of the file system.
type Sample struct {
	// T is the virtual time in seconds.
	T float64
	// Flows is the number of active write streams per target.
	Flows []int
	// Cache is the dirty-byte level per target.
	Cache []float64
	// Slow is the service factor per target (1 = clean).
	Slow []float64
	// Ext is the external stream count per target.
	Ext []int
	// Health is the lifecycle state per target (healthy, degraded, dead,
	// rebuilding — see pfs.HealthState).
	Health []pfs.HealthState
	// Drained is the cumulative bytes on disk across all targets.
	Drained float64
	// Jobs is the cumulative attributed traffic per job id (index 0 is the
	// unattributed bucket); empty when no jobs are registered.
	Jobs []pfs.JobIO
}

// Tracer periodically samples a file system.
type Tracer struct {
	fs       *pfs.FileSystem
	interval float64
	samples  []Sample
	stopped  bool
	// MaxSamples bounds memory; sampling stops when reached (0 = 100k).
	MaxSamples int
}

// Start begins sampling every interval virtual seconds.
func Start(fs *pfs.FileSystem, interval float64) *Tracer {
	if interval <= 0 {
		interval = 1
	}
	t := &Tracer{fs: fs, interval: interval, MaxSamples: 100000}
	fs.K.Spawn("tracer", func(p *simkernel.Proc) {
		for !t.stopped && len(t.samples) < t.MaxSamples {
			t.take(p.Now())
			p.SleepSeconds(t.interval)
		}
	})
	return t
}

// take records one sample (kernel/process context).
func (t *Tracer) take(now simkernel.Time) {
	n := len(t.fs.OSTs)
	s := Sample{
		T:      now.Seconds(),
		Flows:  make([]int, n),
		Cache:  make([]float64, n),
		Slow:   make([]float64, n),
		Ext:    make([]int, n),
		Health: make([]pfs.HealthState, n),
	}
	for i, o := range t.fs.OSTs {
		s.Cache[i] = o.CacheLevel() // advances fluid state
		s.Flows[i] = o.ActiveFlows()
		s.Slow[i] = o.SlowFactor()
		s.Ext[i] = o.ExternalStreams()
		s.Health[i] = o.Health()
	}
	s.Drained = t.fs.TotalBytesDrained()
	if n := t.fs.JobCount(); n > 0 {
		s.Jobs = make([]pfs.JobIO, n+1)
		for j := range s.Jobs {
			s.Jobs[j] = t.fs.JobIO(j)
		}
	}
	t.samples = append(t.samples, s)
}

// Stop ends sampling after the next wakeup.
func (t *Tracer) Stop() { t.stopped = true }

// Samples returns the recorded snapshots.
func (t *Tracer) Samples() []Sample { return t.samples }

// glyphFor maps an activity level to a heat glyph.
func glyphFor(level float64) byte {
	glyphs := []byte(" .:-=+*#")
	if level <= 0 {
		return glyphs[0]
	}
	if level >= 1 {
		return glyphs[len(glyphs)-1]
	}
	return glyphs[int(level*float64(len(glyphs)-1))+0]
}

// RenderActivity draws a heatmap: one row per target, one column per
// sample (subsampled to width), glyph intensity = active flows normalised
// to the observed maximum.
func (t *Tracer) RenderActivity(width int) string {
	if len(t.samples) == 0 {
		return "(no samples)\n"
	}
	if width <= 0 {
		width = 72
	}
	cols := len(t.samples)
	if cols > width {
		cols = width
	}
	maxFlows := 1
	for _, s := range t.samples {
		for _, f := range s.Flows {
			if f > maxFlows {
				maxFlows = f
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "per-target write activity over %.0fs (max %d concurrent flows)\n",
		t.samples[len(t.samples)-1].T-t.samples[0].T, maxFlows)
	n := len(t.fs.OSTs)
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "OST%03d |", i)
		for c := 0; c < cols; c++ {
			idx := c * len(t.samples) / cols
			level := float64(t.samples[idx].Flows[i]) / float64(maxFlows)
			b.WriteByte(glyphFor(level))
		}
		b.WriteString("|\n")
	}
	return b.String()
}

// RenderSlowness draws a heatmap of service degradation (darker = slower),
// making interference episodes visible.
func (t *Tracer) RenderSlowness(width int) string {
	if len(t.samples) == 0 {
		return "(no samples)\n"
	}
	if width <= 0 {
		width = 72
	}
	cols := len(t.samples)
	if cols > width {
		cols = width
	}
	var b strings.Builder
	b.WriteString("per-target slowness over time (darker = more degraded)\n")
	for i := 0; i < len(t.fs.OSTs); i++ {
		fmt.Fprintf(&b, "OST%03d |", i)
		for c := 0; c < cols; c++ {
			idx := c * len(t.samples) / cols
			s := t.samples[idx]
			degr := 1 - s.Slow[i]
			if s.Ext[i] > 0 {
				degr += 0.25
			}
			b.WriteByte(glyphFor(degr))
		}
		b.WriteString("|\n")
	}
	return b.String()
}

// healthGlyph maps a lifecycle state to a timeline glyph.
func healthGlyph(h pfs.HealthState) byte {
	switch h {
	case pfs.Degraded:
		return '-'
	case pfs.Dead:
		return 'X'
	case pfs.Rebuilding:
		return 'r'
	default:
		return '.'
	}
}

// RenderHealth draws the lifecycle timeline per target: '.' healthy,
// '-' degraded, 'X' dead, 'r' rebuilding. Returns "" when every sample saw
// every target healthy, so failure-free runs print nothing extra.
func (t *Tracer) RenderHealth(width int) string {
	if len(t.samples) == 0 {
		return ""
	}
	if width <= 0 {
		width = 72
	}
	any := false
	for _, s := range t.samples {
		for _, h := range s.Health {
			if h != pfs.Healthy {
				any = true
			}
		}
	}
	if !any {
		return ""
	}
	cols := len(t.samples)
	if cols > width {
		cols = width
	}
	var b strings.Builder
	b.WriteString("per-target health over time (. healthy, - degraded, X dead, r rebuilding)\n")
	for i := 0; i < len(t.fs.OSTs); i++ {
		fmt.Fprintf(&b, "OST%03d |", i)
		for c := 0; c < cols; c++ {
			idx := c * len(t.samples) / cols
			b.WriteByte(healthGlyph(t.samples[idx].Health[i]))
		}
		b.WriteString("|\n")
	}
	return b.String()
}

// HealthSeconds sums, per lifecycle state, the virtual seconds all targets
// spent in that state as observed by the trace (sample-resolution: each
// inter-sample interval is attributed to the state seen at its start).
func (t *Tracer) HealthSeconds() [pfs.NumHealthStates]float64 {
	var out [pfs.NumHealthStates]float64
	for i := 1; i < len(t.samples); i++ {
		dt := t.samples[i].T - t.samples[i-1].T
		for _, h := range t.samples[i-1].Health {
			out[h] += dt
		}
	}
	return out
}

// jobTraffic returns the cumulative attributed bytes (written + read) of
// job j at sample i, tolerating samples taken before the job registered.
func (t *Tracer) jobTraffic(i, j int) float64 {
	s := t.samples[i]
	if j >= len(s.Jobs) {
		return 0
	}
	return s.Jobs[j].BytesWritten + s.Jobs[j].BytesRead
}

// RenderJobs draws one bandwidth timeline per registered job (glyph
// intensity = the job's traffic between consecutive samples, normalised to
// the busiest interval of any job), making co-scheduled phase patterns and
// contention visible. Returns "" when the trace saw no registered jobs.
func (t *Tracer) RenderJobs(width int) string {
	njobs := t.fs.JobCount()
	if njobs == 0 || len(t.samples) < 2 {
		return ""
	}
	if width <= 0 {
		width = 72
	}
	cols := len(t.samples) - 1
	if cols > width {
		cols = width
	}
	max := 0.0
	for j := 1; j <= njobs; j++ {
		for i := 1; i < len(t.samples); i++ {
			if d := t.jobTraffic(i, j) - t.jobTraffic(i-1, j); d > max {
				max = d
			}
		}
	}
	if max == 0 {
		max = 1
	}
	var b strings.Builder
	b.WriteString("per-job traffic over time (row = job, darker = closer to the busiest interval)\n")
	for j := 1; j <= njobs; j++ {
		fmt.Fprintf(&b, "%-12s |", t.fs.JobName(j))
		for c := 0; c < cols; c++ {
			// Map the column to a sample interval, mirroring the heatmaps.
			idx := c*(len(t.samples)-1)/cols + 1
			d := t.jobTraffic(idx, j) - t.jobTraffic(idx-1, j)
			b.WriteByte(glyphFor(d / max))
		}
		last := len(t.samples) - 1
		fmt.Fprintf(&b, "| %8.1f MB\n", t.jobTraffic(last, j)/pfs.MB)
	}
	return b.String()
}

// Throughput returns the aggregate disk throughput series (bytes/sec)
// between consecutive samples.
func (t *Tracer) Throughput() []float64 {
	if len(t.samples) < 2 {
		return nil
	}
	out := make([]float64, 0, len(t.samples)-1)
	for i := 1; i < len(t.samples); i++ {
		dt := t.samples[i].T - t.samples[i-1].T
		if dt <= 0 {
			out = append(out, 0)
			continue
		}
		out = append(out, (t.samples[i].Drained-t.samples[i-1].Drained)/dt)
	}
	return out
}

// RenderThroughput draws the aggregate throughput as a sparkline-style bar
// column.
func (t *Tracer) RenderThroughput(width int) string {
	tp := t.Throughput()
	if len(tp) == 0 {
		return "(no samples)\n"
	}
	if width <= 0 {
		width = 50
	}
	max := 0.0
	for _, v := range tp {
		if v > max {
			max = v
		}
	}
	if max == 0 {
		max = 1
	}
	var b strings.Builder
	b.WriteString("aggregate disk throughput over time\n")
	for i, v := range tp {
		bar := int(v / max * float64(width))
		fmt.Fprintf(&b, "t=%7.1fs |%-*s %8.1f MB/s\n",
			t.samples[i+1].T, width, strings.Repeat("#", bar), v/pfs.MB)
	}
	return b.String()
}
