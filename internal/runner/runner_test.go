package runner

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"repro/internal/rngx"
)

func testKeys(points, samples int) []ReplicaKey {
	var pts []string
	for p := 0; p < points; p++ {
		pts = append(pts, fmt.Sprintf("point=%d", p))
	}
	return Keys("test", pts, samples)
}

func TestRunCollectsInKeyOrder(t *testing.T) {
	keys := testKeys(8, 16)
	for _, parallel := range []int{1, 2, 8, 64} {
		got, err := Run(Options{Parallel: parallel}, keys, func(k ReplicaKey) (string, error) {
			return k.String(), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(keys) {
			t.Fatalf("parallel=%d: %d results for %d keys", parallel, len(got), len(keys))
		}
		for i, k := range keys {
			if got[i] != k.String() {
				t.Fatalf("parallel=%d: result %d = %q, want %q", parallel, i, got[i], k)
			}
		}
	}
}

// TestRunDeterministicAcrossWorkerCounts is the core contract: replica
// outputs derived from key seeds are bit-identical regardless of the worker
// count, because seeds come from keys, never from scheduling order.
func TestRunDeterministicAcrossWorkerCounts(t *testing.T) {
	keys := testKeys(6, 20)
	replica := func(k ReplicaKey) (float64, error) {
		src := rngx.New(k.Seed(42))
		sum := 0.0
		for i := 0; i < 100; i++ {
			sum += src.Float64()
		}
		return sum, nil
	}
	seq, err := Run(Options{Parallel: 1}, keys, replica)
	if err != nil {
		t.Fatal(err)
	}
	for _, parallel := range []int{2, 4, 8} {
		par, err := Run(Options{Parallel: parallel}, keys, replica)
		if err != nil {
			t.Fatal(err)
		}
		for i := range seq {
			if seq[i] != par[i] {
				t.Fatalf("parallel=%d: replica %d diverged: %v vs %v",
					parallel, i, seq[i], par[i])
			}
		}
	}
}

func TestRunReportsEarliestError(t *testing.T) {
	keys := testKeys(4, 8)
	boom := errors.New("boom")
	_, err := Run(Options{Parallel: 8}, keys, func(k ReplicaKey) (int, error) {
		if k.Sample >= 5 {
			return 0, fmt.Errorf("%w at %s", boom, k)
		}
		return k.Sample, nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	var re *Error
	if !errors.As(err, &re) {
		t.Fatalf("error %T does not wrap *runner.Error", err)
	}
	if !errors.Is(err, boom) {
		t.Fatal("cause not unwrapped")
	}
	// The earliest failing key in input order is point=0 sample=5,
	// regardless of which worker failed first on the clock.
	if re.Key.Point != "point=0" || re.Key.Sample != 5 {
		t.Fatalf("error key = %v, want point=0 sample 5", re.Key)
	}
}

func TestRunContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	keys := testKeys(1, 1000)
	var ran atomic.Int64
	_, err := Run(Options{Parallel: 2, Context: ctx}, keys, func(k ReplicaKey) (int, error) {
		if ran.Add(1) == 10 {
			cancel()
		}
		return 0, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := ran.Load(); n >= 1000 {
		t.Fatalf("cancellation did not stop dispatch (ran %d)", n)
	}
}

func TestRunProgressMonotonic(t *testing.T) {
	keys := testKeys(4, 25)
	var calls int
	last := 0
	_, err := Run(Options{
		Parallel: 8,
		Progress: func(done, total int, k ReplicaKey) {
			calls++
			if total != len(keys) {
				t.Errorf("total = %d, want %d", total, len(keys))
			}
			if done != last+1 {
				t.Errorf("done jumped %d -> %d", last, done)
			}
			last = done
		},
	}, keys, func(k ReplicaKey) (int, error) { return 0, nil })
	if err != nil {
		t.Fatal(err)
	}
	if calls != len(keys) {
		t.Fatalf("progress calls = %d, want %d", calls, len(keys))
	}
}

func TestRunEmptyAndDefaults(t *testing.T) {
	out, err := Run(Options{}, nil, func(k ReplicaKey) (int, error) { return 1, nil })
	if err != nil || len(out) != 0 {
		t.Fatalf("empty run: %v, %v", out, err)
	}
	// Parallel<=0 defaults to GOMAXPROCS and must still work.
	out, err = Run(Options{Parallel: -3}, testKeys(2, 2), func(k ReplicaKey) (int, error) {
		return k.Sample, nil
	})
	if err != nil || len(out) != 4 {
		t.Fatalf("default-parallel run: %v, %v", out, err)
	}
}

func TestKeysCanonicalOrder(t *testing.T) {
	keys := Keys("d", []string{"a", "b"}, 2)
	want := []ReplicaKey{
		{"d", "a", 0}, {"d", "a", 1},
		{"d", "b", 0}, {"d", "b", 1},
	}
	if len(keys) != len(want) {
		t.Fatalf("len = %d", len(keys))
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("keys[%d] = %v, want %v", i, keys[i], want[i])
		}
	}
	one := SampleKeys("d", "a", 3)
	if len(one) != 3 || one[2] != (ReplicaKey{"d", "a", 2}) {
		t.Fatalf("SampleKeys = %v", one)
	}
}

func TestReplicaKeySeedsDistinct(t *testing.T) {
	seen := map[int64]ReplicaKey{}
	for _, k := range testKeys(32, 64) {
		s := k.Seed(42)
		if prev, ok := seen[s]; ok {
			t.Fatalf("keys %v and %v share seed %d", prev, k, s)
		}
		seen[s] = k
	}
}

// TestWorkerInitPerWorker pins the worker-local state contract: WorkerInit
// runs exactly once per worker goroutine, every replica sees its own
// worker's value, and every cleanup runs after the campaign.
func TestWorkerInitPerWorker(t *testing.T) {
	keys := testKeys(4, 32)
	var inits, cleanups atomic.Int64
	got, err := RunWorkers(Options{
		Parallel: 4,
		WorkerInit: func() (any, func()) {
			id := inits.Add(1)
			return id, func() { cleanups.Add(1) }
		},
	}, keys, func(k ReplicaKey, local any) (int64, error) {
		id, ok := local.(int64)
		if !ok || id < 1 {
			t.Errorf("replica %v got local %v, want its worker's init value", k, local)
		}
		return id, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n := inits.Load(); n != 4 {
		t.Fatalf("WorkerInit ran %d times for 4 workers", n)
	}
	if n := cleanups.Load(); n != 4 {
		t.Fatalf("%d cleanups ran, want 4", n)
	}
	// Which worker runs which replica is a scheduling race; only validity of
	// the local value is guaranteed, not its spread.
	for i, id := range got {
		if id < 1 || id > 4 {
			t.Fatalf("replica %d saw worker value %d, want 1..4", i, id)
		}
	}
}

// TestWorkerInitCleanupOnCancellation is the pool-lifecycle guarantee:
// worker cleanups (which return rented worlds) run even when the campaign is
// cancelled mid-flight.
func TestWorkerInitCleanupOnCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	keys := testKeys(1, 500)
	var inits, cleanups, ran atomic.Int64
	_, err := RunWorkers(Options{
		Parallel: 4,
		Context:  ctx,
		WorkerInit: func() (any, func()) {
			inits.Add(1)
			return nil, func() { cleanups.Add(1) }
		},
	}, keys, func(k ReplicaKey, _ any) (int, error) {
		if ran.Add(1) == 5 {
			cancel()
		}
		return 0, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if inits.Load() != cleanups.Load() {
		t.Fatalf("%d inits but %d cleanups after cancellation", inits.Load(), cleanups.Load())
	}
	if cleanups.Load() == 0 {
		t.Fatal("no cleanups ran")
	}
}

// TestWorkerInitCleanupOnReplicaError mirrors the cancellation test for the
// replica-failure path: a failing replica must not leak worker state.
func TestWorkerInitCleanupOnReplicaError(t *testing.T) {
	keys := testKeys(2, 8)
	var cleanups atomic.Int64
	boom := errors.New("boom")
	_, err := RunWorkers(Options{
		Parallel: 2,
		WorkerInit: func() (any, func()) {
			return nil, func() { cleanups.Add(1) }
		},
	}, keys, func(k ReplicaKey, _ any) (int, error) {
		if k.Sample == 3 {
			return 0, boom
		}
		return 0, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	if n := cleanups.Load(); n != 2 {
		t.Fatalf("%d cleanups ran after replica error, want 2", n)
	}
}
