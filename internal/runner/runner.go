// Package runner executes simulation campaigns: large sets of independent
// replicas (one deterministic-kernel simulation each) spread across a worker
// pool. Every table and figure of the paper is a statistics-over-samples
// artifact — Table I alone is 469 hourly IOR runs, the Section IV grids are
// method × condition × procs × samples sweeps — and the replicas share no
// state, so the layer above the DES kernel is embarrassingly parallel.
//
// The contract that keeps parallel campaigns trustworthy:
//
//   - Each replica is identified by a ReplicaKey (driver, grid point, sample
//     index) from which its seed is derived via rngx.DeriveSeed, never from
//     its scheduling order. A replica's simulated world is therefore a pure
//     function of its key and the master seed.
//   - Results are collected positionally: Run returns results[i] for keys[i]
//     regardless of completion order, so a campaign's output is bit-identical
//     whether it ran on 1 worker or 64.
//   - Errors are captured per replica and reported for the earliest failed
//     key (again independent of scheduling), wrapped in *Error with the key
//     attached.
package runner

import (
	"context"
	"fmt"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/rngx"
)

// ReplicaKey names one replica of a campaign: which experiment driver it
// belongs to, which grid point it samples, and its sample index at that
// point.
type ReplicaKey struct {
	// Driver is the experiment family ("fig1", "table1", "eval", ...).
	Driver string
	// Point labels the grid point ("size=8MB/ratio=4", "Jaguar", ...).
	Point string
	// Sample is the replication index at the point.
	Sample int
}

// Seed derives the replica's master seed. Two distinct keys get unrelated
// seeds (SplitMix64 mixing), and the same key always gets the same seed.
func (k ReplicaKey) Seed(master int64) int64 {
	return rngx.DeriveSeed(master, k.Driver, k.Point, strconv.Itoa(k.Sample))
}

func (k ReplicaKey) String() string {
	return fmt.Sprintf("%s[%s#%d]", k.Driver, k.Point, k.Sample)
}

// Error is a replica failure with its key attached.
type Error struct {
	Key ReplicaKey
	Err error
}

func (e *Error) Error() string { return fmt.Sprintf("replica %s: %v", e.Key, e.Err) }
func (e *Error) Unwrap() error { return e.Err }

// Options configures a campaign run.
type Options struct {
	// Parallel bounds the worker count: n>1 uses n workers, 1 forces the
	// sequential path, and <=0 uses runtime.GOMAXPROCS(0).
	Parallel int
	// Context cancels the campaign between replicas (nil = background).
	// Replicas already running complete; unstarted ones are skipped and the
	// context's error is returned.
	Context context.Context
	// Progress, if set, is called after each replica completes, with the
	// number of completed replicas, the total, and the finished key. Calls
	// are serialised; they may arrive in any replica order but done is
	// strictly increasing.
	Progress func(done, total int, key ReplicaKey)
	// WorkerInit, if set, is called once per worker goroutine before its
	// first replica; the returned value is passed to every replica the
	// worker runs (RunWorkers' fn receives it), and the returned cleanup —
	// if non-nil — runs when the worker exits, including on context
	// cancellation or replica error. Scenario execution uses it to give each
	// worker a private pool of reusable simulation worlds.
	WorkerInit func() (value any, cleanup func())
}

// workers resolves the effective worker count for n replicas.
func (o Options) workers(n int) int {
	w := o.Parallel
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Run executes fn once per key across the worker pool and returns the
// results in key order: out[i] is fn(keys[i]). If any replica fails, the
// error for the earliest key in the input order is returned (wrapped in
// *Error) alongside the partial results; replicas after a context
// cancellation are skipped.
func Run[T any](opt Options, keys []ReplicaKey, fn func(ReplicaKey) (T, error)) ([]T, error) {
	return RunWorkers(opt, keys, func(k ReplicaKey, _ any) (T, error) { return fn(k) })
}

// RunWorkers is Run with worker-local state: fn additionally receives the
// value Options.WorkerInit produced for the executing worker (nil when no
// WorkerInit is set). Everything else — key-order results, earliest-error
// reporting, cancellation — behaves exactly as Run.
func RunWorkers[T any](opt Options, keys []ReplicaKey, fn func(ReplicaKey, any) (T, error)) ([]T, error) {
	n := len(keys)
	out := make([]T, n)
	if n == 0 {
		return out, nil
	}
	ctx := opt.Context
	if ctx == nil {
		ctx = context.Background()
	}
	errs := make([]error, n)
	workers := opt.workers(n)

	var next atomic.Int64 // index of the next undispatched replica
	var done atomic.Int64 // completed replicas (for progress)
	var progressMu sync.Mutex
	report := func(i int) {
		if opt.Progress == nil {
			return
		}
		d := int(done.Add(1))
		progressMu.Lock()
		opt.Progress(d, n, keys[i])
		progressMu.Unlock()
	}

	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			var local any
			if opt.WorkerInit != nil {
				value, cleanup := opt.WorkerInit()
				local = value
				if cleanup != nil {
					// Deferred so rented worker state is released on every
					// exit path, including cancellation sweeps.
					defer cleanup()
				}
			}
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := ctx.Err(); err != nil {
					errs[i] = err
					continue // mark every remaining replica as cancelled
				}
				out[i], errs[i] = fn(keys[i], local)
				report(i)
			}
		}()
	}
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			return out, &Error{Key: keys[i], Err: err}
		}
	}
	return out, nil
}

// Keys builds the replica set for a full campaign grid in canonical order:
// all samples of the first point, then the second, and so on. Campaign
// drivers demux Run's positional results back into per-point slices with
// the same nesting.
func Keys(driver string, points []string, samples int) []ReplicaKey {
	out := make([]ReplicaKey, 0, len(points)*samples)
	for _, p := range points {
		for s := 0; s < samples; s++ {
			out = append(out, ReplicaKey{Driver: driver, Point: p, Sample: s})
		}
	}
	return out
}

// SampleKeys builds the replica set for one grid point.
func SampleKeys(driver, point string, samples int) []ReplicaKey {
	return Keys(driver, []string{point}, samples)
}
