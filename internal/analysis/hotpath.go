package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// HotPath audits functions annotated //repro:hotpath for the allocation-prone
// constructs that the repository's 0 allocs/op benchmark gates exist to keep
// out of the event loop:
//
//   - function literals that capture enclosing variables (each capture is a
//     heap-allocated closure cell);
//   - fmt.Sprintf-family and errors.New calls outside panic arguments
//     (formatting allocates; hot paths report failure by panicking or by
//     returning pre-built errors);
//   - conversions of concrete non-pointer-shaped values to interface types
//     (boxing allocates), again outside panic arguments;
//   - append to a slice the function does not own — neither reachable from
//     the receiver nor declared in the function body — which can grow a
//     caller's backing array mid-loop.
//
// Functions are audited when annotated //repro:hotpath, and also when any
// parameter is a *simkernel.ContProc: continuation Step bodies run inline
// on the kernel's event loop — the whole point of the run-to-completion
// engine — so they are hot by construction and need no annotation. Hotness
// propagates through receivers: if any method of a named type takes a
// *ContProc, the type is a continuation machine and ALL its methods (in
// non-test files) are audited — a Step body's helpers (message handlers,
// queue feeders, envelope pools) run just as inline as Step itself, and
// factoring code out of Step must not move it out of the audit. Test files
// are exempt from both implicit rules (test cont machines exist to exercise
// semantics, not to be fast); an explicit //repro:hotpath in a test still
// audits as usual.
//
// Intentional occurrences (a once-cached closure, a cold error path) carry
// //repro:allow hotpath <reason> on the offending line.
var HotPath = &Analyzer{
	Name: "hotpath",
	Doc:  "keep //repro:hotpath functions and continuation Step bodies free of allocation-prone constructs",
	Run:  runHotPath,
}

// fmtAllocFuncs are the fmt functions that build a string (or write one)
// through reflection-driven formatting.
var fmtAllocFuncs = map[string]bool{
	"Sprintf": true, "Sprint": true, "Sprintln": true, "Errorf": true,
	"Fprintf": true, "Fprint": true, "Fprintln": true,
}

func runHotPath(pass *Pass) error {
	hotRecv := contMachines(pass)
	for _, f := range pass.Files {
		isTest := isTestFile(pass, f)
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			implicit := !isTest && implicitlyHot(pass, fn, hotRecv)
			if !hasHotpathDirective(fn) && !implicit {
				continue
			}
			checkHotFunc(pass, fn)
		}
	}
	return nil
}

func checkHotFunc(pass *Pass, fn *ast.FuncDecl) {
	h := &hotChecker{pass: pass, fn: fn}
	h.collectPanicRanges()
	h.mapReturnSignatures()
	ast.Inspect(fn.Body, h.visit)
}

type hotChecker struct {
	pass *Pass
	fn   *ast.FuncDecl

	// panicRanges are the source ranges of panic(...) calls; allocation inside
	// them is the sanctioned way for a hot function to report a broken
	// invariant, since the process is dying anyway.
	panicRanges [][2]token.Pos

	// retSig maps each return statement to the signature it returns from
	// (the annotated function's, or an enclosing function literal's).
	retSig map[*ast.ReturnStmt]*types.Signature
}

func (h *hotChecker) collectPanicRanges() {
	ast.Inspect(h.fn.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && isBuiltin(h.pass.Info, call, "panic") {
			h.panicRanges = append(h.panicRanges, [2]token.Pos{call.Pos(), call.End()})
		}
		return true
	})
}

func (h *hotChecker) inPanic(pos token.Pos) bool {
	for _, r := range h.panicRanges {
		if r[0] <= pos && pos < r[1] {
			return true
		}
	}
	return false
}

func (h *hotChecker) mapReturnSignatures() {
	h.retSig = map[*ast.ReturnStmt]*types.Signature{}
	var fnSig *types.Signature
	if obj, ok := h.pass.Info.Defs[h.fn.Name].(*types.Func); ok {
		fnSig = obj.Type().(*types.Signature)
	}
	ast.Inspect(h.fn.Body, func(n ast.Node) bool {
		if r, ok := n.(*ast.ReturnStmt); ok {
			h.retSig[r] = fnSig
		}
		return true
	})
	// Function literals are visited outermost-first, so inner literals
	// overwrite outer assignments and each return ends up with the signature
	// of its nearest enclosing function.
	ast.Inspect(h.fn.Body, func(n ast.Node) bool {
		lit, ok := n.(*ast.FuncLit)
		if !ok {
			return true
		}
		sig, _ := h.pass.Info.Types[lit.Type].Type.(*types.Signature)
		ast.Inspect(lit.Body, func(m ast.Node) bool {
			if r, ok := m.(*ast.ReturnStmt); ok {
				h.retSig[r] = sig
			}
			return true
		})
		return true
	})
}

func (h *hotChecker) visit(n ast.Node) bool {
	switch n := n.(type) {
	case *ast.FuncLit:
		h.checkCapture(n)
	case *ast.CallExpr:
		h.checkCall(n)
	case *ast.AssignStmt:
		if len(n.Lhs) == len(n.Rhs) && n.Tok != token.DEFINE {
			for i, rhs := range n.Rhs {
				if t := h.pass.Info.Types[n.Lhs[i]].Type; t != nil {
					h.checkBoxing(rhs, t)
				}
			}
		}
	case *ast.ValueSpec:
		if n.Type != nil {
			if t := h.pass.Info.Types[n.Type].Type; t != nil {
				for _, v := range n.Values {
					h.checkBoxing(v, t)
				}
			}
		}
	case *ast.ReturnStmt:
		sig := h.retSig[n]
		if sig != nil && sig.Results().Len() == len(n.Results) {
			for i, res := range n.Results {
				h.checkBoxing(res, sig.Results().At(i).Type())
			}
		}
	case *ast.SendStmt:
		if t := h.pass.Info.Types[n.Chan].Type; t != nil {
			if ch, ok := t.Underlying().(*types.Chan); ok {
				h.checkBoxing(n.Value, ch.Elem())
			}
		}
	}
	return true
}

// checkCapture flags variables a function literal closes over.
func (h *hotChecker) checkCapture(lit *ast.FuncLit) {
	var captured []string
	seen := map[types.Object]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := h.pass.Info.Uses[id]
		if obj == nil || seen[obj] || !localVar(h.pass.Pkg, obj) {
			return true
		}
		if obj.Pos() >= lit.Pos() && obj.Pos() < lit.End() {
			return true // declared inside the literal (params included)
		}
		seen[obj] = true
		captured = append(captured, obj.Name())
		return true
	})
	if len(captured) > 0 {
		h.pass.Reportf(lit.Pos(), "closure captures %s and allocates per call; hoist the state into the receiver, or cache the closure and waive with //repro:allow hotpath <reason>", strings.Join(captured, ", "))
	}
}

func (h *hotChecker) checkCall(call *ast.CallExpr) {
	// Explicit conversion: T(x) with T an interface type.
	if tv, ok := h.pass.Info.Types[ast.Unparen(call.Fun)]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			h.checkBoxing(call.Args[0], tv.Type)
		}
		return
	}

	if fn := calleeFunc(h.pass.Info, call); fn != nil && fn.Pkg() != nil {
		switch {
		case fn.Pkg().Path() == "fmt" && fmtAllocFuncs[fn.Name()] && isPkgFunc(fn, "fmt", fn.Name()):
			if !h.inPanic(call.Pos()) {
				h.pass.Reportf(call.Pos(), "fmt.%s allocates through reflection-driven formatting; hot paths must panic or return pre-built errors (cold paths waive with //repro:allow hotpath <reason>)", fn.Name())
			}
			return // the formatting report subsumes boxing of its arguments
		case isPkgFunc(fn, "errors", "New"):
			if !h.inPanic(call.Pos()) {
				h.pass.Reportf(call.Pos(), "errors.New allocates per call; hoist the error into a package-level var (or waive with //repro:allow hotpath <reason>)")
			}
			return
		}
	}

	if isBuiltin(h.pass.Info, call, "append") && len(call.Args) > 0 {
		h.checkAppend(call)
		return
	}

	// Arguments converted to interface parameters box their operands.
	sig, _ := h.pass.Info.Types[call.Fun].Type.(*types.Signature)
	if sig == nil {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				pt = params.At(params.Len() - 1).Type() // s... passes the slice itself
			} else {
				pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt != nil {
			h.checkBoxing(arg, pt)
		}
	}
}

// checkBoxing reports expr when assigning it to target converts a concrete
// non-pointer-shaped value into an interface.
func (h *hotChecker) checkBoxing(expr ast.Expr, target types.Type) {
	if target == nil || !types.IsInterface(target.Underlying()) {
		return
	}
	tv, ok := h.pass.Info.Types[expr]
	if !ok || tv.Type == nil || tv.IsNil() {
		return
	}
	src := tv.Type
	if types.IsInterface(src.Underlying()) || pointerShaped(src) {
		return
	}
	if h.inPanic(expr.Pos()) {
		return
	}
	h.pass.Reportf(expr.Pos(), "converting %s to %s boxes the value on the heap; keep hot-path data concrete (or waive with //repro:allow hotpath <reason>)", src, target)
}

// pointerShaped reports whether values of t fit in an interface word without
// allocating: pointers, channels, maps, funcs and unsafe pointers.
func pointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}

// checkAppend flags append whose destination slice the function neither owns
// through its receiver nor declared in its own body.
func (h *hotChecker) checkAppend(call *ast.CallExpr) {
	base := ast.Unparen(call.Args[0])
	if root := rootIdent(base); root != nil {
		if obj := h.pass.Info.Uses[root]; obj != nil {
			if h.isReceiver(obj) {
				return // receiver-owned storage (k.queue, k.pool, ...)
			}
			if localVar(h.pass.Pkg, obj) && obj.Pos() > h.fn.Body.Lbrace {
				return // declared in this function's body
			}
		}
	}
	h.pass.Reportf(call.Pos(), "append to %s, which this function does not own (not receiver state, not a body-local slice); growth reallocates a caller's backing array — restructure, or waive with //repro:allow hotpath <reason>", exprString(base))
}

func (h *hotChecker) isReceiver(obj types.Object) bool {
	if h.fn.Recv == nil || len(h.fn.Recv.List) == 0 || len(h.fn.Recv.List[0].Names) == 0 {
		return false
	}
	return h.pass.Info.Defs[h.fn.Recv.List[0].Names[0]] == obj
}

// rootIdent walks selector/index/star/paren chains to the base identifier.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.ParenExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// exprString renders a short expression for diagnostics.
func exprString(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprString(x.X) + "." + x.Sel.Name
	case *ast.IndexExpr:
		return exprString(x.X) + "[...]"
	case *ast.StarExpr:
		return "*" + exprString(x.X)
	case *ast.ParenExpr:
		return exprString(x.X)
	}
	return fmt.Sprintf("%T", e)
}
