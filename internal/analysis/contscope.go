package analysis

// Shared detection of the continuation-engine audit scope. hotpath and
// contblock agree on what runs inline on the kernel event loop: any function
// taking a *simkernel.ContProc, and every method of a type that has one —
// if any method of a named type takes a *ContProc, the type is a
// continuation machine, and factoring code out of its Step body must not
// move that code out of the audit.

import (
	"go/ast"
	"go/types"
	"strings"
)

// contProcPkg is the package whose ContProc parameter type marks a function
// as an implicitly hot continuation body.
const contProcPkg = "repro/internal/simkernel"

// isTestFile reports whether the file is a _test.go file. Test continuation
// machines exist to exercise semantics, not to be fast or non-blocking, so
// the implicit audit rules skip them.
func isTestFile(pass *Pass, f *ast.File) bool {
	return strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go")
}

// contMachines returns the named types with any non-test method taking a
// *simkernel.ContProc: the continuation machines whose every method is
// implicitly hot.
func contMachines(pass *Pass) map[*types.TypeName]bool {
	machines := map[*types.TypeName]bool{}
	for _, f := range pass.Files {
		if isTestFile(pass, f) {
			continue
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || fn.Recv == nil {
				continue
			}
			if hasContProcParam(pass, fn) {
				if tn := recvTypeName(pass, fn); tn != nil {
					machines[tn] = true
				}
			}
		}
	}
	return machines
}

// implicitlyHot reports whether fn runs inline on the kernel event loop:
// it takes a *ContProc itself, or is a method of a continuation machine.
func implicitlyHot(pass *Pass, fn *ast.FuncDecl, machines map[*types.TypeName]bool) bool {
	if hasContProcParam(pass, fn) {
		return true
	}
	return fn.Recv != nil && machines[recvTypeName(pass, fn)]
}

// recvTypeName resolves a method's receiver to the named type it is declared
// on (through any pointer), or nil for non-methods.
func recvTypeName(pass *Pass, fn *ast.FuncDecl) *types.TypeName {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return nil
	}
	t := pass.Info.Types[fn.Recv.List[0].Type].Type
	if t == nil && len(fn.Recv.List[0].Names) > 0 {
		if obj := pass.Info.Defs[fn.Recv.List[0].Names[0]]; obj != nil {
			t = obj.Type()
		}
	}
	return namedTypeName(t)
}

// namedTypeName unwraps a (possibly pointer-to) named type to its TypeName.
func namedTypeName(t types.Type) *types.TypeName {
	if t == nil {
		return nil
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj()
	}
	return nil
}

// hasContProcParam reports whether fn takes a *simkernel.ContProc — the
// signature of continuation Step bodies and their helpers, which the kernel
// resumes inline and which are therefore implicitly hot.
func hasContProcParam(pass *Pass, fn *ast.FuncDecl) bool {
	return hasSimkernelPtrParam(pass, fn.Type, "ContProc")
}

// hasSimkernelPtrParam reports whether the function type has a parameter of
// type *simkernel.<name>.
func hasSimkernelPtrParam(pass *Pass, ftype *ast.FuncType, name string) bool {
	if ftype.Params == nil {
		return false
	}
	for _, field := range ftype.Params.List {
		tv, ok := pass.Info.Types[field.Type]
		if !ok || tv.Type == nil {
			continue
		}
		ptr, ok := tv.Type.(*types.Pointer)
		if !ok {
			continue
		}
		named, ok := ptr.Elem().(*types.Named)
		if !ok {
			continue
		}
		obj := named.Obj()
		if obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == contProcPkg {
			return true
		}
	}
	return false
}
