package analysis

// Machine-readable findings output for cmd/reprolint's -json mode. The
// rendering lives here (not in the command) so tests can pin the schema
// without shelling out to the built binary.

import (
	"encoding/json"
	"io"
)

// Finding is one diagnostic with its position resolved, the unit of
// cmd/reprolint's -json output. The schema is part of the tool's interface:
// scripts diff these fields across runs, so they only grow, never change.
type Finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
	Package  string `json:"package,omitempty"`
}

// FindingsFrom resolves a package's diagnostics into Findings, preserving
// RunSuite's position-sorted order.
func FindingsFrom(pkg *Package, diags []Diagnostic) []Finding {
	findings := make([]Finding, 0, len(diags))
	for _, d := range diags {
		posn := pkg.Fset.Position(d.Pos)
		findings = append(findings, Finding{
			File:     posn.Filename,
			Line:     posn.Line,
			Column:   posn.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
			Package:  pkg.Path,
		})
	}
	return findings
}

// WriteFindingsJSON writes the findings as one indented JSON array. An empty
// or nil slice still renders as [], so consumers can parse unconditionally.
func WriteFindingsJSON(w io.Writer, findings []Finding) error {
	if findings == nil {
		findings = []Finding{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "\t")
	return enc.Encode(findings)
}
