package analysis

import (
	"go/ast"
	"go/types"
	"strconv"
)

// NoDeterm rejects the ambient nondeterminism that breaks bit-identical
// replica execution:
//
//   - calls to wall-clock time functions (time.Now, time.Since, time.Sleep,
//     timers, tickers) anywhere in the module — virtual time comes from the
//     simulation kernel, and the only sanctioned wall-clock call sites are
//     the explicitly waived helpers in internal/profiling;
//   - imports of crypto/rand anywhere, and of math/rand in simulation
//     packages (construction of math/rand generators elsewhere is rngxonly's
//     domain);
//   - `for range` over a map in simulation packages, unless the loop body
//     only appends to a local slice that is subsequently sorted in the same
//     block — the one iteration-order-independent idiom. Everything else
//     silently reorders floating-point accumulation, RNG draws or event
//     scheduling and kills golden checksums.
var NoDeterm = &Analyzer{
	Name: "nodeterm",
	Doc:  "forbid wall-clock time, ambient randomness and order-dependent map iteration on the simulation path",
	Run:  runNoDeterm,
}

// wallClockFuncs are the package-level time functions that read or wait on
// the wall clock. Pure conversions (time.Duration, time.Unix) are fine.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"Tick": true, "After": true, "AfterFunc": true,
	"NewTimer": true, "NewTicker": true,
}

func runNoDeterm(pass *Pass) error {
	sim := isSimPackage(pass.Path)

	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			switch path {
			case "crypto/rand":
				pass.Reportf(imp.Pos(), "crypto/rand is nondeterministic by design; every draw must come from an internal/rngx stream")
			case "math/rand", "math/rand/v2":
				if sim {
					pass.Reportf(imp.Pos(), "simulation packages must not import %s; derive a stream from internal/rngx instead", path)
				}
			}
		}

		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.Info, call)
			if fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "time" &&
				wallClockFuncs[fn.Name()] && isPkgFunc(fn, "time", fn.Name()) {
				pass.Reportf(call.Pos(), "time.%s reads the wall clock; simulation results must depend only on virtual time (route timing through internal/profiling, or waive with //repro:allow nodeterm <reason>)", fn.Name())
			}
			return true
		})

		if sim {
			checkMapRanges(pass, f)
		}
	}
	return nil
}

// checkMapRanges flags map iteration except the append-then-sort idiom.
func checkMapRanges(pass *Pass, f *ast.File) {
	for _, list := range stmtLists(f) {
		for i, s := range list {
			rng, ok := unlabel(s).(*ast.RangeStmt)
			if !ok {
				continue
			}
			t := pass.Info.Types[rng.X].Type
			if t == nil {
				continue
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				continue
			}
			if mapRangeSortedIdiom(pass, rng, list[i+1:]) {
				continue
			}
			pass.Reportf(rng.Pos(), "map iteration order is nondeterministic; collect keys into a sorted slice first (or waive with //repro:allow nodeterm <reason> if order provably cannot affect results)")
		}
	}
}

// mapRangeSortedIdiom recognizes the sanctioned pattern: the loop body is a
// single append of the key (or value) onto a local slice, and a later
// statement in the same block sorts that slice.
func mapRangeSortedIdiom(pass *Pass, rng *ast.RangeStmt, rest []ast.Stmt) bool {
	if len(rng.Body.List) != 1 {
		return false
	}
	as, ok := unlabel(rng.Body.List[0]).(*ast.AssignStmt)
	if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return false
	}
	lhs, ok := as.Lhs[0].(*ast.Ident)
	if !ok {
		return false
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok || !isBuiltin(pass.Info, call, "append") || len(call.Args) < 2 {
		return false
	}
	base, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		return false
	}
	obj := pass.Info.Uses[lhs]
	if obj == nil {
		obj = pass.Info.Defs[lhs]
	}
	if obj == nil || pass.Info.Uses[base] != obj || !localVar(pass.Pkg, obj) {
		return false
	}
	// A later statement in the same block must sort the slice.
	for _, s := range rest {
		es, ok := unlabel(s).(*ast.ExprStmt)
		if !ok {
			continue
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok {
			continue
		}
		if isSortCall(pass.Info, call, obj) {
			return true
		}
	}
	return false
}

// isSortCall reports whether the call sorts the slice bound to obj via the
// sort or slices packages.
func isSortCall(info *types.Info, call *ast.CallExpr, obj types.Object) bool {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "sort":
		switch fn.Name() {
		case "Ints", "Strings", "Float64s", "Slice", "SliceStable", "Sort", "Stable":
		default:
			return false
		}
	case "slices":
		switch fn.Name() {
		case "Sort", "SortFunc", "SortStableFunc":
		default:
			return false
		}
	default:
		return false
	}
	// The sorted operand must mention the collected slice.
	for _, arg := range call.Args {
		mentions := false
		ast.Inspect(arg, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
				mentions = true
				return false
			}
			return true
		})
		if mentions {
			return true
		}
	}
	return false
}
