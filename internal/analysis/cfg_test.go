package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"sort"
	"strings"
	"testing"
)

// parseBody parses a function body from source and returns its CFG.
func parseBody(t *testing.T, body string) *cfg {
	t.Helper()
	src := "package p\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "f.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return buildCFG(f.Decls[0].(*ast.FuncDecl).Body)
}

// markersAtExit runs a may-analysis collecting calls to mark("x") and
// returns the sorted labels that can reach the function exit. It exercises
// both the CFG builder and the generic solver.
func markersAtExit(t *testing.T, body string) []string {
	t.Helper()
	g := parseBody(t, body)
	lat := flowLattice[map[string]bool]{
		transfer: func(s map[string]bool, n ast.Node) map[string]bool {
			walkShallow(n, func(m ast.Node) bool {
				call, ok := m.(*ast.CallExpr)
				if !ok {
					return true
				}
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "mark" && len(call.Args) == 1 {
					if lit, ok := call.Args[0].(*ast.BasicLit); ok {
						s[strings.Trim(lit.Value, `"`)] = true
					}
				}
				return true
			})
			return s
		},
		join: func(dst, src map[string]bool) (map[string]bool, bool) {
			changed := false
			for k := range src {
				if !dst[k] {
					dst[k] = true
					changed = true
				}
			}
			return dst, changed
		},
		clone: func(s map[string]bool) map[string]bool {
			c := make(map[string]bool, len(s))
			for k := range s {
				c[k] = true
			}
			return c
		},
	}
	res := solveForward(g, map[string]bool{}, lat)
	if !res.exitOK {
		return nil
	}
	var out []string
	for k := range res.exit {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func wantMarkers(t *testing.T, body string, want ...string) {
	t.Helper()
	got := markersAtExit(t, body)
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("markers at exit = %v, want %v\nbody:\n%s", got, want, body)
	}
}

func TestCFGStraightLine(t *testing.T) {
	wantMarkers(t, `mark("a"); mark("b")`, "a", "b")
}

func TestCFGIfElse(t *testing.T) {
	wantMarkers(t, `
if cond() {
	mark("then")
} else {
	mark("else")
}
mark("after")`, "after", "else", "then")
}

func TestCFGReturnCutsPath(t *testing.T) {
	wantMarkers(t, `
if cond() {
	mark("early")
	return
}
mark("late")`, "early", "late")
	// But code after an unconditional return never reaches exit.
	wantMarkers(t, `
return
mark("dead")`)
}

func TestCFGPanicTerminates(t *testing.T) {
	wantMarkers(t, `
if cond() {
	mark("doomed")
	panic("boom")
}
mark("ok")`, "ok")
}

func TestCFGForLoop(t *testing.T) {
	// Loop body may or may not run; break exits to after.
	wantMarkers(t, `
for i := 0; i < n; i++ {
	mark("body")
	if cond() {
		break
	}
	mark("tail")
}
mark("after")`, "after", "body", "tail")
	// Infinite loop without break never reaches exit.
	wantMarkers(t, `
for {
	mark("spin")
}`)
}

func TestCFGRange(t *testing.T) {
	wantMarkers(t, `
for _, v := range xs {
	mark("body")
	_ = v
}
mark("after")`, "after", "body")
}

func TestCFGSwitchFallthrough(t *testing.T) {
	wantMarkers(t, `
switch x {
case 1:
	mark("one")
	fallthrough
case 2:
	mark("two")
	return
default:
	mark("def")
}
mark("after")`, "after", "def", "one", "two")
}

func TestCFGSwitchNoDefaultSkips(t *testing.T) {
	wantMarkers(t, `
switch x {
case 1:
	mark("one")
}
mark("after")`, "after", "one")
}

func TestCFGGoto(t *testing.T) {
	wantMarkers(t, `
	if cond() {
		goto done
	}
	mark("mid")
done:
	mark("done")`, "done", "mid")
}

func TestCFGLabeledBreak(t *testing.T) {
	wantMarkers(t, `
outer:
	for {
		for {
			mark("inner")
			break outer
		}
	}
	mark("after")`, "after", "inner")
}

func TestCFGSelect(t *testing.T) {
	wantMarkers(t, `
select {
case <-ch:
	mark("recv")
case ch2 <- v:
	mark("send")
}
mark("after")`, "after", "recv", "send")
}

func TestCFGFuncLitBodySkipped(t *testing.T) {
	// walkShallow must not descend into function literals: the marker in
	// the closure body belongs to the closure's own analysis.
	wantMarkers(t, `
f := func() {
	mark("closure")
}
f()
mark("after")`, "after")
}

func TestCFGBlocksAreAtomic(t *testing.T) {
	// No compound statement may appear as a block node: transfer functions
	// fold over atoms only.
	g := parseBody(t, `
if cond() {
	for i := 0; i < n; i++ {
		switch x {
		case 1:
			mark("a")
		}
	}
}`)
	for _, blk := range g.blocks {
		for _, n := range blk.nodes {
			switch n.(type) {
			case *ast.IfStmt, *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt,
				*ast.TypeSwitchStmt, *ast.SelectStmt, *ast.BlockStmt, *ast.LabeledStmt:
				t.Errorf("compound node %T leaked into block %d", n, blk.index)
			}
		}
	}
}

func TestPackageFuncBodies(t *testing.T) {
	src := `package p
var init0 = func() int { return 0 }()
func a() { _ = func() {} }
func b() {}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, 0)
	if err != nil {
		t.Fatal(err)
	}
	bodies := packageFuncBodies([]*ast.File{f})
	var decls, lits int
	for _, fb := range bodies {
		if fb.lit != nil {
			lits++
		} else {
			decls++
		}
	}
	if decls != 2 || lits != 2 {
		t.Errorf("got %d decls, %d lits; want 2 and 2", decls, lits)
	}
}
