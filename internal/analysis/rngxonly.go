package analysis

import (
	"go/ast"
	"go/types"
	"strconv"
)

// RngxOnly enforces the substream discipline: every random draw in this
// repository flows through internal/rngx, whose named streams make draw
// sequences independent of consumer ordering and whose source is reseedable
// bit-identically for world reuse. Direct math/rand (or math/rand/v2) use
// anywhere else — rand.New, rand.NewSource, the ambient global functions —
// bypasses that discipline, so it is rejected outside internal/rngx itself
// and its stdlib-equivalence test files.
var RngxOnly = &Analyzer{
	Name: "rngxonly",
	Doc:  "all randomness must flow through internal/rngx streams",
	Run:  runRngxOnly,
}

const rngxPath = "repro/internal/rngx"

func runRngxOnly(pass *Pass) error {
	if basePath(pass.Path) == rngxPath {
		return nil // rngx wraps math/rand; its package and test files are the one sanctioned consumer
	}

	randPkgs := map[string]bool{"math/rand": true, "math/rand/v2": true}

	for _, f := range pass.Files {
		used := map[string]bool{}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pkgName, ok := pass.Info.Uses[id].(*types.PkgName)
			if !ok || !randPkgs[pkgName.Imported().Path()] {
				return true
			}
			used[pkgName.Imported().Path()] = true
			pass.Reportf(sel.Pos(), "%s.%s bypasses the internal/rngx substream discipline; derive a named stream (rngx.New / rngx.NewNamed / Source.Derive) instead", pkgName.Imported().Path(), sel.Sel.Name)
			return true
		})

		// A rand import with no selector uses (a blank or dot import, or an
		// import kept only for its side effects) still pulls the package in.
		for _, imp := range f.Imports {
			if path, err := strconv.Unquote(imp.Path.Value); err == nil && randPkgs[path] && !used[path] {
				pass.Reportf(imp.Pos(), "import of %s outside internal/rngx; all randomness must flow through rngx streams", path)
			}
		}
	}
	return nil
}
