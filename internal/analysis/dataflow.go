package analysis

// A generic forward dataflow solver over the CFGs built in cfg.go.
//
// Analyzers describe their lattice through flowLattice[S]: a transfer
// function folded over a block's atomic nodes, a join for merge points, and
// an equality test that bounds the fixpoint. The solver runs a worklist to
// fixpoint and hands back every block's in-state plus the joined exit state
// (what is live when the function returns — the input to poolown's leak
// check). Blocks never reached from entry keep no state: their in-states are
// absent from the result, which reporting passes read as "unreachable,
// nothing to say".
//
// Termination is the analyzer's contract (finite lattice, monotone-enough
// transfer); a generous step budget backstops a buggy lattice so a lint run
// can never hang the build.

import "go/ast"

// flowLattice describes one dataflow problem over states of type S.
type flowLattice[S any] struct {
	// transfer folds one atomic CFG node into the state, in place or by
	// returning a replacement.
	transfer func(S, ast.Node) S
	// join merges a predecessor's out-state (src) into a block's in-state
	// (dst), returning the merge and whether dst changed. src must not be
	// retained.
	join func(dst, src S) (S, bool)
	// clone deep-copies a state so block in-states stay independent.
	clone func(S) S
}

// flowResult is the solved dataflow: in-states per reached block and the
// joined state at function exit. exitOK is false when no path reaches the
// exit (the function always panics or loops forever).
type flowResult[S any] struct {
	in     map[*cfgBlock]S
	exit   S
	exitOK bool
}

// maxFlowSteps bounds total block evaluations per function; real functions
// converge in a few passes, so hitting this means a broken lattice, and the
// solver just stops refining (the partial result under-reports rather than
// hanging).
const maxFlowSteps = 50000

// solveForward runs the worklist to fixpoint from the given entry state.
func solveForward[S any](g *cfg, entry S, lat flowLattice[S]) flowResult[S] {
	in := map[*cfgBlock]S{g.entry: entry}
	inQueue := map[*cfgBlock]bool{g.entry: true}
	queue := []*cfgBlock{g.entry}

	steps := 0
	for len(queue) > 0 && steps < maxFlowSteps {
		steps++
		blk := queue[0]
		queue = queue[1:]
		inQueue[blk] = false

		out := lat.clone(in[blk])
		for _, n := range blk.nodes {
			out = lat.transfer(out, n)
		}
		for _, succ := range blk.succs {
			cur, ok := in[succ]
			changed := false
			if !ok {
				in[succ] = lat.clone(out)
				changed = true
			} else {
				in[succ], changed = lat.join(cur, out)
			}
			if changed && !inQueue[succ] {
				inQueue[succ] = true
				queue = append(queue, succ)
			}
		}
	}

	res := flowResult[S]{in: in}
	if exitIn, ok := in[g.exit]; ok {
		res.exit = exitIn
		res.exitOK = true
	}
	return res
}

// walkShallow visits the expression structure of one atomic CFG node,
// skipping function-literal bodies (analyzed as functions of their own) —
// the visitor still sees the FuncLit node itself, so capture analysis can
// act on it. Compound statements never reach here by CFG construction.
func walkShallow(n ast.Node, visit func(ast.Node) bool) {
	ast.Inspect(n, func(m ast.Node) bool {
		if m == nil {
			return false
		}
		if !visit(m) {
			return false
		}
		if _, isLit := m.(*ast.FuncLit); isLit {
			return false
		}
		return true
	})
}

// funcBodies enumerates every function body in the package: declared
// functions and methods plus each function literal, which the dataflow
// analyzers treat as an independent function (its captures are analyzed by
// the enclosing function's pass). The enclosing FuncDecl is reported for
// context (nil for literals in package-level var initializers).
type funcBody struct {
	decl *ast.FuncDecl // nil for a literal outside any declared function
	lit  *ast.FuncLit  // nil for a declared function
	body *ast.BlockStmt
}

func packageFuncBodies(files []*ast.File) []funcBody {
	var out []funcBody
	for _, f := range files {
		var enclosing *ast.FuncDecl
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				enclosing = n
				if n.Body != nil {
					out = append(out, funcBody{decl: n, body: n.Body})
				}
			case *ast.FuncLit:
				out = append(out, funcBody{decl: enclosing, lit: n, body: n.Body})
			}
			return true
		})
	}
	return out
}
