// Package analysis is reprolint: a vet-style static-analysis suite that
// enforces, at compile time, the invariants every figure and table of this
// reproduction rests on — bit-identical replica execution, an
// allocation-free hot loop, and the continuation engine's ownership and
// blocking discipline. Seven analyzers cover the invariant classes:
//
//   - nodeterm: no ambient wall-clock or randomness on the simulation path,
//     and no iteration-order-dependent map ranges in simulation packages.
//   - rngxonly: all randomness flows through internal/rngx streams.
//   - hotpath: functions annotated //repro:hotpath stay free of
//     allocation-prone constructs (capturing closures, fmt/errors on
//     non-panic paths, interface boxing, appends to slices the function
//     does not own).
//   - resetcomplete: every field of a type with a Reset method is assigned
//     in Reset, reached through a callee's reset, or explicitly waived with
//     //repro:reset-skip — making the stale-state bug class introduced by
//     world reuse a compile-time error.
//   - poolown: pooled values (wire envelopes, rented worlds) are never
//     touched after release/handoff and are released on every path —
//     a forward dataflow over the from-scratch CFG in cfg.go.
//   - contblock: continuation bodies never call goroutine-blocking kernel
//     primitives, channel operations, select, go, or sync/time waits.
//   - ringdiscipline: Ring indices are not reused across mutations, Reset
//     runs only on reset paths, and nothing reaches into Ring internals.
//
// Intentional exceptions use one suppression directive, //repro:allow
// <analyzer> <reason>, validated by shared machinery (unknown analyzer
// names, missing reasons and stale suppressions are themselves reported).
//
// The suite mirrors the golang.org/x/tools/go/analysis API shape but is
// implemented on the standard library alone (go/ast + go/types), because
// this repository builds hermetically with no module dependencies; see
// cmd/reprolint for the multichecker, which speaks both a standalone
// package-pattern mode and cmd/go's -vettool unit-checker protocol.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named check. Run inspects a fully type-checked package
// through its Pass and reports findings via Pass.Report.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	// Path is the package's canonical import path with cmd/go's test-variant
	// decorations ("pkg [pkg.test]") already stripped.
	Path string

	report   func(Diagnostic)
	markUsed func(token.Pos)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Analyzer: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// MarkDirectiveUsed records that the //repro: directive whose comment begins
// at pos suppressed a finding inside an analyzer (as //repro:reset-skip does
// in resetcomplete), so the shared staleness check will not flag it as dead.
func (p *Pass) MarkDirectiveUsed(pos token.Pos) {
	if p.markUsed != nil {
		p.markUsed(pos)
	}
}

// Diagnostic is one finding, attributed to the analyzer that produced it.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Package is a loaded, type-checked package ready for analysis.
type Package struct {
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	// Path is the canonical import path (test-variant decorations stripped).
	Path string
}

// NewInfo returns a types.Info with every map the analyzers consult.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
}

// Suite returns the full reprolint analyzer set, in reporting order.
func Suite() []*Analyzer {
	return []*Analyzer{NoDeterm, RngxOnly, HotPath, ResetComplete, PoolOwn, ContBlock, RingDiscipline}
}

// suiteNames is the set of analyzer names //repro:allow may reference.
func suiteNames() map[string]bool {
	names := make(map[string]bool)
	for _, a := range Suite() {
		names[a.Name] = true
	}
	return names
}

// suiteNameList renders the analyzer names in suite order, for diagnostics.
func suiteNameList() string {
	var names []string
	for _, a := range Suite() {
		names = append(names, a.Name)
	}
	return strings.Join(names, ", ")
}

// RunSuite runs the given analyzers over one package, applies the
// //repro:allow suppression machinery, validates every //repro: directive,
// and returns the surviving diagnostics sorted by position. Analyzer errors
// (not findings) abort the run.
func RunSuite(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	dirs := parseDirectives(pkg)

	byPos := make(map[token.Pos]*directive, len(dirs.dirs))
	for _, d := range dirs.dirs {
		byPos[d.pos] = d
	}
	markUsed := func(pos token.Pos) {
		if d := byPos[pos]; d != nil {
			d.used = true
		}
	}

	var raw []Diagnostic
	ran := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		ran[a.Name] = true
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			Path:     pkg.Path,
			report:   func(d Diagnostic) { raw = append(raw, d) },
			markUsed: markUsed,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %w", a.Name, err)
		}
	}

	kept := dirs.apply(pkg.Fset, raw)
	kept = append(kept, dirs.problems(pkg.Fset, ran)...)
	sort.SliceStable(kept, func(i, j int) bool {
		pi, pj := pkg.Fset.Position(kept[i].Pos), pkg.Fset.Position(kept[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return kept[i].Analyzer < kept[j].Analyzer
	})
	return kept, nil
}
