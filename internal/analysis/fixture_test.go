package analysis

// The fixture runner: an analysistest-style harness over testdata/src
// fixtures. Each fixture directory is one package; `// want` comments carry
// backquoted regexes that must match the diagnostics reported on their line,
// and every diagnostic must be claimed by an expectation. Fixtures are
// type-checked with the source importer, which compiles stdlib dependencies
// from GOROOT/src and therefore needs no network and no pre-built archives.

import (
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strings"
	"testing"
)

// runFixture analyzes testdata/src/<dir> under the given import path (the
// path matters: nodeterm's map-range and math/rand rules key on simulation
// package paths, and rngxonly exempts repro/internal/rngx) and checks the
// diagnostics against the fixture's // want comments.
func runFixture(t *testing.T, dir, path string, analyzers []*Analyzer) {
	t.Helper()
	pkg := loadFixture(t, dir, path)
	diags, err := RunSuite(pkg, analyzers)
	if err != nil {
		t.Fatalf("RunSuite: %v", err)
	}
	checkExpectations(t, pkg, diags)
}

func loadFixture(t *testing.T, dir, path string) *Package {
	t.Helper()
	return loadFixtureEdited(t, dir, path, nil)
}

// loadFixtureEdited loads a fixture with an optional source rewrite applied
// to each file before parsing — the hook the mutation tests use to delete a
// line and prove the analyzers notice.
func loadFixtureEdited(t *testing.T, dir, path string, edit func(name string, src []byte) []byte) *Package {
	t.Helper()
	fixdir := filepath.Join("testdata", "src", dir)
	entries, err := os.ReadDir(fixdir)
	if err != nil {
		t.Fatalf("reading fixture dir: %v", err)
	}
	pkg := &Package{Fset: token.NewFileSet(), Info: NewInfo(), Path: path}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		name := filepath.Join(fixdir, e.Name())
		src, err := os.ReadFile(name)
		if err != nil {
			t.Fatalf("reading fixture: %v", err)
		}
		if edit != nil {
			src = edit(e.Name(), src)
		}
		f, err := parser.ParseFile(pkg.Fset, name, src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatalf("parsing fixture: %v", err)
		}
		pkg.Files = append(pkg.Files, f)
	}
	if len(pkg.Files) == 0 {
		t.Fatalf("no .go files in %s", fixdir)
	}
	conf := types.Config{
		Importer: importer.ForCompiler(pkg.Fset, "source", nil),
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	tpkg, err := conf.Check(path, pkg.Fset, pkg.Files, pkg.Info)
	if err != nil {
		t.Fatalf("type-checking fixture: %v", err)
	}
	pkg.Types = tpkg
	return pkg
}

var wantRE = regexp.MustCompile("`([^`]*)`")

// expectation is one backquoted regex from a // want comment.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
}

func checkExpectations(t *testing.T, pkg *Package, diags []Diagnostic) {
	t.Helper()

	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				idx := strings.Index(c.Text, "// want ")
				if idx < 0 {
					continue
				}
				posn := pkg.Fset.Position(c.Pos())
				for _, m := range wantRE.FindAllStringSubmatch(c.Text[idx:], -1) {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", posn.Filename, posn.Line, m[1], err)
					}
					wants = append(wants, &expectation{file: posn.Filename, line: posn.Line, re: re})
				}
			}
		}
	}

	matched := make([]bool, len(diags))
	for _, w := range wants {
		found := false
		for i, d := range diags {
			if matched[i] {
				continue
			}
			posn := pkg.Fset.Position(d.Pos)
			if posn.Filename == w.file && posn.Line == w.line && w.re.MatchString(d.Message) {
				matched[i] = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.re)
		}
	}
	for i, d := range diags {
		if !matched[i] {
			posn := pkg.Fset.Position(d.Pos)
			t.Errorf("%s:%d: unexpected diagnostic [%s] %s", posn.Filename, posn.Line, d.Analyzer, d.Message)
		}
	}
	if t.Failed() {
		for _, d := range diags {
			posn := pkg.Fset.Position(d.Pos)
			t.Logf("got: %s:%d [%s] %s", posn.Filename, posn.Line, d.Analyzer, d.Message)
		}
	}
}

func TestNoDetermSimPackage(t *testing.T) {
	runFixture(t, "nodeterm_sim", "repro/internal/simkernel", []*Analyzer{NoDeterm})
}

func TestNoDetermNonSimPackage(t *testing.T) {
	runFixture(t, "nodeterm_nonsim", "repro/cmd/fixture", []*Analyzer{NoDeterm})
}

func TestRngxOnly(t *testing.T) {
	runFixture(t, "rngxonly", "repro/internal/stats", []*Analyzer{RngxOnly})
}

// TestRngxOnlyExemptsRngxItself proves the one sanctioned math/rand consumer
// stays silent, including its test variant.
func TestRngxOnlyExemptsRngxItself(t *testing.T) {
	runFixture(t, "rngxonly_exempt", "repro/internal/rngx", []*Analyzer{RngxOnly})
	runFixture(t, "rngxonly_exempt", "repro/internal/rngx [repro/internal/rngx.test]", []*Analyzer{RngxOnly})
}

func TestHotPath(t *testing.T) {
	runFixture(t, "hotpath", "repro/internal/simkernel", []*Analyzer{HotPath})
}

func TestResetComplete(t *testing.T) {
	runFixture(t, "resetcomplete", "repro/internal/pfs", []*Analyzer{ResetComplete})
}

func TestPoolOwn(t *testing.T) {
	runFixture(t, "poolown", "repro/internal/core", []*Analyzer{PoolOwn})
}

func TestContBlock(t *testing.T) {
	runFixture(t, "contblock", "repro/internal/simkernel", []*Analyzer{ContBlock})
}

func TestRingDiscipline(t *testing.T) {
	runFixture(t, "ringdiscipline", "repro/internal/simkernel", []*Analyzer{RingDiscipline})
}

// TestAllowMachinery exercises the shared directive machinery itself: unknown
// analyzer names, missing reasons, stale allows, misplaced annotations. The
// full suite runs so stale-allow detection is active for every analyzer.
func TestAllowMachinery(t *testing.T) {
	runFixture(t, "allow", "repro/internal/fixture", Suite())
}

// TestSortedDiagnostics pins the deterministic output order RunSuite
// guarantees (file, then line, then column, then analyzer).
func TestSortedDiagnostics(t *testing.T) {
	pkg := loadFixture(t, "nodeterm_sim", "repro/internal/simkernel")
	diags, err := RunSuite(pkg, Suite())
	if err != nil {
		t.Fatalf("RunSuite: %v", err)
	}
	sorted := sort.SliceIsSorted(diags, func(i, j int) bool {
		pi, pj := pkg.Fset.Position(diags[i].Pos), pkg.Fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return pi.Column < pj.Column
	})
	if !sorted {
		t.Errorf("diagnostics not sorted by position")
	}
}
