package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ContBlock rejects goroutine-blocking operations inside continuation
// bodies. The run-to-completion engine resumes a *ContProc inline on the
// kernel's event loop; anything that parks the calling goroutine there —
// the goroutine-engine kernel primitives (Mailbox.Recv, Resource.Acquire,
// Proc.Sleep, the mpisim collectives), raw channel operations, select,
// spawning goroutines, sync/time primitives — deadlocks the simulation or
// silently serializes it. Only the cont variants (RecvCont/RecvOp,
// AcquireCont, WaitCont, ContProc.SleepUntil chains) are legal.
//
// The audit scope is the same receiver-propagated set hotpath uses: any
// function taking a *ContProc and every method of a continuation machine.
// Exempt are test files, functions taking a *simkernel.Proc (they ARE
// goroutine-engine bodies: many machines serve both engines), and the
// blocking primitives' own implementations. The SC/C pump boundary and
// other deliberate crossings carry //repro:allow contblock <reason>.
var ContBlock = &Analyzer{
	Name: "contblock",
	Doc:  "continuation bodies must not call goroutine-blocking kernel or runtime primitives",
	Run:  runContBlock,
}

const mpisimPkg = "repro/internal/mpisim"

// blockedOp identifies one goroutine-blocking method by package, receiver
// type, and name.
type blockedOp struct{ pkg, recv, name string }

// blockedOps maps each blocking primitive to its continuation-legal
// replacement (empty when there is none and the design must change).
var blockedOps = map[blockedOp]string{
	{contProcPkg, "Mailbox", "Recv"}:      "RecvCont with a RecvOp",
	{contProcPkg, "Resource", "Acquire"}:  "AcquireCont",
	{contProcPkg, "Signal", "Wait"}:       "WaitCont",
	{contProcPkg, "WaitGroup", "Wait"}:    "WaitCont",
	{contProcPkg, "Proc", "Sleep"}:        "ContProc.Sleep",
	{contProcPkg, "Proc", "SleepSeconds"}: "ContProc.SleepSeconds",
	{contProcPkg, "Proc", "SleepUntil"}:   "ContProc.SleepUntil",
	{contProcPkg, "Proc", "Suspend"}:      "a cont pause (Pause and resume via Waker)",
	{contProcPkg, "Kernel", "Run"}:        "",
	{contProcPkg, "Kernel", "RunUntil"}:   "",
	{mpisimPkg, "Rank", "Recv"}:           "RecvCont",
	{mpisimPkg, "Rank", "RecvAs"}:         "RecvCont",
	{mpisimPkg, "Rank", "Barrier"}:        "",
	{mpisimPkg, "Rank", "Gather"}:         "",
	{mpisimPkg, "Rank", "Bcast"}:          "",
	{mpisimPkg, "Rank", "ReduceFloat64"}:  "",
}

func runContBlock(pass *Pass) error {
	machines := contMachines(pass)
	for _, f := range pass.Files {
		if isTestFile(pass, f) {
			continue
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if !implicitlyHot(pass, fn, machines) {
				continue
			}
			// A goroutine-engine body by signature: machines serving both
			// engines implement the blocking variant with a *Proc parameter.
			if hasSimkernelPtrParam(pass, fn.Type, "Proc") {
				continue
			}
			// The blocking primitives' own implementations are the one place
			// blocking is the job.
			if isBlockedOpDecl(pass, fn) {
				continue
			}
			checkContFunc(pass, fn)
		}
	}
	return nil
}

// isBlockedOpDecl reports whether fn declares one of the blocked primitives.
func isBlockedOpDecl(pass *Pass, fn *ast.FuncDecl) bool {
	tn := recvTypeName(pass, fn)
	if tn == nil {
		return false
	}
	_, ok := blockedOps[blockedOp{pass.Pkg.Path(), tn.Name(), fn.Name.Name}]
	return ok
}

func checkContFunc(pass *Pass, fn *ast.FuncDecl) {
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// Literals handed to the goroutine engine (func(p *Proc)) are
			// goroutine bodies and may block.
			if hasSimkernelPtrParam(pass, n.Type, "Proc") {
				return false
			}
		case *ast.CallExpr:
			checkContCall(pass, n)
		case *ast.GoStmt:
			pass.Reportf(n.Pos(), "go statement in a continuation body: the event loop must stay single-threaded and run-to-completion; use Kernel.SpawnCont (or waive with //repro:allow contblock <reason>)")
		case *ast.SendStmt:
			pass.Reportf(n.Pos(), "channel send in a continuation body parks the event-loop goroutine; use a kernel Mailbox (or waive with //repro:allow contblock <reason>)")
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				pass.Reportf(n.Pos(), "channel receive in a continuation body parks the event-loop goroutine; use Mailbox.RecvCont (or waive with //repro:allow contblock <reason>)")
			}
		case *ast.SelectStmt:
			pass.Reportf(n.Pos(), "select in a continuation body parks the event-loop goroutine; continuations resume from kernel wakeups instead (or waive with //repro:allow contblock <reason>)")
		case *ast.RangeStmt:
			if t := pass.Info.Types[n.X].Type; t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					pass.Reportf(n.Pos(), "range over a channel in a continuation body parks the event-loop goroutine; drain a kernel Mailbox instead (or waive with //repro:allow contblock <reason>)")
				}
			}
		}
		return true
	}
	ast.Inspect(fn.Body, walk)
}

func checkContCall(pass *Pass, call *ast.CallExpr) {
	fn := calleeFunc(pass.Info, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	if isPkgFunc(fn, "time", "Sleep") {
		pass.Reportf(call.Pos(), "time.Sleep blocks the event-loop goroutine and wall-clock time does not exist in the simulation; use ContProc.Sleep (or waive with //repro:allow contblock <reason>)")
		return
	}
	recv := methodRecvTypeName(fn)
	if recv == nil {
		return
	}
	if fn.Pkg().Path() == "sync" {
		pass.Reportf(call.Pos(), "sync.%s.%s in a continuation body can park the event-loop goroutine; the kernel is single-threaded and needs no locking (or waive with //repro:allow contblock <reason>)", recv.Name(), fn.Name())
		return
	}
	op := blockedOp{fn.Pkg().Path(), recv.Name(), fn.Name()}
	alt, ok := blockedOps[op]
	if !ok {
		return
	}
	msg := recv.Name() + "." + fn.Name() + " suspends the calling goroutine; a continuation body resumes inline on the event loop and must never block"
	if alt != "" {
		msg += "; use " + alt
	}
	pass.Reportf(call.Pos(), "%s (or waive with //repro:allow contblock <reason>)", msg)
}

// methodRecvTypeName returns the named type a *types.Func is a method on,
// or nil for plain functions.
func methodRecvTypeName(fn *types.Func) *types.TypeName {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	return namedTypeName(sig.Recv().Type())
}
