package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// The //repro: directive grammar. Three kinds exist:
//
//	//repro:allow <analyzer> <reason...>   suppress one analyzer's findings
//	                                       on this line (trailing comment) or
//	                                       the next line (standalone comment)
//	//repro:hotpath                        mark a function (doc comment) for
//	                                       the hotpath analyzer
//	//repro:reset-skip <reason...>         waive one struct field (doc or
//	                                       trailing comment) from the
//	                                       resetcomplete analyzer
//
// Unknown kinds, unknown analyzer names, missing reasons, misplaced
// annotations and allows that no longer suppress anything are all reported
// by the suite itself.
const (
	directivePrefix = "//repro:"
	kindAllow       = "allow"
	kindHotpath     = "hotpath"
	kindResetSkip   = "reset-skip"
)

// directive is one parsed //repro: comment.
type directive struct {
	pos  token.Pos
	kind string
	args string // text after the kind, space-trimmed

	// allow fields
	analyzer   string
	reason     string
	targetFile string
	targetLine int

	// used means the directive earned its keep this run: an allow that
	// suppressed a diagnostic, or a reset-skip that excused a field its Reset
	// method really does not handle.
	used bool

	// attachment classification (for hotpath / reset-skip placement checks)
	inFuncDoc bool
	onField   bool
	malformed bool
}

type directiveSet struct {
	dirs []*directive
}

// parseDirective splits one comment's text into a directive, or returns nil
// when the comment is not a //repro: comment.
func parseDirective(c *ast.Comment) *directive {
	if !strings.HasPrefix(c.Text, directivePrefix) {
		return nil
	}
	rest := c.Text[len(directivePrefix):]
	// A directive owns its comment only up to an embedded "//": line comments
	// run to end of line, so this is what lets a trailing remark (or a test
	// fixture's "// want" expectation) follow the directive.
	if i := strings.Index(rest, "//"); i >= 0 {
		rest = strings.TrimRight(rest[:i], " \t")
	}
	kind := rest
	args := ""
	if i := strings.IndexAny(rest, " \t"); i >= 0 {
		kind, args = rest[:i], strings.TrimSpace(rest[i+1:])
	}
	return &directive{pos: c.Pos(), kind: kind, args: args}
}

// parseDirectives walks every comment of the package, classifies each
// //repro: directive, and resolves the target line of each allow.
func parseDirectives(pkg *Package) *directiveSet {
	set := &directiveSet{}
	for _, f := range pkg.Files {
		// Positions of comments that are a function's doc comment or attach
		// to a struct field, for placement validation.
		funcDoc := map[token.Pos]bool{}
		fieldDoc := map[token.Pos]bool{}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				markComments(funcDoc, n.Doc)
			case *ast.Field:
				markComments(fieldDoc, n.Doc)
				markComments(fieldDoc, n.Comment)
			}
			return true
		})

		// Lines that carry code, for trailing-versus-standalone allows. Any
		// syntax node starting on a line before the comment counts.
		codeBefore := func(c *ast.Comment) bool {
			line := pkg.Fset.Position(c.Pos()).Line
			found := false
			ast.Inspect(f, func(n ast.Node) bool {
				if n == nil || found {
					return false
				}
				if _, isComment := n.(*ast.Comment); isComment {
					return false
				}
				if _, isGroup := n.(*ast.CommentGroup); isGroup {
					return false
				}
				if n.Pos().IsValid() && n.Pos() < c.Pos() && pkg.Fset.Position(n.Pos()).Line == line {
					found = true
					return false
				}
				return true
			})
			return found
		}

		for _, cg := range f.Comments {
			for _, c := range cg.List {
				d := parseDirective(c)
				if d == nil {
					continue
				}
				d.inFuncDoc = funcDoc[c.Pos()]
				d.onField = fieldDoc[c.Pos()]
				if d.kind == kindAllow {
					fields := strings.Fields(d.args)
					if len(fields) > 0 {
						d.analyzer = fields[0]
						d.reason = strings.TrimSpace(d.args[len(fields[0]):])
					}
					posn := pkg.Fset.Position(c.Pos())
					d.targetFile = posn.Filename
					d.targetLine = posn.Line
					if !codeBefore(c) {
						d.targetLine++ // standalone comment guards the next line
					}
				}
				set.dirs = append(set.dirs, d)
			}
		}
	}
	return set
}

func markComments(set map[token.Pos]bool, cg *ast.CommentGroup) {
	if cg == nil {
		return
	}
	for _, c := range cg.List {
		set[c.Pos()] = true
	}
}

// apply filters out diagnostics covered by a well-formed allow directive,
// marking the directives it consumes.
func (s *directiveSet) apply(fset *token.FileSet, diags []Diagnostic) []Diagnostic {
	var kept []Diagnostic
	for _, d := range diags {
		posn := fset.Position(d.Pos)
		suppressed := false
		for _, dir := range s.dirs {
			if dir.kind != kindAllow || dir.analyzer != d.Analyzer || dir.reason == "" {
				continue
			}
			if dir.targetFile == posn.Filename && dir.targetLine == posn.Line {
				dir.used = true
				suppressed = true
			}
		}
		if !suppressed {
			kept = append(kept, d)
		}
	}
	return kept
}

// problems validates every directive: grammar, placement, and staleness.
// ran is the set of analyzers that executed in this suite run; an allow for
// an analyzer that did not run is never reported as unused.
func (s *directiveSet) problems(fset *token.FileSet, ran map[string]bool) []Diagnostic {
	known := suiteNames()
	var out []Diagnostic
	report := func(d *directive, format string, args ...any) {
		d.malformed = true
		out = append(out, Diagnostic{Pos: d.pos, Analyzer: "reprolint", Message: fmt.Sprintf(format, args...)})
	}
	for _, d := range s.dirs {
		switch d.kind {
		case kindAllow:
			switch {
			case d.analyzer == "":
				report(d, "//repro:allow needs an analyzer name and a reason")
			case !known[d.analyzer]:
				report(d, "//repro:allow names unknown analyzer %q (have %s)", d.analyzer, suiteNameList())
			case d.reason == "":
				report(d, "//repro:allow %s needs a reason", d.analyzer)
			case ran[d.analyzer] && !d.used:
				report(d, "unused //repro:allow %s: no %s finding on the guarded line (stale suppression — delete it)", d.analyzer, d.analyzer)
			}
		case kindHotpath:
			switch {
			case d.args != "":
				report(d, "//repro:hotpath takes no arguments")
			case !d.inFuncDoc:
				report(d, "misplaced //repro:hotpath: it must appear in a function's doc comment")
			}
		case kindResetSkip:
			switch {
			case d.args == "":
				report(d, "//repro:reset-skip needs a reason")
			case !d.onField:
				report(d, "misplaced //repro:reset-skip: it must be attached to a struct field")
			case ran["resetcomplete"] && !d.used:
				report(d, "unused //repro:reset-skip: the field is reset anyway or its type has no Reset method (stale waiver — delete it)")
			}
		default:
			report(d, "unknown //repro: directive %q (have allow, hotpath, reset-skip)", d.kind)
		}
	}
	return out
}

// hasHotpathDirective reports whether fn's doc comment carries
// //repro:hotpath.
func hasHotpathDirective(fn *ast.FuncDecl) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if d := parseDirective(c); d != nil && d.kind == kindHotpath {
			return true
		}
	}
	return false
}

// resetSkipReason returns the //repro:reset-skip reason attached to a struct
// field, if any, along with the directive comment's position (the key the
// staleness check matches on via Pass.MarkDirectiveUsed).
func resetSkipReason(field *ast.Field) (string, token.Pos, bool) {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			if d := parseDirective(c); d != nil && d.kind == kindResetSkip && d.args != "" {
				return d.args, d.pos, true
			}
		}
	}
	return "", token.NoPos, false
}
