package analysis

// Control-flow graphs over go/ast, for the dataflow-backed analyzers
// (poolown, ringdiscipline). x/tools is unobtainable in this module's
// hermetic build, so this is a from-scratch intraprocedural CFG builder in
// the spirit of golang.org/x/tools/go/cfg, reduced to what forward dataflow
// over statements needs.
//
// Each basic block holds a list of *atomic* nodes — simple statements and
// bare condition/tag expressions — in execution order. Compound statements
// never appear as block nodes: an if contributes its init and cond to the
// current block and branches; a for contributes head/body/post blocks; a
// switch contributes a chain of case-test blocks (Go evaluates case
// expressions in order) feeding per-clause body blocks, with fallthrough
// edges between bodies. Analyzers can therefore fold a transfer function
// over block nodes without ever double-visiting a nested statement.
//
// Panic calls terminate their block with no successors: state on a panic
// path never reaches the function exit, which is what lets poolown treat
// "rented but panicking" as not-a-leak.

import (
	"go/ast"
	"go/token"
)

// cfgBlock is one basic block.
type cfgBlock struct {
	index int
	nodes []ast.Node
	succs []*cfgBlock
}

// cfg is the control-flow graph of one function body. entry has no
// predecessors; exit collects every return and the fall-off-the-end path
// and holds no nodes of its own.
type cfg struct {
	entry, exit *cfgBlock
	blocks      []*cfgBlock
}

// loopFrame tracks the break/continue targets of an enclosing breakable
// statement. cont is nil for switch/select frames (continue skips them).
type loopFrame struct {
	label string
	brk   *cfgBlock
	cont  *cfgBlock
}

type cfgBuilder struct {
	c      *cfg
	cur    *cfgBlock // nil after a terminator: subsequent code is unreachable
	frames []loopFrame

	labels   map[string]*cfgBlock
	gotos    []pendingGoto
	ftTarget *cfgBlock // body block of the next case clause, if any
}

type pendingGoto struct {
	from  *cfgBlock
	label string
}

// buildCFG constructs the graph for one function body.
func buildCFG(body *ast.BlockStmt) *cfg {
	b := &cfgBuilder{c: &cfg{}, labels: map[string]*cfgBlock{}}
	b.c.entry = b.newBlock()
	b.c.exit = b.newBlock()
	b.cur = b.c.entry
	b.stmts(body.List)
	if b.cur != nil {
		b.edge(b.cur, b.c.exit)
	}
	for _, g := range b.gotos {
		if target, ok := b.labels[g.label]; ok {
			b.edge(g.from, target)
		}
	}
	return b.c
}

func (b *cfgBuilder) newBlock() *cfgBlock {
	blk := &cfgBlock{index: len(b.c.blocks)}
	b.c.blocks = append(b.c.blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *cfgBlock) {
	for _, s := range from.succs {
		if s == to {
			return
		}
	}
	from.succs = append(from.succs, to)
}

// add appends an atomic node to the current block, opening an unreachable
// block when the previous statement terminated control flow.
func (b *cfgBuilder) add(n ast.Node) {
	if n == nil {
		return
	}
	if b.cur == nil {
		b.cur = b.newBlock() // unreachable code keeps a home, with no preds
	}
	b.cur.nodes = append(b.cur.nodes, n)
}

// startBlock ends the current block (edge to next) and makes next current.
func (b *cfgBuilder) startBlock(next *cfgBlock) {
	if b.cur != nil {
		b.edge(b.cur, next)
	}
	b.cur = next
}

func (b *cfgBuilder) stmts(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s, "")
	}
}

// stmt lowers one statement. label carries an immediately enclosing label
// for loop/switch/select frames.
func (b *cfgBuilder) stmt(s ast.Stmt, label string) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmts(s.List)

	case *ast.LabeledStmt:
		target := b.newBlock()
		b.startBlock(target)
		b.labels[s.Label.Name] = target
		b.stmt(s.Stmt, s.Label.Name)

	case *ast.IfStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Cond)
		then := b.newBlock()
		after := b.newBlock()
		if b.cur != nil {
			b.edge(b.cur, then)
		}
		var els *cfgBlock
		if s.Else != nil {
			els = b.newBlock()
			if b.cur != nil {
				b.edge(b.cur, els)
			}
		} else if b.cur != nil {
			b.edge(b.cur, after)
		}
		b.cur = then
		b.stmts(s.Body.List)
		if b.cur != nil {
			b.edge(b.cur, after)
		}
		if s.Else != nil {
			b.cur = els
			b.stmt(s.Else, "")
			if b.cur != nil {
				b.edge(b.cur, after)
			}
		}
		b.cur = after

	case *ast.ForStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		head := b.newBlock()
		body := b.newBlock()
		after := b.newBlock()
		post := head
		if s.Post != nil {
			post = b.newBlock()
		}
		b.startBlock(head)
		if s.Cond != nil {
			b.add(s.Cond)
			b.edge(head, after)
		}
		b.edge(head, body)
		b.frames = append(b.frames, loopFrame{label: label, brk: after, cont: post})
		b.cur = body
		b.stmts(s.Body.List)
		b.frames = b.frames[:len(b.frames)-1]
		if b.cur != nil {
			b.edge(b.cur, post)
		}
		if s.Post != nil {
			b.cur = post
			b.add(s.Post)
			b.edge(post, head)
		}
		b.cur = after

	case *ast.RangeStmt:
		b.add(s.X) // the range operand is evaluated once, before the loop
		head := b.newBlock()
		body := b.newBlock()
		after := b.newBlock()
		b.startBlock(head)
		// Key/Value bindings happen per iteration; expose them as head nodes
		// so transfer functions see the assignments.
		if s.Key != nil {
			b.add(s.Key)
		}
		if s.Value != nil {
			b.add(s.Value)
		}
		b.edge(head, body)
		b.edge(head, after)
		b.frames = append(b.frames, loopFrame{label: label, brk: after, cont: head})
		b.cur = body
		b.stmts(s.Body.List)
		b.frames = b.frames[:len(b.frames)-1]
		if b.cur != nil {
			b.edge(b.cur, head)
		}
		b.cur = after

	case *ast.SwitchStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.switchClauses(s.Body.List, label)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Assign)
		b.switchClauses(s.Body.List, label)

	case *ast.SelectStmt:
		// Every comm clause is a potential successor; without a default the
		// select blocks (irrelevant to dataflow: no state change while
		// parked).
		head := b.cur
		if head == nil {
			head = b.newBlock()
			b.cur = head
		}
		after := b.newBlock()
		b.frames = append(b.frames, loopFrame{label: label, brk: after})
		for _, cl := range s.Body.List {
			comm := cl.(*ast.CommClause)
			blk := b.newBlock()
			b.edge(head, blk)
			b.cur = blk
			if comm.Comm != nil {
				b.add(comm.Comm)
			}
			b.stmts(comm.Body)
			if b.cur != nil {
				b.edge(b.cur, after)
			}
		}
		b.frames = b.frames[:len(b.frames)-1]
		b.cur = after

	case *ast.ReturnStmt:
		b.add(s)
		if b.cur != nil {
			b.edge(b.cur, b.c.exit)
		}
		b.cur = nil

	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			if t := b.findFrame(s.Label, false); t != nil && b.cur != nil {
				b.edge(b.cur, t.brk)
			}
			b.cur = nil
		case token.CONTINUE:
			if t := b.findFrame(s.Label, true); t != nil && b.cur != nil {
				b.edge(b.cur, t.cont)
			}
			b.cur = nil
		case token.GOTO:
			if b.cur != nil {
				b.gotos = append(b.gotos, pendingGoto{from: b.cur, label: s.Label.Name})
			}
			b.cur = nil
		case token.FALLTHROUGH:
			if b.cur != nil && b.ftTarget != nil {
				b.edge(b.cur, b.ftTarget)
			}
			b.cur = nil
		}

	case *ast.ExprStmt:
		b.add(s)
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok && isPanicCall(call) {
			b.cur = nil // state on a panic path never reaches exit
		}

	default:
		// Assign, Decl, IncDec, Send, Defer, Go, Empty: atomic.
		b.add(s)
	}
}

// switchClauses lowers (type) switch clause lists: a chain of case-test
// blocks in source order (Go evaluates case expressions sequentially),
// each feeding its clause body; fallthrough edges link adjacent bodies.
func (b *cfgBuilder) switchClauses(clauses []ast.Stmt, label string) {
	after := b.newBlock()
	head := b.cur
	if head == nil {
		head = b.newBlock()
		b.cur = head
	}

	bodies := make([]*cfgBlock, len(clauses))
	for i := range clauses {
		bodies[i] = b.newBlock()
	}

	test := head
	defaultIdx := -1
	for i, cs := range clauses {
		cc := cs.(*ast.CaseClause)
		if cc.List == nil {
			defaultIdx = i
			continue
		}
		next := b.newBlock()
		b.cur = test
		for _, e := range cc.List {
			b.add(e)
		}
		b.edge(test, bodies[i])
		b.edge(test, next)
		test = next
	}
	// The final test block falls through to the default body, or out.
	if defaultIdx >= 0 {
		b.edge(test, bodies[defaultIdx])
	} else {
		b.edge(test, after)
	}

	b.frames = append(b.frames, loopFrame{label: label, brk: after})
	for i, cs := range clauses {
		cc := cs.(*ast.CaseClause)
		b.ftTarget = nil
		if i+1 < len(bodies) {
			b.ftTarget = bodies[i+1]
		}
		b.cur = bodies[i]
		b.stmts(cc.Body)
		if b.cur != nil {
			b.edge(b.cur, after)
		}
	}
	b.ftTarget = nil
	b.frames = b.frames[:len(b.frames)-1]
	b.cur = after
}

// findFrame resolves a break/continue target. needLoop restricts the search
// to frames with a continue target (loops).
func (b *cfgBuilder) findFrame(label *ast.Ident, needLoop bool) *loopFrame {
	for i := len(b.frames) - 1; i >= 0; i-- {
		f := &b.frames[i]
		if needLoop && f.cont == nil {
			continue
		}
		if label == nil || f.label == label.Name {
			return f
		}
	}
	return nil
}

// isPanicCall reports whether the call is a direct call to the panic
// builtin. It is syntactic (no Info): shadowing panic would defeat it, and
// nothing in this module does.
func isPanicCall(call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic"
}
