package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// basePath canonicalizes a package path for policy decisions: cmd/go's
// test-variant decoration ("pkg [pkg.test]") and the external-test suffix
// ("pkg_test") are stripped, so a package and its test packages are governed
// by the same rules.
func basePath(path string) string {
	if i := strings.Index(path, " ["); i >= 0 {
		path = path[:i]
	}
	path = strings.TrimSuffix(path, "_test")
	return path
}

// simPackages are the import paths (exact or prefix) whose code executes
// inside — or constructs — the deterministic simulation: everything whose
// behaviour feeds a golden checksum. Map iteration order and ambient
// randomness in these packages silently change experiment bits.
var simPackages = []string{
	"repro/adios",
	"repro/cluster",
	"repro/metrics",
	"repro/internal/bp",
	"repro/internal/core",
	"repro/internal/experiments",
	"repro/internal/interference",
	"repro/internal/iomethod",
	"repro/internal/ior",
	"repro/internal/machines",
	"repro/internal/mpisim",
	"repro/internal/pfs",
	"repro/internal/runner",
	"repro/internal/scenario",
	"repro/internal/simkernel",
	"repro/internal/stats",
	"repro/internal/trace",
	"repro/internal/transports",
	"repro/internal/workloads",
}

// isSimPackage reports whether the (canonicalized) package path is on the
// simulation path.
func isSimPackage(path string) bool {
	p := basePath(path)
	for _, s := range simPackages {
		if p == s || strings.HasPrefix(p, s+"/") {
			return true
		}
	}
	return false
}

// calleeFunc resolves a call expression to its static callee, or nil for
// dynamic calls, builtins and conversions.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// isPkgFunc reports whether fn is the package-level function pkgPath.name
// (methods never match).
func isPkgFunc(fn *types.Func, pkgPath, name string) bool {
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
		return false
	}
	return fn.Pkg().Path() == pkgPath && fn.Name() == name
}

// isBuiltin reports whether the call invokes the named builtin.
func isBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = info.Uses[id].(*types.Builtin)
	return ok
}

// stmtLists collects every statement list in the file (block bodies, case
// and comm clause bodies), for checks that need a statement's successors.
func stmtLists(f *ast.File) [][]ast.Stmt {
	var lists [][]ast.Stmt
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BlockStmt:
			lists = append(lists, n.List)
		case *ast.CaseClause:
			lists = append(lists, n.Body)
		case *ast.CommClause:
			lists = append(lists, n.Body)
		}
		return true
	})
	return lists
}

// unlabel unwraps labeled statements.
func unlabel(s ast.Stmt) ast.Stmt {
	for {
		l, ok := s.(*ast.LabeledStmt)
		if !ok {
			return s
		}
		s = l.Stmt
	}
}

// localVar reports whether obj is a function-local variable (not a field,
// not package-level).
func localVar(pkg *types.Package, obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() || v.Pkg() == nil {
		return false
	}
	return v.Parent() != pkg.Scope() && v.Parent() != types.Universe
}
