package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
)

// Load type-checks the packages matching the patterns (relative to dir) and
// returns them ready for RunSuite. It shells out to `go list -test -deps
// -export -json`, which works offline: export data for dependencies comes out
// of the build cache, so no network and no GOPATH layout is required. Test
// variants replace their plain packages (mirroring `go vet`), so _test.go
// files are analyzed too.
func Load(dir string, patterns ...string) ([]*Package, error) {
	return load(dir, nil, patterns)
}

// listEntry is the subset of `go list -json` output the loader consumes.
type listEntry struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	ForTest    string
	ImportMap  map[string]string
}

// load implements Load with an optional source overlay (absolute filename →
// contents) so tests can type-check mutated sources against cached export
// data without touching the tree.
func load(dir string, overlay map[string][]byte, patterns []string) ([]*Package, error) {
	entries, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}

	exportOf := map[string]string{}
	hasTestVariant := map[string]bool{}
	for _, e := range entries {
		if e.Export != "" {
			exportOf[e.ImportPath] = e.Export
		}
		if e.ForTest != "" {
			hasTestVariant[e.ForTest] = true
		}
	}

	fset := token.NewFileSet()
	var pkgs []*Package
	for _, e := range entries {
		switch {
		case e.Standard:
			continue // this module has no external deps; non-standard == ours
		case strings.HasSuffix(e.ImportPath, ".test"):
			continue // generated test-main package
		case e.ForTest == "" && hasTestVariant[e.ImportPath]:
			continue // superseded by its test variant, which includes these files
		}
		pkg, err := typecheckUnit(fset, e, overlay, exportOf)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

func goList(dir string, patterns []string) ([]*listEntry, error) {
	args := append([]string{
		"list", "-test", "-deps", "-export",
		"-json=ImportPath,Dir,GoFiles,Export,Standard,ForTest,ImportMap",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("`go list -test -deps -export %s` failed (run reprolint from inside the module, and fix compile errors before linting): %v\n%s",
			strings.Join(patterns, " "), err, strings.TrimSpace(stderr.String()))
	}
	var entries []*listEntry
	dec := json.NewDecoder(&stdout)
	for {
		e := new(listEntry)
		if err := dec.Decode(e); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		entries = append(entries, e)
	}
	return entries, nil
}

// typecheckUnit parses and type-checks one go list entry from source,
// resolving imports through cached export data (with the entry's ImportMap
// applied, so an external test package sees its subject's test-variant
// export).
func typecheckUnit(fset *token.FileSet, e *listEntry, overlay map[string][]byte, exportOf map[string]string) (*Package, error) {
	pkg := &Package{Fset: fset, Info: NewInfo(), Path: e.ImportPath}
	if i := strings.Index(pkg.Path, " ["); i >= 0 {
		pkg.Path = pkg.Path[:i]
	}
	for _, name := range e.GoFiles {
		filename := filepath.Join(e.Dir, name)
		var src any
		if overlay != nil {
			if b, ok := overlay[filename]; ok {
				src = b
			}
		}
		f, err := parser.ParseFile(fset, filename, src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		pkg.Files = append(pkg.Files, f)
	}

	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := e.ImportMap[path]; ok {
			path = mapped
		}
		exp, ok := exportOf[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q: `go list -export` left it unbuilt — the build cache entry is missing or stale; run `go build ./...` and retry", path)
		}
		return os.Open(exp)
	}
	conf := types.Config{
		Importer: importer.ForCompiler(fset, "gc", lookup),
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	tpkg, err := conf.Check(pkg.Path, fset, pkg.Files, pkg.Info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", e.ImportPath, err)
	}
	pkg.Types = tpkg
	return pkg, nil
}
