package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// RingDiscipline enforces the usage rules of simkernel.Ring, the in-place
// circular buffer every hot queue moved onto:
//
//   - R1 (dataflow): an index used with At/RemoveAt goes stale the moment
//     the same ring is mutated underneath it (Pop shifts every logical
//     index, RemoveAt shifts everything at or after the hole, Reset empties
//     the ring); reusing a stale index reads or removes the wrong element.
//     Recomputing the index (any assignment or ++/--) refreshes it. Push is
//     deliberately not a staleness point: it appends at the tail and keeps
//     existing logical indices valid.
//   - R2: Ring.Reset drops queued elements on the floor, which is only
//     sound during world reset; calls are legal from a function named
//     Reset/reset or a literal registered with Kernel.OnReset, and flagged
//     anywhere else.
//   - R3: code outside Ring's own methods must not touch the buf/head/n
//     internals — in particular &ring.buf[i] dangles across the reallocating
//     Push and the index-remapping mutations.
//
// Test files are exempt; deliberate violations carry //repro:allow
// ringdiscipline <reason>.
var RingDiscipline = &Analyzer{
	Name: "ringdiscipline",
	Doc:  "Ring indices must not be reused across mutations, Reset only on reset paths, no internal field access",
	Run:  runRingDiscipline,
}

// ringStaleOps are the Ring methods that remap or invalidate logical
// indices.
var ringStaleOps = map[string]bool{"Pop": true, "RemoveAt": true, "Reset": true}

// ringInternals are Ring's private fields (reachable only inside simkernel
// and fixtures loaded under its path, which is exactly where the hazard
// lives).
var ringInternals = map[string]bool{"buf": true, "head": true, "n": true}

func runRingDiscipline(pass *Pass) error {
	for _, f := range pass.Files {
		if isTestFile(pass, f) {
			continue
		}
		checkRingStatic(pass, f)
		for _, fb := range packageFuncBodies([]*ast.File{f}) {
			rf := &ringFunc{pass: pass, reports: map[string]Diagnostic{}}
			rf.analyze(fb.body)
		}
	}
	return nil
}

// isRingExpr reports whether an expression is a (pointer to) simkernel.Ring
// value, generic instance or fixture mirror alike.
func isRingExpr(pass *Pass, e ast.Expr) bool {
	tn := namedTypeName(pass.Info.Types[e].Type)
	return tn != nil && tn.Name() == "Ring" && tn.Pkg() != nil && tn.Pkg().Path() == contProcPkg
}

// ringMethodCall matches a method call on a ring and returns the receiver
// expression and method name.
func ringMethodCall(pass *Pass, call *ast.CallExpr) (ast.Expr, string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || !isRingExpr(pass, sel.X) {
		return nil, "", false
	}
	return sel.X, sel.Sel.Name, true
}

// checkRingStatic walks one file for the two syntactic rules: Reset callers
// (R2) and internal-field access (R3).
func checkRingStatic(pass *Pass, f *ast.File) {
	for _, decl := range f.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Body == nil {
			continue
		}
		tn := recvTypeName(pass, fn)
		ringRecv := tn != nil && tn.Name() == "Ring"
		resetPath := strings.EqualFold(fn.Name.Name, "reset")
		checkRingBody(pass, f, fn.Body, resetPath, ringRecv)
	}
}

// checkRingBody applies R2/R3 inside one function body. resetPath and
// ringRecv carry the enclosing sanction into nested literals: code inside a
// Reset method (or an OnReset hook) stays sanctioned however deeply it
// nests.
func checkRingBody(pass *Pass, f *ast.File, body *ast.BlockStmt, resetPath, ringRecv bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			checkRingBody(pass, f, n.Body, resetPath || litIsOnResetArg(f, n), ringRecv)
			return false
		case *ast.CallExpr:
			if _, name, ok := ringMethodCall(pass, n); ok && name == "Reset" && !resetPath && !ringRecv {
				pass.Reportf(n.Pos(), "Ring.Reset discards queued elements and is only sound during world reset; call it from a Reset method or a Kernel.OnReset hook (or waive with //repro:allow ringdiscipline <reason>)")
			}
		case *ast.SelectorExpr:
			if ringInternals[n.Sel.Name] && isRingExpr(pass, n.X) && !ringRecv {
				pass.Reportf(n.Sel.Pos(), "direct access to Ring.%s outside Ring's methods: slot pointers and raw indices dangle across Push's reallocation and RemoveAt's remapping; go through the Ring API (or waive with //repro:allow ringdiscipline <reason>)", n.Sel.Name)
			}
		}
		return true
	})
}

// litIsOnResetArg reports whether the literal appears as an argument of a
// call to a method named OnReset.
func litIsOnResetArg(f *ast.File, lit *ast.FuncLit) bool {
	found := false
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		name := ""
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.SelectorExpr:
			name = fun.Sel.Name
		case *ast.Ident:
			name = fun.Name
		}
		if name != "OnReset" {
			return true
		}
		for _, arg := range call.Args {
			if ast.Unparen(arg) == lit {
				found = true
			}
		}
		return true
	})
	return found
}

// ringIdx is one index variable's binding: the ring chain it indexes and
// whether that ring has been mutated since.
type ringIdx struct {
	chain string
	stale bool
}

type ringState map[types.Object]ringIdx

// ringFunc runs the R1 index-staleness dataflow over one function body.
type ringFunc struct {
	pass    *Pass
	reports map[string]Diagnostic
}

func (rf *ringFunc) analyze(body *ast.BlockStmt) {
	g := buildCFG(body)
	lat := flowLattice[ringState]{
		transfer: rf.transfer,
		join: func(dst, src ringState) (ringState, bool) {
			changed := false
			for obj, sb := range src {
				db, ok := dst[obj]
				switch {
				case !ok:
					dst[obj] = sb
					changed = true
				case db.chain != sb.chain:
					delete(dst, obj) // conflicting bindings: give up on the var
					changed = true
				case sb.stale && !db.stale:
					db.stale = true
					dst[obj] = db
					changed = true
				}
			}
			return dst, changed
		},
		clone: func(s ringState) ringState {
			c := make(ringState, len(s))
			for k, v := range s {
				c[k] = v
			}
			return c
		},
	}
	solveForward(g, ringState{}, lat)

	keys := make([]string, 0, len(rf.reports))
	for k := range rf.reports {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		d := rf.reports[k]
		rf.pass.Reportf(d.Pos, "%s", d.Message)
	}
}

func (rf *ringFunc) reportf(pos token.Pos, format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	rf.reports[fmt.Sprintf("%d\x00%s", pos, msg)] = Diagnostic{Pos: pos, Message: msg}
}

func (rf *ringFunc) transfer(s ringState, n ast.Node) ringState {
	switch n := n.(type) {
	case *ast.AssignStmt:
		// Writes refresh the written vars; the RHS may still index rings.
		for _, rhs := range n.Rhs {
			rf.scanExpr(s, rhs)
		}
		for _, lhs := range n.Lhs {
			if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
				if obj := idObj(rf.pass, id); obj != nil {
					delete(s, obj)
				}
				continue
			}
			rf.scanExpr(s, lhs)
		}
	case *ast.IncDecStmt:
		if id, ok := ast.Unparen(n.X).(*ast.Ident); ok {
			if obj := idObj(rf.pass, id); obj != nil {
				delete(s, obj)
			}
		}
	case *ast.Ident:
		// Range Key/Value binding: written each iteration.
		if obj := idObj(rf.pass, n); obj != nil {
			delete(s, obj)
		}
	default:
		walkShallow(n, func(m ast.Node) bool {
			if call, ok := m.(*ast.CallExpr); ok {
				rf.ringCall(s, call)
			}
			return true
		})
	}
	return s
}

// scanExpr applies ring-call effects inside one expression.
func (rf *ringFunc) scanExpr(s ringState, e ast.Expr) {
	walkShallow(e, func(m ast.Node) bool {
		if call, ok := m.(*ast.CallExpr); ok {
			rf.ringCall(s, call)
		}
		return true
	})
}

func (rf *ringFunc) ringCall(s ringState, call *ast.CallExpr) {
	recv, name, ok := ringMethodCall(rf.pass, call)
	if !ok {
		return
	}
	chain := exprString(recv)
	if (name == "At" || name == "RemoveAt") && len(call.Args) == 1 {
		if id, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok {
			if obj := idObj(rf.pass, id); obj != nil {
				if b, bound := s[obj]; bound && b.chain == chain && b.stale {
					rf.reportf(id.Pos(), "index %s into %s is stale: the ring was mutated (Pop/RemoveAt/Reset) after the index was taken, so it no longer names the same element; recompute it (or waive with //repro:allow ringdiscipline <reason>)", id.Name, chain)
				}
				s[obj] = ringIdx{chain: chain}
			}
		}
	}
	if ringStaleOps[name] {
		for obj, b := range s {
			if b.chain == chain {
				b.stale = true
				s[obj] = b
			}
		}
	}
}

func idObj(pass *Pass, id *ast.Ident) types.Object {
	if obj := pass.Info.Uses[id]; obj != nil {
		return obj
	}
	return pass.Info.Defs[id]
}
