package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// PoolOwn tracks pooled values through each function with the forward
// dataflow engine (cfg.go, dataflow.go) and enforces the ownership protocol
// the zero-alloc hot path depends on:
//
//   - a value rented from a pool (a get/Get/Rent method on a *Pool-suffixed
//     type returning a pointer) or claimed from the wire (a type assertion
//     to a pooled type defined in this package) is OWNED;
//   - ownership ends at a release (put/Put/Return/Recycle/Release and
//     casing variants) or a handoff (Send/SendFrom/SendAfter): touching the
//     value afterwards is a use-after-release, releasing it again is a
//     double release;
//   - every path to the function exit must have released the value,
//     deferred its release, or passed ownership on (stored it, returned it,
//     sent it, or handed it to a callee) — anything else leaks the rental
//     and re-allocates on the next cycle.
//
// The analysis is intraprocedural and may-style for misuse (a release on
// ANY path makes later uses suspect) but must-style for leaks (a leak is
// reported only when NO exiting path released the value). An early return
// that mentions the error variable bound alongside a rental kills the
// rental on that path: `c, err := pool.Rent(...); if err != nil { return
// err }` does not count the error path as a leak. Paths that panic never
// reach the exit, so invariant-violation bail-outs don't count either.
// Test files are exempt; intentional violations carry //repro:allow
// poolown <reason>.
var PoolOwn = &Analyzer{
	Name: "poolown",
	Doc:  "pooled values must not be used after release/handoff and must be released on every path",
	Run:  runPoolOwn,
}

// Ownership bits. owned/released/escaped/deferred are may-bits (set when
// any path did it); mustRel is the must-bit (set only when every path to
// this point released), which is what the leak check keys on.
const (
	ownOwned = 1 << iota
	ownReleased
	ownMustRel
	ownEscaped
	ownDeferred
)

var (
	poolSourceNames  = map[string]bool{"get": true, "Get": true, "Rent": true}
	poolReleaseNames = map[string]bool{
		"put": true, "Put": true, "Return": true,
		"Recycle": true, "recycle": true, "Release": true, "release": true,
	}
	poolHandoffNames = map[string]bool{"Send": true, "SendFrom": true, "SendAfter": true}
)

// poCell is one rental site. Cells are stable across fixpoint iterations;
// per-path ownership lives in poState.cells.
type poCell struct {
	site   ast.Node
	what   string       // rendering of the site, for messages
	errVar types.Object // error bound alongside a (value, error) rental
}

type cellSet map[*poCell]bool

// poState is the dataflow state: which cells each local may hold, and each
// cell's ownership mask. A cell absent from cells is dead on this path
// (e.g. killed by an error-path return).
type poState struct {
	vars  map[types.Object]cellSet
	cells map[*poCell]int
}

// poFunc analyzes one function body. reports dedups across fixpoint
// iterations (monotone states re-trigger the same findings).
type poFunc struct {
	pass    *Pass
	pooled  map[*types.TypeName]bool
	cells   map[ast.Node]*poCell
	reports map[string]Diagnostic
}

func runPoolOwn(pass *Pass) error {
	pooled := pooledTypes(pass)
	for _, f := range pass.Files {
		if isTestFile(pass, f) {
			continue
		}
		for _, fb := range packageFuncBodies([]*ast.File{f}) {
			pf := &poFunc{
				pass:    pass,
				pooled:  pooled,
				cells:   map[ast.Node]*poCell{},
				reports: map[string]Diagnostic{},
			}
			pf.analyze(fb.body)
		}
	}
	return nil
}

// pooledTypes collects the in-package pointer targets returned by pool
// sources: a type assertion to one of these claims ownership of a pooled
// value off the wire.
func pooledTypes(pass *Pass) map[*types.TypeName]bool {
	out := map[*types.TypeName]bool{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Recv == nil || !poolSourceNames[fn.Name.Name] {
				continue
			}
			tn := recvTypeName(pass, fn)
			if tn == nil || !poolTypeName(tn.Name()) {
				continue
			}
			obj, ok := pass.Info.Defs[fn.Name].(*types.Func)
			if !ok {
				continue
			}
			sig := obj.Type().(*types.Signature)
			if sig.Results().Len() == 0 {
				continue
			}
			if ptr, ok := sig.Results().At(0).Type().(*types.Pointer); ok {
				if named, ok := ptr.Elem().(*types.Named); ok && named.Obj().Pkg() == pass.Pkg {
					out[named.Obj()] = true
				}
			}
		}
	}
	return out
}

func poolTypeName(name string) bool {
	return strings.HasSuffix(name, "Pool") || strings.HasSuffix(name, "pool")
}

func (pf *poFunc) analyze(body *ast.BlockStmt) {
	g := buildCFG(body)
	lat := flowLattice[poState]{
		transfer: pf.transfer,
		join:     joinPoState,
		clone:    clonePoState,
	}
	res := solveForward(g, poState{vars: map[types.Object]cellSet{}, cells: map[*poCell]int{}}, lat)

	if res.exitOK {
		for cell, mask := range res.exit.cells {
			if mask&ownOwned != 0 && mask&(ownMustRel|ownEscaped|ownDeferred) == 0 {
				pf.reportf(cell.site.Pos(), "pooled value from %s is not released on every path to return; recycle it, hand it off, or defer the release (or waive with //repro:allow poolown <reason>)", cell.what)
			}
		}
	}

	keys := make([]string, 0, len(pf.reports))
	for k := range pf.reports {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		d := pf.reports[k]
		pf.pass.Reportf(d.Pos, "%s", d.Message)
	}
}

func (pf *poFunc) reportf(pos token.Pos, format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	pf.reports[fmt.Sprintf("%d\x00%s", pos, msg)] = Diagnostic{Pos: pos, Message: msg}
}

func clonePoState(s poState) poState {
	c := poState{
		vars:  make(map[types.Object]cellSet, len(s.vars)),
		cells: make(map[*poCell]int, len(s.cells)),
	}
	for obj, cs := range s.vars {
		ncs := make(cellSet, len(cs))
		for cell := range cs {
			ncs[cell] = true
		}
		c.vars[obj] = ncs
	}
	for cell, mask := range s.cells {
		c.cells[cell] = mask
	}
	return c
}

func joinPoState(dst, src poState) (poState, bool) {
	changed := false
	for obj, scs := range src.vars {
		dcs, ok := dst.vars[obj]
		if !ok {
			dcs = make(cellSet, len(scs))
			dst.vars[obj] = dcs
		}
		for cell := range scs {
			if !dcs[cell] {
				dcs[cell] = true
				changed = true
			}
		}
	}
	for cell, smask := range src.cells {
		dmask, ok := dst.cells[cell]
		if !ok {
			dst.cells[cell] = smask
			changed = true
			continue
		}
		// Or-join the may-bits; and-join the must-release bit.
		merged := (dmask | smask) &^ ownMustRel
		merged |= dmask & smask & ownMustRel
		if merged != dmask {
			dst.cells[cell] = merged
			changed = true
		}
	}
	return dst, changed
}

// transfer folds one atomic CFG node into the state.
func (pf *poFunc) transfer(s poState, n ast.Node) poState {
	switch n := n.(type) {
	case *ast.AssignStmt:
		pf.assign(s, n)
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					pf.valueSpec(s, vs)
				}
			}
		}
	case *ast.ExprStmt:
		pf.expr(s, n.X)
	case *ast.ReturnStmt:
		pf.returnStmt(s, n)
	case *ast.DeferStmt:
		pf.deferStmt(s, n)
	case *ast.GoStmt:
		// The spawned goroutine owns whatever it was handed.
		pf.escapeCall(s, n.Call)
	case *ast.SendStmt:
		pf.expr(s, n.Chan)
		pf.escape(s, pf.expr(s, n.Value))
	case *ast.IncDecStmt:
		pf.expr(s, n.X)
	case *ast.Ident:
		// Range Key/Value bindings reach the CFG as bare idents: the loop
		// writes them, so any tracked binding dies.
		if obj := pf.identObj(n); obj != nil {
			delete(s.vars, obj)
		}
	default:
		if e, ok := n.(ast.Expr); ok {
			pf.expr(s, e)
		}
	}
	return s
}

func (pf *poFunc) identObj(id *ast.Ident) types.Object {
	if obj := pf.pass.Info.Uses[id]; obj != nil {
		return obj
	}
	return pf.pass.Info.Defs[id]
}

// liveCells filters a var's cell set down to cells alive on this path.
func liveCells(s poState, cs cellSet) []*poCell {
	var out []*poCell
	for cell := range cs {
		if _, ok := s.cells[cell]; ok {
			out = append(out, cell)
		}
	}
	return out
}

// expr evaluates one expression: performs use-after-release checks on ident
// reads, recognizes rental sources and release/handoff sinks, and returns
// the set of cells the expression's value may be.
func (pf *poFunc) expr(s poState, e ast.Expr) cellSet {
	switch e := e.(type) {
	case nil:
		return nil
	case *ast.Ident:
		obj := pf.pass.Info.Uses[e]
		if obj == nil {
			return nil
		}
		cs := s.vars[obj]
		for _, cell := range liveCells(s, cs) {
			if s.cells[cell]&ownReleased != 0 {
				pf.reportf(e.Pos(), "%s holds a pooled value from %s that was already released or handed off; it may be recycled under another owner (waive with //repro:allow poolown <reason>)", e.Name, cell.what)
			}
		}
		return cs
	case *ast.ParenExpr:
		return pf.expr(s, e.X)
	case *ast.SelectorExpr:
		pf.expr(s, e.X)
		return nil
	case *ast.StarExpr:
		pf.expr(s, e.X)
		return nil
	case *ast.UnaryExpr:
		cs := pf.expr(s, e.X)
		if e.Op == token.AND {
			pf.escape(s, cs) // the address outlives our view of the value
		}
		return nil
	case *ast.BinaryExpr:
		// Comparing a pointer (typically against nil) reads no pooled state;
		// skip the use-after-release check so `if env != nil` stays legal.
		if e.Op == token.EQL || e.Op == token.NEQ {
			pf.compareOperand(s, e.X)
			pf.compareOperand(s, e.Y)
			return nil
		}
		pf.expr(s, e.X)
		pf.expr(s, e.Y)
		return nil
	case *ast.IndexExpr:
		if tv, ok := pf.pass.Info.Types[e]; ok && tv.IsType() {
			return nil // generic instantiation, not an index
		}
		pf.expr(s, e.X)
		pf.expr(s, e.Index)
		return nil
	case *ast.SliceExpr:
		pf.expr(s, e.X)
		pf.expr(s, e.Low)
		pf.expr(s, e.High)
		pf.expr(s, e.Max)
		return nil
	case *ast.TypeAssertExpr:
		if pf.assertSource(e) {
			return cellSet{pf.sourceCell(s, e): true}
		}
		pf.expr(s, e.X)
		return nil
	case *ast.CallExpr:
		return pf.call(s, e)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			pf.escape(s, pf.expr(s, el))
		}
		return nil
	case *ast.FuncLit:
		pf.escapeCaptured(s, e)
		return nil
	case *ast.KeyValueExpr:
		pf.expr(s, e.Key)
		return pf.expr(s, e.Value)
	case *ast.BasicLit:
		return nil
	default:
		// Type expressions and anything exotic: check ident reads only.
		walkShallow(e, func(m ast.Node) bool {
			if id, ok := m.(*ast.Ident); ok {
				pf.expr(s, id)
			}
			return true
		})
		return nil
	}
}

// compareOperand evaluates an ==/!= operand without the use-after-release
// check on a bare tracked ident (identity tests don't touch pooled state).
func (pf *poFunc) compareOperand(s poState, e ast.Expr) {
	if id, ok := ast.Unparen(e).(*ast.Ident); ok {
		if obj := pf.pass.Info.Uses[id]; obj != nil && len(s.vars[obj]) > 0 {
			return
		}
	}
	pf.expr(s, e)
}

// call handles sources, releases, handoffs and unknown calls.
func (pf *poFunc) call(s poState, call *ast.CallExpr) cellSet {
	if pf.sourceCallExpr(call) {
		sel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		pf.expr(s, sel.X)
		for _, arg := range call.Args {
			pf.escape(s, pf.expr(s, arg))
		}
		return cellSet{pf.sourceCell(s, call): true}
	}

	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		name := sel.Sel.Name
		if poolReleaseNames[name] || poolHandoffNames[name] {
			// A release method on a tracked receiver (env.Recycle()) ends the
			// receiver's ownership; otherwise the receiver is just read.
			handled := false
			if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok && poolReleaseNames[name] {
				if obj := pf.pass.Info.Uses[id]; obj != nil && len(liveCells(s, s.vars[obj])) > 0 {
					pf.release(s, s.vars[obj], call, name)
					handled = true
				}
			}
			if !handled {
				pf.expr(s, sel.X)
			}
			for _, arg := range call.Args {
				if id, ok := ast.Unparen(arg).(*ast.Ident); ok {
					if obj := pf.pass.Info.Uses[id]; obj != nil && len(liveCells(s, s.vars[obj])) > 0 {
						pf.release(s, s.vars[obj], call, name)
						continue
					}
				}
				pf.escape(s, pf.expr(s, arg))
			}
			return nil
		}
	}

	// Unknown call: arguments escape to the callee.
	pf.expr(s, call.Fun)
	for _, arg := range call.Args {
		pf.escape(s, pf.expr(s, arg))
	}
	return nil
}

// release marks every live cell a var holds as released, reporting a
// double release when one already was.
func (pf *poFunc) release(s poState, cs cellSet, at *ast.CallExpr, name string) {
	for _, cell := range liveCells(s, cs) {
		if s.cells[cell]&ownReleased != 0 {
			pf.reportf(at.Pos(), "pooled value from %s is released twice: %s after an earlier release or handoff already gave up ownership", cell.what, name)
		}
		s.cells[cell] |= ownReleased | ownMustRel
	}
}

func (pf *poFunc) escape(s poState, cs cellSet) {
	for _, cell := range liveCells(s, cs) {
		s.cells[cell] |= ownEscaped
	}
}

// escapeCall escapes every tracked value reachable from a call's operands.
func (pf *poFunc) escapeCall(s poState, call *ast.CallExpr) {
	pf.expr(s, call.Fun)
	for _, arg := range call.Args {
		pf.escape(s, pf.expr(s, arg))
	}
}

// escapeCaptured escapes every tracked var a function literal closes over:
// the closure may use or release it at any later time.
func (pf *poFunc) escapeCaptured(s poState, lit *ast.FuncLit) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := pf.pass.Info.Uses[id]; obj != nil {
				pf.escape(s, s.vars[obj])
			}
		}
		return true
	})
}

// sourceCell returns the stable cell for a rental site and strong-updates
// the path state: re-executing the source (a new loop iteration) yields a
// fresh rental, clearing any released state from the previous cycle.
func (pf *poFunc) sourceCell(s poState, site ast.Node) *poCell {
	cell, ok := pf.cells[site]
	if !ok {
		cell = &poCell{site: site, what: renderSite(site)}
		pf.cells[site] = cell
	}
	s.cells[cell] = ownOwned
	return cell
}

// sourceCallExpr reports whether call is pool-source shaped: a get/Get/Rent
// method on a receiver whose named type ends in Pool/pool, returning a
// pointer first result.
func (pf *poFunc) sourceCallExpr(call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || !poolSourceNames[sel.Sel.Name] {
		return false
	}
	tn := namedTypeName(pf.pass.Info.Types[sel.X].Type)
	if tn == nil || !poolTypeName(tn.Name()) {
		return false
	}
	tv, ok := pf.pass.Info.Types[call]
	if !ok || tv.Type == nil {
		return false
	}
	rt := tv.Type
	if tup, ok := rt.(*types.Tuple); ok {
		if tup.Len() == 0 {
			return false
		}
		rt = tup.At(0).Type()
	}
	_, isPtr := rt.(*types.Pointer)
	return isPtr
}

// assertSource reports whether the type assertion claims a pooled value:
// its target is a pointer to an in-package pooled type.
func (pf *poFunc) assertSource(ta *ast.TypeAssertExpr) bool {
	if ta.Type == nil {
		return false // x.(type) switch guard
	}
	t := pf.pass.Info.Types[ta.Type].Type
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	return pf.pooled[named.Obj()]
}

func (pf *poFunc) assign(s poState, n *ast.AssignStmt) {
	// Tuple form: x, y := f() — the cell set belongs to the first variable;
	// an error bound in the second slot becomes the cell's kill variable.
	if len(n.Rhs) == 1 && len(n.Lhs) > 1 {
		cs := pf.expr(s, n.Rhs[0])
		pf.bind(s, n.Lhs[0], cs)
		for _, lhs := range n.Lhs[1:] {
			pf.bind(s, lhs, nil)
		}
		if len(cs) == 1 && len(n.Lhs) == 2 {
			if id, ok := n.Lhs[1].(*ast.Ident); ok && id.Name != "_" {
				if obj := pf.identObj(id); obj != nil && isErrorType(obj.Type()) {
					for cell := range cs {
						cell.errVar = obj
					}
				}
			}
		}
		return
	}
	sets := make([]cellSet, len(n.Rhs))
	for i, rhs := range n.Rhs {
		sets[i] = pf.expr(s, rhs)
	}
	for i, lhs := range n.Lhs {
		var cs cellSet
		if i < len(sets) {
			cs = sets[i]
		}
		pf.bind(s, lhs, cs)
	}
}

// bind assigns a cell set to an lvalue: a local ident takes (or clears) the
// binding; anything else — a field, an index, a global — is a store the
// analysis can't see past, so the cells escape. Writing through a released
// value is caught by the read of its base identifier.
func (pf *poFunc) bind(s poState, lhs ast.Expr, cs cellSet) {
	if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
		if id.Name == "_" {
			pf.escape(s, cs)
			return
		}
		obj := pf.identObj(id)
		if obj != nil && localVar(pf.pass.Pkg, obj) {
			if len(cs) > 0 {
				pf.setVar(s, obj, cs)
			} else {
				delete(s.vars, obj)
			}
			return
		}
		pf.escape(s, cs)
		return
	}
	pf.expr(s, lhs)
	pf.escape(s, cs)
}

func (pf *poFunc) setVar(s poState, obj types.Object, cs cellSet) {
	ncs := make(cellSet, len(cs))
	for cell := range cs {
		ncs[cell] = true
	}
	s.vars[obj] = ncs
}

func (pf *poFunc) valueSpec(s poState, vs *ast.ValueSpec) {
	if len(vs.Values) == 1 && len(vs.Names) > 1 {
		cs := pf.expr(s, vs.Values[0])
		for i, name := range vs.Names {
			var set cellSet
			if i == 0 {
				set = cs
			}
			pf.bind(s, name, set)
		}
		return
	}
	for i, name := range vs.Names {
		var cs cellSet
		if i < len(vs.Values) {
			cs = pf.expr(s, vs.Values[i])
		}
		pf.bind(s, name, cs)
	}
}

func (pf *poFunc) returnStmt(s poState, n *ast.ReturnStmt) {
	// Returning a tracked value passes ownership to the caller.
	for _, res := range n.Results {
		pf.escape(s, pf.expr(s, res))
	}
	// A return mentioning a rental's error variable is the rental's failure
	// path: the value was never rented there, so it cannot leak.
	for _, res := range n.Results {
		walkShallow(res, func(m ast.Node) bool {
			id, ok := m.(*ast.Ident)
			if !ok {
				return true
			}
			obj := pf.pass.Info.Uses[id]
			if obj == nil {
				return true
			}
			for cell := range s.cells {
				if cell.errVar == obj {
					delete(s.cells, cell)
				}
			}
			return true
		})
	}
}

func (pf *poFunc) deferStmt(s poState, n *ast.DeferStmt) {
	call := n.Call
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && poolReleaseNames[sel.Sel.Name] {
		pf.expr(s, sel.X)
		for _, arg := range call.Args {
			if id, ok := ast.Unparen(arg).(*ast.Ident); ok {
				if obj := pf.pass.Info.Uses[id]; obj != nil {
					if cells := liveCells(s, s.vars[obj]); len(cells) > 0 {
						for _, cell := range cells {
							s.cells[cell] |= ownDeferred
						}
						continue
					}
				}
			}
			pf.escape(s, pf.expr(s, arg))
		}
		return
	}
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		pf.escapeCaptured(s, lit)
		for _, arg := range call.Args {
			pf.escape(s, pf.expr(s, arg))
		}
		return
	}
	pf.escapeCall(s, call)
}

// renderSite renders a rental site for diagnostics.
func renderSite(site ast.Node) string {
	switch site := site.(type) {
	case *ast.CallExpr:
		return exprString(ast.Unparen(site.Fun)) + "(...)"
	case *ast.TypeAssertExpr:
		return exprString(site.X) + ".(" + exprString(site.Type) + ")"
	}
	return "pool source"
}

func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "error" && named.Obj().Pkg() == nil
}
