package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ResetComplete makes the stale-state bug class introduced by world reuse a
// lint error: every field of a type with a Reset (or unexported reset) method
// must be assigned in that method, reached through a callee's reset, or
// explicitly waived with //repro:reset-skip <why> on the field. Pooled worlds
// are reset, not rebuilt, between replicas — a field Reset forgets leaks one
// replica's state into the next and corrupts golden checksums in ways that
// only surface under REPRO_NO_REUSE=1 comparison.
//
// A field counts as handled when the method (or a same-receiver method it
// calls) assigns it, ranges over it, clears or copies into it, calls a method
// on it (Reset, ReseedNamed, ...), takes its address, or wholesale-assigns
// *recv.
var ResetComplete = &Analyzer{
	Name: "resetcomplete",
	Doc:  "every field of a type with a Reset method is reset, delegated, or explicitly waived",
	Run:  runResetComplete,
}

func runResetComplete(pass *Pass) error {
	rc := &resetChecker{pass: pass, methods: map[*types.Func]*ast.FuncDecl{}}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Recv == nil || fn.Body == nil {
				continue
			}
			if obj, ok := pass.Info.Defs[fn.Name].(*types.Func); ok {
				rc.methods[obj] = fn
			}
		}
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || (fn.Name.Name != "Reset" && fn.Name.Name != "reset") {
				continue
			}
			rc.checkReset(fn)
		}
	}
	return nil
}

type resetChecker struct {
	pass    *Pass
	methods map[*types.Func]*ast.FuncDecl
}

func (rc *resetChecker) checkReset(fn *ast.FuncDecl) {
	named, recvObj := rc.receiver(fn)
	if named == nil || recvObj == nil {
		return
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok || st.NumFields() == 0 {
		return
	}

	handled := map[string]bool{}
	visited := map[*ast.FuncDecl]bool{}
	rc.markHandled(fn, recvObj, handled, visited)

	skipped := rc.skippedFields(named.Obj().Name())

	for i := 0; i < st.NumFields(); i++ {
		name := st.Field(i).Name()
		if handled["*"] || handled[name] {
			continue // a skip on a handled field stays unmarked: it is stale
		}
		if pos, ok := skipped[name]; ok {
			rc.pass.MarkDirectiveUsed(pos)
			continue
		}
		rc.pass.Reportf(fn.Name.Pos(), "%s.%s: field %s is not reset; assign it here, reset it through a callee, or waive it with //repro:reset-skip <why> on the field", named.Obj().Name(), fn.Name.Name, name)
	}
}

// receiver resolves fn's receiver to its package-local named struct type and
// the receiver variable. Unnamed receivers and value receivers are skipped —
// a value-receiver Reset cannot reset anything.
func (rc *resetChecker) receiver(fn *ast.FuncDecl) (*types.Named, types.Object) {
	if fn.Recv == nil || len(fn.Recv.List) == 0 || len(fn.Recv.List[0].Names) == 0 {
		return nil, nil
	}
	recvObj := rc.pass.Info.Defs[fn.Recv.List[0].Names[0]]
	if recvObj == nil {
		return nil, nil
	}
	ptr, ok := recvObj.Type().(*types.Pointer)
	if !ok {
		return nil, nil
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok || named.Obj().Pkg() != rc.pass.Pkg {
		return nil, nil
	}
	return named, recvObj
}

// markHandled walks fn's body marking fields of recvObj that the method
// handles, recursing into same-receiver methods it calls. handled["*"] means
// a wholesale *recv assignment was seen.
func (rc *resetChecker) markHandled(fn *ast.FuncDecl, recvObj types.Object, handled map[string]bool, visited map[*ast.FuncDecl]bool) {
	if visited[fn] {
		return
	}
	visited[fn] = true

	// Map this method's own receiver name: when recursing into fs.reset()
	// from FileSystem.Reset, the callee's receiver stands for the same object.
	localRecv := recvObj
	if len(fn.Recv.List[0].Names) > 0 {
		localRecv = rc.pass.Info.Defs[fn.Recv.List[0].Names[0]]
	}

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				rc.markExpr(lhs, localRecv, handled)
				if star, ok := ast.Unparen(lhs).(*ast.StarExpr); ok {
					if id := rootIdent(star.X); id != nil && rc.pass.Info.Uses[id] == localRecv {
						handled["*"] = true
					}
				}
			}
		case *ast.IncDecStmt:
			rc.markExpr(n.X, localRecv, handled)
		case *ast.RangeStmt:
			// Ranging over a receiver field with index writes (for i := range
			// recv.f { recv.f[i] = ... }) is the per-element reset idiom; the
			// element writes themselves also mark the field via AssignStmt.
			rc.markExpr(n.X, localRecv, handled)
		case *ast.UnaryExpr:
			if n.Op.String() == "&" {
				rc.markExpr(n.X, localRecv, handled)
			}
		case *ast.CallExpr:
			rc.markCall(n, localRecv, handled, visited)
		}
		return true
	})
}

func (rc *resetChecker) markCall(call *ast.CallExpr, recvObj types.Object, handled map[string]bool, visited map[*ast.FuncDecl]bool) {
	if isBuiltin(rc.pass.Info, call, "clear") || isBuiltin(rc.pass.Info, call, "copy") {
		if len(call.Args) > 0 {
			rc.markExpr(call.Args[0], recvObj, handled)
		}
		return
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	// A method call on a field chain (c.kernel.Reset(), fs.rng.ReseedNamed(...))
	// delegates that field's reset to the field's own type.
	rc.markExpr(sel.X, recvObj, handled)
	// A call to another method on the same receiver (fs.reset(...)) transfers
	// that method's assignments.
	if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok && rc.pass.Info.Uses[id] == recvObj {
		if callee, ok := rc.pass.Info.Uses[sel.Sel].(*types.Func); ok {
			if decl := rc.methods[callee]; decl != nil {
				rc.markHandled(decl, rc.declRecv(decl), handled, visited)
			}
		}
	}
}

func (rc *resetChecker) declRecv(fn *ast.FuncDecl) types.Object {
	if fn.Recv == nil || len(fn.Recv.List) == 0 || len(fn.Recv.List[0].Names) == 0 {
		return nil
	}
	return rc.pass.Info.Defs[fn.Recv.List[0].Names[0]]
}

// markExpr marks the receiver field at the root of a selector chain: for
// recv.f[i].g = x the directly touched receiver field is f.
func (rc *resetChecker) markExpr(expr ast.Expr, recvObj types.Object, handled map[string]bool) {
	if recvObj == nil {
		return
	}
	e := ast.Expr(expr)
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SelectorExpr:
			if id := baseIdent(x.X); id != nil && rc.pass.Info.Uses[id] == recvObj {
				handled[x.Sel.Name] = true
				return
			}
			e = x.X
		default:
			return
		}
	}
}

// baseIdent unwraps parens and derefs (not selectors) to an identifier, so
// both recv.f and (*recv).f resolve their base.
func baseIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// skippedFields collects //repro:reset-skip waivers from the struct's
// declaration, mapping each waived field name to its directive's position so
// genuinely-load-bearing waivers can be marked used.
func (rc *resetChecker) skippedFields(typeName string) map[string]token.Pos {
	skipped := map[string]token.Pos{}
	for _, f := range rc.pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok || ts.Name.Name != typeName {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				for _, field := range st.Fields.List {
					_, pos, ok := resetSkipReason(field)
					if !ok {
						continue
					}
					for _, name := range field.Names {
						skipped[name.Name] = pos
					}
				}
			}
		}
	}
	return skipped
}
