package analysis

// Loader-backed tests: these shell out to `go list -deps -export` against the
// real repository, exactly as cmd/reprolint's standalone mode does.

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func repoRoot(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	return root
}

// TestRepoIsClean is the lint gate in test form: the full suite over every
// package of the module (test files included) must report nothing. Every
// intentional exception in the tree carries its //repro: waiver, and this
// test is what keeps that claim true.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("builds export data for the whole module")
	}
	pkgs, err := Load(repoRoot(t), "./...")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("Load returned no packages")
	}
	for _, pkg := range pkgs {
		diags, err := RunSuite(pkg, Suite())
		if err != nil {
			t.Fatalf("RunSuite(%s): %v", pkg.Path, err)
		}
		for _, d := range diags {
			posn := pkg.Fset.Position(d.Pos)
			t.Errorf("%s:%d:%d: [%s] %s", posn.Filename, posn.Line, posn.Column, d.Analyzer, d.Message)
		}
	}
}

// TestResetCompleteMutation drops one field assignment out of
// pfs.FileSystem.Reset and demands that resetcomplete catches it — the
// acceptance check that the analyzer guards real reset methods, not just
// fixtures.
func TestResetCompleteMutation(t *testing.T) {
	if testing.Short() {
		t.Skip("builds export data for the pfs subtree")
	}
	root := repoRoot(t)
	target := filepath.Join(root, "internal", "pfs", "fs.go")
	src, err := os.ReadFile(target)
	if err != nil {
		t.Fatal(err)
	}
	const dropped = "fs.nextOST = 0"
	if !strings.Contains(string(src), dropped) {
		t.Fatalf("mutation anchor %q not found in %s", dropped, target)
	}
	mutated := strings.Replace(string(src), dropped, "", 1)

	pkgs, err := load(root, map[string][]byte{target: []byte(mutated)}, []string{"./internal/pfs"})
	if err != nil {
		t.Fatalf("load with overlay: %v", err)
	}
	found := false
	for _, pkg := range pkgs {
		diags, err := RunSuite(pkg, []*Analyzer{ResetComplete})
		if err != nil {
			t.Fatalf("RunSuite(%s): %v", pkg.Path, err)
		}
		for _, d := range diags {
			if strings.Contains(d.Message, "nextOST") {
				found = true
			}
		}
	}
	if !found {
		t.Errorf("resetcomplete missed the dropped %q assignment in FileSystem.Reset", dropped)
	}
}
