package analysis

// Loader-backed tests: these shell out to `go list -deps -export` against the
// real repository, exactly as cmd/reprolint's standalone mode does.

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func repoRoot(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	return root
}

// TestRepoIsClean is the lint gate in test form: the full suite over every
// package of the module (test files included) must report nothing. Every
// intentional exception in the tree carries its //repro: waiver, and this
// test is what keeps that claim true.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("builds export data for the whole module")
	}
	pkgs, err := Load(repoRoot(t), "./...")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("Load returned no packages")
	}
	for _, pkg := range pkgs {
		diags, err := RunSuite(pkg, Suite())
		if err != nil {
			t.Fatalf("RunSuite(%s): %v", pkg.Path, err)
		}
		for _, d := range diags {
			posn := pkg.Fset.Position(d.Pos)
			t.Errorf("%s:%d:%d: [%s] %s", posn.Filename, posn.Line, posn.Column, d.Analyzer, d.Message)
		}
	}
}

// TestResetCompleteMutation drops one field assignment out of
// pfs.FileSystem.Reset and demands that resetcomplete catches it — the
// acceptance check that the analyzer guards real reset methods, not just
// fixtures.
// TestPoolOwnFixtureMutation deletes the designated Recycle call from the
// poolown fixture's clean case and demands a leak finding: the proof that the
// fixture's silence is earned by the put, not by the analyzer ignoring it.
func TestPoolOwnFixtureMutation(t *testing.T) {
	const dropped = "p.put(env) // mutation target: deleting this line must trip poolown"
	sawAnchor := false
	pkg := loadFixtureEdited(t, "poolown", "repro/internal/core", func(name string, src []byte) []byte {
		if !strings.Contains(string(src), dropped) {
			return src
		}
		sawAnchor = true
		return []byte(strings.Replace(string(src), dropped, "", 1))
	})
	if !sawAnchor {
		t.Fatalf("mutation anchor %q not found in poolown fixture", dropped)
	}
	diags, err := RunSuite(pkg, []*Analyzer{PoolOwn})
	if err != nil {
		t.Fatalf("RunSuite: %v", err)
	}
	found := false
	for _, d := range diags {
		if strings.Contains(d.Message, "not released on every path") {
			found = true
		}
	}
	if !found {
		t.Errorf("poolown missed the leak created by deleting %q", dropped)
	}
}

// TestPoolOwnMutation drops the real envelope recycle from the coordinator's
// local-index gather (pump.go, C case 5) and demands poolown reports the
// leak — the whole-module analogue of the fixture mutation above.
func TestPoolOwnMutation(t *testing.T) {
	if testing.Short() {
		t.Skip("builds export data for the core subtree")
	}
	root := repoRoot(t)
	target := filepath.Join(root, "internal", "core", "pump.go")
	src, err := os.ReadFile(target)
	if err != nil {
		t.Fatal(err)
	}
	// Locate the gather site first: pump.go recycles envelopes in several
	// places, and only this one keeps the envelope local until the put.
	const anchor = "s.global.Locals = append(s.global.Locals, env.index)"
	idx := strings.Index(string(src), anchor)
	if idx < 0 {
		t.Fatalf("mutation anchor %q not found in %s", anchor, target)
	}
	const dropped = "a.pool.put(env)"
	tail := string(src[idx:])
	if !strings.Contains(tail, dropped) {
		t.Fatalf("%q not found after the anchor in %s", dropped, target)
	}
	mutated := string(src[:idx]) + strings.Replace(tail, dropped, "", 1)

	pkgs, err := load(root, map[string][]byte{target: []byte(mutated)}, []string{"./internal/core"})
	if err != nil {
		t.Fatalf("load with overlay: %v", err)
	}
	found := false
	for _, pkg := range pkgs {
		diags, err := RunSuite(pkg, []*Analyzer{PoolOwn})
		if err != nil {
			t.Fatalf("RunSuite(%s): %v", pkg.Path, err)
		}
		for _, d := range diags {
			if strings.Contains(d.Message, "not released on every path") {
				found = true
			}
		}
	}
	if !found {
		t.Errorf("poolown missed the leak created by deleting %q from the gather case", dropped)
	}
}

// TestContBlockMutation plants a goroutine-blocking collective inside the
// sub-coordinator's continuation body and demands contblock flags it.
func TestContBlockMutation(t *testing.T) {
	if testing.Short() {
		t.Skip("builds export data for the core subtree")
	}
	root := repoRoot(t)
	target := filepath.Join(root, "internal", "core", "pump.go")
	src, err := os.ReadFile(target)
	if err != nil {
		t.Fatal(err)
	}
	const anchor = "s.li.Sort()"
	if !strings.Contains(string(src), anchor) {
		t.Fatalf("mutation anchor %q not found in %s", anchor, target)
	}
	mutated := strings.Replace(string(src), anchor, "s.r.Barrier()\n"+anchor, 1)

	pkgs, err := load(root, map[string][]byte{target: []byte(mutated)}, []string{"./internal/core"})
	if err != nil {
		t.Fatalf("load with overlay: %v", err)
	}
	found := false
	for _, pkg := range pkgs {
		diags, err := RunSuite(pkg, []*Analyzer{ContBlock})
		if err != nil {
			t.Fatalf("RunSuite(%s): %v", pkg.Path, err)
		}
		for _, d := range diags {
			if strings.Contains(d.Message, "Rank.Barrier suspends") {
				found = true
			}
		}
	}
	if !found {
		t.Errorf("contblock missed the planted Rank.Barrier in scCont.Step")
	}
}

func TestResetCompleteMutation(t *testing.T) {
	if testing.Short() {
		t.Skip("builds export data for the pfs subtree")
	}
	root := repoRoot(t)
	target := filepath.Join(root, "internal", "pfs", "fs.go")
	src, err := os.ReadFile(target)
	if err != nil {
		t.Fatal(err)
	}
	const dropped = "fs.nextOST = 0"
	if !strings.Contains(string(src), dropped) {
		t.Fatalf("mutation anchor %q not found in %s", dropped, target)
	}
	mutated := strings.Replace(string(src), dropped, "", 1)

	pkgs, err := load(root, map[string][]byte{target: []byte(mutated)}, []string{"./internal/pfs"})
	if err != nil {
		t.Fatalf("load with overlay: %v", err)
	}
	found := false
	for _, pkg := range pkgs {
		diags, err := RunSuite(pkg, []*Analyzer{ResetComplete})
		if err != nil {
			t.Fatalf("RunSuite(%s): %v", pkg.Path, err)
		}
		for _, d := range diags {
			if strings.Contains(d.Message, "nextOST") {
				found = true
			}
		}
	}
	if !found {
		t.Errorf("resetcomplete missed the dropped %q assignment in FileSystem.Reset", dropped)
	}
}
