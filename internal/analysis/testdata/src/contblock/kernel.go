// Package simkernel is the contblock fixture's mirror of the kernel
// surface: the fixture loads under the real simkernel import path so the
// analyzer's package-keyed blocklist and *ContProc/*Proc signature rules
// engage exactly as they do in-tree.
package simkernel

import "time"

type Time int64

type Proc struct{ id int }

func (p *Proc) Sleep(d time.Duration)  {}
func (p *Proc) SleepSeconds(s float64) {}
func (p *Proc) Suspend()               {}

type ContProc Proc

func (c *ContProc) Proc() *Proc             { return (*Proc)(c) }
func (c *ContProc) Sleep(d time.Duration)   {}
func (c *ContProc) SleepUntil(at Time) bool { return true }

type RecvOp struct{ v any }

func (o *RecvOp) Msg() any { return o.v }

type Mailbox struct{ q []any }

func (m *Mailbox) Send(v any)                           { m.q = append(m.q, v) }
func (m *Mailbox) Recv(p *Proc) any                     { return nil }
func (m *Mailbox) TryRecv() (any, bool)                 { return nil, false }
func (m *Mailbox) RecvCont(o *RecvOp, c *ContProc) bool { return false }

type Resource struct{ cap int }

func (r *Resource) Acquire(p *Proc)              {}
func (r *Resource) Release()                     {}
func (r *Resource) AcquireCont(c *ContProc) bool { return true }

type Kernel struct{ now Time }

func (k *Kernel) Run() Time                           { return k.now }
func (k *Kernel) RunUntil(deadline Time) Time         { return k.now }
func (k *Kernel) Spawn(name string, fn func(p *Proc)) {}
