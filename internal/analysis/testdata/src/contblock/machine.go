package simkernel

import (
	"sync"
	"time"
)

// pumpMachine has a *ContProc method, so it is a continuation machine and
// every method below is in contblock's audit scope.
type pumpMachine struct {
	mb  *Mailbox
	res *Resource
	k   *Kernel
	ch  chan int
	mu  sync.Mutex
	op  RecvOp
}

// Step is the continuation body: every goroutine-blocking primitive in it
// must be flagged, every cont variant must stay silent.
func (m *pumpMachine) Step(c *ContProc) {
	p := c.Proc()
	m.mb.Recv(p)         // want `Mailbox\.Recv suspends the calling goroutine.*use RecvCont`
	m.res.Acquire(p)     // want `Resource\.Acquire suspends the calling goroutine.*use AcquireCont`
	p.Sleep(time.Second) // want `Proc\.Sleep suspends the calling goroutine.*use ContProc\.Sleep`
	m.k.Run()            // want `Kernel\.Run suspends the calling goroutine`

	c.Sleep(time.Second)    // cont variant: legal
	c.SleepUntil(5)         // cont variant: legal
	m.mb.RecvCont(&m.op, c) // cont variant: legal
	m.res.AcquireCont(c)    // cont variant: legal
	if v, ok := m.mb.TryRecv(); ok {
		_ = v // non-blocking poll: legal
	}
}

// helper has no *ContProc parameter but is a method of the machine: the
// receiver propagation keeps it in scope.
func (m *pumpMachine) helper() {
	time.Sleep(time.Millisecond) // want `time\.Sleep blocks the event-loop goroutine`
	m.mu.Lock()                  // want `sync\.Mutex\.Lock in a continuation body`
	m.ch <- 1                    // want `channel send in a continuation body`
	<-m.ch                       // want `channel receive in a continuation body`
	go m.helper()                // want `go statement in a continuation body`
	select {}                    // want `select in a continuation body`
}

func (m *pumpMachine) drain() {
	for v := range m.ch { // want `range over a channel in a continuation body`
		_ = v
	}
}

// RecvBoth serves the goroutine engine too: the *Proc parameter marks it as
// a goroutine body, where blocking is the contract.
func (m *pumpMachine) RecvBoth(p *Proc) any {
	return m.mb.Recv(p)
}

// spawnHelper hands the goroutine engine a literal; the literal's *Proc
// parameter exempts its body.
func (m *pumpMachine) spawnHelper() {
	m.k.Spawn("writer", func(p *Proc) {
		m.mb.Recv(p)
		p.Suspend()
	})
}

// boundary is the sanctioned SC/C pump crossing: waived with a reason.
func (m *pumpMachine) boundary(p *Proc2) any {
	return m.mb.Recv(nil) //repro:allow contblock the SC/C pump boundary runs on the goroutine engine
}

// Proc2 keeps boundary from matching the *Proc signature exemption, so the
// waiver (not the exemption) is what the fixture exercises.
type Proc2 struct{}
