// Package reset exercises resetcomplete: every field of a type with a Reset
// (or reset) method must be assigned there, reached through a callee, or
// waived with //repro:reset-skip.
package reset

type kernel struct{ now float64 }

func (k *kernel) Reset() { k.now = 0 }

// complete resets every field directly.
type complete struct {
	a int
	b float64
}

func (c *complete) Reset() {
	c.a = 0
	c.b = 0
}

// incomplete forgets b: the bug class this analyzer exists for.
type incomplete struct {
	a int
	b float64
}

func (i *incomplete) Reset() { // want `incomplete.Reset: field b is not reset`
	i.a = 0
}

// lowercase reset methods are held to the same standard.
type unexported struct {
	a int
	b int
}

func (u *unexported) reset() { // want `unexported.reset: field b is not reset`
	u.a = 0
}

// waived carries a reset-skip on the field the method cannot touch.
type waived struct {
	k *kernel //repro:reset-skip immutable wiring, set once at construction
	n int
}

func (w *waived) Reset() {
	w.n = 0
}

// delegating hands fields to their own Reset methods and helpers.
type delegating struct {
	sub   kernel
	cache map[int]int
	buf   []float64
	seen  [4]bool
	gen   int
	extra int
}

func (d *delegating) Reset() {
	d.sub.Reset()
	clear(d.cache)
	d.buf = d.buf[:0]
	for i := range d.seen {
		d.seen[i] = false
	}
	d.gen++
	d.resetExtra()
}

func (d *delegating) resetExtra() {
	d.extra = 0
}

// wholesale zeroes the receiver in one statement.
type wholesale struct {
	a, b, c int
}

func (w *wholesale) Reset() {
	*w = wholesale{}
}

// aliased resets a field through a pointer taken from the receiver.
type aliased struct {
	slots [8]int
	n     int
}

func (a *aliased) Reset() {
	p := &a.slots
	for i := range p {
		p[i] = 0
	}
	a.n = 0
}

// valueReceiver cannot reset anything; the analyzer skips it rather than
// reporting every field.
type valueReceiver struct {
	a int
}

func (v valueReceiver) Reset() {}

// unrelated has no Reset method at all.
type unrelated struct {
	a int
}

// healthState mimics a lifecycle enum (pfs.HealthState).
type healthState int

// lifecycle mimics the health-bearing OST shape: an enum state, per-state
// accounting array, an armed timer handle, and cached event closures. All
// of it is mutable run state the analyzer must see reset — except the
// cached closures, which are rebuilt-free by design and must be waived.
type lifecycle struct {
	health     healthState
	stateSecs  [4]float64
	enteredAt  float64
	transition func() //repro:reset-skip cached event closure, built once; reads config at fire time
	factor     float64
}

func (l *lifecycle) Reset() {
	l.health = 0
	for i := range l.stateSecs {
		l.stateSecs[i] = 0
	}
	l.enteredAt = 0
	l.factor = 1
}

// lifecycleLeaky forgets the per-state accounting array — the exact bug a
// recycled world would surface as time bleeding between replicas.
type lifecycleLeaky struct {
	health    healthState
	stateSecs [4]float64
}

func (l *lifecycleLeaky) Reset() { // want `lifecycleLeaky.Reset: field stateSecs is not reset`
	l.health = 0
}

// poolEnv mimics a pooled message envelope.
type poolEnv struct{ kind int }

// pool mimics a pooled-envelope free list: the slice must be swept so stale
// payloads don't outlive the run that allocated them.
type pool struct {
	free []*poolEnv
	hits int
}

func (p *pool) Reset() {
	for i := range p.free {
		p.free[i] = nil
	}
	p.free = p.free[:0]
	p.hits = 0
}

// poolLeaky forgets the free list — recycled envelopes would carry stale
// payload references into the next run.
type poolLeaky struct {
	free []*poolEnv
	hits int
}

func (p *poolLeaky) Reset() { // want `poolLeaky.Reset: field free is not reset`
	p.hits = 0
}

// ringBuf mimics simkernel.Ring: head/count indices plus a retained backing
// array whose occupied slots must be zeroed.
type ringBuf struct {
	buf  []*poolEnv
	head int
	n    int
}

func (r *ringBuf) Reset() {
	for i := range r.buf {
		r.buf[i] = nil
	}
	r.head = 0
	r.n = 0
}

// ringHolder delegates a ring-buffer field to the ring's own Reset.
type ringHolder struct {
	q   ringBuf
	gen int
}

func (h *ringHolder) Reset() {
	h.q.Reset()
	h.gen++
}

// ringHolderLeaky never touches its ring: queued entries would survive into
// the next run.
type ringHolderLeaky struct {
	q ringBuf
}

func (h *ringHolderLeaky) Reset() { // want `ringHolderLeaky.Reset: field q is not reset`
}
