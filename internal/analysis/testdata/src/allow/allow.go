// Package allow exercises the shared //repro: directive machinery: grammar
// errors, placement errors, and stale suppressions are findings in their own
// right, attributed to reprolint itself.
package allow

import "time"

// validTrailing suppresses a real finding on its own line.
func validTrailing() time.Time {
	return time.Now() //repro:allow nodeterm cold-path timestamp for a report header
}

// validStandalone guards the following line.
func validStandalone() time.Time {
	//repro:allow nodeterm cold-path timestamp for a report header
	return time.Now()
}

func bareAllow() {
	//repro:allow // want `//repro:allow needs an analyzer name and a reason`
}

func unknownAnalyzer() {
	//repro:allow gofmt because reasons // want `//repro:allow names unknown analyzer "gofmt" \(have nodeterm, rngxonly, hotpath, resetcomplete, poolown, contblock, ringdiscipline\)`
}

func missingReason() time.Time {
	return time.Now() //repro:allow nodeterm // want `//repro:allow nodeterm needs a reason` `time.Now reads the wall clock`
}

func staleAllow() int {
	x := 1 //repro:allow nodeterm nothing here reads the clock anymore // want `unused //repro:allow nodeterm: no nodeterm finding on the guarded line \(stale suppression — delete it\)`
	return x
}

// wrongAnalyzerDoesNotSuppress: an allow for one analyzer leaves another
// analyzer's finding on the same line intact — and is itself stale.
func wrongAnalyzerDoesNotSuppress() time.Time {
	return time.Now() //repro:allow hotpath misattributed waiver // want `time.Now reads the wall clock` `unused //repro:allow hotpath`
}

//repro:hotpath with arguments // want `//repro:hotpath takes no arguments`
func hotpathWithArgs() {}

func misplacedHotpath() {
	//repro:hotpath // want `misplaced //repro:hotpath: it must appear in a function's doc comment`
}

type waivers struct {
	a int //repro:reset-skip held open intentionally
	b int //repro:reset-skip // want `//repro:reset-skip needs a reason`
}

func (w *waivers) Reset() { // want `waivers.Reset: field b is not reset`
	_ = w
}

// staleSkips: a waiver on a field Reset handles anyway, and a waiver on a
// type with no Reset method at all, are both dead weight.
type staleSkips struct {
	c int //repro:reset-skip held open intentionally // want `unused //repro:reset-skip: the field is reset anyway or its type has no Reset method \(stale waiver — delete it\)`
	d int
}

func (s *staleSkips) Reset() {
	s.c = 0
	s.d = 0
}

type neverReset struct {
	e int //repro:reset-skip retained across runs // want `unused //repro:reset-skip: the field is reset anyway or its type has no Reset method \(stale waiver — delete it\)`
}

//repro:reset-skip misplaced on a function // want `misplaced //repro:reset-skip: it must be attached to a struct field`
func notAField() {}

func unknownKind() {
	//repro:frobnicate // want `unknown //repro: directive "frobnicate" \(have allow, hotpath, reset-skip\)`
}
