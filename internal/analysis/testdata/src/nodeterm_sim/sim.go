// Package sim exercises nodeterm inside a simulation package: wall-clock
// calls, ambient randomness imports, and map iteration are all policed here.
package sim

import (
	crand "crypto/rand" // want `crypto/rand is nondeterministic by design`
	"math/rand"         // want `simulation packages must not import math/rand`
	"sort"
	"time"
)

func wallClock() time.Duration {
	t0 := time.Now()      // want `time.Now reads the wall clock`
	time.Sleep(1)         // want `time.Sleep reads the wall clock`
	return time.Since(t0) // want `time.Since reads the wall clock`
}

// pureTimeUsesAreFine only converts and compares; no wall-clock reads.
func pureTimeUsesAreFine(ms int) time.Duration {
	d := time.Duration(ms) * time.Millisecond
	u := time.Unix(0, 0)
	_ = u
	return d
}

func waivedWallClock() time.Time {
	return time.Now() //repro:allow nodeterm fixture exercises the trailing waiver
}

func waivedStandalone() time.Time {
	//repro:allow nodeterm fixture exercises the standalone waiver
	return time.Now()
}

func ambientRandomness() {
	var b [8]byte
	crand.Read(b[:])
	_ = rand.Int()
}

func mapOrderLeaks(m map[int]float64) float64 {
	var sum float64
	for _, v := range m { // want `map iteration order is nondeterministic`
		sum += v
	}
	return sum
}

// sortedIdiom is the sanctioned pattern: collect keys, sort, then iterate.
func sortedIdiom(m map[int]float64) float64 {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	var sum float64
	for _, k := range keys {
		sum += m[k]
	}
	return sum
}

// sortSliceIdiom uses sort.Slice with a comparator mentioning the slice.
func sortSliceIdiom(m map[string]int) []string {
	names := []string{}
	for k := range m {
		names = append(names, k)
	}
	sort.Slice(names, func(i, j int) bool { return names[i] < names[j] })
	return names
}

// unsortedCollect appends but never sorts: still order-dependent.
func unsortedCollect(m map[int]int) []int {
	var keys []int
	for k := range m { // want `map iteration order is nondeterministic`
		keys = append(keys, k)
	}
	return keys
}

// bodyDoesMore than the single append: not the idiom.
func bodyDoesMore(m map[int]int) []int {
	var keys []int
	total := 0
	for k := range m { // want `map iteration order is nondeterministic`
		total += k
		keys = append(keys, k)
	}
	sort.Ints(keys)
	_ = total
	return keys
}

func waivedMapRange(m map[int]int) int {
	n := 0
	for range m { //repro:allow nodeterm counting only, order cannot matter
		n++
	}
	return n
}

// rangeOverSliceIsFine never touches a map.
func rangeOverSliceIsFine(s []int) int {
	sum := 0
	for _, v := range s {
		sum += v
	}
	return sum
}
