// Package stats exercises rngxonly: any math/rand use outside
// repro/internal/rngx must go through an rngx stream instead.
package stats

import (
	"math/rand"
	_ "math/rand/v2" // want `import of math/rand/v2 outside internal/rngx`
)

func construct(seed int64) *rand.Rand { // want `math/rand.Rand bypasses the internal/rngx substream discipline`
	return rand.New(rand.NewSource(seed)) // want `math/rand.New bypasses` `math/rand.NewSource bypasses`
}

func ambient() float64 {
	return rand.Float64() // want `math/rand.Float64 bypasses`
}

func waived() int {
	return rand.Int() //repro:allow rngxonly fixture exercises the waiver
}
