package hot

import "fmt"

// ContProc mirrors the kernel's continuation handle. The fixture package is
// loaded under the repro/internal/simkernel import path, so a parameter of
// type *ContProc marks a function as an implicitly hot continuation body —
// no //repro:hotpath directive required.
type ContProc struct {
	deadline int64
}

type contMachine struct {
	pc  int
	out []int
}

// Step has no directive: the *ContProc parameter alone makes the analyzer
// audit it.
func (m *contMachine) Step(c *ContProc) bool {
	switch m.pc {
	case 0:
		m.out = append(m.out, 1) // receiver-owned append: fine
		scratch := make([]int, 0, 4)
		scratch = append(scratch, m.pc) // body-local append: fine
		m.out = scratch
		m.pc = 1
		return false
	case 1:
		global = append(global, m.pc)  // want `append to global, which this function does not own`
		f := func() int { return m.pc } // want `closure captures m and allocates per call`
		_ = f()
		return false
	default:
		name := fmt.Sprintf("cont-%d", m.pc) // want `fmt.Sprintf allocates through reflection-driven formatting`
		_ = name
		sink = m.pc // want `converting int to any boxes the value on the heap`
		return true
	}
}

// stepHelper is not named Step and has extra parameters, but the *ContProc
// in its signature still marks it hot.
func stepHelper(c *ContProc, weight int) {
	consume(weight) // want `converting int to any boxes the value on the heap`
}

// panicInCont keeps the panic-path escape hatch: formatting inside panic
// arguments stays sanctioned for implicitly hot bodies too.
func panicInCont(c *ContProc) {
	if c.deadline < 0 {
		panic(fmt.Sprintf("negative deadline %d", c.deadline))
	}
}

// valueParam takes ContProc by value, not pointer — that is not the kernel's
// resume signature, so the function is not implicitly hot and its formatting
// goes unreported.
func valueParam(c ContProc) string {
	return fmt.Sprintf("%d", c.deadline)
}
