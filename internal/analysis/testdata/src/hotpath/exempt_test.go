package hot

import "fmt"

// Test files are exempt from the implicit ContProc rule: this machine would
// trip every hotpath check, and none of it is reported.
type testOnlyMachine struct {
	pc int
}

func (m *testOnlyMachine) Step(c *ContProc) bool {
	global = append(global, m.pc)
	sink = m.pc
	_ = fmt.Sprintf("step %d", m.pc)
	f := func() int { return m.pc }
	_ = f()
	return true
}

// annotatedInTest keeps the explicit directive authoritative even in a test
// file.
//
//repro:hotpath
func annotatedInTest(weight int) {
	consume(weight) // want `converting int to any boxes the value on the heap`
}

// Methods added to a continuation-machine type (pumpOp, whose Step lives in
// pump.go) from a test file are exempt from the receiver-propagation rule:
// test helpers on hot types exist to exercise semantics, not to be fast.
func (o *pumpOp) testFeed(n int) {
	sink = n
	_ = fmt.Sprintf("feed %d", n)
	f := func() int { return o.next }
	_ = f()
}
