package hot

// Receiver-propagation cases: a named type with any *ContProc-param method
// is a continuation machine, and every one of its methods is implicitly hot
// — including helpers with no ContProc in their own signature.

// pumpOp is a continuation machine: Step takes *ContProc.
type pumpOp struct {
	pending []int
	next    int
}

func (o *pumpOp) Step(c *ContProc) bool {
	return o.next >= len(o.pending)
}

// feed has no ContProc parameter, but its receiver type has a ContProc
// method, so the analyzer audits it anyway.
func (o *pumpOp) feed(n int) {
	o.pending = append(o.pending, n) // receiver-owned append: fine
	sink = n                         // want `converting int to any boxes the value on the heap`
}

// envelope mimics the pooled wire messages of a message pump: sent as a
// pointer it fits the interface word, sent by value it boxes.
type envelope struct {
	kind, writer int
}

func (o *pumpOp) send(e *envelope, v envelope) {
	consume(e) // pointer-shaped payload: no allocation, no report
	consume(v) // want `converting .*envelope to any boxes the value on the heap`
}

// pumpPool is a free list reached from the machine's methods; its own
// methods have no ContProc anywhere, so it is audited only where annotated.
type pumpPool struct {
	free []*envelope
}

//repro:hotpath
func (p *pumpPool) get() *envelope {
	if n := len(p.free); n > 0 {
		e := p.free[n-1]
		p.free = p.free[:n-1]
		return e
	}
	return &envelope{}
}

// coldHelper has no ContProc method anywhere on its type and no directive:
// its boxing goes unreported.
type coldHelper struct{ n int }

func (t *coldHelper) stash() {
	sink = t.n
}
