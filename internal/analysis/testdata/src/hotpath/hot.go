// Package hot exercises the hotpath analyzer: only functions annotated
// //repro:hotpath are audited, for capturing closures, formatting calls,
// interface boxing and appends to storage the function does not own.
package hot

import (
	"errors"
	"fmt"
)

type ring struct {
	buf   []int
	spill []int
	gen   int
}

var errFull = errors.New("ring full")

var sink any

var global []int

func consume(v any)         { _ = v }
func consumeMany(vs ...any) { _ = vs }

// push is the annotated happy case: receiver-owned append, concrete locals,
// panic-path formatting only.
//
//repro:hotpath
func (r *ring) push(v int) error {
	if v < 0 {
		panic(fmt.Sprintf("ring.push: negative value %d", v))
	}
	r.buf = append(r.buf, v)
	local := make([]int, 0, 4)
	local = append(local, v)
	r.spill = local
	r.gen++
	if len(r.buf) > 1024 {
		return errFull
	}
	return nil
}

// capture allocates a closure cell per call.
//
//repro:hotpath
func (r *ring) capture(v int) func() int {
	return func() int { return v + r.gen } // want `closure captures v, r and allocates per call`
}

// cachedClosure shows the waiver form for a once-built closure.
//
//repro:hotpath
func cachedClosure(base int) func() int {
	return func() int { //repro:allow hotpath built once and cached by the caller
		return base
	}
}

// selfContainedLiteral captures nothing: parameters and locals only.
//
//repro:hotpath
func selfContainedLiteral() func(int) int {
	return func(x int) int {
		y := x * 2
		return y
	}
}

//repro:hotpath
func formatting(n int) string {
	return fmt.Sprintf("n=%d", n) // want `fmt.Sprintf allocates through reflection-driven formatting`
}

//repro:hotpath
func coldError() error {
	return errors.New("boom") // want `errors.New allocates per call`
}

//repro:hotpath
func boxing(n int, ch chan any) {
	sink = n          // want `converting int to any boxes the value`
	consume(n)        // want `converting int to any boxes the value`
	consumeMany(n, n) // want `converting int to any boxes the value` `converting int to any boxes the value`
	ch <- n           // want `converting int to any boxes the value`
	var v any = n     // want `converting int to any boxes the value`
	_ = v
	_ = any(n) // want `converting int to any boxes the value`
}

//repro:hotpath
func pointerShapedAndNilAreFree(p *int, m map[int]int, f func(), vs []any) {
	sink = p
	sink = m
	sink = f
	sink = nil
	consumeMany(vs...) // passing the slice through does not box
	consume(p)
}

//repro:hotpath
func boxingInPanicIsSanctioned(n int) {
	if n < 0 {
		panic(n)
	}
}

//repro:hotpath
func returnsBoxed(n int) any {
	return n // want `converting int to any boxes the value`
}

//repro:hotpath
func appendToParam(dst []int, v int) []int {
	return append(dst, v) // want `append to dst, which this function does not own`
}

//repro:hotpath
func appendToGlobal(v int) {
	global = append(global, v) // want `append to global, which this function does not own`
}

//repro:hotpath
func appendWaived(dst []int, v int) []int {
	return append(dst, v) //repro:allow hotpath caller passes the scratch buffer by design
}

// unannotated is full of everything hotpath hates, and reports nothing.
func unannotated(dst []int, n int) ([]int, string, error) {
	sink = n
	c := func() int { return n }
	_ = c
	return append(dst, n), fmt.Sprintf("%d", n), errors.New("x")
}
