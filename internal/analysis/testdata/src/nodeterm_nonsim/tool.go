// Package tool exercises nodeterm outside the simulation packages: wall-clock
// reads are still policed (results must be reproducible end to end), but map
// iteration and math/rand imports are not nodeterm's business here — direct
// math/rand construction is rngxonly's domain.
package tool

import (
	"math/rand"
	"time"
)

func wallClock() time.Time {
	return time.Now() // want `time.Now reads the wall clock`
}

// mapRangeIsFineOffSimPath: a CLI summarizing results may iterate freely.
func mapRangeIsFineOffSimPath(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

func mathRandIsRngxonlysDomain() int {
	return rand.Intn(10)
}
