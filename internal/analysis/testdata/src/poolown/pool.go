// Package poolown fixtures: a local mirror of the pooled-envelope and
// rented-world shapes poolown tracks. The pool types end in Pool/pool and
// expose get/Rent returning pointers, which is all the analyzer keys on.
package poolown

import "errors"

type envelope struct {
	kind int
	size int64
}

type envPool struct {
	free []*envelope
}

func (p *envPool) get(kind int) *envelope {
	if n := len(p.free); n > 0 {
		m := p.free[n-1]
		p.free = p.free[:n-1]
		m.kind = kind
		return m
	}
	return &envelope{kind: kind}
}

func (p *envPool) put(m *envelope) {
	*m = envelope{}
	p.free = append(p.free, m)
}

// mailbox mirrors the kernel mailbox handoff surface.
type mailbox struct {
	q []any
}

func (m *mailbox) Send(v any)                   { m.q = append(m.q, v) }
func (m *mailbox) SendFrom(from, to int, v any) { m.q = append(m.q, v) }

// world / worldPool mirror cluster.Pool's Rent/Return pair.
type world struct {
	id int
}

type worldPool struct {
	free []*world
}

var errExhausted = errors.New("pool exhausted")

func (p *worldPool) Rent(name string) (*world, error) {
	if len(p.free) == 0 {
		return nil, errExhausted
	}
	w := p.free[len(p.free)-1]
	p.free = p.free[:len(p.free)-1]
	return w, nil
}

func (p *worldPool) Return(w *world) {
	if w != nil {
		p.free = append(p.free, w)
	}
}
