package poolown

// Clean lifecycles the analyzer must stay silent on, and the violations it
// must catch. The mutation test in reprolint_test.go rewrites cleanRecycle
// to drop its put call and asserts poolown trips — proving ownership is
// tracked through the dataflow, not pattern-matched.

// cleanRecycle claims an envelope off the wire, reads it, and recycles it.
func cleanRecycle(p *envPool, data any) int {
	env := data.(*envelope)
	kind := env.kind
	p.put(env) // mutation target: deleting this line must trip poolown
	return kind
}

// cleanHandoff rents and hands ownership to the mailbox.
func cleanHandoff(p *envPool, mb *mailbox) {
	env := p.get(3)
	env.size = 42
	mb.SendFrom(0, 1, env)
}

// cleanBranches releases on every path.
func cleanBranches(p *envPool, mb *mailbox, urgent bool) {
	env := p.get(1)
	if urgent {
		mb.Send(env)
		return
	}
	p.put(env)
}

// cleanRent follows the rent / err-check / deferred-return protocol.
func cleanRent(pool *worldPool) (int, error) {
	w, err := pool.Rent("quick")
	if err != nil {
		return 0, err
	}
	defer pool.Return(w)
	return w.id, nil
}

// cleanEscape stores the envelope; ownership left this function's view.
type holder struct{ pending *envelope }

func cleanEscape(p *envPool, h *holder) {
	h.pending = p.get(7)
}

// cleanPanicPath never reaches return with the envelope owned: the panic
// path does not count as a leak.
func cleanPanicPath(p *envPool, ok bool) {
	env := p.get(2)
	if !ok {
		panic("invariant broken")
	}
	p.put(env)
}

// cleanLoop recycles each iteration's envelope before renting the next.
func cleanLoop(p *envPool, n int) int {
	total := 0
	for i := 0; i < n; i++ {
		env := p.get(i)
		total += env.kind
		p.put(env)
	}
	return total
}

// leakSimple never releases. The diagnostic lands on the rental site.
func leakSimple(p *envPool) int {
	env := p.get(4) // want `pooled value from p\.get\(\.\.\.\) is not released on every path`
	return env.kind
}

// leakOneBranch releases on only one of two paths.
func leakOneBranch(p *envPool, keep bool) {
	env := p.get(5) // want `not released on every path`
	if keep {
		return
	}
	p.put(env)
}

// leakRentNoReturn rents a world and forgets to return it.
func leakRentNoReturn(pool *worldPool) int {
	w, err := pool.Rent("leaky") // want `pooled value from pool\.Rent\(\.\.\.\) is not released on every path`
	if err != nil {
		return 0
	}
	return w.id
}

// useAfterPut touches the envelope after the pool took it back.
func useAfterPut(p *envPool, data any) int {
	env := data.(*envelope)
	p.put(env)
	return env.kind // want `already released or handed off`
}

// writeAfterSend mutates an envelope whose ownership went with the send.
func writeAfterSend(p *envPool, mb *mailbox) {
	env := p.get(6)
	mb.Send(env)
	env.size = 99 // want `already released or handed off`
}

// doubleRelease recycles twice.
func doubleRelease(p *envPool, data any) {
	env := data.(*envelope)
	p.put(env)
	p.put(env) // want `released twice`
}

// useAfterConditionalSend: the send happens on SOME path, so the later read
// may race a recycled envelope.
func useAfterConditionalSend(p *envPool, mb *mailbox, fast bool) int {
	env := p.get(8)
	if fast {
		mb.Send(env)
	} else {
		p.put(env)
	}
	return env.kind // want `already released or handed off`
}

// nilCheckAfterHandoff stays legal: comparing the pointer reads no pooled
// state.
func nilCheckAfterHandoff(p *envPool, mb *mailbox) bool {
	env := p.get(9)
	mb.Send(env)
	return env != nil
}

// returnTransfers ownership to the caller; not a leak.
func returnTransfers(p *envPool) *envelope {
	return p.get(10)
}

// waivedLeak shows the escape hatch.
func waivedLeak(p *envPool) {
	env := p.get(11) //repro:allow poolown fixture: lifetime managed by test harness
	_ = env.kind
}
