// Package simkernel is the ringdiscipline fixture's Ring mirror, loaded
// under the real simkernel import path so the analyzer's type key matches.
// Field names mirror the real Ring: buf/head/n are the internals R3 guards.
package simkernel

type Ring struct {
	buf  []int
	head int
	n    int
}

func (r *Ring) Len() int { return r.n }

func (r *Ring) Push(v int) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)%len(r.buf)] = v
	r.n++
}

func (r *Ring) Pop() int {
	v := r.buf[r.head]
	r.head = (r.head + 1) % len(r.buf)
	r.n--
	return v
}

func (r *Ring) At(i int) int {
	return r.buf[(r.head+i)%len(r.buf)]
}

func (r *Ring) RemoveAt(i int) int {
	v := r.At(i)
	for j := i; j < r.n-1; j++ {
		r.buf[(r.head+j)%len(r.buf)] = r.buf[(r.head+j+1)%len(r.buf)]
	}
	r.n--
	return v
}

func (r *Ring) Reset() {
	r.head, r.n = 0, 0
}

func (r *Ring) grow() {
	next := make([]int, 2*len(r.buf)+1)
	for i := 0; i < r.n; i++ {
		next[i] = r.At(i)
	}
	r.buf, r.head = next, 0
}

// Kernel mirrors the OnReset registration surface for the R2 rule.
type Kernel struct {
	hooks []func()
}

func (k *Kernel) OnReset(fn func()) { k.hooks = append(k.hooks, fn) }
