package simkernel

// R1: index staleness across ring mutations.

// cleanScan is the mpisim deliver pattern: find, remove, leave.
func cleanScan(q *Ring, x int) bool {
	for i := 0; i < q.Len(); i++ {
		if q.At(i) == x {
			q.RemoveAt(i)
			return true
		}
	}
	return false
}

// cleanCompensated keeps scanning after a removal by recomputing the index.
func cleanCompensated(q *Ring, bad int) {
	for i := 0; i < q.Len(); i++ {
		if q.At(i) == bad {
			q.RemoveAt(i)
			i--
		}
	}
}

// cleanPush: a tail push keeps logical indices valid.
func cleanPush(q *Ring, i, v int) int {
	before := q.At(i)
	q.Push(v)
	return before + q.At(i)
}

// staleAfterRemove reuses the index past the hole it just made: every
// element at or after i shifted down.
func staleAfterRemove(q *Ring, i int) int {
	v := q.At(i)
	q.RemoveAt(i)
	return v + q.At(i) // want `index i into q is stale`
}

// staleAfterPop reuses an index after the head moved under it.
func staleAfterPop(q *Ring, i int) int {
	v := q.At(i)
	q.Pop()
	return v + q.At(i) // want `index i into q is stale`
}

// staleOneBranch: the mutation happens on SOME path, which is enough.
func staleOneBranch(q *Ring, i int, drop bool) int {
	v := q.At(i)
	if drop {
		q.RemoveAt(i)
	}
	return v + q.At(i) // want `index i into q is stale`
}

// refreshed recomputes the index after the mutation: legal.
func refreshed(q *Ring, i int) int {
	v := q.At(i)
	q.RemoveAt(i)
	i = 0
	return v + q.At(i)
}

// distinctRings: mutating one ring does not stale another's indices.
func distinctRings(a, b *Ring, i int) int {
	v := a.At(i)
	b.Pop()
	return v + a.At(i)
}

// R2: Reset callers.

type store struct {
	q Ring
}

// Reset is a sanctioned caller by name.
func (s *store) Reset() {
	s.q.Reset()
}

// register hooks the reset into the kernel: the literal is sanctioned.
func (s *store) register(k *Kernel) {
	k.OnReset(func() {
		s.q.Reset()
	})
}

// dropAll is neither: queued elements vanish mid-run.
func dropAll(q *Ring) {
	q.Reset() // want `Ring\.Reset discards queued elements`
}

// waivedReset shows the escape hatch.
func waivedReset(q *Ring) {
	q.Reset() //repro:allow ringdiscipline fixture: drains a scratch ring between test phases
}

// R3: internal field access outside Ring's methods.

func peekRaw(q *Ring) int {
	return q.buf[q.head] // want `direct access to Ring\.buf` `direct access to Ring\.head`
}
