// Package rngx stands in for repro/internal/rngx: the one sanctioned
// math/rand consumer. Nothing here may be reported, whether analyzed as the
// package proper or as its test variant.
package rngx

import "math/rand"

// Source wraps the stdlib generator the way the real rngx does.
type Source struct {
	r *rand.Rand
}

func New(seed int64) *Source {
	return &Source{r: rand.New(rand.NewSource(seed))}
}

func (s *Source) Float64() float64 { return s.r.Float64() }
