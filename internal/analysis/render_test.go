package analysis

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestFindingsJSON pins the -json schema: position-resolved fields, suite
// order preserved, and an empty run rendering as [] rather than null.
func TestFindingsJSON(t *testing.T) {
	pkg := loadFixture(t, "nodeterm_sim", "repro/internal/simkernel")
	diags, err := RunSuite(pkg, Suite())
	if err != nil {
		t.Fatalf("RunSuite: %v", err)
	}
	if len(diags) == 0 {
		t.Fatal("fixture produced no diagnostics to render")
	}

	findings := FindingsFrom(pkg, diags)
	var buf bytes.Buffer
	if err := WriteFindingsJSON(&buf, findings); err != nil {
		t.Fatalf("WriteFindingsJSON: %v", err)
	}

	var parsed []Finding
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if len(parsed) != len(diags) {
		t.Fatalf("got %d findings, want %d", len(parsed), len(diags))
	}
	for i, f := range parsed {
		if f.File == "" || f.Line == 0 || f.Analyzer == "" || f.Message == "" {
			t.Errorf("finding %d has unresolved fields: %+v", i, f)
		}
		if f.Package != "repro/internal/simkernel" {
			t.Errorf("finding %d: package = %q, want repro/internal/simkernel", i, f.Package)
		}
		posn := pkg.Fset.Position(diags[i].Pos)
		if f.Line != posn.Line || f.Message != diags[i].Message {
			t.Errorf("finding %d does not preserve diagnostic order", i)
		}
	}
}

func TestFindingsJSONEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFindingsJSON(&buf, nil); err != nil {
		t.Fatalf("WriteFindingsJSON(nil): %v", err)
	}
	if got := strings.TrimSpace(buf.String()); got != "[]" {
		t.Errorf("empty findings render as %q, want []", got)
	}
}
