package interference

import (
	"strings"
	"testing"

	"repro/internal/pfs"
	"repro/internal/simkernel"
)

func failScript() FailureConfig {
	return FailureConfig{
		Enabled: true,
		Episodes: []FailureEpisode{
			{OST: 1, At: 2, DeadFor: 3, RebuildFor: 4, RebuildTax: 0.5},
			{OST: 3, At: 5, DeadFor: 1}, // no rebuild phase
		},
		MDSStallAt:  1,
		MDSStallFor: 2,
	}
}

// sampleHealth records OST states at fixed virtual times via kernel events.
func sampleHealth(k *simkernel.Kernel, fs *pfs.FileSystem, ost int, at ...float64) []pfs.HealthState {
	out := make([]pfs.HealthState, len(at))
	for i := range at {
		i := i
		// +1ns so the probe fires after same-timestamp transitions.
		k.At(simkernel.FromSeconds(at[i])+1, func() { out[i] = fs.OST(ost).Health() })
	}
	return out
}

func TestFailureScriptDrivesHealthLifecycle(t *testing.T) {
	k, fs := testFS(t, 4)
	if _, err := StartFailures(fs, failScript()); err != nil {
		t.Fatal(err)
	}
	ost1 := sampleHealth(k, fs, 1, 0, 2, 4, 5, 8, 9.5)
	ost3 := sampleHealth(k, fs, 3, 4, 5, 6)
	k.RunUntil(simkernel.FromSeconds(20))

	want1 := []pfs.HealthState{pfs.Healthy, pfs.Dead, pfs.Dead, pfs.Rebuilding, pfs.Rebuilding, pfs.Healthy}
	for i, w := range want1 {
		if ost1[i] != w {
			t.Errorf("OST 1 sample %d: health %v, want %v", i, ost1[i], w)
		}
	}
	// OST 3 has no rebuild phase: Dead at 5, straight back to Healthy at 6.
	want3 := []pfs.HealthState{pfs.Healthy, pfs.Dead, pfs.Healthy}
	for i, w := range want3 {
		if ost3[i] != w {
			t.Errorf("OST 3 sample %d: health %v, want %v", i, ost3[i], w)
		}
	}
	// Rebuilding taxes half the disk bandwidth.
	secs := fs.OST(1).HealthSeconds()
	if secs[pfs.Dead] != 3 || secs[pfs.Rebuilding] != 4 {
		t.Errorf("OST 1 state residence = %v, want Dead 3s, Rebuilding 4s", secs)
	}
	// The MDS stall window spans [1, 3].
	if got := fs.MDS.StallUntil(); got != simkernel.FromSeconds(3) {
		t.Errorf("MDS stall until %v, want 3s", got.Seconds())
	}
	k.Shutdown()
}

func TestFailureRebuildTaxesDiskBandwidth(t *testing.T) {
	k, fs := testFS(t, 4)
	if _, err := StartFailures(fs, failScript()); err != nil {
		t.Fatal(err)
	}
	var factor float64
	k.At(simkernel.FromSeconds(6), func() { factor = fs.OST(1).HealthFactor() })
	k.RunUntil(simkernel.FromSeconds(20))
	k.Shutdown()
	if factor != 0.5 {
		t.Fatalf("rebuild health factor = %v, want 0.5 (tax 0.5)", factor)
	}
}

func TestDisabledFailuresAreInert(t *testing.T) {
	k, fs := testFS(t, 4)
	cfg := failScript()
	cfg.Enabled = false
	if _, err := StartFailures(fs, cfg); err != nil {
		t.Fatal(err)
	}
	k.RunUntil(simkernel.FromSeconds(20))
	k.Shutdown()
	for i := 0; i < 4; i++ {
		if fs.OST(i).Health() != pfs.Healthy {
			t.Fatalf("disabled injector perturbed OST %d", i)
		}
	}
	if fs.MDS.StallUntil() != 0 {
		t.Fatal("disabled injector stalled the MDS")
	}
}

func TestFailureStopRestoresCleanState(t *testing.T) {
	k, fs := testFS(t, 4)
	f, err := StartFailures(fs, failScript())
	if err != nil {
		t.Fatal(err)
	}
	// Stop mid-outage: OST 1 is Dead at t=3.
	k.At(simkernel.FromSeconds(3), func() { f.Stop() })
	k.RunUntil(simkernel.FromSeconds(20))
	k.Shutdown()
	for i := 0; i < 4; i++ {
		if fs.OST(i).Health() != pfs.Healthy || fs.OST(i).HealthFactor() != 1 {
			t.Fatalf("OST %d not clean after Stop", i)
		}
	}
	if fs.MDS.StallUntil() != 0 {
		t.Fatal("MDS stall survived Stop")
	}
}

// TestFailureResetReplaysBitIdentically pins the reuse contract: a Reset
// injector on a Reset kernel/fs replays the script exactly as a fresh one.
func TestFailureResetReplaysBitIdentically(t *testing.T) {
	run := func(k *simkernel.Kernel, fs *pfs.FileSystem) [pfs.NumHealthStates]float64 {
		k.RunUntil(simkernel.FromSeconds(20))
		return fs.OST(1).HealthSeconds()
	}

	k, fs := testFS(t, 4)
	fsCfg := fs.Cfg
	f, err := StartFailures(fs, failScript())
	if err != nil {
		t.Fatal(err)
	}
	first := run(k, fs)

	k.Reset()
	if err := fs.Reset(fsCfg); err != nil {
		t.Fatal(err)
	}
	if !f.CanReset(failScript()) {
		t.Fatal("CanReset refused an identical script")
	}
	if err := f.Reset(failScript()); err != nil {
		t.Fatal(err)
	}
	second := run(k, fs)
	k.Shutdown()

	if first != second {
		t.Fatalf("replayed residence diverged:\nfresh: %v\nreset: %v", first, second)
	}
	if first[pfs.Dead] != 3 {
		t.Fatalf("script did not run (Dead residence %v)", first[pfs.Dead])
	}
}

func TestFailureValidateRejectsBadScripts(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*FailureConfig)
		want string
	}{
		{"ost-range", func(c *FailureConfig) { c.Episodes[0].OST = 9 }, "out of range"},
		{"no-revival", func(c *FailureConfig) { c.Episodes[0].DeadFor = 0 }, "DeadFor must be positive"},
		{"negative-at", func(c *FailureConfig) { c.Episodes[0].At = -1 }, "negative crash time"},
		{"tax-range", func(c *FailureConfig) { c.Episodes[0].RebuildTax = 1 }, "RebuildTax"},
		{"negative-stall", func(c *FailureConfig) { c.MDSStallFor = -1 }, "MDS stall"},
		{"negative-timeout", func(c *FailureConfig) { c.DeadTimeout = -1 }, "dead timeout"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := failScript()
			tc.mut(&cfg)
			err := cfg.Validate(4)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Validate = %v, want error containing %q", err, tc.want)
			}
		})
	}
	if err := failScript().Validate(4); err != nil {
		t.Fatalf("valid script rejected: %v", err)
	}
}
