// Package interference generates the external load that makes petascale IO
// performance variable (Section II of the paper): production background
// noise — other batch jobs and analysis clusters sharing the file system —
// and the paper's artificial interference program used in the Section IV
// evaluations (24 processes continuously writing 1 GB chunks, three per
// storage target across 8 targets).
package interference

import (
	"fmt"

	"repro/internal/pfs"
	"repro/internal/rngx"
	"repro/internal/simkernel"
)

// NoiseConfig describes the stochastic production background load applied
// to a file system. It has three components:
//
//   - A global busy factor, drawn once per episode, that scales every OST's
//     service capacity (shared object-storage servers, network, and backend
//     links make machine-wide slowdowns correlated).
//   - Per-OST on/off episodes during which a target hosts a number of
//     external competing streams (other jobs writing, analysis reads).
//   - Hot-OST episodes: short, severe slowdowns of a few targets (e.g. an
//     attached analysis cluster reading recent output), producing the
//     transient imbalance of the paper's Figure 3.
type NoiseConfig struct {
	// Enabled turns the noise process on.
	Enabled bool

	// GlobalCV is the coefficient of variation of the machine-wide busy
	// factor (lognormal with mean 1, truncated to (0,1] as a slow factor
	// multiplier on top of per-OST state).
	GlobalCV float64

	// GlobalMeanEpisode is the mean duration, in seconds, between redraws
	// of the global busy factor.
	GlobalMeanEpisode float64

	// PerOSTMeanOn / PerOSTMeanOff are the mean durations, in seconds, of
	// an OST's busy/idle episodes.
	PerOSTMeanOn  float64
	PerOSTMeanOff float64

	// StreamsWhenOn is the mean number of external streams on a busy OST
	// (Poisson, at least 1 when busy).
	StreamsWhenOn float64

	// HotMeanEvery is the mean seconds between hot-OST episodes; zero
	// disables them.
	HotMeanEvery float64
	// HotDuration is the mean duration of a hot episode in seconds.
	HotDuration float64
	// HotOSTs is how many targets a hot episode strikes.
	HotOSTs int
	// HotSlowFactor is the service multiplier applied to hot targets
	// (e.g. 0.3 = the target runs at 30% speed).
	HotSlowFactor float64

	// Seed drives the noise processes; derive it per experiment sample.
	Seed int64
}

// DefaultProduction returns noise calibrated to reproduce the paper's
// production-environment variability (Table I: 40–60% bandwidth CoV on
// Jaguar and Franklin; Figure 3: average imbalance factor around 2 with
// transients beyond 3).
func DefaultProduction(seed int64) NoiseConfig {
	return NoiseConfig{
		Enabled:           true,
		GlobalCV:          0.65,
		GlobalMeanEpisode: 600,
		PerOSTMeanOn:      120,
		PerOSTMeanOff:     260,
		StreamsWhenOn:     2.0,
		HotMeanEvery:      90,
		HotDuration:       45,
		HotOSTs:           24,
		HotSlowFactor:     0.40,
		Seed:              seed,
	}
}

// Noise is a running production-noise generator. A Noise built by Start can
// be re-armed for a later replica with Reset (after the owning kernel and
// file system have been Reset), reusing its derived streams, Markov
// processes, spawn names and process bodies instead of rebuilding them.
type Noise struct {
	fs  *pfs.FileSystem
	cfg NoiseConfig
	rng *rngx.Source

	global  float64   // current machine-wide busy factor (0,1]
	perOST  []ostMood // per-target state
	stopped bool

	// Reuse machinery, built once by Start and re-armed in place by Reset.
	grng       *rngx.Source
	hrng       *rngx.Source
	ostRng     []*rngx.Source
	ostLabels  []string //repro:reset-skip immutable "ost-%d" labels, built once by Start
	ostNames   []string //repro:reset-skip immutable "noise-ost%d" spawn names, built once by Start
	mm         []*rngx.MarkovOnOff
	globalBody func(p *simkernel.Proc)   //repro:reset-skip cached process body, built once by Start
	hotBody    func(p *simkernel.Proc)   //repro:reset-skip cached process body, built once by Start
	ostBodies  []func(p *simkernel.Proc) //repro:reset-skip cached process bodies, built once by Start

	// Continuation machines, one per process: the default engine. arm()
	// rewinds each machine's program counter before every spawn, so the
	// same values serve every replica.
	globalC globalCont
	hotC    hotCont
	ostC    []ostCont
}

type ostMood struct {
	busyStreams int
	hotUntil    simkernel.Time
	hotFactor   float64
}

// Start launches the noise processes on the file system's kernel. With
// Enabled false it returns an inert Noise.
func Start(fs *pfs.FileSystem, cfg NoiseConfig) *Noise {
	n := &Noise{
		fs:     fs,
		cfg:    cfg,
		rng:    rngx.NewNamed(cfg.Seed, "interference"),
		global: 1,
		perOST: make([]ostMood, len(fs.OSTs)),
	}
	if !cfg.Enabled {
		return n
	}
	n.build()
	n.arm()
	return n
}

// build constructs the derived streams, Markov processes, cached names and
// process bodies. Derivation order is part of the reproducibility contract:
// global, then one stream per OST in index order, then hot. The bodies read
// their parameters through n.cfg, so Reset can retune them without
// rebuilding the closures.
func (n *Noise) build() {
	if n.cfg.GlobalCV > 0 {
		n.grng = n.rng.Derive("global")
		n.globalC = globalCont{n: n}
		n.globalBody = func(p *simkernel.Proc) {
			for !n.stopped {
				p.SleepSeconds(n.grng.Exp(maxf(n.cfg.GlobalMeanEpisode, 1)))
				n.global = n.drawGlobal(n.grng)
				n.applyAll()
			}
		}
	}

	if n.cfg.PerOSTMeanOn > 0 && n.cfg.PerOSTMeanOff > 0 {
		numOSTs := len(n.fs.OSTs)
		n.ostRng = make([]*rngx.Source, numOSTs)
		n.ostLabels = make([]string, numOSTs)
		n.ostNames = make([]string, numOSTs)
		n.mm = make([]*rngx.MarkovOnOff, numOSTs)
		n.ostBodies = make([]func(p *simkernel.Proc), numOSTs)
		n.ostC = make([]ostCont, numOSTs)
		for i := 0; i < numOSTs; i++ {
			i := i
			n.ostLabels[i] = fmt.Sprintf("ost-%d", i)
			n.ostNames[i] = fmt.Sprintf("noise-ost%d", i)
			orng := n.rng.Derive(n.ostLabels[i])
			n.ostRng[i] = orng
			mm := rngx.NewMarkovOnOff(orng, n.cfg.PerOSTMeanOn, n.cfg.PerOSTMeanOff)
			n.mm[i] = mm
			n.ostC[i] = ostCont{n: n, i: i}
			n.ostBodies[i] = func(p *simkernel.Proc) {
				for !n.stopped {
					p.SleepSeconds(mm.NextTransition())
					mm.Advance(mm.NextTransition())
					if mm.On() {
						n.perOST[i].busyStreams = n.drawStreams(orng)
					} else {
						n.perOST[i].busyStreams = 0
					}
					n.apply(i)
				}
			}
		}
	}

	if n.cfg.HotMeanEvery > 0 && n.cfg.HotOSTs > 0 {
		n.hrng = n.rng.Derive("hot")
		n.hotC = hotCont{n: n}
		n.hotBody = func(p *simkernel.Proc) {
			for !n.stopped {
				p.SleepSeconds(n.hrng.Exp(n.cfg.HotMeanEvery))
				if n.stopped {
					return
				}
				dur := n.hrng.Exp(maxf(n.cfg.HotDuration, 1))
				until := p.Now() + simkernel.FromSeconds(dur)
				// Strike a contiguous band of targets (analysis reads hit
				// the stripes of one recent output, which are adjacent).
				start := n.hrng.Intn(len(n.fs.OSTs))
				for j := 0; j < n.cfg.HotOSTs; j++ {
					idx := (start + j) % len(n.fs.OSTs)
					n.perOST[idx].hotUntil = until
					n.perOST[idx].hotFactor = n.cfg.HotSlowFactor *
						(0.75 + 0.5*n.hrng.Float64()) // 0.75x–1.25x severity spread
					n.apply(idx)
					idx2 := idx
					n.fs.K.At(until, func() { n.apply(idx2) })
				}
			}
		}
	}
}

// arm draws the initial noise state and spawns the processes. Per-stream
// draw order matches the original inline construction: the global factor
// draws from its own stream, each per-OST stream draws its Markov state at
// build/Reinit time and then (if busy) its stream count here, so splitting
// construction from arming leaves every stream's sequence intact.
func (n *Noise) arm() {
	k := n.fs.K
	cont := simkernel.ContEnabled()
	if n.grng != nil {
		n.global = n.drawGlobal(n.grng)
		n.applyAll()
		if cont {
			n.globalC.pc = 0
			k.SpawnCont("noise-global", &n.globalC)
		} else {
			k.Spawn("noise-global", n.globalBody)
		}
	}
	for i := range n.mm {
		if n.mm[i].On() {
			n.perOST[i].busyStreams = n.drawStreams(n.ostRng[i])
		}
		n.apply(i)
		if cont {
			n.ostC[i].pc = 0
			k.SpawnCont(n.ostNames[i], &n.ostC[i])
		} else {
			k.Spawn(n.ostNames[i], n.ostBodies[i])
		}
	}
	if n.hrng != nil {
		if cont {
			n.hotC.pc = 0
			k.SpawnCont("noise-hot", &n.hotC)
		} else {
			k.Spawn("noise-hot", n.hotBody)
		}
	}
}

// CanReset reports whether Reset(cfg) can re-arm this Noise in place: the
// configuration must keep the same structure (the same sub-processes
// enabled) and the file system the same target count. Parameter values
// (means, CVs, factors, seed) are free to change.
func (n *Noise) CanReset(cfg NoiseConfig) bool {
	return n.cfg.Enabled == cfg.Enabled &&
		(n.cfg.GlobalCV > 0) == (cfg.GlobalCV > 0) &&
		(n.cfg.PerOSTMeanOn > 0 && n.cfg.PerOSTMeanOff > 0) ==
			(cfg.PerOSTMeanOn > 0 && cfg.PerOSTMeanOff > 0) &&
		(n.cfg.HotMeanEvery > 0 && n.cfg.HotOSTs > 0) ==
			(cfg.HotMeanEvery > 0 && cfg.HotOSTs > 0) &&
		len(n.perOST) == len(n.fs.OSTs)
}

// Reset re-arms the noise for a new replica, reseeding every stream to the
// state Start(fs, cfg) would construct and re-spawning the processes (the
// owning kernel must already have been Reset, which unwound the previous
// replica's bodies and recycled their goroutines). CanReset(cfg) must hold.
func (n *Noise) Reset(cfg NoiseConfig) {
	if !n.CanReset(cfg) {
		panic("interference: Reset with structurally different config (check CanReset)")
	}
	n.cfg = cfg
	n.stopped = false
	n.global = 1
	for i := range n.perOST {
		n.perOST[i] = ostMood{}
	}
	if !cfg.Enabled {
		return
	}
	// Reseed in construction order: the master stream yields one derivation
	// draw per sub-stream, exactly as build's Derive calls consumed.
	n.rng.ReseedNamed(cfg.Seed, "interference")
	if n.grng != nil {
		n.grng.ReseedNamed(n.rng.Int63(), "global")
	}
	for i, orng := range n.ostRng {
		orng.ReseedNamed(n.rng.Int63(), n.ostLabels[i])
		m := n.mm[i]
		m.MeanOn, m.MeanOff = cfg.PerOSTMeanOn, cfg.PerOSTMeanOff
		m.Reinit()
	}
	if n.hrng != nil {
		n.hrng.ReseedNamed(n.rng.Int63(), "hot")
	}
	n.arm()
}

// The continuation forms of the three noise bodies: each machine mirrors
// its goroutine closure statement for statement, so both engines draw the
// same random sequences and schedule the same wakeup events (the goroutine
// bodies stay behind REPRO_NO_CONT=1 for bisection). pc 0 is "about to
// sleep", pc 1 is "woken from the sleep".

// globalCont redraws the machine-wide busy factor each episode.
type globalCont struct {
	n  *Noise
	pc int
}

// Step implements simkernel.Cont.
func (g *globalCont) Step(c *simkernel.ContProc) bool {
	n := g.n
	for {
		switch g.pc {
		case 0:
			if n.stopped {
				return true
			}
			c.SleepSeconds(n.grng.Exp(maxf(n.cfg.GlobalMeanEpisode, 1)))
			g.pc = 1
			return false
		default:
			n.global = n.drawGlobal(n.grng)
			n.applyAll()
			g.pc = 0
		}
	}
}

// ostCont flips one target's busy/idle Markov state each transition.
type ostCont struct {
	n  *Noise
	i  int
	pc int
}

// Step implements simkernel.Cont.
func (o *ostCont) Step(c *simkernel.ContProc) bool {
	n, i := o.n, o.i
	mm := n.mm[i]
	for {
		switch o.pc {
		case 0:
			if n.stopped {
				return true
			}
			c.SleepSeconds(mm.NextTransition())
			o.pc = 1
			return false
		default:
			mm.Advance(mm.NextTransition())
			if mm.On() {
				n.perOST[i].busyStreams = n.drawStreams(n.ostRng[i])
			} else {
				n.perOST[i].busyStreams = 0
			}
			n.apply(i)
			o.pc = 0
		}
	}
}

// hotCont strikes a contiguous band of targets each hot episode.
type hotCont struct {
	n  *Noise
	pc int
}

// Step implements simkernel.Cont.
func (h *hotCont) Step(c *simkernel.ContProc) bool {
	n := h.n
	for {
		switch h.pc {
		case 0:
			if n.stopped {
				return true
			}
			c.SleepSeconds(n.hrng.Exp(n.cfg.HotMeanEvery))
			h.pc = 1
			return false
		default:
			if n.stopped {
				return true
			}
			dur := n.hrng.Exp(maxf(n.cfg.HotDuration, 1))
			until := c.Now() + simkernel.FromSeconds(dur)
			// Strike a contiguous band of targets (analysis reads hit
			// the stripes of one recent output, which are adjacent).
			start := n.hrng.Intn(len(n.fs.OSTs))
			for j := 0; j < n.cfg.HotOSTs; j++ {
				idx := (start + j) % len(n.fs.OSTs)
				n.perOST[idx].hotUntil = until
				n.perOST[idx].hotFactor = n.cfg.HotSlowFactor *
					(0.75 + 0.5*n.hrng.Float64()) // 0.75x–1.25x severity spread
				n.apply(idx)
				idx2 := idx
				n.fs.K.At(until, func() { n.apply(idx2) }) //repro:allow hotpath one closure per struck target per hot episode — episodes are minutes apart in virtual time, identical to the goroutine body
			}
			h.pc = 0
		}
	}
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func (n *Noise) drawGlobal(r *rngx.Source) float64 {
	// Lognormal busy level with mean 1; values above 1 mean "quieter than
	// typical", clamped since slowFactor is a pure degradation.
	v := r.LognormalMeanCV(1, n.cfg.GlobalCV)
	if v > 1 {
		v = 1
	}
	if v < 0.05 {
		v = 0.05
	}
	return v
}

func (n *Noise) drawStreams(r *rngx.Source) int {
	s := r.Poisson(n.cfg.StreamsWhenOn)
	if s < 1 {
		s = 1
	}
	return s
}

// apply pushes OST i's combined noise state into the pfs model: the global
// busy factor degrades the network/OSS side everywhere (slowing every
// client stream, cache-absorbed or not), while disk-side slowness combines
// the global factor with any hot episode on this target.
func (n *Noise) apply(i int) {
	m := &n.perOST[i]
	slow := n.global
	if n.fs.K.Now() < m.hotUntil && m.hotFactor > 0 {
		slow *= m.hotFactor
	}
	// Episode boundaries frequently recompute to the value already in
	// force (a hot window expiring on an OST whose Markov state also just
	// went idle, or a global redraw landing on the same clamp). Skip the
	// setters then: each one advances flow accounting and replans the
	// target, which is wasted work — and wasted event churn — when nothing
	// changed.
	o := n.fs.OST(i)
	if slow != o.SlowFactor() {
		o.SetSlowFactor(slow)
	}
	if n.global != o.IngestFactor() {
		o.SetIngestFactor(n.global)
	}
	if m.busyStreams != o.ExternalStreams() {
		o.SetExternalStreams(m.busyStreams)
	}
}

func (n *Noise) applyAll() {
	for i := range n.perOST {
		n.apply(i)
	}
}

// Stop halts the noise processes after their next wakeup and restores all
// targets to clean state.
func (n *Noise) Stop() {
	n.stopped = true
	for i := range n.perOST {
		n.perOST[i] = ostMood{}
	}
	n.global = 1
	n.applyAll()
	for i := range n.perOST {
		n.fs.OST(i).SetIngestFactor(1)
	}
}

// GlobalFactor exposes the current machine-wide busy factor (diagnostics).
func (n *Noise) GlobalFactor() float64 { return n.global }

// ArtificialConfig reproduces the paper's Section IV interference program:
// "External interference is introduced through a separate program that
// continuously writes to a file striped across 8 storage targets ... Three
// processes each write 1 GB continuously to a single storage target, for a
// total of 24 processes."
type ArtificialConfig struct {
	// OSTs are the storage targets to load; default is the first 8.
	OSTs []int
	// ProcsPerOST is the number of continuous writers per target (3).
	ProcsPerOST int
	// ChunkBytes is each writer's repeated write size (1 GB).
	ChunkBytes float64
}

// DefaultArtificial returns the paper's exact configuration against the
// given file system.
func DefaultArtificial(fs *pfs.FileSystem) ArtificialConfig {
	osts := make([]int, 8)
	for i := range osts {
		osts[i] = i % len(fs.OSTs)
	}
	return ArtificialConfig{OSTs: osts, ProcsPerOST: 3, ChunkBytes: 1 * pfs.GB}
}

// Artificial is a running artificial-interference workload.
type Artificial struct {
	stopped bool
	Writes  int // completed 1 GB chunk writes (diagnostics)
}

// StartArtificial launches the interference writers on the file system's
// kernel. They run until Stop (or kernel shutdown).
func StartArtificial(fs *pfs.FileSystem, cfg ArtificialConfig) *Artificial {
	if len(cfg.OSTs) == 0 {
		cfg = DefaultArtificial(fs)
	}
	if cfg.ProcsPerOST <= 0 {
		cfg.ProcsPerOST = 3
	}
	if cfg.ChunkBytes <= 0 {
		cfg.ChunkBytes = 1 * pfs.GB
	}
	a := &Artificial{}
	for _, ost := range cfg.OSTs {
		for j := 0; j < cfg.ProcsPerOST; j++ {
			ost := ost
			fs.K.Spawn(fmt.Sprintf("interferer-ost%d-%d", ost, j), func(p *simkernel.Proc) {
				for !a.stopped {
					fs.OST(ost).Write(p, cfg.ChunkBytes)
					a.Writes++
				}
			})
		}
	}
	return a
}

// Stop ends the interference writers after their in-flight writes complete.
func (a *Artificial) Stop() { a.stopped = true }
