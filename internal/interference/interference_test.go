package interference

import (
	"testing"
	"time"

	"repro/internal/pfs"
	"repro/internal/simkernel"
)

func testFS(t *testing.T, numOSTs int) (*simkernel.Kernel, *pfs.FileSystem) {
	t.Helper()
	k := simkernel.New()
	cfg := pfs.Config{
		NumOSTs:      numOSTs,
		DiskBW:       100,
		CacheBytes:   1000,
		IngestBW:     400,
		ClientCap:    50,
		DiskEff:      pfs.EffCurve{Alpha: 1e-12, Beta: 1},
		NetEff:       pfs.EffCurve{Alpha: 1e-12, Beta: 1},
		WriteLatency: time.Nanosecond,
		Seed:         7,
	}
	return k, pfs.MustNew(k, cfg)
}

func TestDisabledNoiseIsInert(t *testing.T) {
	k, fs := testFS(t, 4)
	n := Start(fs, NoiseConfig{Enabled: false, Seed: 1})
	k.RunUntil(simkernel.FromSeconds(100))
	k.Shutdown()
	if n.GlobalFactor() != 1 {
		t.Fatal("disabled noise changed global factor")
	}
	for i := 0; i < 4; i++ {
		if fs.OST(i).SlowFactor() != 1 || fs.OST(i).ExternalStreams() != 0 {
			t.Fatalf("OST %d perturbed by disabled noise", i)
		}
	}
}

func TestProductionNoisePerturbsOSTs(t *testing.T) {
	k, fs := testFS(t, 16)
	Start(fs, DefaultProduction(42))
	k.RunUntil(simkernel.FromSeconds(600))
	perturbed := 0
	for i := 0; i < 16; i++ {
		if fs.OST(i).SlowFactor() < 1 || fs.OST(i).ExternalStreams() > 0 {
			perturbed++
		}
	}
	k.Shutdown()
	if perturbed == 0 {
		t.Fatal("production noise left every OST clean after 600s")
	}
}

func TestNoiseVariesAcrossOSTs(t *testing.T) {
	k, fs := testFS(t, 32)
	cfg := DefaultProduction(43)
	cfg.GlobalCV = 0 // isolate per-OST component
	Start(fs, cfg)
	k.RunUntil(simkernel.FromSeconds(300))
	states := map[int]int{}
	for i := 0; i < 32; i++ {
		states[fs.OST(i).ExternalStreams()]++
	}
	k.Shutdown()
	if len(states) < 2 {
		t.Fatalf("all OSTs share identical external-stream state: %v", states)
	}
}

func TestNoiseStopRestoresCleanState(t *testing.T) {
	k, fs := testFS(t, 8)
	n := Start(fs, DefaultProduction(44))
	k.RunUntil(simkernel.FromSeconds(200))
	n.Stop()
	for i := 0; i < 8; i++ {
		if fs.OST(i).SlowFactor() != 1 || fs.OST(i).ExternalStreams() != 0 {
			t.Fatalf("OST %d not restored after Stop", i)
		}
	}
	k.Shutdown()
}

func TestNoiseDeterministicAcrossRuns(t *testing.T) {
	sample := func() []float64 {
		k, fs := testFS(t, 8)
		Start(fs, DefaultProduction(45))
		k.RunUntil(simkernel.FromSeconds(500))
		out := make([]float64, 8)
		for i := range out {
			out[i] = fs.OST(i).SlowFactor() * float64(1+fs.OST(i).ExternalStreams())
		}
		k.Shutdown()
		return out
	}
	a, b := sample(), sample()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("noise state diverged at OST %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestHotEpisodeExpires(t *testing.T) {
	k, fs := testFS(t, 8)
	cfg := NoiseConfig{
		Enabled:       true,
		HotMeanEvery:  10,
		HotDuration:   5,
		HotOSTs:       4,
		HotSlowFactor: 0.2,
		Seed:          46,
	}
	Start(fs, cfg)
	k.RunUntil(simkernel.FromSeconds(3000))
	// After a long quiet tail (episodes are Poisson with mean 10s, duration
	// mean 5s), at least verify the mechanism fired and that factors are in
	// the legal range.
	anyClean := false
	for i := 0; i < 8; i++ {
		sf := fs.OST(i).SlowFactor()
		if sf <= 0 || sf > 1 {
			t.Fatalf("slow factor %v out of range", sf)
		}
		if sf == 1 {
			anyClean = true
		}
	}
	k.Shutdown()
	if !anyClean {
		t.Fatal("no OST ever returned to clean state — hot episodes never expire?")
	}
}

func TestArtificialInterferenceLoadsConfiguredOSTs(t *testing.T) {
	k, fs := testFS(t, 16)
	a := StartArtificial(fs, ArtificialConfig{
		OSTs:        []int{2, 3},
		ProcsPerOST: 3,
		ChunkBytes:  500,
	})
	k.RunUntil(simkernel.FromSeconds(60))
	if fs.OST(2).ActiveFlows() != 3 || fs.OST(3).ActiveFlows() != 3 {
		t.Fatalf("active flows = %d/%d, want 3/3",
			fs.OST(2).ActiveFlows(), fs.OST(3).ActiveFlows())
	}
	if fs.OST(0).ActiveFlows() != 0 {
		t.Fatal("artificial interference leaked to unconfigured OST")
	}
	if a.Writes == 0 {
		t.Fatal("no interference chunks completed")
	}
	a.Stop()
	k.Shutdown()
}

func TestArtificialDefaultsMatchPaper(t *testing.T) {
	k, fs := testFS(t, 16)
	cfg := DefaultArtificial(fs)
	if len(cfg.OSTs) != 8 || cfg.ProcsPerOST != 3 || cfg.ChunkBytes != 1*pfs.GB {
		t.Fatalf("defaults %+v do not match the paper's 8 OSTs × 3 procs × 1GB", cfg)
	}
	// Total writers = 24, as the paper states.
	total := len(cfg.OSTs) * cfg.ProcsPerOST
	if total != 24 {
		t.Fatalf("total interference processes = %d, want 24", total)
	}
	k.Shutdown()
}

func TestArtificialSlowsVictimWriter(t *testing.T) {
	measure := func(withInt bool) float64 {
		k, fs := testFS(t, 8)
		if withInt {
			StartArtificial(fs, ArtificialConfig{OSTs: []int{0}, ProcsPerOST: 3, ChunkBytes: 1e6})
		}
		var dur float64
		k.Spawn("victim", func(p *simkernel.Proc) {
			start := p.Now().Seconds()
			fs.OST(0).Write(p, 5000)
			dur = p.Now().Seconds() - start
		})
		k.RunUntil(simkernel.FromSeconds(1e6))
		k.Shutdown()
		return dur
	}
	clean := measure(false)
	loaded := measure(true)
	if loaded <= clean*1.5 {
		t.Fatalf("interference barely slowed the victim: clean=%v loaded=%v", clean, loaded)
	}
}
