package interference

import (
	"fmt"

	"repro/internal/pfs"
	"repro/internal/simkernel"
)

// FailureEpisode scripts one storage target's crash lifecycle: the target
// dies at At, serves nothing for DeadFor seconds (in-flight operations
// stall, new ones time out with pfs.ErrTargetDown), then — if RebuildFor is
// positive — spends RebuildFor seconds Rebuilding with RebuildTax of its
// disk bandwidth consumed by reconstruction traffic before returning to
// Healthy. RebuildFor zero revives the target straight to Healthy.
type FailureEpisode struct {
	// OST is the target index the episode strikes.
	OST int
	// At is the crash time in virtual seconds.
	At float64
	// DeadFor is how long the target stays Dead, in seconds (must be
	// positive: a target that never revives deadlocks clients whose
	// in-flight operations stall awaiting it).
	DeadFor float64
	// RebuildFor is the post-revival rebuild duration in seconds (zero
	// skips the Rebuilding state).
	RebuildFor float64
	// RebuildTax is the fraction of disk bandwidth the rebuild consumes
	// while Rebuilding, in [0, 1).
	RebuildTax float64
}

// FailureConfig is a deterministic failure script for one replica: a set of
// scheduled OST crash episodes plus an optional metadata-server stall
// window. Unlike NoiseConfig it draws nothing at random — the same script
// produces the same transitions at the same virtual times on every run and
// both engines, because the injector is pure kernel events (no processes).
type FailureConfig struct {
	// Enabled turns the injector on.
	Enabled bool
	// Episodes are the scripted OST crashes.
	Episodes []FailureEpisode
	// MDSStallAt / MDSStallFor script a metadata-server stall window
	// starting at MDSStallAt seconds and lasting MDSStallFor seconds
	// (MDSStallFor zero disables it).
	MDSStallAt  float64
	MDSStallFor float64
	// DeadTimeout overrides the file system's client abandon timeout in
	// seconds (zero keeps the pfs.Config default). The cluster layer
	// consumes this when building the file system; the injector itself
	// does not read it.
	DeadTimeout float64
}

// Validate checks the script against a target count.
func (cfg FailureConfig) Validate(numOSTs int) error {
	if !cfg.Enabled {
		return nil
	}
	for i, ep := range cfg.Episodes {
		if ep.OST < 0 || ep.OST >= numOSTs {
			return fmt.Errorf("interference: failure episode %d: OST %d out of range (machine has %d)", i, ep.OST, numOSTs)
		}
		if ep.At < 0 {
			return fmt.Errorf("interference: failure episode %d: negative crash time %v", i, ep.At)
		}
		if ep.DeadFor <= 0 {
			return fmt.Errorf("interference: failure episode %d: DeadFor must be positive (a target that never revives deadlocks stalled clients)", i)
		}
		if ep.RebuildFor < 0 {
			return fmt.Errorf("interference: failure episode %d: negative rebuild duration %v", i, ep.RebuildFor)
		}
		if ep.RebuildTax < 0 || ep.RebuildTax >= 1 {
			return fmt.Errorf("interference: failure episode %d: RebuildTax %v outside [0, 1)", i, ep.RebuildTax)
		}
	}
	if cfg.MDSStallFor < 0 || cfg.MDSStallAt < 0 {
		return fmt.Errorf("interference: negative MDS stall window (%v, %v)", cfg.MDSStallAt, cfg.MDSStallFor)
	}
	if cfg.DeadTimeout < 0 {
		return fmt.Errorf("interference: negative dead timeout %v", cfg.DeadTimeout)
	}
	return nil
}

// Failures is a running failure injector. Like Noise, a Failures built by
// StartFailures can be re-armed for a later replica with Reset after the
// owning kernel and file system have been Reset, reusing its cached event
// closures instead of rebuilding them.
type Failures struct {
	fs      *pfs.FileSystem //repro:reset-skip identity, fixed at construction
	cfg     FailureConfig
	stopped bool

	// Cached per-episode event closures, built once by StartFailures and
	// rescheduled by every arm; they read n.cfg.Episodes through their
	// captured index so Reset can retune the script without reallocating.
	crashEv   []func() //repro:reset-skip cached event closures, built once by build
	rebuildEv []func() //repro:reset-skip cached event closures, built once by build
	healEv    []func() //repro:reset-skip cached event closures, built once by build
	mdsEv     func()   //repro:reset-skip cached event closure, built once by build
}

// StartFailures arms the failure script on the file system's kernel. With
// Enabled false it returns an inert Failures. The script must Validate
// against the file system's target count.
func StartFailures(fs *pfs.FileSystem, cfg FailureConfig) (*Failures, error) {
	if err := cfg.Validate(len(fs.OSTs)); err != nil {
		return nil, err
	}
	f := &Failures{fs: fs, cfg: cfg}
	if !cfg.Enabled {
		return f, nil
	}
	f.build()
	f.arm()
	return f, nil
}

// build constructs the cached event closures, one triple per episode slot.
// Each closure indexes the current cfg.Episodes, so Reset retunes the
// script (times, durations, taxes, targets) without rebuilding anything.
func (f *Failures) build() {
	n := len(f.cfg.Episodes)
	f.crashEv = make([]func(), n)
	f.rebuildEv = make([]func(), n)
	f.healEv = make([]func(), n)
	for i := 0; i < n; i++ {
		i := i
		f.crashEv[i] = func() {
			if f.stopped {
				return
			}
			f.fs.OST(f.cfg.Episodes[i].OST).SetHealth(pfs.Dead, 1)
		}
		f.rebuildEv[i] = func() {
			if f.stopped {
				return
			}
			ep := &f.cfg.Episodes[i]
			if ep.RebuildFor > 0 {
				f.fs.OST(ep.OST).SetHealth(pfs.Rebuilding, 1-ep.RebuildTax)
			} else {
				f.fs.OST(ep.OST).SetHealth(pfs.Healthy, 1)
			}
		}
		f.healEv[i] = func() {
			if f.stopped {
				return
			}
			f.fs.OST(f.cfg.Episodes[i].OST).SetHealth(pfs.Healthy, 1)
		}
	}
	f.mdsEv = func() {
		if f.stopped {
			return
		}
		f.fs.MDS.Stall(simkernel.FromSeconds(f.cfg.MDSStallAt + f.cfg.MDSStallFor))
	}
}

// arm schedules the script's transitions on the kernel. Scheduling order is
// fixed (episodes in declaration order, crash → revive → heal, MDS stall
// last) so same-timestamp events fire identically on every replica.
func (f *Failures) arm() {
	k := f.fs.K
	for i := range f.cfg.Episodes {
		ep := &f.cfg.Episodes[i]
		k.At(simkernel.FromSeconds(ep.At), f.crashEv[i])
		k.At(simkernel.FromSeconds(ep.At+ep.DeadFor), f.rebuildEv[i])
		if ep.RebuildFor > 0 {
			k.At(simkernel.FromSeconds(ep.At+ep.DeadFor+ep.RebuildFor), f.healEv[i])
		}
	}
	if f.cfg.MDSStallFor > 0 {
		k.At(simkernel.FromSeconds(f.cfg.MDSStallAt), f.mdsEv)
	}
}

// CanReset reports whether Reset(cfg) can re-arm this injector in place: the
// episode count must match the built closure set (every other parameter is
// free to change, including which targets the episodes strike).
func (f *Failures) CanReset(cfg FailureConfig) bool {
	return f.cfg.Enabled == cfg.Enabled && len(cfg.Episodes) == len(f.crashEv)
}

// Reset re-arms the script for a new replica (the owning kernel must
// already have been Reset, which discarded the previous replica's scheduled
// events). CanReset(cfg) must hold; the new script must Validate.
func (f *Failures) Reset(cfg FailureConfig) error {
	if !f.CanReset(cfg) {
		panic("interference: failure Reset with structurally different config (check CanReset)")
	}
	if err := cfg.Validate(len(f.fs.OSTs)); err != nil {
		return err
	}
	f.cfg = cfg
	f.stopped = false
	if !cfg.Enabled {
		return nil
	}
	f.arm()
	return nil
}

// Stop cancels the script's remaining transitions and restores every struck
// component to clean state.
func (f *Failures) Stop() {
	f.stopped = true
	for i := range f.cfg.Episodes {
		f.fs.OST(f.cfg.Episodes[i].OST).SetHealth(pfs.Healthy, 1)
	}
	f.fs.MDS.Stall(0)
}
