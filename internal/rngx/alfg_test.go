package rngx

import (
	"math/rand"
	"testing"
)

// alfgSeeds exercises the reduction edge cases: zero (remapped), the
// modulus and its neighbours, negatives, and ordinary experiment seeds.
var alfgSeeds = []int64{
	0, 1, -1, 2010, 89482311,
	alfgInt32Max - 1, alfgInt32Max, alfgInt32Max + 1,
	-alfgInt32Max, 1 << 40, -(1 << 40), 7907, 123456789,
}

// TestAlfgMatchesMathRand pins the reimplementation to math/rand draw for
// draw. 2000 draws is more than three times the register length, so the
// feedback indices wrap and the post-seed recurrence is fully exercised.
func TestAlfgMatchesMathRand(t *testing.T) {
	for _, seed := range alfgSeeds {
		ref := rand.New(rand.NewSource(seed))
		got := rand.New(newAlfg(seed))
		for i := 0; i < 2000; i++ {
			if r, g := ref.Uint64(), got.Uint64(); r != g {
				t.Fatalf("seed %d draw %d: alfg %#x != math/rand %#x", seed, i, g, r)
			}
		}
	}
}

// TestAlfgCacheHitIdentical re-seeds each value so the second expansion is
// served from the memo, and checks the cached register yields the same
// stream as a cold one.
func TestAlfgCacheHitIdentical(t *testing.T) {
	for _, seed := range alfgSeeds {
		cold := newAlfg(seed)
		hit := newAlfg(seed) // same key: served from cache
		for i := 0; i < 1300; i++ {
			if c, h := cold.Uint64(), hit.Uint64(); c != h {
				t.Fatalf("seed %d draw %d: cache hit diverged", seed, i)
			}
		}
	}
}

// TestAlfgDistributionsMatch guards the rand.Rand layering: Float64 and the
// rejection-sampling distributions consume source words in patterns that
// would expose any off-by-one in Uint64 state handling.
func TestAlfgDistributionsMatch(t *testing.T) {
	ref := rand.New(rand.NewSource(2010))
	got := rand.New(newAlfg(2010))
	for i := 0; i < 500; i++ {
		if r, g := ref.Float64(), got.Float64(); r != g {
			t.Fatalf("Float64 draw %d: %v != %v", i, g, r)
		}
		if r, g := ref.ExpFloat64(), got.ExpFloat64(); r != g {
			t.Fatalf("ExpFloat64 draw %d: %v != %v", i, g, r)
		}
		if r, g := ref.NormFloat64(), got.NormFloat64(); r != g {
			t.Fatalf("NormFloat64 draw %d: %v != %v", i, g, r)
		}
		if r, g := ref.Intn(997), got.Intn(997); r != g {
			t.Fatalf("Intn draw %d: %v != %v", i, g, r)
		}
	}
}

// BenchmarkAlfgSeed measures seeding with a warm cache — the path cluster
// construction takes when campaigns reuse derived seeds.
func BenchmarkAlfgSeed(b *testing.B) {
	b.ReportAllocs()
	var s alfgSource
	for i := 0; i < b.N; i++ {
		s.Seed(2010)
	}
}

// BenchmarkMathRandSeed is the stdlib baseline BenchmarkAlfgSeed replaces.
func BenchmarkMathRandSeed(b *testing.B) {
	b.ReportAllocs()
	src := rand.NewSource(2010)
	for i := 0; i < b.N; i++ {
		src.Seed(2010)
	}
}

// BenchmarkAlfgSeedCold measures the full register expansion (never-seen
// seeds, as every replica's derived streams are under world reuse): the
// jump-ahead form of the math/rand walk, bypassing the memo.
func BenchmarkAlfgSeedCold(b *testing.B) {
	b.ReportAllocs()
	var s alfgSource
	for i := 0; i < b.N; i++ {
		s.expand(alfgKey(int64(i + 1)))
	}
}

// BenchmarkMathRandSeedCold is BenchmarkAlfgSeedCold's stdlib baseline —
// the serial 1861-step chain the jump table replaces.
func BenchmarkMathRandSeedCold(b *testing.B) {
	b.ReportAllocs()
	src := rand.NewSource(1)
	for i := 0; i < b.N; i++ {
		src.Seed(int64(i + 1))
	}
}
