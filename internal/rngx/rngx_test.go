package rngx

import (
	"math"
	"strconv"
	"testing"
	"testing/quick"
)

func TestNamedStreamsIndependentAndReproducible(t *testing.T) {
	a1 := NewNamed(42, "ost-load")
	a2 := NewNamed(42, "ost-load")
	b := NewNamed(42, "mds-load")
	sawDiff := false
	for i := 0; i < 32; i++ {
		x1, x2, y := a1.Float64(), a2.Float64(), b.Float64()
		if x1 != x2 {
			t.Fatalf("same (seed,name) diverged at draw %d: %v vs %v", i, x1, x2)
		}
		if x1 != y {
			sawDiff = true
		}
	}
	if !sawDiff {
		t.Fatal("different names produced identical streams")
	}
}

func TestDeriveReproducible(t *testing.T) {
	p1 := New(7)
	p2 := New(7)
	c1 := p1.Derive("child")
	c2 := p2.Derive("child")
	for i := 0; i < 16; i++ {
		if c1.Float64() != c2.Float64() {
			t.Fatal("derived streams diverged")
		}
	}
}

func TestExpMean(t *testing.T) {
	s := New(1)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += s.Exp(3.0)
	}
	mean := sum / n
	if math.Abs(mean-3.0) > 0.05 {
		t.Fatalf("exponential mean = %v, want ~3.0", mean)
	}
}

func TestLognormalMeanCV(t *testing.T) {
	s := New(2)
	const n = 400000
	var sum, sq float64
	for i := 0; i < n; i++ {
		x := s.LognormalMeanCV(10, 0.5)
		sum += x
		sq += x * x
	}
	mean := sum / n
	varr := sq/n - mean*mean
	cv := math.Sqrt(varr) / mean
	if math.Abs(mean-10) > 0.15 {
		t.Fatalf("lognormal mean = %v, want ~10", mean)
	}
	if math.Abs(cv-0.5) > 0.03 {
		t.Fatalf("lognormal CV = %v, want ~0.5", cv)
	}
}

func TestLognormalZeroCVDegeneratesToMean(t *testing.T) {
	s := New(3)
	if got := s.LognormalMeanCV(5, 0); got != 5 {
		t.Fatalf("cv=0 should return the mean, got %v", got)
	}
}

func TestBoundedParetoInRange(t *testing.T) {
	s := New(4)
	f := func(seed uint8) bool {
		x := s.BoundedPareto(1.3, 2, 100)
		return x >= 2 && x <= 100
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestUniformRange(t *testing.T) {
	s := New(5)
	for i := 0; i < 1000; i++ {
		x := s.Uniform(-3, 7)
		if x < -3 || x >= 7 {
			t.Fatalf("uniform draw %v out of [-3,7)", x)
		}
	}
}

func TestPoissonMean(t *testing.T) {
	s := New(6)
	for _, mean := range []float64{0.5, 4, 30, 200} {
		const n = 50000
		var sum float64
		for i := 0; i < n; i++ {
			sum += float64(s.Poisson(mean))
		}
		got := sum / n
		if math.Abs(got-mean) > 0.05*mean+0.05 {
			t.Fatalf("Poisson(%v) sample mean = %v", mean, got)
		}
	}
	if s.Poisson(0) != 0 || s.Poisson(-1) != 0 {
		t.Fatal("non-positive mean should yield 0")
	}
}

func TestBernoulliExtremes(t *testing.T) {
	s := New(7)
	for i := 0; i < 100; i++ {
		if s.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !s.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}

func TestMarkovOnOffStationaryFraction(t *testing.T) {
	s := New(8)
	m := NewMarkovOnOff(s, 2.0, 6.0) // stationary P(on) = 0.25
	const step = 0.1
	var onTime, total float64
	for i := 0; i < 400000; i++ {
		if m.On() {
			onTime += step
		}
		total += step
		m.Advance(step)
	}
	frac := onTime / total
	if math.Abs(frac-0.25) > 0.02 {
		t.Fatalf("on-fraction = %v, want ~0.25", frac)
	}
}

func TestMarkovOnOffAdvanceCrossesMultipleHolds(t *testing.T) {
	s := New(9)
	m := NewMarkovOnOff(s, 1.0, 1.0)
	// Jump far beyond any single holding time; must not hang or panic and
	// must leave a positive residual hold.
	m.Advance(1e6)
	if m.NextTransition() <= 0 {
		t.Fatal("residual holding time must be positive")
	}
}

func TestPanicsOnInvalidParams(t *testing.T) {
	s := New(10)
	for name, fn := range map[string]func(){
		"exp":      func() { s.Exp(0) },
		"lnmean":   func() { s.LognormalMeanCV(0, 1) },
		"pareto":   func() { s.BoundedPareto(0, 1, 2) },
		"paretoHi": func() { s.BoundedPareto(1, 5, 5) },
		"markov":   func() { NewMarkovOnOff(s, 0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestDeriveSeedDeterministicAndLabelSensitive(t *testing.T) {
	a := DeriveSeed(42, "fig5", "mpi/base/procs=512", "3")
	b := DeriveSeed(42, "fig5", "mpi/base/procs=512", "3")
	if a != b {
		t.Fatal("DeriveSeed not deterministic")
	}
	variants := []int64{
		DeriveSeed(43, "fig5", "mpi/base/procs=512", "3"),
		DeriveSeed(42, "fig1", "mpi/base/procs=512", "3"),
		DeriveSeed(42, "fig5", "mpi/base/procs=512", "4"),
		DeriveSeed(42, "fig5", "3", "mpi/base/procs=512"), // order matters
		DeriveSeed(42, "fig5", "mpi/base/procs=5123"),     // concatenation differs
	}
	for i, v := range variants {
		if v == a {
			t.Errorf("variant %d collided with base seed", i)
		}
	}
}

// TestDeriveSeedNoGridCollisions derives seeds across a campaign-shaped grid
// far larger than any driver's (4 methods × 2 conditions × 16 proc counts ×
// 512 samples = 65536 replicas) and requires them all distinct. The old
// affine formula (seed + s*7907 + procs*3 + len(method)) collides on such
// grids whenever s1*7907 + p1*3 == s2*7907 + p2*3.
func TestDeriveSeedNoGridCollisions(t *testing.T) {
	seen := make(map[int64][]string)
	collisions := 0
	for _, method := range []string{"MPI", "POSIX", "ADAPTIVE", "STAGING"} {
		for _, cond := range []string{"base", "interference"} {
			for procs := 1; procs <= 1<<16; procs *= 2 {
				for s := 0; s < 512; s++ {
					point := method + "/" + cond + "/procs=" + strconv.Itoa(procs)
					seed := DeriveSeed(42, "eval", point, strconv.Itoa(s))
					key := point + "#" + strconv.Itoa(s)
					if prev, ok := seen[seed]; ok {
						collisions++
						t.Errorf("seed collision: %v and %s -> %d", prev, key, seed)
					}
					seen[seed] = append(seen[seed], key)
				}
			}
		}
	}
	if collisions > 0 {
		t.Fatalf("%d collisions in %d replicas", collisions, len(seen))
	}
}

// TestDeriveSeedOldFormulaCollides documents the failure mode that motivated
// DeriveSeed: the fig5-style affine seed formula assigns the same seed (hence
// the same simulated environment) to distinct replicas.
func TestDeriveSeedOldFormulaCollides(t *testing.T) {
	old := func(seed int64, s, procs, methodLen int) int64 {
		return seed + int64(s)*7907 + int64(procs)*3 + int64(methodLen)
	}
	// sample 3 at 512 procs vs sample 0 at 512+7907 procs (methodLen equal):
	// 3*7907 + 512*3 == 0*7907 + (512+7907)*3.
	if old(42, 3, 512, 3) != old(42, 0, 512+7907, 3) {
		t.Fatal("expected demonstration collision in the old formula")
	}
	if DeriveSeed(42, "eval", "procs=512", "3") == DeriveSeed(42, "eval", "procs=8419", "0") {
		t.Fatal("DeriveSeed reproduced the old formula's collision")
	}
}

// TestDeriveSeedBitBalance checks output spreading: across consecutive
// sample indices under one label prefix, every output bit should flip close
// to half the time (a cheap avalanche/distribution proxy).
func TestDeriveSeedBitBalance(t *testing.T) {
	const n = 4096
	var ones [64]int
	for s := 0; s < n; s++ {
		v := uint64(DeriveSeed(7, "table1", "Jaguar", strconv.Itoa(s)))
		for b := 0; b < 64; b++ {
			if v&(1<<uint(b)) != 0 {
				ones[b]++
			}
		}
	}
	for b := 0; b < 64; b++ {
		frac := float64(ones[b]) / n
		if frac < 0.45 || frac > 0.55 {
			t.Errorf("bit %d set in %.1f%% of seeds, want ~50%%", b, 100*frac)
		}
	}
}
