package rngx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNamedStreamsIndependentAndReproducible(t *testing.T) {
	a1 := NewNamed(42, "ost-load")
	a2 := NewNamed(42, "ost-load")
	b := NewNamed(42, "mds-load")
	sawDiff := false
	for i := 0; i < 32; i++ {
		x1, x2, y := a1.Float64(), a2.Float64(), b.Float64()
		if x1 != x2 {
			t.Fatalf("same (seed,name) diverged at draw %d: %v vs %v", i, x1, x2)
		}
		if x1 != y {
			sawDiff = true
		}
	}
	if !sawDiff {
		t.Fatal("different names produced identical streams")
	}
}

func TestDeriveReproducible(t *testing.T) {
	p1 := New(7)
	p2 := New(7)
	c1 := p1.Derive("child")
	c2 := p2.Derive("child")
	for i := 0; i < 16; i++ {
		if c1.Float64() != c2.Float64() {
			t.Fatal("derived streams diverged")
		}
	}
}

func TestExpMean(t *testing.T) {
	s := New(1)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += s.Exp(3.0)
	}
	mean := sum / n
	if math.Abs(mean-3.0) > 0.05 {
		t.Fatalf("exponential mean = %v, want ~3.0", mean)
	}
}

func TestLognormalMeanCV(t *testing.T) {
	s := New(2)
	const n = 400000
	var sum, sq float64
	for i := 0; i < n; i++ {
		x := s.LognormalMeanCV(10, 0.5)
		sum += x
		sq += x * x
	}
	mean := sum / n
	varr := sq/n - mean*mean
	cv := math.Sqrt(varr) / mean
	if math.Abs(mean-10) > 0.15 {
		t.Fatalf("lognormal mean = %v, want ~10", mean)
	}
	if math.Abs(cv-0.5) > 0.03 {
		t.Fatalf("lognormal CV = %v, want ~0.5", cv)
	}
}

func TestLognormalZeroCVDegeneratesToMean(t *testing.T) {
	s := New(3)
	if got := s.LognormalMeanCV(5, 0); got != 5 {
		t.Fatalf("cv=0 should return the mean, got %v", got)
	}
}

func TestBoundedParetoInRange(t *testing.T) {
	s := New(4)
	f := func(seed uint8) bool {
		x := s.BoundedPareto(1.3, 2, 100)
		return x >= 2 && x <= 100
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestUniformRange(t *testing.T) {
	s := New(5)
	for i := 0; i < 1000; i++ {
		x := s.Uniform(-3, 7)
		if x < -3 || x >= 7 {
			t.Fatalf("uniform draw %v out of [-3,7)", x)
		}
	}
}

func TestPoissonMean(t *testing.T) {
	s := New(6)
	for _, mean := range []float64{0.5, 4, 30, 200} {
		const n = 50000
		var sum float64
		for i := 0; i < n; i++ {
			sum += float64(s.Poisson(mean))
		}
		got := sum / n
		if math.Abs(got-mean) > 0.05*mean+0.05 {
			t.Fatalf("Poisson(%v) sample mean = %v", mean, got)
		}
	}
	if s.Poisson(0) != 0 || s.Poisson(-1) != 0 {
		t.Fatal("non-positive mean should yield 0")
	}
}

func TestBernoulliExtremes(t *testing.T) {
	s := New(7)
	for i := 0; i < 100; i++ {
		if s.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !s.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}

func TestMarkovOnOffStationaryFraction(t *testing.T) {
	s := New(8)
	m := NewMarkovOnOff(s, 2.0, 6.0) // stationary P(on) = 0.25
	const step = 0.1
	var onTime, total float64
	for i := 0; i < 400000; i++ {
		if m.On() {
			onTime += step
		}
		total += step
		m.Advance(step)
	}
	frac := onTime / total
	if math.Abs(frac-0.25) > 0.02 {
		t.Fatalf("on-fraction = %v, want ~0.25", frac)
	}
}

func TestMarkovOnOffAdvanceCrossesMultipleHolds(t *testing.T) {
	s := New(9)
	m := NewMarkovOnOff(s, 1.0, 1.0)
	// Jump far beyond any single holding time; must not hang or panic and
	// must leave a positive residual hold.
	m.Advance(1e6)
	if m.NextTransition() <= 0 {
		t.Fatal("residual holding time must be positive")
	}
}

func TestPanicsOnInvalidParams(t *testing.T) {
	s := New(10)
	for name, fn := range map[string]func(){
		"exp":      func() { s.Exp(0) },
		"lnmean":   func() { s.LognormalMeanCV(0, 1) },
		"pareto":   func() { s.BoundedPareto(0, 1, 2) },
		"paretoHi": func() { s.BoundedPareto(1, 5, 5) },
		"markov":   func() { NewMarkovOnOff(s, 0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}
