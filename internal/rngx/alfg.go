package rngx

import (
	"math/rand"
	"sync"
)

// This file reimplements math/rand's additive lagged Fibonacci source
// (Mitchell & Reeds, x[n] = x[n-273] + x[n-607]) bit for bit, so Source can
// keep the exact streams the pinned golden checksums were captured against
// while fixing the generator's one hot spot: Seed. Expanding a seed walks a
// 1841-step LCG chain to fill the 607-word feedback register, which is
// ~20x the cost of the handful of draws a short-lived stream ever makes —
// interference.Start derives one stream per storage target, so cluster
// construction was dominated by seeding (62% of the Table I benchmark).
// Since the expansion is a pure function of the seed, alfgSeed memoises the
// expanded register in a bounded cache and cache hits reduce seeding to a
// 4.9KB copy.

const (
	alfgLen      = 607
	alfgTap      = 273
	alfgMask     = 1<<63 - 1
	alfgInt32Max = 1<<31 - 1
)

// alfgSource implements rand.Source64 with math/rand's exact semantics.
type alfgSource struct {
	tap  int
	feed int
	vec  [alfgLen]int64
}

func newAlfg(seed int64) *alfgSource {
	s := &alfgSource{}
	s.Seed(seed)
	return s
}

// alfgSeedrand advances the seeding LCG: x[n+1] = 48271*x[n] mod (2^31-1).
// math/rand uses Schrage's decomposition (two divisions) to avoid 32-bit
// overflow; with 64-bit arithmetic the product fits directly and the modulus
// is the Mersenne prime 2^31-1, so a fold (2^31 ≡ 1 mod M) plus one
// conditional subtraction yields the identical residue division-free. The
// expansion chain is 1861 serially dependent steps, so this latency is the
// whole cost of a cache-miss Seed — which world reuse pays once per derived
// stream per replica.
func alfgSeedrand(x int32) int32 {
	y := uint64(x) * 48271
	y = (y & alfgInt32Max) + (y >> 31)
	if y >= alfgInt32Max {
		y -= alfgInt32Max
	}
	return int32(y)
}

// alfgKey reduces a seed the way rngSource.Seed does; seeds equal mod
// 2^31-1 produce identical registers, so the cache keys on the residue.
func alfgKey(seed int64) int32 {
	seed = seed % alfgInt32Max
	if seed < 0 {
		seed += alfgInt32Max
	}
	if seed == 0 {
		seed = 89482311
	}
	return int32(seed)
}

// alfgModmul is x*y mod (2^31-1) for x, y < 2^31: the product fits in 62
// bits, so two Mersenne folds and a conditional subtraction reduce it
// exactly.
func alfgModmul(x, y uint64) uint64 {
	p := x * y
	p = (p & alfgInt32Max) + (p >> 31)
	p = (p & alfgInt32Max) + (p >> 31)
	if p >= alfgInt32Max {
		p -= alfgInt32Max
	}
	return p
}

// alfgJump[i] = 48271^(21+3i) mod (2^31-1): the LCG state entering word i of
// the expansion. The seeding LCG is multiplicative, so its n-th state has
// the closed form a^n*key mod M; precomputing the power for each word turns
// the 1861-step serial dependency chain of math/rand's expansion into 607
// independent per-word computations the CPU can overlap.
var alfgJump [alfgLen]uint64

func init() {
	const a = 48271
	x := uint64(1)
	for n := 0; n < 21; n++ {
		x = alfgModmul(x, a)
	}
	step := alfgModmul(alfgModmul(a, a), a)
	for i := 0; i < alfgLen; i++ {
		alfgJump[i] = x
		x = alfgModmul(x, step)
	}
}

// expand fills vec from a reduced seed: three LCG draws per word, XORed
// with the cooked constants — bit-identical to math/rand's chained walk,
// jump-started per word via alfgJump.
func (s *alfgSource) expand(key int32) {
	k := uint64(key)
	for i := 0; i < alfgLen; i++ {
		x1 := int32(alfgModmul(alfgJump[i], k))
		x2 := alfgSeedrand(x1)
		x3 := alfgSeedrand(x2)
		u := int64(x1) << 40
		u ^= int64(x2) << 20
		u ^= int64(x3)
		u ^= alfgCooked[i]
		s.vec[i] = u
	}
}

// alfgCacheMax bounds the memo to ~20MB (each register is 4.9KB) — sized
// to hold every stream a figure-scale campaign derives, since one Table I
// round alone touches a couple of thousand (per-OST noise streams times
// samples times machines). When full the map is cleared wholesale; the
// cache affects only seeding cost, never the stream, so eviction policy is
// free to be crude.
const alfgCacheMax = 4096

var alfgCache struct {
	sync.Mutex
	m map[int32]*[alfgLen]int64
	// once records keys that have missed exactly once. A register is
	// memoised only on its second miss: recurring streams (Table I rounds
	// re-deriving the same per-OST keys) still get cached after one extra
	// expansion, while one-shot keys (fresh per-replica seeds that derive
	// every stream exactly once) no longer allocate a 4.9KB copy each.
	once map[int32]struct{}
}

// Seed initialises the register to the same deterministic state
// math/rand's rngSource.Seed produces, via the memo when possible.
func (s *alfgSource) Seed(seed int64) {
	s.tap = 0
	s.feed = alfgLen - alfgTap
	key := alfgKey(seed)

	alfgCache.Lock()
	if v, ok := alfgCache.m[key]; ok {
		s.vec = *v
		alfgCache.Unlock()
		return
	}
	alfgCache.Unlock()

	s.expand(key)

	alfgCache.Lock()
	if _, seen := alfgCache.once[key]; !seen {
		if alfgCache.once == nil {
			alfgCache.once = make(map[int32]struct{}, alfgCacheMax)
		} else if len(alfgCache.once) >= alfgCacheMax {
			clear(alfgCache.once)
		}
		alfgCache.once[key] = struct{}{}
		alfgCache.Unlock()
		return
	}
	v := s.vec
	if alfgCache.m == nil {
		alfgCache.m = make(map[int32]*[alfgLen]int64, alfgCacheMax)
	} else if len(alfgCache.m) >= alfgCacheMax {
		clear(alfgCache.m)
	}
	alfgCache.m[key] = &v
	alfgCache.Unlock()
}

// Uint64 returns the next raw register sum (math/rand's core step).
func (s *alfgSource) Uint64() uint64 {
	s.tap--
	if s.tap < 0 {
		s.tap += alfgLen
	}
	s.feed--
	if s.feed < 0 {
		s.feed += alfgLen
	}
	x := s.vec[s.feed] + s.vec[s.tap]
	s.vec[s.feed] = x
	return uint64(x)
}

// Int63 implements rand.Source.
func (s *alfgSource) Int63() int64 {
	return int64(s.Uint64() & alfgMask)
}

var _ rand.Source64 = (*alfgSource)(nil)
