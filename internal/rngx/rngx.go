// Package rngx provides deterministic random-number streams and the
// distributions used by the storage and interference models: exponential
// inter-arrival times, lognormal service variation, bounded Pareto bursts,
// and Markov-modulated on/off load processes.
//
// Every stochastic component in the simulator draws from its own named
// stream derived from a master seed, so adding a new consumer never perturbs
// the draws seen by existing ones (the classic substream discipline from
// simulation practice).
package rngx

import (
	"math"
	"math/rand"
)

// Source is a deterministic random stream. It wraps math/rand with the
// distribution helpers the simulator needs.
type Source struct {
	r *rand.Rand
}

// New creates a stream from a raw seed. The underlying generator is a
// bit-exact reimplementation of math/rand's source whose seed expansion is
// memoised (see alfg.go); the draws are identical to rand.NewSource's.
func New(seed int64) *Source {
	return &Source{r: rand.New(newAlfg(seed))}
}

// NewNamed derives an independent stream from a master seed and a name.
// The same (seed, name) pair always yields the same stream.
func NewNamed(seed int64, name string) *Source {
	return New(seed ^ int64(fnv64a(name)))
}

// Reseed re-initialises the stream in place to the exact state New(seed)
// produces. It allocates nothing when the seed's expanded register is
// already memoised, which is what lets reused simulation worlds re-arm
// their streams per replica without rebuilding them.
func (s *Source) Reseed(seed int64) { s.r.Seed(seed) }

// ReseedNamed is Reseed with NewNamed's seed/name mixing: the stream ends
// in the exact state NewNamed(seed, name) produces.
func (s *Source) ReseedNamed(seed int64, name string) {
	s.r.Seed(seed ^ int64(fnv64a(name)))
}

// fnv64a is hash/fnv's 64-bit FNV-1a over a string, inlined so name-keyed
// stream derivation does not allocate a hasher (equivalence with hash/fnv
// is pinned by TestFNV64aMatchesStdlib).
func fnv64a(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

// splitmix64 is the SplitMix64 finalizer (Steele, Lea & Flood): a bijective
// avalanche mix in which every input bit affects roughly half the output
// bits. It is the standard tool for turning structured counters into
// well-spread seeds.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// DeriveSeed maps a master seed plus an ordered list of labels (driver name,
// grid-point coordinates, sample index, ...) to a replica seed. Each label is
// hashed independently and folded into a SplitMix64 chain, so nearby label
// tuples — consecutive sample indices, permuted coordinates, or tuples whose
// concatenations coincide — land on unrelated seeds. This replaces ad-hoc
// affine formulas like seed + s*7907 + procs*3, whose images collide as soon
// as two terms trade multiples of a shared factor.
func DeriveSeed(master int64, labels ...string) int64 {
	z := splitmix64(uint64(master))
	for _, l := range labels {
		// Hashing labels separately (rather than concatenating) keeps
		// ("ab","c") and ("a","bc") on different chains; the sequential
		// mixing makes label order significant.
		z = splitmix64(z ^ fnv64a(l))
	}
	return int64(z)
}

// Derive creates a child stream keyed by name, independent of the parent's
// future draws.
func (s *Source) Derive(name string) *Source {
	return NewNamed(s.r.Int63(), name)
}

// Float64 returns a uniform draw in [0,1).
func (s *Source) Float64() float64 { return s.r.Float64() }

// Intn returns a uniform draw in [0,n).
func (s *Source) Intn(n int) int { return s.r.Intn(n) }

// Int63 returns a uniform non-negative int64.
func (s *Source) Int63() int64 { return s.r.Int63() }

// Perm returns a random permutation of [0,n).
func (s *Source) Perm(n int) []int { return s.r.Perm(n) }

// Shuffle permutes a slice in place via the provided swap function.
func (s *Source) Shuffle(n int, swap func(i, j int)) { s.r.Shuffle(n, swap) }

// Uniform returns a draw uniform in [lo, hi).
func (s *Source) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*s.r.Float64()
}

// Exp returns an exponential draw with the given mean (mean must be > 0).
func (s *Source) Exp(mean float64) float64 {
	if mean <= 0 {
		panic("rngx: exponential mean must be positive")
	}
	return s.r.ExpFloat64() * mean
}

// Normal returns a normal draw with the given mean and standard deviation.
func (s *Source) Normal(mean, stddev float64) float64 {
	return mean + stddev*s.r.NormFloat64()
}

// Lognormal returns a draw whose logarithm is Normal(mu, sigma). Note the
// parameters are of the underlying normal, not the resulting distribution.
func (s *Source) Lognormal(mu, sigma float64) float64 {
	return math.Exp(s.Normal(mu, sigma))
}

// LognormalMeanCV returns a lognormal draw parameterised by its own mean and
// coefficient of variation (stddev/mean), which is the natural way to
// calibrate service-time noise against measured CoV values.
func (s *Source) LognormalMeanCV(mean, cv float64) float64 {
	if mean <= 0 {
		panic("rngx: lognormal mean must be positive")
	}
	if cv <= 0 {
		return mean
	}
	sigma2 := math.Log(1 + cv*cv)
	mu := math.Log(mean) - sigma2/2
	return s.Lognormal(mu, math.Sqrt(sigma2))
}

// BoundedPareto returns a draw from a Pareto(alpha) distribution truncated
// to [lo, hi]. Heavy-tailed burst sizes in the interference model use it.
func (s *Source) BoundedPareto(alpha, lo, hi float64) float64 {
	if lo <= 0 || hi <= lo || alpha <= 0 {
		panic("rngx: invalid bounded-Pareto parameters")
	}
	u := s.r.Float64()
	la := math.Pow(lo, alpha)
	ha := math.Pow(hi, alpha)
	return math.Pow(-(u*ha-u*la-ha)/(ha*la), -1/alpha)
}

// Bernoulli returns true with probability p.
func (s *Source) Bernoulli(p float64) bool { return s.r.Float64() < p }

// Poisson returns a Poisson draw with the given mean using Knuth's method
// for small means and a normal approximation above 64 (adequate for load
// modelling).
func (s *Source) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 64 {
		v := int(s.Normal(mean, math.Sqrt(mean)) + 0.5)
		if v < 0 {
			v = 0
		}
		return v
	}
	l := math.Exp(-mean)
	k, p := 0, 1.0
	for {
		p *= s.r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// MarkovOnOff models a two-state continuous-time Markov process used for
// per-OST external load: in the ON state a given number of external streams
// compete for the storage target; in the OFF state none do. Holding times
// are exponential.
type MarkovOnOff struct {
	src      *Source
	MeanOn   float64 // mean seconds in ON state
	MeanOff  float64 // mean seconds in OFF state
	on       bool
	holdLeft float64
}

// NewMarkovOnOff creates a process with the given mean holding times,
// starting in a stationary-probability random state with a fresh holding
// time.
func NewMarkovOnOff(src *Source, meanOn, meanOff float64) *MarkovOnOff {
	if meanOn <= 0 || meanOff <= 0 {
		panic("rngx: MarkovOnOff holding times must be positive")
	}
	m := &MarkovOnOff{src: src, MeanOn: meanOn, MeanOff: meanOff}
	m.Reinit()
	return m
}

// Reinit redraws the process's state and holding time from its source,
// exactly as construction does — consuming one Bernoulli and one Exp draw —
// so a reused process (source reseeded in place) restarts bit-identically
// to a freshly built one.
func (m *MarkovOnOff) Reinit() {
	pOn := m.MeanOn / (m.MeanOn + m.MeanOff)
	m.on = m.src.Bernoulli(pOn)
	m.holdLeft = m.draw()
}

func (m *MarkovOnOff) draw() float64 {
	if m.on {
		return m.src.Exp(m.MeanOn)
	}
	return m.src.Exp(m.MeanOff)
}

// On reports the current state.
func (m *MarkovOnOff) On() bool { return m.on }

// NextTransition returns the seconds until the next state flip.
func (m *MarkovOnOff) NextTransition() float64 { return m.holdLeft }

// Advance moves the process forward dt seconds, flipping states as holding
// times expire, and returns the new state.
func (m *MarkovOnOff) Advance(dt float64) bool {
	for dt >= m.holdLeft {
		dt -= m.holdLeft
		m.on = !m.on
		m.holdLeft = m.draw()
	}
	m.holdLeft -= dt
	return m.on
}
