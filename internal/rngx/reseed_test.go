package rngx

import (
	"fmt"
	"hash/fnv"
	"testing"
)

// TestFNV64aMatchesStdlib pins the inlined FNV-1a against hash/fnv, which
// NewNamed/ReseedNamed and DeriveSeed rely on for name mixing.
func TestFNV64aMatchesStdlib(t *testing.T) {
	cases := []string{"", "pfs", "mds", "interference", "global", "hot",
		"ost-0", "ost-671", "xtp-phase", "a", "ab", "ba",
		"a slightly longer label with spaces", "\x00\xff"}
	for i := 0; i < 64; i++ {
		cases = append(cases, fmt.Sprintf("ost-%d", i*13))
	}
	for _, s := range cases {
		h := fnv.New64a()
		h.Write([]byte(s))
		if got, want := fnv64a(s), h.Sum64(); got != want {
			t.Fatalf("fnv64a(%q) = %#x, want %#x", s, got, want)
		}
	}
}

// TestReseedMatchesNew pins the world-reuse RNG contract: a reseeded stream
// continues bit-identically to a freshly constructed one, for both the raw
// and the name-keyed forms.
func TestReseedMatchesNew(t *testing.T) {
	s := New(1)
	for i := 0; i < 100; i++ {
		s.Int63() // dirty the stream
	}
	s.Reseed(42)
	fresh := New(42)
	for i := 0; i < 1000; i++ {
		if got, want := s.Int63(), fresh.Int63(); got != want {
			t.Fatalf("draw %d after Reseed = %d, want %d", i, got, want)
		}
	}

	s.ReseedNamed(7, "pfs")
	named := NewNamed(7, "pfs")
	for i := 0; i < 1000; i++ {
		if got, want := s.Float64(), named.Float64(); got != want {
			t.Fatalf("draw %d after ReseedNamed = %v, want %v", i, got, want)
		}
	}
}

// TestReseedDerivationParity verifies that reseeding a derived stream with
// the parent's next Int63 reproduces Derive exactly — the pattern the file
// system and noise resets use to re-arm their sub-streams.
func TestReseedDerivationParity(t *testing.T) {
	parentA := NewNamed(11, "root")
	childA := parentA.Derive("sub")

	parentB := NewNamed(11, "root")
	childB := New(99)
	childB.ReseedNamed(parentB.Int63(), "sub")

	for i := 0; i < 500; i++ {
		if got, want := childB.Int63(), childA.Int63(); got != want {
			t.Fatalf("derived-stream draw %d = %d, want %d", i, got, want)
		}
	}
}

// TestMarkovReinitMatchesNew pins MarkovOnOff.Reinit: a reused process whose
// source was reseeded restarts in the exact state a fresh construction
// produces, consuming the same draws.
func TestMarkovReinitMatchesNew(t *testing.T) {
	srcA := New(5)
	fresh := NewMarkovOnOff(srcA, 120, 260)

	srcB := New(77)
	reused := NewMarkovOnOff(srcB, 7, 3)
	for i := 0; i < 50; i++ {
		reused.Advance(reused.NextTransition()) // dirty the process
	}
	srcB.Reseed(5)
	reused.MeanOn, reused.MeanOff = 120, 260
	reused.Reinit()

	for i := 0; i < 200; i++ {
		if fresh.On() != reused.On() || fresh.NextTransition() != reused.NextTransition() {
			t.Fatalf("step %d: fresh (on=%v hold=%v) != reinit (on=%v hold=%v)",
				i, fresh.On(), fresh.NextTransition(), reused.On(), reused.NextTransition())
		}
		dt := fresh.NextTransition()
		fresh.Advance(dt)
		reused.Advance(dt)
	}
}

// TestReseedSteadyStateZeroAlloc gates the reuse path's allocation claim:
// reseeding to an already-memoised seed allocates nothing.
func TestReseedSteadyStateZeroAlloc(t *testing.T) {
	s := New(1234) // memoises the expanded register for this seed
	got := testing.AllocsPerRun(100, func() {
		s.Reseed(1234)
		s.Int63()
	})
	if got != 0 {
		t.Fatalf("warm Reseed allocates %v allocs/op; want 0", got)
	}
}
