package workloads

import (
	"testing"
	"testing/quick"
)

func TestPixie3DSizesMatchPaper(t *testing.T) {
	cases := map[Pixie3DSize]int64{
		Pixie3DSmall: 2 * 1024 * 1024,        // 2 MB/process
		Pixie3DLarge: 128 * 1024 * 1024,      // 128 MB/process
		Pixie3DXL:    1 * 1024 * 1024 * 1024, // 1 GB/process
	}
	for size, want := range cases { //repro:allow nodeterm independent table-driven cases over pure generators
		if got := size.BytesPerProcess(); got != want {
			t.Errorf("%s = %d bytes, want %d", size, got, want)
		}
		data := Pixie3D(0, size)
		if got := data.TotalBytes(); got != want {
			t.Errorf("%s generated %d bytes, want %d", size, got, want)
		}
	}
}

func TestPixie3DHasEightDoubleArrays(t *testing.T) {
	data := Pixie3D(3, Pixie3DLarge)
	if len(data.Vars) != 8 {
		t.Fatalf("vars = %d, want 8", len(data.Vars))
	}
	c := uint64(128)
	for _, v := range data.Vars {
		if len(v.Dims) != 3 || v.Dims[0] != c || v.Dims[1] != c || v.Dims[2] != c {
			t.Fatalf("%s dims = %v, want [128 128 128]", v.Name, v.Dims)
		}
		if v.Bytes != int64(8*c*c*c) {
			t.Fatalf("%s bytes = %d", v.Name, v.Bytes)
		}
		if v.Min >= v.Max {
			t.Fatalf("%s characteristics degenerate: [%v, %v]", v.Name, v.Min, v.Max)
		}
	}
}

func TestPixie3DCubes(t *testing.T) {
	if Pixie3DSmall.Cube() != 32 || Pixie3DLarge.Cube() != 128 || Pixie3DXL.Cube() != 256 {
		t.Fatal("cube sizes do not match the paper's 32/128/256")
	}
}

func TestXGC1TotalExact(t *testing.T) {
	data := XGC1(7)
	if got := data.TotalBytes(); got != XGC1BytesPerProcess {
		t.Fatalf("XGC1 total = %d, want %d", got, int64(XGC1BytesPerProcess))
	}
	if len(data.Vars) != 5 {
		t.Fatalf("vars = %d", len(data.Vars))
	}
}

func TestS3DTotalExactProperty(t *testing.T) {
	f := func(mb uint8, rank uint8) bool {
		size := int64(mb%200+1) * 1024 * 1024
		data := S3D(int(rank), size)
		return data.TotalBytes() == size
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDeterministicAcrossCalls(t *testing.T) {
	a := Pixie3D(5, Pixie3DSmall)
	b := Pixie3D(5, Pixie3DSmall)
	for i := range a.Vars {
		if a.Vars[i].Min != b.Vars[i].Min || a.Vars[i].Max != b.Vars[i].Max {
			t.Fatal("workload generation not deterministic")
		}
	}
}

func TestCharacteristicsVaryAcrossRanks(t *testing.T) {
	a := Pixie3D(0, Pixie3DSmall)
	b := Pixie3D(1, Pixie3DSmall)
	same := true
	for i := range a.Vars {
		if a.Vars[i].Min != b.Vars[i].Min {
			same = false
		}
	}
	if same {
		t.Fatal("characteristics identical across ranks — value search untestable")
	}
}

func TestGenerators(t *testing.T) {
	g := Pixie3DGen(Pixie3DLarge)
	if g.Name != "pixie3d-large" || g.BytesPerProcess != 128*1024*1024 {
		t.Fatalf("generator = %+v", g)
	}
	if got := g.PerRank(2).TotalBytes(); got != g.BytesPerProcess {
		t.Fatalf("generator output %d bytes", got)
	}
	x := XGC1Gen()
	if x.PerRank(0).TotalBytes() != XGC1BytesPerProcess {
		t.Fatal("xgc1 generator size wrong")
	}
	s := S3DGen(10 * 1024 * 1024)
	if s.PerRank(0).TotalBytes() != 10*1024*1024 {
		t.Fatal("s3d generator size wrong")
	}
}

func TestFusionCodeGeneratorsExactTotals(t *testing.T) {
	for _, g := range All() {
		for _, rank := range []int{0, 7, 1000} {
			if got := g.PerRank(rank).TotalBytes(); got != g.BytesPerProcess {
				t.Errorf("%s rank %d: %d bytes, want %d", g.Name, rank, got, g.BytesPerProcess)
			}
		}
		if g.BytesPerProcess <= 0 {
			t.Errorf("%s has no size", g.Name)
		}
	}
}

func TestGeneratorNamesDistinct(t *testing.T) {
	seen := map[string]bool{}
	for _, g := range All() {
		if seen[g.Name] {
			t.Errorf("duplicate generator name %s", g.Name)
		}
		seen[g.Name] = true
	}
	if len(seen) != 10 {
		t.Errorf("generators = %d, want 10", len(seen))
	}
}

func TestGTCRepresentativeSize(t *testing.T) {
	// The paper: 128 MB/process "is comparable to what many of the fusion
	// codes generate on a per process basis, such as GTC".
	if GTCGen().BytesPerProcess != 128*1024*1024 {
		t.Fatal("GTC size drifted from the paper's reference")
	}
}
