// Package workloads generates the output patterns of the petascale codes
// the paper evaluates with:
//
//   - Pixie3D, a 3-D extended-MHD solver whose output is eight
//     double-precision 3-D arrays per process, at 32³ ("small", 2 MB/proc),
//     128³ ("large", 128 MB/proc) or 256³ ("extra large", 1 GB/proc) cubes,
//     weak scaling (Section IV-A).
//   - XGC1, a gyrokinetic particle-in-cell fusion code, at a representative
//     38 MB per process (Section IV-B).
//   - An S3D-like combustion checkpoint generator (the paper repeatedly
//     situates its data sizes against S3D and Chimera runs), provided for
//     the extension benchmarks.
//
// The generators produce iomethod.RankData: the paper uses the codes purely
// as IO-pattern sources, so shape and size (plus index characteristics) are
// what must be faithful.
package workloads

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"

	"repro/internal/iomethod"
)

// memoPerRank wraps a per-rank generator with a lazily filled cache. A
// rank's RankData is a deterministic function of the rank alone and every
// consumer treats it as immutable (iomethod.BuildEntries copies what it
// keeps), so figure-scale drivers that replay the same workload across many
// campaign replicas pay the generation cost once per rank instead of once
// per replica. The mutex makes the cache safe for the parallel replica
// runners; results are identical regardless of which worker fills an entry.
func memoPerRank(gen func(rank int) iomethod.RankData) func(rank int) iomethod.RankData {
	var mu sync.Mutex
	cache := make(map[int]iomethod.RankData)
	return func(rank int) iomethod.RankData {
		mu.Lock()
		d, ok := cache[rank]
		if !ok {
			d = gen(rank)
			cache[rank] = d
		}
		mu.Unlock()
		return d
	}
}

// Pixie3DSize selects the paper's three Pixie3D configurations.
type Pixie3DSize int

const (
	// Pixie3DSmall is the 32-cube model: 2 MB per process.
	Pixie3DSmall Pixie3DSize = iota
	// Pixie3DLarge is the 128-cube model: 128 MB per process.
	Pixie3DLarge
	// Pixie3DXL is the 256-cube model: 1 GB per process.
	Pixie3DXL
)

// Cube returns the per-axis elements of the configuration.
func (s Pixie3DSize) Cube() int {
	switch s {
	case Pixie3DSmall:
		return 32
	case Pixie3DLarge:
		return 128
	case Pixie3DXL:
		return 256
	}
	panic(fmt.Sprintf("workloads: unknown Pixie3D size %d", s))
}

// String names the configuration as the paper does.
func (s Pixie3DSize) String() string {
	switch s {
	case Pixie3DSmall:
		return "small"
	case Pixie3DLarge:
		return "large"
	case Pixie3DXL:
		return "extra large"
	}
	return "unknown"
}

// BytesPerProcess returns the per-process output volume.
func (s Pixie3DSize) BytesPerProcess() int64 {
	c := int64(s.Cube())
	return 8 * c * c * c * 8 // 8 variables × cube³ × sizeof(float64)
}

// pixie3DVars are the eight double-precision MHD state arrays.
var pixie3DVars = []string{"rho", "p", "v_x", "v_y", "v_z", "B_x", "B_y", "B_z"}

// Pixie3D returns rank's output for one step of the given size class.
// Min/Max characteristics are deterministic functions of (rank, variable)
// so that index-based value search is exercised meaningfully.
func Pixie3D(rank int, size Pixie3DSize) iomethod.RankData {
	c := uint64(size.Cube())
	perVar := int64(8 * c * c * c)
	vars := make([]iomethod.VarSpec, 0, len(pixie3DVars))
	for i, name := range pixie3DVars {
		center := pseudoValue(rank, i)
		vars = append(vars, iomethod.VarSpec{
			Name:  name,
			Bytes: perVar,
			Dims:  []uint64{c, c, c},
			Min:   center - 1,
			Max:   center + 1,
		})
	}
	return iomethod.RankData{Vars: vars}
}

// XGC1BytesPerProcess is the representative production output size the
// paper uses (38 MB per process).
const XGC1BytesPerProcess = 38 * 1024 * 1024

// XGC1 returns rank's output for one step: particle phase-space arrays
// summing to 38 MB.
func XGC1(rank int) iomethod.RankData {
	// Five particle arrays: position (3 components folded), velocity
	// (parallel + perpendicular), weight — proportioned to sum to 38 MB.
	type part struct {
		name string
		frac float64
	}
	parts := []part{
		{"ephase", 0.40},  // electron phase space
		{"iphase", 0.40},  // ion phase space
		{"egid", 0.05},    // electron ids
		{"igid", 0.05},    // ion ids
		{"psn_pot", 0.10}, // field potential slice
	}
	var vars []iomethod.VarSpec
	var used int64
	for i, pt := range parts {
		b := int64(float64(XGC1BytesPerProcess) * pt.frac)
		if i == len(parts)-1 {
			b = XGC1BytesPerProcess - used // exact total
		}
		used += b
		center := pseudoValue(rank, i)
		vars = append(vars, iomethod.VarSpec{
			Name:  pt.name,
			Bytes: b,
			Dims:  []uint64{uint64(b / 8)},
			Min:   center - 0.5,
			Max:   center + 0.5,
		})
	}
	return iomethod.RankData{Vars: vars}
}

// S3D returns an S3D-like combustion checkpoint: a handful of 3-D species
// and state arrays at the given per-process volume (the paper cites ~10 MB
// per process for smaller S3D runs and places 38 MB among "larger S3D
// runs").
func S3D(rank int, bytesPerProcess int64) iomethod.RankData {
	names := []string{"yspecies", "temp", "pressure", "u"}
	fracs := []float64{0.70, 0.10, 0.10, 0.10}
	var vars []iomethod.VarSpec
	var used int64
	for i, name := range names {
		b := int64(float64(bytesPerProcess) * fracs[i])
		if i == len(names)-1 {
			b = bytesPerProcess - used
		}
		used += b
		center := pseudoValue(rank, i)
		vars = append(vars, iomethod.VarSpec{
			Name:  name,
			Bytes: b,
			Dims:  []uint64{uint64(b / 8)},
			Min:   center,
			Max:   center + 100,
		})
	}
	return iomethod.RankData{Vars: vars}
}

// pseudoValue derives a stable characteristic value from (rank, varIndex)
// without randomness, keeping workloads deterministic.
func pseudoValue(rank, varIdx int) float64 {
	x := float64(rank*31+varIdx*7) * 0.618033988749895
	return math.Mod(x, 10) - 5
}

// Generator names a workload for experiment drivers.
type Generator struct {
	// Name identifies the workload ("pixie3d-small", "xgc1", ...).
	Name string
	// PerRank builds a rank's step output.
	PerRank func(rank int) iomethod.RankData
	// BytesPerProcess is the nominal per-process volume.
	BytesPerProcess int64
}

// Pixie3DGen returns a Generator for the given size class.
func Pixie3DGen(size Pixie3DSize) Generator {
	return Generator{
		Name:            "pixie3d-" + size.String(),
		PerRank:         memoPerRank(func(rank int) iomethod.RankData { return Pixie3D(rank, size) }),
		BytesPerProcess: size.BytesPerProcess(),
	}
}

// XGC1Gen returns the XGC1 Generator.
func XGC1Gen() Generator {
	return Generator{
		Name:            "xgc1",
		PerRank:         memoPerRank(XGC1),
		BytesPerProcess: XGC1BytesPerProcess,
	}
}

// S3DGen returns an S3D-like Generator at the given per-process size.
func S3DGen(bytesPerProcess int64) Generator {
	return Generator{
		Name:            "s3d",
		PerRank:         memoPerRank(func(rank int) iomethod.RankData { return S3D(rank, bytesPerProcess) }),
		BytesPerProcess: bytesPerProcess,
	}
}

// GTC returns a GTC-like gyrokinetic toroidal code output. The paper
// situates its 128 MB/process Pixie3D model as "comparable to what many of
// the fusion codes generate on a per process basis, such as GTC": particle
// phase-space arrays dominating, plus field diagnostics.
func GTC(rank int, bytesPerProcess int64) iomethod.RankData {
	names := []string{"zion", "zelectron", "phi_field", "diagnostics"}
	fracs := []float64{0.55, 0.35, 0.08, 0.02}
	var vars []iomethod.VarSpec
	var used int64
	for i, name := range names {
		b := int64(float64(bytesPerProcess) * fracs[i])
		if i == len(names)-1 {
			b = bytesPerProcess - used
		}
		used += b
		center := pseudoValue(rank, i+11)
		vars = append(vars, iomethod.VarSpec{
			Name:  name,
			Bytes: b,
			Dims:  []uint64{uint64(b / 8)},
			Min:   center - 2,
			Max:   center + 2,
		})
	}
	return iomethod.RankData{Vars: vars}
}

// GTCGen returns a GTC Generator at the paper's representative
// 128 MB/process production size.
func GTCGen() Generator {
	const size = 128 * 1024 * 1024
	return Generator{
		Name:            "gtc",
		PerRank:         memoPerRank(func(rank int) iomethod.RankData { return GTC(rank, size) }),
		BytesPerProcess: size,
	}
}

// GTS returns a GTS-like (shaped-plasma gyrokinetic) output: the same
// family as GTC with a different variable split.
func GTS(rank int, bytesPerProcess int64) iomethod.RankData {
	names := []string{"ions", "electrons", "potential"}
	fracs := []float64{0.5, 0.4, 0.1}
	var vars []iomethod.VarSpec
	var used int64
	for i, name := range names {
		b := int64(float64(bytesPerProcess) * fracs[i])
		if i == len(names)-1 {
			b = bytesPerProcess - used
		}
		used += b
		center := pseudoValue(rank, i+23)
		vars = append(vars, iomethod.VarSpec{
			Name:  name,
			Bytes: b,
			Dims:  []uint64{uint64(b / 8)},
			Min:   center,
			Max:   center + 1,
		})
	}
	return iomethod.RankData{Vars: vars}
}

// GTSGen returns a GTS Generator (64 MB/process representative size).
func GTSGen() Generator {
	const size = 64 * 1024 * 1024
	return Generator{
		Name:            "gts",
		PerRank:         memoPerRank(func(rank int) iomethod.RankData { return GTS(rank, size) }),
		BytesPerProcess: size,
	}
}

// Chimera returns a Chimera-like supernova checkpoint (the paper places
// "smaller S3D and Chimera runs" around 10 MB/process and uses Chimera as
// a size reference for the Pixie3D small model).
func Chimera(rank int, bytesPerProcess int64) iomethod.RankData {
	names := []string{"u_radial", "ye", "entropy", "composition"}
	fracs := []float64{0.25, 0.15, 0.15, 0.45}
	var vars []iomethod.VarSpec
	var used int64
	for i, name := range names {
		b := int64(float64(bytesPerProcess) * fracs[i])
		if i == len(names)-1 {
			b = bytesPerProcess - used
		}
		used += b
		center := pseudoValue(rank, i+31)
		vars = append(vars, iomethod.VarSpec{
			Name:  name,
			Bytes: b,
			Dims:  []uint64{uint64(b / 8)},
			Min:   center - 0.1,
			Max:   center + 0.1,
		})
	}
	return iomethod.RankData{Vars: vars}
}

// ChimeraGen returns a Chimera Generator (10 MB/process).
func ChimeraGen() Generator {
	const size = 10 * 1024 * 1024
	return Generator{
		Name:            "chimera",
		PerRank:         memoPerRank(func(rank int) iomethod.RankData { return Chimera(rank, size) }),
		BytesPerProcess: size,
	}
}

// MLTrain returns one training epoch's read signature for an ML job: each
// rank streams its shard of the dataset — sample tensors dominating, a thin
// label array alongside. The paper's workloads are checkpoint writers; this
// generator supplies the read-heavy counterpart that co-scheduled job mixes
// need (training jobs re-reading a shared dataset every epoch).
func MLTrain(rank int, bytesPerProcess int64) iomethod.RankData {
	names := []string{"samples", "labels"}
	fracs := []float64{0.95, 0.05}
	var vars []iomethod.VarSpec
	var used int64
	for i, name := range names {
		b := int64(float64(bytesPerProcess) * fracs[i])
		if i == len(names)-1 {
			b = bytesPerProcess - used
		}
		used += b
		center := pseudoValue(rank, i+41)
		vars = append(vars, iomethod.VarSpec{
			Name:  name,
			Bytes: b,
			Dims:  []uint64{uint64(b / 8)},
			Min:   center - 1,
			Max:   center + 1,
		})
	}
	return iomethod.RankData{Vars: vars}
}

// MLTrainGen returns the ML-training Generator (64 MB of dataset shard per
// process per epoch — ImageNet-scale shards across a few hundred readers).
func MLTrainGen() Generator {
	const size = 64 * 1024 * 1024
	return Generator{
		Name:            "mltrain",
		PerRank:         memoPerRank(func(rank int) iomethod.RankData { return MLTrain(rank, size) }),
		BytesPerProcess: size,
	}
}

// MDTestBytesPerFile is the per-file payload of the metadata workload: 4 KiB,
// mdtest's classic small-file size where create/open/close cost dominates
// data movement.
const MDTestBytesPerFile = 4 * 1024

// MDTest returns the per-file payload signature of an mdtest-style
// metadata-heavy job: one tiny entry per created file. The interesting cost
// is the metadata operations themselves; the job executor multiplies this by
// its files-per-rank count.
func MDTest(rank int) iomethod.RankData {
	center := pseudoValue(rank, 53)
	return iomethod.RankData{Vars: []iomethod.VarSpec{{
		Name:  "entry",
		Bytes: MDTestBytesPerFile,
		Dims:  []uint64{MDTestBytesPerFile / 8},
		Min:   center,
		Max:   center + 1,
	}}}
}

// MDTestGen returns the mdtest-style metadata Generator.
func MDTestGen() Generator {
	return Generator{
		Name:            "mdtest",
		PerRank:         memoPerRank(MDTest),
		BytesPerProcess: MDTestBytesPerFile,
	}
}

// All returns every workload generator at its representative size, for
// sweep-style harnesses.
func All() []Generator {
	return []Generator{
		Pixie3DGen(Pixie3DSmall),
		Pixie3DGen(Pixie3DLarge),
		Pixie3DGen(Pixie3DXL),
		XGC1Gen(),
		GTCGen(),
		GTSGen(),
		ChimeraGen(),
		S3DGen(38 * 1024 * 1024),
		MLTrainGen(),
		MDTestGen(),
	}
}

// Names returns every generator name, sorted, for error messages and
// discovery surfaces.
func Names() []string {
	all := All()
	names := make([]string, len(all))
	for i, g := range all {
		names[i] = g.Name
	}
	sort.Strings(names)
	return names
}

// ByName looks a generator up by its All() name; "pixie3d-xl" is accepted
// as a spelling of the space-containing "pixie3d-extra large". Unknown names
// return an error listing the available generators (sorted), so spec
// validation messages tell the user what would have worked.
func ByName(name string) (Generator, error) {
	if name == "pixie3d-xl" {
		name = "pixie3d-extra large"
	}
	for _, g := range All() {
		if g.Name == name {
			return g, nil
		}
	}
	return Generator{}, fmt.Errorf("workloads: unknown generator %q (available: %s)",
		name, strings.Join(Names(), ", "))
}
