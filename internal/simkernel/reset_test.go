package simkernel

import (
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/rngx"
)

// TestResetReplaysWorkloadBitIdentically is the core world-reuse contract at
// the kernel layer: running the randomized property workload on a Reset
// kernel yields the same trace as on a fresh one.
func TestResetReplaysWorkloadBitIdentically(t *testing.T) {
	f := func(seed int64) bool {
		fresh := runRandomWorkload(seed)
		k := New()
		runRandomWorkloadOn(k, seed^0x5bd1e995) // dirty the kernel with a different run
		k.Reset()
		reused := runRandomWorkloadOn(k, seed)
		k.Shutdown()
		return reflect.DeepEqual(fresh, reused)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestResetRecyclesGoroutines pins the freelist mechanics: after Reset, new
// Spawns re-arm the parked goroutines instead of starting fresh ones, and
// the recycled processes run their new bodies normally.
func TestResetRecyclesGoroutines(t *testing.T) {
	k := New()
	var procs []*Proc
	for i := 0; i < 5; i++ {
		procs = append(procs, k.Spawn("first", func(p *Proc) { p.Sleep(10) }))
	}
	k.Run()
	k.Reset()
	if got := len(k.idle); got != 5 {
		t.Fatalf("idle list has %d procs after Reset, want 5", got)
	}
	ran := 0
	var second []*Proc
	for i := 0; i < 5; i++ {
		second = append(second, k.Spawn("second", func(p *Proc) { ran++ }))
	}
	if len(k.idle) != 0 {
		t.Fatalf("idle list has %d procs after respawn, want 0", len(k.idle))
	}
	for i, p := range second {
		if p != procs[4-i] { // LIFO freelist
			t.Fatalf("spawn %d did not recycle a parked proc", i)
		}
		if p.ID() != i+1 {
			t.Fatalf("recycled proc id = %d, want %d (IDs restart after Reset)", p.ID(), i+1)
		}
	}
	k.Run()
	if ran != 5 {
		t.Fatalf("recycled procs ran %d bodies, want 5", ran)
	}
	k.Shutdown()
}

// TestResetUnwindsParkedBodies verifies Reset runs deferred cleanup of
// bodies that were still parked, exactly as Shutdown does, and that the
// unwound goroutines survive to run another body.
func TestResetUnwindsParkedBodies(t *testing.T) {
	k := New()
	mb := NewMailbox(k)
	cleaned, finished := false, false
	k.Spawn("stuck", func(p *Proc) {
		defer func() { cleaned = true }()
		mb.Recv(p) // never receives anything
		finished = true
	})
	k.Run()
	k.Reset()
	if !cleaned {
		t.Fatal("Reset did not run the parked body's deferred cleanup")
	}
	if finished {
		t.Fatal("parked body should have unwound, not completed")
	}
	reran := false
	k.Spawn("again", func(p *Proc) { reran = true })
	k.Run()
	if !reran {
		t.Fatal("recycled goroutine did not run its new body")
	}
	k.Shutdown()
}

// TestResetClearsClockQueueAndTimers verifies a Reset kernel starts from
// t=0 with an empty queue and that Timer handles from the previous run are
// inert against events scheduled after the Reset.
func TestResetClearsClockQueueAndTimers(t *testing.T) {
	k := New()
	stale := k.At(50, func() { t.Fatal("pre-Reset event fired") })
	k.At(10, func() {})
	k.RunUntil(20)
	if k.Now() != 10 {
		t.Fatalf("now = %v, want 10", k.Now())
	}
	k.Reset()
	if k.Now() != 0 || k.Pending() != 0 {
		t.Fatalf("after Reset now=%v pending=%d, want 0/0", k.Now(), k.Pending())
	}
	fired := false
	k.At(5, func() { fired = true })
	if stale.Active() {
		t.Fatal("stale Timer reports Active after Reset")
	}
	stale.Cancel() // must not cancel the new event even if it reuses the slot
	k.Run()
	if !fired {
		t.Fatal("post-Reset event was cancelled by a stale Timer handle")
	}
	k.Shutdown()
}

// TestShutdownAfterRunTerminatesFinishedProcs pins the recycling protocol's
// obligation on Shutdown: processes whose bodies completed normally still
// have live goroutines parked for re-arming, and Shutdown (without a Reset
// in between) must exit them too.
func TestShutdownAfterRunTerminatesFinishedProcs(t *testing.T) {
	k := New()
	p := k.Spawn("done", func(p *Proc) {})
	k.Run()
	if !p.Done() {
		t.Fatal("body should have completed")
	}
	k.Shutdown()
	if !p.exited {
		t.Fatal("Shutdown left a finished proc's goroutine parked")
	}
	// Shutdown is idempotent on exited procs.
	k.Shutdown()
}

// TestResetZeroAlloc gates the rebuild-free claim at the kernel layer: a
// spawn/run/Reset cycle on a warmed kernel allocates nothing.
func TestResetZeroAlloc(t *testing.T) {
	k := New()
	body := func(p *Proc) { p.Sleep(5 * time.Nanosecond) }
	cycle := func() {
		for i := 0; i < 8; i++ {
			k.Spawn("w", body)
		}
		k.Run()
		k.Reset()
	}
	cycle() // warm pool, queue, procs, idle list
	got := testing.AllocsPerRun(100, cycle)
	if got != 0 {
		t.Fatalf("spawn/run/Reset cycle allocates %v allocs/op in steady state; want 0", got)
	}
	k.Shutdown()
}

// runRandomWorkloadOn is runRandomWorkload against a caller-owned kernel
// (fresh or Reset), without the trailing Shutdown.
func runRandomWorkloadOn(k *Kernel, seed int64) []int64 {
	rng := rngx.New(seed)
	mb := NewMailbox(k)
	res := NewResource(k, 1+rng.Intn(3))
	var trace []int64
	n := 3 + rng.Intn(6)
	for i := 0; i < n; i++ {
		i := i
		delay := time.Duration(rng.Intn(100))
		hold := time.Duration(1 + rng.Intn(50))
		k.SpawnAt(Time(rng.Intn(50)), "p", func(p *Proc) {
			p.Sleep(delay)
			res.Acquire(p)
			trace = append(trace, int64(p.Now()), int64(i))
			p.Sleep(hold)
			res.Release()
			mb.Send(i)
		})
	}
	k.Spawn("collector", func(p *Proc) {
		for j := 0; j < n; j++ {
			v := mb.Recv(p).(int)
			trace = append(trace, int64(p.Now()), int64(100+v))
		}
	})
	k.Run()
	return trace
}

// BenchmarkWorldReset measures the per-replica kernel recycling cost — the
// Reset sweep plus re-arming a typical process population — against
// BenchmarkReplicaSetupTeardown's fresh-build baseline in package cluster.
func BenchmarkWorldReset(b *testing.B) {
	b.ReportAllocs()
	k := New()
	body := func(p *Proc) { p.Sleep(5 * time.Nanosecond) }
	run := func() {
		for i := 0; i < 64; i++ {
			k.Spawn("w", body)
		}
		k.Run()
		k.Reset()
	}
	run()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run()
	}
	b.StopTimer()
	k.Shutdown()
}
