package simkernel

import (
	"testing"

	"repro/internal/rngx"
)

// refQueue is the reference event queue for the calendar property test: the
// plain 4-ary heap the kernel used before the calendar fronted it, driven
// through the exact heapPush/heapPopMin code the near tier still runs.
type refQueue struct {
	heap      []heapItem
	cancelled map[uint64]bool // keyed by seq (unique per event)
}

func (r *refQueue) schedule(at Time, seq uint64) {
	r.heap = heapPush(r.heap, heapItem{at: at, seq: seq})
}

func (r *refQueue) cancel(seq uint64) {
	if r.cancelled == nil {
		r.cancelled = map[uint64]bool{}
	}
	r.cancelled[seq] = true
}

// drain pops every live event with at <= deadline, in heap order.
func (r *refQueue) drain(deadline Time) []heapItem {
	var out []heapItem
	for len(r.heap) > 0 && r.heap[0].at <= deadline {
		var top heapItem
		r.heap, top = heapPopMin(r.heap)
		if r.cancelled[top.seq] {
			continue
		}
		out = append(out, top)
	}
	return out
}

// TestCalendarMatchesHeapPropertyBased cross-checks the calendar queue
// against the plain 4-ary heap on randomized schedule/cancel/drain
// sequences: the pop order must be identical, including seq tie-breaks
// among same-time events. Times are drawn from three bands — inside the
// near window, inside the calendar span, and beyond the horizon — with a
// coarse quantum so same-time collisions are common, and cancellation is
// heavy enough to trip both the lazy compaction and the pour-time release.
func TestCalendarMatchesHeapPropertyBased(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		rng := rngx.New(rngx.DeriveSeed(1234, "calendar-prop", string(rune('a'+trial))))
		k := New()
		ref := &refQueue{}

		var fired []uint64 // seq of each fired event, in fire order
		type ev struct {
			timer Timer
			seq   uint64
			done  bool
		}
		var evs []*ev

		for round := 0; round < 4; round++ {
			n := 50 + rng.Intn(150)
			for i := 0; i < n; i++ {
				var span Time
				switch rng.Intn(3) {
				case 0: // near: inside the current bucket / heap window
					span = Time(rng.Intn(1 << 18))
				case 1: // calendar: within the 64-bucket span
					span = Time(rng.Intn(nBuckets * int(defaultCalWidth)))
				default: // far: beyond the horizon, lands in overflow
					span = Time(rng.Intn(1 << 34))
				}
				// Coarse quantum: force same-time collisions so the seq
				// tie-break is exercised.
				at := k.Now() + span/1024*1024
				e := &ev{}
				e.timer = k.At(at, func() { fired = append(fired, e.seq); e.done = true })
				e.seq = k.seq
				ref.schedule(at, e.seq)
				evs = append(evs, e)
			}
			// Cancel a heavy slice of everything still pending.
			for _, e := range evs {
				if !e.done && e.timer.Active() && rng.Intn(3) != 0 {
					e.timer.Cancel()
					ref.cancel(e.seq)
				}
			}
			// Drain up to a random intermediate deadline (final round: all).
			deadline := k.Now() + Time(rng.Intn(1<<35))
			if round == 3 {
				deadline = Time(1<<62 - 1)
			}
			k.RunUntil(deadline)
			want := ref.drain(deadline)
			if len(fired) != len(want) {
				t.Fatalf("trial %d round %d: fired %d events, reference heap fired %d",
					trial, round, len(fired), len(want))
			}
			for i, seq := range fired {
				if seq != want[i].seq {
					t.Fatalf("trial %d round %d: fire order diverges at %d: calendar seq %d, heap seq %d",
						trial, round, i, seq, want[i].seq)
				}
			}
			fired = fired[:0]
		}
		if k.Pending() != 0 {
			t.Fatalf("trial %d: %d events left after full drain", trial, k.Pending())
		}
	}
}

// TestCalendarInEventScheduling pins the pour-path invariant directly: an
// event that schedules below the near/far boundary while a poured bucket is
// draining must still fire in global (time, seq) order.
func TestCalendarInEventScheduling(t *testing.T) {
	k := New()
	var order []int
	log := func(id int) func() { return func() { order = append(order, id) } }
	// Far event in a calendar bucket...
	k.At(defaultCalWidth*3+5, log(2))
	// ...whose predecessor, when fired, schedules both a nearer event
	// (below the boundary, straight into the heap) and a same-time tie.
	k.At(defaultCalWidth*3, func() {
		order = append(order, 1)
		k.At(defaultCalWidth*3+2, log(10)) // between the two pending events
		k.At(defaultCalWidth*3+5, log(11)) // ties with event 2; later seq fires after
	})
	// Overflow event far beyond the horizon.
	k.At(defaultCalWidth*nBuckets*4, log(3))
	k.Run()
	want := []int{1, 10, 2, 11, 3}
	if len(order) != len(want) {
		t.Fatalf("fired %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("fired %v, want %v", order, want)
		}
	}
}

// calendarChurn is one steady-state round of far-future timer churn: a
// batch spread across the calendar and overflow tiers, three quarters
// cancelled before the clock ever reaches them, then a partial drain. The
// cancelled mass must be released at pour/respan time without being
// heap-ordered, and — like the near-tier churn — the whole cycle must not
// allocate once the tiers are warm.
func calendarChurn(k *Kernel, timers []Timer, fn func()) {
	base := k.Now()
	for j := range timers {
		// Spread across ~8 buckets plus a far overflow band.
		span := Time(j%8)*defaultCalWidth + Time(j%16)
		if j%5 == 0 {
			span = Time(nBuckets+int(j%7))*defaultCalWidth + Time(j%16)
		}
		timers[j] = k.At(base+span, fn)
	}
	for j := range timers {
		if j%4 != 3 {
			timers[j].Cancel()
		}
	}
	k.Run()
}

// BenchmarkCalendarChurn measures the schedule/cancel/drain cycle across
// the calendar's far tiers (compare BenchmarkKernelTimerChurn, which stays
// inside the near window).
func BenchmarkCalendarChurn(b *testing.B) {
	b.ReportAllocs()
	k := New()
	fn := func() {}
	timers := make([]Timer, 64)
	calendarChurn(k, timers, fn) // warm pool, buckets and overflow
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		calendarChurn(k, timers, fn)
	}
}

// TestCalendarChurnZeroAlloc is the allocation gate for the far tiers: once
// buckets and overflow are warm, far-future churn — pours, respans and the
// cross-tier compaction included — must be allocation-free.
func TestCalendarChurnZeroAlloc(t *testing.T) {
	k := New()
	fn := func() {}
	timers := make([]Timer, 64)
	calendarChurn(k, timers, fn)
	got := testing.AllocsPerRun(100, func() {
		calendarChurn(k, timers, fn)
	})
	if got != 0 {
		t.Fatalf("calendar churn allocates %v allocs/op in steady state; want 0", got)
	}
}
