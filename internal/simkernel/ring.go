package simkernel

// Ring is a growable FIFO ring buffer. Push appends at the tail, Pop removes
// from the head, and RemoveAt removes from the middle while preserving order
// — all without the O(n) copy-shift a plain slice queue pays on every
// dequeue. Capacity is always a power of two so index wrap is a mask, and
// the backing array is retained across Reset so a reused world's queues are
// allocation-free at steady state.
//
// The zero value is an empty ring ready for use.
type Ring[T any] struct {
	buf  []T // len(buf) is 0 or a power of two
	head int
	n    int
}

// Len reports the number of queued elements.
func (r *Ring[T]) Len() int { return r.n }

// Push appends v at the tail, growing the backing array only when full
// (steady-state queueing therefore never allocates).
//
//repro:hotpath
func (r *Ring[T]) Push(v T) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)&(len(r.buf)-1)] = v
	r.n++
}

// Pop removes and returns the head element. It panics on an empty ring.
//
//repro:hotpath
func (r *Ring[T]) Pop() T {
	if r.n == 0 {
		panic("simkernel: Pop from empty ring")
	}
	var zero T
	v := r.buf[r.head]
	r.buf[r.head] = zero
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
	return v
}

// At returns the i-th element from the head (0 is the next Pop) without
// removing it.
//
//repro:hotpath
func (r *Ring[T]) At(i int) T {
	if i < 0 || i >= r.n {
		panic("simkernel: ring index out of range")
	}
	return r.buf[(r.head+i)&(len(r.buf)-1)]
}

// RemoveAt removes and returns the i-th element from the head, preserving
// the order of the rest. It shifts whichever side of the removal point is
// shorter, so head and tail removals are O(1) and the worst case is n/2.
//
//repro:hotpath
func (r *Ring[T]) RemoveAt(i int) T {
	if i < 0 || i >= r.n {
		panic("simkernel: ring index out of range")
	}
	mask := len(r.buf) - 1
	v := r.buf[(r.head+i)&mask]
	var zero T
	if i < r.n-1-i {
		// Shift the head side forward by one.
		for j := i; j > 0; j-- {
			r.buf[(r.head+j)&mask] = r.buf[(r.head+j-1)&mask]
		}
		r.buf[r.head] = zero
		r.head = (r.head + 1) & mask
	} else {
		// Shift the tail side back by one.
		for j := i; j < r.n-1; j++ {
			r.buf[(r.head+j)&mask] = r.buf[(r.head+j+1)&mask]
		}
		r.buf[(r.head+r.n-1)&mask] = zero
	}
	r.n--
	return v
}

// Reset empties the ring, zeroing the occupied slots (dropping any pointers
// they hold) while keeping the backing array for reuse.
func (r *Ring[T]) Reset() {
	var zero T
	mask := len(r.buf) - 1
	for i := 0; i < r.n; i++ {
		r.buf[(r.head+i)&mask] = zero
	}
	r.head = 0
	r.n = 0
}

// grow doubles the backing array (minimum 8) and relinearizes the contents
// at offset zero.
func (r *Ring[T]) grow() {
	newCap := 8
	if len(r.buf) > 0 {
		newCap = len(r.buf) * 2
	}
	nb := make([]T, newCap)
	if r.n > 0 {
		mask := len(r.buf) - 1
		for i := 0; i < r.n; i++ {
			nb[i] = r.buf[(r.head+i)&mask]
		}
	}
	r.buf = nb
	r.head = 0
}
