package simkernel

import "testing"

// BenchmarkEventThroughput measures raw event scheduling/firing rate.
func BenchmarkEventThroughput(b *testing.B) {
	b.ReportAllocs()
	k := New()
	n := 0
	var loop func()
	loop = func() {
		n++
		if n < b.N {
			k.After(1, loop)
		}
	}
	k.After(1, loop)
	b.ResetTimer()
	k.Run()
}

// BenchmarkProcessHandoff measures the goroutine handoff cost per
// sleep/wake cycle.
func BenchmarkProcessHandoff(b *testing.B) {
	k := New()
	k.Spawn("p", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(1)
		}
	})
	b.ResetTimer()
	k.Run()
	k.Shutdown()
}

// BenchmarkMailboxPingPong measures message delivery round-trips.
func BenchmarkMailboxPingPong(b *testing.B) {
	k := New()
	a := NewMailbox(k)
	bb := NewMailbox(k)
	k.Spawn("a", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			a.Send(i)
			bb.Recv(p)
		}
	})
	k.Spawn("b", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			a.Recv(p)
			bb.Send(i)
		}
	})
	b.ResetTimer()
	k.Run()
	k.Shutdown()
}
