package simkernel

import "testing"

// BenchmarkEventThroughput measures raw event scheduling/firing rate.
func BenchmarkEventThroughput(b *testing.B) {
	b.ReportAllocs()
	k := New()
	n := 0
	var loop func()
	loop = func() {
		n++
		if n < b.N {
			k.After(1, loop)
		}
	}
	k.After(1, loop)
	b.ResetTimer()
	k.Run()
}

// BenchmarkProcessHandoff measures the goroutine handoff cost per
// sleep/wake cycle.
func BenchmarkProcessHandoff(b *testing.B) {
	k := New()
	k.Spawn("p", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(1)
		}
	})
	b.ResetTimer()
	k.Run()
	k.Shutdown()
}

// pingCont sends a token and waits for it to come back, rounds times.
type pingCont struct {
	rounds   int
	me, peer *Mailbox
	tok      *int
	recv     RecvOp
	pc       int
}

func (m *pingCont) Step(c *ContProc) bool {
	for {
		switch m.pc {
		case 0:
			if m.rounds == 0 {
				return true
			}
			m.rounds--
			m.peer.Send(m.tok)
			m.pc = 1
			if !m.me.RecvCont(&m.recv, c) {
				return false
			}
		case 1:
			_ = m.recv.Msg()
			m.pc = 0
		}
	}
}

// pongCont waits for the token and bounces it back, rounds times.
type pongCont struct {
	rounds   int
	me, peer *Mailbox
	tok      *int
	recv     RecvOp
	pc       int
}

func (m *pongCont) Step(c *ContProc) bool {
	for {
		switch m.pc {
		case 0:
			if m.rounds == 0 {
				return true
			}
			m.pc = 1
			if !m.me.RecvCont(&m.recv, c) {
				return false
			}
		case 1:
			_ = m.recv.Msg()
			m.rounds--
			m.peer.Send(m.tok)
			m.pc = 0
		}
	}
}

// BenchmarkContMailboxPingPong measures a full message round-trip between two
// continuation receivers. After the first exchange every delivery takes the
// direct fast path (Send resumes the cont-parked peer inline), so the whole
// loop runs without touching the event queue: this is the cost the adaptive
// SC/writer protocol pays per message. The acceptance bar is ~3x
// BenchmarkContHandoff per round-trip (two sends + two receives).
func BenchmarkContMailboxPingPong(b *testing.B) {
	b.ReportAllocs()
	k := New()
	a := NewMailbox(k)
	bb := NewMailbox(k)
	tok := new(int)
	k.SpawnCont("ping", &pingCont{rounds: b.N, me: a, peer: bb, tok: tok})
	k.SpawnCont("pong", &pongCont{rounds: b.N, me: bb, peer: a, tok: tok})
	b.ResetTimer()
	k.Run()
	k.Shutdown()
}

// BenchmarkMailboxDeepQueue is the deep-queue regression guard: fill a
// mailbox with a burst of messages, then drain it. ns/op is per message. The
// old slice-backed queue copy-shifted the whole backlog on every dequeue
// (O(depth) per message); the ring dequeues in O(1).
func BenchmarkMailboxDeepQueue(b *testing.B) {
	b.ReportAllocs()
	k := New()
	m := NewMailbox(k)
	tok := new(int)
	const depth = 1024
	b.ResetTimer()
	for i := 0; i < b.N; i += depth {
		for j := 0; j < depth; j++ {
			m.Send(tok)
		}
		for m.Len() > 0 {
			m.TryRecv()
		}
	}
}

// BenchmarkMailboxPingPong measures message delivery round-trips.
func BenchmarkMailboxPingPong(b *testing.B) {
	k := New()
	a := NewMailbox(k)
	bb := NewMailbox(k)
	k.Spawn("a", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			a.Send(i)
			bb.Recv(p)
		}
	})
	k.Spawn("b", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			a.Recv(p)
			bb.Send(i)
		}
	})
	b.ResetTimer()
	k.Run()
	k.Shutdown()
}
