package simkernel

import "testing"

// timerChurn is one steady-state round of heavy timer traffic: schedule a
// batch, cancel three quarters of it (enough to trip the lazy-cancel
// compaction threshold every round), and drain the survivors. All state it
// touches — pool slots, free list, queue backing array — is owned by the
// kernel and recycled, so after a warm-up round it must not allocate.
func timerChurn(k *Kernel, timers []Timer, fn func()) {
	base := k.Now()
	for j := range timers {
		timers[j] = k.At(base+Time(j%16), fn)
	}
	for j := range timers {
		if j%4 != 3 {
			timers[j].Cancel()
		}
	}
	k.RunUntil(base + 16)
}

// BenchmarkKernelTimerChurn measures the schedule/cancel/fire cycle the
// fluid-model boundary timers generate (every OST replan cancels and
// reschedules its boundary event).
func BenchmarkKernelTimerChurn(b *testing.B) {
	b.ReportAllocs()
	k := New()
	fn := func() {}
	timers := make([]Timer, 64)
	timerChurn(k, timers, fn) // warm the pool and queue
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		timerChurn(k, timers, fn)
	}
}

// TestKernelTimerChurnZeroAlloc is the allocation regression gate for the
// kernel hot loop: once pool and queue are warm, timer churn — including
// the compaction it triggers — must be allocation-free.
func TestKernelTimerChurnZeroAlloc(t *testing.T) {
	k := New()
	fn := func() {}
	timers := make([]Timer, 64)
	timerChurn(k, timers, fn)
	got := testing.AllocsPerRun(100, func() {
		timerChurn(k, timers, fn)
	})
	if got != 0 {
		t.Fatalf("timer churn allocates %v allocs/op in steady state; want 0", got)
	}
}

// TestCompactOrderPreserved pins the compaction re-heapify: bulk-removing
// cancelled entries must leave the survivors firing in exact (time, seq)
// order. Heap sizes sweep across 4-ary parent boundaries, where an
// off-by-one in the heapify start index leaves deep leaves unordered.
func TestCompactOrderPreserved(t *testing.T) {
	for n := 2; n <= 200; n++ {
		k := New()
		var fired []Time
		timers := make([]Timer, n)
		for j := 0; j < n; j++ {
			// A scattered, collision-rich schedule (j*37 mod 101 repeats
			// times for n > 101, exercising the seq tiebreak).
			at := Time(j * 37 % 101)
			timers[j] = k.At(at, func() { fired = append(fired, k.Now()) })
		}
		for j := 0; j < n; j++ {
			if j%4 != 1 {
				timers[j].Cancel() // 75% cancelled: forces compaction
			}
		}
		k.Run()
		want := 0
		for j := 0; j < n; j++ {
			if j%4 == 1 {
				want++
			}
		}
		if len(fired) != want {
			t.Fatalf("n=%d: fired %d events, want %d", n, len(fired), want)
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				t.Fatalf("n=%d: events fired out of order: t=%v before t=%v", n, fired[i-1], fired[i])
			}
		}
	}
}

// TestTimerGenerationSafety verifies a stale handle cannot cancel the
// event that reuses its pool slot.
func TestTimerGenerationSafety(t *testing.T) {
	k := New()
	fired := 0
	tm := k.At(5, func() { t.Fatal("cancelled event fired") })
	tm.Cancel()
	k.Run() // slot is released
	tm2 := k.At(10, func() { fired++ })
	tm.Cancel() // stale: same slot, older generation — must be a no-op
	if !tm2.Active() {
		t.Fatal("stale Cancel deactivated the slot's new occupant")
	}
	k.Run()
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
}
