package simkernel

import (
	"os"
	"time"
)

// The continuation engine: run-to-completion processes.
//
// A goroutine process costs a channel round-trip per handoff (~500 ns —
// BenchmarkProcessHandoff) because park/unpark crosses the scheduler twice.
// A continuation process eliminates the goroutine entirely: its body is an
// explicit state machine (Cont) that the kernel loop steps inline. "Yield"
// means the body arranged its own wakeup — a scheduled sleep event, or
// registration on a waiter list some other component will wake — marked the
// process parked, and returned from Step. The next wakeup event re-enters
// Step, which dispatches on its own program counter. "Completion" means Step
// returned true.
//
// The two engines are interchangeable by construction: a continuation
// process is an ordinary *Proc registered in the same tables, woken through
// the same scheduleProc events and waiter lists, tagged with the same job
// ids, and ordered by the same (time, seq) keys. A body ported between
// engines must schedule exactly the same wakeup events at the same points —
// see the WaitCont/AcquireCont primitives in sync.go, which mirror their
// blocking counterparts' event behaviour bit-exactly. The REPRO_NO_CONT
// environment variable (see ContEnabled) forces the goroutine path
// everywhere for bisection, and the determinism suite asserts both engines
// produce identical figures.
//
// Discipline for Step bodies: they run on the kernel thread, so they must
// not block (calling a goroutine-path method like Proc.Sleep panics), must
// yield only as the last action before returning false, and hold no state on
// the stack across yields — everything lives in the Cont value. Bodies run
// no deferred cleanup: Kernel.Reset drops in-flight continuations outright,
// so any end-of-body signalling (WaitGroup.Done) belongs in the machine's
// final state. reprolint's hotpath analyzer audits every function taking a
// *ContProc parameter as a hot path automatically.

// Cont is a continuation body: a resumable state machine. Step runs the
// machine until it either completes (returns true) or yields (arranges a
// wakeup via c, marks the process parked, and returns false).
type Cont interface {
	Step(c *ContProc) bool
}

// ContProc is the continuation-side view of a process. It is the same
// underlying Proc (conversion is free) but exposes only non-blocking
// methods: sleeps arrange a wakeup and return immediately, and the body is
// expected to yield right after.
type ContProc Proc

// SpawnCont creates a continuation process that begins stepping body at the
// current virtual time (as a scheduled event, so the caller continues
// first). Dead continuation shells are recycled from a freelist, so
// steady-state spawning allocates nothing.
func (k *Kernel) SpawnCont(name string, body Cont) *Proc {
	p := k.newContProc(name, body)
	k.scheduleProc(k.now, p)
	return p
}

// SpawnContAt is SpawnCont with the first step delayed until absolute
// virtual time at.
func (k *Kernel) SpawnContAt(at Time, name string, body Cont) *Proc {
	if at < k.now {
		at = k.now
	}
	p := k.newContProc(name, body)
	k.scheduleProc(at, p)
	return p
}

// SpawnContJob is SpawnCont with a job attribution tag (see SpawnJob).
func (k *Kernel) SpawnContJob(name string, job int, body Cont) *Proc {
	p := k.newContProc(name, body)
	p.job = job
	k.scheduleProc(k.now, p)
	return p
}

// newContProc registers a continuation process, recycling a dead shell from
// the freelist when one is available.
func (k *Kernel) newContProc(name string, body Cont) *Proc {
	k.nextProcID++
	if n := len(k.idleCont); n > 0 {
		p := k.idleCont[n-1]
		k.idleCont[n-1] = nil
		k.idleCont = k.idleCont[:n-1]
		p.id = k.nextProcID
		p.name = name
		p.job = 0
		p.cont = body
		p.state = procReady
		k.procs = append(k.procs, p)
		return p
	}
	p := &Proc{
		k:      k,
		id:     k.nextProcID,
		name:   name,
		state:  procReady,
		isCont: true,
		cont:   body,
	}
	k.procs = append(k.procs, p)
	return p
}

// resumeCont steps a continuation process inline. Completion is Step
// returning true; otherwise the body must have parked itself (via a yield
// method on ContProc), which is enforced because a body that neither
// completes nor yields would silently leak.
//
//repro:hotpath
func (p *Proc) resumeCont(kind wakeKind) {
	if kind != wakeRun {
		// Halt/shutdown: continuation bodies have no stack to unwind and
		// no deferred cleanup; dropping the machine is the whole unwind.
		p.state = procDone
		p.cont = nil
		return
	}
	p.state = procRunning
	if p.cont.Step((*ContProc)(p)) {
		if p.state == procParked {
			panic("simkernel: continuation " + p.name + " yielded and then reported completion")
		}
		p.state = procDone
		p.cont = nil
		return
	}
	if p.state != procParked {
		panic("simkernel: continuation " + p.name + " returned without yielding or completing")
	}
}

// Proc returns the underlying process, for identity and wiring only —
// registering on waiter lists, job inspection. Calling any blocking method
// on it (Sleep, Suspend, a primitive's blocking wait) panics: a continuation
// has no goroutine to park.
func (c *ContProc) Proc() *Proc { return (*Proc)(c) }

// Kernel returns the kernel this process belongs to.
func (c *ContProc) Kernel() *Kernel { return c.k }

// Now returns the current virtual time.
//
//repro:hotpath
func (c *ContProc) Now() Time { return c.k.now }

// Name returns the process's diagnostic name.
func (c *ContProc) Name() string { return c.name }

// ID returns the process's unique id within its kernel.
func (c *ContProc) ID() int { return c.id }

// Job returns the process's job attribution tag (0 = unattributed).
//
//repro:hotpath
func (c *ContProc) Job() int { return c.job }

// Pause marks the process parked without scheduling a wakeup: the caller
// has already arranged one (waiter-list registration whose owner will call
// Waker, a pending StartWrite completion, ...). The body must return false
// from Step immediately after. Equivalent to Proc.Suspend.
//
//repro:hotpath
func (c *ContProc) Pause() { c.state = procParked }

// Sleep arranges a wakeup after virtual duration d and marks the process
// parked; the body must yield. Equivalent in event behaviour to Proc.Sleep
// (always schedules, even for d <= 0).
//
//repro:hotpath
func (c *ContProc) Sleep(d time.Duration) {
	if d < 0 {
		d = 0
	}
	c.k.scheduleProc(c.k.now+Time(d), (*Proc)(c))
	c.state = procParked
}

// SleepSeconds is Sleep for a floating-point number of virtual seconds.
//
//repro:hotpath
func (c *ContProc) SleepSeconds(s float64) {
	c.k.scheduleProc(c.k.now+FromSeconds(s), (*Proc)(c))
	c.state = procParked
}

// SleepUntil arranges a wakeup at absolute virtual time at and marks the
// process parked, reporting true (the body must yield). Like Proc.SleepUntil
// it is a no-op when at is not in the future: it returns false and the body
// continues inline, scheduling no event.
//
//repro:hotpath
func (c *ContProc) SleepUntil(at Time) bool {
	if at <= c.k.now {
		return false
	}
	c.k.scheduleProc(at, (*Proc)(c))
	c.state = procParked
	return true
}

// Waker returns the process's cached wake closure (see Proc.Waker): calling
// it schedules a resume at the virtual time of the call.
//
//repro:hotpath
func (c *ContProc) Waker() func() { return (*Proc)(c).Waker() }

// ContEnabled reports whether the continuation engine should be used.
// Setting REPRO_NO_CONT=1 (mirroring REPRO_NO_REUSE) forces the goroutine
// path everywhere that would otherwise run rank bodies as continuations —
// results are bit-identical either way; the switch exists for bisection.
// Checked per launch decision, not cached, so tests can toggle it with
// t.Setenv.
func ContEnabled() bool {
	return os.Getenv("REPRO_NO_CONT") == ""
}
