package simkernel

// This file provides the synchronization primitives used by higher layers:
// FIFO mailboxes for message passing, counted resources for queueing servers
// (e.g. the metadata server), broadcast signals, and wait groups.

// Mailbox is an unbounded FIFO message queue connecting simulation
// processes. Send never blocks; Recv blocks the calling process until a
// message is available. Delivery order is deterministic: messages are
// received in send order, and competing receivers are served in the order
// they blocked. Queue and waiter list are ring buffers, so deep queues under
// write storms dequeue in O(1) instead of the old copy-shift O(n).
type Mailbox struct {
	k       *Kernel
	queue   Ring[any]
	waiters Ring[mboxWaiter]
}

// mboxWaiter is one blocked receiver. Goroutine receivers (op == nil) are
// woken through a scheduled event and re-check the queue themselves;
// continuation receivers carry the RecvOp that Send completes directly.
type mboxWaiter struct {
	p  *Proc
	op *RecvOp
}

// NewMailbox creates a mailbox bound to kernel k.
func NewMailbox(k *Kernel) *Mailbox {
	return &Mailbox{k: k}
}

// Len reports the number of queued (undelivered) messages.
func (m *Mailbox) Len() int { return m.queue.Len() }

// Send enqueues v. If a goroutine process is blocked in Recv, its wakeup is
// scheduled at the current virtual time (it runs after the sender parks or
// returns to the kernel). If the front waiter is a cont-parked continuation
// receiver, Send takes the direct-delivery fast path: the value is handed to
// its RecvOp and the receiver's state machine is resumed inline at the
// current timestamp, skipping the event queue entirely. That is safe
// precisely because a parked continuation holds no stack: resuming it is an
// ordinary function call on the sender's stack, and any messages already in
// the queue belong to earlier, already-woken receivers, so FIFO order is
// preserved. Send is callable from both process and kernel context.
//
//repro:hotpath
func (m *Mailbox) Send(v any) {
	if m.waiters.Len() > 0 {
		w := m.waiters.Pop()
		if w.op != nil {
			w.op.msg = v
			w.op.has = true
			w.p.resumeCont(wakeRun)
			return
		}
		m.queue.Push(v)
		m.k.scheduleProc(m.k.now, w.p)
		return
	}
	m.queue.Push(v)
}

// SendAfter enqueues v after virtual duration d (modelling, e.g., message
// latency). Callable from both process and kernel context.
func (m *Mailbox) SendAfter(d Time, v any) {
	m.k.scheduleFn(m.k.now+d, func() { m.Send(v) }) //repro:allow hotpath delayed-send convenience path; latency-critical senders use Send
}

// Recv blocks p until a message is available and returns it.
//
//repro:hotpath
func (m *Mailbox) Recv(p *Proc) any {
	for m.queue.Len() == 0 {
		m.waiters.Push(mboxWaiter{p: p})
		p.park()
	}
	return m.queue.Pop()
}

// TryRecv returns the next message without blocking; ok is false when the
// mailbox is empty.
//
//repro:hotpath
func (m *Mailbox) TryRecv() (v any, ok bool) {
	if m.queue.Len() == 0 {
		return nil, false
	}
	return m.queue.Pop(), true
}

// RecvOp is a mailbox receive in flight on behalf of a continuation body,
// advance style: embed it in the state machine and call Mailbox.RecvCont.
// A true return means the message is already available in Msg; on false the
// body must advance its program counter past the receive and yield — the
// wake (direct delivery from Send) has already stored the message, so the
// resumed state reads Msg without re-calling RecvCont.
type RecvOp struct {
	msg any
	has bool
}

// Msg returns the received message. It panics if the operation has not
// completed — a protocol bug (the state machine advanced without a wake).
//
//repro:hotpath
func (o *RecvOp) Msg() any {
	if !o.has {
		panic("simkernel: mailbox RecvOp read before a message arrived")
	}
	return o.msg
}

// RecvCont is Recv for a continuation body, advance style. If a message is
// queued it completes o inline and returns true. Otherwise it registers c as
// a waiter carrying o and marks it parked; the matching Send will complete o
// and resume c directly (see Send), so the body must advance past the
// receive before yielding — it must NOT re-call RecvCont on wake.
//
//repro:hotpath
func (m *Mailbox) RecvCont(o *RecvOp, c *ContProc) bool {
	if m.queue.Len() > 0 {
		o.msg = m.queue.Pop()
		o.has = true
		return true
	}
	o.msg = nil
	o.has = false
	m.waiters.Push(mboxWaiter{p: (*Proc)(c), op: o})
	c.Pause()
	return false
}

// Resource is a counted FIFO resource: up to Capacity holders at a time,
// additional acquirers queue in arrival order. It models service points such
// as the metadata server's request slots.
type Resource struct {
	k        *Kernel //repro:reset-skip immutable wiring to the owning kernel
	capacity int
	inUse    int
	waiters  Ring[*Proc]

	// MaxQueue tracks the high-water mark of the wait queue, useful for
	// diagnosing contention in experiments.
	MaxQueue int
}

// NewResource creates a resource with the given capacity (must be >= 1).
func NewResource(k *Kernel, capacity int) *Resource {
	if capacity < 1 {
		panic("simkernel: resource capacity must be >= 1")
	}
	return &Resource{k: k, capacity: capacity}
}

// Acquire blocks p until a slot is available, then takes it.
//
//repro:hotpath
func (r *Resource) Acquire(p *Proc) {
	if r.inUse < r.capacity && r.waiters.Len() == 0 {
		r.inUse++
		return
	}
	r.waiters.Push(p)
	if r.waiters.Len() > r.MaxQueue {
		r.MaxQueue = r.waiters.Len()
	}
	p.park()
	// Woken by Release, which transferred the slot to us.
}

// Release frees a slot, waking the longest-waiting acquirer if any. Callable
// from both process and kernel context.
//
//repro:hotpath
func (r *Resource) Release() {
	if r.inUse <= 0 {
		panic("simkernel: Release without Acquire")
	}
	if r.waiters.Len() > 0 {
		// Slot transfers directly: inUse stays constant.
		r.k.scheduleProc(r.k.now, r.waiters.Pop())
		return
	}
	r.inUse--
}

// Reset returns the resource to its freshly constructed state with the given
// capacity, dropping any queued waiters (their processes must already have
// been unwound by Kernel.Reset). It lets a reused world re-arm its service
// points without reallocating them.
func (r *Resource) Reset(capacity int) {
	if capacity < 1 {
		panic("simkernel: resource capacity must be >= 1")
	}
	r.capacity = capacity
	r.inUse = 0
	r.waiters.Reset()
	r.MaxQueue = 0
}

// InUse reports the number of currently held slots.
func (r *Resource) InUse() int { return r.inUse }

// QueueLen reports the number of waiting acquirers.
func (r *Resource) QueueLen() int { return r.waiters.Len() }

// Signal is a broadcast condition: processes block in Wait until some
// component calls Broadcast, which wakes all of them.
type Signal struct {
	k       *Kernel
	waiters []*Proc
	fired   bool
}

// NewSignal creates a signal bound to kernel k.
func NewSignal(k *Kernel) *Signal {
	return &Signal{k: k}
}

// Wait blocks p until the signal has been broadcast. If Broadcast already
// happened, Wait returns immediately.
func (s *Signal) Wait(p *Proc) {
	if s.fired {
		return
	}
	s.waiters = append(s.waiters, p)
	p.park()
}

// Broadcast wakes all waiters and latches the signal: subsequent Wait calls
// return immediately. Callable from both process and kernel context.
func (s *Signal) Broadcast() {
	if s.fired {
		return
	}
	s.fired = true
	for _, w := range s.waiters {
		s.k.scheduleProc(s.k.now, w)
	}
	s.waiters = nil
}

// Fired reports whether Broadcast has been called.
func (s *Signal) Fired() bool { return s.fired }

// WaitGroup counts outstanding work items; Wait blocks until the count
// reaches zero. Unlike sync.WaitGroup it is single-threaded under the
// kernel's handoff discipline and allows multiple waiters.
type WaitGroup struct {
	k       *Kernel
	count   int
	waiters []*Proc
}

// NewWaitGroup creates a wait group bound to kernel k.
func NewWaitGroup(k *Kernel) *WaitGroup {
	return &WaitGroup{k: k}
}

// Add increments the counter by n (n may be negative; Done is Add(-1)).
func (wg *WaitGroup) Add(n int) {
	wg.count += n
	if wg.count < 0 {
		panic("simkernel: negative WaitGroup counter")
	}
	if wg.count == 0 && len(wg.waiters) > 0 {
		for _, w := range wg.waiters {
			wg.k.scheduleProc(wg.k.now, w)
		}
		wg.waiters = nil
	}
}

// Done decrements the counter by one.
func (wg *WaitGroup) Done() { wg.Add(-1) }

// Count returns the current counter value.
func (wg *WaitGroup) Count() int { return wg.count }

// Wait blocks p until the counter is zero.
func (wg *WaitGroup) Wait(p *Proc) {
	for wg.count > 0 {
		wg.waiters = append(wg.waiters, p)
		p.park()
	}
}

// Continuation-side waits. Each mirrors its blocking counterpart's event
// behaviour bit-exactly, in one of two shapes:
//
//   - Recall style (WaitCont on WaitGroup and Signal): when blocked, the
//     primitive registers the process and returns false; the body yields
//     with its program counter unchanged, so the wakeup re-enters the same
//     call, which re-checks the condition — exactly the goroutine path's
//     "for cond { register; park }" loop.
//   - Advance style (AcquireCont): a false return still transfers state on
//     wake (Release hands the slot to the woken waiter directly), so the
//     body must advance its program counter past the call before yielding —
//     re-calling after the wake would acquire twice.

// WaitCont is Wait for a continuation body, recall style: it reports
// whether the counter is zero, registering c as a waiter and marking it
// parked otherwise. On false the body must yield and re-call on wake.
//
//repro:hotpath
func (wg *WaitGroup) WaitCont(c *ContProc) bool {
	if wg.count > 0 {
		wg.waiters = append(wg.waiters, (*Proc)(c))
		c.Pause()
		return false
	}
	return true
}

// WaitCont is Wait for a continuation body, recall style: it reports
// whether the signal has fired, registering c as a waiter and marking it
// parked otherwise. On false the body must yield and re-call on wake (the
// signal latches, so the re-call returns true).
//
//repro:hotpath
func (s *Signal) WaitCont(c *ContProc) bool {
	if s.fired {
		return true
	}
	s.waiters = append(s.waiters, (*Proc)(c))
	c.Pause()
	return false
}

// AcquireCont is Acquire for a continuation body, advance style: it reports
// whether a slot was taken inline. On false the process is queued and
// marked parked; the wakeup from Release means the slot has been
// transferred, so the body must advance past the acquire before yielding —
// it must NOT re-call AcquireCont on wake.
//
//repro:hotpath
func (r *Resource) AcquireCont(c *ContProc) bool {
	if r.inUse < r.capacity && r.waiters.Len() == 0 {
		r.inUse++
		return true
	}
	r.waiters.Push((*Proc)(c))
	if r.waiters.Len() > r.MaxQueue {
		r.MaxQueue = r.waiters.Len()
	}
	c.Pause()
	return false
}
