package simkernel

import (
	"fmt"
	"testing"
)

// ringDrain pops everything and returns the contents in FIFO order.
func ringDrain(r *Ring[int]) []int {
	out := make([]int, 0, r.Len())
	for r.Len() > 0 {
		out = append(out, r.Pop())
	}
	return out
}

func TestRingPushPopOrder(t *testing.T) {
	var r Ring[int]
	for i := 0; i < 20; i++ {
		r.Push(i)
	}
	if r.Len() != 20 {
		t.Fatalf("Len = %d, want 20", r.Len())
	}
	for i := 0; i < 20; i++ {
		if got := r.Pop(); got != i {
			t.Fatalf("Pop #%d = %d, want %d", i, got, i)
		}
	}
	if r.Len() != 0 {
		t.Fatalf("Len after drain = %d, want 0", r.Len())
	}
}

// TestRingWrap interleaves pushes and pops so the occupied region straddles
// the end of the backing array, then grows mid-wrap: order must survive both.
func TestRingWrap(t *testing.T) {
	var r Ring[int]
	next := 0 // next value to push
	want := 0 // next value expected from Pop
	for round := 0; round < 6; round++ {
		for i := 0; i < 5; i++ {
			r.Push(next)
			next++
		}
		for i := 0; i < 3; i++ {
			if got := r.Pop(); got != want {
				t.Fatalf("round %d: Pop = %d, want %d", round, got, want)
			}
			want++
		}
	}
	// 12 elements remain, head well past zero; force one more grow.
	for i := 0; i < 20; i++ {
		r.Push(next)
		next++
	}
	for r.Len() > 0 {
		if got := r.Pop(); got != want {
			t.Fatalf("drain: Pop = %d, want %d", got, want)
		}
		want++
	}
	if want != next {
		t.Fatalf("drained %d values, pushed %d", want, next)
	}
}

func TestRingAt(t *testing.T) {
	var r Ring[int]
	// Offset the head so At must wrap.
	for i := 0; i < 6; i++ {
		r.Push(-1)
	}
	for i := 0; i < 6; i++ {
		r.Pop()
	}
	for i := 0; i < 7; i++ {
		r.Push(10 + i)
	}
	for i := 0; i < 7; i++ {
		if got := r.At(i); got != 10+i {
			t.Fatalf("At(%d) = %d, want %d", i, got, 10+i)
		}
	}
}

// TestRingRemoveAt checks order preservation against a reference slice for
// removals at every index, with the head offset to force wrapped shifts.
func TestRingRemoveAt(t *testing.T) {
	for offset := 0; offset < 8; offset++ {
		for remove := 0; remove < 8; remove++ {
			var r Ring[int]
			for i := 0; i < offset; i++ {
				r.Push(-1)
			}
			for i := 0; i < offset; i++ {
				r.Pop()
			}
			ref := make([]int, 0, 8)
			for i := 0; i < 8; i++ {
				r.Push(i)
				ref = append(ref, i)
			}
			if got := r.RemoveAt(remove); got != ref[remove] {
				t.Fatalf("offset=%d: RemoveAt(%d) = %d, want %d", offset, remove, got, ref[remove])
			}
			ref = append(ref[:remove], ref[remove+1:]...)
			got := ringDrain(&r)
			if fmt.Sprint(got) != fmt.Sprint(ref) {
				t.Fatalf("offset=%d remove=%d: drained %v, want %v", offset, remove, got, ref)
			}
		}
	}
}

// TestRingReset pins the two Reset guarantees: occupied slots are zeroed (so
// pooled pointers are not retained past a run) and the backing array is kept
// (so a recycled world's queues stay allocation-free).
func TestRingReset(t *testing.T) {
	var r Ring[*int]
	for i := 0; i < 10; i++ {
		v := i
		r.Push(&v)
	}
	r.Pop()
	capBefore := cap(r.buf)
	r.Reset()
	if r.Len() != 0 || r.head != 0 {
		t.Fatalf("after Reset: Len=%d head=%d, want 0/0", r.Len(), r.head)
	}
	for i, p := range r.buf {
		if p != nil {
			t.Fatalf("Reset left a live pointer at slot %d", i)
		}
	}
	if cap(r.buf) != capBefore {
		t.Fatalf("Reset dropped the backing array: cap %d -> %d", capBefore, cap(r.buf))
	}
	r.Push(new(int))
	if r.Len() != 1 {
		t.Fatalf("ring unusable after Reset")
	}
}

func TestRingPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		f()
	}
	var r Ring[int]
	mustPanic("Pop on empty", func() { r.Pop() })
	r.Push(1)
	mustPanic("At(1) with one element", func() { r.At(1) })
	mustPanic("At(-1)", func() { r.At(-1) })
	mustPanic("RemoveAt(1) with one element", func() { r.RemoveAt(1) })
}

// recvTapCont parks in RecvCont once and hands the received message to sink,
// logging its progress so tests can pin exactly when the body ran.
type recvTapCont struct {
	m    *Mailbox
	log  *[]string
	tag  string
	sink func(v any)
	recv RecvOp
	pc   int
}

func (r *recvTapCont) Step(c *ContProc) bool {
	switch r.pc {
	case 0:
		*r.log = append(*r.log, r.tag+" blocked")
		r.pc = 1
		if !r.m.RecvCont(&r.recv, c) {
			return false
		}
		fallthrough
	default:
		*r.log = append(*r.log, fmt.Sprintf("%s got %v@%v", r.tag, r.recv.Msg(), c.Kernel().Now()))
		if r.sink != nil {
			r.sink(r.recv.Msg())
		}
		return true
	}
}

// TestMailboxDirectDelivery pins the fast path: a cont-parked receiver is
// resumed inline by Send — by the time Send returns, the receiver has already
// consumed the message, with no intervening event and no time advance.
func TestMailboxDirectDelivery(t *testing.T) {
	k := New()
	m := NewMailbox(k)
	var log []string
	k.SpawnCont("rx", &recvTapCont{m: m, log: &log, tag: "rx"})
	k.After(5, func() {
		log = append(log, "send")
		m.Send("v")
		log = append(log, "send returned")
	})
	k.Run()
	want := "[rx blocked send rx got v@0.000000005s send returned]"
	if got := fmt.Sprint(log); got != want {
		t.Fatalf("direct delivery order:\n got %s\nwant %s", got, want)
	}
}

// TestMailboxRecvContInline pins the other half of the fast path: a queued
// message completes RecvCont without parking at all.
func TestMailboxRecvContInline(t *testing.T) {
	k := New()
	m := NewMailbox(k)
	m.Send("early")
	var log []string
	k.SpawnCont("rx", &recvTapCont{m: m, log: &log, tag: "rx"})
	k.Run()
	// "blocked" still logs (it precedes the RecvCont call), but the message
	// arrives in the same Step at t=0.
	want := "[rx blocked rx got early@0.000000000s]"
	if got := fmt.Sprint(log); got != want {
		t.Fatalf("inline receive order:\n got %s\nwant %s", got, want)
	}
}

// TestMailboxMixedWaitersFIFO blocks a goroutine receiver and a continuation
// receiver on one mailbox and sends two messages: competing receivers must be
// served in the order they blocked regardless of engine, with the goroutine
// waiter woken through a scheduled event and the cont waiter woken inline.
func TestMailboxMixedWaitersFIFO(t *testing.T) {
	k := New()
	m := NewMailbox(k)
	var log []string
	got := map[string]any{}
	k.Spawn("g", func(p *Proc) {
		log = append(log, "g blocked")
		got["g"] = m.Recv(p)
		log = append(log, fmt.Sprintf("g got %v@%v", got["g"], k.Now()))
	})
	k.SpawnCont("c", &recvTapCont{m: m, log: &log, tag: "c", sink: func(v any) { got["c"] = v }})
	k.After(5, func() {
		m.Send("a")
		m.Send("b")
	})
	k.Run()
	k.Shutdown()
	if got["g"] != "a" || got["c"] != "b" {
		t.Fatalf("FIFO violated: g=%v c=%v, want g=a c=b", got["g"], got["c"])
	}
	// The cont waiter's wake is inline within the Send, the goroutine's is a
	// scheduled event — so c logs first, but both at t=5.
	want := "[g blocked c blocked c got b@0.000000005s g got a@0.000000005s]"
	if gotLog := fmt.Sprint(log); gotLog != want {
		t.Fatalf("mixed-waiter order:\n got %s\nwant %s", gotLog, want)
	}
}

// TestRecvOpPanicsBeforeArrival pins the protocol guard on RecvOp.Msg.
func TestRecvOpPanicsBeforeArrival(t *testing.T) {
	var o RecvOp
	defer func() {
		if recover() == nil {
			t.Fatal("Msg on incomplete RecvOp did not panic")
		}
	}()
	o.Msg()
}
