package simkernel

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

// mixedWorkload drives one workload through both engines: n workers sleep,
// contend on a capacity-2 resource, wait on a latched signal and a
// wait-group, and log every step with its virtual time. The goroutine and
// continuation renditions must produce the same log — same times, same
// order — because every yield maps to the same scheduled events.
type mixedLog struct{ lines []string }

func (l *mixedLog) add(k *Kernel, who string, what string) {
	l.lines = append(l.lines, fmt.Sprintf("%v %s %s", k.Now(), who, what))
}

func runMixedGoroutine(n int) []string {
	k := New()
	log := &mixedLog{}
	res := NewResource(k, 2)
	start := NewSignal(k)
	done := NewWaitGroup(k)
	done.Add(n)
	k.Spawn("starter", func(p *Proc) {
		p.Sleep(5 * time.Nanosecond)
		start.Broadcast()
	})
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("w%d", i)
		k.SpawnJob(name, i+1, func(p *Proc) {
			start.Wait(p)
			log.add(k, p.Name(), "started")
			p.Sleep(time.Duration(i % 3))
			res.Acquire(p)
			log.add(k, p.Name(), fmt.Sprintf("acquired job=%d", p.Job()))
			p.SleepSeconds(1e-6)
			res.Release()
			p.SleepUntil(Time(10)) // in the past by now: no-op
			log.add(k, p.Name(), "released")
			done.Done()
		})
	}
	k.Spawn("joiner", func(p *Proc) {
		done.Wait(p)
		log.add(k, "joiner", "all done")
	})
	k.Run()
	k.Shutdown()
	return log.lines
}

// mixedCont is the continuation rendition of the worker body above.
type mixedCont struct {
	pc    int
	i     int
	log   *mixedLog
	res   *Resource
	start *Signal
	done  *WaitGroup
}

func (m *mixedCont) Step(c *ContProc) bool {
	k := c.Kernel()
	for {
		switch m.pc {
		case 0: // start.Wait (recall style)
			if !m.start.WaitCont(c) {
				return false
			}
			m.log.add(k, c.Name(), "started")
			m.pc = 1
			c.Sleep(time.Duration(m.i % 3))
			return false
		case 1: // res.Acquire (advance style)
			m.pc = 2
			if !m.res.AcquireCont(c) {
				return false
			}
		case 2:
			m.log.add(k, c.Name(), fmt.Sprintf("acquired job=%d", c.Job()))
			m.pc = 3
			c.SleepSeconds(1e-6)
			return false
		case 3:
			m.res.Release()
			m.pc = 4
			if c.SleepUntil(Time(10)) { // in the past: no yield
				return false
			}
		case 4:
			m.log.add(k, c.Name(), "released")
			m.done.Done()
			return true
		}
	}
}

func runMixedCont(n int) []string {
	k := New()
	log := &mixedLog{}
	res := NewResource(k, 2)
	start := NewSignal(k)
	done := NewWaitGroup(k)
	done.Add(n)
	k.Spawn("starter", func(p *Proc) {
		p.Sleep(5 * time.Nanosecond)
		start.Broadcast()
	})
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("w%d", i)
		k.SpawnContJob(name, i+1, &mixedCont{i: i, log: log, res: res, start: start, done: done})
	}
	k.Spawn("joiner", func(p *Proc) {
		done.Wait(p)
		log.add(k, "joiner", "all done")
	})
	k.Run()
	k.Shutdown()
	return log.lines
}

// TestContMatchesGoroutineEngine is the engine-equivalence pin at the
// kernel level: the same workload, one rendition per engine, must produce
// an identical execution log (same virtual times, same interleaving).
func TestContMatchesGoroutineEngine(t *testing.T) {
	for _, n := range []int{1, 2, 7, 32} {
		g := runMixedGoroutine(n)
		c := runMixedCont(n)
		if strings.Join(g, "\n") != strings.Join(c, "\n") {
			t.Fatalf("n=%d: engines diverge\n--- goroutine ---\n%s\n--- continuation ---\n%s",
				n, strings.Join(g, "\n"), strings.Join(c, "\n"))
		}
	}
}

// sleeperCont sleeps count times, then finishes.
type sleeperCont struct {
	left  int
	after func()
}

func (s *sleeperCont) Step(c *ContProc) bool {
	if s.left > 0 {
		s.left--
		c.Sleep(1)
		return false
	}
	if s.after != nil {
		s.after()
	}
	return true
}

// TestContResetRecyclesShells verifies Reset drops in-flight continuations
// and recycles their shells: a steady spawn → run → reset cycle allocates
// nothing once the freelist is warm.
func TestContResetRecyclesShells(t *testing.T) {
	k := New()
	cycle := func() {
		conts := make([]sleeperCont, 8)
		for i := range conts {
			conts[i].left = 3
			k.SpawnCont("s", &conts[i])
		}
		k.RunUntil(2) // leaves every body mid-flight
		k.Reset()
	}
	cycle()
	if len(k.idleCont) != 8 {
		t.Fatalf("idleCont after reset = %d, want 8", len(k.idleCont))
	}
	shell := k.idleCont[len(k.idleCont)-1]
	k.SpawnCont("again", &sleeperCont{left: 1})
	if got := k.procs[len(k.procs)-1]; got != shell {
		t.Fatalf("SpawnCont did not recycle the freelist shell")
	}
	k.Reset()
}

// TestContBlockingCallPanics pins the guard: a continuation body that
// reaches a goroutine-path blocking call must fail loudly, not deadlock.
func TestContBlockingCallPanics(t *testing.T) {
	k := New()
	k.SpawnCont("bad", contFunc(func(c *ContProc) bool {
		c.Proc().Sleep(1) // blocking call on a continuation
		return true
	}))
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("blocking call on continuation did not panic")
		}
		if !strings.Contains(fmt.Sprint(r), "blocking call on continuation") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	k.Run()
}

// contFunc adapts a plain function to Cont for tests.
type contFunc func(c *ContProc) bool

func (f contFunc) Step(c *ContProc) bool { return f(c) }

// TestContProtocolViolationPanics pins the leak guard: returning false
// without yielding is a protocol bug and must panic.
func TestContProtocolViolationPanics(t *testing.T) {
	k := New()
	k.SpawnCont("leaky", contFunc(func(c *ContProc) bool { return false }))
	defer func() {
		if r := recover(); r == nil || !strings.Contains(fmt.Sprint(r), "without yielding") {
			t.Fatalf("protocol violation panic missing, got %v", r)
		}
	}()
	k.Run()
}

// BenchmarkContHandoff measures the continuation handoff cost per
// sleep/wake cycle — the run-to-completion counterpart of
// BenchmarkProcessHandoff. Steady state must be allocation-free.
func BenchmarkContHandoff(b *testing.B) {
	b.ReportAllocs()
	k := New()
	k.SpawnCont("p", &sleeperCont{left: b.N})
	b.ResetTimer()
	k.Run()
	k.Shutdown()
}
