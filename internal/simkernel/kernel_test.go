package simkernel

import (
	"reflect"
	"testing"
	"testing/quick"
	"time"
)

func TestEventOrdering(t *testing.T) {
	k := New()
	var got []int
	k.At(30, func() { got = append(got, 3) })
	k.At(10, func() { got = append(got, 1) })
	k.At(20, func() { got = append(got, 2) })
	k.At(10, func() { got = append(got, 11) }) // same time: scheduling order
	end := k.Run()
	want := []int{1, 11, 2, 3}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("event order = %v, want %v", got, want)
	}
	if end != 30 {
		t.Fatalf("final time = %v, want 30", end)
	}
}

func TestPastEventsClampToNow(t *testing.T) {
	k := New()
	var fired Time = -1
	k.At(100, func() {
		k.At(50, func() { fired = k.Now() }) // in the past
	})
	k.Run()
	if fired != 100 {
		t.Fatalf("past event fired at %v, want clamped to 100", fired)
	}
}

func TestTimerCancel(t *testing.T) {
	k := New()
	fired := false
	tm := k.At(10, func() { fired = true })
	if !tm.Active() {
		t.Fatal("timer should be active before firing")
	}
	tm.Cancel()
	if tm.Active() {
		t.Fatal("timer should be inactive after cancel")
	}
	k.Run()
	if fired {
		t.Fatal("cancelled timer fired")
	}
}

func TestAfterAndAfterSeconds(t *testing.T) {
	k := New()
	var at1, at2 Time
	k.After(2*time.Second, func() { at1 = k.Now() })
	k.AfterSeconds(1.5, func() { at2 = k.Now() })
	k.Run()
	if at1 != Time(2*time.Second) {
		t.Errorf("After fired at %v, want 2s", at1)
	}
	if at2 != FromSeconds(1.5) {
		t.Errorf("AfterSeconds fired at %v, want 1.5s", at2)
	}
}

func TestFromSecondsClampsNegative(t *testing.T) {
	if FromSeconds(-1e-12) != 0 {
		t.Fatal("negative seconds should clamp to zero")
	}
	if FromSeconds(0) != 0 {
		t.Fatal("zero seconds should be zero")
	}
	if got := FromSeconds(1.0); got != 1e9 {
		t.Fatalf("FromSeconds(1.0) = %d, want 1e9", got)
	}
}

func TestProcSleep(t *testing.T) {
	k := New()
	var trace []string
	k.Spawn("a", func(p *Proc) {
		trace = append(trace, "a0")
		p.Sleep(10 * time.Nanosecond)
		trace = append(trace, "a1")
		p.Sleep(10 * time.Nanosecond)
		trace = append(trace, "a2")
	})
	k.Spawn("b", func(p *Proc) {
		trace = append(trace, "b0")
		p.Sleep(15 * time.Nanosecond)
		trace = append(trace, "b1")
	})
	k.Run()
	k.Shutdown()
	want := []string{"a0", "b0", "a1", "b1", "a2"}
	if !reflect.DeepEqual(trace, want) {
		t.Fatalf("trace = %v, want %v", trace, want)
	}
}

func TestSpawnAt(t *testing.T) {
	k := New()
	var started Time = -1
	k.SpawnAt(42, "late", func(p *Proc) { started = p.Now() })
	k.Run()
	k.Shutdown()
	if started != 42 {
		t.Fatalf("SpawnAt process started at %v, want 42", started)
	}
}

func TestSleepUntilPastIsNoop(t *testing.T) {
	k := New()
	var after Time
	k.Spawn("p", func(p *Proc) {
		p.Sleep(10 * time.Nanosecond)
		p.SleepUntil(5) // already in the past
		after = p.Now()
	})
	k.Run()
	k.Shutdown()
	if after != 10 {
		t.Fatalf("SleepUntil(past) advanced clock to %v, want 10", after)
	}
}

func TestSuspendAndWaker(t *testing.T) {
	k := New()
	var woken Time = -1
	var wake func()
	k.Spawn("sleeper", func(p *Proc) {
		wake = p.Waker()
		p.Suspend()
		woken = p.Now()
	})
	k.At(7, func() { wake() })
	k.Run()
	k.Shutdown()
	if woken != 7 {
		t.Fatalf("suspended process woke at %v, want 7", woken)
	}
}

func TestMailboxFIFO(t *testing.T) {
	k := New()
	mb := NewMailbox(k)
	var got []int
	k.Spawn("recv", func(p *Proc) {
		for i := 0; i < 3; i++ {
			got = append(got, mb.Recv(p).(int))
		}
	})
	k.At(5, func() { mb.Send(1); mb.Send(2) })
	k.At(9, func() { mb.Send(3) })
	k.Run()
	k.Shutdown()
	if !reflect.DeepEqual(got, []int{1, 2, 3}) {
		t.Fatalf("received %v, want [1 2 3]", got)
	}
}

func TestMailboxMultipleReceiversFIFO(t *testing.T) {
	k := New()
	mb := NewMailbox(k)
	var order []string
	mk := func(name string) {
		k.Spawn(name, func(p *Proc) {
			v := mb.Recv(p)
			order = append(order, name+":"+v.(string))
		})
	}
	mk("r1")
	mk("r2")
	k.At(3, func() { mb.Send("x"); mb.Send("y") })
	k.Run()
	k.Shutdown()
	want := []string{"r1:x", "r2:y"}
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
}

func TestMailboxSendAfter(t *testing.T) {
	k := New()
	mb := NewMailbox(k)
	var at Time
	k.Spawn("r", func(p *Proc) {
		mb.Recv(p)
		at = p.Now()
	})
	mb.SendAfter(25, "late")
	k.Run()
	k.Shutdown()
	if at != 25 {
		t.Fatalf("delayed message delivered at %v, want 25", at)
	}
}

func TestMailboxTryRecv(t *testing.T) {
	k := New()
	mb := NewMailbox(k)
	if _, ok := mb.TryRecv(); ok {
		t.Fatal("TryRecv on empty mailbox should report !ok")
	}
	mb.Send(10)
	if mb.Len() != 1 {
		t.Fatalf("Len = %d, want 1", mb.Len())
	}
	v, ok := mb.TryRecv()
	if !ok || v.(int) != 10 {
		t.Fatalf("TryRecv = %v,%v want 10,true", v, ok)
	}
}

func TestResourceFIFOAndTransfer(t *testing.T) {
	k := New()
	r := NewResource(k, 2)
	var order []string
	worker := func(name string, hold time.Duration) {
		k.Spawn(name, func(p *Proc) {
			r.Acquire(p)
			order = append(order, name+"+")
			p.Sleep(hold)
			order = append(order, name+"-")
			r.Release()
		})
	}
	worker("a", 10)
	worker("b", 10)
	worker("c", 10) // must wait for a or b
	k.Run()
	k.Shutdown()
	// At t=10 both a's release-handoff to c and b's pre-scheduled sleep
	// wakeup fire; b's wakeup was scheduled earlier (lower sequence), so
	// b- precedes c+.
	want := []string{"a+", "b+", "a-", "b-", "c+", "c-"}
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	if r.InUse() != 0 {
		t.Fatalf("resource left with %d in use", r.InUse())
	}
	if r.MaxQueue != 1 {
		t.Fatalf("MaxQueue = %d, want 1", r.MaxQueue)
	}
}

func TestResourceReleasePanicsWhenFree(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on spurious Release")
		}
	}()
	k := New()
	r := NewResource(k, 1)
	r.Release()
}

func TestSignalBroadcastAndLatch(t *testing.T) {
	k := New()
	s := NewSignal(k)
	var woke []string
	k.Spawn("w1", func(p *Proc) { s.Wait(p); woke = append(woke, "w1") })
	k.Spawn("w2", func(p *Proc) { s.Wait(p); woke = append(woke, "w2") })
	k.At(5, func() { s.Broadcast() })
	// A late waiter should pass straight through.
	k.SpawnAt(10, "w3", func(p *Proc) { s.Wait(p); woke = append(woke, "w3") })
	k.Run()
	k.Shutdown()
	want := []string{"w1", "w2", "w3"}
	if !reflect.DeepEqual(woke, want) {
		t.Fatalf("woke = %v, want %v", woke, want)
	}
	if !s.Fired() {
		t.Fatal("signal should report fired")
	}
}

func TestWaitGroup(t *testing.T) {
	k := New()
	wg := NewWaitGroup(k)
	wg.Add(3)
	var doneAt Time = -1
	k.Spawn("waiter", func(p *Proc) {
		wg.Wait(p)
		doneAt = p.Now()
	})
	for i := 1; i <= 3; i++ {
		i := i
		k.At(Time(i*10), func() { wg.Done() })
	}
	k.Run()
	k.Shutdown()
	if doneAt != 30 {
		t.Fatalf("waiter released at %v, want 30", doneAt)
	}
	if wg.Count() != 0 {
		t.Fatalf("count = %d, want 0", wg.Count())
	}
}

func TestWaitGroupNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on negative WaitGroup count")
		}
	}()
	k := New()
	wg := NewWaitGroup(k)
	wg.Done()
}

func TestRunUntilResumable(t *testing.T) {
	k := New()
	var fired []Time
	for _, at := range []Time{10, 20, 30} {
		at := at
		k.At(at, func() { fired = append(fired, at) })
	}
	k.RunUntil(15)
	if !reflect.DeepEqual(fired, []Time{10}) {
		t.Fatalf("after RunUntil(15): fired = %v, want [10]", fired)
	}
	k.RunUntil(100)
	if !reflect.DeepEqual(fired, []Time{10, 20, 30}) {
		t.Fatalf("after resume: fired = %v, want [10 20 30]", fired)
	}
}

func TestStop(t *testing.T) {
	k := New()
	var fired []Time
	k.At(10, func() { fired = append(fired, 10); k.Stop() })
	k.At(20, func() { fired = append(fired, 20) })
	k.Run()
	if !reflect.DeepEqual(fired, []Time{10}) {
		t.Fatalf("fired = %v, want [10]", fired)
	}
	if k.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", k.Pending())
	}
}

func TestShutdownUnwindsParkedProcesses(t *testing.T) {
	k := New()
	mb := NewMailbox(k)
	finished := false
	k.Spawn("stuck", func(p *Proc) {
		mb.Recv(p) // never receives anything
		finished = true
	})
	k.Run()
	k.Shutdown()
	if finished {
		t.Fatal("stuck process should not have completed its body")
	}
}

func TestShutdownUnwindsNeverStartedProcess(t *testing.T) {
	k := New()
	started := false
	k.SpawnAt(1000, "never", func(p *Proc) { started = true })
	k.RunUntil(10)
	k.Shutdown()
	if started {
		t.Fatal("process scheduled after deadline should not have started")
	}
}

// runRandomWorkload executes a randomized pile of interacting processes on a
// fresh kernel and returns a trace; used to property-test determinism (see
// runRandomWorkloadOn in reset_test.go for the reusable-kernel form).
func runRandomWorkload(seed int64) []int64 {
	k := New()
	trace := runRandomWorkloadOn(k, seed)
	k.Shutdown()
	return trace
}

func TestDeterminismProperty(t *testing.T) {
	f := func(seed int64) bool {
		a := runRandomWorkload(seed)
		b := runRandomWorkload(seed)
		return reflect.DeepEqual(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestEventTimeMonotoneProperty(t *testing.T) {
	// Whatever random times we schedule, the kernel fires them in
	// non-decreasing time order.
	f := func(times []uint16) bool {
		k := New()
		var fired []Time
		for _, u := range times {
			at := Time(u)
			k.At(at, func() { fired = append(fired, k.Now()) })
		}
		k.Run()
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return len(fired) == len(times)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestEventLimitGuards(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected event-limit panic")
		}
	}()
	k := New()
	k.EventLimit = 10
	var loop func()
	loop = func() { k.After(1, func() { loop() }) }
	loop()
	k.Run()
}
