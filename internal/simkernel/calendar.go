package simkernel

// The calendar event queue. The timer-churn regime this kernel lives in —
// OST boundary timers cancelled and rescheduled on every replanning pass,
// phase clocks seconds ahead of a microsecond-scale present — wants two
// different structures at once: exact (time, seq) order for the imminent
// events the loop is about to fire, and O(1) insertion for the far-future
// mass that is likely to be cancelled before it ever matters. The queue is
// therefore a two-tier calendar fronted by the 4-ary heap:
//
//   - Near tier: the 4-ary min-heap (kernel.go's heapPush/heapPopMin),
//     holding every event earlier than farStart(). The loop pops from here
//     only, so pop order is exact.
//   - Calendar tier: nBuckets unsorted buckets of span calWidth starting at
//     calBase. When the heap drains, the earliest non-empty bucket is
//     poured into it (heapified in one Floyd pass); cancelled entries are
//     released at pour time without ever being heap-ordered — the churn
//     win: a far-future timer that is cancelled costs O(1) total.
//   - Overflow tier: events beyond the calendar horizon, unsorted. When the
//     buckets run dry the calendar re-spans over the overflow, picking a
//     bucket width that stretches the live span across all buckets.
//
// Correctness does not depend on the geometry: every item in the heap is
// earlier than farStart(), every bucket item earlier than the next bucket's
// edge, and pours happen only when the heap is empty, so the heap minimum is
// always the global minimum and the pop sequence is the same total (time,
// seq) order the plain heap produced (see calendar_test.go's property test).

const (
	// nBuckets is the calendar size; a power of two keeps re-spans cheap.
	nBuckets = 64
	// defaultCalWidth is the initial bucket span (1.05 virtual ms): wide
	// enough that an IO phase's device-rate events stay within the calendar,
	// narrow enough that each pour hands the heap a small batch.
	defaultCalWidth = Time(1 << 20)
)

// eventCount reports the queued items across all tiers (including
// lazily-cancelled ones).
//
//repro:hotpath
func (k *Kernel) eventCount() int {
	return len(k.queue) + k.nFar + len(k.overflow)
}

// enqueue routes an item to its tier. k.farEdge caches the left edge of the
// earliest still-active bucket — the boundary between the near heap and the
// calendar — maintained by pourNext/respan/Reset.
//
//repro:hotpath
func (k *Kernel) enqueue(it heapItem) {
	if it.at < k.farEdge {
		k.queue = heapPush(k.queue, it)
		return
	}
	k.enqueueFar(it)
}

// enqueueFar routes an item at or beyond the near/far boundary into its
// bucket, or into the overflow beyond the calendar horizon.
//
//repro:hotpath
func (k *Kernel) enqueueFar(it heapItem) {
	idx := int((it.at - k.calBase) / k.calWidth)
	if idx >= nBuckets {
		k.overflow = append(k.overflow, it)
		return
	}
	if k.buckets == nil {
		k.buckets = make([][]heapItem, nBuckets)
	}
	k.buckets[idx] = append(k.buckets[idx], it)
	k.nFar++
}

// ensureMin pours far tiers into the near heap until the heap holds the
// global minimum, and reports whether any event remains. The fast path —
// heap already non-empty — inlines into the run loop.
//
//repro:hotpath
func (k *Kernel) ensureMin() bool {
	if len(k.queue) > 0 {
		return true
	}
	return k.refill()
}

// refill is ensureMin's slow path: pour buckets (or re-span over the
// overflow) until the heap is non-empty or every tier is dry. Cancelled
// items encountered while pouring are released without entering the heap.
//
//repro:hotpath
func (k *Kernel) refill() bool {
	for len(k.queue) == 0 {
		if k.nFar > 0 {
			k.pourNext()
			continue
		}
		if len(k.overflow) > 0 {
			k.respan()
			continue
		}
		return false
	}
	return true
}

// pourNext moves the earliest non-empty bucket into the heap, advancing the
// near/far boundary past it.
//
//repro:hotpath
func (k *Kernel) pourNext() {
	for k.calCur < nBuckets && len(k.buckets[k.calCur]) == 0 {
		k.calCur++
	}
	b := k.buckets[k.calCur]
	k.nFar -= len(b)
	q := k.queue
	for _, it := range b {
		if k.pool[it.id].cancelled {
			k.nCancelled--
			k.release(it.id)
			continue
		}
		q = append(q, it)
	}
	heapify(q)
	k.queue = q
	k.buckets[k.calCur] = b[:0]
	k.calCur++
	k.farEdge = k.calBase + Time(k.calCur)*k.calWidth
}

// respan restretches the calendar over the overflow: the live overflow span
// is divided evenly across all buckets and the items redistributed.
// Cancelled items are released during the scan so a dead far-future timer
// cannot distort the new geometry.
//
//repro:hotpath
func (k *Kernel) respan() {
	live := k.overflow[:0]
	minAt, maxAt := Time(1<<62), Time(0)
	for _, it := range k.overflow {
		if k.pool[it.id].cancelled {
			k.nCancelled--
			k.release(it.id)
			continue
		}
		if it.at < minAt {
			minAt = it.at
		}
		if it.at > maxAt {
			maxAt = it.at
		}
		live = append(live, it)
	}
	k.overflow = live
	if len(live) == 0 {
		return
	}
	k.calBase = minAt
	k.calWidth = (maxAt-minAt)/nBuckets + 1
	k.calCur = 0
	k.farEdge = minAt
	if k.buckets == nil {
		k.buckets = make([][]heapItem, nBuckets)
	}
	for _, it := range live {
		idx := int((it.at - k.calBase) / k.calWidth)
		k.buckets[idx] = append(k.buckets[idx], it)
	}
	k.nFar += len(live)
	k.overflow = live[:0]
}
