// Package simkernel provides a deterministic discrete-event simulation
// kernel. All higher-level substrates in this repository — the parallel file
// system model, the MPI-like message substrate, the interference generators —
// are built on top of it.
//
// The kernel owns a virtual clock and an event queue. Simulation processes
// are goroutines, but only one of them (or the kernel loop itself) ever runs
// at a time: control is handed off explicitly, so a given seed always produces
// the exact same execution. Events scheduled for the same virtual time fire
// in scheduling order (a monotonically increasing sequence number breaks
// ties), which makes message delivery and resource handoff FIFO and
// reproducible.
package simkernel

import (
	"container/heap"
	"fmt"
	"time"
)

// Time is a point in virtual time, in nanoseconds since the start of the
// simulation. Virtual time has no relation to wall-clock time; a simulated
// petascale IO phase of several minutes typically executes in milliseconds.
type Time int64

// Seconds converts a virtual time to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / 1e9 }

// Duration converts a virtual time (interpreted as a span) to a
// time.Duration.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// FromSeconds converts floating-point seconds to a virtual time span,
// rounding to the nearest nanosecond. Negative inputs are clamped to zero so
// that tiny negative residues from floating-point rate arithmetic cannot
// schedule events in the past.
func FromSeconds(s float64) Time {
	if s <= 0 {
		return 0
	}
	return Time(s*1e9 + 0.5)
}

// String renders the time as seconds with nanosecond precision.
func (t Time) String() string { return fmt.Sprintf("%.9fs", t.Seconds()) }

// event is a single scheduled occurrence. fire is invoked in kernel context.
type event struct {
	at        Time
	seq       uint64
	fire      func()
	cancelled bool
	index     int // heap bookkeeping
}

// eventHeap orders events by (time, sequence).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Timer is a handle to a scheduled event that can be cancelled before it
// fires. Cancelling an already-fired or already-cancelled timer is a no-op.
type Timer struct {
	ev *event
}

// Cancel prevents the timer's event from firing. Safe to call multiple times.
func (t *Timer) Cancel() {
	if t != nil && t.ev != nil {
		t.ev.cancelled = true
	}
}

// Active reports whether the timer is still pending (not fired, not
// cancelled).
func (t *Timer) Active() bool {
	return t != nil && t.ev != nil && !t.ev.cancelled && t.ev.index >= 0
}

// Kernel is the simulation engine. Create one with New, spawn processes with
// Spawn, then call Run. A Kernel must not be shared across concurrently
// running simulations.
type Kernel struct {
	now    Time
	seq    uint64
	events eventHeap

	// yield is the handoff channel: a running process sends on it exactly
	// once each time it parks or terminates, returning control to the
	// kernel loop.
	yield chan struct{}

	procs      []*Proc
	nextProcID int

	running  bool
	finished bool

	// EventLimit, when positive, aborts Run with a panic after that many
	// events — a guard against accidental unbounded simulations in tests.
	EventLimit uint64
}

// New creates an empty kernel with the clock at zero.
func New() *Kernel {
	return &Kernel{yield: make(chan struct{})}
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// schedule inserts an event at absolute time at (clamped to now) and returns
// it.
func (k *Kernel) schedule(at Time, fire func()) *event {
	if at < k.now {
		at = k.now
	}
	k.seq++
	ev := &event{at: at, seq: k.seq, fire: fire}
	heap.Push(&k.events, ev)
	return ev
}

// At schedules fn to run in kernel context at absolute virtual time at.
// Times in the past are clamped to the present. The returned Timer may be
// used to cancel the event.
func (k *Kernel) At(at Time, fn func()) *Timer {
	return &Timer{ev: k.schedule(at, fn)}
}

// After schedules fn to run in kernel context after virtual duration d.
func (k *Kernel) After(d time.Duration, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	return k.At(k.now+Time(d), fn)
}

// AfterSeconds schedules fn after a floating-point number of virtual seconds.
func (k *Kernel) AfterSeconds(s float64, fn func()) *Timer {
	return k.At(k.now+FromSeconds(s), fn)
}

// Run executes events until the queue is empty (or until Stop is called by
// an event). It returns the final virtual time. Processes still parked when
// the queue drains are left suspended; call Shutdown to terminate their
// goroutines.
func (k *Kernel) Run() Time {
	return k.RunUntil(Time(1<<62 - 1))
}

// RunUntil executes events with timestamps <= deadline and returns the
// current virtual time afterwards. Events beyond the deadline remain queued,
// so the simulation may be resumed with a later deadline.
func (k *Kernel) RunUntil(deadline Time) Time {
	if k.running {
		panic("simkernel: Run re-entered")
	}
	k.running = true
	k.finished = false
	defer func() { k.running = false }()

	var fired uint64
	for k.events.Len() > 0 {
		next := k.events[0]
		if next.at > deadline {
			break
		}
		heap.Pop(&k.events)
		if next.cancelled {
			continue
		}
		k.now = next.at
		fired++
		if k.EventLimit > 0 && fired > k.EventLimit {
			panic(fmt.Sprintf("simkernel: event limit %d exceeded at t=%v", k.EventLimit, k.now))
		}
		next.fire()
		if k.finished {
			break
		}
	}
	if deadline > k.now && k.events.Len() == 0 && !k.finished {
		// Queue drained naturally; clock stays at the last event.
		_ = deadline
	}
	return k.now
}

// Stop halts Run after the currently firing event completes. Pending events
// remain queued.
func (k *Kernel) Stop() { k.finished = true }

// Pending reports the number of queued (possibly cancelled) events.
func (k *Kernel) Pending() int { return k.events.Len() }

// procState tracks a process's lifecycle.
type procState int

const (
	procReady procState = iota // spawned, start event queued
	procRunning
	procParked
	procDone
)

// shutdownSignal is delivered through a process's wake channel to unwind it.
type wakeKind int

const (
	wakeRun wakeKind = iota
	wakeShutdown
)

// haltSentinel is panicked inside a process goroutine to unwind it during
// Shutdown; the spawn wrapper recovers it.
type haltSentinel struct{}

// Proc is a simulation process: a goroutine that runs under the kernel's
// handoff discipline. All Proc methods must be called from the process's own
// goroutine unless documented otherwise.
type Proc struct {
	k     *Kernel
	id    int
	name  string
	wake  chan wakeKind
	state procState
}

// Spawn creates a process that begins executing fn at the current virtual
// time (as a scheduled event, so the caller continues first). The name is
// used in diagnostics only.
func (k *Kernel) Spawn(name string, fn func(p *Proc)) *Proc {
	k.nextProcID++
	p := &Proc{
		k:     k,
		id:    k.nextProcID,
		name:  name,
		wake:  make(chan wakeKind),
		state: procReady,
	}
	k.procs = append(k.procs, p)
	go func() {
		kind := <-p.wake
		if kind == wakeShutdown {
			p.state = procDone
			k.yield <- struct{}{}
			return
		}
		defer func() {
			p.state = procDone
			if r := recover(); r != nil {
				if _, ok := r.(haltSentinel); ok {
					k.yield <- struct{}{}
					return
				}
				// Re-panicking here would crash on the goroutine with a
				// useless stack; surface the original panic value instead.
				panic(fmt.Sprintf("simkernel: process %q panicked: %v", p.name, r))
			}
			k.yield <- struct{}{}
		}()
		p.state = procRunning
		fn(p)
	}()
	k.schedule(k.now, func() { p.resume(wakeRun) })
	return p
}

// SpawnAt is like Spawn but delays the process's first execution until
// absolute virtual time at.
func (k *Kernel) SpawnAt(at Time, name string, fn func(p *Proc)) *Proc {
	if at < k.now {
		at = k.now
	}
	k.nextProcID++
	p := &Proc{
		k:     k,
		id:    k.nextProcID,
		name:  name,
		wake:  make(chan wakeKind),
		state: procReady,
	}
	k.procs = append(k.procs, p)
	go func() {
		kind := <-p.wake
		if kind == wakeShutdown {
			p.state = procDone
			k.yield <- struct{}{}
			return
		}
		defer func() {
			p.state = procDone
			if r := recover(); r != nil {
				if _, ok := r.(haltSentinel); ok {
					k.yield <- struct{}{}
					return
				}
				panic(fmt.Sprintf("simkernel: process %q panicked: %v", p.name, r))
			}
			k.yield <- struct{}{}
		}()
		p.state = procRunning
		fn(p)
	}()
	k.schedule(at, func() { p.resume(wakeRun) })
	return p
}

// resume hands control to the process and blocks (in kernel context) until
// it parks or terminates.
func (p *Proc) resume(kind wakeKind) {
	if p.state == procDone {
		return
	}
	p.wake <- kind
	<-p.k.yield
}

// park suspends the process, returning control to the kernel. The process
// resumes when some event calls resume. If the wakeup is a shutdown, the
// goroutine unwinds.
func (p *Proc) park() {
	p.state = procParked
	p.k.yield <- struct{}{}
	kind := <-p.wake
	if kind == wakeShutdown {
		panic(haltSentinel{})
	}
	p.state = procRunning
}

// Kernel returns the kernel this process belongs to.
func (p *Proc) Kernel() *Kernel { return p.k }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.k.now }

// Name returns the process's diagnostic name.
func (p *Proc) Name() string { return p.name }

// ID returns the process's unique id within its kernel.
func (p *Proc) ID() int { return p.id }

// Done reports whether the process has terminated (from kernel context this
// is safe to call at any time).
func (p *Proc) Done() bool { return p.state == procDone }

// Sleep suspends the process for virtual duration d.
func (p *Proc) Sleep(d time.Duration) {
	if d < 0 {
		d = 0
	}
	p.k.schedule(p.k.now+Time(d), func() { p.resume(wakeRun) })
	p.park()
}

// SleepSeconds suspends the process for a floating-point number of virtual
// seconds.
func (p *Proc) SleepSeconds(s float64) {
	p.k.schedule(p.k.now+FromSeconds(s), func() { p.resume(wakeRun) })
	p.park()
}

// SleepUntil suspends the process until absolute virtual time at (no-op if
// at is in the past).
func (p *Proc) SleepUntil(at Time) {
	if at <= p.k.now {
		return
	}
	p.k.schedule(at, func() { p.resume(wakeRun) })
	p.park()
}

// Suspend parks the process until another component wakes it via the
// returned Waker. Each Waker wakes exactly one Suspend call.
func (p *Proc) Suspend() {
	p.park()
}

// Waker resumes a suspended process at the current virtual time (scheduled
// as an event, preserving deterministic ordering). It must be called from
// kernel or process context of the same kernel.
func (p *Proc) Waker() func() {
	return func() {
		p.k.schedule(p.k.now, func() { p.resume(wakeRun) })
	}
}

// Shutdown unwinds all processes that have not yet terminated. Call it after
// Run to avoid leaking goroutines (parked processes otherwise remain blocked
// for the lifetime of the program). The kernel must not be running.
func (k *Kernel) Shutdown() {
	if k.running {
		panic("simkernel: Shutdown during Run")
	}
	for _, p := range k.procs {
		switch p.state {
		case procDone:
			continue
		case procReady, procParked:
			p.wake <- wakeShutdown
			<-k.yield
		case procRunning:
			// Impossible outside Run: a running process implies the kernel
			// loop is blocked in resume.
			panic("simkernel: process still running in Shutdown")
		}
	}
}
