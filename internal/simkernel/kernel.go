// Package simkernel provides a deterministic discrete-event simulation
// kernel. All higher-level substrates in this repository — the parallel file
// system model, the MPI-like message substrate, the interference generators —
// are built on top of it.
//
// The kernel owns a virtual clock and an event queue. Simulation processes
// are goroutines, but only one of them (or the kernel loop itself) ever runs
// at a time: control is handed off explicitly, so a given seed always produces
// the exact same execution. Events scheduled for the same virtual time fire
// in scheduling order (a monotonically increasing sequence number breaks
// ties), which makes message delivery and resource handoff FIFO and
// reproducible.
//
// The event queue is engineered for an allocation-free steady state: a
// calendar structure fronted by a monomorphic 4-ary min-heap of small value
// structs keyed by (time, sequence) references event payloads held in a
// free-listed pool (see calendar.go), process wakeups are scheduled without
// closures, and Timer handles carry a generation tag so cancelling a handle
// whose pool slot has been reused is a safe no-op. Cancelled events are
// dropped lazily — at pop time in the near tier, wholesale at pour time in
// the far tiers — and compacted in bulk when they outnumber half the queue.
//
// Simulation processes come in two flavours. A Proc is a goroutine under the
// handoff discipline above. A continuation process (SpawnCont, cont.go) is a
// run-to-completion state machine executed inline on the kernel thread: its
// yields are ordinary scheduled events and its resume is a method call, so
// the ~500 ns park/unpark channel round-trip disappears for bodies that can
// be written as explicit state machines.
package simkernel

import (
	"fmt"
	"time"
)

// Time is a point in virtual time, in nanoseconds since the start of the
// simulation. Virtual time has no relation to wall-clock time; a simulated
// petascale IO phase of several minutes typically executes in milliseconds.
type Time int64

// Seconds converts a virtual time to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / 1e9 }

// Duration converts a virtual time (interpreted as a span) to a
// time.Duration.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// FromSeconds converts floating-point seconds to a virtual time span,
// rounding to the nearest nanosecond. Negative inputs are clamped to zero so
// that tiny negative residues from floating-point rate arithmetic cannot
// schedule events in the past.
func FromSeconds(s float64) Time {
	if s <= 0 {
		return 0
	}
	return Time(s*1e9 + 0.5)
}

// String renders the time as seconds with nanosecond precision.
func (t Time) String() string { return fmt.Sprintf("%.9fs", t.Seconds()) }

// heapItem is one entry of the event queue: the ordering key plus the index
// of the pooled payload. Keeping the queue monomorphic (no interface boxing,
// no per-event pointer) is what lets the hot loop run allocation-free.
type heapItem struct {
	at  Time
	seq uint64
	id  int32
}

// itemLess is the total order on events: time, then scheduling sequence.
func itemLess(a, b heapItem) bool {
	return a.at < b.at || (a.at == b.at && a.seq < b.seq)
}

// eventRec is the pooled payload of a scheduled event. Exactly one of fire,
// proc and ev is set: proc is the closure-free fast path for waking a
// process, ev the closure-free path for a caller-recycled event object.
type eventRec struct {
	fire      func()
	proc      *Proc
	ev        EventFirer
	gen       uint32 // bumped on every release; stale Timer handles miss
	pending   bool   // scheduled and not yet fired or reclaimed
	cancelled bool
}

// EventFirer is a pre-allocated scheduled callback: AtEvent carries the
// object itself instead of a closure, so layers that recycle their event
// records (message delivery, repeated timers) schedule without allocating.
// Fire runs in kernel context, exactly like an At callback.
type EventFirer interface {
	Fire()
}

// compactMin is the queue length below which lazy-cancel compaction is not
// worth the re-heapify.
const compactMin = 32

// Timer is a handle to a scheduled event that can be cancelled before it
// fires. The zero value is inert. Cancelling an already-fired or
// already-cancelled timer is a no-op: the handle carries the generation of
// the pool slot it was issued for, so it can never affect an event that
// later reuses the slot.
type Timer struct {
	k   *Kernel
	id  int32
	gen uint32
}

// Cancel prevents the timer's event from firing. Safe to call multiple
// times, on the zero Timer, and after the event has fired.
//
//repro:hotpath
func (t Timer) Cancel() {
	if t.k != nil {
		t.k.cancel(t.id, t.gen)
	}
}

// Active reports whether the timer is still pending (not fired, not
// cancelled).
func (t Timer) Active() bool {
	if t.k == nil || int(t.id) >= len(t.k.pool) {
		return false
	}
	rec := &t.k.pool[t.id]
	return rec.gen == t.gen && rec.pending && !rec.cancelled
}

// Kernel is the simulation engine. Create one with New, spawn processes with
// Spawn, then call Run. A Kernel must not be shared across concurrently
// running simulations.
type Kernel struct {
	now Time
	seq uint64

	// The event queue is a two-tier calendar (calendar.go): queue is the
	// near tier — a 4-ary min-heap ordered by itemLess holding everything
	// earlier than farStart() — and buckets/overflow are the far tiers,
	// unsorted and poured into the heap as the clock reaches them.
	queue      []heapItem   // near tier: 4-ary min-heap ordered by itemLess
	pool       []eventRec   // event payloads, indexed by heapItem.id
	free       []int32      // reclaimed pool slots
	nCancelled int          // cancelled events still sitting in any tier
	buckets    [][]heapItem // far tier: calWidth-wide unsorted buckets
	overflow   []heapItem   // far tier: beyond the calendar horizon
	nFar       int          // total items across buckets
	calBase    Time         // absolute time of buckets[0]'s left edge
	calWidth   Time         // bucket span
	calCur     int          // first bucket not yet poured
	farEdge    Time         // cached calBase + calCur*calWidth (near/far boundary)

	// yield is the handoff channel: a running process sends on it exactly
	// once each time it parks or terminates, returning control to the
	// kernel loop.
	yield chan struct{} //repro:reset-skip identity: recycled goroutines hold this exact channel

	procs      []*Proc
	idle       []*Proc // recycled processes: goroutine parked, awaiting a new body
	idleCont   []*Proc // recycled continuation processes (no goroutine to park)
	nextProcID int

	// resetHooks run once at the end of the next Reset and are then
	// discarded. Higher layers use them to sweep per-world free lists (e.g.
	// pooled message envelopes) whose contents must not leak across runs.
	resetHooks []func()

	running  bool //repro:reset-skip only ever true inside RunUntil, which cannot overlap Reset
	finished bool

	// EventLimit, when positive, aborts Run with a panic after that many
	// events — a guard against accidental unbounded simulations in tests.
	EventLimit uint64 //repro:reset-skip caller-owned guard knob, deliberately survives Reset
}

// New creates an empty kernel with the clock at zero.
func New() *Kernel {
	return &Kernel{yield: make(chan struct{}), calWidth: defaultCalWidth}
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// alloc takes a pool slot from the free list, growing the pool only when the
// free list is empty (steady-state scheduling therefore never allocates).
//
//repro:hotpath
func (k *Kernel) alloc() int32 {
	if n := len(k.free); n > 0 {
		id := k.free[n-1]
		k.free = k.free[:n-1]
		return id
	}
	k.pool = append(k.pool, eventRec{})
	return int32(len(k.pool) - 1)
}

// release returns a pool slot to the free list, bumping its generation so
// outstanding Timer handles for the old occupant go stale.
//
//repro:hotpath
func (k *Kernel) release(id int32) {
	rec := &k.pool[id]
	rec.fire = nil
	rec.proc = nil
	rec.ev = nil
	rec.pending = false
	rec.cancelled = false
	rec.gen++
	k.free = append(k.free, id)
}

// heapPush inserts an item into the 4-ary heap q and returns the updated
// slice. Standalone (not a Kernel method) so the calendar's pour path and the
// property tests cross-checking the calendar against the plain heap share the
// exact same code.
//
//repro:hotpath
func heapPush(q []heapItem, it heapItem) []heapItem {
	q = append(q, it) //repro:allow hotpath append-and-return idiom: the caller reassigns the returned slice, so ownership transfers back
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 4
		if !itemLess(q[i], q[parent]) {
			break
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
	return q
}

// heapSiftDown restores heap order below position i.
//
//repro:hotpath
func heapSiftDown(q []heapItem, i int) {
	n := len(q)
	it := q[i]
	for {
		c := 4*i + 1
		if c >= n {
			break
		}
		best := c
		end := min(c+4, n)
		for j := c + 1; j < end; j++ {
			if itemLess(q[j], q[best]) {
				best = j
			}
		}
		if !itemLess(q[best], it) {
			break
		}
		q[i] = q[best]
		i = best
	}
	q[i] = it
}

// heapPopMin removes and returns the earliest item. q must be non-empty.
//
//repro:hotpath
func heapPopMin(q []heapItem) ([]heapItem, heapItem) {
	top := q[0]
	last := len(q) - 1
	q[0] = q[last]
	q = q[:last]
	if last > 0 {
		heapSiftDown(q, 0)
	}
	return q, top
}

// heapify restores heap order over an arbitrary slice (Floyd's build-heap).
//
//repro:hotpath
func heapify(q []heapItem) {
	if len(q) > 1 {
		// The deepest parent of a 4-ary heap sits at (n-2)/4.
		for i := (len(q) - 2) / 4; i >= 0; i-- {
			heapSiftDown(q, i)
		}
	}
}

// popMin removes and returns the earliest item of the near tier. ensureMin
// must have reported a non-empty queue first.
//
//repro:hotpath
func (k *Kernel) popMin() heapItem {
	q, top := heapPopMin(k.queue)
	k.queue = q
	return top
}

// cancel marks the event (id, gen) cancelled if it is still the pending
// occupant of its slot; the queue entry is dropped lazily — at pop time in
// the near tier, at pour time in the far tiers. When cancelled entries
// outnumber half the queue, all tiers are compacted in one pass.
//
//repro:hotpath
func (k *Kernel) cancel(id int32, gen uint32) {
	if int(id) >= len(k.pool) {
		return
	}
	rec := &k.pool[id]
	if rec.gen != gen || !rec.pending || rec.cancelled {
		return
	}
	rec.cancelled = true
	k.nCancelled++
	if n := k.eventCount(); n >= compactMin && k.nCancelled > n/2 {
		k.compact()
	}
}

// compact removes every cancelled entry from all tiers, re-heapifying the
// near tier. Pop order is unaffected: the heap order is a total order on
// (time, seq), and the far tiers are unordered until poured.
//
//repro:hotpath
func (k *Kernel) compact() {
	kept := k.queue[:0]
	for _, it := range k.queue {
		if k.pool[it.id].cancelled {
			k.release(it.id)
			continue
		}
		kept = append(kept, it)
	}
	k.queue = kept
	heapify(kept)
	if k.nFar > 0 {
		for b := k.calCur; b < len(k.buckets); b++ {
			live := k.buckets[b][:0]
			for _, it := range k.buckets[b] {
				if k.pool[it.id].cancelled {
					k.release(it.id)
					k.nFar--
					continue
				}
				live = append(live, it)
			}
			k.buckets[b] = live
		}
	}
	if len(k.overflow) > 0 {
		over := k.overflow[:0]
		for _, it := range k.overflow {
			if k.pool[it.id].cancelled {
				k.release(it.id)
				continue
			}
			over = append(over, it)
		}
		k.overflow = over
	}
	k.nCancelled = 0
}

// scheduleFn inserts a callback event at absolute time at (clamped to now)
// and returns its pool slot and generation.
//
//repro:hotpath
func (k *Kernel) scheduleFn(at Time, fire func()) (int32, uint32) {
	if at < k.now {
		at = k.now
	}
	id := k.alloc()
	rec := &k.pool[id]
	rec.fire = fire
	rec.pending = true
	gen := rec.gen
	k.seq++
	k.enqueue(heapItem{at: at, seq: k.seq, id: id})
	return id, gen
}

// scheduleProc inserts a process-wakeup event at absolute time at (clamped
// to now). This is the closure-free fast path used by Sleep, Waker, mailbox
// delivery and resource handoff.
//
//repro:hotpath
func (k *Kernel) scheduleProc(at Time, p *Proc) {
	if at < k.now {
		at = k.now
	}
	id := k.alloc()
	rec := &k.pool[id]
	rec.proc = p
	rec.pending = true
	k.seq++
	k.enqueue(heapItem{at: at, seq: k.seq, id: id})
}

// At schedules fn to run in kernel context at absolute virtual time at.
// Times in the past are clamped to the present. The returned Timer may be
// used to cancel the event.
//
//repro:hotpath
func (k *Kernel) At(at Time, fn func()) Timer {
	id, gen := k.scheduleFn(at, fn)
	return Timer{k: k, id: id, gen: gen}
}

// AtEvent schedules ev.Fire to run in kernel context at absolute virtual
// time at (clamped to the present). It is At without the closure: the
// caller owns ev and may recycle it once it has fired, so steady-state
// scheduling through a caller-side freelist allocates nothing.
//
//repro:hotpath
func (k *Kernel) AtEvent(at Time, ev EventFirer) Timer {
	if at < k.now {
		at = k.now
	}
	id := k.alloc()
	rec := &k.pool[id]
	rec.ev = ev
	rec.pending = true
	gen := rec.gen
	k.seq++
	k.enqueue(heapItem{at: at, seq: k.seq, id: id})
	return Timer{k: k, id: id, gen: gen}
}

// After schedules fn to run in kernel context after virtual duration d.
//
//repro:hotpath
func (k *Kernel) After(d time.Duration, fn func()) Timer {
	if d < 0 {
		d = 0
	}
	return k.At(k.now+Time(d), fn)
}

// AfterSeconds schedules fn after a floating-point number of virtual seconds.
//
//repro:hotpath
func (k *Kernel) AfterSeconds(s float64, fn func()) Timer {
	return k.At(k.now+FromSeconds(s), fn)
}

// Run executes events until the queue is empty (or until Stop is called by
// an event). It returns the final virtual time. Processes still parked when
// the queue drains are left suspended; call Shutdown to terminate their
// goroutines.
func (k *Kernel) Run() Time {
	return k.RunUntil(Time(1<<62 - 1))
}

// RunUntil executes events with timestamps <= deadline and returns the
// current virtual time afterwards. Events beyond the deadline remain queued,
// so the simulation may be resumed with a later deadline.
//
//repro:hotpath
func (k *Kernel) RunUntil(deadline Time) Time {
	if k.running {
		panic("simkernel: Run re-entered")
	}
	k.running = true
	k.finished = false
	defer func() { k.running = false }() //repro:allow hotpath one closure per RunUntil call, amortised over the whole event loop

	var fired uint64
	for k.ensureMin() {
		if k.queue[0].at > deadline {
			break
		}
		top := k.popMin()
		rec := &k.pool[top.id]
		if rec.cancelled {
			k.nCancelled--
			k.release(top.id)
			continue
		}
		fire, proc, ev := rec.fire, rec.proc, rec.ev
		k.release(top.id)
		k.now = top.at
		fired++
		if k.EventLimit > 0 && fired > k.EventLimit {
			panic(fmt.Sprintf("simkernel: event limit %d exceeded at t=%v", k.EventLimit, k.now))
		}
		if proc != nil {
			proc.resume(wakeRun)
		} else if ev != nil {
			ev.Fire()
		} else {
			fire()
		}
		if k.finished {
			break
		}
	}
	return k.now
}

// Stop halts Run after the currently firing event completes. Pending events
// remain queued.
func (k *Kernel) Stop() { k.finished = true }

// Pending reports the number of queued (possibly cancelled) events across
// all tiers.
func (k *Kernel) Pending() int { return k.eventCount() }

// procState tracks a process's lifecycle.
type procState int

const (
	procReady procState = iota // spawned, start event queued
	procRunning
	procParked
	procDone
)

// wakeKind is delivered through a process's wake channel: wakeRun resumes
// (or first starts) the body, wakeHalt unwinds the body but keeps the
// goroutine parked for recycling, wakeShutdown unwinds and exits it.
type wakeKind int

const (
	wakeRun wakeKind = iota
	wakeHalt
	wakeShutdown
)

// haltSentinel is panicked inside a process goroutine to unwind its body
// during Reset or Shutdown; the process loop recovers it.
type haltSentinel struct{}

// Proc is a simulation process: a goroutine that runs under the kernel's
// handoff discipline. The goroutine is persistent — when a body finishes
// (or is halted by Reset), the goroutine parks and can be re-armed with a
// new body, so steady-state replica execution spawns no goroutines and
// allocates no channels. All Proc methods must be called from the process's
// own goroutine unless documented otherwise.
type Proc struct {
	k      *Kernel
	id     int
	name   string
	job    int // job attribution tag (0 = unattributed); see SpawnJob
	wake   chan wakeKind
	state  procState
	waker  func()        // lazily built, reused by every Waker call
	body   func(p *Proc) // current body; re-armed on recycle
	exited bool          // goroutine has returned; the Proc is dead

	// Continuation engine (cont.go). A continuation process has no
	// goroutine and no wake channel: isCont is set once at creation and
	// cont holds the current state machine, stepped inline by resume.
	isCont bool
	cont   Cont // current continuation body; nil once done
}

// loop is the persistent goroutine behind a Proc: it waits to be armed,
// runs the current body to completion (or unwinding), then parks again for
// the next body. Exactly one yield is sent per wake received.
func (p *Proc) loop() {
	for {
		switch <-p.wake {
		case wakeShutdown:
			p.state = procDone
			p.exited = true
			p.k.yield <- struct{}{}
			return
		case wakeHalt:
			// Body never started (procReady); nothing to unwind.
			p.state = procDone
			p.k.yield <- struct{}{}
			continue
		}
		p.runBody()
		if p.exited {
			return
		}
	}
}

// runBody executes the current body, recovering the halt sentinel that
// Reset/Shutdown use to unwind parked bodies.
func (p *Proc) runBody() {
	defer func() {
		p.state = procDone
		p.body = nil
		if r := recover(); r != nil {
			if _, ok := r.(haltSentinel); !ok {
				// Re-panicking here would crash on the goroutine with a
				// useless stack; surface the original panic value instead.
				panic(fmt.Sprintf("simkernel: process %q panicked: %v", p.name, r))
			}
		}
		p.k.yield <- struct{}{}
	}()
	p.state = procRunning
	p.body(p)
}

// newProc registers a process, recycling a parked goroutine from the idle
// list when one is available and starting a fresh goroutine otherwise.
func (k *Kernel) newProc(name string, fn func(p *Proc)) *Proc {
	k.nextProcID++
	if n := len(k.idle); n > 0 {
		p := k.idle[n-1]
		k.idle[n-1] = nil
		k.idle = k.idle[:n-1]
		p.id = k.nextProcID
		p.name = name
		p.job = 0
		p.body = fn
		p.state = procReady
		k.procs = append(k.procs, p)
		return p
	}
	p := &Proc{
		k:     k,
		id:    k.nextProcID,
		name:  name,
		wake:  make(chan wakeKind),
		state: procReady,
		body:  fn,
	}
	k.procs = append(k.procs, p)
	go p.loop()
	return p
}

// Spawn creates a process that begins executing fn at the current virtual
// time (as a scheduled event, so the caller continues first). The name is
// used in diagnostics only.
func (k *Kernel) Spawn(name string, fn func(p *Proc)) *Proc {
	p := k.newProc(name, fn)
	k.scheduleProc(k.now, p)
	return p
}

// SpawnAt is like Spawn but delays the process's first execution until
// absolute virtual time at.
func (k *Kernel) SpawnAt(at Time, name string, fn func(p *Proc)) *Proc {
	if at < k.now {
		at = k.now
	}
	p := k.newProc(name, fn)
	k.scheduleProc(at, p)
	return p
}

// SpawnJob is Spawn with a job attribution tag: every storage operation the
// process performs is accounted to job by layers that inspect Proc.Job (the
// file system's per-job traffic counters). Job 0 means unattributed — plain
// Spawn leaves the tag at 0, and recycled goroutines always have it cleared,
// so attribution never leaks across bodies.
func (k *Kernel) SpawnJob(name string, job int, fn func(p *Proc)) *Proc {
	p := k.newProc(name, fn)
	p.job = job
	k.scheduleProc(k.now, p)
	return p
}

// resume hands control to the process and blocks (in kernel context) until
// it parks or terminates. For a continuation process this is an inline
// method call — no channels, no goroutine switch.
//
//repro:hotpath
func (p *Proc) resume(kind wakeKind) {
	if p.state == procDone {
		return
	}
	if p.isCont {
		p.resumeCont(kind)
		return
	}
	p.wake <- kind
	<-p.k.yield
}

// park suspends the process, returning control to the kernel. The process
// resumes when some event calls resume. A halt or shutdown wakeup unwinds
// the body instead (running its deferred cleanup on the way out).
func (p *Proc) park() {
	if p.isCont {
		panic("simkernel: blocking call on continuation process " + p.name)
	}
	p.state = procParked
	p.k.yield <- struct{}{}
	kind := <-p.wake
	if kind != wakeRun {
		if kind == wakeShutdown {
			p.exited = true
		}
		panic(haltSentinel{})
	}
	p.state = procRunning
}

// Kernel returns the kernel this process belongs to.
func (p *Proc) Kernel() *Kernel { return p.k }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.k.now }

// Name returns the process's diagnostic name.
func (p *Proc) Name() string { return p.name }

// ID returns the process's unique id within its kernel.
func (p *Proc) ID() int { return p.id }

// Job returns the process's job attribution tag (0 = unattributed).
//
//repro:hotpath
func (p *Proc) Job() int { return p.job }

// Done reports whether the process has terminated (from kernel context this
// is safe to call at any time).
func (p *Proc) Done() bool { return p.state == procDone }

// Sleep suspends the process for virtual duration d.
//
//repro:hotpath
func (p *Proc) Sleep(d time.Duration) {
	if d < 0 {
		d = 0
	}
	p.k.scheduleProc(p.k.now+Time(d), p)
	p.park()
}

// SleepSeconds suspends the process for a floating-point number of virtual
// seconds.
//
//repro:hotpath
func (p *Proc) SleepSeconds(s float64) {
	p.k.scheduleProc(p.k.now+FromSeconds(s), p)
	p.park()
}

// SleepUntil suspends the process until absolute virtual time at (no-op if
// at is in the past).
//
//repro:hotpath
func (p *Proc) SleepUntil(at Time) {
	if at <= p.k.now {
		return
	}
	p.k.scheduleProc(at, p)
	p.park()
}

// Suspend parks the process until another component wakes it via the
// returned Waker. Each Waker wakes exactly one Suspend call.
func (p *Proc) Suspend() {
	p.park()
}

// Waker returns a function that resumes the suspended process at the
// virtual time of the call (scheduled as an event, preserving deterministic
// ordering). It must be called from kernel or process context of the same
// kernel. The closure is built once per process and reused, so repeated
// Waker calls do not allocate.
//
//repro:hotpath
func (p *Proc) Waker() func() {
	if p.waker == nil {
		p.waker = func() { p.k.scheduleProc(p.k.now, p) } //repro:allow hotpath cached in p.waker, built once per process
	}
	return p.waker
}

// Shutdown terminates every process goroutine — unwinding bodies still in
// flight and exiting parked idle goroutines. Call it when done with the
// kernel for good; to reuse the kernel for another simulation, call Reset
// instead (which recycles the goroutines). The kernel must not be running.
func (k *Kernel) Shutdown() {
	if k.running {
		panic("simkernel: Shutdown during Run")
	}
	for _, p := range k.procs {
		k.exitProc(p)
	}
	for i, p := range k.idle {
		k.exitProc(p)
		k.idle[i] = nil
	}
	k.idle = k.idle[:0]
	for i, p := range k.idleCont {
		p.exited = true
		k.idleCont[i] = nil
	}
	k.idleCont = k.idleCont[:0]
}

// exitProc terminates one process goroutine (no-op if already exited).
// Continuation processes have no goroutine: they are simply marked dead.
func (k *Kernel) exitProc(p *Proc) {
	if p.exited {
		return
	}
	if p.state == procRunning {
		// Impossible outside Run: a running process implies the kernel
		// loop is blocked in resume.
		panic("simkernel: process still running in Shutdown")
	}
	if p.isCont {
		p.state = procDone
		p.cont = nil
		p.exited = true
		return
	}
	p.wake <- wakeShutdown
	<-k.yield
}

// Reset returns the kernel to its initial state — clock at zero, empty
// event queue, no registered processes — while recycling the process
// goroutines onto an idle list from which subsequent Spawns are re-armed.
// Bodies still in flight are unwound first (running their deferred cleanup),
// so the pass is: halt bodies, then discard every pending event, then zero
// the clock and counters. A Reset kernel is indistinguishable from a fresh
// New() to simulation code: event ordering is (time, sequence) and both
// restart at zero, process IDs restart at one, and Timer handles from the
// old run are invalidated by a generation bump on their pool slots.
// The kernel must not be running.
func (k *Kernel) Reset() {
	if k.running {
		panic("simkernel: Reset during Run")
	}
	// Halt in-flight bodies before touching the queue: unwinding runs
	// deferred cleanup (WaitGroup.Done, mailbox sends) that may schedule
	// events, which the drain below then discards. Index-based loop: an
	// unwinding defer could in principle spawn, appending to procs.
	for i := 0; i < len(k.procs); i++ {
		p := k.procs[i]
		if p.state == procDone || p.exited {
			continue
		}
		if p.state == procRunning {
			panic("simkernel: process still running in Reset")
		}
		if p.isCont {
			// Continuation bodies hold no goroutine stack and run no
			// deferred cleanup; dropping the state machine is the whole
			// unwind.
			p.state = procDone
			p.cont = nil
			continue
		}
		p.wake <- wakeHalt
		<-k.yield
	}
	// Recycle every live process: goroutines onto the idle list, dead
	// continuation shells onto their own freelist.
	for i, p := range k.procs {
		if !p.exited {
			if p.isCont {
				k.idleCont = append(k.idleCont, p)
			} else {
				k.idle = append(k.idle, p)
			}
		}
		k.procs[i] = nil
	}
	k.procs = k.procs[:0]

	// Discard pending events and rebuild the free list over the whole pool,
	// bumping generations of occupied slots so outstanding Timer handles go
	// stale. Slot identity never affects simulation order (events order by
	// (time, sequence) only), so the rebuilt free-list order is harmless.
	k.queue = k.queue[:0]
	for i := range k.buckets {
		k.buckets[i] = k.buckets[i][:0]
	}
	k.overflow = k.overflow[:0]
	k.nFar = 0
	k.calBase = 0
	k.calWidth = defaultCalWidth
	k.calCur = 0
	k.farEdge = 0
	k.free = k.free[:0]
	for i := range k.pool {
		rec := &k.pool[i]
		rec.fire = nil
		rec.proc = nil
		rec.ev = nil
		if rec.pending || rec.cancelled {
			rec.pending = false
			rec.cancelled = false
			rec.gen++
		}
		k.free = append(k.free, int32(i))
	}
	k.nCancelled = 0

	k.now = 0
	k.seq = 0
	k.nextProcID = 0
	k.finished = false

	// One-shot sweep hooks registered since the last Reset (or New). They run
	// last, over a fully reset kernel, and are dropped afterwards: a reused
	// world re-registers its sweeps when it re-arms its pools.
	for i, fn := range k.resetHooks {
		k.resetHooks[i] = nil
		fn()
	}
	k.resetHooks = k.resetHooks[:0]
}

// OnReset registers fn to run once at the end of the next Reset, after the
// kernel state has been rebuilt. Hooks are single-fire: Reset discards them
// after running, so a pool that must be swept on every reset re-registers
// its hook when it is re-armed.
func (k *Kernel) OnReset(fn func()) {
	k.resetHooks = append(k.resetHooks, fn)
}
