// Package stats provides the summary statistics the paper reports: mean,
// standard deviation, coefficient of variation ("covariance" in the paper's
// Table I), min/max, percentiles, histograms, and the imbalance factor
// (slowest/fastest writer time) defined in Section II.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary holds moments and extremes of a sample set.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64 // sample standard deviation (n-1 denominator)
	Min    float64
	Max    float64
	Sum    float64
}

// CoV returns the coefficient of variation (stddev/mean) — what Table I of
// the paper labels "Covariance", reported there as a percentage.
func (s Summary) CoV() float64 {
	if s.Mean == 0 {
		return 0
	}
	return s.StdDev / s.Mean
}

// CoVPercent returns CoV scaled to percent, matching the paper's tables.
func (s Summary) CoVPercent() float64 { return 100 * s.CoV() }

// Summarize computes a Summary over xs. An empty input yields a zero
// Summary.
func Summarize(xs []float64) Summary {
	var s Summary
	s.N = len(xs)
	if s.N == 0 {
		return s
	}
	s.Min = math.Inf(1)
	s.Max = math.Inf(-1)
	for _, x := range xs {
		s.Sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = s.Sum / float64(s.N)
	if s.N > 1 {
		var ss float64
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.StdDev = math.Sqrt(ss / float64(s.N-1))
	}
	return s
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using linear
// interpolation between closest ranks. It copies and sorts internally.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	if p < 0 || p > 100 {
		panic(fmt.Sprintf("stats: percentile %v out of range", p))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median is the 50th percentile.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// ImbalanceFactor returns the paper's per-IO-action imbalance metric: the
// ratio of the slowest to the fastest write time across all writers of one
// output operation. Returns 1 for empty or single-element input and +Inf if
// the fastest time is zero while others are not.
func ImbalanceFactor(writeTimes []float64) float64 {
	if len(writeTimes) < 2 {
		return 1
	}
	min, max := math.Inf(1), math.Inf(-1)
	for _, t := range writeTimes {
		if t < min {
			min = t
		}
		if t > max {
			max = t
		}
	}
	if max == min {
		return 1
	}
	if min <= 0 {
		return math.Inf(1)
	}
	return max / min
}

// Histogram is a fixed-width binning of samples over [Lo, Hi); samples
// outside the range are clamped into the first/last bin so that no data is
// silently dropped (matching how the paper's bandwidth histograms are
// plotted over the observed range).
type Histogram struct {
	Lo, Hi float64
	Counts []int
	N      int
}

// NewHistogram builds a histogram with the given bin count over [lo, hi).
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins < 1 {
		panic("stats: histogram needs at least one bin")
	}
	if hi <= lo {
		panic("stats: histogram range must be non-empty")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
}

// HistogramOf bins xs over their observed [min, max] range.
func HistogramOf(xs []float64, bins int) *Histogram {
	s := Summarize(xs)
	lo, hi := s.Min, s.Max
	if s.N == 0 {
		lo, hi = 0, 1
	}
	if hi <= lo {
		// Widen by a magnitude-aware amount so lo+span > lo even for huge
		// values where lo+1 rounds back to lo.
		span := 1.0
		if d := math.Abs(lo) * 1e-9; d > span {
			span = d
		}
		hi = lo + span
	}
	h := NewHistogram(lo, hi, bins)
	for _, x := range xs {
		h.Add(x)
	}
	return h
}

// Add records one sample.
func (h *Histogram) Add(x float64) {
	i := int(float64(len(h.Counts)) * (x - h.Lo) / (h.Hi - h.Lo))
	if i < 0 {
		i = 0
	}
	if i >= len(h.Counts) {
		i = len(h.Counts) - 1
	}
	h.Counts[i]++
	h.N++
}

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + w*(float64(i)+0.5)
}

// BinWidth returns the width of each bin.
func (h *Histogram) BinWidth() float64 {
	return (h.Hi - h.Lo) / float64(len(h.Counts))
}

// Render draws an ASCII bar chart of the histogram, one line per bin, with
// the given maximum bar width in characters.
func (h *Histogram) Render(width int) string {
	if width < 1 {
		width = 40
	}
	maxC := 0
	for _, c := range h.Counts {
		if c > maxC {
			maxC = c
		}
	}
	var b strings.Builder
	for i, c := range h.Counts {
		bar := 0
		if maxC > 0 {
			bar = c * width / maxC
		}
		fmt.Fprintf(&b, "%12.1f | %-*s %d\n", h.BinCenter(i), width, strings.Repeat("#", bar), c)
	}
	return b.String()
}

// Accumulator collects samples incrementally with Welford's online
// algorithm, avoiding a second pass and catastrophic cancellation.
type Accumulator struct {
	n        int
	mean, m2 float64
	min, max float64
	sum      float64
}

// Add records one sample.
func (a *Accumulator) Add(x float64) {
	a.n++
	if a.n == 1 {
		a.min, a.max = x, x
	} else {
		if x < a.min {
			a.min = x
		}
		if x > a.max {
			a.max = x
		}
	}
	a.sum += x
	d := x - a.mean
	a.mean += d / float64(a.n)
	a.m2 += d * (x - a.mean)
}

// N returns the number of samples recorded.
func (a *Accumulator) N() int { return a.n }

// Summary converts the accumulated state into a Summary.
func (a *Accumulator) Summary() Summary {
	s := Summary{N: a.n, Mean: a.mean, Min: a.min, Max: a.max, Sum: a.sum}
	if a.n > 1 {
		s.StdDev = math.Sqrt(a.m2 / float64(a.n-1))
	}
	if a.n == 0 {
		s.Min, s.Max = 0, 0
	}
	return s
}

// RelDiff returns (a-b)/b — the relative improvement of a over b — guarding
// against a zero baseline.
func RelDiff(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return (a - b) / b
}

// Speedup returns a/b, guarding against a zero denominator.
func Speedup(a, b float64) float64 {
	if b == 0 {
		return math.Inf(1)
	}
	return a / b
}
