package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 {
		t.Fatalf("N = %d", s.N)
	}
	if !almost(s.Mean, 5, 1e-12) {
		t.Fatalf("mean = %v", s.Mean)
	}
	// Sample stddev with n-1: variance = 32/7.
	if !almost(s.StdDev, math.Sqrt(32.0/7.0), 1e-12) {
		t.Fatalf("stddev = %v", s.StdDev)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Fatalf("min/max = %v/%v", s.Min, s.Max)
	}
}

func TestSummarizeEmptyAndSingle(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.Mean != 0 || s.StdDev != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
	s := Summarize([]float64{3})
	if s.N != 1 || s.Mean != 3 || s.StdDev != 0 || s.Min != 3 || s.Max != 3 {
		t.Fatalf("single summary = %+v", s)
	}
}

func TestCoV(t *testing.T) {
	s := Summary{Mean: 50, StdDev: 20}
	if !almost(s.CoV(), 0.4, 1e-12) {
		t.Fatalf("CoV = %v", s.CoV())
	}
	if !almost(s.CoVPercent(), 40, 1e-12) {
		t.Fatalf("CoV%% = %v", s.CoVPercent())
	}
	if (Summary{}).CoV() != 0 {
		t.Fatal("zero-mean CoV should be 0")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := map[float64]float64{0: 1, 25: 2, 50: 3, 75: 4, 100: 5, 10: 1.4}
	for p, want := range cases { //repro:allow nodeterm independent table-driven cases over a pure function
		if got := Percentile(xs, p); !almost(got, want, 1e-12) {
			t.Errorf("P%v = %v, want %v", p, got, want)
		}
	}
	if got := Median([]float64{9}); got != 9 {
		t.Errorf("median single = %v", got)
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Error("percentile of empty should be NaN")
	}
}

func TestPercentileOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Percentile([]float64{1}, 101)
}

func TestImbalanceFactor(t *testing.T) {
	if f := ImbalanceFactor([]float64{10, 20, 34.4}); !almost(f, 3.44, 1e-12) {
		t.Fatalf("imbalance = %v, want 3.44", f)
	}
	if f := ImbalanceFactor([]float64{5, 5, 5}); f != 1 {
		t.Fatalf("uniform imbalance = %v, want 1", f)
	}
	if f := ImbalanceFactor([]float64{7}); f != 1 {
		t.Fatalf("single imbalance = %v, want 1", f)
	}
	if f := ImbalanceFactor(nil); f != 1 {
		t.Fatalf("empty imbalance = %v, want 1", f)
	}
	if f := ImbalanceFactor([]float64{0, 3}); !math.IsInf(f, 1) {
		t.Fatalf("zero-fastest imbalance = %v, want +Inf", f)
	}
}

func TestImbalanceFactorAtLeastOneProperty(t *testing.T) {
	f := func(xs []float64) bool {
		for i, x := range xs {
			xs[i] = math.Abs(x) + 0.001 // positive times
		}
		return ImbalanceFactor(xs) >= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramBinningAndClamp(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{-1, 0, 1.9, 2, 5, 9.99, 10, 42} {
		h.Add(x)
	}
	want := []int{3, 1, 1, 0, 3} // -1,0,1.9 | 2 | 5 | | 9.99,10,42
	for i, c := range want {
		if h.Counts[i] != c {
			t.Fatalf("bin %d = %d, want %d (all: %v)", i, h.Counts[i], c, h.Counts)
		}
	}
	if h.N != 8 {
		t.Fatalf("N = %d", h.N)
	}
	if !almost(h.BinWidth(), 2, 1e-12) {
		t.Fatalf("bin width = %v", h.BinWidth())
	}
	if !almost(h.BinCenter(0), 1, 1e-12) {
		t.Fatalf("bin center = %v", h.BinCenter(0))
	}
}

func TestHistogramOf(t *testing.T) {
	h := HistogramOf([]float64{1, 2, 3, 4}, 2)
	if h.N != 4 {
		t.Fatalf("N = %d", h.N)
	}
	if h.Counts[0]+h.Counts[1] != 4 {
		t.Fatalf("counts = %v", h.Counts)
	}
	// Degenerate inputs must not panic.
	_ = HistogramOf(nil, 3)
	_ = HistogramOf([]float64{5, 5, 5}, 3)
}

func TestHistogramConservesMassProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		h := HistogramOf(xs, 7)
		total := 0
		for _, c := range h.Counts {
			total += c
		}
		return total == len(xs) && h.N == len(xs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramRender(t *testing.T) {
	h := NewHistogram(0, 4, 2)
	h.Add(1)
	h.Add(1)
	h.Add(3)
	out := h.Render(10)
	if !strings.Contains(out, "##########") {
		t.Fatalf("expected a full-width bar in:\n%s", out)
	}
	if strings.Count(out, "\n") != 2 {
		t.Fatalf("expected 2 lines, got:\n%s", out)
	}
}

func TestAccumulatorMatchesSummarize(t *testing.T) {
	xs := []float64{3.5, -1, 0, 12, 7, 7, 2.25}
	var a Accumulator
	for _, x := range xs {
		a.Add(x)
	}
	got, want := a.Summary(), Summarize(xs)
	if got.N != want.N || !almost(got.Mean, want.Mean, 1e-12) ||
		!almost(got.StdDev, want.StdDev, 1e-9) ||
		got.Min != want.Min || got.Max != want.Max {
		t.Fatalf("accumulator %+v != summarize %+v", got, want)
	}
}

func TestAccumulatorMatchesSummarizeProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e12 {
				xs = append(xs, x)
			}
		}
		var a Accumulator
		for _, x := range xs {
			a.Add(x)
		}
		got, want := a.Summary(), Summarize(xs)
		tol := 1e-6 * (1 + math.Abs(want.StdDev))
		return got.N == want.N && almost(got.Mean, want.Mean, tol) &&
			almost(got.StdDev, want.StdDev, tol)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRelDiffAndSpeedup(t *testing.T) {
	if !almost(RelDiff(150, 100), 0.5, 1e-12) {
		t.Fatal("RelDiff")
	}
	if RelDiff(5, 0) != 0 {
		t.Fatal("RelDiff zero baseline")
	}
	if !almost(Speedup(480, 100), 4.8, 1e-12) {
		t.Fatal("Speedup")
	}
	if !math.IsInf(Speedup(1, 0), 1) {
		t.Fatal("Speedup zero denominator")
	}
}
