package machines

import (
	"testing"

	"repro/internal/pfs"
)

func TestAllPresetsValidate(t *testing.T) {
	for _, name := range Names() {
		m, ok := ByName(name, 1)
		if !ok {
			t.Fatalf("preset %s missing", name)
		}
		cfg := m.FS
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s config invalid: %v", name, err)
		}
		if m.ExperimentOSTs <= 0 || m.ExperimentOSTs > cfg.NumOSTs {
			t.Errorf("%s experiment OSTs %d out of range", name, m.ExperimentOSTs)
		}
		if m.PeakAggregateBW <= 0 {
			t.Errorf("%s missing peak bandwidth", name)
		}
	}
}

func TestPaperConstants(t *testing.T) {
	j := Jaguar(1)
	if j.FS.NumOSTs != 672 {
		t.Errorf("Jaguar OSTs = %d, want the paper's 672", j.FS.NumOSTs)
	}
	if j.FS.MaxStripeCount != 160 {
		t.Errorf("Jaguar stripe limit = %d, want Lustre 1.6's 160", j.FS.MaxStripeCount)
	}
	if j.FS.DiskBW != 180*pfs.MB {
		t.Errorf("Jaguar per-OST BW = %v, want 180 MB/s", j.FS.DiskBW)
	}
	if j.ExperimentOSTs != 512 {
		t.Errorf("Jaguar experiment OSTs = %d, want 512", j.ExperimentOSTs)
	}
	f := Franklin(1)
	if f.FS.NumOSTs != 96 {
		t.Errorf("Franklin OSTs = %d, want 96", f.FS.NumOSTs)
	}
	x := XTP(1)
	if x.FS.NumOSTs != 40 {
		t.Errorf("XTP blades = %d, want 40", x.FS.NumOSTs)
	}
	if x.Noise.Enabled {
		t.Error("XTP is not a production machine; noise must default off")
	}
}

func TestXTPConcurrencyToleranceVsJaguar(t *testing.T) {
	// The paper: XTP/PanFS showed <5% degradation scaling 512→1024 writers
	// (13→26 per blade), while Jaguar's Lustre drops hard past 4 per OST.
	j, x := Jaguar(1), XTP(1)
	jDrop := j.FS.DiskEff.Eval(26) / j.FS.DiskEff.Eval(13)
	xDrop := x.FS.DiskEff.Eval(26) / x.FS.DiskEff.Eval(13)
	if xDrop < 0.95 {
		t.Errorf("XTP 13→26 writers efficiency ratio %.3f, want ≥0.95 (paper: <5%% loss)", xDrop)
	}
	if jDrop > xDrop {
		t.Errorf("Jaguar (%.3f) should degrade more than XTP (%.3f)", jDrop, xDrop)
	}
}

func TestJaguarDeclineBand(t *testing.T) {
	// The 16:1→32:1 aggregate decline for disk-bound writers should fall
	// in the paper's 16–28% band (by construction of the efficiency curve).
	j := Jaguar(1)
	drop := 1 - j.FS.DiskEff.Eval(32)/j.FS.DiskEff.Eval(16)
	if drop < 0.16 || drop > 0.28 {
		t.Errorf("Jaguar 16:1→32:1 efficiency decline %.1f%%, want 16–28%%", 100*drop)
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, ok := ByName("earth-simulator", 1); ok {
		t.Fatal("unknown machine resolved")
	}
}

func TestSeedPropagation(t *testing.T) {
	a := Jaguar(5)
	b := Jaguar(6)
	if a.FS.Seed == b.FS.Seed {
		t.Fatal("seeds not propagated")
	}
	if a.Noise.Seed == b.Noise.Seed {
		t.Fatal("noise seeds not propagated")
	}
}

func TestIntrepidExtension(t *testing.T) {
	i := Intrepid(1)
	if i.FS.DefaultStripeCount != i.FS.MaxStripeCount {
		t.Error("GPFS preset should stripe wide by default")
	}
	if i.FS.MDSCapacity <= Jaguar(1).FS.MDSCapacity {
		t.Error("GPFS distributed metadata should out-provision the Lustre MDS")
	}
}
