// Package machines provides calibrated presets for the three systems the
// paper measures: the XT5 partition of Jaguar at ORNL (672-OST Lustre 1.6
// scratch), Franklin at NERSC (96-OST Lustre), and Sandia's XTP (PanFS with
// 40 StorageBlades).
//
// Calibration notes (see DESIGN.md §4 and EXPERIMENTS.md):
//
//   - Per-OST disk bandwidth follows the paper's "per storage target
//     theoretical maximum performance of around 180 MB/sec".
//   - ClientCap models the single-POSIX-stream ceiling; it is what makes
//     aggregate bandwidth *rise* from 1 to ~4 writers per OST before
//     contention turns it around (Figure 1's peak at 2048 writers on 512
//     OSTs).
//   - CacheBytes is the *effective* per-OST dirty-buffer budget. The OSS
//     nodes carry ~2 GB of cache per target, but Linux dirty-page limits
//     make only a fraction usable for write-back absorption; 96 MB
//     reproduces the paper's regime boundaries: 1 MB and 2 MB writes stay
//     cache-absorbed through 32 writers/OST, 8 MB writes hold up into the
//     16:1 region, and ≥128 MB writes turn disk-bound (and visibly
//     contended) from 4 writers per OST — the ratio where Figure 1's
//     aggregate bandwidth peaks.
//   - DiskEff (Alpha 0.025, Beta 1.05) yields a 16:1→32:1 aggregate decline
//     of ≈26%, inside the paper's measured 16–28% band for ≥128 MB writers.
//   - XTP's PanFS shows almost no concurrency degradation in the paper
//     (<5% from 512→1024 writers), hence the nearly flat efficiency curve.
package machines

import (
	"time"

	"repro/internal/interference"
	"repro/internal/pfs"
)

// Machine bundles a file-system configuration with the background noise
// profile of its production environment.
type Machine struct {
	// Name identifies the system ("Jaguar", "Franklin", "XTP").
	Name string

	// FS is the parallel file system configuration.
	FS pfs.Config

	// Noise is the production background-load profile (disabled for
	// non-production systems like XTP).
	Noise interference.NoiseConfig

	// ExperimentOSTs is the number of storage targets the paper's
	// experiments actually use on this machine (512 of Jaguar's 672).
	ExperimentOSTs int

	// PeakAggregateBW is the nominal aggregate bandwidth (bytes/sec) the
	// paper quotes, used for sanity reporting only.
	PeakAggregateBW float64
}

// Jaguar returns the ORNL Jaguar XT5 scratch system: 672 OSTs, Lustre 1.6,
// 10 PB, shared across ORNL machines; experiments use 512 targets.
func Jaguar(seed int64) Machine {
	return Machine{
		Name: "Jaguar",
		FS: pfs.Config{
			NumOSTs:            672,
			DiskBW:             180 * pfs.MB,
			CacheBytes:         96 * pfs.MB,
			IngestBW:           400 * pfs.MB,
			ClientCap:          55 * pfs.MB,
			DiskEff:            pfs.EffCurve{Alpha: 0.025, Beta: 1.05},
			NetEff:             pfs.EffCurve{Alpha: 0.004, Beta: 1.1},
			WriteLatency:       2 * time.Millisecond,
			MaxStripeCount:     160, // Lustre 1.6 single-file limit
			DefaultStripeCount: 4,   // the system default the paper cites
			StripeSize:         4 * 1024 * 1024,
			MDSCapacity:        16,
			MDSServiceMean:     0.004,
			MDSServiceCV:       0.8,
			Seed:               seed,
		},
		Noise:           interference.DefaultProduction(seed + 1),
		ExperimentOSTs:  512,
		PeakAggregateBW: 60 * pfs.GB,
	}
}

// Franklin returns the NERSC Franklin XT4 scratch system: 96 OSTs, Lustre,
// 436 TB, also a busy production environment.
func Franklin(seed int64) Machine {
	noise := interference.DefaultProduction(seed + 1)
	// Franklin's smaller OST pool concentrates external load: slightly
	// longer busy episodes and fewer idle gaps.
	noise.PerOSTMeanOn = 150
	noise.PerOSTMeanOff = 210
	noise.HotOSTs = 8
	return Machine{
		Name: "Franklin",
		FS: pfs.Config{
			NumOSTs:            96,
			DiskBW:             160 * pfs.MB,
			CacheBytes:         80 * pfs.MB,
			IngestBW:           360 * pfs.MB,
			ClientCap:          50 * pfs.MB,
			DiskEff:            pfs.EffCurve{Alpha: 0.028, Beta: 1.05},
			NetEff:             pfs.EffCurve{Alpha: 0.005, Beta: 1.1},
			WriteLatency:       2 * time.Millisecond,
			MaxStripeCount:     96,
			DefaultStripeCount: 4,
			StripeSize:         4 * 1024 * 1024,
			MDSCapacity:        12,
			MDSServiceMean:     0.005,
			MDSServiceCV:       0.8,
			Seed:               seed,
		},
		Noise:           noise,
		ExperimentOSTs:  80, // NERSC's hourly tests use 80 writers
		PeakAggregateBW: 12 * pfs.GB,
	}
}

// XTP returns Sandia's XTP: a 160-node Cray XT5 with a PanFS file system of
// 40 StorageBlades (61 TB). It is not a production machine: background
// noise is disabled, and interference experiments launch explicit second
// workloads instead.
func XTP(seed int64) Machine {
	return Machine{
		Name: "XTP",
		FS: pfs.Config{
			NumOSTs:    40,
			DiskBW:     110 * pfs.MB,
			CacheBytes: 256 * pfs.MB,
			IngestBW:   300 * pfs.MB,
			ClientCap:  45 * pfs.MB,
			// PanFS parallelism handles concurrency gracefully: the paper
			// saw <5% degradation scaling 512→1024 writers (12.8→25.6 per
			// blade).
			DiskEff:            pfs.EffCurve{Alpha: 0.0015, Beta: 1.0},
			NetEff:             pfs.EffCurve{Alpha: 0.001, Beta: 1.0},
			WriteLatency:       2 * time.Millisecond,
			MaxStripeCount:     40,
			DefaultStripeCount: 4,
			StripeSize:         4 * 1024 * 1024,
			MDSCapacity:        8,
			MDSServiceMean:     0.004,
			MDSServiceCV:       0.6,
			Seed:               seed,
		},
		Noise:           interference.NoiseConfig{Enabled: false},
		ExperimentOSTs:  40,
		PeakAggregateBW: 4 * pfs.GB,
	}
}

// Intrepid returns a BlueGene/P-class system with a GPFS file system — the
// paper's future work ("perhaps, GPFS on a BlueGene/P machine"). GPFS
// network shared disks behave differently from Lustre OSTs: wide striping
// by default, larger effective write-back budgets on the IO-forwarding
// nodes, and gentler (but present) concurrency degradation. This preset is
// an extension, not a reproduction target; it lets the adaptive method be
// exercised against a second file-system personality.
func Intrepid(seed int64) Machine {
	return Machine{
		Name: "Intrepid",
		FS: pfs.Config{
			NumOSTs:            128, // NSD servers
			DiskBW:             250 * pfs.MB,
			CacheBytes:         512 * pfs.MB, // ION write-behind buffers
			IngestBW:           500 * pfs.MB,
			ClientCap:          40 * pfs.MB, // BG/P compute-node link share
			DiskEff:            pfs.EffCurve{Alpha: 0.010, Beta: 1.0},
			NetEff:             pfs.EffCurve{Alpha: 0.003, Beta: 1.0},
			WriteLatency:       3 * time.Millisecond, // IO forwarding hop
			MaxStripeCount:     128,                  // GPFS stripes wide
			DefaultStripeCount: 128,
			StripeSize:         8 * 1024 * 1024,
			MDSCapacity:        32, // distributed metadata
			MDSServiceMean:     0.003,
			MDSServiceCV:       0.5,
			Seed:               seed,
		},
		Noise:           interference.DefaultProduction(seed + 1),
		ExperimentOSTs:  128,
		PeakAggregateBW: 30 * pfs.GB,
	}
}

// ByName returns the preset for a machine name, or ok=false.
func ByName(name string, seed int64) (Machine, bool) {
	switch name {
	case "Jaguar", "jaguar":
		return Jaguar(seed), true
	case "Franklin", "franklin":
		return Franklin(seed), true
	case "XTP", "xtp":
		return XTP(seed), true
	case "Intrepid", "intrepid":
		return Intrepid(seed), true
	}
	return Machine{}, false
}

// Names lists the available machine presets.
func Names() []string { return []string{"Jaguar", "Franklin", "XTP", "Intrepid"} }
