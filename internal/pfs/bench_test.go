package pfs

import (
	"fmt"
	"testing"

	"repro/internal/simkernel"
)

// BenchmarkOSTFluidUpdates measures the fluid model's cost under heavy
// concurrent membership churn: many flows joining and completing on one
// target.
func BenchmarkOSTFluidUpdates(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := flatConfig()
		cfg.ClientCap = 400
		k := simkernel.New()
		fs := MustNew(k, cfg)
		for j := 0; j < 64; j++ {
			j := j
			k.SpawnAt(simkernel.Time(j), "w", func(p *simkernel.Proc) {
				fs.OST(0).Write(p, float64(100+j))
			})
		}
		k.Run()
		k.Shutdown()
	}
}

// BenchmarkStripedWrite measures chunked writes across a striped file.
func BenchmarkStripedWrite(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k := simkernel.New()
		cfg := flatConfig()
		cfg.NumOSTs = 16
		cfg.MaxChunksPerOp = 16
		fs := MustNew(k, cfg)
		k.Spawn("w", func(p *simkernel.Proc) {
			f, err := fs.Create(p, "bench", Layout{StripeCount: 8, StripeSize: 1 << 16})
			if err != nil {
				b.Error(err)
				return
			}
			f.WriteAt(p, 0, 1<<22)
			f.Flush(p)
			f.Close(p)
		})
		k.Run()
		k.Shutdown()
	}
}

// BenchmarkManyOSTConstruction measures file-system setup cost at Jaguar
// scale (672 targets), which every experiment sample pays.
func BenchmarkManyOSTConstruction(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k := simkernel.New()
		fs := MustNew(k, Config{NumOSTs: 672, Seed: int64(i)})
		if len(fs.OSTs) != 672 {
			b.Fatal("bad fs")
		}
		k.Shutdown()
	}
}

var sinkName string

// BenchmarkFileCreate measures metadata create throughput.
func BenchmarkFileCreate(b *testing.B) {
	k := simkernel.New()
	fs := MustNew(k, flatConfig())
	b.ResetTimer()
	count := 0
	k.Spawn("creator", func(p *simkernel.Proc) {
		for count < b.N {
			name := fmt.Sprintf("f%d", count)
			if _, err := fs.Create(p, name, Layout{OSTs: []int{0}}); err != nil {
				b.Error(err)
				return
			}
			sinkName = name
			count++
		}
	})
	k.Run()
	k.Shutdown()
}
