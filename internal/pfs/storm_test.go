package pfs

import (
	"testing"

	"repro/internal/simkernel"
)

// stormRig drives rounds of concurrent writes against one OST with a fixed
// set of long-lived writer processes. Each round wakes every writer through
// its cached waker; a writer performs one Write (join the fluid model,
// trigger replans, complete) and parks again. After the first round the
// flow pool, the water-fill scratch buffers, and the kernel's event pool
// are all warm, so a round exercises the entire write/replan/complete cycle
// without allocating.
type stormRig struct {
	k      *simkernel.Kernel
	wakers []func()
}

func newStormRig(writers int) *stormRig {
	k := simkernel.New()
	cfg := flatConfig()
	cfg.ClientCap = 400
	fs := MustNew(k, cfg)
	ost := fs.OST(0)
	r := &stormRig{k: k, wakers: make([]func(), writers)}
	for w := 0; w < writers; w++ {
		w := w
		k.Spawn("storm", func(p *simkernel.Proc) {
			r.wakers[w] = p.Waker()
			for {
				p.Suspend()
				ost.Write(p, float64(100+w))
			}
		})
	}
	k.Run() // writers register their wakers and park
	return r
}

func (r *stormRig) round() {
	for _, wake := range r.wakers {
		wake()
	}
	r.k.Run()
}

// BenchmarkOSTWriteStorm measures one full storm round: 32 flows joining,
// replanning against each other, and completing on a single target.
func BenchmarkOSTWriteStorm(b *testing.B) {
	b.ReportAllocs()
	r := newStormRig(32)
	defer r.k.Shutdown()
	r.round() // warm pools and scratch buffers
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.round()
	}
}

// TestOSTWriteStormZeroAlloc is the allocation regression gate for the
// write path: steady-state flow churn — StartWrite, every replan it
// triggers, completion wakeups — must be allocation-free.
func TestOSTWriteStormZeroAlloc(t *testing.T) {
	r := newStormRig(32)
	defer r.k.Shutdown()
	r.round()
	got := testing.AllocsPerRun(50, r.round)
	if got != 0 {
		t.Fatalf("OST write storm allocates %v allocs/op in steady state; want 0", got)
	}
}
