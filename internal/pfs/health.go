package pfs

import (
	"errors"
	"fmt"
)

// HealthState is the lifecycle state of a storage component (OST or MDS).
// Transitions are driven deterministically by the failure injector
// (internal/interference) through kernel-scheduled events:
//
//	Healthy → Degraded → Dead → Rebuilding → Healthy
//
// Healthy and Degraded serve I/O normally (Degraded at a reduced disk
// bandwidth); Dead serves nothing — in-flight operations stall until the
// target revives (the Lustre client-blocking behaviour) and newly issued
// operations hang for the configured DeadTimeout and then fail with
// ErrTargetDown; Rebuilding serves I/O while the rebuild consumes a
// configured fraction of the backend bandwidth.
type HealthState int

const (
	Healthy HealthState = iota
	Degraded
	Dead
	Rebuilding
	// NumHealthStates sizes per-state accounting arrays.
	NumHealthStates
)

// String renders the state name.
func (h HealthState) String() string {
	switch h {
	case Healthy:
		return "healthy"
	case Degraded:
		return "degraded"
	case Dead:
		return "dead"
	case Rebuilding:
		return "rebuilding"
	}
	return fmt.Sprintf("HealthState(%d)", int(h))
}

// ErrTargetDown is the sentinel all target-down failures unwrap to: check
// for it with errors.Is(err, pfs.ErrTargetDown).
var ErrTargetDown = errors.New("pfs: storage target down")

// TargetDownError is the typed failure a client operation returns when its
// storage target is Dead: the request hung for the configured DeadTimeout
// and was abandoned. It unwraps to ErrTargetDown.
type TargetDownError struct {
	OST int
}

// Error implements error.
func (e *TargetDownError) Error() string {
	return fmt.Sprintf("pfs: OST %d is down (request timed out)", e.OST)
}

// Unwrap makes errors.Is(err, ErrTargetDown) true for every TargetDownError.
func (e *TargetDownError) Unwrap() error { return ErrTargetDown }

// Health returns the OST's current lifecycle state.
func (o *OST) Health() HealthState { return o.health }

// HealthFactor returns the health-driven disk-bandwidth multiplier in
// (0, 1]; 1 while Healthy, the configured rebuild-tax complement while
// Rebuilding. It composes multiplicatively with the interference-driven
// SlowFactor.
func (o *OST) HealthFactor() float64 { return o.healthFactor }

// SetHealth transitions the OST's lifecycle state. factor is the disk-
// bandwidth multiplier the new state imposes (clamped to (0, 1]; ignored
// while Dead — a dead target serves nothing regardless). In-flight flows
// are re-planned under the new state: they stall while Dead and resume when
// the target revives.
func (o *OST) SetHealth(h HealthState, factor float64) {
	if factor <= 0 {
		factor = 1e-3
	}
	if factor > 1 {
		factor = 1
	}
	if h == Dead {
		factor = 1
	}
	if h == o.health && factor == o.healthFactor {
		return
	}
	o.advance()
	now := o.k.Now()
	o.stateSecs[o.health] += (now - o.stateSince).Seconds()
	o.stateSince = now
	o.health = h
	o.healthFactor = factor
	o.planValid = false
	o.recompute()
}

// HealthSeconds returns the cumulative residence time in each lifecycle
// state (seconds), including the in-progress state up to now. Index with
// HealthState values.
func (o *OST) HealthSeconds() [NumHealthStates]float64 {
	s := o.stateSecs
	s[o.health] += (o.k.Now() - o.stateSince).Seconds()
	return s
}
