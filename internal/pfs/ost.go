package pfs

import (
	"fmt"
	"math"

	"repro/internal/simkernel"
)

// completionEps is the byte threshold below which a flow's residue is
// considered complete; it absorbs floating-point drift from piecewise-
// constant rate integration.
const completionEps = 1e-3

// flow is one in-progress write stream on an OST. Completed flows are
// recycled through the OST's free list, so steady-state write traffic does
// not allocate.
type flow struct {
	remaining float64 // bytes left to ingest
	rate      float64 // current ingest rate, bytes/sec
	cap       float64 // per-stream cap for this flow
	done      func()  // invoked (in kernel context) at completion
}

// flushWaiter waits until the OST's cumulative drained byte count reaches a
// watermark (FIFO cache drain means every byte ingested before the flush
// call is on disk by then).
type flushWaiter struct {
	watermark float64
	wake      func()
}

// OSTStats aggregates per-target counters for experiment analysis.
type OSTStats struct {
	BytesIngested  float64
	BytesDrained   float64
	WritesStarted  int
	WritesFinished int
	MaxConcurrency int
	// WritesFailed and ReadsFailed count client operations abandoned with
	// ErrTargetDown because this target was Dead.
	WritesFailed int
	ReadsFailed  int
}

// OST models one object storage target as a fluid-flow server with a
// write-back cache. All methods must be called in kernel or process context
// of the owning kernel.
type OST struct {
	ID int //repro:reset-skip identity, fixed at construction

	k   *simkernel.Kernel
	cfg *Config //repro:reset-skip aliases &FileSystem.Cfg, which Reset reassigns in place

	flows     []*flow
	freeFlows []*flow // recycled flow records
	waiters   []flushWaiter

	// External interference knobs (driven by the interference package).
	extStreams   int     // competing external write streams on this target
	slowFactor   float64 // disk-side degradation multiplier in (0,1]
	ingestFactor float64 // network/OSS-side degradation multiplier in (0,1]

	// Health lifecycle (driven by the failure injector; see health.go).
	health       HealthState
	healthFactor float64                  // health-driven disk multiplier in (0,1]
	stateSince   simkernel.Time           // when the current health state was entered
	stateSecs    [NumHealthStates]float64 // completed residence time per state, seconds
	downErr      error                    //repro:reset-skip immutable identity error, built at construction

	// Fluid state, valid as of lastUpdate.
	cacheLevel    float64 // dirty bytes in cache
	ingestedTotal float64 // cumulative bytes accepted
	drainedTotal  float64 // cumulative bytes written to disk
	drainRate     float64 // current drain bytes/sec (for our data)
	effCache      float64 // cache capacity available to us (shrinks under external load)
	lastUpdate    simkernel.Time

	boundary   simkernel.Timer
	boundaryAt simkernel.Time // absolute deadline of the pending boundary timer
	onBoundary func()         //repro:reset-skip cached boundary callback, built once per OST

	// Replan cache: planValid is invalidated by any membership or knob
	// change; while it holds and the cache-full regime is unchanged, a
	// boundary event reuses the planned rates instead of re-running the
	// water-fill (the common case for flush-watermark boundaries).
	planValid     bool
	planCacheFull bool
	planInflow    float64 // sum of planned per-flow rates

	// Water-fill scratch buffers, owned by the OST so replanning under
	// mixed per-flow caps stays allocation-free.
	rateScratch  []float64 //repro:reset-skip scratch, fully overwritten by each water-fill
	unsatScratch []int     //repro:reset-skip scratch, fully overwritten by each water-fill

	// jobAcct attributes traffic per job id (index 0 = unattributed); see
	// jobacct.go.
	jobAcct []JobIO

	Stats OSTStats
}

func newOST(k *simkernel.Kernel, cfg *Config, id int) *OST {
	o := &OST{ID: id, k: k, cfg: cfg, slowFactor: 1, ingestFactor: 1,
		healthFactor: 1, stateSince: k.Now(),
		downErr:  &TargetDownError{OST: id},
		effCache: cfg.CacheBytes, lastUpdate: k.Now()}
	o.onBoundary = func() {
		o.boundary = simkernel.Timer{}
		o.advance()
		o.recompute()
	}
	return o
}

// reset returns the OST to its freshly constructed state for a new
// configuration, recycling the flow records, waiter slice and water-fill
// scratch. The owning kernel has already been Reset, so pending boundary
// timers are gone and the clock is back at zero.
func (o *OST) reset() {
	for i, f := range o.flows {
		*f = flow{}
		o.freeFlows = append(o.freeFlows, f)
		o.flows[i] = nil
	}
	o.flows = o.flows[:0]
	for i := range o.waiters {
		o.waiters[i] = flushWaiter{}
	}
	o.waiters = o.waiters[:0]
	o.extStreams = 0
	o.slowFactor = 1
	o.ingestFactor = 1
	o.health = Healthy
	o.healthFactor = 1
	o.stateSince = o.k.Now()
	for i := range o.stateSecs {
		o.stateSecs[i] = 0
	}
	o.cacheLevel = 0
	o.ingestedTotal = 0
	o.drainedTotal = 0
	o.drainRate = 0
	o.effCache = o.cfg.CacheBytes
	o.lastUpdate = o.k.Now()
	o.boundary = simkernel.Timer{}
	o.boundaryAt = 0
	o.planValid = false
	o.planCacheFull = false
	o.planInflow = 0
	for i := range o.jobAcct {
		o.jobAcct[i] = JobIO{}
	}
	o.jobAcct = o.jobAcct[:0]
	o.Stats = OSTStats{}
}

// ExternalStreams returns the current external competing stream count.
func (o *OST) ExternalStreams() int { return o.extStreams }

// SlowFactor returns the current disk-side degradation multiplier.
func (o *OST) SlowFactor() float64 { return o.slowFactor }

// IngestFactor returns the current network-side degradation multiplier.
func (o *OST) IngestFactor() float64 { return o.ingestFactor }

// SetIngestFactor changes the network/OSS-side degradation multiplier
// (clamped to (0, 1]): machine-wide backend load slows every client stream,
// including cache-absorbed writes that never touch the disk.
func (o *OST) SetIngestFactor(f float64) {
	if f <= 0 {
		f = 1e-3
	}
	if f > 1 {
		f = 1
	}
	if f == o.ingestFactor {
		return
	}
	o.advance()
	o.ingestFactor = f
	o.planValid = false
	o.recompute()
}

// CacheLevel returns the current dirty-byte count (advancing fluid state to
// the present first).
func (o *OST) CacheLevel() float64 {
	o.advance()
	return o.cacheLevel
}

// ActiveFlows returns the number of in-progress internal write streams.
func (o *OST) ActiveFlows() int { return len(o.flows) }

// SetExternalStreams changes the number of competing external streams and
// re-plans all in-progress flows.
func (o *OST) SetExternalStreams(m int) {
	if m < 0 {
		m = 0
	}
	if m == o.extStreams {
		return
	}
	o.advance()
	o.extStreams = m
	o.planValid = false
	o.recompute()
}

// SetSlowFactor changes the transient degradation multiplier (clamped to
// (0, 1]) and re-plans all in-progress flows.
func (o *OST) SetSlowFactor(s float64) {
	if s <= 0 {
		s = 1e-3
	}
	if s > 1 {
		s = 1
	}
	if s == o.slowFactor {
		return
	}
	o.advance()
	o.slowFactor = s
	o.planValid = false
	o.recompute()
}

// StartWrite begins ingesting bytes on this OST with the given per-stream
// cap (<=0 means the configured ClientCap) and calls done in kernel context
// when the final byte is accepted. It returns immediately; use Write for the
// blocking client-side call.
//
//repro:hotpath
func (o *OST) StartWrite(bytes float64, streamCap float64, done func()) {
	if bytes < 0 {
		panic("pfs: negative write size")
	}
	if streamCap <= 0 {
		streamCap = o.cfg.ClientCap
	}
	o.advance()
	var f *flow
	if n := len(o.freeFlows); n > 0 {
		f = o.freeFlows[n-1]
		o.freeFlows = o.freeFlows[:n-1]
		*f = flow{remaining: bytes, cap: streamCap, done: done}
	} else {
		f = &flow{remaining: bytes, cap: streamCap, done: done}
	}
	o.flows = append(o.flows, f)
	o.planValid = false
	o.Stats.WritesStarted++
	if len(o.flows) > o.Stats.MaxConcurrency {
		o.Stats.MaxConcurrency = len(o.flows)
	}
	o.recompute()
}

// Write blocks the calling process until bytes have been accepted by the
// OST (cache or disk). It includes the fixed per-operation latency. If the
// target is Dead when the request arrives, the call hangs for the
// configured DeadTimeout and returns ErrTargetDown.
//
//repro:hotpath
func (o *OST) Write(p *simkernel.Proc, bytes float64) error {
	if o.cfg.WriteLatency > 0 {
		p.Sleep(o.cfg.WriteLatency)
	}
	if o.health == Dead {
		p.SleepSeconds(o.cfg.DeadTimeout)
		o.Stats.WritesFailed++
		return o.downErr
	}
	if bytes <= 0 {
		return nil
	}
	o.accountWrite(p.Job(), bytes)
	wake := p.Waker()
	o.StartWrite(bytes, 0, wake)
	p.Suspend()
	return nil
}

// Flush blocks the calling process until every byte ingested by this OST
// before the call has been drained to disk (the explicit flush the paper
// inserts before close).
//
//repro:hotpath
func (o *OST) Flush(p *simkernel.Proc) {
	o.advance()
	if o.cacheLevel <= completionEps {
		return
	}
	wake := p.Waker()
	o.waiters = append(o.waiters, flushWaiter{watermark: o.ingestedTotal, wake: wake})
	o.recompute()
	p.Suspend()
}

// effDisk evaluates the disk-efficiency curve for the current stream mix.
func (o *OST) effDisk(streams int) float64 { return o.cfg.DiskEff.Eval(streams) }

// effNet evaluates the network-efficiency curve for the current stream mix.
func (o *OST) effNet(streams int) float64 { return o.cfg.NetEff.Eval(streams) }

// plan computes, from current membership, the per-flow ingest rates and the
// drain rate. It returns (sumInflow, drain) and records the plan signature
// so unchanged boundary events can skip the next full replan.
//
//repro:hotpath
func (o *OST) plan() (sumInflow, drain float64) {
	n := len(o.flows)
	m := o.extStreams
	streams := n + m
	if streams < 1 {
		streams = 1
	}

	// Total disk bandwidth under the current interleave level, transient
	// slowness, and health state (a Rebuilding target's rebuild traffic
	// taxes the disk through healthFactor < 1; Healthy is exactly 1, so the
	// zero-failure plan is bit-identical to the pre-health model); our share
	// is proportional to our stream presence (a lone drainer still competes
	// with external streams).
	d := o.cfg.DiskBW * o.effDisk(streams) * o.slowFactor * o.healthFactor
	drainWeight := float64(n)
	if drainWeight < 1 {
		drainWeight = 1
	}
	ourDisk := d * drainWeight / (drainWeight + float64(m))

	// External streams keep their share of the write-back cache dirty with
	// their own data, so the capacity available for absorbing our bursts
	// shrinks proportionally. This is what makes a busy target slow even
	// for writes that would otherwise be cache-absorbed.
	o.effCache = o.cfg.CacheBytes / float64(1+m)

	o.planValid = true
	o.planCacheFull = o.cacheLevel >= o.effCache-completionEps

	if o.health == Dead {
		// A dead target neither accepts nor drains bytes: in-flight flows
		// stall at rate zero and resume when the target revives, like
		// Lustre clients blocking on a failed OST.
		for _, f := range o.flows {
			f.rate = 0
		}
		o.planInflow = 0
		return 0, 0
	}

	if n == 0 {
		o.planInflow = 0
		if o.cacheLevel > 0 {
			return 0, ourDisk
		}
		return 0, 0
	}

	// Network-side ingest available to our flows, degraded by machine-wide
	// backend load; the same factor caps each client stream.
	ing := o.cfg.IngestBW * o.effNet(streams) * o.ingestFactor
	ourIngest := ing * float64(n) / float64(n+m)

	budget := ourIngest
	if o.planCacheFull {
		// Cache cannot absorb: inflow throttles to the drain rate.
		budget = math.Min(ourIngest, ourDisk)
	}

	// Fair-share the budget across flows, respecting per-stream caps. The
	// overwhelmingly common case — every flow at the same cap (the
	// configured ClientCap) — has the closed form min(cap, budget/n) and
	// needs no water-filling iteration at all.
	uniform := true
	cap0 := o.flows[0].cap
	for _, f := range o.flows[1:] {
		if f.cap != cap0 {
			uniform = false
			break
		}
	}
	if uniform {
		share := budget / float64(n)
		r := cap0 * o.ingestFactor
		if r > share {
			r = share
		}
		for _, f := range o.flows {
			f.rate = r
			sumInflow += r
		}
	} else {
		rates := o.waterFillScratch(budget, o.ingestFactor)
		for i, f := range o.flows {
			f.rate = rates[i]
			sumInflow += rates[i]
		}
	}
	o.planInflow = sumInflow
	return sumInflow, ourDisk
}

// waterFillScratch distributes budget across the OST's flows subject to
// per-flow caps (scaled by capFactor), using iterative water-filling — capped
// flows release budget to others. Results land in the OST-owned scratch
// buffer, so replanning allocates nothing once the buffers have grown to the
// peak flow count.
//
//repro:hotpath
func (o *OST) waterFillScratch(budget float64, capFactor float64) []float64 {
	n := len(o.flows)
	if cap(o.rateScratch) < n {
		o.rateScratch = make([]float64, n)
		o.unsatScratch = make([]int, n)
	}
	rates := o.rateScratch[:n]
	unsat := o.unsatScratch[:0]
	waterFillInto(rates, unsat, o.flows, budget, capFactor)
	return rates
}

// waterFillInto is the water-filling loop shared by the OST fast path and
// the package tests. rates must have len(flows) entries; unsat must be an
// empty slice with capacity for len(flows) entries (or it will grow).
func waterFillInto(rates []float64, unsat []int, flows []*flow, budget float64, capFactor float64) {
	remainingBudget := budget
	for i := range flows {
		unsat = append(unsat, i)
	}
	for len(unsat) > 0 {
		share := remainingBudget / float64(len(unsat))
		progressed := false
		next := unsat[:0]
		for _, i := range unsat {
			if c := flows[i].cap * capFactor; c <= share {
				rates[i] = c
				remainingBudget -= c
				progressed = true
			} else {
				next = append(next, i)
			}
		}
		unsat = next
		if !progressed {
			share = remainingBudget / float64(len(unsat))
			for _, i := range unsat {
				rates[i] = share
			}
			break
		}
	}
}

// waterFillFactor distributes budget across flows subject to per-flow caps
// scaled by capFactor, allocating fresh result buffers (the OST hot path
// uses waterFillScratch instead).
func waterFillFactor(flows []*flow, budget float64, capFactor float64) []float64 {
	rates := make([]float64, len(flows))
	waterFillInto(rates, make([]int, 0, len(flows)), flows, budget, capFactor)
	return rates
}

// advance integrates the fluid state from lastUpdate to now at the rates
// currently in force, completing flows and waking flush waiters whose
// conditions are met.
//
//repro:hotpath
func (o *OST) advance() {
	now := o.k.Now()
	dt := (now - o.lastUpdate).Seconds()
	o.lastUpdate = now
	if dt < 0 {
		panic("pfs: time went backwards")
	}
	if dt == 0 {
		// Every advance ends with completions fired, and nothing changes
		// between events at one timestamp, so there is nothing to scan for.
		return
	}

	var inflow float64
	anyDone := false
	for _, f := range o.flows {
		adv := f.rate * dt
		if adv > f.remaining {
			adv = f.remaining
		}
		f.remaining -= adv
		inflow += adv
		if f.remaining <= completionEps {
			anyDone = true
		}
	}
	o.ingestedTotal += inflow

	// Drain applies to dirty bytes plus pass-through of fresh inflow.
	drainable := o.cacheLevel + inflow
	drained := o.drainRate * dt
	if drained > drainable {
		drained = drainable
	}
	o.drainedTotal += drained
	// Invariant: cacheLevel == ingestedTotal - drainedTotal, exactly. Never
	// clamp it independently — that would strand bytes and leave flush
	// watermarks unreachable. Event-time rounding can overshoot CacheBytes
	// by a sub-byte sliver, which plan() already treats as "full".
	o.cacheLevel = drainable - drained
	if o.cacheLevel < 0 {
		o.cacheLevel = 0
	}

	o.fireCompletions(anyDone)
}

// fireCompletions completes exhausted flows (only scanned when the caller's
// integration pass saw one hit zero) and satisfied flush waiters.
//
//repro:hotpath
func (o *OST) fireCompletions(anyDone bool) {
	if anyDone {
		keep := o.flows[:0]
		for _, f := range o.flows {
			if f.remaining <= completionEps {
				o.Stats.WritesFinished++
				done := f.done
				*f = flow{}
				o.freeFlows = append(o.freeFlows, f)
				if done != nil {
					done()
				}
			} else {
				keep = append(keep, f)
			}
		}
		if len(keep) != len(o.flows) {
			o.planValid = false
			// Zero out the tail so recycled flows are not doubly referenced.
			for i := len(keep); i < len(o.flows); i++ {
				o.flows[i] = nil
			}
			o.flows = keep
		}
	}

	if len(o.waiters) > 0 {
		keepW := o.waiters[:0]
		for _, w := range o.waiters {
			if o.drainedTotal+completionEps >= w.watermark {
				w.wake()
			} else {
				keepW = append(keepW, w)
			}
		}
		o.waiters = keepW
	}
	o.Stats.BytesIngested = o.ingestedTotal
	o.Stats.BytesDrained = o.drainedTotal
}

// recompute re-plans rates and schedules the next boundary event. Must be
// called after advance whenever membership or load changed. When the plan
// signature is intact — no membership or knob change since the last plan and
// the cache-full regime unchanged — the planned rates are reused and only
// the next boundary is recomputed (flush-watermark boundaries and no-op
// wakeups hit this path).
//
//repro:hotpath
func (o *OST) recompute() {
	var sumInflow, drain float64
	if o.planValid && o.planCacheFull == (o.cacheLevel >= o.effCache-completionEps) {
		sumInflow, drain = o.planInflow, o.drainRate
	} else {
		sumInflow, drain = o.plan()
	}
	// Effective drain is limited by what is available (dirty + inflow).
	o.drainRate = drain

	next := math.Inf(1)

	// Flow completions.
	for _, f := range o.flows {
		if f.rate > 0 {
			if t := f.remaining / f.rate; t < next {
				next = t
			}
		}
	}

	// Cache filling to the currently effective capacity (rate change
	// boundary; the capacity shrinks while external streams hold cache).
	fill := sumInflow - drain
	if o.cacheLevel > 0 || sumInflow > drain {
		if fill > 0 && o.cacheLevel < o.effCache {
			if t := (o.effCache - o.cacheLevel) / fill; t < next {
				next = t
			}
		}
	}

	// Flush waiters: time until the earliest watermark drains. The drain
	// consumes dirty bytes first (FIFO), so progress toward a watermark w
	// is bounded by drainedTotal growth at rate min(drain, available).
	if len(o.waiters) > 0 && drain > 0 {
		minW := math.Inf(1)
		for _, w := range o.waiters {
			if w.watermark < minW {
				minW = w.watermark
			}
		}
		needed := minW - o.drainedTotal
		if needed <= completionEps {
			next = 0
		} else {
			// drainedTotal advances at rate min(drain, cacheLevel/dt+inflow)
			// ≈ drain while dirty bytes remain; the watermark is within the
			// dirty region by construction.
			if t := needed / drain; t < next {
				next = t
			}
		}
	}

	if math.IsInf(next, 1) {
		o.boundary.Cancel()
		o.boundary = simkernel.Timer{}
		return // quiescent
	}
	// Clamp to one virtual nanosecond: crossing times smaller than the
	// clock resolution would otherwise schedule zero-duration events and
	// spin at a single timestamp.
	if next < 1e-9 {
		next = 1e-9
	}
	// Flow-completion and watermark crossings are fixed absolute times:
	// while rates hold, successive recomputes re-derive the same deadline.
	// Keeping the pending timer then spares the queue a lazy-cancelled
	// corpse and a reinsertion per recompute — the dominant event churn.
	if at := o.k.Now() + simkernel.FromSeconds(next); !o.boundary.Active() || o.boundaryAt != at {
		o.boundary.Cancel()
		o.boundary = o.k.AfterSeconds(next, o.onBoundary)
		o.boundaryAt = at
	}
}

// String renders a compact diagnostic view.
func (o *OST) String() string {
	return fmt.Sprintf("OST%03d{flows=%d ext=%d slow=%.2f cache=%.0fMB}",
		o.ID, len(o.flows), o.extStreams, o.slowFactor, o.cacheLevel/MB)
}

// DebugState dumps internal fluid state for diagnostics.
func (o *OST) DebugState() string {
	return fmt.Sprintf("flows=%d waiters=%d cache=%.6f ingested=%.6f drained=%.6f drainRate=%.3f boundaryActive=%v",
		len(o.flows), len(o.waiters), o.cacheLevel, o.ingestedTotal, o.drainedTotal, o.drainRate, o.boundary.Active())
}
