package pfs

// Per-job traffic attribution. Co-scheduled applications share one file
// system; to reason about cross-job contention (who slowed whom, and by how
// much) the storage layer attributes every client-path operation to the job
// id carried by the issuing simulation process (simkernel.Proc.Job). Job 0
// is the unattributed bucket: single-application runs, interference
// generators and infrastructure processes all land there, so the existing
// experiments see identical behaviour and pay only an integer index per
// operation.
//
// Attribution covers the client path — OST.Write, File.ReadAt and MDS.Op.
// Server-side helpers that move data on a job's behalf under their own
// processes (staging-node drains) account to their own process's job tag,
// which is 0 unless the helper was spawned with one.

// JobIO aggregates one job's storage traffic.
type JobIO struct {
	// BytesWritten is the total bytes accepted from the job's writes.
	BytesWritten float64
	// BytesRead is the total bytes served to the job's reads.
	BytesRead float64
	// WriteOps counts the job's write operations.
	WriteOps int
	// ReadOps counts the job's read operations (per-chunk).
	ReadOps int
	// MetaOps counts the job's metadata operations (create/open/close).
	MetaOps int
}

// accountWrite charges a write to job on this OST. The per-job table is a
// dense slice indexed by job id, grown on first sight of a job; steady-state
// accounting is a bounds check and two adds.
//
//repro:hotpath
func (o *OST) accountWrite(job int, bytes float64) {
	for len(o.jobAcct) <= job {
		o.jobAcct = append(o.jobAcct, JobIO{})
	}
	a := &o.jobAcct[job]
	a.BytesWritten += bytes
	a.WriteOps++
}

// accountRead charges a read chunk to job on this OST.
//
//repro:hotpath
func (o *OST) accountRead(job int, bytes float64) {
	for len(o.jobAcct) <= job {
		o.jobAcct = append(o.jobAcct, JobIO{})
	}
	a := &o.jobAcct[job]
	a.BytesRead += bytes
	a.ReadOps++
}

// JobIO returns this OST's accumulated traffic for job (zero value if the
// job never touched this target).
func (o *OST) JobIO(job int) JobIO {
	if job < 0 || job >= len(o.jobAcct) {
		return JobIO{}
	}
	return o.jobAcct[job]
}

// accountOp charges a metadata operation to job.
//
//repro:hotpath
func (m *MDS) accountOp(job int) {
	for len(m.jobOps) <= job {
		m.jobOps = append(m.jobOps, 0)
	}
	m.jobOps[job]++
}

// JobOps returns the number of metadata operations job has issued.
func (m *MDS) JobOps(job int) int {
	if job < 0 || job >= len(m.jobOps) {
		return 0
	}
	return m.jobOps[job]
}

// RegisterJob names a new job and returns its id (ids start at 1; 0 is the
// unattributed bucket). Tag the job's processes with the id — via
// simkernel.Kernel.SpawnJob or mpisim.Options.Job — and the file system
// attributes their traffic. Registration order is part of the simulation's
// deterministic state: co-scheduled jobs must be registered in spec order.
func (fs *FileSystem) RegisterJob(name string) int {
	fs.jobs = append(fs.jobs, name)
	return len(fs.jobs)
}

// JobCount returns the number of registered jobs.
func (fs *FileSystem) JobCount() int { return len(fs.jobs) }

// JobName returns the registered name for a job id ("" for the
// unattributed bucket or unknown ids).
func (fs *FileSystem) JobName(id int) string {
	if id < 1 || id > len(fs.jobs) {
		return ""
	}
	return fs.jobs[id-1]
}

// JobIO aggregates job's traffic across every OST and the MDS.
func (fs *FileSystem) JobIO(job int) JobIO {
	var t JobIO
	for _, o := range fs.OSTs {
		a := o.JobIO(job)
		t.BytesWritten += a.BytesWritten
		t.BytesRead += a.BytesRead
		t.WriteOps += a.WriteOps
		t.ReadOps += a.ReadOps
	}
	t.MetaOps = fs.MDS.JobOps(job)
	return t
}
