package pfs

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/rngx"
	"repro/internal/simkernel"
)

// Layout describes how a file is striped across OSTs.
type Layout struct {
	// OSTs explicitly lists the storage targets (by index) the file stripes
	// over, in round-robin order. When nil, the file system allocates
	// StripeCount consecutive targets round-robin (Lustre-style).
	OSTs []int

	// StripeCount is used when OSTs is nil; zero means the configured
	// default stripe count.
	StripeCount int

	// StripeSize in bytes; zero means the configured default.
	StripeSize int64
}

// File is an open file handle. A File is not safe for use outside the
// owning kernel's handoff discipline.
type File struct {
	fs      *FileSystem
	Name    string
	osts    []int
	stripe  int64
	size    int64
	touched map[int]struct{}
	closed  bool
}

// FileSystem is a simulated parallel file system instance.
type FileSystem struct {
	K    *simkernel.Kernel //repro:reset-skip immutable wiring to the owning kernel
	Cfg  Config
	OSTs []*OST
	MDS  *MDS

	rng     *rngx.Source
	files   map[string]*File
	nextOST int
	// jobs names the registered jobs for per-job traffic attribution
	// (ids are index+1; 0 is the unattributed bucket); see jobacct.go.
	jobs []string
}

// New constructs a file system on kernel k. cfg is validated and defaulted.
func New(k *simkernel.Kernel, cfg Config) (*FileSystem, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rngx.NewNamed(cfg.Seed, "pfs")
	fs := &FileSystem{
		K:     k,
		Cfg:   cfg,
		rng:   rng,
		files: make(map[string]*File),
	}
	fs.OSTs = make([]*OST, cfg.NumOSTs)
	for i := range fs.OSTs {
		fs.OSTs[i] = newOST(k, &fs.Cfg, i)
	}
	fs.MDS = newMDS(k, &fs.Cfg, rng.Derive("mds"))
	return fs, nil
}

// Reset re-arms the file system for a new configuration without rebuilding
// it, producing a world bit-identical to New(k, cfg) on a fresh kernel: the
// RNG streams are reseeded in the exact construction draw order, the OST set
// is resized and each target's fluid state zeroed, the MDS re-sized, and the
// namespace cleared. The owning kernel must already have been Reset (clock at
// zero, no pending events). The OST count may differ from the previous run;
// every other knob is taken from cfg just as New does.
func (fs *FileSystem) Reset(cfg Config) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	fs.Cfg = cfg // OSTs and MDS read through &fs.Cfg, so this re-points every knob
	fs.rng.ReseedNamed(cfg.Seed, "pfs")
	if cfg.NumOSTs < len(fs.OSTs) {
		for i := cfg.NumOSTs; i < len(fs.OSTs); i++ {
			fs.OSTs[i] = nil
		}
		fs.OSTs = fs.OSTs[:cfg.NumOSTs]
	}
	for _, o := range fs.OSTs {
		o.reset()
	}
	for i := len(fs.OSTs); i < cfg.NumOSTs; i++ {
		fs.OSTs = append(fs.OSTs, newOST(fs.K, &fs.Cfg, i))
	}
	// Construction order parity with New: building the OSTs draws nothing,
	// then deriving the MDS stream consumes exactly one Int63.
	fs.MDS.reset(&fs.Cfg, fs.rng.Int63())
	clear(fs.files)
	fs.nextOST = 0
	fs.jobs = fs.jobs[:0]
	return nil
}

// MustNew is New for tests and examples where the config is known-good.
func MustNew(k *simkernel.Kernel, cfg Config) *FileSystem {
	fs, err := New(k, cfg)
	if err != nil {
		panic(err)
	}
	return fs
}

// OST returns the storage target with index i.
func (fs *FileSystem) OST(i int) *OST { return fs.OSTs[i] }

// resolveLayout turns a Layout into a concrete OST list and stripe size.
func (fs *FileSystem) resolveLayout(l Layout) ([]int, int64, error) {
	stripeSize := l.StripeSize
	if stripeSize <= 0 {
		stripeSize = fs.Cfg.StripeSize
	}
	if len(l.OSTs) > 0 {
		if len(l.OSTs) > fs.Cfg.MaxStripeCount {
			return nil, 0, fmt.Errorf("pfs: stripe count %d exceeds file system limit %d",
				len(l.OSTs), fs.Cfg.MaxStripeCount)
		}
		osts := append([]int(nil), l.OSTs...)
		for _, i := range osts {
			if i < 0 || i >= len(fs.OSTs) {
				return nil, 0, fmt.Errorf("pfs: OST index %d out of range [0,%d)", i, len(fs.OSTs))
			}
		}
		return osts, stripeSize, nil
	}
	count := l.StripeCount
	if count <= 0 {
		count = fs.Cfg.DefaultStripeCount
	}
	if count > fs.Cfg.MaxStripeCount {
		return nil, 0, fmt.Errorf("pfs: stripe count %d exceeds file system limit %d",
			count, fs.Cfg.MaxStripeCount)
	}
	if count > len(fs.OSTs) {
		return nil, 0, fmt.Errorf("pfs: stripe count %d exceeds OST count %d", count, len(fs.OSTs))
	}
	osts := make([]int, count)
	for i := 0; i < count; i++ {
		osts[i] = (fs.nextOST + i) % len(fs.OSTs)
	}
	fs.nextOST = (fs.nextOST + count) % len(fs.OSTs)
	return osts, stripeSize, nil
}

// Create performs a metadata create (queueing at the MDS) and returns a
// handle. Creating an existing name truncates it, like O_TRUNC.
func (fs *FileSystem) Create(p *simkernel.Proc, name string, layout Layout) (*File, error) {
	osts, stripeSize, err := fs.resolveLayout(layout)
	if err != nil {
		return nil, err
	}
	fs.MDS.Op(p)
	f := &File{
		fs:      fs,
		Name:    name,
		osts:    osts,
		stripe:  stripeSize,
		touched: make(map[int]struct{}),
	}
	fs.files[name] = f
	return f, nil
}

// Open performs a metadata open of an existing file.
func (fs *FileSystem) Open(p *simkernel.Proc, name string) (*File, error) {
	f, ok := fs.files[name]
	if !ok {
		fs.MDS.Op(p) // failed lookups still cost the MDS
		return nil, fmt.Errorf("pfs: no such file %q", name)
	}
	fs.MDS.Op(p)
	h := *f
	h.closed = false
	return &h, nil
}

// Exists reports whether a file name is known (no simulated cost).
func (fs *FileSystem) Exists(name string) bool {
	_, ok := fs.files[name]
	return ok
}

// Size returns the current size of the file.
func (f *File) Size() int64 { return f.size }

// StripeOSTs returns the OST indices the file stripes over.
func (f *File) StripeOSTs() []int { return append([]int(nil), f.osts...) }

// StripeSize returns the file's stripe width in bytes.
func (f *File) StripeSize() int64 { return f.stripe }

// ostForStripe maps a stripe index to the owning OST index.
func (f *File) ostForStripe(stripeIdx int64) int {
	return f.osts[int(stripeIdx%int64(len(f.osts)))]
}

// chunk is one contiguous piece of a write destined for a single OST.
type chunk struct {
	ost   int
	bytes int64
}

// chunksFor decomposes a [offset, offset+length) write into per-stripe
// chunks, merging consecutive chunks on the same OST, then coarsening to at
// most MaxChunksPerOp pieces (the coarsening keeps per-OST byte totals
// approximately proportional; it exists to bound event counts on terabyte
// writes and is bypassed for single-OST files).
func (f *File) chunksFor(offset, length int64) []chunk {
	return f.appendChunks(nil, offset, length)
}

// appendChunks is chunksFor appending into dst, reusing its capacity — the
// continuation ops (cont.go) hold a scratch chunk list per client so
// steady-state writes decompose without allocating.
func (f *File) appendChunks(dst []chunk, offset, length int64) []chunk {
	if length <= 0 {
		return dst
	}
	if len(f.osts) == 1 {
		return append(dst, chunk{ost: f.osts[0], bytes: length})
	}
	base := len(dst)
	pos := offset
	end := offset + length
	for pos < end {
		sIdx := pos / f.stripe
		sEnd := (sIdx + 1) * f.stripe
		if sEnd > end {
			sEnd = end
		}
		o := f.ostForStripe(sIdx)
		n := sEnd - pos
		if len(dst) > base && dst[len(dst)-1].ost == o {
			dst[len(dst)-1].bytes += n
		} else {
			dst = append(dst, chunk{ost: o, bytes: n})
		}
		pos = sEnd
	}
	max := f.fs.Cfg.MaxChunksPerOp
	if max > 0 && len(dst)-base > max {
		coarse := coarsen(dst[base:], max)
		dst = append(dst[:base], coarse...)
	}
	return dst
}

// coarsen merges neighbouring chunks until at most max remain, assigning
// each merged chunk to the OST that contributed the most bytes.
func coarsen(in []chunk, max int) []chunk {
	groups := max
	out := make([]chunk, 0, groups)
	per := int(math.Ceil(float64(len(in)) / float64(groups)))
	for i := 0; i < len(in); i += per {
		j := i + per
		if j > len(in) {
			j = len(in)
		}
		byOST := map[int]int64{}
		var total int64
		for _, c := range in[i:j] {
			byOST[c.ost] += c.bytes
			total += c.bytes
		}
		best, bestBytes := in[i].ost, int64(-1)
		// Deterministic winner: iterate sorted keys.
		keys := make([]int, 0, len(byOST))
		for k := range byOST {
			keys = append(keys, k)
		}
		sort.Ints(keys)
		for _, k := range keys {
			if byOST[k] > bestBytes {
				best, bestBytes = k, byOST[k]
			}
		}
		out = append(out, chunk{ost: best, bytes: total})
	}
	return out
}

// WriteAt writes length bytes at offset, blocking the calling process until
// every byte has been accepted by the storage targets. Chunks are issued
// sequentially, modelling a single POSIX/MPI-IO client stream working
// through its file region. If a chunk's target is Dead the call returns
// ErrTargetDown after the configured timeout; bytes already accepted by
// earlier chunks stay accepted, but the handle's size is not advanced.
func (f *File) WriteAt(p *simkernel.Proc, offset, length int64) error {
	if f.closed {
		panic(fmt.Sprintf("pfs: write to closed file %q", f.Name))
	}
	if length < 0 {
		panic("pfs: negative write length")
	}
	for _, c := range f.chunksFor(offset, length) {
		f.touched[c.ost] = struct{}{}
		if err := f.fs.OSTs[c.ost].Write(p, float64(c.bytes)); err != nil {
			return err
		}
	}
	if end := offset + length; end > f.size {
		f.size = end
	}
	if master := f.fs.files[f.Name]; master != nil && f.size > master.size {
		master.size = f.size
	}
	return nil
}

// Append writes length bytes at the file's current end (single-writer
// convenience; concurrent appenders should coordinate offsets themselves as
// the adaptive method does).
func (f *File) Append(p *simkernel.Proc, length int64) (int64, error) {
	off := f.size
	return off, f.WriteAt(p, off, length)
}

// Flush blocks until all bytes this handle has written are on disk. Targets
// are waited on sequentially; draining proceeds in parallel across OSTs, so
// the total wait is governed by the slowest target.
func (f *File) Flush(p *simkernel.Proc) {
	osts := make([]int, 0, len(f.touched))
	for o := range f.touched {
		osts = append(osts, o)
	}
	sort.Ints(osts)
	for _, o := range osts {
		f.fs.OSTs[o].Flush(p)
	}
}

// Close flushes nothing (callers flush explicitly, as the paper's
// methodology does) and performs the metadata close.
func (f *File) Close(p *simkernel.Proc) {
	if f.closed {
		return
	}
	f.closed = true
	f.fs.MDS.Op(p)
}

// ReadAt models reading length bytes at offset. Reads bypass the write
// cache and share disk bandwidth with ongoing writes; the model is coarse
// (rate fixed at issue time per chunk) since the paper's experiments are
// write-dominated. A chunk against a Dead target hangs for the configured
// timeout and returns ErrTargetDown; a Degraded or Rebuilding target serves
// the read at its health-reduced bandwidth.
func (f *File) ReadAt(p *simkernel.Proc, offset, length int64) error {
	if length <= 0 {
		return nil
	}
	for _, c := range f.chunksFor(offset, length) {
		o := f.fs.OSTs[c.ost]
		o.accountRead(p.Job(), float64(c.bytes))
		if o.Health() == Dead {
			p.Sleep(f.fs.Cfg.WriteLatency)
			p.SleepSeconds(f.fs.Cfg.DeadTimeout)
			o.Stats.ReadsFailed++
			return o.downErr
		}
		streams := o.ActiveFlows() + o.ExternalStreams() + 1
		rate := f.fs.Cfg.DiskBW * f.fs.Cfg.DiskEff.Eval(streams) * o.SlowFactor() * o.HealthFactor() / float64(streams)
		if cap := f.fs.Cfg.ClientCap; rate > cap {
			rate = cap
		}
		p.Sleep(f.fs.Cfg.WriteLatency)
		p.SleepSeconds(float64(c.bytes) / rate)
	}
	return nil
}

// TotalBytesDrained sums drained bytes across all OSTs (diagnostics).
func (fs *FileSystem) TotalBytesDrained() float64 {
	var t float64
	for _, o := range fs.OSTs {
		o.advance()
		t += o.drainedTotal
	}
	return t
}

// TotalBytesIngested sums accepted bytes across all OSTs (diagnostics).
func (fs *FileSystem) TotalBytesIngested() float64 {
	var t float64
	for _, o := range fs.OSTs {
		o.advance()
		t += o.ingestedTotal
	}
	return t
}
