// Package pfs models a petascale parallel file system of the kind the paper
// measures (Lustre on Jaguar and Franklin, PanFS on Sandia's XTP): a set of
// object storage targets (OSTs) with write-back caches and contention-
// sensitive disk bandwidth, a metadata server with a bounded service queue,
// and striped files.
//
// Each OST is a fluid-flow server. Writes are accepted into the OST cache at
// network ingest speed while the cache has room and are throttled to the
// disk drain rate once it fills; the drain rate itself degrades as more
// streams interleave on one target (internal interference) and as external
// load — other jobs, analysis clusters — competes for the same spindles
// (external interference). This reproduces the three regimes visible in the
// paper's Figure 1: cache-absorbed small writes that keep scaling, a
// disk-bound plateau, and an over-contended decline.
package pfs

import (
	"fmt"
	"math"
	"time"
)

// Units for readability in configuration code.
const (
	KB = 1024.0
	MB = 1024.0 * KB
	GB = 1024.0 * MB
	TB = 1024.0 * GB
)

// EffCurve is a parametric efficiency curve eff(n) = 1 / (1 + Alpha*(n-1)^Beta)
// describing how a shared resource's useful bandwidth degrades as n streams
// interleave on it. Alpha sets the strength, Beta the growth of the penalty.
// eff(1) is always 1.
type EffCurve struct {
	Alpha float64
	Beta  float64
}

// Eval returns the efficiency for n concurrent streams (n < 1 is clamped).
func (c EffCurve) Eval(n int) float64 {
	if n <= 1 {
		return 1
	}
	if c.Alpha <= 0 {
		return 1
	}
	return 1 / (1 + c.Alpha*math.Pow(float64(n-1), c.Beta))
}

// Config describes a file system instance. Zero values are filled in by
// Validate with defaults modelled on the paper's Jaguar scratch system.
type Config struct {
	// NumOSTs is the number of object storage targets (672 on Jaguar's
	// scratch system; the paper's experiments use 512 of them).
	NumOSTs int

	// DiskBW is the per-OST nominal disk write bandwidth in bytes/second
	// (the paper cites ~180 MB/sec theoretical per storage target).
	DiskBW float64

	// CacheBytes is the per-OST write-back cache capacity (the paper
	// mentions a 2 GB storage-target cache).
	CacheBytes float64

	// IngestBW is the per-OST network-side acceptance bandwidth in
	// bytes/second; cache-regime writes share it.
	IngestBW float64

	// ClientCap is the maximum bandwidth of a single client write stream in
	// bytes/second. A single POSIX stream cannot saturate an OST, which is
	// why aggregate bandwidth initially rises with more writers per target.
	ClientCap float64

	// DiskEff describes how the drain bandwidth degrades with interleaved
	// streams (internal interference on one target).
	DiskEff EffCurve

	// NetEff describes how the ingest bandwidth degrades with concurrent
	// streams (OSS/network contention).
	NetEff EffCurve

	// WriteLatency is the fixed per-write-operation overhead (RPC setup,
	// lock acquisition). It dominates tiny writes.
	WriteLatency time.Duration

	// MaxStripeCount is the file-system limit on OSTs per file (160 for the
	// Lustre 1.6 release the paper measures — the load-bearing constraint
	// for the MPI-IO baseline).
	MaxStripeCount int

	// DefaultStripeCount is the stripe count applied when a file is created
	// without an explicit layout (4 on the paper's Jaguar configuration).
	DefaultStripeCount int

	// StripeSize is the stripe width in bytes (Lustre default 1 MB; Jaguar
	// commonly ran 4 MB).
	StripeSize int64

	// MaxChunksPerOp bounds how many stripe-chunk operations a single
	// client write is decomposed into. Full per-stripe decomposition is
	// exact but produces millions of events for terabyte outputs; bounding
	// it coalesces adjacent stripes into larger model chunks while
	// preserving the concurrency structure. Zero means no bound.
	MaxChunksPerOp int

	// MDSCapacity is the number of metadata operations the MDS services
	// concurrently; additional requests queue FIFO.
	MDSCapacity int

	// MDSServiceMean is the mean metadata service time in seconds, and
	// MDSServiceCV its coefficient of variation (lognormal service).
	MDSServiceMean float64
	MDSServiceCV   float64

	// DeadTimeout is how long (seconds) a client operation against a Dead
	// target hangs before it is abandoned with ErrTargetDown — the
	// client-side RPC timeout. Scenario failure scripts override it.
	DeadTimeout float64

	// Seed drives all stochastic components derived from this file system.
	Seed int64
}

// Validate fills defaults and reports configuration errors.
func (c *Config) Validate() error {
	if c.NumOSTs <= 0 {
		c.NumOSTs = 512
	}
	if c.DiskBW <= 0 {
		c.DiskBW = 180 * MB
	}
	if c.CacheBytes < 0 {
		return fmt.Errorf("pfs: negative cache size")
	}
	if c.CacheBytes == 0 {
		c.CacheBytes = 2 * GB
	}
	if c.IngestBW <= 0 {
		c.IngestBW = 400 * MB
	}
	if c.ClientCap <= 0 {
		c.ClientCap = 55 * MB
	}
	if c.DiskEff == (EffCurve{}) {
		c.DiskEff = EffCurve{Alpha: 0.030, Beta: 1.05}
	}
	if c.NetEff == (EffCurve{}) {
		c.NetEff = EffCurve{Alpha: 0.004, Beta: 1.1}
	}
	if c.WriteLatency < 0 {
		return fmt.Errorf("pfs: negative write latency")
	}
	if c.WriteLatency == 0 {
		c.WriteLatency = 2 * time.Millisecond
	}
	if c.MaxStripeCount <= 0 {
		c.MaxStripeCount = 160
	}
	if c.DefaultStripeCount <= 0 {
		c.DefaultStripeCount = 4
	}
	if c.DefaultStripeCount > c.MaxStripeCount {
		return fmt.Errorf("pfs: default stripe count %d exceeds max %d",
			c.DefaultStripeCount, c.MaxStripeCount)
	}
	if c.StripeSize <= 0 {
		c.StripeSize = 4 * 1024 * 1024
	}
	if c.MaxChunksPerOp < 0 {
		return fmt.Errorf("pfs: negative MaxChunksPerOp")
	}
	if c.MaxChunksPerOp == 0 {
		c.MaxChunksPerOp = 16
	}
	if c.MDSCapacity <= 0 {
		c.MDSCapacity = 16
	}
	if c.MDSServiceMean <= 0 {
		c.MDSServiceMean = 0.005
	}
	if c.MDSServiceCV < 0 {
		return fmt.Errorf("pfs: negative MDS service CV")
	}
	if c.MDSServiceCV == 0 {
		c.MDSServiceCV = 0.6
	}
	if c.DeadTimeout < 0 {
		return fmt.Errorf("pfs: negative dead timeout")
	}
	if c.DeadTimeout == 0 {
		c.DeadTimeout = 30
	}
	return nil
}
