package pfs

import (
	"errors"
	"fmt"
	"math"
	"strings"
	"testing"

	"repro/internal/simkernel"
)

// Tests for the OST/MDS health lifecycle: Dead targets fail newly issued
// client operations with ErrTargetDown after the configured timeout, stall
// in-flight transfers until revival, Rebuilding taxes drain bandwidth, and
// the per-state residence clock adds up.

func healthTestConfig() Config {
	return Config{NumOSTs: 4, Seed: 11, DeadTimeout: 2}
}

func TestDeadOSTWriteReturnsErrTargetDown(t *testing.T) {
	k := simkernel.New()
	fs := MustNew(k, healthTestConfig())
	fs.OSTs[0].SetHealth(Dead, 1)
	var err error
	var elapsed float64
	k.Spawn("w", func(p *simkernel.Proc) {
		f, cerr := fs.Create(p, "out", Layout{OSTs: []int{0}})
		if cerr != nil {
			t.Errorf("create: %v", cerr)
			return
		}
		start := k.Now()
		err = f.WriteAt(p, 0, 1<<20)
		elapsed = (k.Now() - start).Seconds()
	})
	k.Run()
	k.Shutdown()
	if !errors.Is(err, ErrTargetDown) {
		t.Fatalf("WriteAt error = %v, want ErrTargetDown", err)
	}
	var tde *TargetDownError
	if !errors.As(err, &tde) || tde.OST != 0 {
		t.Fatalf("error = %#v, want TargetDownError{OST: 0}", err)
	}
	if elapsed < 2 {
		t.Fatalf("write failed after %.3fs, want >= DeadTimeout (2s)", elapsed)
	}
	if got := fs.OSTs[0].Stats.WritesFailed; got != 1 {
		t.Fatalf("WritesFailed = %d, want 1", got)
	}
}

func TestDeadOSTReadReturnsErrTargetDown(t *testing.T) {
	k := simkernel.New()
	fs := MustNew(k, healthTestConfig())
	var err error
	k.Spawn("r", func(p *simkernel.Proc) {
		f, cerr := fs.Create(p, "in", Layout{OSTs: []int{1}})
		if cerr != nil {
			t.Errorf("create: %v", cerr)
			return
		}
		if werr := f.WriteAt(p, 0, 1<<20); werr != nil {
			t.Errorf("seed write: %v", werr)
		}
		f.Flush(p)
		fs.OSTs[1].SetHealth(Dead, 1)
		err = f.ReadAt(p, 0, 1<<20)
	})
	k.Run()
	k.Shutdown()
	if !errors.Is(err, ErrTargetDown) {
		t.Fatalf("ReadAt error = %v, want ErrTargetDown", err)
	}
	if got := fs.OSTs[1].Stats.ReadsFailed; got != 1 {
		t.Fatalf("ReadsFailed = %d, want 1", got)
	}
}

// TestInFlightWriteStallsUntilRevival pins the Lustre-style semantics for
// operations already in flight when a target dies: the transfer stalls at
// zero rate and resumes when the target revives, with no error surfaced.
func TestInFlightWriteStallsUntilRevival(t *testing.T) {
	elapsedWith := func(crash bool) (float64, error) {
		k := simkernel.New()
		cfg := healthTestConfig()
		cfg.CacheBytes = 1 // force drain-bound writes
		fs := MustNew(k, cfg)
		if crash {
			// Crash mid-transfer, revive 5 seconds later.
			k.AfterSeconds(0.5, func() { fs.OSTs[0].SetHealth(Dead, 1) })
			k.AfterSeconds(5.5, func() { fs.OSTs[0].SetHealth(Healthy, 1) })
		}
		var err error
		var el float64
		k.Spawn("w", func(p *simkernel.Proc) {
			f, cerr := fs.Create(p, "big", Layout{OSTs: []int{0}})
			if cerr != nil {
				err = cerr
				return
			}
			start := k.Now()
			err = f.WriteAt(p, 0, 256<<20)
			f.Flush(p)
			el = (k.Now() - start).Seconds()
		})
		k.Run()
		k.Shutdown()
		return el, err
	}
	clean, err := elapsedWith(false)
	if err != nil {
		t.Fatalf("clean run: %v", err)
	}
	stalled, err := elapsedWith(true)
	if err != nil {
		t.Fatalf("crashed run: %v", err)
	}
	if stalled < clean+4.5 {
		t.Fatalf("stalled run took %.3fs vs clean %.3fs; want >= %.3fs (5s outage)",
			stalled, clean, clean+4.5)
	}
}

// TestRebuildTaxSlowsDrain pins that Rebuilding consumes backend bandwidth:
// the same drain-bound write takes measurably longer under a rebuild tax.
func TestRebuildTaxSlowsDrain(t *testing.T) {
	elapsedWith := func(h HealthState, factor float64) float64 {
		k := simkernel.New()
		cfg := healthTestConfig()
		cfg.CacheBytes = 1
		fs := MustNew(k, cfg)
		fs.OSTs[0].SetHealth(h, factor)
		var el float64
		k.Spawn("w", func(p *simkernel.Proc) {
			f, err := fs.Create(p, "big", Layout{OSTs: []int{0}})
			if err != nil {
				t.Errorf("create: %v", err)
				return
			}
			start := k.Now()
			if werr := f.WriteAt(p, 0, 64<<20); werr != nil {
				t.Errorf("write: %v", werr)
			}
			f.Flush(p)
			el = (k.Now() - start).Seconds()
		})
		k.Run()
		k.Shutdown()
		return el
	}
	// A 0.9 rebuild tax drops the drain rate well below the client cap, so
	// the transfer becomes drain-bound and visibly slower.
	healthy := elapsedWith(Healthy, 1)
	rebuild := elapsedWith(Rebuilding, 0.1)
	if rebuild < healthy*2 {
		t.Fatalf("rebuild run %.3fs vs healthy %.3fs; want >= 2x slower", rebuild, healthy)
	}
}

func TestHealthSecondsAccounting(t *testing.T) {
	k := simkernel.New()
	fs := MustNew(k, healthTestConfig())
	o := fs.OSTs[2]
	k.AfterSeconds(1, func() { o.SetHealth(Dead, 1) })
	k.AfterSeconds(3, func() { o.SetHealth(Rebuilding, 0.5) })
	k.AfterSeconds(7, func() { o.SetHealth(Healthy, 1) })
	var got [NumHealthStates]float64
	k.AfterSeconds(10, func() { got = o.HealthSeconds() })
	k.Run()
	k.Shutdown()
	want := [NumHealthStates]float64{Healthy: 4, Dead: 2, Rebuilding: 4}
	for s := HealthState(0); s < NumHealthStates; s++ {
		if math.Abs(got[s]-want[s]) > 1e-9 {
			t.Fatalf("HealthSeconds[%v] = %v, want %v (all: %v)", s, got[s], want[s], got)
		}
	}
}

func TestMDSStallDelaysOps(t *testing.T) {
	k := simkernel.New()
	fs := MustNew(k, healthTestConfig())
	fs.MDS.Stall(simkernel.FromSeconds(3))
	var opened simkernel.Time
	k.Spawn("c", func(p *simkernel.Proc) {
		if _, err := fs.Create(p, "f", Layout{StripeCount: 1}); err != nil {
			t.Errorf("create: %v", err)
		}
		opened = k.Now()
	})
	k.Run()
	k.Shutdown()
	if opened < simkernel.FromSeconds(3) {
		t.Fatalf("create finished at %v, want >= 3s (stall window)", opened)
	}
	if fs.MDS.Stats.StallSeconds < 2.9 {
		t.Fatalf("StallSeconds = %v, want ~3", fs.MDS.Stats.StallSeconds)
	}
}

func TestSetHealthResetRestoresHealthy(t *testing.T) {
	k := simkernel.New()
	cfg := healthTestConfig()
	fs := MustNew(k, cfg)
	fs.OSTs[0].SetHealth(Dead, 1)
	fs.OSTs[1].SetHealth(Rebuilding, 0.25)
	fs.MDS.Stall(simkernel.FromSeconds(100))
	if err := fs.Reset(cfg); err != nil {
		t.Fatalf("reset: %v", err)
	}
	for i, o := range fs.OSTs {
		if o.Health() != Healthy || o.HealthFactor() != 1 {
			t.Fatalf("OST %d after reset: health=%v factor=%v", i, o.Health(), o.HealthFactor())
		}
		secs := o.HealthSeconds()
		for s, v := range secs {
			if HealthState(s) != Healthy && v != 0 {
				t.Fatalf("OST %d residence[%v]=%v after reset", i, HealthState(s), v)
			}
		}
	}
	if fs.MDS.StallUntil() != 0 {
		t.Fatalf("MDS stall survives reset: %v", fs.MDS.StallUntil())
	}
}

// healthFailCont reproduces the failing-write/failing-read client on the
// continuation engine so both engines can be diffed against each other.
type healthFailCont struct {
	pc  int
	fs  *FileSystem
	add func(what string)

	create CreateOp
	write  WriteOp
	read   ReadOp
	f      *File
}

func (m *healthFailCont) Step(c *simkernel.ContProc) bool {
	for {
		switch m.pc {
		case 0:
			m.create.BeginCreate(m.fs, "out", Layout{OSTs: []int{0}})
			m.pc = 1
		case 1:
			if !m.create.Step(c) {
				return false
			}
			if m.create.Err() != nil {
				panic(m.create.Err())
			}
			m.f = m.create.File()
			m.write.BeginWrite(m.f, 0, 1<<20)
			m.pc = 2
		case 2:
			if !m.write.Step(c) {
				return false
			}
			m.add(fmt.Sprintf("write1 err=%v", m.write.Err()))
			m.pc = 3
			c.SleepSeconds(1) // crash lands inside this window
			return false
		case 3:
			m.write.BeginWrite(m.f, 0, 1<<20)
			m.pc = 4
		case 4:
			if !m.write.Step(c) {
				return false
			}
			m.add(fmt.Sprintf("write2 err=%v", m.write.Err()))
			m.read.BeginRead(m.f, 0, 1<<19)
			m.pc = 5
		case 5:
			if !m.read.Step(c) {
				return false
			}
			m.add(fmt.Sprintf("read err=%v", m.read.Err()))
			return true
		}
	}
}

// TestContHealthFailureMatchesGoroutine pins engine equivalence on the
// failure path: a write that succeeds, a crash, then a failing write and a
// failing read must produce identical time-stamped outcomes on both engines.
func TestContHealthFailureMatchesGoroutine(t *testing.T) {
	run := func(cont bool) []string {
		k := simkernel.New()
		fs := MustNew(k, healthTestConfig())
		var log []string
		add := func(what string) {
			log = append(log, fmt.Sprintf("%v %s", k.Now(), what))
		}
		// Crash OST 0 between the first (clean) and second (failing) write.
		k.AfterSeconds(0.5, func() { fs.OSTs[0].SetHealth(Dead, 1) })
		if cont {
			k.SpawnCont("c", &healthFailCont{fs: fs, add: add})
		} else {
			k.Spawn("c", func(p *simkernel.Proc) {
				f, err := fs.Create(p, "out", Layout{OSTs: []int{0}})
				if err != nil {
					panic(err)
				}
				add(fmt.Sprintf("write1 err=%v", f.WriteAt(p, 0, 1<<20)))
				p.SleepSeconds(1) // crash lands inside this window
				add(fmt.Sprintf("write2 err=%v", f.WriteAt(p, 0, 1<<20)))
				add(fmt.Sprintf("read err=%v", f.ReadAt(p, 0, 1<<19)))
			})
		}
		k.Run()
		log = append(log, fmt.Sprintf("failed w=%d r=%d",
			fs.OSTs[0].Stats.WritesFailed, fs.OSTs[0].Stats.ReadsFailed))
		k.Shutdown()
		return log
	}
	g := run(false)
	c := run(true)
	if strings.Join(g, "\n") != strings.Join(c, "\n") {
		t.Fatalf("engines diverge on failure path\n--- goroutine ---\n%s\n--- continuation ---\n%s",
			strings.Join(g, "\n"), strings.Join(c, "\n"))
	}
	// And the failure must actually be observed.
	if !strings.Contains(strings.Join(g, "\n"), "write2 err=pfs: OST 0 is down") {
		t.Fatalf("expected write2 failure in log:\n%s", strings.Join(g, "\n"))
	}
}
