package pfs

import (
	"testing"

	"repro/internal/simkernel"
)

// mdsWorkload runs a small mixed metadata + data workload and returns its
// measured completion times plus the MDS service total (which exercises the
// reseeded lognormal stream).
func mdsWorkload(k *simkernel.Kernel, fs *FileSystem) (float64, float64, float64) {
	var t1, t2 float64
	k.Spawn("a", func(p *simkernel.Proc) {
		f, _ := fs.Create(p, "a", Layout{OSTs: []int{0, 1}, StripeSize: 100})
		f.WriteAt(p, 0, 1000)
		f.Flush(p)
		f.Close(p)
		t1 = p.Now().Seconds()
	})
	k.Spawn("b", func(p *simkernel.Proc) {
		f, _ := fs.Create(p, "b", Layout{StripeCount: 2})
		f.WriteAt(p, 0, 800)
		f.Flush(p)
		f.Close(p)
		t2 = p.Now().Seconds()
	})
	k.Run()
	return t1, t2, fs.MDS.Stats.TotalService
}

// TestFileSystemResetBitIdentical is the pfs layer's world-reuse contract: a
// Reset file system replays a workload bit-identically to a freshly built
// one — same completion times, same MDS service draws, clean namespace and
// round-robin allocator.
func TestFileSystemResetBitIdentical(t *testing.T) {
	cfg := flatConfig()
	cfg.Seed = 99

	fresh := func() (float64, float64, float64) {
		k := simkernel.New()
		fs := MustNew(k, cfg)
		defer k.Shutdown()
		return mdsWorkload(k, fs)
	}
	a1, a2, a3 := fresh()

	k := simkernel.New()
	defer k.Shutdown()
	dirty := flatConfig()
	dirty.Seed = 1234
	fs := MustNew(k, dirty)
	mdsWorkload(k, fs) // dirty the world with a different seed's run
	k.Reset()
	if err := fs.Reset(cfg); err != nil {
		t.Fatal(err)
	}
	if fs.Exists("a") || fs.Exists("b") {
		t.Fatal("Reset did not clear the namespace")
	}
	b1, b2, b3 := mdsWorkload(k, fs)
	if a1 != b1 || a2 != b2 || a3 != b3 {
		t.Fatalf("reset world diverged: fresh (%v,%v,%v) vs reused (%v,%v,%v)",
			a1, a2, a3, b1, b2, b3)
	}
}

// TestFileSystemResetResizesOSTs covers reuse across configurations whose
// target counts differ in both directions.
func TestFileSystemResetResizesOSTs(t *testing.T) {
	k := simkernel.New()
	defer k.Shutdown()
	cfg := flatConfig()
	cfg.Seed = 5
	fs := MustNew(k, cfg)

	grown := cfg
	grown.NumOSTs = 7
	if err := fs.Reset(grown); err != nil {
		t.Fatal(err)
	}
	if len(fs.OSTs) != 7 {
		t.Fatalf("grew to %d OSTs, want 7", len(fs.OSTs))
	}
	for i, o := range fs.OSTs {
		if o.ID != i {
			t.Fatalf("OST %d has ID %d", i, o.ID)
		}
	}

	shrunk := cfg
	shrunk.NumOSTs = 2
	if err := fs.Reset(shrunk); err != nil {
		t.Fatal(err)
	}
	if len(fs.OSTs) != 2 {
		t.Fatalf("shrank to %d OSTs, want 2", len(fs.OSTs))
	}
}

// TestFileSystemResetRejectsBadConfig keeps Reset's validation aligned with
// New's.
func TestFileSystemResetRejectsBadConfig(t *testing.T) {
	k := simkernel.New()
	defer k.Shutdown()
	fs := MustNew(k, flatConfig())
	bad := flatConfig()
	bad.CacheBytes = -1
	if err := fs.Reset(bad); err == nil {
		t.Fatal("Reset accepted a config New would reject")
	}
}

// TestFileSystemResetSteadyStateZeroAlloc gates the reuse claim at the pfs
// layer: resetting a warmed file system at a fixed seed allocates nothing.
func TestFileSystemResetSteadyStateZeroAlloc(t *testing.T) {
	k := simkernel.New()
	defer k.Shutdown()
	cfg := flatConfig()
	cfg.Seed = 77
	fs := MustNew(k, cfg)
	mdsWorkload(k, fs)
	k.Reset()
	if err := fs.Reset(cfg); err != nil { // warm the RNG seed caches
		t.Fatal(err)
	}
	got := testing.AllocsPerRun(100, func() {
		k.Reset()
		if err := fs.Reset(cfg); err != nil {
			t.Fatal(err)
		}
	})
	if got != 0 {
		t.Fatalf("warm FileSystem.Reset allocates %v allocs/op; want 0", got)
	}
}
