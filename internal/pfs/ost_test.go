package pfs

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/rngx"
	"repro/internal/simkernel"
)

// flatConfig returns a config with unit efficiency curves and zero latency
// so that tests can assert exact completion times.
func flatConfig() Config {
	return Config{
		NumOSTs:      4,
		DiskBW:       100,
		CacheBytes:   1000,
		IngestBW:     400,
		ClientCap:    50,
		DiskEff:      EffCurve{Alpha: 1e-12, Beta: 1}, // ≈1 but non-zero to avoid default fill
		NetEff:       EffCurve{Alpha: 1e-12, Beta: 1},
		WriteLatency: time.Nanosecond, // non-zero to avoid default fill
		MDSCapacity:  4,
	}
}

func almostT(t *testing.T, got, want, tol float64, msg string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Fatalf("%s: got %v, want %v (±%v)", msg, got, want, tol)
	}
}

func TestSingleWriteClientCapped(t *testing.T) {
	k := simkernel.New()
	fs := MustNew(k, flatConfig())
	var doneAt float64
	k.Spawn("w", func(p *simkernel.Proc) {
		fs.OST(0).Write(p, 500) // cache-regime rate = min(50, 400) = 50
		doneAt = p.Now().Seconds()
	})
	k.Run()
	k.Shutdown()
	almostT(t, doneAt, 10.0, 1e-6, "500 bytes at clientCap 50")
}

func TestCacheFullThrottlesToDiskRate(t *testing.T) {
	cfg := flatConfig()
	cfg.ClientCap = 200 // faster than disk so the cache fills
	k := simkernel.New()
	fs := MustNew(k, cfg)
	var doneAt float64
	k.Spawn("w", func(p *simkernel.Proc) {
		fs.OST(0).Write(p, 10000)
		doneAt = p.Now().Seconds()
	})
	k.Run()
	k.Shutdown()
	// Fill phase: rate 200, drain 100, fill rate 100 → cache (1000) full at
	// t=10 with 2000 bytes ingested. Then throttled to 100 B/s for the
	// remaining 8000 → completes at t=90.
	almostT(t, doneAt, 90.0, 1e-6, "cache-throttled write")
}

func TestFlushWaitsForDrain(t *testing.T) {
	cfg := flatConfig()
	cfg.ClientCap = 200
	k := simkernel.New()
	fs := MustNew(k, cfg)
	var flushedAt float64
	k.Spawn("w", func(p *simkernel.Proc) {
		fs.OST(0).Write(p, 10000)
		fs.OST(0).Flush(p)
		flushedAt = p.Now().Seconds()
	})
	k.Run()
	k.Shutdown()
	// All 10000 bytes on disk at 100 B/s → t=100 regardless of caching.
	almostT(t, flushedAt, 100.0, 1e-6, "flush completes when bytes hit disk")
}

func TestFlushOnCleanOSTReturnsImmediately(t *testing.T) {
	k := simkernel.New()
	fs := MustNew(k, flatConfig())
	var at float64 = -1
	k.Spawn("w", func(p *simkernel.Proc) {
		fs.OST(0).Flush(p)
		at = p.Now().Seconds()
	})
	k.Run()
	k.Shutdown()
	almostT(t, at, 0, 1e-9, "clean flush")
}

func TestTwoFlowsShareIngestFairly(t *testing.T) {
	cfg := flatConfig()
	cfg.IngestBW = 60 // below 2×clientCap so sharing binds
	k := simkernel.New()
	fs := MustNew(k, cfg)
	ends := make([]float64, 2)
	for i := 0; i < 2; i++ {
		i := i
		k.Spawn("w", func(p *simkernel.Proc) {
			fs.OST(0).Write(p, 300) // each gets 30 B/s
			ends[i] = p.Now().Seconds()
		})
	}
	k.Run()
	k.Shutdown()
	almostT(t, ends[0], 10.0, 1e-6, "flow 0 at fair share")
	almostT(t, ends[1], 10.0, 1e-6, "flow 1 at fair share")
}

func TestStaggeredFlowSpeedsUpAfterDeparture(t *testing.T) {
	cfg := flatConfig()
	cfg.IngestBW = 60
	k := simkernel.New()
	fs := MustNew(k, cfg)
	var end2 float64
	k.Spawn("w1", func(p *simkernel.Proc) {
		fs.OST(0).Write(p, 150) // 30 B/s shared → done at t=5
	})
	k.Spawn("w2", func(p *simkernel.Proc) {
		fs.OST(0).Write(p, 300)
		end2 = p.Now().Seconds()
	})
	k.Run()
	k.Shutdown()
	// w2: 150 bytes in first 5s at 30 B/s, remaining 150 at min(50,60)=50
	// → 3 more seconds → t=8.
	almostT(t, end2, 8.0, 1e-5, "flow accelerates when partner departs")
}

func TestExternalStreamsStealBandwidth(t *testing.T) {
	cfg := flatConfig()
	cfg.ClientCap = 400 // disk-bound quickly
	cfg.CacheBytes = 1  // effectively no cache
	k := simkernel.New()
	fs := MustNew(k, cfg)
	fs.OST(0).SetExternalStreams(1) // we get disk*1/2 = 50
	var doneAt float64
	k.Spawn("w", func(p *simkernel.Proc) {
		fs.OST(0).Write(p, 500)
		doneAt = p.Now().Seconds()
	})
	k.Run()
	k.Shutdown()
	almostT(t, doneAt, 10.0, 0.2, "external stream halves our disk share")
}

func TestSlowFactorDegradesDrain(t *testing.T) {
	cfg := flatConfig()
	cfg.ClientCap = 400
	cfg.CacheBytes = 1
	k := simkernel.New()
	fs := MustNew(k, cfg)
	fs.OST(0).SetSlowFactor(0.5) // disk now 50
	var doneAt float64
	k.Spawn("w", func(p *simkernel.Proc) {
		fs.OST(0).Write(p, 500)
		doneAt = p.Now().Seconds()
	})
	k.Run()
	k.Shutdown()
	almostT(t, doneAt, 10.0, 0.2, "slow factor halves drain")
}

func TestSlowFactorClamps(t *testing.T) {
	k := simkernel.New()
	fs := MustNew(k, flatConfig())
	fs.OST(0).SetSlowFactor(5)
	if got := fs.OST(0).SlowFactor(); got != 1 {
		t.Fatalf("slow factor = %v, want clamp to 1", got)
	}
	fs.OST(0).SetSlowFactor(-2)
	if got := fs.OST(0).SlowFactor(); got != 1e-3 {
		t.Fatalf("slow factor = %v, want clamp to 1e-3", got)
	}
	fs.OST(0).SetExternalStreams(-5)
	if got := fs.OST(0).ExternalStreams(); got != 0 {
		t.Fatalf("external streams = %v, want clamp to 0", got)
	}
}

func TestMidFlightInterferenceChangesRate(t *testing.T) {
	cfg := flatConfig()
	cfg.ClientCap = 400
	cfg.CacheBytes = 1
	k := simkernel.New()
	fs := MustNew(k, cfg)
	var doneAt float64
	k.Spawn("w", func(p *simkernel.Proc) {
		fs.OST(0).Write(p, 1000) // at 100 B/s would finish at t=10
		doneAt = p.Now().Seconds()
	})
	k.AfterSeconds(5, func() { fs.OST(0).SetSlowFactor(0.5) })
	k.Run()
	k.Shutdown()
	// 500 bytes in first 5 s, remaining 500 at 50 B/s → 10 more → t=15.
	almostT(t, doneAt, 15.0, 0.3, "mid-flight slowdown")
}

func TestEffCurve(t *testing.T) {
	c := EffCurve{Alpha: 0.05, Beta: 1}
	if c.Eval(1) != 1 || c.Eval(0) != 1 || c.Eval(-3) != 1 {
		t.Fatal("eff(≤1) must be 1")
	}
	if got := c.Eval(2); math.Abs(got-1/1.05) > 1e-12 {
		t.Fatalf("eff(2) = %v", got)
	}
	if c.Eval(10) >= c.Eval(5) {
		t.Fatal("efficiency must decrease with stream count")
	}
	if (EffCurve{}).Eval(100) != 1 {
		t.Fatal("zero curve must be identity")
	}
}

// waterFill is a test convenience: waterFillFactor with no cap scaling.
func waterFill(flows []*flow, budget float64) []float64 {
	return waterFillFactor(flows, budget, 1)
}

func TestWaterFill(t *testing.T) {
	mk := func(caps ...float64) []*flow {
		fl := make([]*flow, len(caps))
		for i, c := range caps {
			fl[i] = &flow{cap: c}
		}
		return fl
	}
	// Nobody capped: equal shares.
	r := waterFill(mk(100, 100), 60)
	almostT(t, r[0], 30, 1e-9, "share0")
	almostT(t, r[1], 30, 1e-9, "share1")
	// One capped below fair share: surplus flows to the other.
	r = waterFill(mk(10, 100), 60)
	almostT(t, r[0], 10, 1e-9, "capped flow")
	almostT(t, r[1], 50, 1e-9, "beneficiary flow")
	// All capped below budget.
	r = waterFill(mk(5, 5), 60)
	almostT(t, r[0], 5, 1e-9, "allcap0")
	almostT(t, r[1], 5, 1e-9, "allcap1")
}

func TestWaterFillConservesBudgetProperty(t *testing.T) {
	f := func(rawCaps []uint16, rawBudget uint16) bool {
		if len(rawCaps) == 0 {
			return true
		}
		flows := make([]*flow, len(rawCaps))
		var capSum float64
		for i, c := range rawCaps {
			flows[i] = &flow{cap: float64(c%1000) + 1}
			capSum += flows[i].cap
		}
		budget := float64(rawBudget%5000) + 1
		rates := waterFill(flows, budget)
		var sum float64
		for i, r := range rates {
			if r < -1e-9 || r > flows[i].cap+1e-9 {
				return false
			}
			sum += r
		}
		want := math.Min(budget, capSum)
		return math.Abs(sum-want) < 1e-6*(1+want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestConservationProperty(t *testing.T) {
	// Random bursts of writes followed by a flush must conserve bytes:
	// ingested == total written, drained == ingested after flush.
	f := func(seed int64) bool {
		rng := rngx.New(seed)
		cfg := flatConfig()
		cfg.ClientCap = 150
		cfg.CacheBytes = 500
		k := simkernel.New()
		fs := MustNew(k, cfg)
		wg := simkernel.NewWaitGroup(k)
		n := 2 + rng.Intn(6)
		var total float64
		for i := 0; i < n; i++ {
			size := float64(50 + rng.Intn(2000))
			start := rng.Float64() * 10
			total += size
			wg.Add(1)
			k.SpawnAt(simkernel.FromSeconds(start), "w", func(p *simkernel.Proc) {
				fs.OST(0).Write(p, size)
				wg.Done()
			})
		}
		ok := true
		k.Spawn("flusher", func(p *simkernel.Proc) {
			wg.Wait(p)
			fs.OST(0).Flush(p)
			ing := fs.TotalBytesIngested()
			dr := fs.TotalBytesDrained()
			if math.Abs(ing-total) > 1e-3*total+1e-3 {
				ok = false
			}
			if math.Abs(dr-ing) > 1e-3*total+1e-3 {
				ok = false
			}
		})
		k.Run()
		k.Shutdown()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestOSTDeterminism(t *testing.T) {
	run := func() []float64 {
		cfg := flatConfig()
		k := simkernel.New()
		fs := MustNew(k, cfg)
		var ends []float64
		for i := 0; i < 5; i++ {
			size := float64(100 * (i + 1))
			k.SpawnAt(simkernel.Time(i), "w", func(p *simkernel.Proc) {
				fs.OST(0).Write(p, size)
				ends = append(ends, p.Now().Seconds())
			})
		}
		k.Run()
		k.Shutdown()
		return ends
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic completion %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestStatsCounters(t *testing.T) {
	k := simkernel.New()
	fs := MustNew(k, flatConfig())
	for i := 0; i < 3; i++ {
		k.Spawn("w", func(p *simkernel.Proc) {
			fs.OST(1).Write(p, 100)
			fs.OST(1).Flush(p)
		})
	}
	k.Run()
	k.Shutdown()
	s := fs.OST(1).Stats
	if s.WritesStarted != 3 || s.WritesFinished != 3 {
		t.Fatalf("writes started/finished = %d/%d", s.WritesStarted, s.WritesFinished)
	}
	if s.MaxConcurrency != 3 {
		t.Fatalf("max concurrency = %d, want 3", s.MaxConcurrency)
	}
	if math.Abs(s.BytesIngested-300) > 1e-3 || math.Abs(s.BytesDrained-300) > 1e-3 {
		t.Fatalf("bytes ingested/drained = %v/%v", s.BytesIngested, s.BytesDrained)
	}
}

func TestZeroByteWriteCostsOnlyLatency(t *testing.T) {
	cfg := flatConfig()
	cfg.WriteLatency = time.Second
	k := simkernel.New()
	fs := MustNew(k, cfg)
	var at float64
	k.Spawn("w", func(p *simkernel.Proc) {
		fs.OST(0).Write(p, 0)
		at = p.Now().Seconds()
	})
	k.Run()
	k.Shutdown()
	almostT(t, at, 1.0, 1e-9, "zero-byte write")
}

func TestNegativeWritePanics(t *testing.T) {
	k := simkernel.New()
	fs := MustNew(k, flatConfig())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	fs.OST(0).StartWrite(-1, 0, nil)
}
