package pfs

import (
	"repro/internal/rngx"
	"repro/internal/simkernel"
)

// MDSStats aggregates metadata-server counters.
type MDSStats struct {
	OpsServed    int
	MaxQueue     int
	TotalService float64 // seconds of service time dispensed
	StallSeconds float64 // client wait attributable to MDS stall windows
}

// MDS models the metadata server: a bounded-concurrency FIFO service point
// with lognormal service times. Section II of the paper notes that metadata
// scalability is a separate, known problem (LWFS, partial serialization);
// here it matters because file open/create storms from tens of thousands of
// writers queue behind it, which the stagger-open technique mitigates.
type MDS struct {
	k    *simkernel.Kernel //repro:reset-skip immutable wiring to the owning kernel
	res  *simkernel.Resource
	src  *rngx.Source
	mean float64
	cv   float64
	// jobOps counts metadata operations per job id (index 0 =
	// unattributed); see jobacct.go.
	jobOps []int
	// stallUntil gates operation intake during an injected stall/failover
	// window (the MDS health story): requests arriving before it wait until
	// it passes. Zero (the zero-failure case) adds no events.
	stallUntil simkernel.Time
	Stats      MDSStats
}

func newMDS(k *simkernel.Kernel, cfg *Config, src *rngx.Source) *MDS {
	return &MDS{
		k:    k,
		res:  simkernel.NewResource(k, cfg.MDSCapacity),
		src:  src,
		mean: cfg.MDSServiceMean,
		cv:   cfg.MDSServiceCV,
	}
}

// reset re-arms the MDS for a new configuration in place: the service
// resource is re-sized, the service-time stream reseeded to the state
// newMDS's derived source would start in, and the counters cleared.
func (m *MDS) reset(cfg *Config, seed int64) {
	m.res.Reset(cfg.MDSCapacity)
	m.src.ReseedNamed(seed, "mds")
	m.mean = cfg.MDSServiceMean
	m.cv = cfg.MDSServiceCV
	for i := range m.jobOps {
		m.jobOps[i] = 0
	}
	m.jobOps = m.jobOps[:0]
	m.stallUntil = 0
	m.Stats = MDSStats{}
}

// Stall blocks metadata intake until the given absolute time: requests
// arriving inside the window queue behind it (an MDS failover pause). A
// later Stall extends the window; reviving early is done with Stall(0).
func (m *MDS) Stall(until simkernel.Time) { m.stallUntil = until }

// StallUntil reports the current stall window's end (zero when none).
func (m *MDS) StallUntil() simkernel.Time { return m.stallUntil }

// Op performs one metadata operation (open, create, stat, close) on behalf
// of process p, blocking for queueing plus service time.
func (m *MDS) Op(p *simkernel.Proc) {
	m.accountOp(p.Job())
	if m.stallUntil > m.k.Now() {
		m.Stats.StallSeconds += (m.stallUntil - m.k.Now()).Seconds()
		p.SleepUntil(m.stallUntil)
	}
	m.res.Acquire(p)
	svc := m.src.LognormalMeanCV(m.mean, m.cv)
	m.Stats.OpsServed++
	m.Stats.TotalService += svc
	if q := m.res.QueueLen(); q > m.Stats.MaxQueue {
		m.Stats.MaxQueue = q
	}
	p.SleepSeconds(svc)
	m.res.Release()
}

// QueueLen reports the current number of queued metadata requests.
func (m *MDS) QueueLen() int { return m.res.QueueLen() }
