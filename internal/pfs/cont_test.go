package pfs

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/simkernel"
)

// The engine-equivalence pin at the pfs level: the same client workload —
// create, two strided writes, flush, read, close, then reopen and read
// through a fresh handle — once on goroutine clients and once on
// continuation clients, against identically seeded file systems, must
// produce an identical time-stamped log and identical server-side
// statistics. This covers every cont op in cont.go, including op reuse
// across sequential calls.

func pfsContTestConfig() Config {
	return Config{NumOSTs: 6, Seed: 7}
}

func runPFSClientsGoroutine(n int) []string {
	k := simkernel.New()
	fs := MustNew(k, pfsContTestConfig())
	var log []string
	add := func(who, what string) {
		log = append(log, fmt.Sprintf("%v %s %s", k.Now(), who, what))
	}
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("f%d", i)
		k.SpawnJob(name, i+1, func(p *simkernel.Proc) {
			f, err := fs.Create(p, name, Layout{StripeCount: 2})
			if err != nil {
				panic(err)
			}
			add(name, "created")
			f.WriteAt(p, 0, 3*(1<<20))
			f.WriteAt(p, 3*(1<<20), (1 << 20))
			f.Flush(p)
			add(name, "flushed")
			f.ReadAt(p, 0, (1 << 20))
			f.Close(p)
			add(name, "closed")
			h, err := fs.Open(p, name)
			if err != nil {
				panic(err)
			}
			h.ReadAt(p, (1 << 20), (1 << 20))
			h.Close(p)
			add(name, fmt.Sprintf("reopened size=%d", h.Size()))
		})
	}
	k.Run()
	log = append(log, fmt.Sprintf("ingested=%.3f drained=%.3f mdsops=%d",
		fs.TotalBytesIngested(), fs.TotalBytesDrained(), fs.MDS.Stats.OpsServed))
	k.Shutdown()
	return log
}

// pfsClientCont is the continuation rendition of the client body above.
type pfsClientCont struct {
	pc   int
	fs   *FileSystem
	name string
	add  func(who, what string)

	create  CreateOp
	open    OpenOp
	write   WriteOp
	flush   FlushOp
	read    ReadOp
	closeOp CloseOp
	f       *File
}

func (m *pfsClientCont) Step(c *simkernel.ContProc) bool {
	for {
		switch m.pc {
		case 0:
			m.create.BeginCreate(m.fs, m.name, Layout{StripeCount: 2})
			m.pc = 1
		case 1:
			if !m.create.Step(c) {
				return false
			}
			if m.create.Err() != nil {
				panic(m.create.Err())
			}
			m.f = m.create.File()
			m.add(m.name, "created")
			m.write.BeginWrite(m.f, 0, 3*(1<<20))
			m.pc = 2
		case 2:
			if !m.write.Step(c) {
				return false
			}
			m.write.BeginWrite(m.f, 3*(1<<20), (1 << 20))
			m.pc = 3
		case 3:
			if !m.write.Step(c) {
				return false
			}
			m.flush.BeginFlush(m.f)
			m.pc = 4
		case 4:
			if !m.flush.Step(c) {
				return false
			}
			m.add(m.name, "flushed")
			m.read.BeginRead(m.f, 0, (1 << 20))
			m.pc = 5
		case 5:
			if !m.read.Step(c) {
				return false
			}
			m.closeOp.BeginClose(m.f)
			m.pc = 6
		case 6:
			if !m.closeOp.Step(c) {
				return false
			}
			m.add(m.name, "closed")
			m.open.BeginOpen(m.fs, m.name)
			m.pc = 7
		case 7:
			if !m.open.Step(c) {
				return false
			}
			if m.open.Err() != nil {
				panic(m.open.Err())
			}
			m.f = m.open.File()
			m.read.BeginRead(m.f, (1 << 20), (1 << 20))
			m.pc = 8
		case 8:
			if !m.read.Step(c) {
				return false
			}
			m.closeOp.BeginClose(m.f)
			m.pc = 9
		case 9:
			if !m.closeOp.Step(c) {
				return false
			}
			m.add(m.name, fmt.Sprintf("reopened size=%d", m.f.Size()))
			return true
		}
	}
}

func runPFSClientsCont(n int) []string {
	k := simkernel.New()
	fs := MustNew(k, pfsContTestConfig())
	var log []string
	add := func(who, what string) {
		log = append(log, fmt.Sprintf("%v %s %s", k.Now(), who, what))
	}
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("f%d", i)
		k.SpawnContJob(name, i+1, &pfsClientCont{fs: fs, name: name, add: add})
	}
	k.Run()
	log = append(log, fmt.Sprintf("ingested=%.3f drained=%.3f mdsops=%d",
		fs.TotalBytesIngested(), fs.TotalBytesDrained(), fs.MDS.Stats.OpsServed))
	k.Shutdown()
	return log
}

func TestContClientMatchesGoroutine(t *testing.T) {
	for _, n := range []int{1, 3, 12} {
		g := runPFSClientsGoroutine(n)
		c := runPFSClientsCont(n)
		if strings.Join(g, "\n") != strings.Join(c, "\n") {
			t.Fatalf("n=%d: engines diverge\n--- goroutine ---\n%s\n--- continuation ---\n%s",
				n, strings.Join(g, "\n"), strings.Join(c, "\n"))
		}
	}
}
