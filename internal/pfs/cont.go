package pfs

import (
	"fmt"
	"sort"

	"repro/internal/simkernel"
)

// Continuation-side file system operations. Each blocking client call
// (MDS.Op, OST.Write/Flush, File.Create/WriteAt/Flush/ReadAt/Close) has a
// state-machine counterpart here that a simkernel.Cont body drives with
// repeated Step calls: Step returns true when the operation has completed,
// or arranges a wakeup, marks the process parked, and returns false — the
// body must then yield with its program counter advanced past the op
// (advance style; see simkernel/sync.go), because wakeups re-enter Step to
// continue the same operation, never to restart it.
//
// Every machine schedules exactly the events its blocking counterpart
// does, in the same order, with the same RNG draws — the engines are
// bit-identical (pinned by TestContClientMatchesGoroutine). The op values
// are designed for reuse: embed one per client, call Begin* to arm it, and
// its scratch (chunk lists, OST lists) is recycled across operations.

// mdsOp is one metadata operation in flight (the cont form of MDS.Op).
type mdsOp struct {
	pc int
}

// opCont drives one metadata operation for a continuation body: queueing at
// the service resource, then the lognormal service time. The service draw
// happens after the slot grant, exactly as in Op — queue order determines
// draw order.
//
//repro:hotpath
func (m *MDS) opCont(s *mdsOp, c *simkernel.ContProc) bool {
	for {
		switch s.pc {
		case 0:
			m.accountOp(c.Job())
			s.pc = 1
			if m.stallUntil > c.Now() {
				m.Stats.StallSeconds += (m.stallUntil - c.Now()).Seconds()
				c.SleepUntil(m.stallUntil)
				return false
			}
		case 1:
			s.pc = 2
			if !m.res.AcquireCont(c) {
				return false
			}
		case 2:
			svc := m.src.LognormalMeanCV(m.mean, m.cv)
			m.Stats.OpsServed++
			m.Stats.TotalService += svc
			if q := m.res.QueueLen(); q > m.Stats.MaxQueue {
				m.Stats.MaxQueue = q
			}
			s.pc = 3
			c.SleepSeconds(svc)
			return false
		default:
			m.res.Release()
			s.pc = 0
			return true
		}
	}
}

// ostWrite is one blocking OST write in flight (the cont form of
// OST.Write): the fixed per-operation latency, then ingest until the last
// byte is accepted — or, against a Dead target, the configured timeout
// followed by ErrTargetDown in err.
type ostWrite struct {
	pc    int
	o     *OST
	bytes float64
	err   error
}

func (s *ostWrite) begin(o *OST, bytes float64) {
	s.pc = 0
	s.o = o
	s.bytes = bytes
	s.err = nil
}

//repro:hotpath
func (s *ostWrite) step(c *simkernel.ContProc) bool {
	for {
		switch s.pc {
		case 0:
			s.pc = 1
			if s.o.cfg.WriteLatency > 0 {
				c.Sleep(s.o.cfg.WriteLatency)
				return false
			}
		case 1:
			if s.o.health == Dead {
				s.pc = 3
				c.SleepSeconds(s.o.cfg.DeadTimeout)
				return false
			}
			if s.bytes <= 0 {
				s.pc = 0
				return true
			}
			s.o.accountWrite(c.Job(), s.bytes)
			s.o.StartWrite(s.bytes, 0, c.Waker())
			s.pc = 2
			c.Pause()
			return false
		case 2:
			s.pc = 0
			return true
		default:
			s.o.Stats.WritesFailed++
			s.err = s.o.downErr
			s.pc = 0
			return true
		}
	}
}

// ostFlush is one blocking OST flush in flight (the cont form of
// OST.Flush): wait until every byte ingested before the call has drained.
type ostFlush struct {
	pc int
	o  *OST
}

func (s *ostFlush) begin(o *OST) {
	s.pc = 0
	s.o = o
}

//repro:hotpath
func (s *ostFlush) step(c *simkernel.ContProc) bool {
	switch s.pc {
	case 0:
		o := s.o
		o.advance()
		if o.cacheLevel <= completionEps {
			return true
		}
		o.waiters = append(o.waiters, flushWaiter{watermark: o.ingestedTotal, wake: c.Waker()})
		o.recompute()
		s.pc = 1
		c.Pause()
		return false
	default:
		s.pc = 0
		return true
	}
}

// CreateOp is a metadata create in flight (the cont form of
// FileSystem.Create). After Step returns true, File/Err hold the result.
type CreateOp struct {
	pc     int
	fs     *FileSystem
	name   string
	osts   []int
	stripe int64
	mds    mdsOp
	file   *File
	err    error
}

// BeginCreate arms the op; drive it with Step until true.
func (op *CreateOp) BeginCreate(fs *FileSystem, name string, layout Layout) {
	op.pc = 0
	op.fs = fs
	op.name = name
	op.file = nil
	op.err = nil
	op.layout(layout)
}

// layout resolves the layout at arm time, exactly where the blocking path
// resolves it: before the MDS queueing, consuming the round-robin
// allocation cursor in call order.
func (op *CreateOp) layout(l Layout) {
	op.osts, op.stripe, op.err = op.fs.resolveLayout(l)
}

// Step drives the create. On a layout error it completes immediately with
// Err set and no MDS traffic, as the blocking path does.
//
//repro:hotpath
func (op *CreateOp) Step(c *simkernel.ContProc) bool {
	if op.err != nil {
		return true
	}
	if !op.fs.MDS.opCont(&op.mds, c) {
		return false
	}
	f := &File{
		fs:      op.fs,
		Name:    op.name,
		osts:    op.osts,
		stripe:  op.stripe,
		touched: make(map[int]struct{}),
	}
	op.fs.files[op.name] = f
	op.file = f
	return true
}

// File returns the created handle (nil on error); valid after Step
// returned true.
func (op *CreateOp) File() *File { return op.file }

// Err returns the create error, if any; valid after Step returned true.
func (op *CreateOp) Err() error { return op.err }

// OpenOp is a metadata open in flight (the cont form of FileSystem.Open).
type OpenOp struct {
	pc    int
	fs    *FileSystem
	name  string
	found *File
	mds   mdsOp
	file  *File
	err   error
}

// BeginOpen arms the op; drive it with Step until true.
func (op *OpenOp) BeginOpen(fs *FileSystem, name string) {
	op.pc = 0
	op.fs = fs
	op.name = name
	op.found = fs.files[name]
	op.file = nil
	op.err = nil
}

// Step drives the open. Failed lookups still cost the MDS; the handle copy
// is taken after the metadata op completes, exactly as in Open.
//
//repro:hotpath
func (op *OpenOp) Step(c *simkernel.ContProc) bool {
	if !op.fs.MDS.opCont(&op.mds, c) {
		return false
	}
	if op.found == nil {
		op.err = noSuchFile(op.name)
		return true
	}
	h := *op.found
	h.closed = false
	op.file = &h
	return true
}

// noSuchFile builds the open-failure error off the hot path.
func noSuchFile(name string) error {
	return fmt.Errorf("pfs: no such file %q", name)
}

// File returns the opened handle (nil on error); valid after Step
// returned true.
func (op *OpenOp) File() *File { return op.file }

// Err returns the open error, if any; valid after Step returned true.
func (op *OpenOp) Err() error { return op.err }

// WriteOp is a striped write in flight (the cont form of File.WriteAt):
// per-OST chunks issued sequentially, each a latency-plus-ingest machine.
// A chunk against a Dead target sets Err to ErrTargetDown after the
// configured timeout and abandons the remaining chunks.
type WriteOp struct {
	f       *File
	offset  int64
	length  int64
	chunks  []chunk
	i       int
	started bool
	w       ostWrite
	err     error
}

// BeginWrite arms the op for a write of length bytes at offset; drive it
// with Step until true. The chunk list reuses the op's scratch.
func (op *WriteOp) BeginWrite(f *File, offset, length int64) {
	if f.closed {
		panic(fmt.Sprintf("pfs: write to closed file %q", f.Name))
	}
	if length < 0 {
		panic("pfs: negative write length")
	}
	op.f = f
	op.offset = offset
	op.length = length
	op.chunks = f.appendChunks(op.chunks[:0], offset, length)
	op.i = 0
	op.started = false
	op.err = nil
}

// BeginAppend arms the op for a write at the handle's current end and
// returns the chosen offset.
func (op *WriteOp) BeginAppend(f *File, length int64) int64 {
	off := f.size
	op.BeginWrite(f, off, length)
	return off
}

// Step drives the write: chunks issue sequentially (a single client
// stream), and the handle/master sizes update after the last byte is
// accepted, exactly as in WriteAt.
//
//repro:hotpath
func (op *WriteOp) Step(c *simkernel.ContProc) bool {
	f := op.f
	for op.i < len(op.chunks) {
		if !op.started {
			ch := op.chunks[op.i]
			f.touched[ch.ost] = struct{}{}
			op.w.begin(f.fs.OSTs[ch.ost], float64(ch.bytes))
			op.started = true
		}
		if !op.w.step(c) {
			return false
		}
		if op.w.err != nil {
			op.err = op.w.err
			return true
		}
		op.started = false
		op.i++
	}
	if end := op.offset + op.length; end > f.size {
		f.size = end
	}
	if master := f.fs.files[f.Name]; master != nil && f.size > master.size {
		master.size = f.size
	}
	return true
}

// Err returns the write error, if any; valid after Step returned true.
func (op *WriteOp) Err() error { return op.err }

// FlushOp is a flush in flight (the cont form of File.Flush): touched
// targets waited on sequentially in sorted order.
type FlushOp struct {
	f       *File
	osts    []int
	i       int
	started bool
	w       ostFlush
}

// BeginFlush arms the op; drive it with Step until true. The OST list
// reuses the op's scratch.
func (op *FlushOp) BeginFlush(f *File) {
	op.f = f
	if cap(op.osts) < len(f.touched) {
		op.osts = make([]int, 0, len(f.touched))
	}
	op.osts = op.osts[:0]
	for o := range f.touched { //repro:allow nodeterm keys are sorted just below; visit order cannot affect results
		op.osts = append(op.osts, o)
	}
	sort.Ints(op.osts)
	op.i = 0
	op.started = false
}

// Step drives the flush.
//
//repro:hotpath
func (op *FlushOp) Step(c *simkernel.ContProc) bool {
	for op.i < len(op.osts) {
		if !op.started {
			op.w.begin(op.f.fs.OSTs[op.osts[op.i]])
			op.started = true
		}
		if !op.w.step(c) {
			return false
		}
		op.started = false
		op.i++
	}
	return true
}

// ReadOp is a read in flight (the cont form of File.ReadAt): per chunk,
// the share-based rate is fixed at issue time — before the latency sleep —
// then latency plus transfer.
type ReadOp struct {
	pc     int
	f      *File
	chunks []chunk
	i      int
	rate   float64
	err    error
}

// BeginRead arms the op; drive it with Step until true. The chunk list
// reuses the op's scratch.
func (op *ReadOp) BeginRead(f *File, offset, length int64) {
	op.pc = 0
	op.f = f
	op.chunks = f.appendChunks(op.chunks[:0], offset, length)
	op.i = 0
	op.err = nil
}

// Step drives the read.
//
//repro:hotpath
func (op *ReadOp) Step(c *simkernel.ContProc) bool {
	f := op.f
	for op.i < len(op.chunks) {
		ch := op.chunks[op.i]
		switch op.pc {
		case 0:
			o := f.fs.OSTs[ch.ost]
			o.accountRead(c.Job(), float64(ch.bytes))
			if o.health == Dead {
				op.pc = 3
				c.Sleep(f.fs.Cfg.WriteLatency)
				return false
			}
			streams := o.ActiveFlows() + o.ExternalStreams() + 1
			rate := f.fs.Cfg.DiskBW * f.fs.Cfg.DiskEff.Eval(streams) * o.SlowFactor() * o.HealthFactor() / float64(streams)
			if cap := f.fs.Cfg.ClientCap; rate > cap {
				rate = cap
			}
			op.rate = rate
			op.pc = 1
			c.Sleep(f.fs.Cfg.WriteLatency)
			return false
		case 1:
			op.pc = 2
			c.SleepSeconds(float64(ch.bytes) / op.rate)
			return false
		case 2:
			op.pc = 0
			op.i++
		case 3:
			op.pc = 4
			c.SleepSeconds(f.fs.Cfg.DeadTimeout)
			return false
		default:
			o := f.fs.OSTs[ch.ost]
			o.Stats.ReadsFailed++
			op.err = o.downErr
			op.pc = 0
			return true
		}
	}
	return true
}

// Err returns the read error, if any; valid after Step returned true.
func (op *ReadOp) Err() error { return op.err }

// CloseOp is a metadata close in flight (the cont form of File.Close). A
// handle already closed completes inline with no MDS traffic.
type CloseOp struct {
	pc   int
	f    *File
	skip bool
	mds  mdsOp
}

// BeginClose arms the op; drive it with Step until true.
func (op *CloseOp) BeginClose(f *File) {
	op.pc = 0
	op.f = f
	op.skip = f.closed
	if !op.skip {
		f.closed = true
	}
}

// Step drives the close.
//
//repro:hotpath
func (op *CloseOp) Step(c *simkernel.ContProc) bool {
	if op.skip {
		return true
	}
	return op.f.fs.MDS.opCont(&op.mds, c)
}
