package pfs

import (
	"testing"

	"repro/internal/simkernel"
)

func TestIngestFactorSlowsCacheAbsorbedWrite(t *testing.T) {
	cfg := flatConfig() // clientCap 50, ingest 400, disk 100
	k := simkernel.New()
	fs := MustNew(k, cfg)
	fs.OST(0).SetIngestFactor(0.5) // per-stream cap now effectively 25
	var doneAt float64
	k.Spawn("w", func(p *simkernel.Proc) {
		fs.OST(0).Write(p, 500)
		doneAt = p.Now().Seconds()
	})
	k.Run()
	k.Shutdown()
	almostT(t, doneAt, 20.0, 1e-6, "halved ingest doubles a cache-absorbed write")
}

func TestIngestFactorClamps(t *testing.T) {
	k := simkernel.New()
	fs := MustNew(k, flatConfig())
	fs.OST(0).SetIngestFactor(7)
	if got := fs.OST(0).IngestFactor(); got != 1 {
		t.Fatalf("ingest factor = %v, want clamp to 1", got)
	}
	fs.OST(0).SetIngestFactor(-1)
	if got := fs.OST(0).IngestFactor(); got != 1e-3 {
		t.Fatalf("ingest factor = %v, want clamp to 1e-3", got)
	}
	k.Shutdown()
}

func TestExternalStreamsShrinkEffectiveCache(t *testing.T) {
	cfg := flatConfig()
	cfg.ClientCap = 200 // faster than disk
	cfg.CacheBytes = 1000
	run := func(ext int) float64 {
		k := simkernel.New()
		fs := MustNew(k, cfg)
		fs.OST(0).SetExternalStreams(ext)
		var doneAt float64
		k.Spawn("w", func(p *simkernel.Proc) {
			fs.OST(0).Write(p, 900)
			doneAt = p.Now().Seconds()
		})
		k.Run()
		k.Shutdown()
		return doneAt
	}
	// Clean: 900 < 1000 cache, absorbed at 200 B/s → 4.5s.
	clean := run(0)
	almostT(t, clean, 4.5, 1e-6, "clean cache-absorbed write")
	// One external stream: effective cache 500; the second half of the
	// write throttles toward the (shared, degraded) disk rate — strictly
	// slower than clean.
	busy := run(1)
	if busy <= clean*1.5 {
		t.Fatalf("external stream should slow a cache-absorbed write: %v vs %v", busy, clean)
	}
}

func TestIngestFactorMidFlight(t *testing.T) {
	cfg := flatConfig()
	k := simkernel.New()
	fs := MustNew(k, cfg)
	var doneAt float64
	k.Spawn("w", func(p *simkernel.Proc) {
		fs.OST(0).Write(p, 1000) // 20s at rate 50
		doneAt = p.Now().Seconds()
	})
	k.AfterSeconds(10, func() { fs.OST(0).SetIngestFactor(0.25) })
	k.Run()
	k.Shutdown()
	// 500 bytes in 10s, remaining 500 at 12.5 B/s → 40 more seconds.
	almostT(t, doneAt, 50.0, 0.3, "mid-flight ingest degradation")
}

func TestWaterFillFactorScalesCaps(t *testing.T) {
	flows := []*flow{{cap: 100}, {cap: 10}}
	rates := waterFillFactor(flows, 60, 0.5) // caps become 50 and 5
	almostT(t, rates[1], 5, 1e-9, "scaled small cap")
	almostT(t, rates[0], 50, 1e-9, "scaled large cap")
}
