package pfs

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/simkernel"
)

func TestConfigDefaults(t *testing.T) {
	var c Config
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.NumOSTs != 512 || c.MaxStripeCount != 160 || c.DefaultStripeCount != 4 {
		t.Fatalf("unexpected defaults: %+v", c)
	}
	if c.DiskBW != 180*MB || c.CacheBytes != 2*GB {
		t.Fatalf("unexpected bandwidth defaults: %+v", c)
	}
}

func TestConfigErrors(t *testing.T) {
	bad := []Config{
		{CacheBytes: -1},
		{WriteLatency: -1},
		{DefaultStripeCount: 200, MaxStripeCount: 160},
		{MaxChunksPerOp: -1},
		{MDSServiceCV: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d should fail validation", i)
		}
	}
}

func TestLayoutResolutionRoundRobin(t *testing.T) {
	k := simkernel.New()
	cfg := flatConfig()
	cfg.NumOSTs = 6
	cfg.MaxStripeCount = 4
	cfg.DefaultStripeCount = 2
	fs := MustNew(k, cfg)
	var f1, f2 *File
	k.Spawn("creator", func(p *simkernel.Proc) {
		f1, _ = fs.Create(p, "a", Layout{})
		f2, _ = fs.Create(p, "b", Layout{})
	})
	k.Run()
	k.Shutdown()
	if got := f1.StripeOSTs(); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("file a osts = %v", got)
	}
	if got := f2.StripeOSTs(); len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Fatalf("file b osts = %v", got)
	}
}

func TestLayoutErrors(t *testing.T) {
	k := simkernel.New()
	cfg := flatConfig()
	cfg.NumOSTs = 8
	cfg.MaxStripeCount = 4
	fs := MustNew(k, cfg)
	var errs []error
	k.Spawn("creator", func(p *simkernel.Proc) {
		_, e1 := fs.Create(p, "x", Layout{StripeCount: 5})
		_, e2 := fs.Create(p, "y", Layout{OSTs: []int{0, 1, 2, 3, 4}})
		_, e3 := fs.Create(p, "z", Layout{OSTs: []int{99}})
		errs = append(errs, e1, e2, e3)
	})
	k.Run()
	k.Shutdown()
	for i, e := range errs {
		if e == nil {
			t.Errorf("layout error case %d: expected error", i)
		}
	}
}

func TestStripeCountExceedingOSTs(t *testing.T) {
	k := simkernel.New()
	cfg := flatConfig()
	cfg.NumOSTs = 2
	cfg.MaxStripeCount = 160
	fs := MustNew(k, cfg)
	var err error
	k.Spawn("creator", func(p *simkernel.Proc) {
		_, err = fs.Create(p, "x", Layout{StripeCount: 3})
	})
	k.Run()
	k.Shutdown()
	if err == nil {
		t.Fatal("expected error for stripe count > OST count")
	}
}

func TestChunksForConservesBytesProperty(t *testing.T) {
	k := simkernel.New()
	cfg := flatConfig()
	cfg.NumOSTs = 16
	cfg.MaxChunksPerOp = 8
	fs := MustNew(k, cfg)
	var f *File
	k.Spawn("creator", func(p *simkernel.Proc) {
		f, _ = fs.Create(p, "f", Layout{OSTs: []int{1, 3, 5, 7}, StripeSize: 64})
	})
	k.Run()
	k.Shutdown()

	prop := func(off16, len24 uint32) bool {
		offset := int64(off16 % 4096)
		length := int64(len24%100000) + 1
		var total int64
		chunks := f.chunksFor(offset, length)
		if len(chunks) > cfg.MaxChunksPerOp {
			return false
		}
		for _, c := range chunks {
			if c.bytes <= 0 {
				return false
			}
			valid := false
			for _, o := range f.osts {
				if c.ost == o {
					valid = true
				}
			}
			if !valid {
				return false
			}
			total += c.bytes
		}
		return total == length
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestChunksForSingleOSTFastPath(t *testing.T) {
	k := simkernel.New()
	fs := MustNew(k, flatConfig())
	var f *File
	k.Spawn("creator", func(p *simkernel.Proc) {
		f, _ = fs.Create(p, "f", Layout{OSTs: []int{2}})
	})
	k.Run()
	k.Shutdown()
	chunks := f.chunksFor(0, 1<<30)
	if len(chunks) != 1 || chunks[0].ost != 2 || chunks[0].bytes != 1<<30 {
		t.Fatalf("single-OST chunks = %+v", chunks)
	}
	if f.chunksFor(0, 0) != nil {
		t.Fatal("zero-length write should produce no chunks")
	}
}

func TestChunksForExactStripeRotation(t *testing.T) {
	k := simkernel.New()
	cfg := flatConfig()
	cfg.MaxChunksPerOp = 100
	fs := MustNew(k, cfg)
	var f *File
	k.Spawn("creator", func(p *simkernel.Proc) {
		f, _ = fs.Create(p, "f", Layout{OSTs: []int{0, 1, 2}, StripeSize: 10})
	})
	k.Run()
	k.Shutdown()
	// 35 bytes from offset 5: stripes 0(5B),1(10B),2(10B),3(10B) →
	// OSTs 0,1,2,0.
	chunks := f.chunksFor(5, 35)
	want := []chunk{{0, 5}, {1, 10}, {2, 10}, {0, 10}}
	if len(chunks) != len(want) {
		t.Fatalf("chunks = %+v", chunks)
	}
	for i := range want {
		if chunks[i] != want[i] {
			t.Fatalf("chunk %d = %+v, want %+v", i, chunks[i], want[i])
		}
	}
}

func TestCoarsenBoundsAndConserves(t *testing.T) {
	in := make([]chunk, 100)
	var total int64
	for i := range in {
		in[i] = chunk{ost: i % 7, bytes: int64(i + 1)}
		total += int64(i + 1)
	}
	out := coarsen(in, 10)
	if len(out) > 10 {
		t.Fatalf("coarsen produced %d chunks", len(out))
	}
	var got int64
	for _, c := range out {
		got += c.bytes
	}
	if got != total {
		t.Fatalf("coarsen lost bytes: %d vs %d", got, total)
	}
}

func TestWriteAtUpdatesSizeAndFlushCompletes(t *testing.T) {
	k := simkernel.New()
	cfg := flatConfig()
	cfg.ClientCap = 500
	fs := MustNew(k, cfg)
	var size int64
	k.Spawn("w", func(p *simkernel.Proc) {
		f, err := fs.Create(p, "out", Layout{OSTs: []int{0, 1}, StripeSize: 100})
		if err != nil {
			t.Error(err)
			return
		}
		f.WriteAt(p, 0, 450)
		f.Flush(p)
		f.Close(p)
		size = f.Size()
	})
	k.Run()
	k.Shutdown()
	if size != 450 {
		t.Fatalf("size = %d, want 450", size)
	}
	ing := fs.TotalBytesIngested()
	dr := fs.TotalBytesDrained()
	if math.Abs(ing-450) > 1e-3 || math.Abs(dr-450) > 1e-3 {
		t.Fatalf("ingested/drained = %v/%v, want 450", ing, dr)
	}
}

func TestAppendAdvancesOffset(t *testing.T) {
	k := simkernel.New()
	fs := MustNew(k, flatConfig())
	var offs []int64
	k.Spawn("w", func(p *simkernel.Proc) {
		f, _ := fs.Create(p, "log", Layout{OSTs: []int{0}})
		for _, n := range []int64{100, 50, 25} {
			off, err := f.Append(p, n)
			if err != nil {
				t.Errorf("Append(%d): %v", n, err)
			}
			offs = append(offs, off)
		}
	})
	k.Run()
	k.Shutdown()
	if offs[0] != 0 || offs[1] != 100 || offs[2] != 150 {
		t.Fatalf("append offsets = %v", offs)
	}
}

func TestOpenMissingFileErrors(t *testing.T) {
	k := simkernel.New()
	fs := MustNew(k, flatConfig())
	var err error
	k.Spawn("r", func(p *simkernel.Proc) {
		_, err = fs.Open(p, "ghost")
	})
	k.Run()
	k.Shutdown()
	if err == nil {
		t.Fatal("expected error opening missing file")
	}
}

func TestOpenExistingSeesMasterSize(t *testing.T) {
	k := simkernel.New()
	fs := MustNew(k, flatConfig())
	var size int64
	k.Spawn("w", func(p *simkernel.Proc) {
		f, _ := fs.Create(p, "data", Layout{OSTs: []int{0}})
		f.WriteAt(p, 0, 200)
		f.Close(p)
		g, err := fs.Open(p, "data")
		if err != nil {
			t.Error(err)
			return
		}
		size = g.Size()
		g.Close(p)
	})
	k.Run()
	k.Shutdown()
	if size != 200 {
		t.Fatalf("reopened size = %d, want 200", size)
	}
	if !fs.Exists("data") || fs.Exists("ghost") {
		t.Fatal("Exists misreports")
	}
}

func TestWriteToClosedFilePanics(t *testing.T) {
	k := simkernel.New()
	fs := MustNew(k, flatConfig())
	panicked := false
	k.Spawn("w", func(p *simkernel.Proc) {
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		f, _ := fs.Create(p, "c", Layout{OSTs: []int{0}})
		f.Close(p)
		f.WriteAt(p, 0, 10)
	})
	k.Run()
	k.Shutdown()
	if !panicked {
		t.Fatal("expected panic writing to closed file")
	}
}

func TestMDSQueueing(t *testing.T) {
	k := simkernel.New()
	cfg := flatConfig()
	cfg.MDSCapacity = 1
	cfg.MDSServiceMean = 1.0
	cfg.MDSServiceCV = 1e-9 // effectively deterministic service
	fs := MustNew(k, cfg)
	var lastDone float64
	for i := 0; i < 4; i++ {
		k.Spawn("opener", func(p *simkernel.Proc) {
			fs.MDS.Op(p)
			if at := p.Now().Seconds(); at > lastDone {
				lastDone = at
			}
		})
	}
	k.Run()
	k.Shutdown()
	// Four serialized ~1s ops on a capacity-1 MDS finish near t=4.
	if lastDone < 3.5 || lastDone > 4.5 {
		t.Fatalf("last MDS op at %v, want ~4", lastDone)
	}
	if fs.MDS.Stats.OpsServed != 4 {
		t.Fatalf("ops served = %d", fs.MDS.Stats.OpsServed)
	}
	if fs.MDS.Stats.MaxQueue == 0 {
		t.Fatal("expected queueing at the MDS")
	}
}

func TestReadAtTakesTime(t *testing.T) {
	k := simkernel.New()
	cfg := flatConfig()
	cfg.ClientCap = 50
	fs := MustNew(k, cfg)
	var at float64
	k.Spawn("r", func(p *simkernel.Proc) {
		f, _ := fs.Create(p, "in", Layout{OSTs: []int{0}})
		f.WriteAt(p, 0, 500)
		start := p.Now().Seconds()
		f.ReadAt(p, 0, 500)
		at = p.Now().Seconds() - start
	})
	k.Run()
	k.Shutdown()
	if at < 5 { // 500 bytes at ≤100 B/s disk, capped at 50 → ≥10s; allow slack
		t.Fatalf("read took %v s, expected noticeable time", at)
	}
}

func TestFilesystemDeterminism(t *testing.T) {
	run := func() (float64, float64) {
		k := simkernel.New()
		cfg := flatConfig()
		cfg.Seed = 99
		fs := MustNew(k, cfg)
		var t1, t2 float64
		k.Spawn("a", func(p *simkernel.Proc) {
			f, _ := fs.Create(p, "a", Layout{OSTs: []int{0, 1}, StripeSize: 100})
			f.WriteAt(p, 0, 1000)
			f.Flush(p)
			t1 = p.Now().Seconds()
		})
		k.Spawn("b", func(p *simkernel.Proc) {
			f, _ := fs.Create(p, "b", Layout{OSTs: []int{1, 2}, StripeSize: 100})
			f.WriteAt(p, 0, 800)
			f.Flush(p)
			t2 = p.Now().Seconds()
		})
		k.Run()
		k.Shutdown()
		return t1, t2
	}
	a1, a2 := run()
	b1, b2 := run()
	if a1 != b1 || a2 != b2 {
		t.Fatalf("nondeterministic: (%v,%v) vs (%v,%v)", a1, a2, b1, b2)
	}
}
