// Package ior reimplements the IOR synthetic benchmark as used in Section II
// of the paper: N writers using POSIX-IO, one file per writer, each file
// pinned to a fixed storage target with writers split evenly across targets,
// weak scaling in per-writer data size.
//
// As in the paper, reported times "specifically omit file open and close
// times": files are created before the timed region and the measured span
// covers only the write phase (optionally including an explicit flush, which
// the Section IV methodology adds).
package ior

import (
	"fmt"

	"repro/internal/pfs"
	"repro/internal/simkernel"
	"repro/internal/stats"
)

// Mode selects the file organisation.
type Mode int

const (
	// FilePerProcess is the paper's configuration: each writer owns a file
	// pinned to one storage target (stripe count 1).
	FilePerProcess Mode = iota
	// SharedFile puts all writers into one file striped across the target
	// set (an MPI-IO-style organisation, provided for comparison).
	SharedFile
)

// Config describes one IOR run.
type Config struct {
	// Writers is the number of writer processes.
	Writers int
	// OSTs is the set of storage targets to spread writers across; nil
	// means targets 0..NumOSTs-1 capped at the file-system size.
	OSTs []int
	// BytesPerWriter is the per-process data size (weak scaling).
	BytesPerWriter float64
	// Mode selects file-per-process (default) or shared-file.
	Mode Mode
	// Flush, when true, includes an explicit flush in the timed region
	// (the paper's Section IV methodology; Section II omits it so that
	// cache-absorbed small writes show their cache benefit).
	Flush bool
	// Tag distinguishes files of concurrent IOR instances sharing one
	// file system (the "XTP with interference" experiment runs two).
	Tag string
}

// Result reports one run's measurements.
type Result struct {
	// WriterTimes is each writer's time in seconds for its timed region.
	WriterTimes []float64
	// TotalBytes is the bytes written across all writers.
	TotalBytes float64
	// Elapsed is the wall time of the IO phase: max over writers (overall
	// write time is determined by the slowest writer, as the paper notes).
	Elapsed float64
	// AggregateBW is TotalBytes / Elapsed in bytes/sec.
	AggregateBW float64
	// PerWriterBW is each writer's bytes/sec.
	PerWriterBW []float64
	// ImbalanceFactor is the slowest/fastest write-time ratio (Section II).
	ImbalanceFactor float64
	// FailedWriters counts writers whose write was abandoned with
	// pfs.ErrTargetDown (their bytes are excluded from TotalBytes).
	FailedWriters int
}

// summarize fills the derived fields from WriterTimes and TotalBytes.
func (r *Result) summarize(bytesPerWriter float64) {
	r.Elapsed = 0
	r.PerWriterBW = make([]float64, len(r.WriterTimes))
	for i, t := range r.WriterTimes {
		if t > r.Elapsed {
			r.Elapsed = t
		}
		if t > 0 {
			r.PerWriterBW[i] = bytesPerWriter / t
		}
	}
	if r.Elapsed > 0 {
		r.AggregateBW = r.TotalBytes / r.Elapsed
	}
	r.ImbalanceFactor = stats.ImbalanceFactor(r.WriterTimes)
}

// MeanPerWriterBW returns the average per-writer bandwidth.
func (r *Result) MeanPerWriterBW() float64 {
	return stats.Summarize(r.PerWriterBW).Mean
}

// Run is a launched IOR instance; read Result after the kernel has drained.
type Run struct {
	cfg    Config
	fs     *pfs.FileSystem
	result Result
	done   *simkernel.WaitGroup
}

// Done reports whether all writers have finished.
func (r *Run) Done() bool { return r.done.Count() == 0 }

// OnDone spawns a watcher on the kernel that calls fn (in kernel context)
// once all of the run's writers have finished. It lets harnesses that
// cannot rely on natural drain — e.g. a tracer keeps the kernel alive —
// join on the run and stop the kernel explicitly.
func (r *Run) OnDone(k *simkernel.Kernel, fn func()) {
	k.Spawn("ior-watch", func(p *simkernel.Proc) {
		r.done.Wait(p)
		fn()
	})
}

// Result returns the measurements; it panics if writers are still running.
func (r *Run) Result() Result {
	if !r.Done() {
		panic("ior: Result read before run completed")
	}
	res := r.result
	res.summarize(r.cfg.BytesPerWriter)
	return res
}

// Launch starts an IOR instance on the file system's kernel and returns a
// handle. Files are created (untimed), writers synchronise on a barrier,
// then write simultaneously. Drive the kernel to completion before reading
// the Result.
func Launch(fs *pfs.FileSystem, cfg Config) (*Run, error) {
	if cfg.Writers <= 0 {
		return nil, fmt.Errorf("ior: writers must be positive")
	}
	if cfg.BytesPerWriter < 0 {
		return nil, fmt.Errorf("ior: negative data size")
	}
	osts := cfg.OSTs
	if len(osts) == 0 {
		n := len(fs.OSTs)
		if cfg.Writers < n {
			n = cfg.Writers
		}
		osts = make([]int, n)
		for i := range osts {
			osts[i] = i
		}
	}
	for _, o := range osts {
		if o < 0 || o >= len(fs.OSTs) {
			return nil, fmt.Errorf("ior: OST %d out of range", o)
		}
	}

	run := &Run{cfg: cfg, fs: fs}
	run.result.WriterTimes = make([]float64, cfg.Writers)
	run.done = simkernel.NewWaitGroup(fs.K)
	run.done.Add(cfg.Writers)

	ready := simkernel.NewWaitGroup(fs.K)
	ready.Add(cfg.Writers)
	start := simkernel.NewSignal(fs.K)

	// A starter process releases the writers once all files exist,
	// emulating MPI_Barrier after the untimed open phase.
	fs.K.Spawn("ior-starter", func(p *simkernel.Proc) {
		ready.Wait(p)
		start.Broadcast()
	})

	// The writer bodies run as run-to-completion continuations by default;
	// REPRO_NO_CONT=1 restores the goroutine writers. Both engines schedule
	// the same events in the same order.
	if simkernel.ContEnabled() {
		launchContWriters(fs, run, osts, ready, start)
		return run, nil
	}

	// In SharedFile mode "rank 0" creates the file before its ready.Done();
	// the start signal fires only after every writer is ready, so the
	// handle is visible to all writers by the time the timed region begins.
	var shared *pfs.File

	for i := 0; i < cfg.Writers; i++ {
		i := i
		fs.K.Spawn(fmt.Sprintf("ior%s-w%d", cfg.Tag, i), func(p *simkernel.Proc) {
			defer run.done.Done()
			var f *pfs.File
			var offset int64
			switch cfg.Mode {
			case FilePerProcess:
				// Writers split evenly across targets: writer i uses
				// osts[i % len(osts)].
				target := osts[i%len(osts)]
				var err error
				f, err = fs.Create(p, fmt.Sprintf("ior%s.%06d", cfg.Tag, i),
					pfs.Layout{OSTs: []int{target}})
				if err != nil {
					panic(err)
				}
			case SharedFile:
				if i == 0 {
					var err error
					shared, err = fs.Create(p, "ior"+cfg.Tag+".shared",
						pfs.Layout{OSTs: osts})
					if err != nil {
						panic(err)
					}
				}
				offset = int64(i) * int64(cfg.BytesPerWriter)
			}
			ready.Done()
			start.Wait(p)
			if cfg.Mode == SharedFile {
				f = shared
			}

			t0 := p.Now()
			if err := f.WriteAt(p, offset, int64(cfg.BytesPerWriter)); err != nil {
				// Target down: this writer's bytes are lost; it still closes
				// and joins so the run completes.
				run.result.FailedWriters++
			} else {
				if cfg.Flush {
					f.Flush(p)
				}
				run.result.TotalBytes += cfg.BytesPerWriter
			}
			run.result.WriterTimes[i] = (p.Now() - t0).Seconds()
			f.Close(p)
		})
	}
	return run, nil
}

// Execute launches an IOR instance on a fresh region of virtual time and
// runs the kernel until it completes, returning the measurements. Other
// processes already on the kernel (noise, a second IOR) keep running
// concurrently.
func Execute(fs *pfs.FileSystem, cfg Config) (Result, error) {
	run, err := Launch(fs, cfg)
	if err != nil {
		return Result{}, err
	}
	finished := false
	fs.K.Spawn("ior-joiner", func(p *simkernel.Proc) {
		run.done.Wait(p)
		finished = true
		fs.K.Stop()
	})
	fs.K.Run()
	if !finished {
		return Result{}, fmt.Errorf("ior: kernel drained before writers finished (deadlock?)")
	}
	return run.Result(), nil
}
