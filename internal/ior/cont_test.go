package ior

import (
	"math"
	"testing"

	"repro/internal/pfs"
	"repro/internal/simkernel"
)

// The engine-equivalence pin at the ior level: the same run, once on
// continuation writers (the default) and once on goroutine writers
// (REPRO_NO_CONT=1), against identically seeded file systems, must produce
// identical results in both modes and flush settings.

func runIOR(t *testing.T, cfg Config) Result {
	t.Helper()
	k := simkernel.New()
	fs := pfs.MustNew(k, pfs.Config{NumOSTs: 8, Seed: 11})
	res, err := Execute(fs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	k.Shutdown()
	return res
}

func sameResult(a, b Result) bool {
	if len(a.WriterTimes) != len(b.WriterTimes) {
		return false
	}
	for i := range a.WriterTimes {
		if a.WriterTimes[i] != b.WriterTimes[i] {
			return false
		}
	}
	return a.TotalBytes == b.TotalBytes && a.Elapsed == b.Elapsed &&
		a.AggregateBW == b.AggregateBW &&
		(a.ImbalanceFactor == b.ImbalanceFactor ||
			(math.IsNaN(a.ImbalanceFactor) && math.IsNaN(b.ImbalanceFactor)))
}

func TestContWritersMatchGoroutine(t *testing.T) {
	cases := []Config{
		{Writers: 1, BytesPerWriter: 1 << 20},
		{Writers: 7, BytesPerWriter: 4 << 20, Flush: true},
		{Writers: 12, BytesPerWriter: 2 << 20, Mode: SharedFile},
		{Writers: 12, BytesPerWriter: 2 << 20, Mode: SharedFile, Flush: true},
	}
	for _, cfg := range cases {
		cont := runIOR(t, cfg)
		t.Setenv("REPRO_NO_CONT", "1")
		gor := runIOR(t, cfg)
		t.Setenv("REPRO_NO_CONT", "")
		if !sameResult(cont, gor) {
			t.Fatalf("engines diverge for %+v:\ncont:      %+v\ngoroutine: %+v", cfg, cont, gor)
		}
	}
}
