package ior

import (
	"math"
	"testing"

	"repro/internal/machines"
	"repro/internal/pfs"
	"repro/internal/simkernel"
)

// jaguarFS builds a Jaguar-calibrated file system scaled down to numOSTs
// targets (per-OST behaviour is what matters for ratio experiments).
func jaguarFS(numOSTs int) (*simkernel.Kernel, *pfs.FileSystem) {
	k := simkernel.New()
	cfg := machines.Jaguar(1).FS
	cfg.NumOSTs = numOSTs
	return k, pfs.MustNew(k, cfg)
}

func execute(t *testing.T, fs *pfs.FileSystem, cfg Config) Result {
	t.Helper()
	res, err := Execute(fs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestRunBasicConsistency(t *testing.T) {
	k, fs := jaguarFS(8)
	res := execute(t, fs, Config{Writers: 16, BytesPerWriter: 8 * pfs.MB})
	k.Shutdown()
	if len(res.WriterTimes) != 16 || len(res.PerWriterBW) != 16 {
		t.Fatalf("result sizes wrong: %d/%d", len(res.WriterTimes), len(res.PerWriterBW))
	}
	var max float64
	for i, wt := range res.WriterTimes {
		if wt <= 0 {
			t.Fatalf("writer %d time %v", i, wt)
		}
		if wt > max {
			max = wt
		}
	}
	if math.Abs(res.Elapsed-max) > 1e-12 {
		t.Fatalf("elapsed %v != max writer time %v", res.Elapsed, max)
	}
	if math.Abs(res.TotalBytes-16*8*pfs.MB) > 1 {
		t.Fatalf("total bytes %v", res.TotalBytes)
	}
	if math.Abs(res.AggregateBW-res.TotalBytes/res.Elapsed) > 1e-6 {
		t.Fatal("aggregate bandwidth inconsistent")
	}
	if res.ImbalanceFactor < 1 {
		t.Fatalf("imbalance factor %v < 1", res.ImbalanceFactor)
	}
}

func TestWritersSplitEvenlyAcrossOSTs(t *testing.T) {
	k, fs := jaguarFS(4)
	execute(t, fs, Config{Writers: 8, BytesPerWriter: 1 * pfs.MB})
	for i := 0; i < 4; i++ {
		if got := fs.OST(i).Stats.WritesStarted; got != 2 {
			t.Fatalf("OST %d served %d writes, want 2", i, got)
		}
	}
	k.Shutdown()
}

func TestExplicitOSTSubset(t *testing.T) {
	k, fs := jaguarFS(8)
	execute(t, fs, Config{Writers: 4, BytesPerWriter: 1 * pfs.MB, OSTs: []int{5, 6}})
	if fs.OST(5).Stats.WritesStarted != 2 || fs.OST(6).Stats.WritesStarted != 2 {
		t.Fatal("writers not confined to requested OSTs")
	}
	if fs.OST(0).Stats.WritesStarted != 0 {
		t.Fatal("write leaked to OST 0")
	}
	k.Shutdown()
}

func TestFlushLengthensTimedRegion(t *testing.T) {
	run := func(flush bool) float64 {
		k, fs := jaguarFS(4)
		defer k.Shutdown()
		// 8 writers per OST so the aggregate inflow exceeds the drain rate
		// and dirty bytes remain to flush when write() returns.
		res := execute(t, fs, Config{Writers: 32, BytesPerWriter: 64 * pfs.MB, Flush: flush})
		return res.Elapsed
	}
	noFlush := run(false)
	withFlush := run(true)
	if withFlush <= noFlush {
		t.Fatalf("flush did not lengthen timing: %v vs %v", withFlush, noFlush)
	}
}

func TestPerWriterBandwidthDecreasesWithContention(t *testing.T) {
	// The paper's Fig 1(b): per-writer bandwidth consistently decreases as
	// the writers-per-OST ratio grows.
	perWriter := func(writersPerOST int) float64 {
		k, fs := jaguarFS(8)
		defer k.Shutdown()
		res := execute(t, fs, Config{
			Writers:        8 * writersPerOST,
			BytesPerWriter: 128 * pfs.MB,
		})
		return res.MeanPerWriterBW()
	}
	prev := math.Inf(1)
	for _, ratio := range []int{1, 4, 16, 32} {
		bw := perWriter(ratio)
		if bw >= prev {
			t.Fatalf("per-writer BW did not decrease at ratio %d: %v >= %v", ratio, bw, prev)
		}
		prev = bw
	}
}

func TestAggregateBandwidthShapeLargeData(t *testing.T) {
	// The paper's Fig 1(a) for ≥128MB writers: aggregate rises from 1:1,
	// peaks around 4:1, and declines 16–28% from 16:1 to 32:1.
	agg := func(writersPerOST int) float64 {
		k, fs := jaguarFS(8)
		defer k.Shutdown()
		res := execute(t, fs, Config{
			Writers:        8 * writersPerOST,
			BytesPerWriter: 128 * pfs.MB,
		})
		return res.AggregateBW
	}
	a1, a4, a16, a32 := agg(1), agg(4), agg(16), agg(32)
	if a4 <= a1 {
		t.Fatalf("aggregate should rise 1:1→4:1 (%v vs %v)", a4, a1)
	}
	if a16 >= a4 {
		t.Fatalf("aggregate should decline 4:1→16:1 (%v vs %v)", a16, a4)
	}
	drop := (a16 - a32) / a16
	if drop < 0.10 || drop > 0.40 {
		t.Fatalf("16:1→32:1 decline = %.1f%%, want within the paper's band (16–28%%, tolerating 10–40)", 100*drop)
	}
}

func TestSmallWritesBenefitFromCache(t *testing.T) {
	// 1 MB writes stay cache-absorbed: aggregate keeps growing (or at least
	// does not collapse) through 32 writers per OST, unlike 128 MB writes.
	agg := func(bytes float64, ratio int) float64 {
		k, fs := jaguarFS(8)
		defer k.Shutdown()
		res := execute(t, fs, Config{Writers: 8 * ratio, BytesPerWriter: bytes})
		return res.AggregateBW
	}
	small4, small32 := agg(1*pfs.MB, 4), agg(1*pfs.MB, 32)
	big4, big32 := agg(128*pfs.MB, 4), agg(128*pfs.MB, 32)
	smallTrend := small32 / small4
	bigTrend := big32 / big4
	if smallTrend <= bigTrend {
		t.Fatalf("small writes should hold up better under contention: small %.2f vs big %.2f",
			smallTrend, bigTrend)
	}
	if small32 < small4*0.8 {
		t.Fatalf("1MB aggregate collapsed at 32:1 (%.2fx)", smallTrend)
	}
}

func TestSharedFileMode(t *testing.T) {
	k, fs := jaguarFS(8)
	res := execute(t, fs, Config{
		Writers:        16,
		BytesPerWriter: 4 * pfs.MB,
		Mode:           SharedFile,
		OSTs:           []int{0, 1, 2, 3},
	})
	k.Shutdown()
	if res.TotalBytes != 16*4*pfs.MB {
		t.Fatalf("total bytes %v", res.TotalBytes)
	}
	if !fs.Exists("ior.shared") {
		t.Fatal("shared file missing")
	}
}

func TestTwoSimultaneousRunsInterfere(t *testing.T) {
	// The paper's "XTP with Int." experiment: two IOR programs at once.
	solo := func() float64 {
		k := simkernel.New()
		fs := pfs.MustNew(k, machines.XTP(3).FS)
		defer k.Shutdown()
		res := execute(t, fs, Config{Writers: 512, BytesPerWriter: 64 * pfs.MB, Tag: "A"})
		return res.Elapsed
	}()
	duo := func() float64 {
		k := simkernel.New()
		fs := pfs.MustNew(k, machines.XTP(3).FS)
		defer k.Shutdown()
		runA, err := Launch(fs, Config{Writers: 512, BytesPerWriter: 64 * pfs.MB, Tag: "A"})
		if err != nil {
			t.Fatal(err)
		}
		runB, err := Launch(fs, Config{Writers: 512, BytesPerWriter: 64 * pfs.MB, Tag: "B"})
		if err != nil {
			t.Fatal(err)
		}
		k.Run()
		if !runA.Done() || !runB.Done() {
			t.Fatal("runs did not complete")
		}
		return runA.Result().Elapsed
	}()
	if duo <= solo*1.2 {
		t.Fatalf("second IOR barely slowed the first: solo=%v duo=%v", solo, duo)
	}
}

func TestConfigErrors(t *testing.T) {
	k, fs := jaguarFS(4)
	defer k.Shutdown()
	if _, err := Launch(fs, Config{Writers: 0}); err == nil {
		t.Error("zero writers should error")
	}
	if _, err := Launch(fs, Config{Writers: 1, BytesPerWriter: -1}); err == nil {
		t.Error("negative size should error")
	}
	if _, err := Launch(fs, Config{Writers: 1, BytesPerWriter: 1, OSTs: []int{99}}); err == nil {
		t.Error("bad OST should error")
	}
}

func TestResultBeforeCompletionPanics(t *testing.T) {
	k, fs := jaguarFS(4)
	defer k.Shutdown()
	run, err := Launch(fs, Config{Writers: 2, BytesPerWriter: pfs.MB})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic reading result early")
		}
	}()
	_ = run.Result()
}

func TestDeterministicResults(t *testing.T) {
	sample := func() Result {
		k, fs := jaguarFS(8)
		defer k.Shutdown()
		return execute(t, fs, Config{Writers: 32, BytesPerWriter: 16 * pfs.MB})
	}
	a, b := sample(), sample()
	if a.Elapsed != b.Elapsed || a.AggregateBW != b.AggregateBW {
		t.Fatalf("nondeterministic IOR: %v vs %v", a.Elapsed, b.Elapsed)
	}
	for i := range a.WriterTimes {
		if a.WriterTimes[i] != b.WriterTimes[i] {
			t.Fatalf("writer %d time diverged", i)
		}
	}
}
