package ior

import (
	"fmt"

	"repro/internal/pfs"
	"repro/internal/simkernel"
)

// The continuation rendition of the IOR writer body. Launch selects it by
// default (REPRO_NO_CONT=1 restores the goroutine writers); both engines
// schedule the same events in the same order, pinned by
// TestContWritersMatchGoroutine.

// iorShared carries the shared-file handle from writer 0 to the rest of a
// SharedFile-mode run (the cont counterpart of Launch's captured variable).
type iorShared struct {
	f *pfs.File
}

// iorWriter is one writer's state machine: create (untimed), barrier, then
// the timed write/flush region, and the collective bookkeeping.
type iorWriter struct {
	pc  int
	run *Run
	i   int

	fileName string
	layout   pfs.Layout
	doCreate bool
	offset   int64
	shared   *iorShared

	ready *simkernel.WaitGroup
	start *simkernel.Signal

	f  *pfs.File
	t0 simkernel.Time

	create  pfs.CreateOp
	write   pfs.WriteOp
	flushOp pfs.FlushOp
	closeOp pfs.CloseOp
}

//repro:hotpath
func (m *iorWriter) Step(c *simkernel.ContProc) bool {
	cfg := &m.run.cfg
	for {
		switch m.pc {
		case 0:
			if m.doCreate {
				m.create.BeginCreate(m.run.fs, m.fileName, m.layout)
				m.pc = 1
			} else {
				m.pc = 2
			}
		case 1:
			if !m.create.Step(c) {
				return false
			}
			if err := m.create.Err(); err != nil {
				panic(err)
			}
			if cfg.Mode == SharedFile {
				m.shared.f = m.create.File()
			} else {
				m.f = m.create.File()
			}
			m.pc = 2
		case 2:
			m.ready.Done()
			m.pc = 3
		case 3:
			if !m.start.WaitCont(c) {
				return false
			}
			if cfg.Mode == SharedFile {
				m.f = m.shared.f
			}
			m.t0 = c.Now()
			m.write.BeginWrite(m.f, m.offset, int64(cfg.BytesPerWriter))
			m.pc = 4
		case 4:
			if !m.write.Step(c) {
				return false
			}
			if m.write.Err() != nil {
				// Target down: mirrors the goroutine writer — bytes lost,
				// still close and join.
				m.run.result.FailedWriters++
				m.pc = 6
			} else if cfg.Flush {
				m.flushOp.BeginFlush(m.f)
				m.pc = 5
			} else {
				m.run.result.TotalBytes += cfg.BytesPerWriter
				m.pc = 6
			}
		case 5:
			if !m.flushOp.Step(c) {
				return false
			}
			m.run.result.TotalBytes += cfg.BytesPerWriter
			m.pc = 6
		case 6:
			m.run.result.WriterTimes[m.i] = (c.Now() - m.t0).Seconds()
			m.closeOp.BeginClose(m.f)
			m.pc = 7
		default:
			if !m.closeOp.Step(c) {
				return false
			}
			m.run.done.Done()
			return true
		}
	}
}

// launchContWriters spawns the continuation writers: same process names,
// same spawn order, and the same per-writer flow as the goroutine path in
// Launch. File names and layouts are resolved here, off the hot path.
func launchContWriters(fs *pfs.FileSystem, run *Run, osts []int,
	ready *simkernel.WaitGroup, start *simkernel.Signal) {
	cfg := run.cfg
	shared := &iorShared{}
	for i := 0; i < cfg.Writers; i++ {
		w := &iorWriter{
			run:    run,
			i:      i,
			shared: shared,
			ready:  ready,
			start:  start,
		}
		switch cfg.Mode {
		case FilePerProcess:
			w.doCreate = true
			w.fileName = fmt.Sprintf("ior%s.%06d", cfg.Tag, i)
			w.layout = pfs.Layout{OSTs: []int{osts[i%len(osts)]}}
		case SharedFile:
			if i == 0 {
				w.doCreate = true
				w.fileName = "ior" + cfg.Tag + ".shared"
				w.layout = pfs.Layout{OSTs: osts}
			}
			w.offset = int64(i) * int64(cfg.BytesPerWriter)
		}
		fs.K.SpawnCont(fmt.Sprintf("ior%s-w%d", cfg.Tag, i), w)
	}
}
