package scenario

import (
	"fmt"

	"repro/internal/pfs"
	"repro/internal/stats"
	"repro/metrics"
)

// Table renders the generic per-point summary used for custom (file-based)
// scenarios: one row per grid point with bandwidth, variability and
// imbalance statistics over its samples — the same reductions the paper's
// Table I applies to its measurement series.
func (r *Result) Table() metrics.Table {
	title := r.Scenario.Name
	if r.Scenario.Description != "" {
		title += " — " + r.Scenario.Description
	}
	t := metrics.Table{
		Title: title,
		Header: []string{"Point", "Samples", "Avg. BW (MB/sec)", "Std. Deviation",
			"Covariance", "Avg. Elapsed (s)", "Avg. Imbalance"},
	}
	for _, pt := range r.Points {
		var bws, elapsed, imb []float64
		for _, smp := range pt.Samples {
			bws = append(bws, smp.AggregateBW/pfs.MB)
			elapsed = append(elapsed, smp.Elapsed)
			if len(smp.WriterTimes) > 0 {
				imb = append(imb, smp.ImbalanceFactor())
			}
		}
		bw := stats.Summarize(bws)
		t.AddRow(
			pt.Label,
			fmt.Sprintf("%d", len(pt.Samples)),
			fmt.Sprintf("%.3e", bw.Mean),
			fmt.Sprintf("%.3e", bw.StdDev),
			fmt.Sprintf("%.0f%%", bw.CoVPercent()),
			fmt.Sprintf("%.3f", stats.Summarize(elapsed).Mean),
			imbCell(imb),
		)
	}
	return t
}

func imbCell(imb []float64) string {
	if len(imb) == 0 {
		return "-"
	}
	return fmt.Sprintf("%.2f", stats.Summarize(imb).Mean)
}

// Summary produces the headline lines for a generic scenario run.
func (r *Result) Summary() []string {
	replicas := 0
	for _, pt := range r.Points {
		replicas += len(pt.Samples)
	}
	out := []string{fmt.Sprintf("%s: %d grid points, %d replicas",
		r.Scenario.Name, len(r.Points), replicas)}
	for _, pt := range r.Points {
		var bws []float64
		for _, smp := range pt.Samples {
			bws = append(bws, smp.AggregateBW/pfs.MB)
		}
		sum := stats.Summarize(bws)
		out = append(out, fmt.Sprintf("  %s: %.3e MB/s mean, CoV %.0f%%",
			pt.Label, sum.Mean, sum.CoVPercent()))
	}
	return out
}
