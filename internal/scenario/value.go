package scenario

import (
	"encoding/json"
	"fmt"
	"strconv"
)

// ValueKind discriminates the scalar held by a Value.
type ValueKind int

const (
	// KindNumber holds a float64 (JSON numbers; ints round-trip exactly up
	// to 2^53).
	KindNumber ValueKind = iota
	// KindString holds a string.
	KindString
	// KindBool holds a bool.
	KindBool
)

// Value is one axis value (or With-bundle binding): a scalar plus optional
// per-value label, sample-count override, and extra parameter bindings.
//
// In JSON a Value is either a bare scalar (8, "MPI", true) or an object:
//
//	{"value": "xtp", "label": "XTP(with Int.)", "samples": 4,
//	 "with": {"writers": 64, "noise": false}}
type Value struct {
	Kind ValueKind
	Str  string
	Num  float64
	Bool bool

	// Label overrides the axis LabelFmt for this value.
	Label string
	// Samples overrides the scenario's sample count for points carrying
	// this value (inner axes win when several override).
	Samples int
	// With binds extra parameters alongside the axis's own — the mechanism
	// that lets one axis switch machine, writer count and workload kind
	// together (Table I's machine column).
	With map[string]Value
}

// NumValue builds a number value.
func NumValue(f float64) Value { return Value{Kind: KindNumber, Num: f} }

// StrValue builds a string value.
func StrValue(s string) Value { return Value{Kind: KindString, Str: s} }

// BoolValue builds a bool value.
func BoolValue(b bool) Value { return Value{Kind: KindBool, Bool: b} }

// String renders the scalar the way JSON would.
func (v Value) String() string {
	switch v.Kind {
	case KindString:
		return v.Str
	case KindBool:
		return strconv.FormatBool(v.Bool)
	default:
		return strconv.FormatFloat(v.Num, 'g', -1, 64)
	}
}

// Float returns the scalar as a float64 (strings parse, bools are 0/1).
func (v Value) Float() float64 {
	switch v.Kind {
	case KindNumber:
		return v.Num
	case KindBool:
		if v.Bool {
			return 1
		}
		return 0
	default:
		f, _ := strconv.ParseFloat(v.Str, 64)
		return f
	}
}

// Int returns the scalar truncated to an int.
func (v Value) Int() int { return int(v.Float()) }

// IsTrue returns the scalar as a bool (numbers: non-zero, strings: "true").
func (v Value) IsTrue() bool {
	switch v.Kind {
	case KindBool:
		return v.Bool
	case KindNumber:
		return v.Num != 0
	default:
		return v.Str == "true"
	}
}

func (v Value) scalarJSON() ([]byte, error) {
	switch v.Kind {
	case KindString:
		return json.Marshal(v.Str)
	case KindBool:
		return json.Marshal(v.Bool)
	default:
		return json.Marshal(v.Num)
	}
}

// MarshalJSON emits a bare scalar when the value carries no decoration.
func (v Value) MarshalJSON() ([]byte, error) {
	if v.Label == "" && v.Samples == 0 && len(v.With) == 0 {
		return v.scalarJSON()
	}
	sc, err := v.scalarJSON()
	if err != nil {
		return nil, err
	}
	return json.Marshal(struct {
		Value   json.RawMessage  `json:"value"`
		Label   string           `json:"label,omitempty"`
		Samples int              `json:"samples,omitempty"`
		With    map[string]Value `json:"with,omitempty"`
	}{Value: sc, Label: v.Label, Samples: v.Samples, With: v.With})
}

// UnmarshalJSON accepts either form.
func (v *Value) UnmarshalJSON(b []byte) error {
	trimmed := trimLeftSpace(b)
	if len(trimmed) > 0 && trimmed[0] == '{' {
		var aux struct {
			Value   json.RawMessage  `json:"value"`
			Label   string           `json:"label"`
			Samples int              `json:"samples"`
			With    map[string]Value `json:"with"`
		}
		if err := json.Unmarshal(b, &aux); err != nil {
			return err
		}
		if len(aux.Value) == 0 {
			return fmt.Errorf("axis value object needs a \"value\" field")
		}
		if err := v.unmarshalScalar(aux.Value); err != nil {
			return err
		}
		v.Label, v.Samples, v.With = aux.Label, aux.Samples, aux.With
		return nil
	}
	return v.unmarshalScalar(b)
}

func (v *Value) unmarshalScalar(b []byte) error {
	var x any
	if err := json.Unmarshal(b, &x); err != nil {
		return err
	}
	switch t := x.(type) {
	case bool:
		*v = Value{Kind: KindBool, Bool: t}
	case float64:
		*v = Value{Kind: KindNumber, Num: t}
	case string:
		*v = Value{Kind: KindString, Str: t}
	default:
		return fmt.Errorf("axis value must be a number, string or bool, got %s", string(b))
	}
	return nil
}

func trimLeftSpace(b []byte) []byte {
	for len(b) > 0 && (b[0] == ' ' || b[0] == '\t' || b[0] == '\n' || b[0] == '\r') {
		b = b[1:]
	}
	return b
}

// Params is a grid point's resolved parameter bindings (axis name → value,
// plus any With-bundle entries).
type Params map[string]Value

// Has reports whether the point binds the parameter.
func (p Params) Has(name string) bool { _, ok := p[name]; return ok }

// Str returns the parameter as a string, or def when unbound.
func (p Params) Str(name, def string) string {
	if v, ok := p[name]; ok {
		return v.String()
	}
	return def
}

// Float returns the parameter as a float64, or def when unbound.
func (p Params) Float(name string, def float64) float64 {
	if v, ok := p[name]; ok {
		return v.Float()
	}
	return def
}

// Int returns the parameter as an int, or def when unbound.
func (p Params) Int(name string, def int) int {
	if v, ok := p[name]; ok {
		return v.Int()
	}
	return def
}

// Bool returns the parameter as a bool, or def when unbound.
func (p Params) Bool(name string, def bool) bool {
	if v, ok := p[name]; ok {
		return v.IsTrue()
	}
	return def
}

func cloneParams(p Params) Params {
	out := make(Params, len(p)+1)
	for k, v := range p { //repro:allow nodeterm keyed map-to-map copy; result is independent of visit order
		out[k] = v
	}
	return out
}

// labelFor renders the point-label fragment for one value of the axis.
func (a Axis) labelFor(v Value) string {
	if v.Label != "" {
		return v.Label
	}
	if a.LabelFmt == "" {
		return a.Name + "=" + v.String()
	}
	return formatLabel(a.LabelFmt, v)
}

// formatLabel applies a single-verb fmt string to the value, choosing the
// Go argument type the verb expects so "%d" grids format identically to the
// hand-written drivers they replaced.
func formatLabel(f string, v Value) string {
	switch verbOf(f) {
	case 'd', 'b', 'o', 'x', 'X', 'c', 'U':
		return fmt.Sprintf(f, int64(v.Float()))
	case 'e', 'E', 'f', 'F', 'g', 'G':
		return fmt.Sprintf(f, v.Float())
	case 't':
		return fmt.Sprintf(f, v.IsTrue())
	default:
		return fmt.Sprintf(f, v.String())
	}
}

// verbOf finds the first real fmt verb in the format string.
func verbOf(f string) byte {
	for i := 0; i < len(f); i++ {
		if f[i] != '%' {
			continue
		}
		if i+1 < len(f) && f[i+1] == '%' {
			i++
			continue
		}
		for j := i + 1; j < len(f); j++ {
			c := f[j]
			if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') {
				return c
			}
		}
	}
	return 0
}
