package scenario

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/pfs"
)

// mixSpec is a three-job heterogeneous mix at toy scale: a phased
// checkpoint writer, a read-heavy training job and a metadata storm, all
// sharing one 4-OST file system.
func mixSpec() Scenario {
	return Scenario{
		Name:      "mix-test",
		NumOSTs:   4,
		Samples:   1,
		Transport: Transport{Method: "MPI", OSTs: 4},
		Jobs: []JobSpec{
			{Name: "ckpt", Kind: JobKindApp, Generator: "pixie3d-small", Procs: 4,
				Phases: 2, PeriodSeconds: 5},
			{Name: "train", Kind: JobKindMLRead, Procs: 4, SizeMB: 2,
				Phases: 3, PeriodSeconds: 2, StartSeconds: 1},
			{Name: "meta", Kind: JobKindMDTest, Procs: 2, FilesPerRank: 4,
				Phases: 2, PeriodSeconds: 1},
		},
	}
}

func TestJobMixRun(t *testing.T) {
	res, err := Run(mixSpec(), RunOptions{Seed: 42, Parallel: 1})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(res.Points) != 1 || len(res.Points[0].Samples) != 1 {
		t.Fatalf("want 1 point x 1 sample, got %+v", res.Points)
	}
	s := res.Points[0].Samples[0]
	if len(s.Jobs) != 3 {
		t.Fatalf("want 3 job samples, got %d", len(s.Jobs))
	}
	byName := map[string]JobSample{}
	for _, j := range s.Jobs {
		byName[j.Name] = j
	}

	ckpt := byName["ckpt"]
	// 4 ranks x 2 phases x 2 MB of data, plus a sliver of transport
	// index/metadata writes (also attributed to the job).
	if wantW := float64(4 * 2 * 2 * pfs.MB); ckpt.BytesWritten < wantW || ckpt.BytesWritten > wantW*1.01 {
		t.Errorf("ckpt wrote %g bytes, want within 1%% above %g", ckpt.BytesWritten, wantW)
	}
	if ckpt.BytesRead != 0 {
		t.Errorf("ckpt read %g bytes, want 0", ckpt.BytesRead)
	}

	train := byName["train"]
	if wantR := float64(4 * 3 * 2 * pfs.MB); train.BytesRead != wantR { // 4 ranks x 3 phases x 2 MB
		t.Errorf("train read %g bytes, want %g", train.BytesRead, wantR)
	}
	if train.BytesWritten != 0 {
		t.Errorf("train wrote %g bytes, want 0", train.BytesWritten)
	}
	if train.Start != 1 {
		t.Errorf("train start = %g, want 1", train.Start)
	}

	meta := byName["meta"]
	if wantW := float64(2 * 2 * 4 * 4096); meta.BytesWritten != wantW { // 2 ranks x 2 phases x 4 files x 4 KiB
		t.Errorf("meta wrote %g bytes, want %g", meta.BytesWritten, wantW)
	}
	if meta.MetaOps < 2*2*4 {
		t.Errorf("meta did %d metadata ops, want >= %d", meta.MetaOps, 2*2*4)
	}

	var total, makespan float64
	for _, j := range s.Jobs {
		total += j.BytesWritten + j.BytesRead
		if j.Elapsed <= j.Start {
			t.Errorf("job %s finished at %g before its start %g", j.Name, j.Elapsed, j.Start)
		}
		if j.BW <= 0 {
			t.Errorf("job %s has non-positive bandwidth %g", j.Name, j.BW)
		}
		if j.Elapsed > makespan {
			makespan = j.Elapsed
		}
	}
	if s.TotalBytes != total {
		t.Errorf("aggregate TotalBytes = %g, want per-job sum %g", s.TotalBytes, total)
	}
	if s.Elapsed != makespan {
		t.Errorf("aggregate Elapsed = %g, want makespan %g", s.Elapsed, makespan)
	}
}

// TestJobMixDeterminism pins the reuse and parallelism contracts for
// multi-application worlds: 1 worker, 8 workers, and fresh-world-per-replica
// must all produce bit-identical results.
func TestJobMixDeterminism(t *testing.T) {
	spec := mixSpec()
	spec.Samples = 3 // several replicas per worker so pooled Reset actually runs

	run := func(parallel int, noReuse bool) []PointResult {
		res, err := Run(spec, RunOptions{Seed: 7, Parallel: parallel, NoReuse: noReuse})
		if err != nil {
			t.Fatalf("run (parallel=%d noReuse=%v): %v", parallel, noReuse, err)
		}
		return res.Points
	}

	want := run(1, false)
	if got := run(8, false); !reflect.DeepEqual(got, want) {
		t.Errorf("8 workers diverged from sequential:\n got %+v\nwant %+v", got, want)
	}
	if got := run(2, true); !reflect.DeepEqual(got, want) {
		t.Errorf("fresh worlds diverged from reused worlds:\n got %+v\nwant %+v", got, want)
	}
	t.Setenv("REPRO_NO_REUSE", "1") // the env escape hatch must match too
	if got := run(4, false); !reflect.DeepEqual(got, want) {
		t.Errorf("REPRO_NO_REUSE=1 diverged from reused worlds:\n got %+v\nwant %+v", got, want)
	}
}

func TestJobMixJSONRoundTrip(t *testing.T) {
	s := mixSpec()
	b, err := s.JSON()
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	got, err := Parse(b)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if !reflect.DeepEqual(got.Jobs, s.Jobs) {
		t.Errorf("jobs differ after round trip:\n got %+v\nwant %+v", got.Jobs, s.Jobs)
	}
	if err := got.Validate(); err != nil {
		t.Errorf("round-tripped spec invalid: %v", err)
	}
}

// TestJobMixNJobsCycling checks the "njobs" axis: templates cycle and
// replicated jobs get distinguishing name suffixes, so the shape key
// differs for every concurrency level.
func TestJobMixNJobsCycling(t *testing.T) {
	s := mixSpec()
	cfg, err := s.resolve(Params{"njobs": NumValue(5)})
	if err != nil {
		t.Fatalf("resolve: %v", err)
	}
	var names []string
	for _, j := range cfg.jobs {
		names = append(names, j.name)
	}
	want := []string{"ckpt", "train", "meta", "ckpt#2", "train#2"}
	if !reflect.DeepEqual(names, want) {
		t.Errorf("names = %v, want %v", names, want)
	}

	cfg1, err := s.resolve(Params{"njobs": NumValue(1)})
	if err != nil {
		t.Fatalf("resolve njobs=1: %v", err)
	}
	if cfg.shape == cfg1.shape {
		t.Errorf("shape key did not change with njobs: %q", cfg.shape)
	}
}

// TestJobMixMethodAxis checks the static-vs-adaptive sweep knob: a
// "method" binding overrides every app job's transport method.
func TestJobMixMethodAxis(t *testing.T) {
	s := mixSpec()
	cfg, err := s.resolve(Params{"method": StrValue("ADAPTIVE")})
	if err != nil {
		t.Fatalf("resolve: %v", err)
	}
	for _, j := range cfg.jobs {
		if j.kind == JobKindApp && j.transport.Method != "ADAPTIVE" {
			t.Errorf("job %s method = %q, want ADAPTIVE", j.name, j.transport.Method)
		}
	}
}

func TestJobMixValidation(t *testing.T) {
	cases := []struct {
		name string
		mut  func(s *Scenario)
		want string
	}{
		{"no jobs", func(s *Scenario) { s.Jobs = nil; s.Workload.Kind = KindJobMix }, "jobs array"},
		{"jobs on single-workload kind", func(s *Scenario) { s.Workload = Workload{Kind: KindIOR, Writers: 2, SizeMB: 1} }, "jobs array"},
		{"duplicate names", func(s *Scenario) { s.Jobs[1].Name = "ckpt" }, "duplicate job name"},
		{"unknown job kind", func(s *Scenario) { s.Jobs[0].Kind = "spark" }, "unknown job kind"},
		{"no procs", func(s *Scenario) { s.Jobs[2].Procs = 0 }, "positive process count"},
		{"app without generator", func(s *Scenario) { s.Jobs[0].Generator = "" }, "needs a generator"},
		{"unknown generator", func(s *Scenario) { s.Jobs[0].Generator = "hpl" }, "unknown generator"},
		{"negative timing", func(s *Scenario) { s.Jobs[1].StartSeconds = -1 }, "negative phase timing"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := mixSpec()
			tc.mut(&s)
			err := s.Validate()
			if err == nil {
				t.Fatalf("want error containing %q, got nil", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}
