package scenario

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/machines"
	"repro/internal/pfs"
	"repro/internal/runner"
	"repro/internal/workloads"
)

// Point is one compiled grid point: the cross product of one value per
// axis, with the scenario's sample count after per-value overrides.
type Point struct {
	Label   string
	Samples int
	Params  Params
}

// Points compiles the axes into the grid, first axis outermost — the same
// enumeration order the hand-written drivers used, so replica keys (and
// therefore progress callbacks and result layout) are stable.
func (s *Scenario) Points() []Point {
	if len(s.Axes) == 0 {
		label := s.PointLabel
		if label == "" {
			label = "all"
		}
		return []Point{{Label: label, Samples: s.Samples, Params: Params{}}}
	}
	pts := []Point{{Samples: s.Samples, Params: Params{}}}
	for _, ax := range s.Axes {
		next := make([]Point, 0, len(pts)*len(ax.Values))
		for _, p := range pts {
			for _, v := range ax.Values {
				np := Point{Label: joinLabel(p.Label, ax.labelFor(v)), Samples: p.Samples, Params: cloneParams(p.Params)}
				if v.Samples > 0 {
					np.Samples = v.Samples
				}
				np.Params[ax.Name] = v
				for k, wv := range v.With { //repro:allow nodeterm keyed map-to-map merge; result is independent of visit order
					np.Params[k] = wv
				}
				next = append(next, np)
			}
		}
		pts = next
	}
	return pts
}

func joinLabel(prefix, frag string) string {
	if prefix == "" {
		return frag
	}
	return prefix + "/" + frag
}

// ReplicaKeys lays the grid out as runner keys: for each point in order,
// samples 0..n-1. Seeds depend only on (seed label, point label, sample),
// never on this enumeration, so any regrouping stays bit-identical.
func (s *Scenario) ReplicaKeys() ([]runner.ReplicaKey, []Point) {
	pts := s.Points()
	var keys []runner.ReplicaKey
	for _, pt := range pts {
		keys = append(keys, runner.SampleKeys(s.seedLabel(), pt.Label, pt.Samples)...)
	}
	return keys, pts
}

// Validate checks the spec: identity, workload kind, transport method,
// machine and generator resolution, axis consistency, and a positive
// sample count at every compiled grid point.
func (s *Scenario) Validate() error {
	if s.seedLabel() == "" {
		return fmt.Errorf("scenario: needs a name (or seed_label)")
	}
	switch s.workloadKind() {
	case KindApp, KindIOR, KindPairedIOR, KindOpenStorm:
		if len(s.Jobs) > 0 {
			return fmt.Errorf("scenario %s: jobs array requires workload kind %q (or no kind), not %q", s.seedLabel(), KindJobMix, s.Workload.Kind)
		}
	case KindJobMix:
		if len(s.Jobs) == 0 {
			return fmt.Errorf("scenario %s: workload kind %q needs a jobs array", s.seedLabel(), KindJobMix)
		}
	case "":
		return fmt.Errorf("scenario %s: workload kind required (app | ior | paired-ior | openstorm | jobmix)", s.seedLabel())
	default:
		return fmt.Errorf("scenario %s: unknown workload kind %q (want app | ior | paired-ior | openstorm | jobmix)", s.seedLabel(), s.Workload.Kind)
	}
	if _, err := s.Workload.staggerDuration(); err != nil {
		return err
	}

	names := make(map[string]bool, len(s.Axes))
	for _, ax := range s.Axes {
		if ax.Name == "" {
			return fmt.Errorf("scenario %s: axis without a name", s.seedLabel())
		}
		if names[ax.Name] {
			return fmt.Errorf("scenario %s: conflicting grid axes: %q appears twice", s.seedLabel(), ax.Name)
		}
		names[ax.Name] = true
		if len(ax.Values) == 0 {
			return fmt.Errorf("scenario %s: axis %q has no values", s.seedLabel(), ax.Name)
		}
	}
	for _, ax := range s.Axes {
		for _, v := range ax.Values {
			// Check bound names in sorted order so that when a value binds
			// several conflicting names, validation deterministically reports
			// the same one every run.
			binds := make([]string, 0, len(v.With))
			for k := range v.With {
				binds = append(binds, k)
			}
			sort.Strings(binds)
			for _, k := range binds {
				if k != ax.Name && names[k] {
					return fmt.Errorf("scenario %s: axis %q value %q binds %q, which conflicts with grid axis %q",
						s.seedLabel(), ax.Name, ax.labelFor(v), k, k)
				}
			}
		}
	}

	seen := make(map[string]bool)
	for _, pt := range s.Points() {
		if seen[pt.Label] {
			return fmt.Errorf("scenario %s: conflicting grid axes: duplicate point label %q", s.seedLabel(), pt.Label)
		}
		seen[pt.Label] = true
		if pt.Samples <= 0 {
			return fmt.Errorf("scenario %s: point %q has zero samples", s.seedLabel(), pt.Label)
		}
		if _, err := s.resolve(pt.Params); err != nil {
			return fmt.Errorf("scenario %s: point %q: %w", s.seedLabel(), pt.Label, err)
		}
	}
	return nil
}

// replicaCfg is one grid point's fully resolved execution configuration.
type replicaCfg struct {
	kind    string
	machine string
	numOSTs int
	noise   bool

	// IOR-family knobs.
	writers          int
	bytes            float64
	pin              bool
	flush            bool
	shared           bool
	withInterference bool

	// openstorm knob.
	stagger time.Duration

	// app knobs.
	procs     int
	generator string
	method    string
	transport Transport

	// jobmix knobs: the resolved concurrent jobs and the canonical
	// world-shape key that partitions the reuse pool.
	jobs  []jobCfg
	shape string

	condition string
	// failures arms the spec's declared failure script on this point.
	failures bool
}

// jobCfg is one resolved job of a job mix.
type jobCfg struct {
	name      string
	kind      string
	generator string
	procs     int
	bytes     float64 // per-rank per-phase volume (mlread read size, mdtest file size)
	files     int     // mdtest creates per rank per phase
	transport Transport
	start     float64
	period    float64
	phases    int
}

// resolve merges the spec's base fields with one point's parameter
// bindings. Axis names are conventional: "machine", "osts", "noise",
// "kind", "writers", "ratio", "size" (MB), "bytes", "procs", "generator",
// "method", "transport_osts", "condition", "with_interference",
// "stagger" (ns), "failures" (arm the declared failure script),
// "adapt" (false = the DisableAdaptation ablation).
func (s *Scenario) resolve(p Params) (replicaCfg, error) {
	c := replicaCfg{
		kind:      p.Str("kind", s.workloadKind()),
		machine:   p.Str("machine", s.Machine),
		numOSTs:   p.Int("osts", s.NumOSTs),
		noise:     p.Bool("noise", !s.NoNoise),
		pin:       s.Workload.PinTargets,
		flush:     s.Workload.Flush,
		shared:    s.Workload.SharedFile,
		procs:     p.Int("procs", s.Workload.Procs),
		generator: p.Str("generator", s.Workload.Generator),
		method:    p.Str("method", s.Transport.Method),
		transport: s.Transport,
		condition: p.Str("condition", s.Interference.Condition),
		failures:  p.Bool("failures", s.Interference.Failures.declared()),
	}
	if p.Has("adapt") {
		c.transport.DisableAdaptation = !p.Bool("adapt", true)
	}
	if c.machine == "" {
		c.machine = "jaguar"
	}
	if c.condition == "" {
		c.condition = ConditionBase
	}
	if _, ok := machines.ByName(c.machine, 0); !ok {
		return c, fmt.Errorf("unknown machine %q (have %v)", c.machine, machines.Names())
	}
	if c.failures {
		if !s.Interference.Failures.declared() {
			return c, fmt.Errorf("failures axis armed but the spec declares no failure script")
		}
		m, _ := machines.ByName(c.machine, 0)
		n := m.FS.NumOSTs
		if c.numOSTs > 0 {
			n = c.numOSTs
		}
		if err := s.failureConfig(true).Validate(n); err != nil {
			return c, err
		}
	}

	c.bytes = s.Workload.Bytes
	if c.bytes == 0 {
		c.bytes = s.Workload.SizeMB * pfs.MB
	}
	if p.Has("size") {
		c.bytes = p.Float("size", 0) * pfs.MB
	}
	if p.Has("bytes") {
		c.bytes = p.Float("bytes", 0)
	}

	c.writers = p.Int("writers", s.Workload.Writers)
	if ratio := p.Int("ratio", s.Workload.WritersPerOST); ratio > 0 {
		c.writers = c.numOSTs * ratio
	}

	c.withInterference = p.Bool("with_interference", s.Workload.WithInterference)

	d, err := s.Workload.staggerDuration()
	if err != nil {
		return c, err
	}
	c.stagger = d
	if p.Has("stagger") {
		c.stagger = time.Duration(int64(p.Float("stagger", 0)))
	}

	c.transport.Method = c.method
	c.transport.OSTs = p.Int("transport_osts", s.Transport.OSTs)

	switch c.kind {
	case KindApp:
		switch c.method {
		case "", "MPI", "POSIX", "ADAPTIVE", "STAGING":
		default:
			return c, fmt.Errorf("unknown transport method %q (want MPI | POSIX | ADAPTIVE | STAGING)", c.method)
		}
		if c.procs <= 0 {
			return c, fmt.Errorf("app workload needs a positive process count")
		}
		if s.Workload.PerRank == nil {
			if c.generator == "" {
				return c, fmt.Errorf("app workload needs a generator")
			}
			if _, err := workloads.ByName(c.generator); err != nil {
				return c, err
			}
		}
	case KindIOR, KindPairedIOR, KindOpenStorm:
		if c.writers <= 0 {
			return c, fmt.Errorf("%s workload needs positive writers (or a ratio with osts set)", c.kind)
		}
		if c.bytes < 0 {
			return c, fmt.Errorf("negative per-writer size")
		}
	case KindJobMix:
		if err := s.resolveJobs(&c, p); err != nil {
			return c, err
		}
	default:
		return c, fmt.Errorf("unknown workload kind %q", c.kind)
	}
	return c, nil
}

// workloadKind resolves the spec's workload kind, defaulting to jobmix when
// a jobs array is declared without an explicit kind.
func (s *Scenario) workloadKind() string {
	if s.Workload.Kind == "" && len(s.Jobs) > 0 {
		return KindJobMix
	}
	return s.Workload.Kind
}

// resolveJobs expands the spec's job templates for one grid point. Two axes
// are job-mix specific: "njobs" cycles the template list to N concurrent
// jobs (replicated jobs get a "#k" name suffix), and "method" overrides
// every app job's transport method — the static-vs-adaptive sweep knob.
func (s *Scenario) resolveJobs(c *replicaCfg, p Params) error {
	if len(s.Jobs) == 0 {
		return fmt.Errorf("jobmix workload needs a jobs array")
	}
	n := p.Int("njobs", len(s.Jobs))
	if n <= 0 {
		return fmt.Errorf("njobs must be positive")
	}
	c.jobs = make([]jobCfg, 0, n)
	seen := make(map[string]bool, n)
	for i := 0; i < n; i++ {
		js := s.Jobs[i%len(s.Jobs)]
		jc := jobCfg{
			name:      js.Name,
			kind:      js.Kind,
			generator: js.Generator,
			procs:     js.Procs,
			files:     js.FilesPerRank,
			transport: js.Transport,
			start:     js.StartSeconds,
			period:    js.PeriodSeconds,
			phases:    js.Phases,
		}
		if jc.name == "" {
			jc.name = fmt.Sprintf("job%d", i%len(s.Jobs))
		}
		if rep := i / len(s.Jobs); rep > 0 {
			jc.name = fmt.Sprintf("%s#%d", jc.name, rep+1)
		}
		if seen[jc.name] {
			return fmt.Errorf("duplicate job name %q in mix", jc.name)
		}
		seen[jc.name] = true
		if jc.phases <= 0 {
			jc.phases = 1
		}
		if jc.procs <= 0 {
			return fmt.Errorf("job %q needs a positive process count", jc.name)
		}
		if jc.start < 0 || jc.period < 0 {
			return fmt.Errorf("job %q has negative phase timing", jc.name)
		}
		jc.bytes = js.Bytes
		if jc.bytes == 0 {
			jc.bytes = js.SizeMB * pfs.MB
		}
		if jc.transport.OSTs == 0 {
			jc.transport.OSTs = c.transport.OSTs
		}
		switch js.Kind {
		case JobKindApp:
			if p.Has("method") || jc.transport.Method == "" {
				jc.transport.Method = c.method
			}
			switch jc.transport.Method {
			case "", "MPI", "POSIX", "ADAPTIVE", "STAGING":
			default:
				return fmt.Errorf("job %q: unknown transport method %q (want MPI | POSIX | ADAPTIVE | STAGING)", jc.name, jc.transport.Method)
			}
			if jc.generator == "" {
				return fmt.Errorf("job %q: app job needs a generator", jc.name)
			}
			if _, err := workloads.ByName(jc.generator); err != nil {
				return fmt.Errorf("job %q: %w", jc.name, err)
			}
		case JobKindMLRead:
			if jc.generator == "" {
				jc.generator = "mltrain"
			}
			gen, err := workloads.ByName(jc.generator)
			if err != nil {
				return fmt.Errorf("job %q: %w", jc.name, err)
			}
			if jc.bytes == 0 {
				jc.bytes = float64(gen.BytesPerProcess)
			}
		case JobKindMDTest:
			if jc.files <= 0 {
				jc.files = 16
			}
			if jc.bytes == 0 {
				jc.bytes = workloads.MDTestBytesPerFile
			}
		default:
			return fmt.Errorf("job %q: unknown job kind %q (want app | mlread | mdtest)", jc.name, js.Kind)
		}
		c.jobs = append(c.jobs, jc)
	}
	c.shape = jobShape(c.jobs)
	return nil
}

// jobShape builds the canonical world-shape key (cluster.Config.WorldShape)
// for a resolved mix: one fragment per job in spec order, so two mixes share
// a reuse-pool bucket only when their application structure is identical.
func jobShape(jobs []jobCfg) string {
	var b strings.Builder
	b.WriteString("mix[")
	for i, j := range jobs {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s:%s:%d:%d", j.kind, j.name, j.procs, j.phases)
	}
	b.WriteByte(']')
	return b.String()
}

// ApplySet applies one -set key=value override to the spec: axis names
// replace that axis's values (comma-separated scalars, labels regenerated
// from the axis format), everything else targets the conventional spec
// fields. Call Validate afterwards.
func ApplySet(s *Scenario, assignment string) error {
	key, val, ok := strings.Cut(assignment, "=")
	if !ok {
		return fmt.Errorf("scenario: -set wants key=value, got %q", assignment)
	}
	key, val = strings.TrimSpace(key), strings.TrimSpace(val)

	for i := range s.Axes {
		if s.Axes[i].Name != key {
			continue
		}
		vals, err := parseValueList(val)
		if err != nil {
			return fmt.Errorf("scenario: -set %s: %w", key, err)
		}
		s.Axes[i].Values = vals
		return nil
	}

	switch key {
	case "samples":
		n, err := strconv.Atoi(val)
		if err != nil {
			return fmt.Errorf("scenario: -set samples: %v", err)
		}
		s.Samples = n
		// An explicit override beats the per-value counts too.
		for i := range s.Axes {
			for j := range s.Axes[i].Values {
				s.Axes[i].Values[j].Samples = 0
			}
		}
	case "machine":
		s.Machine = val
	case "osts", "num_osts":
		n, err := strconv.Atoi(val)
		if err != nil {
			return fmt.Errorf("scenario: -set %s: %v", key, err)
		}
		s.NumOSTs = n
	case "noise":
		b, err := strconv.ParseBool(val)
		if err != nil {
			return fmt.Errorf("scenario: -set noise: %v", err)
		}
		s.NoNoise = !b
	case "no_noise":
		b, err := strconv.ParseBool(val)
		if err != nil {
			return fmt.Errorf("scenario: -set no_noise: %v", err)
		}
		s.NoNoise = b
	case "procs":
		n, err := strconv.Atoi(val)
		if err != nil {
			return fmt.Errorf("scenario: -set procs: %v", err)
		}
		s.Workload.Procs = n
	case "writers":
		n, err := strconv.Atoi(val)
		if err != nil {
			return fmt.Errorf("scenario: -set writers: %v", err)
		}
		s.Workload.Writers = n
	case "ratio":
		n, err := strconv.Atoi(val)
		if err != nil {
			return fmt.Errorf("scenario: -set ratio: %v", err)
		}
		s.Workload.WritersPerOST = n
	case "size_mb":
		f, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return fmt.Errorf("scenario: -set size_mb: %v", err)
		}
		s.Workload.SizeMB, s.Workload.Bytes = f, 0
	case "generator":
		s.Workload.Generator = val
		s.Workload.PerRank = nil
	case "method":
		s.Transport.Method = val
	case "transport_osts":
		n, err := strconv.Atoi(val)
		if err != nil {
			return fmt.Errorf("scenario: -set transport_osts: %v", err)
		}
		s.Transport.OSTs = n
	case "condition":
		s.Interference.Condition = val
	case "adapt":
		b, err := strconv.ParseBool(val)
		if err != nil {
			return fmt.Errorf("scenario: -set adapt: %v", err)
		}
		s.Transport.DisableAdaptation = !b
	case "failures":
		b, err := strconv.ParseBool(val)
		if err != nil {
			return fmt.Errorf("scenario: -set failures: %v", err)
		}
		if !b {
			// Disarm the declared script without an axis.
			s.Interference.Failures = FailuresSpec{}
		} else if !s.Interference.Failures.declared() {
			return fmt.Errorf("scenario: -set failures=true but the spec declares no failure script")
		}
	case "stagger":
		s.Workload.Stagger = val
	case "seed_label":
		s.SeedLabel = val
	default:
		return fmt.Errorf("scenario: unknown -set key %q (axes: %v; fields: samples machine osts noise no_noise procs writers ratio size_mb generator method transport_osts condition adapt failures stagger seed_label)",
			key, axisNames(s))
	}
	return nil
}

func axisNames(s *Scenario) []string {
	out := make([]string, len(s.Axes))
	for i, ax := range s.Axes {
		out[i] = ax.Name
	}
	return out
}

// parseValueList splits a -set axis override into scalar values.
func parseValueList(v string) ([]Value, error) {
	parts := strings.Split(v, ",")
	out := make([]Value, 0, len(parts))
	for _, part := range parts {
		part = strings.TrimSpace(part)
		if part == "" {
			return nil, fmt.Errorf("empty value in %q", v)
		}
		if f, err := strconv.ParseFloat(part, 64); err == nil {
			out = append(out, NumValue(f))
		} else if part == "true" || part == "false" {
			out = append(out, BoolValue(part == "true"))
		} else {
			out = append(out, StrValue(part))
		}
	}
	return out, nil
}
