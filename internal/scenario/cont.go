package scenario

import (
	"fmt"
	"time"

	"repro/adios"
	"repro/cluster"
	"repro/internal/iomethod"
	"repro/internal/pfs"
	"repro/internal/simkernel"
)

// Continuation renditions of the scenario executors' rank bodies. Each
// machine mirrors its goroutine counterpart in exec.go statement for
// statement — same guards, same event schedule — and the executors select
// the engine per launch via simkernel.ContEnabled() (plus the transport's
// ContCapable for the adios-backed bodies), falling back to the goroutine
// bodies otherwise.

// campaignOut collects the campaign step's shared outcome (all ranks
// return the same step-result pointer).
type campaignOut struct {
	res *adios.StepResult
	err error
}

// campaignCont is the application campaign rank body: open the step, buffer
// this rank's variables, collectively close.
type campaignCont struct {
	pc       int
	io       *adios.IO
	stepName string
	perRank  func(rank int) iomethod.RankData
	out      *campaignOut
	cc       adios.CloseCont
}

//repro:hotpath
func (m *campaignCont) StepRank(r *cluster.Rank, c *simkernel.ContProc) bool {
	for {
		switch m.pc {
		case 0:
			f := m.io.Open(r, m.stepName)
			f.WriteData(m.perRank(r.Rank()))
			f.BeginCloseCont(&m.cc)
			m.pc = 1
		default:
			if !m.cc.Step(c) {
				return false
			}
			rr, err := m.cc.Result()
			if err != nil {
				m.out.err = err
				return true
			}
			m.out.res = rr
			return true
		}
	}
}

// jobAppCont is the job-mix application body: per phase, wait for the phase
// clock, then run one collective output step.
type jobAppCont struct {
	pc, ph  int
	phases  int
	start   float64
	period  float64
	io      *adios.IO
	names   []string // per-phase step names, resolved at launch
	perRank func(rank int) iomethod.RankData
	errp    *error
	cc      adios.CloseCont
}

//repro:hotpath
func (m *jobAppCont) StepRank(r *cluster.Rank, c *simkernel.ContProc) bool {
	for {
		switch m.pc {
		case 0:
			if m.ph >= m.phases {
				return true
			}
			m.pc = 1
			if c.SleepUntil(simkernel.FromSeconds(m.start + float64(m.ph)*m.period)) {
				return false
			}
		case 1:
			f := m.io.Open(r, m.names[m.ph])
			f.WriteData(m.perRank(r.Rank()))
			f.BeginCloseCont(&m.cc)
			m.pc = 2
		default:
			if !m.cc.Step(c) {
				return false
			}
			if _, err := m.cc.Result(); err != nil {
				if *m.errp == nil {
					*m.errp = err
				}
				return true
			}
			m.ph++
			m.pc = 0
		}
	}
}

// appStepNames resolves a job's per-phase step names off the hot path.
func appStepNames(job string, phases int) []string {
	names := make([]string, phases)
	for ph := range names {
		names[ph] = fmt.Sprintf("%s.ph%03d.bp", job, ph)
	}
	return names
}

// jobMLReadCont is the job-mix training-read body: create the pre-existing
// dataset shard, then per phase wait for the clock and read it.
type jobMLReadCont struct {
	pc, ph  int
	phases  int
	start   float64
	period  float64
	fs      *pfs.FileSystem
	name    string
	ost     int
	bytes   int64
	errp    *error
	f       *pfs.File
	create  pfs.CreateOp
	read    pfs.ReadOp
	closeOp pfs.CloseOp
}

//repro:hotpath
func (m *jobMLReadCont) StepRank(r *cluster.Rank, c *simkernel.ContProc) bool {
	for {
		switch m.pc {
		case 0:
			m.create.BeginCreate(m.fs, m.name, pfs.Layout{OSTs: []int{m.ost}})
			m.pc = 1
		case 1:
			if !m.create.Step(c) {
				return false
			}
			if err := m.create.Err(); err != nil {
				if *m.errp == nil {
					*m.errp = err
				}
				return true
			}
			m.f = m.create.File()
			m.pc = 2
		case 2:
			if m.ph >= m.phases {
				m.closeOp.BeginClose(m.f)
				m.pc = 5
				continue
			}
			m.pc = 3
			if c.SleepUntil(simkernel.FromSeconds(m.start + float64(m.ph)*m.period)) {
				return false
			}
		case 3:
			m.read.BeginRead(m.f, 0, m.bytes)
			m.pc = 4
		case 4:
			if !m.read.Step(c) {
				return false
			}
			m.ph++
			m.pc = 2
		default:
			if !m.closeOp.Step(c) {
				return false
			}
			return true
		}
	}
}

// jobMDTestCont is the job-mix metadata-stress body: per phase, wait for
// the clock, then create/write/close a burst of small files.
type jobMDTestCont struct {
	pc, ph, fi int
	phases     int
	files      int
	start      float64
	period     float64
	fs         *pfs.FileSystem
	job        string
	rank       int
	numOSTs    int
	bytes      int64
	errp       *error
	f          *pfs.File
	create     pfs.CreateOp
	write      pfs.WriteOp
	closeOp    pfs.CloseOp
}

// mdtestFileName builds one burst file's name off the hot path.
func mdtestFileName(job string, rank, ph, fi int) string {
	return fmt.Sprintf("%s.r%05d.ph%03d.f%04d", job, rank, ph, fi)
}

//repro:hotpath
func (m *jobMDTestCont) StepRank(r *cluster.Rank, c *simkernel.ContProc) bool {
	for {
		switch m.pc {
		case 0:
			if m.ph >= m.phases {
				return true
			}
			m.fi = 0
			m.pc = 1
			if c.SleepUntil(simkernel.FromSeconds(m.start + float64(m.ph)*m.period)) {
				return false
			}
		case 1:
			if m.fi >= m.files {
				m.ph++
				m.pc = 0
				continue
			}
			m.create.BeginCreate(m.fs, mdtestFileName(m.job, m.rank, m.ph, m.fi),
				pfs.Layout{OSTs: []int{(m.rank + m.fi) % m.numOSTs}})
			m.pc = 2
		case 2:
			if !m.create.Step(c) {
				return false
			}
			if err := m.create.Err(); err != nil {
				if *m.errp == nil {
					*m.errp = err
				}
				return true
			}
			m.f = m.create.File()
			m.write.BeginWrite(m.f, 0, m.bytes)
			m.pc = 3
		case 3:
			if !m.write.Step(c) {
				return false
			}
			m.closeOp.BeginClose(m.f)
			m.pc = 4
		default:
			if !m.closeOp.Step(c) {
				return false
			}
			m.fi++
			m.pc = 1
		}
	}
}

// stormOpener is the open-storm body: an optional stagger delay, one
// create, one close, then the completion bookkeeping.
type stormOpener struct {
	pc      int
	fs      *pfs.FileSystem
	name    string
	ost     int
	stagger bool
	delay   time.Duration
	wg      *simkernel.WaitGroup
	last    *simkernel.Time
	create  pfs.CreateOp
	closeOp pfs.CloseOp
}

//repro:hotpath
func (m *stormOpener) Step(c *simkernel.ContProc) bool {
	for {
		switch m.pc {
		case 0:
			m.pc = 1
			// Matches the goroutine guard: with stagger enabled even the
			// zero-delay opener schedules a sleep event.
			if m.stagger {
				c.Sleep(m.delay)
				return false
			}
		case 1:
			m.create.BeginCreate(m.fs, m.name, pfs.Layout{OSTs: []int{m.ost}})
			m.pc = 2
		case 2:
			if !m.create.Step(c) {
				return false
			}
			if err := m.create.Err(); err != nil {
				panic(err)
			}
			m.closeOp.BeginClose(m.create.File())
			m.pc = 3
		default:
			if !m.closeOp.Step(c) {
				return false
			}
			if c.Now() > *m.last {
				*m.last = c.Now()
			}
			m.wg.Done()
			return true
		}
	}
}
