package scenario

import (
	"reflect"
	"testing"
)

// failureJSON is a minimal declarative failure-sweep spec as a user would
// write it: one scripted crash, armed per point by the "failures" axis.
const failureJSON = `{
  "name": "fail-e2e",
  "num_osts": 8,
  "no_noise": true,
  "samples": 2,
  "workload": {"kind": "app", "generator": "pixie3d-small", "procs": 16},
  "transport": {"method": "ADAPTIVE"},
  "interference": {"failures": {
    "dead_timeout_seconds": 0.2,
    "episodes": [{"ost": 0, "at_seconds": 0.01, "dead_seconds": 0.5,
                  "rebuild_seconds": 1, "rebuild_tax": 0.5}],
    "mds_stall_at_seconds": 0.001, "mds_stall_seconds": 0.005
  }},
  "axes": [{"name": "failures", "values": [false, true]}]
}`

// TestFailureAxisEndToEnd drives a declared failure script from JSON spec
// to executed campaign: the armed point must surface ErrTargetDown at the
// client and run measurably longer; the disarmed point must take the exact
// zero-value path.
func TestFailureAxisEndToEnd(t *testing.T) {
	s, err := Parse([]byte(failureJSON))
	if err != nil {
		t.Fatal(err)
	}
	run, err := Run(s, RunOptions{Seed: 42, Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	clean, failed := run.Point("failures=false"), run.Point("failures=true")
	if clean == nil || failed == nil {
		t.Fatal("grid points missing from run")
	}
	for _, smp := range clean.Samples {
		if smp.WriteFailures != 0 {
			t.Fatalf("disarmed point reported %d write failures", smp.WriteFailures)
		}
	}
	sawFailure := false
	for i, smp := range failed.Samples {
		if smp.WriteFailures > 0 {
			sawFailure = true
		}
		if smp.Elapsed <= clean.Samples[i].Elapsed {
			t.Fatalf("sample %d: outage run (%.3fs) not slower than clean run (%.3fs)",
				i, smp.Elapsed, clean.Samples[i].Elapsed)
		}
	}
	if !sawFailure {
		t.Fatal("armed failure script never surfaced ErrTargetDown at the client")
	}
}

// TestFailureSpecBitIdenticalToUndeclared pins the zero-impact contract: a
// spec that declares a failure script but never arms it (failures=false)
// produces samples bit-identical to the same spec with no failures block at
// all. Both specs keep the same axis so the replica seed streams — derived
// from point labels — are identical, isolating the script's presence.
func TestFailureSpecBitIdenticalToUndeclared(t *testing.T) {
	declared, err := Parse([]byte(failureJSON))
	if err != nil {
		t.Fatal(err)
	}
	declared.Axes = []Axis{{Name: "failures", Values: []Value{BoolValue(false)}}}
	bare, err := Parse([]byte(failureJSON))
	if err != nil {
		t.Fatal(err)
	}
	bare.Interference.Failures = FailuresSpec{}
	bare.Axes = declared.Axes
	run1, err := Run(declared, RunOptions{Seed: 7, Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	run2, err := Run(bare, RunOptions{Seed: 7, Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	off := run1.Point("failures=false")
	want := run2.Point("failures=false")
	if off == nil || want == nil {
		t.Fatal("expected points missing")
	}
	if !reflect.DeepEqual(off.Samples, want.Samples) {
		t.Fatalf("disarmed failure script perturbed the replica:\n got %+v\nwant %+v", off.Samples, want.Samples)
	}
}

// TestFailureValidation covers the compile-time failure checks: arming the
// axis with nothing declared, and scripts naming out-of-range targets.
func TestFailureValidation(t *testing.T) {
	s, err := Parse([]byte(failureJSON))
	if err != nil {
		t.Fatal(err)
	}
	s.Interference.Failures.Episodes[0].OST = 64 // beyond num_osts=8
	if err := s.Validate(); err == nil {
		t.Error("out-of-range episode target passed validation")
	}
	s, _ = Parse([]byte(failureJSON))
	s.Interference.Failures = FailuresSpec{}
	if err := s.Validate(); err == nil {
		t.Error("failures axis with no declared script passed validation")
	}
}
