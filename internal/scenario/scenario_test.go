package scenario

import (
	"reflect"
	"strings"
	"testing"
)

// roundTripSpec builds a spec exercising every serializable corner:
// decorated axis values (labels, per-value samples, With bundles),
// transport options and the interference model.
func roundTripSpec() Scenario {
	jag := StrValue("jaguar")
	jag.Label = "Jaguar"
	jag.Samples = 3
	jag.With = map[string]Value{"writers": NumValue(4)}
	return Scenario{
		Name:        "round-trip",
		Description: "serialization test",
		Machine:     "jaguar",
		NumOSTs:     4,
		NoNoise:     true,
		Samples:     2,
		Workload:    Workload{Kind: KindIOR, SizeMB: 8, Writers: 2, PinTargets: true},
		Transport:   Transport{Method: "ADAPTIVE", OSTs: 4, StagingNodes: 2},
		Interference: Interference{
			Condition: ConditionBase,
			SlowOSTs:  []SlowOST{{Index: 1, Factor: 0.5}},
		},
		Axes: []Axis{
			{Name: "machine", Values: []Value{jag, StrValue("franklin")}},
			{Name: "size", LabelFmt: "size=%gMB", Values: []Value{NumValue(1), NumValue(8)}},
		},
	}
}

func TestJSONRoundTrip(t *testing.T) {
	s := roundTripSpec()
	b, err := s.JSON()
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	got, err := Parse(b)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	// PerRank is func-typed and json:"-"; everything else must survive.
	if !reflect.DeepEqual(got.Points(), s.Points()) {
		t.Errorf("compiled grids differ after round trip:\n got %+v\nwant %+v", got.Points(), s.Points())
	}
	if !reflect.DeepEqual(got.Transport, s.Transport) {
		t.Errorf("transport differs: got %+v want %+v", got.Transport, s.Transport)
	}
	if !reflect.DeepEqual(got.Interference, s.Interference) {
		t.Errorf("interference differs: got %+v want %+v", got.Interference, s.Interference)
	}
}

func TestScalarValueEncoding(t *testing.T) {
	// Undecorated values must serialize as bare JSON scalars (the form
	// hand-written specs use), decorated ones as objects.
	s := roundTripSpec()
	b, err := s.JSON()
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	text := string(b)
	if !strings.Contains(text, `"franklin"`) {
		t.Errorf("undecorated string value did not encode as a bare scalar:\n%s", text)
	}
	if !strings.Contains(text, `"label": "Jaguar"`) {
		t.Errorf("decorated value lost its label:\n%s", text)
	}
}

func TestParseScalarForms(t *testing.T) {
	spec := `{
		"name": "scalar-forms",
		"samples": 1,
		"num_osts": 2,
		"workload": {"kind": "ior", "writers": 2, "size_mb": 1},
		"axes": [
			{"name": "size", "label": "size=%gMB", "values": [1, {"value": 8, "samples": 2}]},
			{"name": "noise", "values": [true, false]}
		]
	}`
	s, err := Parse([]byte(spec))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	pts := s.Points()
	if len(pts) != 4 {
		t.Fatalf("want 4 points, got %d", len(pts))
	}
	if pts[0].Label != "size=1MB/noise=true" {
		t.Errorf("label = %q", pts[0].Label)
	}
	if pts[0].Samples != 1 || pts[2].Samples != 2 {
		t.Errorf("per-value samples: got %d and %d, want 1 and 2", pts[0].Samples, pts[2].Samples)
	}
}

func TestParseRejectsUnknownFields(t *testing.T) {
	_, err := Parse([]byte(`{"name": "x", "workload": {"kind": "ior", "writers": 1}, "wrkload": 3}`))
	if err == nil || !strings.Contains(err.Error(), "wrkload") {
		t.Errorf("want unknown-field error naming the typo, got %v", err)
	}
}

func TestValidationErrors(t *testing.T) {
	base := func() Scenario {
		return Scenario{
			Name:     "v",
			NumOSTs:  2,
			Samples:  1,
			Workload: Workload{Kind: KindIOR, Writers: 2, SizeMB: 1},
		}
	}
	cases := []struct {
		name string
		mut  func(*Scenario)
		want string
	}{
		{"unknown transport", func(s *Scenario) {
			s.Workload = Workload{Kind: KindApp, Procs: 2, Generator: "gtc"}
			s.Transport.Method = "RDMA"
		}, "unknown transport method"},
		{"zero samples", func(s *Scenario) { s.Samples = 0 }, "zero samples"},
		{"conflicting axes", func(s *Scenario) {
			s.Axes = []Axis{
				{Name: "size", Values: []Value{NumValue(1)}},
				{Name: "size", Values: []Value{NumValue(8)}},
			}
		}, "conflicting grid axes"},
		{"with-bundle conflict", func(s *Scenario) {
			v := StrValue("jaguar")
			v.With = map[string]Value{"size": NumValue(4)}
			s.Axes = []Axis{
				{Name: "machine", Values: []Value{v}},
				{Name: "size", Values: []Value{NumValue(1)}},
			}
		}, "conflicts with grid axis"},
		{"unknown kind", func(s *Scenario) { s.Workload.Kind = "mapreduce" }, "unknown workload kind"},
		{"missing kind", func(s *Scenario) { s.Workload.Kind = "" }, "workload kind required"},
		{"unknown machine", func(s *Scenario) { s.Machine = "summit" }, "unknown machine"},
		{"unknown generator", func(s *Scenario) {
			s.Workload = Workload{Kind: KindApp, Procs: 2, Generator: "hpl"}
		}, "unknown generator"},
		{"no writers", func(s *Scenario) { s.Workload.Writers = 0 }, "positive writers"},
		{"no name", func(s *Scenario) { s.Name = "" }, "needs a name"},
		{"empty axis", func(s *Scenario) {
			s.Axes = []Axis{{Name: "size"}}
		}, "has no values"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := base()
			tc.mut(&s)
			err := s.Validate()
			if err == nil {
				t.Fatalf("want error containing %q, got nil", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

func TestApplySet(t *testing.T) {
	s := Scenario{
		Name:     "set",
		NumOSTs:  4,
		Samples:  2,
		Workload: Workload{Kind: KindIOR, Writers: 2, SizeMB: 1},
		Axes: []Axis{
			{Name: "size", LabelFmt: "size=%gMB", Values: []Value{NumValue(1), NumValue(8)}},
		},
	}
	if err := ApplySet(&s, "size=2,4"); err != nil {
		t.Fatalf("axis override: %v", err)
	}
	if got := s.Points(); len(got) != 2 || got[0].Label != "size=2MB" || got[1].Label != "size=4MB" {
		t.Errorf("axis override points: %+v", got)
	}
	if err := ApplySet(&s, "samples=5"); err != nil {
		t.Fatalf("samples: %v", err)
	}
	if s.Samples != 5 {
		t.Errorf("samples = %d", s.Samples)
	}
	if err := ApplySet(&s, "osts=8"); err != nil {
		t.Fatalf("osts: %v", err)
	}
	if s.NumOSTs != 8 {
		t.Errorf("num_osts = %d", s.NumOSTs)
	}
	if err := ApplySet(&s, "bogus=1"); err == nil || !strings.Contains(err.Error(), "unknown -set key") {
		t.Errorf("want unknown-key error, got %v", err)
	}
	if err := ApplySet(&s, "nokey"); err == nil || !strings.Contains(err.Error(), "key=value") {
		t.Errorf("want syntax error, got %v", err)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("spec invalid after overrides: %v", err)
	}
}

func TestLabelFormatting(t *testing.T) {
	named := NumValue(5e6)
	named.Label = "5ms"
	ax := Axis{Name: "stagger", Values: []Value{named}}
	if got := ax.labelFor(named); got != "5ms" {
		t.Errorf("explicit label: %q", got)
	}
	ax = Axis{Name: "ratio", LabelFmt: "ratio=%d", Values: nil}
	if got := ax.labelFor(NumValue(16)); got != "ratio=16" {
		t.Errorf("%%d label: %q", got)
	}
	ax = Axis{Name: "cond"}
	if got := ax.labelFor(StrValue("base")); got != "cond=base" {
		t.Errorf("default label: %q", got)
	}
}

// TestParallelDeterminism pins the layer's core contract: a scenario's
// results are bit-identical at every -parallel setting because replica
// seeds derive from grid coordinates, never from scheduling.
func TestParallelDeterminism(t *testing.T) {
	spec := Scenario{
		Name:     "det",
		NumOSTs:  4,
		Samples:  3,
		Workload: Workload{Kind: KindIOR, SizeMB: 4, WritersPerOST: 1},
		Axes: []Axis{
			{Name: "size", LabelFmt: "size=%gMB", Values: []Value{NumValue(1), NumValue(4)}},
		},
	}
	seq, err := Run(spec, RunOptions{Seed: 11, Parallel: 1})
	if err != nil {
		t.Fatalf("sequential: %v", err)
	}
	par, err := Run(spec, RunOptions{Seed: 11, Parallel: 4})
	if err != nil {
		t.Fatalf("parallel: %v", err)
	}
	if !reflect.DeepEqual(seq.Points, par.Points) {
		t.Errorf("parallel run diverged from sequential run")
	}
}

// TestWorldReuseDeterminism pins the tentpole contract end to end: a
// mixed-kind campaign — every exec path (app, ior, paired-ior, openstorm)
// sharing each worker's rented worlds — is bit-identical to the
// build-fresh-every-replica path, at one worker and at eight. Under -race
// this doubles as the reuse layer's concurrency stress test.
func TestWorldReuseDeterminism(t *testing.T) {
	// Mixed kinds run noise-free: paired-ior's natural-drain join cannot
	// terminate under production noise (a pre-existing constraint of that
	// exec path, reuse or not). Noise coverage comes from the second spec.
	mixed := Scenario{
		Name:    "reuse-det",
		NumOSTs: 4,
		NoNoise: true,
		Samples: 3,
		Workload: Workload{
			Kind:      KindIOR, // overridden per point by the kind axis
			SizeMB:    4,
			Writers:   4,
			Procs:     8,
			Generator: "pixie3d-small",
		},
		Axes: []Axis{
			{Name: "kind", Values: []Value{
				StrValue(KindApp), StrValue(KindIOR),
				StrValue(KindPairedIOR), StrValue(KindOpenStorm),
			}},
		},
	}
	noisy := Scenario{
		Name:    "reuse-det-noise",
		NumOSTs: 4,
		Samples: 2,
		Workload: Workload{
			Kind:      KindIOR,
			SizeMB:    4,
			Writers:   4,
			Procs:     8,
			Generator: "pixie3d-small",
		},
		Axes: []Axis{
			{Name: "kind", Values: []Value{StrValue(KindApp), StrValue(KindIOR)}},
		},
	}
	for _, spec := range []Scenario{mixed, noisy} {
		base, err := Run(spec, RunOptions{Seed: 31, Parallel: 1, NoReuse: true})
		if err != nil {
			t.Fatalf("%s baseline: %v", spec.Name, err)
		}
		for _, tc := range []struct {
			name string
			opt  RunOptions
		}{
			{"reuse-1worker", RunOptions{Seed: 31, Parallel: 1}},
			{"reuse-8workers", RunOptions{Seed: 31, Parallel: 8}},
			{"fresh-8workers", RunOptions{Seed: 31, Parallel: 8, NoReuse: true}},
		} {
			got, err := Run(spec, tc.opt)
			if err != nil {
				t.Fatalf("%s %s: %v", spec.Name, tc.name, err)
			}
			if !reflect.DeepEqual(base.Points, got.Points) {
				t.Errorf("%s: %s diverged from the fresh sequential baseline", spec.Name, tc.name)
			}
		}
	}
}

// TestTraceSlowOSTDraining traces an adaptive-method campaign on a system
// with one deliberately degraded target and checks the timeline captures
// the defect: the slow target reports its service factor, data drains to
// disk over time, and the heatmap renderings are produced.
func TestTraceSlowOSTDraining(t *testing.T) {
	// 32 writers on 4 targets, 128 MB each: every group pushes well past
	// the target cache, so the crawling target's writers lag and the
	// coordinator has work to shift — the shape of the paper's adaptive
	// advantage (and of core's TestAdaptiveShiftsWorkFromSlowTargets).
	spec := Scenario{
		Name:    "trace-slow",
		NumOSTs: 4,
		NoNoise: true,
		Samples: 1,
		Workload: Workload{
			Kind:      KindApp,
			Generator: "pixie3d-large",
			Procs:     32,
		},
		Transport:    Transport{Method: "ADAPTIVE", OSTs: 4},
		Interference: Interference{SlowOSTs: []SlowOST{{Index: 0, Factor: 0.15}}},
	}
	res, err := Run(spec, RunOptions{
		Seed:     7,
		Parallel: 1,
		Trace:    &TraceOptions{IntervalSeconds: 0.5},
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.Trace == nil {
		t.Fatal("no trace captured")
	}
	tr := res.Trace
	if len(tr.Samples) == 0 {
		t.Fatal("trace has no samples")
	}
	slowSeen := false
	for _, smp := range tr.Samples {
		if len(smp.Slow) > 0 && smp.Slow[0] < 1 {
			slowSeen = true
			break
		}
	}
	if !slowSeen {
		t.Error("trace never shows target 0 degraded")
	}
	first, last := tr.Samples[0], tr.Samples[len(tr.Samples)-1]
	if last.Drained <= first.Drained || last.Drained <= 0 {
		t.Errorf("trace shows no draining: first %.0f last %.0f", first.Drained, last.Drained)
	}
	if tr.Activity == "" || tr.Slowness == "" || tr.Throughput == "" {
		t.Error("trace renderings missing")
	}
	if !strings.Contains(tr.Render(), "Activity") {
		t.Error("Render() missing sections")
	}
	// The run's measurements must be unaffected by tracing.
	if len(res.Points) != 1 || len(res.Points[0].Samples) != 1 {
		t.Fatalf("unexpected result shape: %+v", res.Points)
	}
	if res.Points[0].Samples[0].AdaptiveWrites == 0 {
		t.Error("adaptive campaign on a degraded target redirected no writes")
	}
}

// TestRegistryLoad exercises name-vs-file resolution.
func TestRegistryLoad(t *testing.T) {
	Register(Definition{
		Name:        "test-loaded",
		Description: "registry test entry",
		Spec: func(mode string) (Scenario, error) {
			return Scenario{
				Name:     "test-loaded",
				Samples:  1,
				NumOSTs:  2,
				Workload: Workload{Kind: KindIOR, Writers: 1, SizeMB: 1},
			}, nil
		},
	})
	if _, def, err := Load("test-loaded", "quick"); err != nil || def == nil {
		t.Errorf("registered load: def=%v err=%v", def, err)
	}
	if _, _, err := Load("no-such-scenario", "quick"); err == nil ||
		!strings.Contains(err.Error(), "unknown scenario") {
		t.Errorf("want unknown-scenario error, got %v", err)
	}
	if _, _, err := Load("no/such/file.json", "quick"); err == nil {
		t.Error("want file error")
	}
}

func TestWithConflictReportedDeterministically(t *testing.T) {
	// A value that binds several names colliding with grid axes must always
	// report the same one (the alphabetically first), regardless of map
	// iteration order — validation errors are part of reproducible output.
	build := func() Scenario {
		v := StrValue("jaguar")
		v.With = map[string]Value{
			"zz": NumValue(1), "mm": NumValue(2), "aa": NumValue(3),
		}
		return Scenario{
			Name:     "v",
			NumOSTs:  2,
			Samples:  1,
			Workload: Workload{Kind: KindIOR, Writers: 2, SizeMB: 1},
			Axes: []Axis{
				{Name: "machine", Values: []Value{v}},
				{Name: "zz", Values: []Value{NumValue(1)}},
				{Name: "mm", Values: []Value{NumValue(1)}},
				{Name: "aa", Values: []Value{NumValue(1)}},
			},
		}
	}
	for i := 0; i < 30; i++ {
		s := build()
		err := s.Validate()
		if err == nil {
			t.Fatal("conflicting with-bundle accepted")
		}
		if !strings.Contains(err.Error(), `binds "aa"`) {
			t.Fatalf("iteration %d: error picked a different binding: %v", i, err)
		}
	}
}
