package scenario

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Artifact is one rendered output file of a scenario run.
type Artifact struct {
	// Name is the file name (written under -out, or printed to stdout).
	Name string
	// Text is the rendered content.
	Text string
}

// Definition is a registered scenario: a named spec builder plus an
// optional renderer that turns the generic Result back into the driver's
// canonical tables and figures. Without a Render the generic per-point
// summary table is used.
type Definition struct {
	// Name is the registry key (the -scenario argument).
	Name string
	// Description is shown in listings.
	Description string
	// Spec builds the spec for a preset mode ("quick" | "full").
	Spec func(mode string) (Scenario, error)
	// Render rebuilds the driver's artifacts from the run (optional). The
	// run options are passed through because some renderers (Figure 1's
	// shape checks) run auxiliary scenarios at the same seed/parallelism.
	Render func(res *Result, opt RunOptions) ([]Artifact, []string, error)
}

var (
	regMu    sync.Mutex
	registry = map[string]Definition{}
)

// Register adds a definition; it panics on duplicates or empty names,
// since registration happens in package init.
func Register(d Definition) {
	regMu.Lock()
	defer regMu.Unlock()
	if d.Name == "" {
		panic("scenario: Register with empty name")
	}
	if d.Spec == nil {
		panic("scenario: Register " + d.Name + " without a Spec builder")
	}
	if _, dup := registry[d.Name]; dup {
		panic("scenario: duplicate registration of " + d.Name)
	}
	registry[d.Name] = d
}

// Lookup finds a registered definition.
func Lookup(name string) (Definition, bool) {
	regMu.Lock()
	defer regMu.Unlock()
	d, ok := registry[name]
	return d, ok
}

// Names lists the registered scenarios, sorted.
func Names() []string {
	regMu.Lock()
	defer regMu.Unlock()
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Load resolves a -scenario argument: a registered name (built at the
// given preset mode) or a path to a JSON spec file. The returned
// definition is nil for file specs.
func Load(arg, mode string) (Scenario, *Definition, error) {
	if def, ok := Lookup(arg); ok {
		s, err := def.Spec(mode)
		if err != nil {
			return Scenario{}, nil, fmt.Errorf("scenario %s: %w", arg, err)
		}
		return s, &def, nil
	}
	if strings.ContainsAny(arg, "/\\.") {
		s, err := LoadFile(arg)
		return s, nil, err
	}
	return Scenario{}, nil, fmt.Errorf("scenario: unknown scenario %q (registered: %s; or pass a .json spec file)",
		arg, strings.Join(Names(), ", "))
}
