package scenario

import (
	"fmt"
	"time"

	"repro/adios"
	"repro/cluster"
	"repro/internal/interference"
	"repro/internal/iomethod"
	"repro/internal/ior"
	"repro/internal/pfs"
	"repro/internal/rngx"
	"repro/internal/simkernel"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// Sample is one replica's measurements, uniform across workload kinds
// (fields a kind does not produce stay zero).
type Sample struct {
	// Elapsed is the replica's measured wall time in simulated seconds
	// (write phase for the IO kinds, storm completion for openstorm).
	Elapsed float64
	// TotalBytes is the data written.
	TotalBytes float64
	// AggregateBW is TotalBytes / Elapsed in bytes/sec.
	AggregateBW float64
	// WriterTimes are the per-writer (or per-rank) seconds.
	WriterTimes []float64
	// PerWriterBW are the per-writer bandwidths (IOR kinds).
	PerWriterBW []float64
	// AdaptiveWrites counts redirected writes (app kind, adaptive method).
	AdaptiveWrites int
	// WriteFailures counts client writes abandoned with ErrTargetDown
	// against a dead storage target (app kind; the adaptive method retries
	// them elsewhere, the static baselines lose the data).
	WriteFailures int
	// FailedWriters counts IOR writers whose payload was lost to a dead
	// target (IOR kinds).
	FailedWriters int
	// QueuePeak is the metadata server's queue high-water mark (openstorm).
	QueuePeak int
	// Jobs are the per-job measurements of a job-mix replica, in spec
	// order (nil for the single-workload kinds).
	Jobs []JobSample
}

// JobSample is one job's measurement within a job-mix replica, attributed
// through the file system's per-job accounting.
type JobSample struct {
	// Name and Kind identify the job (JobSpec.Name, JobSpec.Kind).
	Name string
	Kind string
	// Ranks is the job's process count.
	Ranks int
	// Start is the job's first phase start in simulated seconds.
	Start float64
	// Elapsed is when the job's last phase completed (seconds from t=0).
	Elapsed float64
	// BytesWritten / BytesRead are the job's attributed data volumes.
	BytesWritten float64
	BytesRead    float64
	// MetaOps is the job's attributed metadata operation count.
	MetaOps int
	// BW is the job's achieved bandwidth: (written+read) over its active
	// span (Elapsed - Start).
	BW float64
}

// MeanPerWriterBW returns the average per-writer bandwidth.
func (s Sample) MeanPerWriterBW() float64 { return stats.Summarize(s.PerWriterBW).Mean }

// ImbalanceFactor returns slowest/fastest over the writer times.
func (s Sample) ImbalanceFactor() float64 { return stats.ImbalanceFactor(s.WriterTimes) }

// CampaignConfig is one application campaign replica: the app workload
// kind's execution input, exported so internal/experiments.RunCampaign can
// delegate to the same single path.
type CampaignConfig struct {
	// Machine preset name (default "jaguar").
	Machine string
	// Writers is the application's process count.
	Writers int
	// NumOSTs optionally scales the machine down (0 = preset size).
	NumOSTs int
	// NoNoise disables production background noise.
	NoNoise bool
	// Seed drives the replica's world.
	Seed int64
	// IO configures the transport.
	IO adios.Options
	// PerRank produces each rank's output data.
	PerRank func(rank int) iomethod.RankData
	// Interference enables the artificial interference program, tuned by
	// the three knobs below (zero values = the paper's 8 × 3 × 1 GB).
	Interference            bool
	InterferenceOSTs        []int
	InterferenceProcsPerOST int
	InterferenceChunkBytes  float64
	// SlowOSTs degrade targets deterministically before the run.
	SlowOSTs []SlowOST
	// Failures scripts deterministic storage failures for the replica.
	Failures interference.FailureConfig
	// Pool, if non-nil, supplies the replica's world (reset, not rebuilt).
	// A nil Pool builds and tears down a fresh world — the two paths are
	// bit-identical by the world-reuse determinism contract.
	Pool *cluster.Pool
}

// ExecCampaign executes one collective output step of an application under
// the given environment and returns its measurements.
func ExecCampaign(cfg CampaignConfig) (Sample, error) {
	return execCampaign(cfg, nil)
}

func execCampaign(cfg CampaignConfig, tc *traceCapture) (Sample, error) {
	if cfg.Machine == "" {
		cfg.Machine = "jaguar"
	}
	if cfg.Writers <= 0 {
		return Sample{}, fmt.Errorf("scenario: campaign writers must be positive")
	}
	if cfg.PerRank == nil {
		return Sample{}, fmt.Errorf("scenario: campaign needs a per-rank generator")
	}
	c, err := cfg.Pool.Rent(cfg.Machine, cluster.Config{
		Seed:            cfg.Seed,
		NumOSTs:         cfg.NumOSTs,
		ProductionNoise: !cfg.NoNoise,
		Failures:        cfg.Failures,
	})
	if err != nil {
		return Sample{}, err
	}
	defer cfg.Pool.Return(c)
	defer tc.finish()

	if err := applySlow(c, cfg.SlowOSTs); err != nil {
		return Sample{}, err
	}
	if cfg.Interference {
		// The paper's artificial interference: stripe count 8 (two
		// applications at the default stripe count of 4), three 1 GB
		// writers per target.
		c.StartArtificialInterference(cfg.InterferenceOSTs, cfg.InterferenceProcsPerOST, cfg.InterferenceChunkBytes)
	}
	tc.attach(c)

	w := c.NewWorld(cfg.Writers)
	io, err := adios.NewIO(c, w, cfg.IO)
	if err != nil {
		return Sample{}, err
	}

	var out campaignOut
	stepName := fmt.Sprintf("%s.out", cfg.IO.Method)
	var j *cluster.Join
	if simkernel.ContEnabled() && io.ContCapable() {
		j = w.LaunchCont(func(i int) cluster.RankCont {
			return &campaignCont{io: io, stepName: stepName, perRank: cfg.PerRank, out: &out}
		})
	} else {
		j = w.Launch(func(r *cluster.Rank) {
			f := io.Open(r, stepName)
			f.WriteData(cfg.PerRank(r.Rank()))
			rr, err := f.Close()
			if err != nil {
				out.err = err
				return
			}
			out.res = rr
		})
	}
	c.RunUntilDone(j)
	if out.err != nil {
		return Sample{}, out.err
	}
	res := out.res
	if !j.Done() || res == nil {
		return Sample{}, fmt.Errorf("scenario: campaign did not complete")
	}
	return Sample{
		Elapsed:     res.Elapsed,
		AggregateBW: res.AggregateBW(),
		// Ownership transfers: the step result's per-writer slice is built
		// fresh for every step and nothing world-owned aliases it, so the
		// sample keeps it without the old defensive re-copy.
		WriterTimes:    res.WriterTimes,
		TotalBytes:     res.TotalBytes,
		AdaptiveWrites: res.AdaptiveWrites,
		WriteFailures:  res.WriteFailures,
	}, nil
}

// failureConfig materialises the spec's declared failure script for one
// resolved point (zero value when the point leaves it disarmed).
func (s *Scenario) failureConfig(on bool) interference.FailureConfig {
	fspec := s.Interference.Failures
	if !on || !fspec.declared() {
		return interference.FailureConfig{}
	}
	cfg := interference.FailureConfig{
		Enabled:     true,
		DeadTimeout: fspec.DeadTimeoutSeconds,
		MDSStallAt:  fspec.MDSStallAtSeconds,
		MDSStallFor: fspec.MDSStallSeconds,
		Episodes:    make([]interference.FailureEpisode, len(fspec.Episodes)),
	}
	for i, ep := range fspec.Episodes {
		cfg.Episodes[i] = interference.FailureEpisode{
			OST:        ep.OST,
			At:         ep.AtSeconds,
			DeadFor:    ep.DeadSeconds,
			RebuildFor: ep.RebuildSeconds,
			RebuildTax: ep.RebuildTax,
		}
	}
	return cfg
}

// execReplica runs one grid-point replica of the scenario on a world rented
// from the worker's pool (nil pool = fresh world per replica).
func (s *Scenario) execReplica(cfg replicaCfg, seed int64, pool *cluster.Pool, tc *traceCapture) (Sample, error) {
	switch cfg.kind {
	case KindApp:
		perRank := s.Workload.PerRank
		if perRank == nil {
			gen, err := generatorFor(cfg.generator)
			if err != nil {
				return Sample{}, err
			}
			perRank = gen
		}
		return execCampaign(CampaignConfig{
			Machine:                 cfg.machine,
			Writers:                 cfg.procs,
			NumOSTs:                 cfg.numOSTs,
			NoNoise:                 !cfg.noise,
			Seed:                    seed,
			IO:                      cfg.transport.adiosOptions(),
			PerRank:                 perRank,
			Interference:            cfg.condition == ConditionInterference,
			InterferenceOSTs:        s.Interference.OSTs,
			InterferenceProcsPerOST: s.Interference.ProcsPerOST,
			InterferenceChunkBytes:  s.Interference.ChunkMB * pfs.MB,
			SlowOSTs:                s.Interference.SlowOSTs,
			Failures:                s.failureConfig(cfg.failures),
			Pool:                    pool,
		}, tc)
	case KindIOR:
		return s.execIOR(cfg, seed, pool, tc)
	case KindPairedIOR:
		return s.execPairedIOR(cfg, seed, pool, tc)
	case KindOpenStorm:
		return s.execOpenStorm(cfg, seed, pool, tc)
	case KindJobMix:
		return s.execJobMix(cfg, seed, pool, tc)
	}
	return Sample{}, fmt.Errorf("scenario: unknown workload kind %q", cfg.kind)
}

// adiosOptions maps the declarative transport onto the middleware options.
func (t Transport) adiosOptions() adios.Options {
	return adios.Options{
		Method:             adios.Method(t.Method),
		OSTs:               targetList(t.OSTs),
		StaggerOpens:       time.Duration(t.StaggerOpensMS * float64(time.Millisecond)),
		WritersPerTarget:   t.WritersPerTarget,
		HistoryAware:       t.HistoryAware,
		DisableAdaptation:  t.DisableAdaptation,
		NoGlobalIndex:      t.NoGlobalIndex,
		StagingNodes:       t.StagingNodes,
		StagingBufferBytes: t.StagingBufferMB * pfs.MB,
		StagingLeastLoaded: t.StagingLeastLoaded,
		MPISplitFiles:      t.MPISplitFiles,
	}
}

// execIOR runs one IOR benchmark sample in a clean environment — the shape
// of the Figure 1 grid cells and Table I's hourly tests.
func (s *Scenario) execIOR(cfg replicaCfg, seed int64, pool *cluster.Pool, tc *traceCapture) (Sample, error) {
	c, err := pool.Rent(cfg.machine, cluster.Config{
		Seed:            seed,
		NumOSTs:         cfg.numOSTs,
		ProductionNoise: cfg.noise,
		Failures:        s.failureConfig(cfg.failures),
	})
	if err != nil {
		return Sample{}, err
	}
	defer pool.Return(c)
	defer tc.finish()
	if err := s.applyInterference(c, cfg); err != nil {
		return Sample{}, err
	}
	tc.attach(c)
	r, err := ior.Execute(c.FileSystem(), ior.Config{
		Writers:        cfg.writers,
		OSTs:           iorTargets(cfg),
		BytesPerWriter: cfg.bytes,
		Mode:           iorMode(cfg),
		Flush:          cfg.flush,
	})
	if err != nil {
		return Sample{}, err
	}
	return iorSample(r), nil
}

// execPairedIOR runs the XTP shape: one IOR alone, or two simultaneous IOR
// programs overlapping at a seed-varied phase, measuring the first.
func (s *Scenario) execPairedIOR(cfg replicaCfg, seed int64, pool *cluster.Pool, tc *traceCapture) (Sample, error) {
	c, err := pool.Rent(cfg.machine, cluster.Config{
		Seed:            seed,
		NumOSTs:         cfg.numOSTs,
		ProductionNoise: cfg.noise,
		Failures:        s.failureConfig(cfg.failures),
	})
	if err != nil {
		return Sample{}, err
	}
	defer pool.Return(c)
	defer tc.finish()
	if err := s.applyInterference(c, cfg); err != nil {
		return Sample{}, err
	}
	tc.attach(c)
	fs := c.FileSystem()

	iorCfg := ior.Config{
		Writers:        cfg.writers,
		OSTs:           iorTargets(cfg),
		BytesPerWriter: cfg.bytes,
		Mode:           iorMode(cfg),
		Flush:          cfg.flush,
	}

	// With a tracer attached the kernel never drains naturally (the sampler
	// keeps it alive), so join on the runs explicitly; without one, keep
	// the natural-drain path the golden Table I checksums pin.
	var joinDone func()
	expected := 1
	if cfg.withInterference {
		expected = 2
	}
	if tc != nil {
		wg := simkernel.NewWaitGroup(c.Kernel())
		wg.Add(expected)
		joinDone = wg.Done
		k := c.Kernel()
		k.Spawn("scenario-joiner", func(p *simkernel.Proc) {
			wg.Wait(p)
			k.Stop()
		})
	}

	iorCfg.Tag = "A"
	runA, err := ior.Launch(fs, iorCfg)
	if err != nil {
		return Sample{}, err
	}
	if joinDone != nil {
		runA.OnDone(c.Kernel(), joinDone)
	}
	var runB *ior.Run
	var launchErr error
	if cfg.withInterference {
		// The second job starts at a seed-varied offset within the first
		// job's run, as two batch jobs on a real machine overlap at an
		// arbitrary phase — the source of the up-to-43% variability the
		// paper measures on XTP.
		rng := rngx.NewNamed(seed, "xtp-phase")
		estimate := float64(cfg.writers) * cfg.bytes / (float64(len(fs.OSTs)) * fs.Cfg.DiskBW * 0.8)
		delay := rng.Uniform(0, estimate)
		c.Kernel().AfterSeconds(delay, func() {
			bCfg := iorCfg
			bCfg.Tag = "B"
			runB, launchErr = ior.Launch(fs, bCfg)
			if launchErr == nil && joinDone != nil {
				runB.OnDone(fs.K, joinDone)
			}
		})
	}
	c.Run()
	if launchErr != nil {
		return Sample{}, launchErr
	}
	if !runA.Done() || (runB != nil && !runB.Done()) {
		return Sample{}, fmt.Errorf("scenario: paired IOR did not complete")
	}
	return iorSample(runA.Result()), nil
}

// execOpenStorm has `writers` ranks create one file each (stagger-spaced)
// and measures the storm completion time and MDS queue peak.
func (s *Scenario) execOpenStorm(cfg replicaCfg, seed int64, pool *cluster.Pool, tc *traceCapture) (Sample, error) {
	c, err := pool.Rent(cfg.machine, cluster.Config{
		Seed:            seed,
		NumOSTs:         cfg.numOSTs,
		ProductionNoise: cfg.noise,
		Failures:        s.failureConfig(cfg.failures),
	})
	if err != nil {
		return Sample{}, err
	}
	defer pool.Return(c)
	defer tc.finish()
	if err := s.applyInterference(c, cfg); err != nil {
		return Sample{}, err
	}
	tc.attach(c)
	fs := c.FileSystem()
	k := c.Kernel()
	wg := simkernel.NewWaitGroup(k)
	wg.Add(cfg.writers)
	var last simkernel.Time
	numOSTs := len(fs.OSTs)
	stagger := cfg.stagger
	useCont := simkernel.ContEnabled()
	for i := 0; i < cfg.writers; i++ {
		i := i
		if useCont {
			k.SpawnCont("opener", &stormOpener{
				fs:      fs,
				name:    fmt.Sprintf("storm.%06d", i),
				ost:     i % numOSTs,
				stagger: stagger > 0,
				delay:   time.Duration(i) * stagger,
				wg:      wg,
				last:    &last,
			})
			continue
		}
		k.Spawn("opener", func(p *simkernel.Proc) {
			defer wg.Done()
			if stagger > 0 {
				p.Sleep(time.Duration(i) * stagger)
			}
			f, err := fs.Create(p, fmt.Sprintf("storm.%06d", i), pfs.Layout{OSTs: []int{i % numOSTs}})
			if err != nil {
				panic(err)
			}
			f.Close(p)
			if p.Now() > last {
				last = p.Now()
			}
		})
	}
	// Join explicitly: a tracer's sampler would keep the kernel alive
	// forever under natural drain, and the joiner perturbs nothing (no
	// random draws, no storage traffic).
	k.Spawn("scenario-joiner", func(p *simkernel.Proc) {
		wg.Wait(p)
		k.Stop()
	})
	k.Run()
	return Sample{Elapsed: last.Seconds(), QueuePeak: fs.MDS.Stats.MaxQueue}, nil
}

// execJobMix co-schedules the point's resolved jobs onto one shared file
// system: every job is its own application world (own barriers, own job id
// in the per-job traffic accounting), launched at t=0 and pacing its I/O
// phases by its own start/period clock. The kernel stops when every job's
// last phase completes; per-job measurements come from the file system's
// attribution counters plus each job's observed completion time.
func (s *Scenario) execJobMix(cfg replicaCfg, seed int64, pool *cluster.Pool, tc *traceCapture) (Sample, error) {
	c, err := pool.Rent(cfg.machine, cluster.Config{
		Seed:            seed,
		NumOSTs:         cfg.numOSTs,
		ProductionNoise: cfg.noise,
		WorldShape:      cfg.shape,
		Failures:        s.failureConfig(cfg.failures),
	})
	if err != nil {
		return Sample{}, err
	}
	defer pool.Return(c)
	defer tc.finish()
	if err := s.applyInterference(c, cfg); err != nil {
		return Sample{}, err
	}
	tc.attach(c)

	fs := c.FileSystem()
	k := c.Kernel()
	numOSTs := len(fs.OSTs)

	type jobRun struct {
		id  int
		end simkernel.Time
		err error
	}
	runs := make([]*jobRun, len(cfg.jobs))
	all := simkernel.NewWaitGroup(k)
	all.Add(len(cfg.jobs))

	for ji := range cfg.jobs {
		jc := cfg.jobs[ji]
		run := &jobRun{id: fs.RegisterJob(jc.name)}
		runs[ji] = run
		w := c.NewJobWorld(jc.name, run.id, jc.procs)

		// Each kind launches either its goroutine body or its continuation
		// machine (cont.go) — same guards, same event schedule either way.
		useCont := simkernel.ContEnabled()
		var body func(r *cluster.Rank)
		var mk func(i int) cluster.RankCont
		switch jc.kind {
		case JobKindApp:
			perRank, err := generatorFor(jc.generator)
			if err != nil {
				return Sample{}, err
			}
			io, err := adios.NewIO(c, w, jc.transport.adiosOptions())
			if err != nil {
				return Sample{}, err
			}
			if useCont && io.ContCapable() {
				names := appStepNames(jc.name, jc.phases)
				mk = func(i int) cluster.RankCont {
					return &jobAppCont{
						phases: jc.phases, start: jc.start, period: jc.period,
						io: io, names: names, perRank: perRank, errp: &run.err,
					}
				}
				break
			}
			body = func(r *cluster.Rank) {
				for ph := 0; ph < jc.phases; ph++ {
					r.Proc().SleepUntil(simkernel.FromSeconds(jc.start + float64(ph)*jc.period))
					f := io.Open(r, fmt.Sprintf("%s.ph%03d.bp", jc.name, ph))
					f.WriteData(perRank(r.Rank()))
					if _, err := f.Close(); err != nil && run.err == nil {
						run.err = err
						return
					}
				}
			}
		case JobKindMLRead:
			if useCont {
				mk = func(i int) cluster.RankCont {
					// The dataset shard pre-exists the training run; its
					// create is the job's only metadata cost.
					return &jobMLReadCont{
						phases: jc.phases, start: jc.start, period: jc.period,
						fs: fs, name: fmt.Sprintf("%s.shard.%05d", jc.name, i),
						ost: i % numOSTs, bytes: int64(jc.bytes), errp: &run.err,
					}
				}
				break
			}
			body = func(r *cluster.Rank) {
				p := r.Proc()
				// The dataset shard pre-exists the training run; its
				// create is the job's only metadata cost.
				shard, err := fs.Create(p, fmt.Sprintf("%s.shard.%05d", jc.name, r.Rank()),
					pfs.Layout{OSTs: []int{r.Rank() % numOSTs}})
				if err != nil {
					if run.err == nil {
						run.err = err
					}
					return
				}
				for ph := 0; ph < jc.phases; ph++ {
					p.SleepUntil(simkernel.FromSeconds(jc.start + float64(ph)*jc.period))
					shard.ReadAt(p, 0, int64(jc.bytes))
				}
				shard.Close(p)
			}
		case JobKindMDTest:
			if useCont {
				mk = func(i int) cluster.RankCont {
					return &jobMDTestCont{
						phases: jc.phases, files: jc.files, start: jc.start, period: jc.period,
						fs: fs, job: jc.name, rank: i, numOSTs: numOSTs,
						bytes: int64(jc.bytes), errp: &run.err,
					}
				}
				break
			}
			body = func(r *cluster.Rank) {
				p := r.Proc()
				for ph := 0; ph < jc.phases; ph++ {
					p.SleepUntil(simkernel.FromSeconds(jc.start + float64(ph)*jc.period))
					for fi := 0; fi < jc.files; fi++ {
						f, err := fs.Create(p, fmt.Sprintf("%s.r%05d.ph%03d.f%04d", jc.name, r.Rank(), ph, fi),
							pfs.Layout{OSTs: []int{(r.Rank() + fi) % numOSTs}})
						if err != nil {
							if run.err == nil {
								run.err = err
							}
							return
						}
						f.WriteAt(p, 0, int64(jc.bytes))
						f.Close(p)
					}
				}
			}
		default:
			return Sample{}, fmt.Errorf("scenario: unknown job kind %q", jc.kind)
		}

		var wgJob *simkernel.WaitGroup
		if mk != nil {
			wgJob = w.MPI().LaunchCont(jc.name, mk)
		} else {
			wgJob = w.MPI().Launch(jc.name, body)
		}
		k.Spawn("jobmix-watch", func(p *simkernel.Proc) {
			wgJob.Wait(p)
			run.end = p.Now()
			all.Done()
		})
	}

	// Noise and interference processes run forever, so join explicitly on
	// the jobs rather than draining the kernel.
	k.Spawn("jobmix-joiner", func(p *simkernel.Proc) {
		all.Wait(p)
		k.Stop()
	})
	k.Run()

	out := Sample{Jobs: make([]JobSample, 0, len(cfg.jobs))}
	var makespan float64
	for ji, run := range runs {
		if run.err != nil {
			return Sample{}, run.err
		}
		jc := cfg.jobs[ji]
		acct := fs.JobIO(run.id)
		js := JobSample{
			Name:         jc.name,
			Kind:         jc.kind,
			Ranks:        jc.procs,
			Start:        jc.start,
			Elapsed:      run.end.Seconds(),
			BytesWritten: acct.BytesWritten,
			BytesRead:    acct.BytesRead,
			MetaOps:      acct.MetaOps,
		}
		if span := js.Elapsed - js.Start; span > 0 {
			js.BW = (js.BytesWritten + js.BytesRead) / span
		}
		out.TotalBytes += js.BytesWritten + js.BytesRead
		if js.Elapsed > makespan {
			makespan = js.Elapsed
		}
		out.Jobs = append(out.Jobs, js)
	}
	out.Elapsed = makespan
	if makespan > 0 {
		out.AggregateBW = out.TotalBytes / makespan
	}
	return out, nil
}

// applyInterference stages the scenario's disturbance model on a fresh
// cluster: deterministic slow targets plus, when the point's condition asks
// for it, the artificial interference program.
func (s *Scenario) applyInterference(c *cluster.Cluster, cfg replicaCfg) error {
	if err := applySlow(c, s.Interference.SlowOSTs); err != nil {
		return err
	}
	if cfg.condition == ConditionInterference {
		c.StartArtificialInterference(s.Interference.OSTs, s.Interference.ProcsPerOST, s.Interference.ChunkMB*pfs.MB)
	}
	return nil
}

func applySlow(c *cluster.Cluster, slow []SlowOST) error {
	for _, so := range slow {
		if so.Index < 0 || so.Index >= c.NumOSTs() {
			return fmt.Errorf("scenario: slow OST index %d out of range (machine has %d)", so.Index, c.NumOSTs())
		}
		c.SlowOST(so.Index, so.Factor)
	}
	return nil
}

func iorTargets(cfg replicaCfg) []int {
	if cfg.pin && cfg.numOSTs > 0 {
		return targetList(cfg.numOSTs)
	}
	return nil
}

func iorMode(cfg replicaCfg) ior.Mode {
	if cfg.shared {
		return ior.SharedFile
	}
	return ior.FilePerProcess
}

func iorSample(r ior.Result) Sample {
	return Sample{
		Elapsed:       r.Elapsed,
		TotalBytes:    r.TotalBytes,
		AggregateBW:   r.AggregateBW,
		WriterTimes:   r.WriterTimes,
		PerWriterBW:   r.PerWriterBW,
		FailedWriters: r.FailedWriters,
	}
}

func generatorFor(name string) (func(rank int) iomethod.RankData, error) {
	gen, err := workloads.ByName(name)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	return gen.PerRank, nil
}

// targetList returns [0, 1, ..., n), or nil for n <= 0 (= all targets).
func targetList(n int) []int {
	if n <= 0 {
		return nil
	}
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}
