// Package scenario is the declarative configuration layer of the
// reproduction: one composable Scenario spec — machine, file-system scale,
// workload, transport method and options, interference model, grid axes,
// sample count and seed label — that compiles into runner replicas and
// executes on the campaign worker pool.
//
// Every experiment driver in internal/experiments is a thin builder of one
// of these specs plus a demux of the generic results back into the paper's
// tables and figures; the CLIs load specs from a validating registry
// (-scenario name) or straight from JSON files (-scenario file.json), with
// -set axis=value overrides. New workloads, sweeps, fault injection and
// multi-transport comparisons are therefore data, not code.
//
// The determinism contract of internal/runner carries through unchanged:
// each replica's seed derives from (seed label, grid-point label, sample
// index) via rngx.DeriveSeed, never from scheduling order, so a scenario's
// results are bit-identical at every -parallel setting.
package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"repro/internal/iomethod"
)

// Workload kinds a scenario can execute. Each kind is one replica shape:
// a full middleware campaign, an IOR benchmark run, the paper's two
// simultaneous IOR jobs, or a metadata open storm.
const (
	// KindApp runs one collective output step of an application through the
	// adios middleware (the Section IV campaign shape).
	KindApp = "app"
	// KindIOR runs one IOR instance (the Section II benchmark shape).
	KindIOR = "ior"
	// KindPairedIOR runs two simultaneous IOR jobs at a seed-varied phase
	// offset and measures the first (the XTP controlled-interference shape).
	KindPairedIOR = "paired-ior"
	// KindOpenStorm has N ranks create one file each against the metadata
	// server (the metadata-variability shape).
	KindOpenStorm = "openstorm"
	// KindJobMix co-schedules the spec's Jobs array — N concurrent
	// applications with distinct I/O signatures — onto one shared file
	// system, with per-job phase timing and per-job traffic attribution.
	KindJobMix = "jobmix"
)

// Job kinds a job-mix entry can have.
const (
	// JobKindApp is a checkpoint-heavy writer application running its
	// output steps through the adios middleware (same shape as KindApp,
	// but phased and co-scheduled).
	JobKindApp = "app"
	// JobKindMLRead is an ML-training read job: each rank re-reads its
	// dataset shard every phase (epoch).
	JobKindMLRead = "mlread"
	// JobKindMDTest is an mdtest-style metadata job: each rank creates,
	// writes and closes many small files per phase.
	JobKindMDTest = "mdtest"
)

// Conditions of the Section IV environments.
const (
	// ConditionBase is the production environment with no artificial load.
	ConditionBase = "base"
	// ConditionInterference adds the paper's artificial interference
	// program on top of the environment.
	ConditionInterference = "interference"
)

// Scenario is the declarative spec of one experiment grid.
type Scenario struct {
	// Name identifies the scenario (registry key, artifact base name).
	Name string `json:"name"`
	// Description is a one-line human summary.
	Description string `json:"description,omitempty"`
	// SeedLabel is the runner.ReplicaKey.Driver used to derive replica
	// seeds (default: Name). It is part of the reproducibility contract:
	// changing it shifts every replica's random stream.
	SeedLabel string `json:"seed_label,omitempty"`
	// PointLabel labels the single grid point of an axis-less scenario
	// (default "all").
	PointLabel string `json:"point_label,omitempty"`

	// Machine is the cluster preset name (default "jaguar").
	Machine string `json:"machine,omitempty"`
	// NumOSTs scales the simulated machine (0 = the preset's full size).
	NumOSTs int `json:"num_osts,omitempty"`
	// NoNoise disables the machine's production background noise.
	NoNoise bool `json:"no_noise,omitempty"`

	// Samples is the default replication count per grid point (axis values
	// may override it per point).
	Samples int `json:"samples,omitempty"`

	Workload     Workload     `json:"workload"`
	Transport    Transport    `json:"transport,omitempty"`
	Interference Interference `json:"interference,omitempty"`

	// Jobs declares a co-scheduled job mix (workload kind "jobmix", which
	// is implied when this is non-empty). Each entry is one concurrent
	// application; the single-workload form above is the 1-job degenerate
	// case and keeps its own executors.
	Jobs []JobSpec `json:"jobs,omitempty"`

	// Axes are the sweep dimensions; the grid is their cross product in
	// order (first axis outermost). Each axis binds one named parameter
	// (and optionally extra ones via value With bundles).
	Axes []Axis `json:"axes,omitempty"`
}

// Workload selects what each replica executes.
type Workload struct {
	// Kind is one of KindApp, KindIOR, KindPairedIOR, KindOpenStorm.
	Kind string `json:"kind"`

	// Generator names the application workload for KindApp (a
	// workloads.ByName entry: "pixie3d-small", "xgc1", "gtc", ...).
	Generator string `json:"generator,omitempty"`
	// PerRank overrides Generator with an in-process rank-data function
	// (programmatic specs only; not serialized).
	PerRank func(rank int) iomethod.RankData `json:"-"`
	// Procs is the application's process count for KindApp (axis "procs"
	// overrides it per point).
	Procs int `json:"procs,omitempty"`

	// Writers is the absolute writer count for the IOR-family kinds and
	// KindOpenStorm (axis "writers" overrides).
	Writers int `json:"writers,omitempty"`
	// WritersPerOST, when positive, sets writers = NumOSTs × ratio instead
	// of Writers (axis "ratio" overrides) — the weak-scaling knob.
	WritersPerOST int `json:"writers_per_ost,omitempty"`
	// SizeMB is the per-writer data size in MB (axis "size" overrides).
	SizeMB float64 `json:"size_mb,omitempty"`
	// Bytes is the exact per-writer byte count; it takes precedence over
	// SizeMB when non-zero (axis "bytes" overrides).
	Bytes float64 `json:"bytes,omitempty"`
	// PinTargets spreads file-per-process files over targets 0..NumOSTs-1
	// explicitly (the Figure 1 configuration) instead of the IOR default.
	PinTargets bool `json:"pin_targets,omitempty"`
	// Flush includes an explicit flush in the timed region.
	Flush bool `json:"flush,omitempty"`
	// SharedFile switches IOR to the single-shared-file organisation.
	SharedFile bool `json:"shared_file,omitempty"`
	// WithInterference launches the second simultaneous job
	// (KindPairedIOR; axis "with_interference" overrides).
	WithInterference bool `json:"with_interference,omitempty"`
	// Stagger spaces KindOpenStorm creates (a Go duration string such as
	// "5ms"; axis "stagger" overrides with nanoseconds).
	Stagger string `json:"stagger,omitempty"`
}

// JobSpec is one application of a co-scheduled job mix.
type JobSpec struct {
	// Name identifies the job in results and per-job attribution
	// (default "job<i>"). Names must be unique within the mix.
	Name string `json:"name,omitempty"`
	// Kind is JobKindApp, JobKindMLRead or JobKindMDTest.
	Kind string `json:"kind"`
	// Generator names the workload signature: required for app jobs
	// ("pixie3d-small", "gtc", ...), defaulted for mlread ("mltrain").
	Generator string `json:"generator,omitempty"`
	// Procs is the job's rank count.
	Procs int `json:"procs"`
	// SizeMB overrides the per-rank per-phase data volume in MB (mlread:
	// bytes read per epoch; mdtest: bytes per created file).
	SizeMB float64 `json:"size_mb,omitempty"`
	// Bytes is the exact per-rank per-phase byte count; it takes
	// precedence over SizeMB when non-zero.
	Bytes float64 `json:"bytes,omitempty"`
	// FilesPerRank is the mdtest job's create count per rank per phase
	// (default 16).
	FilesPerRank int `json:"files_per_rank,omitempty"`
	// Transport configures the app job's adios middleware. An empty
	// method inherits the scenario's transport (and the "method" axis
	// overrides both).
	Transport Transport `json:"transport,omitempty"`
	// StartSeconds delays the job's first phase.
	StartSeconds float64 `json:"start_seconds,omitempty"`
	// PeriodSeconds is the phase cadence: phase p begins no earlier than
	// StartSeconds + p×PeriodSeconds (an overrunning phase starts the
	// next one immediately, back-to-back).
	PeriodSeconds float64 `json:"period_seconds,omitempty"`
	// Phases is the number of I/O phases the job performs (default 1).
	Phases int `json:"phases,omitempty"`
}

// Transport configures the adios middleware for KindApp replicas.
type Transport struct {
	// Method is MPI, POSIX, ADAPTIVE or STAGING (default ADAPTIVE; axis
	// "method" overrides).
	Method string `json:"method,omitempty"`
	// OSTs restricts the transport to targets 0..OSTs-1 (0 = all; axis
	// "transport_osts" overrides).
	OSTs int `json:"osts,omitempty"`
	// WritersPerTarget generalises the adaptive one-writer-per-target rule.
	WritersPerTarget int `json:"writers_per_target,omitempty"`
	// StaggerOpensMS spaces adaptive file creates (milliseconds).
	StaggerOpensMS float64 `json:"stagger_opens_ms,omitempty"`
	// HistoryAware enables the fastest-idle-target dispatch extension.
	HistoryAware bool `json:"history_aware,omitempty"`
	// DisableAdaptation keeps the adaptive structure but turns the
	// coordinator's work-shifting off (the ablation).
	DisableAdaptation bool `json:"disable_adaptation,omitempty"`
	// NoGlobalIndex skips the coordinator's global index file.
	NoGlobalIndex bool `json:"no_global_index,omitempty"`
	// StagingNodes / StagingBufferMB / StagingLeastLoaded tune STAGING.
	StagingNodes       int     `json:"staging_nodes,omitempty"`
	StagingBufferMB    float64 `json:"staging_buffer_mb,omitempty"`
	StagingLeastLoaded bool    `json:"staging_least_loaded,omitempty"`
	// MPISplitFiles splits the MPI method's output into N shared files.
	MPISplitFiles int `json:"mpi_split_files,omitempty"`
}

// Interference configures the environment's disturbance model.
type Interference struct {
	// Condition is ConditionBase (default) or ConditionInterference (axis
	// "condition" overrides per point).
	Condition string `json:"condition,omitempty"`
	// OSTs / ProcsPerOST / ChunkMB tune the artificial interference
	// program (zero values = the paper's 8 targets × 3 procs × 1 GB).
	OSTs        []int   `json:"osts,omitempty"`
	ProcsPerOST int     `json:"procs_per_ost,omitempty"`
	ChunkMB     float64 `json:"chunk_mb,omitempty"`
	// SlowOSTs deterministically degrade targets — declarative fault
	// injection for staging the imbalance the paper measures.
	SlowOSTs []SlowOST `json:"slow_osts,omitempty"`
	// Failures scripts storage failures: OST crash/rebuild episodes and an
	// MDS stall window at declared virtual times. Declaring at least one
	// episode (or a stall window) arms the script on every replica; the
	// boolean "failures" axis switches it per grid point.
	Failures FailuresSpec `json:"failures,omitempty"`
}

// FailuresSpec is the declarative failure script (see
// interference.FailureConfig for the execution semantics).
type FailuresSpec struct {
	// DeadTimeoutSeconds overrides how long a client request against a dead
	// target hangs before failing with ErrTargetDown (0 = the file-system
	// default).
	DeadTimeoutSeconds float64 `json:"dead_timeout_seconds,omitempty"`
	// Episodes are the scripted OST crashes.
	Episodes []FailureEpisodeSpec `json:"episodes,omitempty"`
	// MDSStallAtSeconds / MDSStallSeconds script a metadata-server stall
	// window (MDSStallSeconds 0 disables it).
	MDSStallAtSeconds float64 `json:"mds_stall_at_seconds,omitempty"`
	MDSStallSeconds   float64 `json:"mds_stall_seconds,omitempty"`
}

// FailureEpisodeSpec is one declared OST crash: dead for DeadSeconds from
// AtSeconds, then rebuilding for RebuildSeconds with RebuildTax of the disk
// bandwidth consumed before returning to healthy.
type FailureEpisodeSpec struct {
	OST            int     `json:"ost"`
	AtSeconds      float64 `json:"at_seconds"`
	DeadSeconds    float64 `json:"dead_seconds"`
	RebuildSeconds float64 `json:"rebuild_seconds,omitempty"`
	RebuildTax     float64 `json:"rebuild_tax,omitempty"`
}

// declared reports whether the spec scripts any failure at all.
func (f FailuresSpec) declared() bool {
	return len(f.Episodes) > 0 || f.MDSStallSeconds > 0
}

// SlowOST pins one storage target to a service fraction (1 = clean).
type SlowOST struct {
	Index  int     `json:"index"`
	Factor float64 `json:"factor"`
}

// Axis is one sweep dimension.
type Axis struct {
	// Name is the parameter the axis binds ("size", "ratio", "procs",
	// "method", "condition", "machine", "writers", "stagger", ...).
	Name string `json:"name"`
	// LabelFmt formats a value into the point-label fragment (one fmt verb,
	// e.g. "size=%gMB", "procs=%d", "%s"). Default: "<name>=<value>".
	// Explicit per-value labels take precedence.
	LabelFmt string `json:"label,omitempty"`
	// Values are the swept values.
	Values []Value `json:"values"`
}

// seedLabel resolves the replica-key driver label.
func (s *Scenario) seedLabel() string {
	if s.SeedLabel != "" {
		return s.SeedLabel
	}
	return s.Name
}

// staggerDuration parses the workload's stagger string.
func (w Workload) staggerDuration() (time.Duration, error) {
	if w.Stagger == "" {
		return 0, nil
	}
	d, err := time.ParseDuration(w.Stagger)
	if err != nil {
		return 0, fmt.Errorf("scenario: bad stagger %q: %v", w.Stagger, err)
	}
	return d, nil
}

// JSON renders the spec as indented JSON.
func (s Scenario) JSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// Parse decodes a JSON spec strictly (unknown fields are errors, so typos
// in hand-written specs fail loudly) and validates it.
func Parse(b []byte) (Scenario, error) {
	var s Scenario
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return Scenario{}, fmt.Errorf("scenario: parse: %v", err)
	}
	if err := s.Validate(); err != nil {
		return Scenario{}, err
	}
	return s, nil
}

// LoadFile reads and parses a JSON spec file.
func LoadFile(path string) (Scenario, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return Scenario{}, fmt.Errorf("scenario: %v", err)
	}
	s, err := Parse(b)
	if err != nil {
		return Scenario{}, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}
