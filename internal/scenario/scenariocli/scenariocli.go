// Package scenariocli is the shared -scenario flag wiring for the CLIs:
// one place registers the common flags (-scenario, -set, -mode, -out,
// -seed, -parallel, -trace, -cpuprofile, -memprofile), loads a registered
// or file-based spec, applies overrides, runs it and writes the artifacts.
// Every command gets identical behaviour; the per-command mains keep only
// their bespoke surfaces.
package scenariocli

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/profiling"
	"repro/internal/scenario"
)

// multiFlag collects a repeatable string flag (-set key=value ...).
type multiFlag []string

func (m *multiFlag) String() string { return strings.Join(*m, ",") }

func (m *multiFlag) Set(v string) error {
	*m = append(*m, v)
	return nil
}

// Flags holds the shared flag values after parsing.
type Flags struct {
	Scenario      string
	Sets          multiFlag
	Mode          string
	Out           string
	Seed          int64
	Parallel      int
	Trace         bool
	TraceInterval float64
	TracePoint    string
	TraceSample   int
	CPUProfile    string
	MemProfile    string
}

// Register installs the shared flags on a flag set (usually
// flag.CommandLine) and returns the value holder to read after Parse.
func Register(fs *flag.FlagSet, defaultOut string) *Flags {
	f := &Flags{}
	fs.StringVar(&f.Scenario, "scenario", "",
		"run a scenario: a registered name ("+strings.Join(scenario.Names(), ", ")+") or a JSON spec file")
	fs.Var(&f.Sets, "set", "override a spec field or axis, key=value (repeatable)")
	fs.StringVar(&f.Mode, "mode", "quick", "preset mode for registered scenarios: quick | full")
	fs.StringVar(&f.Out, "out", defaultOut, "output directory (empty = stdout)")
	fs.Int64Var(&f.Seed, "seed", 42, "master seed")
	fs.IntVar(&f.Parallel, "parallel", 0, "replica workers (0 = all cores, 1 = sequential)")
	fs.BoolVar(&f.Trace, "trace", false, "capture an activity trace of one replica")
	fs.Float64Var(&f.TraceInterval, "trace-interval", 1, "trace sampling interval in simulated seconds")
	fs.StringVar(&f.TracePoint, "trace-point", "", "grid-point label to trace (default: first point)")
	fs.IntVar(&f.TraceSample, "trace-sample", 0, "sample index to trace")
	fs.StringVar(&f.CPUProfile, "cpuprofile", "", "write a CPU profile to this file")
	fs.StringVar(&f.MemProfile, "memprofile", "", "write a heap profile to this file on exit")
	return f
}

// ScenarioRequested reports whether -scenario was given.
func (f *Flags) ScenarioRequested() bool { return f.Scenario != "" }

// StartProfiling starts the -cpuprofile/-memprofile capture; call the
// returned stop function on exit.
func (f *Flags) StartProfiling() (func() error, error) {
	return profiling.Start(f.CPUProfile, f.MemProfile)
}

// RunOptions maps the flags onto scenario run options.
func (f *Flags) RunOptions() scenario.RunOptions {
	opt := scenario.RunOptions{Seed: f.Seed, Parallel: f.Parallel}
	if f.Trace {
		opt.Trace = &scenario.TraceOptions{
			IntervalSeconds: f.TraceInterval,
			Point:           f.TracePoint,
			Sample:          f.TraceSample,
		}
	}
	return opt
}

// RunScenario resolves -scenario, applies the -set overrides, runs the
// spec and emits the artifacts: a registered definition renders its
// canonical tables and figures, a file spec the generic per-point summary.
// Artifacts go to -out as files (plus summary lines on stdout), or all to
// stdout when -out is empty.
func (f *Flags) RunScenario(tool string) error {
	s, def, err := scenario.Load(f.Scenario, f.Mode)
	if err != nil {
		return err
	}
	for _, assignment := range f.Sets {
		if err := scenario.ApplySet(&s, assignment); err != nil {
			return err
		}
	}
	ropt := f.RunOptions()
	res, err := scenario.Run(s, ropt)
	if err != nil {
		return err
	}

	var artifacts []scenario.Artifact
	var summary []string
	if def != nil && def.Render != nil {
		artifacts, summary, err = def.Render(res, ropt)
		if err != nil {
			return err
		}
	} else {
		tbl := res.Table()
		artifacts = []scenario.Artifact{{Name: artifactName(s.Name) + ".txt", Text: tbl.Render()}}
		summary = res.Summary()
	}
	if res.Trace != nil {
		artifacts = append(artifacts, scenario.Artifact{
			Name: artifactName(s.Name) + ".trace.txt",
			Text: res.Trace.Render(),
		})
	}

	if f.Out == "" {
		for _, a := range artifacts {
			fmt.Printf("== %s ==\n%s\n", a.Name, a.Text)
		}
	} else {
		if err := os.MkdirAll(f.Out, 0o755); err != nil {
			return err
		}
		for _, a := range artifacts {
			path := filepath.Join(f.Out, a.Name)
			if err := os.WriteFile(path, []byte(a.Text), 0o644); err != nil {
				return err
			}
			fmt.Printf("%s: wrote %s\n", tool, path)
		}
	}
	for _, line := range summary {
		fmt.Println(line)
	}
	return nil
}

// artifactName flattens a scenario name ("eval/gtc") into a file stem.
func artifactName(name string) string {
	return strings.ReplaceAll(name, "/", "-")
}

// ParseInts parses a comma-separated integer list (shared by the
// experiment-specific CLI surfaces).
func ParseInts(s string) ([]int, error) {
	fs, err := ParseFloats(s)
	if err != nil {
		return nil, err
	}
	out := make([]int, len(fs))
	for i, f := range fs {
		out[i] = int(f)
	}
	return out, nil
}

// ParseFloats parses a comma-separated float list.
func ParseFloats(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("bad number %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}
