package scenario

import (
	"context"
	"fmt"

	"repro/cluster"
	"repro/internal/runner"
	"repro/internal/trace"
)

// RunOptions configures one scenario execution.
type RunOptions struct {
	// Seed is the master seed every replica derives from.
	Seed int64
	// Parallel bounds the replica worker pool (1 = sequential, <=0 = all
	// cores). Results are bit-identical at every setting.
	Parallel int
	// Context cancels the campaign between replicas (nil = background).
	Context context.Context
	// Progress, if set, is called after each replica completes.
	Progress func(done, total int, key runner.ReplicaKey)
	// Trace, if set, records a per-OST timeline of one replica.
	Trace *TraceOptions
	// NoReuse disables world reuse: every replica builds and tears down a
	// fresh simulation world instead of renting a reset one from its
	// worker's pool. Results are bit-identical either way; the switch (and
	// the REPRO_NO_REUSE environment variable, honoured by cluster.NewPool)
	// exists for bisection.
	NoReuse bool
}

// TraceOptions selects which replica to trace and how often to sample.
type TraceOptions struct {
	// IntervalSeconds is the sampling period in virtual seconds
	// (default 1).
	IntervalSeconds float64
	// Point is the grid-point label to trace (default: the first point).
	Point string
	// Sample is the sample index at that point to trace (default 0).
	Sample int
}

// PointResult is one grid point's measurements.
type PointResult struct {
	Label   string
	Params  Params
	Samples []Sample
}

// TraceResult is the per-OST timeline of the traced replica.
type TraceResult struct {
	Key     runner.ReplicaKey
	Samples []trace.Sample
	// Activity / Slowness are per-target heatmaps; Throughput is the
	// aggregate disk-throughput timeline (rendered while the replica's
	// file system was live). Jobs is the per-job traffic timeline, empty
	// unless the replica co-scheduled registered jobs. Health is the
	// per-target lifecycle timeline, empty unless some target left the
	// healthy state.
	Activity   string
	Slowness   string
	Throughput string
	Jobs       string
	Health     string
}

// Render concatenates the trace's renderings.
func (t *TraceResult) Render() string {
	out := fmt.Sprintf("Trace of replica %v (%d samples)\n\nActivity (flows per target):\n%s\nSlowness (service degradation):\n%s\nAggregate throughput:\n%s",
		t.Key, len(t.Samples), t.Activity, t.Slowness, t.Throughput)
	if t.Jobs != "" {
		out += "\nPer-job traffic:\n" + t.Jobs
	}
	if t.Health != "" {
		out += "\nTarget health:\n" + t.Health
	}
	return out
}

// Result is a scenario run's full outcome: one PointResult per grid point
// in compile order, plus the optional trace.
type Result struct {
	Scenario Scenario
	Points   []PointResult
	Trace    *TraceResult

	byLabel map[string]int
}

// Point returns the grid point with the given label, or nil.
func (r *Result) Point(label string) *PointResult {
	if i, ok := r.byLabel[label]; ok {
		return &r.Points[i]
	}
	return nil
}

// traceCapture carries the tracer of the one traced replica from attach
// (cluster built) to finish (before cluster shutdown, while renders can
// still read the live file system). A nil capture is inert, so the replica
// execution paths call it unconditionally.
type traceCapture struct {
	interval float64
	key      runner.ReplicaKey
	tracer   *trace.Tracer
	out      *TraceResult
}

func (t *traceCapture) attach(c *cluster.Cluster) {
	if t == nil {
		return
	}
	t.tracer = c.Trace(t.interval)
}

func (t *traceCapture) finish() {
	if t == nil || t.tracer == nil {
		return
	}
	t.tracer.Stop()
	t.out = &TraceResult{
		Key:        t.key,
		Samples:    t.tracer.Samples(),
		Activity:   t.tracer.RenderActivity(72),
		Slowness:   t.tracer.RenderSlowness(72),
		Throughput: t.tracer.RenderThroughput(50),
		Jobs:       t.tracer.RenderJobs(72),
		Health:     t.tracer.RenderHealth(72),
	}
}

// Run validates the spec, compiles its grid, executes every replica on the
// worker pool, and demuxes the results back into grid points. Replica
// seeds derive from (seed label, point label, sample index) only, so the
// outcome is bit-identical at every Parallel setting.
func Run(s Scenario, opt RunOptions) (*Result, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	keys, pts := s.ReplicaKeys()

	cfgs := make([]replicaCfg, len(pts))
	pointIdx := make(map[string]int, len(pts))
	for i, pt := range pts {
		cfg, err := s.resolve(pt.Params)
		if err != nil {
			return nil, fmt.Errorf("scenario %s: point %q: %w", s.seedLabel(), pt.Label, err)
		}
		cfgs[i] = cfg
		pointIdx[pt.Label] = i
	}

	var tc *traceCapture
	if opt.Trace != nil {
		label := opt.Trace.Point
		if label == "" {
			label = pts[0].Label
		}
		pi, ok := pointIdx[label]
		if !ok {
			return nil, fmt.Errorf("scenario %s: trace point %q not in the grid", s.seedLabel(), label)
		}
		if opt.Trace.Sample < 0 || opt.Trace.Sample >= pts[pi].Samples {
			return nil, fmt.Errorf("scenario %s: trace sample %d out of range (point %q has %d)",
				s.seedLabel(), opt.Trace.Sample, label, pts[pi].Samples)
		}
		interval := opt.Trace.IntervalSeconds
		if interval <= 0 {
			interval = 1
		}
		tc = &traceCapture{
			interval: interval,
			key:      runner.ReplicaKey{Driver: s.seedLabel(), Point: label, Sample: opt.Trace.Sample},
		}
	}

	// Each worker owns a private pool of reusable worlds; the per-worker
	// cleanup shuts pooled worlds down on every exit path (including
	// cancellation). NewPool returns nil under REPRO_NO_REUSE, and a nil
	// pool rents fresh worlds, so all modes share one execution path.
	var workerInit func() (any, func())
	if !opt.NoReuse {
		workerInit = func() (any, func()) {
			p := cluster.NewPool()
			return p, func() { p.Close() }
		}
	}

	results, err := runner.RunWorkers(runner.Options{
		Parallel:   opt.Parallel,
		Context:    opt.Context,
		Progress:   opt.Progress,
		WorkerInit: workerInit,
	}, keys, func(k runner.ReplicaKey, local any) (Sample, error) {
		var capture *traceCapture
		if tc != nil && tc.key == k {
			capture = tc
		}
		pool, _ := local.(*cluster.Pool)
		return s.execReplica(cfgs[pointIdx[k.Point]], k.Seed(opt.Seed), pool, capture)
	})
	if err != nil {
		return nil, err
	}

	res := &Result{Scenario: s, byLabel: pointIdx}
	idx := 0
	for _, pt := range pts {
		pr := PointResult{Label: pt.Label, Params: pt.Params}
		pr.Samples = append(pr.Samples, results[idx:idx+pt.Samples]...)
		idx += pt.Samples
		res.Points = append(res.Points, pr)
	}
	if tc != nil {
		res.Trace = tc.out
	}
	return res, nil
}
