package core

import (
	"testing"

	"repro/internal/iomethod"
	"repro/internal/machines"
	"repro/internal/mpisim"
	"repro/internal/pfs"
	"repro/internal/simkernel"
)

// runHistory executes one adaptive step on a machine with one fast and
// several slowed targets and returns (elapsed, adaptiveWrites).
func runHistory(t *testing.T, historyAware bool) (float64, int) {
	t.Helper()
	k := simkernel.New()
	fsCfg := machines.Jaguar(3).FS
	fsCfg.NumOSTs = 10
	fs := pfs.MustNew(k, fsCfg)
	// Target 0 crawls; targets 1 and 2 are degraded; 3 is pristine.
	fs.OST(0).SetSlowFactor(0.10)
	fs.OST(1).SetSlowFactor(0.50)
	fs.OST(2).SetSlowFactor(0.60)
	w := mpisim.NewWorld(k, 32, mpisim.Options{})
	a, err := New(w, fs, Config{
		OSTs:         []int{0, 1, 2, 3},
		HistoryAware: historyAware,
	})
	if err != nil {
		t.Fatal(err)
	}
	var res *iomethod.StepResult
	wg := w.Launch("app", func(r *mpisim.Rank) {
		data := iomethod.RankData{Vars: []iomethod.VarSpec{{Name: "v", Bytes: 48 * int64(pfs.MB)}}}
		rr, err := a.WriteStep(r, "h", data)
		if err != nil {
			t.Error(err)
			return
		}
		res = rr
	})
	k.Run()
	if wg.Count() != 0 {
		t.Fatal("deadlock")
	}
	k.Shutdown()
	return res.Elapsed, res.AdaptiveWrites
}

func TestHistoryAwareCompletesAndAdapts(t *testing.T) {
	elapsed, adaptive := runHistory(t, true)
	if elapsed <= 0 {
		t.Fatal("no elapsed time")
	}
	if adaptive == 0 {
		t.Fatal("history-aware run performed no adaptive writes despite slow targets")
	}
}

func TestHistoryAwareNotSlowerThanScanOrder(t *testing.T) {
	scan, _ := runHistory(t, false)
	hist, _ := runHistory(t, true)
	// Fastest-first dispatch must not lose to scan order on a machine with
	// a clear speed hierarchy (equality is fine: with a single idle target
	// at a time the policies coincide).
	if hist > scan*1.05 {
		t.Fatalf("history-aware (%.2fs) slower than scan order (%.2fs)", hist, scan)
	}
}

func TestHistoryAwareDeterministic(t *testing.T) {
	e1, a1 := runHistory(t, true)
	e2, a2 := runHistory(t, true)
	if e1 != e2 || a1 != a2 {
		t.Fatalf("nondeterministic: %v/%v vs %v/%v", e1, a1, e2, a2)
	}
}

func TestLivenessWithNearDeadTarget(t *testing.T) {
	// A target serving at 0.1% speed must not wedge the step: its queued
	// writers drain through adaptive redirection, and its own single
	// in-flight write eventually lands. (Overall time is still bounded by
	// that one unavoidable write — the paper's "slowest writer" truth.)
	k := simkernel.New()
	fsCfg := machines.Jaguar(3).FS
	fsCfg.NumOSTs = 8
	fs := pfs.MustNew(k, fsCfg)
	fs.OST(0).SetSlowFactor(1e-3)
	// Eight writers per group: the dead target's cache absorbs the first
	// ~three 32 MB bursts at full speed (write() returns on acceptance),
	// so only a deeper queue exposes the stall for the coordinator to
	// drain elsewhere.
	w := mpisim.NewWorld(k, 32, mpisim.Options{})
	a, err := New(w, fs, Config{OSTs: []int{0, 1, 2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	var res *iomethod.StepResult
	wg := w.Launch("app", func(r *mpisim.Rank) {
		data := iomethod.RankData{Vars: []iomethod.VarSpec{{Name: "v", Bytes: 32 * int64(pfs.MB)}}}
		rr, err := a.WriteStep(r, "dead", data)
		if err != nil {
			t.Error(err)
			return
		}
		res = rr
	})
	k.Run()
	if wg.Count() != 0 {
		t.Fatal("step wedged on a near-dead target")
	}
	k.Shutdown()
	if res.Global.NumEntries() != 32 {
		t.Fatalf("entries = %d", res.Global.NumEntries())
	}
	// Most of the dead group's queued writers should have been shifted away.
	if res.AdaptiveWrites < 3 {
		t.Fatalf("adaptive writes = %d, want ≥3 (dead group drained elsewhere)", res.AdaptiveWrites)
	}
}
