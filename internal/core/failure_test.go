package core

import (
	"reflect"
	"testing"

	"repro/internal/iomethod"
	"repro/internal/machines"
	"repro/internal/mpisim"
	"repro/internal/pfs"
	"repro/internal/simkernel"
)

// Failure-path tests for the adaptive method: a storage target that dies
// mid-step fails its writers with ErrTargetDown after the client timeout;
// the sub-coordinator requeues them and the coordinator shifts them onto
// idle healthy targets, while a backoff probe retries the dead target until
// it revives. The ablation (DisableAdaptation) can only wait for revival.

// failOutcome mirrors cont_test's stepOutcome for the failure harness.
type failOutcome struct {
	res      iomethod.StepResult
	end      simkernel.Time
	ingested float64
	mdsOps   int
	messages int
}

// runCrashStep runs one adaptive step of 16 writers over 4 targets with
// OST 0 (group 0's target) crashing at crashAt and reviving at reviveAt
// (virtual seconds); zero crashAt/reviveAt means no failure.
func runCrashStep(t *testing.T, cfg Config, crashAt, reviveAt float64, cont bool) failOutcome {
	t.Helper()
	const writers, numOSTs = 16, 4
	k := simkernel.New()
	fsCfg := machines.Jaguar(5).FS
	fsCfg.NumOSTs = numOSTs + 1 // room for the global index file
	fsCfg.DeadTimeout = 0.5
	fs := pfs.MustNew(k, fsCfg)
	if reviveAt > 0 {
		k.AfterSeconds(crashAt, func() { fs.OST(0).SetHealth(pfs.Dead, 1) })
		k.AfterSeconds(reviveAt, func() { fs.OST(0).SetHealth(pfs.Healthy, 1) })
	}
	w := mpisim.NewWorld(k, writers, mpisim.Options{})
	cfg.OSTs = []int{0, 1, 2, 3}
	a, err := New(w, fs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var res *iomethod.StepResult
	data := func(rank int) iomethod.RankData {
		return iomethod.RankData{Vars: []iomethod.VarSpec{
			{Name: "u", Bytes: int64(pfs.MB) * int64(8+rank%3), Min: 0, Max: 1},
		}}
	}
	if cont {
		w.LaunchCont("app", func(i int) mpisim.RankCont {
			return &stepRunner{m: a, data: data(i), out: func(rr *iomethod.StepResult, err error) {
				if err != nil {
					t.Error(err)
					return
				}
				res = rr
			}}
		})
	} else {
		w.Launch("app", func(r *mpisim.Rank) {
			rr, err := a.WriteStep(r, "out", data(r.Rank()))
			if err != nil {
				t.Error(err)
				return
			}
			res = rr
		})
	}
	k.Run()
	if res == nil {
		t.Fatal("step did not complete (deadlock under failure?)")
	}
	out := failOutcome{
		res:      *res,
		end:      k.Now(),
		ingested: fs.TotalBytesIngested(),
		mdsOps:   fs.MDS.Stats.OpsServed,
		messages: w.MessagesSent,
	}
	k.Shutdown()
	return out
}

// TestAdaptiveShiftsWritersOffDeadTarget: with adaptation on, a crashed
// target's queued writers are redirected to idle healthy targets — every
// rank's payload lands despite failures along the way.
func TestAdaptiveShiftsWritersOffDeadTarget(t *testing.T) {
	out := runCrashStep(t, Config{}, 0.001, 30, false)
	var want float64
	for rank := 0; rank < 16; rank++ {
		want += float64(int64(pfs.MB) * int64(8+rank%3))
	}
	if out.res.TotalBytes != want {
		t.Fatalf("TotalBytes = %v, want %v (payload lost)", out.res.TotalBytes, want)
	}
	if out.res.WriteFailures == 0 {
		t.Fatal("expected write failures against the dead target")
	}
	if out.res.AdaptiveWrites == 0 {
		t.Fatal("expected writers shifted off the dead target (adaptive writes)")
	}
	// The shift must beat waiting for revival at t=30: everything except the
	// dead group's own file (index append) finishes on healthy targets.
	if out.res.Elapsed > 29 {
		t.Fatalf("step took %.1fs — writers waited for revival instead of shifting", out.res.Elapsed)
	}
}

// TestAblationWaitsForRevival: with adaptation off, the dead group can only
// retry its own target until it revives, so the step spans the outage.
func TestAblationWaitsForRevival(t *testing.T) {
	revive := 4.0
	out := runCrashStep(t, Config{DisableAdaptation: true}, 0.001, revive, false)
	var want float64
	for rank := 0; rank < 16; rank++ {
		want += float64(int64(pfs.MB) * int64(8+rank%3))
	}
	if out.res.TotalBytes != want {
		t.Fatalf("TotalBytes = %v, want %v (payload lost)", out.res.TotalBytes, want)
	}
	if out.res.WriteFailures == 0 {
		t.Fatal("expected write failures against the dead target")
	}
	if out.res.AdaptiveWrites != 0 {
		t.Fatal("ablation must not redirect writes")
	}
	if out.res.Elapsed < revive {
		t.Fatalf("step finished in %.2fs, before the target revived at %.1fs", out.res.Elapsed, revive)
	}
	// And it must converge shortly after revival, not much later.
	if out.res.Elapsed > revive+10 {
		t.Fatalf("step took %.1fs — retry probes failed to reclaim the revived target", out.res.Elapsed)
	}
}

// TestFailureEnginesMatch pins engine equivalence on the failure protocol:
// goroutine and continuation ranks must produce identical outcomes for
// crashing-target steps, with and without adaptation.
func TestFailureEnginesMatch(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"adaptive", Config{}},
		{"ablation", Config{DisableAdaptation: true}},
		{"history", Config{HistoryAware: true}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := runCrashStep(t, tc.cfg, 0.001, 4, false)
			c := runCrashStep(t, tc.cfg, 0.001, 4, true)
			if !reflect.DeepEqual(g, c) {
				t.Fatalf("engines diverge under failures:\ngoroutine: %+v\ncont:      %+v", g, c)
			}
			if g.res.WriteFailures == 0 {
				t.Fatal("case exercised no write failure")
			}
		})
	}
}
