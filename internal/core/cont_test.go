package core

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"repro/internal/iomethod"
	"repro/internal/machines"
	"repro/internal/mpisim"
	"repro/internal/pfs"
	"repro/internal/simkernel"
)

// The engine-equivalence pin at the adaptive-method level: the same
// collective step, once on goroutine ranks calling WriteStep and once on
// continuation ranks driving BeginStepCont (with the SC/C loops on
// goroutines either way), must end at the same virtual time with the same
// step result and server statistics — including runs where the coordinator
// redirects writes to idle targets.

// stepRunner drives one BeginStepCont machine as a rank continuation.
type stepRunner struct {
	pc   int
	m    iomethod.ContMethod
	data iomethod.RankData
	sc   iomethod.StepCont
	out  func(*iomethod.StepResult, error)
}

func (s *stepRunner) StepRank(r *mpisim.Rank, c *simkernel.ContProc) bool {
	for {
		switch s.pc {
		case 0:
			s.sc = s.m.BeginStepCont(r, "out", s.data)
			s.pc = 1
		default:
			if !s.sc.Step(c) {
				return false
			}
			s.out(s.sc.Result())
			return true
		}
	}
}

type stepOutcome struct {
	res      iomethod.StepResult
	end      simkernel.Time
	ingested float64
	drained  float64
	mdsOps   int
	messages int
}

func runAdaptiveStep(t *testing.T, writers, numOSTs int, mb int64, slowOST float64, cfg Config, cont bool) stepOutcome {
	t.Helper()
	k := simkernel.New()
	fsCfg := machines.Jaguar(5).FS
	fsCfg.NumOSTs = numOSTs
	fs := pfs.MustNew(k, fsCfg)
	if slowOST > 0 {
		fs.OST(0).SetSlowFactor(slowOST)
	}
	w := mpisim.NewWorld(k, writers, mpisim.Options{})
	a, err := New(w, fs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var res *iomethod.StepResult
	data := func(rank int) iomethod.RankData {
		return iomethod.RankData{Vars: []iomethod.VarSpec{
			{Name: "u", Bytes: int64(pfs.MB) * (mb + int64(rank%3)), Min: 0, Max: 1},
		}}
	}
	if cont {
		w.LaunchCont("app", func(i int) mpisim.RankCont {
			return &stepRunner{m: a, data: data(i), out: func(rr *iomethod.StepResult, err error) {
				if err != nil {
					t.Error(err)
					return
				}
				res = rr
			}}
		})
	} else {
		w.Launch("app", func(r *mpisim.Rank) {
			rr, err := a.WriteStep(r, "out", data(r.Rank()))
			if err != nil {
				t.Error(err)
				return
			}
			res = rr
		})
	}
	k.Run()
	if res == nil {
		t.Fatal("step did not complete")
	}
	out := stepOutcome{
		res:      *res,
		end:      k.Now(),
		ingested: fs.TotalBytesIngested(),
		drained:  fs.TotalBytesDrained(),
		mdsOps:   fs.MDS.Stats.OpsServed,
		messages: w.MessagesSent,
	}
	k.Shutdown()
	return out
}

func TestContStepMatchesWriteStep(t *testing.T) {
	cases := []struct {
		cfg     Config
		writers int
		mb      int64
		slow    float64
	}{
		{Config{}, 12, 2, 0},
		{Config{}, 32, 32, 0.15},
		{Config{StaggerOpens: 2 * time.Millisecond}, 12, 2, 0.15},
		{Config{DisableAdaptation: true}, 12, 2, 0.15},
		{Config{HistoryAware: true, WritersPerTarget: 2}, 32, 32, 0.15},
	}
	sawAdaptive := false
	for ci, tc := range cases {
		t.Run(fmt.Sprintf("case%d", ci), func(t *testing.T) {
			g := runAdaptiveStep(t, tc.writers, 4, tc.mb, tc.slow, tc.cfg, false)
			c := runAdaptiveStep(t, tc.writers, 4, tc.mb, tc.slow, tc.cfg, true)
			if !reflect.DeepEqual(g, c) {
				t.Fatalf("engines diverge:\ngoroutine: %+v\ncont:      %+v", g, c)
			}
			if g.res.AdaptiveWrites > 0 {
				sawAdaptive = true
			}
		})
	}
	if !sawAdaptive {
		t.Fatal("no case exercised an adaptive (redirected) write")
	}
}
