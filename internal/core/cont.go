package core

import (
	"time"

	"repro/internal/iomethod"
	"repro/internal/mpisim"
	"repro/internal/pfs"
	"repro/internal/simkernel"
)

// The continuation form of WriteStep: the straight-line writer role (and
// the setup/join bookkeeping around it) runs as a run-to-completion state
// machine. The sub-coordinator (Algorithm 2) and coordinator (Algorithm 3)
// pumps are continuation machines on both engines (pump.go), spawned from
// inside this machine exactly where WriteStep spawns them. Both engines
// schedule identical events.

// stepCont is one rank's adaptive collective step in flight.
type stepCont struct {
	a    *Adaptive
	st   *stepState
	r    *mpisim.Rank
	rank int
	g    int
	isSC bool
	isC  bool
	data iomethod.RankData

	pc     int
	total  int64
	target int
	offset int64

	scDone *simkernel.WaitGroup
	cDone  *simkernel.WaitGroup

	create pfs.CreateOp
	write  pfs.WriteOp
	recv   mpisim.RecvOp

	res *iomethod.StepResult
	err error
}

// BeginStepCont implements iomethod.ContMethod. It only arms the machine;
// all simulation work happens in Step.
func (a *Adaptive) BeginStepCont(r *mpisim.Rank, stepName string, data iomethod.RankData) iomethod.StepCont {
	st := a.getStep(stepName)
	rank := r.Rank()
	g := st.groupOf[rank]
	s := &st.machines[rank]
	*s = stepCont{
		a: a, st: st, r: r, rank: rank, g: g,
		isSC: st.groups[g][0] == rank, isC: rank == 0,
		data: data,
	}
	return s
}

// Step drives the rank's participation in the collective step; it mirrors
// WriteStep (and its writerRole) statement for statement.
//
//repro:hotpath
func (s *stepCont) Step(c *simkernel.ContProc) bool {
	a, st := s.a, s.st
	for {
		switch s.pc {
		case 0:
			st.dataOf[s.rank] = s.data
			s.pc = 1
			if s.isSC && a.cfg.StaggerOpens > 0 {
				c.Sleep(time.Duration(s.g) * a.cfg.StaggerOpens)
				return false
			}
		case 1:
			if s.isSC {
				s.create.BeginCreate(a.fs, st.fileNames[s.g],
					pfs.Layout{OSTs: []int{a.cfg.OSTs[s.g%len(a.cfg.OSTs)]}})
				s.pc = 2
			} else {
				s.pc = 3
			}
		case 2:
			if !s.create.Step(c) {
				return false
			}
			if err := s.create.Err(); err != nil {
				s.err = err
				return true
			}
			st.files[s.g] = s.create.File()
			s.pc = 3
		case 3:
			st.setupDone.Done()
			s.pc = 4
		case 4:
			if !st.setupDone.WaitCont(c) {
				return false
			}
			if !st.t0Set {
				st.t0 = c.Now()
				st.t0Set = true
				st.res.MDSOpenQueuePeak = a.fs.MDS.Stats.MaxQueue
			}
			st.start.Broadcast()

			if s.isSC {
				s.scDone = simkernel.NewWaitGroup(a.w.Kernel())
				s.scDone.Add(1)
				a.spawnSC(s.r, st, s.g, s.scDone)
			}
			if s.isC {
				s.cDone = simkernel.NewWaitGroup(a.w.Kernel())
				s.cDone.Add(1)
				a.spawnC(s.r, st, s.cDone)
			}

			// Writer role (Algorithm 1), continuation form.
			s.pc = 5
			if !s.r.RecvCont(&s.recv, c, mpisim.AnySource, tagToWriter) {
				return false
			}
		case 5:
			env := s.recv.Msg().Data.(*scMsg)
			s.total = s.data.TotalBytes()
			s.target = env.target
			s.offset = env.offset
			a.pool.put(env)
			s.write.BeginWrite(st.files[s.target], s.offset, s.total)
			s.pc = 6
		case 6:
			if !s.write.Step(c) {
				return false
			}
			if s.write.Err() != nil {
				// Target down: report to the triggering SC (which requeues
				// this writer) and go back to waiting for an assignment,
				// mirroring the goroutine writerRole's retry loop.
				st.res.WriteFailures++
				fl := a.pool.get(kindWriteFailed)
				fl.writer, fl.source, fl.target = s.rank, s.g, s.target
				s.r.Send(st.groups[s.g][0], tagToSC, fl)
				s.pc = 5
				if !s.r.RecvCont(&s.recv, c, mpisim.AnySource, tagToWriter) {
					return false
				}
				continue
			}
			st.res.WriterTimes[s.rank] = (c.Now() - st.t0).Seconds()
			st.res.TotalBytes += float64(s.total)
			if s.target != s.g {
				st.res.AdaptiveWrites++
			}
			triggeringSC := st.groups[s.g][0]
			targetSC := st.groups[s.target][0]
			done := a.pool.get(kindWriteComplete)
			done.writer, done.source, done.target, done.bytes = s.rank, s.g, s.target, s.total
			s.r.Send(triggeringSC, tagToSC, done)
			if targetSC != triggeringSC {
				// Each in-flight message owns its envelope (the receiver
				// recycles it), so the fan-out is two envelopes.
				done2 := a.pool.get(kindWriteComplete)
				done2.writer, done2.source, done2.target, done2.bytes = s.rank, s.g, s.target, s.total
				s.r.Send(targetSC, tagToSC, done2)
			}
			// The index travels separately and after the data, so its
			// transfer overlaps the next writer's data (Section III-B.1).
			ib := a.pool.get(kindIndexBody)
			ib.writer, ib.offset = s.rank, s.offset
			s.r.Send(targetSC, tagToSC, ib)
			s.pc = 7
		case 7:
			if s.isSC && !s.scDone.WaitCont(c) {
				return false
			}
			s.pc = 8
		default:
			if s.isC && !s.cDone.WaitCont(c) {
				return false
			}
			if el := (c.Now() - st.t0).Seconds(); el > st.res.Elapsed {
				st.res.Elapsed = el
			}
			st.returned++
			if st.returned == a.w.Size() {
				delete(a.steps, st.name)
			}
			s.res = st.res
			return true
		}
	}
}

// Result implements iomethod.StepCont.
func (s *stepCont) Result() (*iomethod.StepResult, error) { return s.res, s.err }
