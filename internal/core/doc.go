// Package core implements the paper's primary contribution: the adaptive IO
// method (Section III, Algorithms 1–3).
//
// Writers are grouped contiguously by rank, one group per storage target.
// The first writer of each group additionally acts as the group's
// sub-coordinator (SC), owning one file placed on one OST and scheduling its
// writers onto that file one at a time. Rank 0 additionally acts as the
// coordinator (C) for the whole output. Writers and the coordinator talk
// only to sub-coordinators, never to each other, which bounds the message
// load on any single process.
//
// The adaptive mechanism: as sub-coordinators finish, their files (and thus
// their storage targets) become idle; the coordinator shifts queued writers
// from still-writing (slow) groups onto those idle (fast) targets, appending
// at the coordinator-tracked end offset, with at most one write active per
// file at any time. Work therefore drains from the slow areas of the file
// system into the fast ones — directly attacking the imbalance factor
// measured in Section II.
//
// Index handling follows the paper: each writer builds its local index
// entries from its assigned offset and ships them (separately from, and
// after, its data) to the *target* file's sub-coordinator; each SC sorts and
// merges its entries and writes a per-file local index; the coordinator
// gathers the local indices into a global index. (The paper notes the global
// indexing phase was the one unfinished piece, with a characteristics-based
// search as the interim; this implementation provides both — see
// bp.GlobalIndex.FindByValue.)
//
// # Message pumps
//
// The SC and C receive loops are the protocol's densest message paths —
// every write funnels a completion through an SC, and every adaptive
// redirect round-trips through C — so both run as run-to-completion
// continuation state machines (pump.go), spawned with Kernel.SpawnCont on
// both engines. The SC machine's receive loop:
//
//	         ┌──────────────────────────────────────────────┐
//	         ▼                                              │
//	[0 wait start]──▶[1 loop head]──exit?──▶[3..6 index epilogue]──▶ done
//	                    │     ▲                             (pfs cont ops,
//	            signalNext    │                              LocalIndex → C)
//	                    │   put(env)
//	                    ▼     │
//	              RecvCont──▶[2 handle(env)]
//	               (parks; Send resumes it with the
//	                completed RecvOp — advance style)
//
// State 1 feeds the group's own target (pop the waiting ring, send a
// pooled go-signal envelope) and begins a receive; state 2 switches on the
// envelope kind (write/index/failure/adaptive traffic), recycles the
// envelope into the pool, and loops. The C machine has the same shape with
// a dispatch/rotation head and a gather + global-index epilogue.
//
// Wire messages are pooled *scMsg envelopes: pointer-shaped, so sending one
// through mpisim's `any` payload never boxes, and each in-flight message
// owns its envelope (fan-out sends two), with the receiver returning it to
// the pool after handling. Kernel.OnReset sweeps the free list so recycled
// worlds drop any index slices the envelopes still reference. Steady-state
// SC/writer exchange is allocation-free (TestSCPumpZeroAlloc).
//
// Delivery order is unchanged by the port: rank messages still travel
// through mpisim's latency-stamped delivery events in (time, seq) order —
// a cont-parked receiver is woken by the *delivery event*, exactly when the
// goroutine engine would have scheduled its wake, so goroutine and
// continuation pumps observe the same message interleavings and the engine
// bit-identity tests (TestEngineBitIdentical*, including the failure sweep)
// hold bit-for-bit. The inline direct-delivery fast path exists one layer
// down, in simkernel.Mailbox, where both the send and the resume happen at
// the same timestamp within one event.
package core
