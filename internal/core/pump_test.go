package core

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/iomethod"
	"repro/internal/machines"
	"repro/internal/mpisim"
	"repro/internal/pfs"
	"repro/internal/simkernel"
)

// The SC/C message pumps are continuation machines exchanging pooled scMsg
// envelopes over rank channels. These tests and benchmarks pin the cost of
// that exchange: the steady state must not allocate (the pool recycles
// envelopes, the pointer payload fits the interface word, and mpisim
// recycles its delivery events), and a full adaptive step must stay cheap.

// pumpBenchSC plays the sub-coordinator side of a synthetic exchange: send a
// writer its (target, offset) go signal, wait for the completion.
type pumpBenchSC struct {
	pool   *msgPool
	rounds int
	recv   mpisim.RecvOp
	pc     int
}

func (m *pumpBenchSC) StepRank(r *mpisim.Rank, c *simkernel.ContProc) bool {
	for {
		switch m.pc {
		case 0:
			if m.rounds == 0 {
				return true
			}
			m.rounds--
			env := m.pool.get(kindWriteGo)
			env.target = 3
			env.offset = int64(m.rounds)
			r.Send(1, tagToWriter, env)
			m.pc = 1
			if !r.RecvCont(&m.recv, c, mpisim.AnySource, tagToSC) {
				return false
			}
		case 1:
			m.pool.put(m.recv.Msg().Data.(*scMsg))
			m.pc = 0
		}
	}
}

// pumpBenchWriter plays the writer side: wait for the go signal, report the
// write complete.
type pumpBenchWriter struct {
	pool   *msgPool
	rounds int
	recv   mpisim.RecvOp
	pc     int
}

func (m *pumpBenchWriter) StepRank(r *mpisim.Rank, c *simkernel.ContProc) bool {
	for {
		switch m.pc {
		case 0:
			if m.rounds == 0 {
				return true
			}
			m.pc = 1
			if !r.RecvCont(&m.recv, c, mpisim.AnySource, tagToWriter) {
				return false
			}
		case 1:
			m.pool.put(m.recv.Msg().Data.(*scMsg))
			m.rounds--
			out := m.pool.get(kindWriteComplete)
			out.writer = r.Rank()
			out.bytes = 1 << 20
			r.Send(0, tagToSC, out)
			m.pc = 0
		}
	}
}

// launchPump wires a two-rank world running the synthetic SC/writer
// exchange for the given number of rounds.
func launchPump(k *simkernel.Kernel, pool *msgPool, rounds int) {
	w := mpisim.NewWorld(k, 2, mpisim.Options{})
	w.LaunchCont("pump", func(i int) mpisim.RankCont {
		if i == 0 {
			return &pumpBenchSC{pool: pool, rounds: rounds}
		}
		return &pumpBenchWriter{pool: pool, rounds: rounds}
	})
}

// TestSCPumpZeroAlloc is the allocation gate on the SC protocol hot path:
// once the pool, rings, and event freelists are warm, a full go/complete
// exchange (two pooled envelopes, two rank sends, two cont receives) must
// allocate nothing. A regression here — an envelope field that boxes, a
// queue that copies, a closure in the pump — shows up as a nonzero rate.
func TestSCPumpZeroAlloc(t *testing.T) {
	k := simkernel.New()
	var pool msgPool
	const warmup, measured = 1_000, 10_000
	launchPump(k, &pool, warmup+measured)
	// One round is two sends at 5us world latency each: 10us of virtual
	// time. Run the warmup rounds, snapshot, run the measured rounds.
	const roundNs = 10_000
	k.RunUntil(simkernel.Time(warmup * roundNs))
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	k.Run()
	runtime.ReadMemStats(&after)
	k.Shutdown()
	delta := after.Mallocs - before.Mallocs
	perOp := float64(delta) / measured
	t.Logf("%d allocations over %d exchanges (%.4f/op)", delta, measured, perOp)
	// Tolerate stray runtime allocations (ReadMemStats itself, background
	// sweeps) but nothing that scales with the exchange count.
	if perOp > 0.01 {
		t.Fatalf("SC pump steady state allocates: %d allocations over %d exchanges (%.4f/op), want 0",
			delta, measured, perOp)
	}
}

// BenchmarkSCPingPong measures one full SC/writer protocol exchange: pooled
// envelope out (go signal), pooled envelope back (write complete), through
// the world's latency-stamped delivery events.
func BenchmarkSCPingPong(b *testing.B) {
	b.ReportAllocs()
	k := simkernel.New()
	var pool msgPool
	launchPump(k, &pool, b.N)
	b.ResetTimer()
	k.Run()
	k.Shutdown()
}

// BenchmarkAdaptiveStep measures the adaptive output step in steady state:
// one world (64 writers, 16 targets, 1 MB per rank), b.N sequential steps.
// Construction is outside the loop, so ns/op is the cost of one full step —
// coordinator, SCs, writers, index gather, global index write — dominated by
// the SC/C/writer message traffic the pumps carry.
func BenchmarkAdaptiveStep(b *testing.B) {
	b.ReportAllocs()
	k := simkernel.New()
	fsCfg := machines.Jaguar(7).FS
	fsCfg.NumOSTs = 20
	fs := pfs.MustNew(k, fsCfg)
	w := mpisim.NewWorld(k, 64, mpisim.Options{})
	osts := make([]int, 16)
	for j := range osts {
		osts[j] = j
	}
	a, err := New(w, fs, Config{OSTs: osts})
	if err != nil {
		b.Fatal(err)
	}
	names := make([]string, b.N)
	for i := range names {
		names[i] = fmt.Sprintf("s%d", i)
	}
	w.Launch("app", func(r *mpisim.Rank) {
		data := iomethod.RankData{Vars: []iomethod.VarSpec{
			{Name: "rho", Bytes: 1 << 20, Min: -1, Max: 1},
		}}
		for i := 0; i < b.N; i++ {
			if _, err := a.WriteStep(r, names[i], data); err != nil {
				b.Error(err)
				return
			}
		}
	})
	b.ResetTimer()
	k.Run()
	k.Shutdown()
}
