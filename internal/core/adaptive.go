// Package core implements the paper's primary contribution: the adaptive IO
// method (Section III, Algorithms 1–3).
//
// Writers are grouped contiguously by rank, one group per storage target.
// The first writer of each group additionally acts as the group's
// sub-coordinator (SC), owning one file placed on one OST and scheduling its
// writers onto that file one at a time. Rank 0 additionally acts as the
// coordinator (C) for the whole output. Writers and the coordinator talk
// only to sub-coordinators, never to each other, which bounds the message
// load on any single process.
//
// The adaptive mechanism: as sub-coordinators finish, their files (and thus
// their storage targets) become idle; the coordinator shifts queued writers
// from still-writing (slow) groups onto those idle (fast) targets, appending
// at the coordinator-tracked end offset, with at most one write active per
// file at any time. Work therefore drains from the slow areas of the file
// system into the fast ones — directly attacking the imbalance factor
// measured in Section II.
//
// Index handling follows the paper: each writer builds its local index
// entries from its assigned offset and ships them (separately from, and
// after, its data) to the *target* file's sub-coordinator; each SC sorts and
// merges its entries and writes a per-file local index; the coordinator
// gathers the local indices into a global index. (The paper notes the global
// indexing phase was the one unfinished piece, with a characteristics-based
// search as the interim; this implementation provides both — see
// bp.GlobalIndex.FindByValue.)
package core

import (
	"fmt"
	"time"

	"repro/internal/bp"
	"repro/internal/iomethod"
	"repro/internal/mpisim"
	"repro/internal/pfs"
	"repro/internal/simkernel"
)

// Message tags: each role listens on its own tag so the writer, SC, and C
// activities hosted by one rank never steal each other's messages.
const (
	tagToWriter = 1001
	tagToSC     = 1002
	tagToC      = 1003
)

// Wire messages (Algorithms 1–3).
type (
	// msgWriteGo is the "(target, offset)" signal a writer waits for.
	msgWriteGo struct {
		TargetGroup int
		Offset      int64
	}
	// msgWriteComplete is Algorithm 1's WRITE COMPLETE.
	msgWriteComplete struct {
		Writer      int
		SourceGroup int
		TargetGroup int
		Bytes       int64
	}
	// msgIndexBody announces that a writer's index records are on the wire
	// to the target SC. The records themselves are derivable — the SC holds
	// every rank's RankData in st.dataOf and reconstructs them from
	// (Writer, Offset) on receipt, building its merged index in place
	// instead of copying a per-writer slice out of each message.
	msgIndexBody struct {
		Writer int
		Offset int64
	}
	// msgAdaptiveStart is C's ADAPTIVE WRITE START request to an SC.
	msgAdaptiveStart struct {
		TargetGroup int
		Offset      int64
	}
	// msgWritersBusy is the SC's refusal: all its writers are scheduled.
	msgWritersBusy struct {
		Group       int
		TargetGroup int // echoed so C can free the reserved target
	}
	// msgSCComplete is the SC's completion report (with its file's end).
	msgSCComplete struct {
		Group       int
		FinalOffset int64
	}
	// msgAdaptiveDone is the triggering SC's forward of an adaptive write's
	// completion to C.
	msgAdaptiveDone struct {
		SourceGroup int
		TargetGroup int
		Bytes       int64
	}
	// msgWriteFailed is a writer's report that its assigned write was
	// abandoned with pfs.ErrTargetDown: the target was Dead past the
	// client timeout. The triggering SC requeues the writer.
	msgWriteFailed struct {
		Writer      int
		SourceGroup int
		TargetGroup int
	}
	// msgAdaptiveFailed is the SC's forward of a failed adaptive write to
	// C: the redirect target is dead, its request slot is released and the
	// target blacklisted; the writer is already requeued at the SC.
	msgAdaptiveFailed struct {
		SourceGroup int
		TargetGroup int
	}
	// msgRetryOwn is the SC's self-addressed backoff probe: clear the
	// own-target-dead latch and try feeding the own file again. This is how
	// the SC distinguishes "slow" from "dead" — a slow target completes its
	// writes eventually, a dead one fails them, and the probe retries until
	// the target has revived.
	msgRetryOwn struct{}
	// msgOverallComplete is C's OVERALL WRITE COMPLETE broadcast.
	msgOverallComplete struct{}
	// msgLocalIndex ships an SC's finished local index to C.
	msgLocalIndex struct {
		Group int
		Index bp.LocalIndex
	}
)

// Config tunes the adaptive method.
type Config struct {
	// OSTs are the storage targets to use, one writer group per target
	// (the paper's evaluations use 512 of Jaguar's OSTs, successfully
	// tested with all 672). Empty means all targets of the file system.
	OSTs []int

	// WritersPerTarget generalises the "one simultaneous writer per storage
	// location" invariant (the paper mentions 2–3 as an unevaluated
	// generalisation). Default 1, the paper's configuration.
	WritersPerTarget int

	// StaggerOpens spaces the sub-coordinators' file creates by this delay
	// times the group index, the stagger technique for managing metadata-
	// server load (from the authors' earlier Cray User's Group work).
	// Zero disables staggering.
	StaggerOpens time.Duration

	// WriteGlobalIndex controls whether the coordinator writes the merged
	// global index file at the end of the step (default true via New).
	WriteGlobalIndex bool

	// DisableAdaptation turns the coordinator's work-shifting off while
	// keeping everything else (grouping, serialisation, indexing) intact —
	// a pure ablation of the adaptive mechanism itself.
	DisableAdaptation bool

	// HistoryAware enables the paper's future-work extension ("more
	// complex and/or state-rich methods for system adaptation, including
	// those that take into account past usage data"): instead of serving
	// idle targets in scan order, the coordinator dispatches adaptive
	// writes to the idle target with the highest observed bandwidth
	// (bytes written / completion time), so redirected work prefers the
	// fastest areas of the file system.
	HistoryAware bool
}

// Adaptive is the adaptive IO method bound to a world and file system.
type Adaptive struct {
	w   *mpisim.World
	fs  *pfs.FileSystem
	cfg Config

	steps     map[string]*stepState
	stepCount int
}

// New builds an Adaptive method. The zero Config selects all storage
// targets, one writer per target, no stagger, and global-index writing.
func New(w *mpisim.World, fs *pfs.FileSystem, cfg Config) (*Adaptive, error) {
	if len(cfg.OSTs) == 0 {
		cfg.OSTs = make([]int, len(fs.OSTs))
		for i := range cfg.OSTs {
			cfg.OSTs[i] = i
		}
	}
	for _, o := range cfg.OSTs {
		if o < 0 || o >= len(fs.OSTs) {
			return nil, fmt.Errorf("core: OST %d out of range", o)
		}
	}
	if cfg.WritersPerTarget == 0 {
		cfg.WritersPerTarget = 1
	}
	if cfg.WritersPerTarget < 0 {
		return nil, fmt.Errorf("core: negative WritersPerTarget")
	}
	cfg.WriteGlobalIndex = true
	return &Adaptive{w: w, fs: fs, cfg: cfg, steps: make(map[string]*stepState)}, nil
}

// NewNoGlobalIndex is New with the global indexing phase disabled (the
// paper's deployed configuration, which used characteristics-based search
// of the per-file indices instead).
func NewNoGlobalIndex(w *mpisim.World, fs *pfs.FileSystem, cfg Config) (*Adaptive, error) {
	a, err := New(w, fs, cfg)
	if err != nil {
		return nil, err
	}
	a.cfg.WriteGlobalIndex = false
	return a, nil
}

// Name implements iomethod.Method.
func (a *Adaptive) Name() string { return "ADAPTIVE" }

// stepState is the shared bookkeeping of one collective output step.
type stepState struct {
	name      string
	seq       int
	res       *iomethod.StepResult
	groups    [][]int // writer ranks per group
	groupOf   []int   // rank -> group
	files     []*pfs.File
	fileNames []string
	dataOf    []iomethod.RankData
	machines  []stepCont // per rank, one backing array for the whole step

	arrived   int
	setupDone *simkernel.WaitGroup
	start     *simkernel.Signal
	t0        simkernel.Time
	t0Set     bool
	returned  int
}

// planGroups splits W ranks into contiguous groups, one per storage target,
// shrinking the group count when there are fewer writers than targets.
func planGroups(W, targets int) [][]int {
	if targets > W {
		targets = W
	}
	gsize := (W + targets - 1) / targets
	numGroups := (W + gsize - 1) / gsize
	groups := make([][]int, 0, numGroups)
	for g := 0; g < numGroups; g++ {
		lo := g * gsize
		hi := lo + gsize
		if hi > W {
			hi = W
		}
		members := make([]int, 0, hi-lo)
		for r := lo; r < hi; r++ {
			members = append(members, r)
		}
		groups = append(groups, members)
	}
	return groups
}

// getStep returns (creating on first arrival) the shared state for a step.
func (a *Adaptive) getStep(stepName string) *stepState {
	st, ok := a.steps[stepName]
	if !ok {
		W := a.w.Size()
		groups := planGroups(W, len(a.cfg.OSTs))
		st = &stepState{
			name:      stepName,
			seq:       a.stepCount,
			groups:    groups,
			groupOf:   make([]int, W),
			files:     make([]*pfs.File, len(groups)),
			fileNames: make([]string, len(groups)),
			dataOf:    make([]iomethod.RankData, W),
			machines:  make([]stepCont, W),
			setupDone: simkernel.NewWaitGroup(a.w.Kernel()),
			start:     simkernel.NewSignal(a.w.Kernel()),
			res: &iomethod.StepResult{
				WriterTimes: make([]float64, W),
				Files:       len(groups),
			},
		}
		a.stepCount++
		for g, members := range groups {
			for _, r := range members {
				st.groupOf[r] = g
			}
			st.fileNames[g] = fmt.Sprintf("%s.g%04d.bp", stepName, g)
		}
		st.setupDone.Add(W)
		a.steps[stepName] = st
	}
	return st
}

// WriteStep implements iomethod.Method. Every rank must call it with the
// same stepName; it returns once this rank's writer role (and any SC/C
// roles it hosts) have finished the step.
func (a *Adaptive) WriteStep(r *mpisim.Rank, stepName string, data iomethod.RankData) (*iomethod.StepResult, error) {
	st := a.getStep(stepName)
	rank := r.Rank()
	g := st.groupOf[rank]
	isSC := st.groups[g][0] == rank
	isC := rank == 0
	p := r.Proc()

	st.dataOf[rank] = data

	// --- Untimed setup phase: SCs create the group files (optionally
	// staggered to spare the metadata server), everyone synchronises. ---
	if isSC {
		if a.cfg.StaggerOpens > 0 {
			p.Sleep(time.Duration(g) * a.cfg.StaggerOpens)
		}
		f, err := a.fs.Create(p, st.fileNames[g], pfs.Layout{OSTs: []int{a.cfg.OSTs[g%len(a.cfg.OSTs)]}})
		if err != nil {
			return nil, err
		}
		st.files[g] = f
	}
	st.setupDone.Done()
	st.setupDone.Wait(p)
	if !st.t0Set {
		st.t0 = p.Now()
		st.t0Set = true
		st.res.MDSOpenQueuePeak = a.fs.MDS.Stats.MaxQueue
	}
	st.start.Broadcast()

	// --- Timed phase. ---
	var scDone, cDone *simkernel.WaitGroup
	if isSC {
		scDone = simkernel.NewWaitGroup(a.w.Kernel())
		scDone.Add(1)
		a.spawnSC(r, st, g, scDone)
	}
	if isC {
		cDone = simkernel.NewWaitGroup(a.w.Kernel())
		cDone.Add(1)
		a.spawnC(r, st, cDone)
	}

	// Writer role (Algorithm 1).
	if err := a.writerRole(r, st, rank, g, data); err != nil {
		return nil, err
	}

	if isSC {
		scDone.Wait(p)
	}
	if isC {
		cDone.Wait(p)
	}

	// Track the operation's overall span.
	if el := (p.Now() - st.t0).Seconds(); el > st.res.Elapsed {
		st.res.Elapsed = el
	}

	st.returned++
	if st.returned == a.w.Size() {
		delete(a.steps, stepName)
	}
	return st.res, nil
}

// writerRole is Algorithm 1: wait for (target, offset); build the local
// index from the offset; write; report completion to the triggering SC (and
// the target SC if different); ship the index to the target SC. A write
// abandoned with ErrTargetDown is reported to the triggering SC instead
// (which requeues this writer for another assignment) and the writer goes
// back to waiting — it finishes only when a write lands.
func (a *Adaptive) writerRole(r *mpisim.Rank, st *stepState, rank, g int, data iomethod.RankData) error {
	p := r.Proc()
	triggeringSC := st.groups[g][0]
	for {
		m := r.RecvAs(p, mpisim.AnySource, tagToWriter)
		go_ := m.Data.(msgWriteGo)

		total := data.TotalBytes()
		file := st.files[go_.TargetGroup]
		if err := file.WriteAt(p, go_.Offset, total); err != nil {
			st.res.WriteFailures++
			r.Send(triggeringSC, tagToSC, msgWriteFailed{
				Writer: rank, SourceGroup: g, TargetGroup: go_.TargetGroup,
			})
			continue
		}

		st.res.WriterTimes[rank] = (p.Now() - st.t0).Seconds()
		st.res.TotalBytes += float64(total)
		if go_.TargetGroup != g {
			st.res.AdaptiveWrites++
		}

		targetSC := st.groups[go_.TargetGroup][0]
		done := msgWriteComplete{Writer: rank, SourceGroup: g, TargetGroup: go_.TargetGroup, Bytes: total}
		r.Send(triggeringSC, tagToSC, done)
		if targetSC != triggeringSC {
			r.Send(targetSC, tagToSC, done)
		}
		// The index travels separately and after the data, so its transfer
		// overlaps the next writer's data (Section III-B.1).
		r.Send(targetSC, tagToSC, msgIndexBody{Writer: rank, Offset: go_.Offset})
		return nil
	}
}

// spawnSC launches the sub-coordinator loop (Algorithm 2) as a helper
// process on the SC rank.
func (a *Adaptive) spawnSC(r *mpisim.Rank, st *stepState, g int, done *simkernel.WaitGroup) {
	members := st.groups[g]
	coordRank := 0
	a.w.Kernel().Spawn(fmt.Sprintf("SC[g%d]", g), func(p *simkernel.Proc) {
		defer done.Done()
		st.start.Wait(p)

		waiting := append([]int(nil), members...) // writers not yet signalled
		myOffset := int64(0)
		activeOnMyFile := 0
		completedOwn := 0
		missingIndices := 0
		scCompleteSent := false
		loopDone := false
		// ownDead latches when a write to our own file fails with
		// ErrTargetDown: stop feeding the own file and probe again after a
		// backoff (the timeout distinguishes dead from merely slow — slow
		// writes complete, dead ones fail). Waiting writers remain available
		// for adaptive redirection to healthy targets meanwhile.
		ownDead := false
		// Pre-size the index accumulation for the typical case — every
		// member writes to its own group's file (st.dataOf is complete once
		// start has broadcast). Adaptive redirection shifts writers between
		// files, so this is a capacity hint, not a bound; append growth
		// covers the imbalance.
		nE, nD := 0, 0
		for _, w := range members {
			nE += len(st.dataOf[w].Vars)
			for _, v := range st.dataOf[w].Vars {
				nD += len(v.Dims)
			}
		}
		indexEntries := make([]bp.VarEntry, 0, nE)
		indexDims := make([]uint64, 0, nD)

		signalNext := func() {
			if ownDead {
				return
			}
			for activeOnMyFile < a.cfg.WritersPerTarget && len(waiting) > 0 {
				wtr := waiting[0]
				waiting = waiting[1:]
				r.SendFrom(r.Rank(), wtr, tagToWriter, msgWriteGo{TargetGroup: g, Offset: myOffset})
				myOffset += st.dataOf[wtr].TotalBytes()
				activeOnMyFile++
			}
		}

		for !loopDone || missingIndices > 0 {
			// Algorithm 2 line 2: keep our own target fed.
			if !loopDone {
				signalNext()
			}
			m := r.RecvAs(p, mpisim.AnySource, tagToSC)
			switch msg := m.Data.(type) {
			case msgWriteComplete:
				if msg.SourceGroup == g && msg.TargetGroup != g {
					// One of mine completed an adaptive write elsewhere:
					// forward to C (Algorithm 2 line 6).
					r.SendFrom(r.Rank(), coordRank, tagToC, msgAdaptiveDone{
						SourceGroup: g, TargetGroup: msg.TargetGroup, Bytes: msg.Bytes,
					})
					completedOwn++
				}
				if msg.TargetGroup == g {
					// A write to my file finished: slot free, and an index
					// body is now owed to me (lines 8–11).
					if msg.SourceGroup == g {
						activeOnMyFile--
						completedOwn++
					}
					missingIndices++
				}
				if completedOwn == len(members) && !scCompleteSent {
					scCompleteSent = true
					r.SendFrom(r.Rank(), coordRank, tagToC, msgSCComplete{Group: g, FinalOffset: myOffset})
				}
			case msgIndexBody:
				indexEntries, indexDims = iomethod.AppendEntries(
					indexEntries, indexDims, msg.Writer, msg.Offset, st.dataOf[msg.Writer])
				missingIndices--
			case msgWriteFailed:
				// The writer's assigned target died past its timeout:
				// requeue the writer for another assignment.
				waiting = append(waiting, msg.Writer)
				if msg.TargetGroup == g {
					// Our own target. Free the slot, latch ownDead, and
					// schedule a retry probe one timeout from now.
					activeOnMyFile--
					if !ownDead {
						ownDead = true
						a.w.Kernel().AfterSeconds(a.fs.Cfg.DeadTimeout, func() {
							r.SendFrom(r.Rank(), r.Rank(), tagToSC, msgRetryOwn{})
						})
					}
				} else {
					// A failed adaptive redirect: release C's request slot
					// and let it blacklist the target (Algorithm 3 keeps the
					// offset unchanged — nothing landed).
					r.SendFrom(r.Rank(), coordRank, tagToC, msgAdaptiveFailed{
						SourceGroup: g, TargetGroup: msg.TargetGroup,
					})
				}
			case msgRetryOwn:
				ownDead = false
			case msgAdaptiveStart:
				if len(waiting) == 0 {
					r.SendFrom(r.Rank(), coordRank, tagToC, msgWritersBusy{Group: g, TargetGroup: msg.TargetGroup})
				} else {
					wtr := waiting[0]
					waiting = waiting[1:]
					r.SendFrom(r.Rank(), wtr, tagToWriter, msgWriteGo{
						TargetGroup: msg.TargetGroup, Offset: msg.Offset,
					})
				}
			case msgOverallComplete:
				loopDone = true
			default:
				panic(fmt.Sprintf("core: SC[g%d] unexpected message %T", g, m.Data))
			}
		}

		// Algorithm 2 epilogue: sort and merge the index pieces, write the
		// local index, send it to C.
		li := bp.LocalIndex{File: st.fileNames[g], Entries: indexEntries}
		li.Sort()
		encLen, err := li.EncodedLen()
		if err != nil {
			panic(err)
		}
		file := st.files[g]
		if _, aerr := file.Append(p, int64(encLen)); aerr != nil {
			// The on-disk footer is lost with its target; the in-memory
			// index still travels to C, so the data stays findable.
			st.res.WriteFailures++
			file.Close(p)
		} else {
			st.res.IndexBytes += float64(encLen)
			// Explicit flush before close (the paper's measurement protocol).
			file.Flush(p)
			file.Close(p)
		}
		r.SendFrom(r.Rank(), coordRank, tagToC, msgLocalIndex{Group: g, Index: li})
	})
}

// groupPhase is C's view of an SC's state (Algorithm 3).
type groupPhase int

const (
	phaseWriting groupPhase = iota
	phaseBusy
	phaseComplete
)

// spawnC launches the coordinator loop (Algorithm 3) as a helper process on
// rank 0.
func (a *Adaptive) spawnC(r *mpisim.Rank, st *stepState, done *simkernel.WaitGroup) {
	numGroups := len(st.groups)
	a.w.Kernel().Spawn("C", func(p *simkernel.Proc) {
		defer done.Done()
		st.start.Wait(p)

		phase := make([]groupPhase, numGroups)
		offsets := make([]int64, numGroups)   // file-end offsets, valid once complete
		targetFree := make([]int, numGroups)  // free write slots on completed targets
		deadTarget := make([]bool, numGroups) // targets blacklisted by a failed adaptive write
		speed := make([]float64, numGroups)   // observed bandwidth per target (HistoryAware)
		cursor := 0                           // rotation over SCs, to spread requests
		outstanding := 0                      // in-flight adaptive requests
		completes := 0
		tStart := p.Now()

		// nextWritingSC returns the next group in writing phase, rotating,
		// or -1.
		nextWritingSC := func() int {
			for i := 0; i < numGroups; i++ {
				gg := (cursor + i) % numGroups
				if phase[gg] == phaseWriting {
					cursor = (gg + 1) % numGroups
					return gg
				}
			}
			return -1
		}
		// idleTargets returns the dispatchable targets, in scan order or —
		// with HistoryAware — fastest-first by observed bandwidth.
		idleTargets := func() []int {
			var ts []int
			for t := 0; t < numGroups; t++ {
				if phase[t] == phaseComplete && targetFree[t] > 0 && !deadTarget[t] {
					ts = append(ts, t)
				}
			}
			if a.cfg.HistoryAware {
				sortByDesc(ts, func(t int) float64 { return speed[t] })
			}
			return ts
		}
		// dispatch pairs idle completed targets with writing SCs
		// ("adaptive writing requests are spread evenly among the sub
		// coordinators").
		dispatch := func() {
			if a.cfg.DisableAdaptation {
				return
			}
			for _, t := range idleTargets() {
				for targetFree[t] > 0 {
					sc := nextWritingSC()
					if sc < 0 {
						return
					}
					targetFree[t]--
					outstanding++
					r.SendFrom(0, st.groups[sc][0], tagToSC, msgAdaptiveStart{
						TargetGroup: t, Offset: offsets[t],
					})
					// The offset advances only at completion; one request
					// in flight per target keeps offsets consistent.
				}
			}
		}

		for completes < numGroups || outstanding > 0 {
			m := r.RecvAs(p, mpisim.AnySource, tagToC)
			switch msg := m.Data.(type) {
			case msgSCComplete:
				phase[msg.Group] = phaseComplete
				offsets[msg.Group] = msg.FinalOffset
				if el := (p.Now() - tStart).Seconds(); el > 0 {
					speed[msg.Group] = float64(msg.FinalOffset) / el
				}
				// Adaptive writes to a completed file stay serialised (one
				// request in flight per target) because the next append
				// offset is only learned from the completion report. The
				// WritersPerTarget generalisation applies to a group's own
				// file, as in the paper.
				targetFree[msg.Group] = 1
				completes++
				dispatch()
			case msgAdaptiveDone:
				offsets[msg.TargetGroup] += msg.Bytes
				targetFree[msg.TargetGroup]++
				outstanding--
				dispatch()
			case msgAdaptiveFailed:
				// The redirect target is dead: blacklist it (its slot is not
				// returned — nothing can land there) and redispatch the
				// requeued writer elsewhere. A dead target stays blacklisted
				// for the rest of the step; the conservative choice costs at
				// most the work it could have absorbed after reviving.
				deadTarget[msg.TargetGroup] = true
				outstanding--
				dispatch()
			case msgWritersBusy:
				// Guard against the race where the SC completed (and we
				// already marked it so) between our request and its refusal:
				// never downgrade a completed group.
				if phase[msg.Group] == phaseWriting {
					phase[msg.Group] = phaseBusy
				}
				targetFree[msg.TargetGroup]++
				outstanding--
				dispatch()
			default:
				panic(fmt.Sprintf("core: C unexpected message %T", m.Data))
			}
		}

		// Release the sub-coordinators to write their local indices.
		for g := 0; g < numGroups; g++ {
			r.SendFrom(0, st.groups[g][0], tagToSC, msgOverallComplete{})
		}

		// Gather index pieces, merge into the global index, write it.
		global := &bp.GlobalIndex{Step: int64(st.seq)}
		for i := 0; i < numGroups; i++ {
			m := r.RecvAs(p, mpisim.AnySource, tagToC)
			li, ok := m.Data.(msgLocalIndex)
			if !ok {
				panic(fmt.Sprintf("core: C expected local index, got %T", m.Data))
			}
			global.Locals = append(global.Locals, li.Index)
		}
		global.Sort()
		st.res.Global = global
		if a.cfg.WriteGlobalIndex {
			encLen, err := global.EncodedLen()
			if err != nil {
				panic(err)
			}
			gf, err := a.fs.Create(p, st.name+".gidx.bp", pfs.Layout{StripeCount: 1})
			if err != nil {
				panic(err)
			}
			if werr := gf.WriteAt(p, 0, int64(encLen)); werr != nil {
				// Global index lost; the per-file indices (and res.Global)
				// survive, matching the paper's interim deployment.
				st.res.WriteFailures++
			} else {
				st.res.IndexBytes += float64(encLen)
				gf.Flush(p)
			}
			gf.Close(p)
		}
	})
}

// Groups exposes the group plan for a hypothetical world size (testing and
// diagnostics).
func (a *Adaptive) Groups(worldSize int) [][]int {
	return planGroups(worldSize, len(a.cfg.OSTs))
}

// sortByDesc sorts xs in place by descending key (stable insertion sort —
// target lists are short).
func sortByDesc(xs []int, key func(int) float64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && key(xs[j]) > key(xs[j-1]); j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
