package core

import (
	"fmt"
	"time"

	"repro/internal/bp"
	"repro/internal/iomethod"
	"repro/internal/mpisim"
	"repro/internal/pfs"
	"repro/internal/simkernel"
)

// Message tags: each role listens on its own tag so the writer, SC, and C
// activities hosted by one rank never steal each other's messages.
const (
	tagToWriter = 1001
	tagToSC     = 1002
	tagToC      = 1003
)

// scKind discriminates the wire messages of Algorithms 1–3. The whole
// protocol travels in one pooled envelope type (scMsg) rather than one
// struct type per message: a *scMsg is pointer-shaped, so storing it in
// Message.Data costs no interface-boxing allocation, and recycling the
// envelopes through msgPool makes steady-state send/receive 0 allocs/op.
type scKind uint8

const (
	// kindWriteGo is the "(target, offset)" signal a writer waits for.
	// Fields: target, offset.
	kindWriteGo scKind = iota
	// kindWriteComplete is Algorithm 1's WRITE COMPLETE.
	// Fields: writer, source, target, bytes.
	kindWriteComplete
	// kindIndexBody announces that a writer's index records are on the wire
	// to the target SC. The records themselves are derivable — the SC holds
	// every rank's RankData in st.dataOf and reconstructs them from
	// (writer, offset) on receipt, building its merged index in place
	// instead of copying a per-writer slice out of each message.
	// Fields: writer, offset.
	kindIndexBody
	// kindAdaptiveStart is C's ADAPTIVE WRITE START request to an SC.
	// Fields: target, offset.
	kindAdaptiveStart
	// kindWritersBusy is the SC's refusal: all its writers are scheduled.
	// Fields: group, target (echoed so C can free the reserved target).
	kindWritersBusy
	// kindSCComplete is the SC's completion report (with its file's end).
	// Fields: group, offset (the final file-end offset).
	kindSCComplete
	// kindAdaptiveDone is the triggering SC's forward of an adaptive
	// write's completion to C. Fields: source, target, bytes.
	kindAdaptiveDone
	// kindWriteFailed is a writer's report that its assigned write was
	// abandoned with pfs.ErrTargetDown: the target was Dead past the
	// client timeout. The triggering SC requeues the writer.
	// Fields: writer, source, target.
	kindWriteFailed
	// kindAdaptiveFailed is the SC's forward of a failed adaptive write to
	// C: the redirect target is dead, its request slot is released and the
	// target blacklisted; the writer is already requeued at the SC.
	// Fields: source, target.
	kindAdaptiveFailed
	// kindRetryOwn is the SC's self-addressed backoff probe: clear the
	// own-target-dead latch and try feeding the own file again. This is how
	// the SC distinguishes "slow" from "dead" — a slow target completes its
	// writes eventually, a dead one fails them, and the probe retries until
	// the target has revived. No fields.
	kindRetryOwn
	// kindOverallComplete is C's OVERALL WRITE COMPLETE broadcast. No
	// fields.
	kindOverallComplete
	// kindLocalIndex ships an SC's finished local index to C.
	// Fields: group, index.
	kindLocalIndex
)

// scMsg is the pooled wire envelope for the adaptive protocol. The fields
// form a union across kinds (see the scKind constants for which are live);
// every envelope is owned by exactly one in-flight message — the receiver
// returns it to the pool after reading it, so a message that fans out to
// two recipients is sent as two envelopes.
type scMsg struct {
	kind   scKind
	writer int
	source int
	target int
	group  int
	offset int64
	bytes  int64
	index  bp.LocalIndex
}

// msgPool recycles scMsg envelopes within one Adaptive instance. The
// kernel's handoff discipline makes it single-threaded; New registers a
// Kernel.OnReset hook so the free list is swept when the world is reset,
// dropping any index slices the envelopes may still reference.
type msgPool struct {
	free []*scMsg
}

// get takes an envelope from the free list (allocating only when empty) and
// stamps its kind. All other fields are zero: put cleared them.
//
//repro:hotpath
func (pl *msgPool) get(kind scKind) *scMsg {
	if n := len(pl.free); n > 0 {
		m := pl.free[n-1]
		pl.free[n-1] = nil
		pl.free = pl.free[:n-1]
		m.kind = kind
		return m
	}
	return &scMsg{kind: kind}
}

// put returns a consumed envelope to the free list, zeroing it so stale
// payloads (in particular index slices) don't outlive their message.
//
//repro:hotpath
func (pl *msgPool) put(m *scMsg) {
	*m = scMsg{}
	pl.free = append(pl.free, m)
}

// sweep empties the free list. Registered with Kernel.OnReset by New.
func (pl *msgPool) sweep() {
	for i := range pl.free {
		pl.free[i] = nil
	}
	pl.free = pl.free[:0]
}

// Config tunes the adaptive method.
type Config struct {
	// OSTs are the storage targets to use, one writer group per target
	// (the paper's evaluations use 512 of Jaguar's OSTs, successfully
	// tested with all 672). Empty means all targets of the file system.
	OSTs []int

	// WritersPerTarget generalises the "one simultaneous writer per storage
	// location" invariant (the paper mentions 2–3 as an unevaluated
	// generalisation). Default 1, the paper's configuration.
	WritersPerTarget int

	// StaggerOpens spaces the sub-coordinators' file creates by this delay
	// times the group index, the stagger technique for managing metadata-
	// server load (from the authors' earlier Cray User's Group work).
	// Zero disables staggering.
	StaggerOpens time.Duration

	// WriteGlobalIndex controls whether the coordinator writes the merged
	// global index file at the end of the step (default true via New).
	WriteGlobalIndex bool

	// DisableAdaptation turns the coordinator's work-shifting off while
	// keeping everything else (grouping, serialisation, indexing) intact —
	// a pure ablation of the adaptive mechanism itself.
	DisableAdaptation bool

	// HistoryAware enables the paper's future-work extension ("more
	// complex and/or state-rich methods for system adaptation, including
	// those that take into account past usage data"): instead of serving
	// idle targets in scan order, the coordinator dispatches adaptive
	// writes to the idle target with the highest observed bandwidth
	// (bytes written / completion time), so redirected work prefers the
	// fastest areas of the file system.
	HistoryAware bool
}

// Adaptive is the adaptive IO method bound to a world and file system.
type Adaptive struct {
	w   *mpisim.World
	fs  *pfs.FileSystem
	cfg Config

	steps     map[string]*stepState
	stepCount int
	pool      msgPool
}

// New builds an Adaptive method. The zero Config selects all storage
// targets, one writer per target, no stagger, and global-index writing.
func New(w *mpisim.World, fs *pfs.FileSystem, cfg Config) (*Adaptive, error) {
	if len(cfg.OSTs) == 0 {
		cfg.OSTs = make([]int, len(fs.OSTs))
		for i := range cfg.OSTs {
			cfg.OSTs[i] = i
		}
	}
	for _, o := range cfg.OSTs {
		if o < 0 || o >= len(fs.OSTs) {
			return nil, fmt.Errorf("core: OST %d out of range", o)
		}
	}
	if cfg.WritersPerTarget == 0 {
		cfg.WritersPerTarget = 1
	}
	if cfg.WritersPerTarget < 0 {
		return nil, fmt.Errorf("core: negative WritersPerTarget")
	}
	cfg.WriteGlobalIndex = true
	a := &Adaptive{w: w, fs: fs, cfg: cfg, steps: make(map[string]*stepState)}
	// Sweep the envelope free list when the kernel (and so the world) is
	// reset between replicas; a reused world's next Adaptive re-registers.
	w.Kernel().OnReset(a.pool.sweep)
	return a, nil
}

// NewNoGlobalIndex is New with the global indexing phase disabled (the
// paper's deployed configuration, which used characteristics-based search
// of the per-file indices instead).
func NewNoGlobalIndex(w *mpisim.World, fs *pfs.FileSystem, cfg Config) (*Adaptive, error) {
	a, err := New(w, fs, cfg)
	if err != nil {
		return nil, err
	}
	a.cfg.WriteGlobalIndex = false
	return a, nil
}

// Name implements iomethod.Method.
func (a *Adaptive) Name() string { return "ADAPTIVE" }

// stepState is the shared bookkeeping of one collective output step.
type stepState struct {
	name      string
	seq       int
	res       *iomethod.StepResult
	groups    [][]int // writer ranks per group
	groupOf   []int   // rank -> group
	files     []*pfs.File
	fileNames []string
	dataOf    []iomethod.RankData
	machines  []stepCont // per rank, one backing array for the whole step
	scs       []scCont   // per group, the sub-coordinator pump machines
	cc        cCont      // the coordinator pump machine
	gidxName  string     // precomputed global-index file name

	arrived   int
	setupDone *simkernel.WaitGroup
	start     *simkernel.Signal
	t0        simkernel.Time
	t0Set     bool
	returned  int
}

// planGroups splits W ranks into contiguous groups, one per storage target,
// shrinking the group count when there are fewer writers than targets.
func planGroups(W, targets int) [][]int {
	if targets > W {
		targets = W
	}
	gsize := (W + targets - 1) / targets
	numGroups := (W + gsize - 1) / gsize
	groups := make([][]int, 0, numGroups)
	for g := 0; g < numGroups; g++ {
		lo := g * gsize
		hi := lo + gsize
		if hi > W {
			hi = W
		}
		members := make([]int, 0, hi-lo)
		for r := lo; r < hi; r++ {
			members = append(members, r)
		}
		groups = append(groups, members)
	}
	return groups
}

// getStep returns (creating on first arrival) the shared state for a step.
func (a *Adaptive) getStep(stepName string) *stepState {
	st, ok := a.steps[stepName]
	if !ok {
		W := a.w.Size()
		groups := planGroups(W, len(a.cfg.OSTs))
		st = &stepState{
			name:      stepName,
			seq:       a.stepCount,
			groups:    groups,
			groupOf:   make([]int, W),
			files:     make([]*pfs.File, len(groups)),
			fileNames: make([]string, len(groups)),
			dataOf:    make([]iomethod.RankData, W),
			machines:  make([]stepCont, W),
			scs:       make([]scCont, len(groups)),
			gidxName:  stepName + ".gidx.bp",
			setupDone: simkernel.NewWaitGroup(a.w.Kernel()),
			start:     simkernel.NewSignal(a.w.Kernel()),
			res: &iomethod.StepResult{
				WriterTimes: make([]float64, W),
				Files:       len(groups),
			},
		}
		a.stepCount++
		for g, members := range groups {
			for _, r := range members {
				st.groupOf[r] = g
			}
			st.fileNames[g] = fmt.Sprintf("%s.g%04d.bp", stepName, g)
		}
		st.setupDone.Add(W)
		a.steps[stepName] = st
	}
	return st
}

// WriteStep implements iomethod.Method. Every rank must call it with the
// same stepName; it returns once this rank's writer role (and any SC/C
// roles it hosts) have finished the step.
func (a *Adaptive) WriteStep(r *mpisim.Rank, stepName string, data iomethod.RankData) (*iomethod.StepResult, error) {
	st := a.getStep(stepName)
	rank := r.Rank()
	g := st.groupOf[rank]
	isSC := st.groups[g][0] == rank
	isC := rank == 0
	p := r.Proc()

	st.dataOf[rank] = data

	// --- Untimed setup phase: SCs create the group files (optionally
	// staggered to spare the metadata server), everyone synchronises. ---
	if isSC {
		if a.cfg.StaggerOpens > 0 {
			p.Sleep(time.Duration(g) * a.cfg.StaggerOpens)
		}
		f, err := a.fs.Create(p, st.fileNames[g], pfs.Layout{OSTs: []int{a.cfg.OSTs[g%len(a.cfg.OSTs)]}})
		if err != nil {
			return nil, err
		}
		st.files[g] = f
	}
	st.setupDone.Done()
	st.setupDone.Wait(p)
	if !st.t0Set {
		st.t0 = p.Now()
		st.t0Set = true
		st.res.MDSOpenQueuePeak = a.fs.MDS.Stats.MaxQueue
	}
	st.start.Broadcast()

	// --- Timed phase. ---
	var scDone, cDone *simkernel.WaitGroup
	if isSC {
		scDone = simkernel.NewWaitGroup(a.w.Kernel())
		scDone.Add(1)
		a.spawnSC(r, st, g, scDone)
	}
	if isC {
		cDone = simkernel.NewWaitGroup(a.w.Kernel())
		cDone.Add(1)
		a.spawnC(r, st, cDone)
	}

	// Writer role (Algorithm 1).
	if err := a.writerRole(r, st, rank, g, data); err != nil {
		return nil, err
	}

	if isSC {
		scDone.Wait(p)
	}
	if isC {
		cDone.Wait(p)
	}

	// Track the operation's overall span.
	if el := (p.Now() - st.t0).Seconds(); el > st.res.Elapsed {
		st.res.Elapsed = el
	}

	st.returned++
	if st.returned == a.w.Size() {
		delete(a.steps, stepName)
	}
	return st.res, nil
}

// writerRole is Algorithm 1: wait for (target, offset); build the local
// index from the offset; write; report completion to the triggering SC (and
// the target SC if different); ship the index to the target SC. A write
// abandoned with ErrTargetDown is reported to the triggering SC instead
// (which requeues this writer for another assignment) and the writer goes
// back to waiting — it finishes only when a write lands.
func (a *Adaptive) writerRole(r *mpisim.Rank, st *stepState, rank, g int, data iomethod.RankData) error {
	p := r.Proc()
	triggeringSC := st.groups[g][0]
	for {
		m := r.RecvAs(p, mpisim.AnySource, tagToWriter)
		env := m.Data.(*scMsg)
		target, offset := env.target, env.offset
		a.pool.put(env)

		total := data.TotalBytes()
		file := st.files[target]
		if err := file.WriteAt(p, offset, total); err != nil {
			st.res.WriteFailures++
			fl := a.pool.get(kindWriteFailed)
			fl.writer, fl.source, fl.target = rank, g, target
			r.Send(triggeringSC, tagToSC, fl)
			continue
		}

		st.res.WriterTimes[rank] = (p.Now() - st.t0).Seconds()
		st.res.TotalBytes += float64(total)
		if target != g {
			st.res.AdaptiveWrites++
		}

		targetSC := st.groups[target][0]
		done := a.pool.get(kindWriteComplete)
		done.writer, done.source, done.target, done.bytes = rank, g, target, total
		r.Send(triggeringSC, tagToSC, done)
		if targetSC != triggeringSC {
			// Each in-flight message owns its envelope: the fan-out is two
			// envelopes, freed independently by their receivers.
			done2 := a.pool.get(kindWriteComplete)
			done2.writer, done2.source, done2.target, done2.bytes = rank, g, target, total
			r.Send(targetSC, tagToSC, done2)
		}
		// The index travels separately and after the data, so its transfer
		// overlaps the next writer's data (Section III-B.1).
		ib := a.pool.get(kindIndexBody)
		ib.writer, ib.offset = rank, offset
		r.Send(targetSC, tagToSC, ib)
		return nil
	}
}

// spawnSC launches the sub-coordinator loop (Algorithm 2) as a helper
// process on the SC rank. Both engines spawn it as a continuation state
// machine (scCont, pump.go): its receive loop is message-driven either way,
// so the pump form is the only one — REPRO_NO_CONT selects the engine for
// the rank bodies, not for the pumps, and the event streams stay identical
// because SpawnCont, RecvCont and the pfs cont ops schedule exactly the
// events their blocking counterparts do.
func (a *Adaptive) spawnSC(r *mpisim.Rank, st *stepState, g int, done *simkernel.WaitGroup) {
	s := &st.scs[g]
	s.arm(a, r, st, g, done)
	a.w.Kernel().SpawnCont(fmt.Sprintf("SC[g%d]", g), s)
}

// groupPhase is C's view of an SC's state (Algorithm 3).
type groupPhase int

const (
	phaseWriting groupPhase = iota
	phaseBusy
	phaseComplete
)

// spawnC launches the coordinator loop (Algorithm 3) as a helper process on
// rank 0 — like spawnSC, always as a continuation state machine (cCont,
// pump.go) regardless of which engine runs the rank bodies.
func (a *Adaptive) spawnC(r *mpisim.Rank, st *stepState, done *simkernel.WaitGroup) {
	s := &st.cc
	s.arm(a, r, st, done)
	a.w.Kernel().SpawnCont("C", s)
}

// Groups exposes the group plan for a hypothetical world size (testing and
// diagnostics).
func (a *Adaptive) Groups(worldSize int) [][]int {
	return planGroups(worldSize, len(a.cfg.OSTs))
}

// sortByDesc sorts xs in place by descending key[x] (stable insertion sort —
// target lists are short). Taking the key as a slice rather than a closure
// keeps the coordinator's dispatch path free of per-call closure allocation.
func sortByDesc(xs []int, key []float64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && key[xs[j]] > key[xs[j-1]]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
