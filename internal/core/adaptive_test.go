package core

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/iomethod"
	"repro/internal/machines"
	"repro/internal/mpisim"
	"repro/internal/pfs"
	"repro/internal/simkernel"
)

// harness runs one adaptive output step with uniform per-rank data and
// returns the result and file system for inspection.
func harness(t *testing.T, writers, targets int, bytesPerRank int64, tweak func(*pfs.FileSystem), cfg Config) (*iomethod.StepResult, *pfs.FileSystem) {
	t.Helper()
	k := simkernel.New()
	fsCfg := machines.Jaguar(7).FS
	fsCfg.NumOSTs = targets + 4 // room for the global index file
	fs := pfs.MustNew(k, fsCfg)
	if tweak != nil {
		tweak(fs)
	}
	w := mpisim.NewWorld(k, writers, mpisim.Options{})
	if len(cfg.OSTs) == 0 {
		cfg.OSTs = make([]int, targets)
		for i := range cfg.OSTs {
			cfg.OSTs[i] = i
		}
	}
	a, err := New(w, fs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var res *iomethod.StepResult
	var stepErr error
	wg := w.Launch("app", func(r *mpisim.Rank) {
		data := iomethod.RankData{Vars: []iomethod.VarSpec{
			{Name: "rho", Bytes: bytesPerRank / 2, Min: -1, Max: 1},
			{Name: "phi", Bytes: bytesPerRank - bytesPerRank/2, Min: 0, Max: 2},
		}}
		rr, err := a.WriteStep(r, "step0", data)
		if err != nil {
			stepErr = err
			return
		}
		res = rr
	})
	k.Run()
	if wg.Count() != 0 {
		t.Fatalf("%d ranks never finished (deadlock)", wg.Count())
	}
	k.Shutdown()
	if stepErr != nil {
		t.Fatal(stepErr)
	}
	return res, fs
}

func TestPlanGroupsProperties(t *testing.T) {
	f := func(w8, t8 uint8) bool {
		W := int(w8%200) + 1
		T := int(t8%64) + 1
		groups := planGroups(W, T)
		if len(groups) == 0 || len(groups) > T {
			return false
		}
		seen := make([]bool, W)
		prev := -1
		for _, g := range groups {
			if len(g) == 0 {
				return false // no empty groups
			}
			for _, r := range g {
				if r != prev+1 { // contiguous, ascending coverage
					return false
				}
				prev = r
				if r < 0 || r >= W || seen[r] {
					return false
				}
				seen[r] = true
			}
		}
		return prev == W-1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPlanGroupsBalance(t *testing.T) {
	groups := planGroups(100, 8)
	min, max := 1<<30, 0
	for _, g := range groups {
		if len(g) < min {
			min = len(g)
		}
		if len(g) > max {
			max = len(g)
		}
	}
	if max-min > 1+(100/8) { // gsize=13: sizes 13..9; allow modest spread
		t.Fatalf("groups unbalanced: min=%d max=%d", min, max)
	}
}

func TestBasicStepConservation(t *testing.T) {
	const W, T = 16, 4
	const bytesPerRank = 8 * int64(pfs.MB)
	res, fs := harness(t, W, T, bytesPerRank, nil, Config{})
	wantBytes := float64(W * bytesPerRank)
	if math.Abs(res.TotalBytes-wantBytes) > 1 {
		t.Fatalf("total bytes %v, want %v", res.TotalBytes, wantBytes)
	}
	// Every byte (payload + indices) must have been ingested by the FS.
	ing := fs.TotalBytesIngested()
	if math.Abs(ing-(wantBytes+res.IndexBytes)) > wantBytes*1e-6+16 {
		t.Fatalf("FS ingested %v, want payload %v + index %v", ing, wantBytes, res.IndexBytes)
	}
	if res.Files != T {
		t.Fatalf("files = %d, want %d", res.Files, T)
	}
	for r, wt := range res.WriterTimes {
		if wt <= 0 {
			t.Fatalf("writer %d time %v", r, wt)
		}
		if wt > res.Elapsed+1e-9 {
			t.Fatalf("writer %d time %v exceeds elapsed %v", r, wt, res.Elapsed)
		}
	}
}

func TestGlobalIndexCompleteAndNonOverlapping(t *testing.T) {
	const W, T = 24, 6
	const bytesPerRank = 4 * int64(pfs.MB)
	res, _ := harness(t, W, T, bytesPerRank, nil, Config{})
	g := res.Global
	if g == nil {
		t.Fatal("no global index")
	}
	if got := g.NumEntries(); got != W*2 {
		t.Fatalf("index entries = %d, want %d", got, W*2)
	}
	// Each rank's two variables must be present exactly once.
	for r := 0; r < W; r++ {
		for _, v := range []string{"rho", "phi"} {
			if _, ok := g.Lookup(v, int32(r)); !ok {
				t.Fatalf("missing index entry %s/rank%d", v, r)
			}
		}
	}
	// Within each file, [offset, offset+length) ranges must not overlap.
	for _, li := range g.Locals {
		type span struct{ lo, hi int64 }
		var spans []span
		for _, e := range li.Entries {
			spans = append(spans, span{e.Offset, e.Offset + e.Length})
		}
		for i := range spans {
			for j := i + 1; j < len(spans); j++ {
				if spans[i].lo < spans[j].hi && spans[j].lo < spans[i].hi {
					t.Fatalf("overlapping blocks in %s: %+v vs %+v", li.File, spans[i], spans[j])
				}
			}
		}
	}
}

func TestOneWriterPerTargetInvariant(t *testing.T) {
	const W, T = 32, 4
	cfg := Config{}
	res, fs := harness(t, W, T, 2*int64(pfs.MB), nil, cfg)
	_ = res
	// Data targets 0..T-1 must never have seen more than one concurrent
	// write stream (the method's central invariant); the +4 spare targets
	// host only the global index.
	for i := 0; i < T; i++ {
		if mc := fs.OST(i).Stats.MaxConcurrency; mc > 1 {
			t.Fatalf("OST %d saw %d concurrent writers; adaptive IO promises 1", i, mc)
		}
	}
}

func TestWritersPerTargetGeneralization(t *testing.T) {
	const W, T = 32, 4
	res, fs := harness(t, W, T, 2*int64(pfs.MB), nil, Config{WritersPerTarget: 2})
	if math.Abs(res.TotalBytes-float64(W*2*int64(pfs.MB))) > 1 {
		t.Fatalf("conservation broken with WritersPerTarget=2: %v", res.TotalBytes)
	}
	for i := 0; i < T; i++ {
		if mc := fs.OST(i).Stats.MaxConcurrency; mc > 2 {
			t.Fatalf("OST %d saw %d concurrent writers with limit 2", i, mc)
		}
	}
}

func TestAdaptiveShiftsWorkFromSlowTargets(t *testing.T) {
	const W, T = 32, 4
	slow := func(fs *pfs.FileSystem) {
		fs.OST(0).SetSlowFactor(0.15) // one crawling target
	}
	// 32 MB per rank so each group pushes 256 MB through the 96 MB OST
	// cache: the slow target's writers throttle to its degraded drain rate
	// and lag, which is what gives the coordinator work to shift.
	res, _ := harness(t, W, T, 32*int64(pfs.MB), slow, Config{})
	if res.AdaptiveWrites == 0 {
		t.Fatal("no adaptive writes despite a 6x-slow target")
	}
	// The slow group's writers must still all complete and be indexed.
	if got := res.Global.NumEntries(); got != W*2 {
		t.Fatalf("index entries = %d, want %d", got, W*2)
	}
}

func TestAdaptiveBeatsNoAdaptationUnderImbalance(t *testing.T) {
	run := func(adapt bool) float64 {
		k := simkernel.New()
		fsCfg := machines.Jaguar(7).FS
		fsCfg.NumOSTs = 8
		fs := pfs.MustNew(k, fsCfg)
		fs.OST(0).SetSlowFactor(0.12)
		fs.OST(1).SetSlowFactor(0.25)
		w := mpisim.NewWorld(k, 32, mpisim.Options{})
		cfg := Config{OSTs: []int{0, 1, 2, 3}}
		if !adapt {
			// The pure ablation: identical structure, coordinator
			// work-shifting off.
			cfg.DisableAdaptation = true
		}
		a, err := New(w, fs, cfg)
		if err != nil {
			t.Fatal(err)
		}
		var res *iomethod.StepResult
		w.Launch("app", func(r *mpisim.Rank) {
			// 32 MB per rank: each group's 256 MB overwhelms the 96 MB
			// target cache, so slow targets actually queue writers and
			// adaptation has work to shift.
			data := iomethod.RankData{Vars: []iomethod.VarSpec{{Name: "v", Bytes: 32 * int64(pfs.MB)}}}
			rr, err := a.WriteStep(r, "s", data)
			if err != nil {
				t.Error(err)
				return
			}
			res = rr
		})
		k.Run()
		k.Shutdown()
		return res.Elapsed
	}
	adaptive := run(true)
	pinned := run(false)
	if adaptive >= pinned {
		t.Fatalf("adaptation did not help under imbalance: adaptive=%.3fs pinned=%.3fs", adaptive, pinned)
	}
}

func TestFewerWritersThanTargets(t *testing.T) {
	res, _ := harness(t, 3, 8, int64(pfs.MB), nil, Config{})
	if res.Files != 3 {
		t.Fatalf("files = %d, want 3 (one per writer)", res.Files)
	}
	if res.Global.NumEntries() != 6 {
		t.Fatalf("entries = %d", res.Global.NumEntries())
	}
}

func TestSingleWriter(t *testing.T) {
	res, _ := harness(t, 1, 4, int64(pfs.MB), nil, Config{})
	if res.Files != 1 || res.Global.NumEntries() != 2 {
		t.Fatalf("single-writer result: files=%d entries=%d", res.Files, res.Global.NumEntries())
	}
}

func TestMultipleSequentialSteps(t *testing.T) {
	k := simkernel.New()
	fsCfg := machines.Jaguar(7).FS
	fsCfg.NumOSTs = 8
	fs := pfs.MustNew(k, fsCfg)
	w := mpisim.NewWorld(k, 8, mpisim.Options{})
	a, err := New(w, fs, Config{OSTs: []int{0, 1, 2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	var steps []*iomethod.StepResult
	w.Launch("app", func(r *mpisim.Rank) {
		for s := 0; s < 3; s++ {
			data := iomethod.RankData{Vars: []iomethod.VarSpec{{Name: "v", Bytes: int64(pfs.MB)}}}
			res, err := a.WriteStep(r, fmt.Sprintf("step%d", s), data)
			if err != nil {
				t.Error(err)
				return
			}
			if r.Rank() == 0 {
				steps = append(steps, res)
			}
			r.Barrier()
		}
	})
	k.Run()
	k.Shutdown()
	if len(steps) != 3 {
		t.Fatalf("completed %d steps", len(steps))
	}
	for i, res := range steps {
		if res.Global == nil || res.Global.Step != int64(i) {
			t.Fatalf("step %d index sequence wrong: %+v", i, res.Global)
		}
	}
}

func TestStaggerOpensReducesMDSQueue(t *testing.T) {
	mdsPeak := func(stagger time.Duration) int {
		k := simkernel.New()
		fsCfg := machines.Jaguar(7).FS
		fsCfg.NumOSTs = 40
		fsCfg.MDSCapacity = 1
		fs := pfs.MustNew(k, fsCfg)
		w := mpisim.NewWorld(k, 32, mpisim.Options{})
		a, err := New(w, fs, Config{
			OSTs:         seq(32),
			StaggerOpens: stagger,
		})
		if err != nil {
			t.Fatal(err)
		}
		var peak int
		w.Launch("app", func(r *mpisim.Rank) {
			data := iomethod.RankData{Vars: []iomethod.VarSpec{{Name: "v", Bytes: 1024}}}
			res, err := a.WriteStep(r, "s", data)
			if err != nil {
				t.Error(err)
				return
			}
			peak = res.MDSOpenQueuePeak
		})
		k.Run()
		k.Shutdown()
		return peak
	}
	burst := mdsPeak(0)
	staggered := mdsPeak(50 * time.Millisecond)
	if staggered >= burst {
		t.Fatalf("stagger did not reduce MDS queueing: %d vs %d", staggered, burst)
	}
}

func seq(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func TestDeterministicAcrossRuns(t *testing.T) {
	sample := func() (float64, []float64, int) {
		res, _ := harness(t, 16, 4, 4*int64(pfs.MB), func(fs *pfs.FileSystem) {
			fs.OST(1).SetSlowFactor(0.3)
		}, Config{})
		return res.Elapsed, res.WriterTimes, res.AdaptiveWrites
	}
	e1, w1, a1 := sample()
	e2, w2, a2 := sample()
	if e1 != e2 || a1 != a2 {
		t.Fatalf("nondeterministic: elapsed %v/%v adaptive %d/%d", e1, e2, a1, a2)
	}
	for i := range w1 {
		if w1[i] != w2[i] {
			t.Fatalf("writer %d time diverged", i)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	k := simkernel.New()
	fs := pfs.MustNew(k, pfs.Config{NumOSTs: 4})
	w := mpisim.NewWorld(k, 2, mpisim.Options{})
	if _, err := New(w, fs, Config{OSTs: []int{99}}); err == nil {
		t.Error("out-of-range OST accepted")
	}
	if _, err := New(w, fs, Config{WritersPerTarget: -1}); err == nil {
		t.Error("negative WritersPerTarget accepted")
	}
	a, err := New(w, fs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.cfg.OSTs) != 4 {
		t.Errorf("default OSTs = %v", a.cfg.OSTs)
	}
	k.Shutdown()
}

func TestNoGlobalIndexVariant(t *testing.T) {
	k := simkernel.New()
	fsCfg := machines.Jaguar(7).FS
	fsCfg.NumOSTs = 8
	fs := pfs.MustNew(k, fsCfg)
	w := mpisim.NewWorld(k, 8, mpisim.Options{})
	a, err := NewNoGlobalIndex(w, fs, Config{OSTs: []int{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	var res *iomethod.StepResult
	w.Launch("app", func(r *mpisim.Rank) {
		data := iomethod.RankData{Vars: []iomethod.VarSpec{{Name: "v", Bytes: 1024}}}
		rr, err := a.WriteStep(r, "s", data)
		if err != nil {
			t.Error(err)
			return
		}
		res = rr
	})
	k.Run()
	k.Shutdown()
	// The in-memory merged index is still produced for the caller, but no
	// global index file is written.
	if res.Global == nil {
		t.Fatal("merged index missing")
	}
	if fs.Exists("s.gidx.bp") {
		t.Fatal("global index file written despite NoGlobalIndex")
	}
}

func TestConservationProperty(t *testing.T) {
	f := func(w8, t8, kb uint8) bool {
		W := int(w8%24) + 1
		T := int(t8%6) + 1
		size := int64(kb%64+1) * 1024
		k := simkernel.New()
		fsCfg := machines.Jaguar(7).FS
		fsCfg.NumOSTs = T + 2
		fs := pfs.MustNew(k, fsCfg)
		w := mpisim.NewWorld(k, W, mpisim.Options{})
		a, err := New(w, fs, Config{OSTs: seq(T)})
		if err != nil {
			return false
		}
		var res *iomethod.StepResult
		wg := w.Launch("app", func(r *mpisim.Rank) {
			data := iomethod.RankData{Vars: []iomethod.VarSpec{{Name: "v", Bytes: size}}}
			rr, err := a.WriteStep(r, "s", data)
			if err == nil {
				res = rr
			}
		})
		k.Run()
		k.Shutdown()
		if wg.Count() != 0 || res == nil {
			return false
		}
		return math.Abs(res.TotalBytes-float64(int64(W)*size)) < 1 &&
			res.Global.NumEntries() == W
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestHeterogeneousRankSizes(t *testing.T) {
	// Ranks write different volumes (common for unstructured meshes); the
	// sub-coordinators assign offsets from the registered sizes and the
	// coordinator learns adaptive extents from completion reports — both
	// must hold with non-uniform data.
	k := simkernel.New()
	fsCfg := machines.Jaguar(7).FS
	fsCfg.NumOSTs = 8
	fs := pfs.MustNew(k, fsCfg)
	fs.OST(0).SetSlowFactor(0.2) // force adaptation too
	w := mpisim.NewWorld(k, 24, mpisim.Options{})
	a, err := New(w, fs, Config{OSTs: []int{0, 1, 2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	var res *iomethod.StepResult
	var want int64
	wg := w.Launch("app", func(r *mpisim.Rank) {
		size := int64(r.Rank()%5+1) * 4 * int64(pfs.MB)
		data := iomethod.RankData{Vars: []iomethod.VarSpec{
			{Name: "mesh", Bytes: size, Min: 0, Max: 1},
		}}
		rr, err := a.WriteStep(r, "het", data)
		if err != nil {
			t.Error(err)
			return
		}
		res = rr
	})
	for rank := 0; rank < 24; rank++ {
		want += int64(rank%5+1) * 4 * int64(pfs.MB)
	}
	k.Run()
	if wg.Count() != 0 {
		t.Fatal("deadlock with heterogeneous sizes")
	}
	k.Shutdown()
	if math.Abs(res.TotalBytes-float64(want)) > 1 {
		t.Fatalf("bytes = %v, want %v", res.TotalBytes, want)
	}
	// Index blocks must not overlap within any file and each rank's block
	// must have its own size.
	for _, li := range res.Global.Locals {
		type span struct{ lo, hi int64 }
		var spans []span
		for _, e := range li.Entries {
			wantLen := int64(int(e.WriterRank)%5+1) * 4 * int64(pfs.MB)
			if e.Length != wantLen {
				t.Fatalf("rank %d block length %d, want %d", e.WriterRank, e.Length, wantLen)
			}
			spans = append(spans, span{e.Offset, e.Offset + e.Length})
		}
		for i := range spans {
			for j := i + 1; j < len(spans); j++ {
				if spans[i].lo < spans[j].hi && spans[j].lo < spans[i].hi {
					t.Fatalf("overlap in %s", li.File)
				}
			}
		}
	}
}

func TestManyGroupsManyWritersStress(t *testing.T) {
	// A larger configuration exercising message volume: 256 writers over
	// 32 targets with a mix of slow targets.
	k := simkernel.New()
	fsCfg := machines.Jaguar(7).FS
	fsCfg.NumOSTs = 36
	fs := pfs.MustNew(k, fsCfg)
	for i := 0; i < 8; i++ {
		fs.OST(i).SetSlowFactor(0.2 + 0.1*float64(i%3))
	}
	w := mpisim.NewWorld(k, 256, mpisim.Options{})
	a, err := New(w, fs, Config{OSTs: seq(32)})
	if err != nil {
		t.Fatal(err)
	}
	var res *iomethod.StepResult
	wg := w.Launch("app", func(r *mpisim.Rank) {
		// 64 MB per rank: each group pushes 512 MB through its target, so
		// the slow groups lag far enough behind for the coordinator to
		// shift their queued writers.
		data := iomethod.RankData{Vars: []iomethod.VarSpec{{Name: "v", Bytes: 64 * int64(pfs.MB)}}}
		rr, err := a.WriteStep(r, "stress", data)
		if err != nil {
			t.Error(err)
			return
		}
		res = rr
	})
	k.Run()
	if wg.Count() != 0 {
		t.Fatal("stress deadlock")
	}
	k.Shutdown()
	if res.Global.NumEntries() != 256 {
		t.Fatalf("entries = %d", res.Global.NumEntries())
	}
	if res.AdaptiveWrites == 0 {
		t.Fatal("no adaptation despite 8 slow targets")
	}
	if math.Abs(res.TotalBytes-float64(256*64*int64(pfs.MB))) > 1 {
		t.Fatalf("bytes = %v", res.TotalBytes)
	}
}
